#!/bin/sh
# End-to-end metrics smoke gate: boot a serve_server, drive real generate
# requests through serve_client, scrape the kMetrics wire endpoint, and
# assert (1) the Prometheus body parses and (2) serve_requests_completed
# matches the number of requests actually served. A second phase reruns the
# loop with --prefix-sharing under shared-prefix traffic and asserts the
# serve_prefix_* series tell that story (and are absent when sharing is off).
# A third phase kills shard 0 mid-workload (scripted fault) and pulls the
# kTraceDump frame over TCP: the body must be valid JSON and must contain a
# flow-event pair ("s" at the harvest, "f" at the resubmit, same id) linking
# one request's spans across the two shards.
#
#   scripts/metrics_smoke.sh [build_dir]     # default: ./build
set -eu

build=${1:-build}
server="$build/examples/serve_server"
client="$build/examples/serve_client"
for bin in "$server" "$client"; do
    if [ ! -x "$bin" ]; then
        echo "metrics_smoke: missing $bin (build the examples first)" >&2
        exit 2
    fi
done

requests=5
workdir=$(mktemp -d)
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Boots $server with the given flags, writes its log to $workdir/$1.out, and
# sets $port / $server_pid from the line it prints.
boot_server() {
    log="$workdir/$1.out"
    shift
    "$server" "$@" --port 0 --serve-seconds 60 >"$log" 2>&1 &
    server_pid=$!
    port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
        [ -n "$port" ] && break
        kill -0 "$server_pid" 2>/dev/null || {
            echo "metrics_smoke: server died during startup:" >&2
            cat "$log" >&2
            exit 1
        }
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "metrics_smoke: server never reported its port" >&2
        exit 1
    fi
}

# Ephemeral port: the server prints the one it bound.
boot_server server --shards 2
echo "metrics_smoke: server up on port $port"

"$client" --port "$port" --count "$requests" --tokens 4 >"$workdir/client.out"

"$client" --port "$port" --metrics >"$workdir/metrics.prom"
"$client" --port "$port" --metrics-json >"$workdir/metrics.json"

# Prometheus validity: every sample line is "<name> <number>", every # line
# is a HELP or TYPE comment, and every family announces both before its
# samples. A malformed line fails the gate.
awk '
    /^# HELP / { help[$3] = 1; next }
    /^# TYPE / { type[$3] = 1; next }
    /^#/ { print "bad comment: " $0; bad = 1; next }
    /^$/ { next }
    NF != 2 || $2 !~ /^[0-9.eE+-]+$/ { print "bad sample: " $0; bad = 1; next }
    {
        fam = $1
        sub(/[{][^}]*[}]$/, "", fam)
        sub(/_(bucket|sum|count)$/, "", fam)
        if (!(fam in help) || !(fam in type)) {
            print "sample without HELP/TYPE: " $0; bad = 1
        }
    }
    END { exit bad }
' "$workdir/metrics.prom" || {
    echo "metrics_smoke: Prometheus body failed to parse" >&2
    exit 1
}

completed=$(awk '$1 == "serve_requests_completed" { print $2 }' \
    "$workdir/metrics.prom")
if [ "$completed" != "$requests" ]; then
    echo "metrics_smoke: serve_requests_completed=$completed, want $requests" >&2
    cat "$workdir/metrics.prom" >&2
    exit 1
fi

# The same count must appear in the JSON body, and TTFT must have samples.
grep -q "\"serve_requests_completed\":$requests" "$workdir/metrics.json" || {
    echo "metrics_smoke: JSON body disagrees with Prometheus body" >&2
    exit 1
}
ttft_count=$(awk '$1 == "serve_ttft_ns_count" { print $2 }' \
    "$workdir/metrics.prom")
if [ "$ttft_count" != "$requests" ]; then
    echo "metrics_smoke: serve_ttft_ns_count=$ttft_count, want $requests" >&2
    exit 1
fi

# Sharing off, the serve_prefix_* series must be ABSENT — scrapes stay
# honest about what the engine is doing.
if grep -q "serve_prefix" "$workdir/metrics.prom"; then
    echo "metrics_smoke: serve_prefix_* series present with sharing off" >&2
    exit 1
fi

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true

# ---- shared-prefix phase: the serve_prefix_* series under real traffic ----
# Two identical 47-char prompts (48 tokens: 3 aligned 16-token pages). The
# first registers the chain; the second fully matches, adopts mid-page
# (prompt-1 cap), and must copy-on-write its last page. Affinity routes it
# onto the warm shard, so the cluster scrape shows the hit, the CoW, and the
# pinned pages.
boot_server server_prefix --shards 2 --policy prefix-affinity --prefix-sharing
echo "metrics_smoke: prefix-sharing server up on port $port"

sys_prompt=$(printf '%047d' 0 | tr '0' 's')
"$client" --port "$port" --prompt "$sys_prompt" --tokens 4 >"$workdir/warm.out"
"$client" --port "$port" --prompt "$sys_prompt" --tokens 4 >"$workdir/hit.out"
"$client" --port "$port" --metrics >"$workdir/prefix.prom"

prefix_metric() {
    awk -v name="$1" '$1 == name { print $2 }' "$workdir/prefix.prom"
}
hits=$(prefix_metric serve_prefix_hits_total)
covered=$(prefix_metric serve_prefix_covered_tokens_total)
cows=$(prefix_metric serve_prefix_cow_copies_total)
shared=$(prefix_metric serve_prefix_pages_shared)
if [ "$hits" != "1" ] || [ "$covered" != "47" ] || [ "$cows" != "1" ]; then
    echo "metrics_smoke: prefix counters wrong: hits=$hits covered=$covered" \
        "cow=$cows (want 1/47/1)" >&2
    cat "$workdir/prefix.prom" >&2
    exit 1
fi
if [ -z "$shared" ] || [ "$(printf '%.0f' "$shared")" -lt 1 ]; then
    echo "metrics_smoke: serve_prefix_pages_shared=$shared, want >= 1" >&2
    cat "$workdir/prefix.prom" >&2
    exit 1
fi

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true

# ---- trace phase: the kTraceDump frame after a scripted shard kill ----
# Shard 0 dies at its 20th decode step; its in-flight requests fail over to
# shard 1. The live trace dump must parse as JSON and carry the failover as
# a flow-event pair — "s" (harvest) on the dying shard and "f" (resubmit) on
# the survivor, joined by the request id — plus exactly one first_token
# instant per request (exactly-once streaming across the failover).
boot_server server_trace --shards 2 --fault-shard0 step:20 \
    --trace-out "$workdir/unused_trace.json"
echo "metrics_smoke: trace server up on port $port"

client_pids=""
i=0
while [ "$i" -lt 4 ]; do
    "$client" --port "$port" --prompt "trace probe $i" --tokens 16 \
        >>"$workdir/trace_client.out" 2>&1 &
    client_pids="$client_pids $!"
    i=$((i + 1))
done
for pid in $client_pids; do
    wait "$pid" || true
done

"$client" --port "$port" --trace >"$workdir/trace.json"

python3 -m json.tool "$workdir/trace.json" >/dev/null || {
    echo "metrics_smoke: trace dump is not valid JSON" >&2
    exit 1
}
python3 - "$workdir/trace.json" <<'EOF' || exit 1
import collections
import json
import sys

events = json.load(open(sys.argv[1]))["traceEvents"]
starts = [e for e in events if e["ph"] == "s"]
finishes = [e for e in events if e["ph"] == "f"]
linked = {e["id"] for e in starts} & {e["id"] for e in finishes}
assert linked, "no flow pair links a harvest to a resubmit"
for rid in linked:
    src = {e["pid"] for e in starts if e["id"] == rid}
    dst = {e["pid"] for e in finishes if e["id"] == rid}
    assert src and dst and src != dst, f"flow for request {rid} never crossed shards"
first = collections.Counter(
    e["args"]["request"]
    for e in events
    if e["ph"] == "i" and e["name"] == "first_token"
)
dupes = {r: n for r, n in first.items() if n != 1}
assert not dupes, f"first_token not exactly-once: {dupes}"
print(
    f"metrics_smoke: trace ok ({len(events)} events, "
    f"{len(linked)} failover flow(s), first_token exactly-once)"
)
EOF

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true

# ---- alert phase: the SLO loop end to end over the wire ----
# A queue-depth alert with a 25ms sampling cadence, overload protection and
# the flight recorder armed. A burst of slow requests drives the queue past
# the threshold: the alert must FIRE (fired_total in the scrape), requests
# submitted with hopeless deadlines while engaged must be SHED, a flight
# bundle must land on disk as valid JSON, the kQuery frame must return the
# TSDB tail, and once the burst drains the alert must RESOLVE.
# One shard (4 slots) against 10 sustained clients keeps ~6 requests queued
# for the whole burst — comfortably past the gt:3 threshold at every sample.
mkdir -p "$workdir/flight"
boot_server server_slo --shards 1 \
    --slo "overload=threshold:serve_queued:gt:3:0" \
    --slo-interval-ms 25 --flight-dir "$workdir/flight"
echo "metrics_smoke: slo server up on port $port"

# Warm TTFT so the shed sweep has an estimate to judge hopelessness by.
"$client" --port "$port" --prompt "slo warm" --tokens 4 >"$workdir/slo.out"

burst_pids=""
i=0
while [ "$i" -lt 10 ]; do
    "$client" --port "$port" --prompt "slo burst $i" --count 6 --tokens 64 \
        >>"$workdir/slo.out" 2>&1 &
    burst_pids="$burst_pids $!"
    i=$((i + 1))
done
sleep 0.4  # a few samples with the queue deep: the alert fires, bundle drops

# Hopeless by construction: 50ms of budget is more than a couple of decode
# steps (the deadline sweep won't expire it first) but far less than the
# observed TTFT behind a 6-deep queue. The engaged governor's shed sweep
# must retire these without burning a batch slot.
i=0
while [ "$i" -lt 3 ]; do
    "$client" --port "$port" --prompt "doomed $i" --tokens 32 \
        --deadline-ms 50 >>"$workdir/slo.out" 2>&1 || true
    i=$((i + 1))
done

for pid in $burst_pids; do
    wait "$pid" || true
done
sleep 0.2  # two clear samples: resolve hysteresis for a for=0 rule is zero

"$client" --port "$port" --alerts >"$workdir/alerts.json"
"$client" --port "$port" --query serve_queued --window 60 >"$workdir/query.json"
"$client" --port "$port" --metrics >"$workdir/slo_end.prom"
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true

slo_metric() {
    awk -v name="$1" '$1 == name { print $2 }' "$workdir/$2"
}
fired=$(slo_metric serve_alerts_fired_total slo_end.prom)
if [ -z "$fired" ] || [ "$fired" -lt 1 ]; then
    echo "metrics_smoke: alert never fired (serve_alerts_fired_total=$fired)" >&2
    cat "$workdir/slo_end.prom" >&2
    exit 1
fi
shed=$(slo_metric serve_requests_shed slo_end.prom)
if [ -z "$shed" ] || [ "$shed" -lt 1 ]; then
    echo "metrics_smoke: no requests shed under overload (shed=$shed)" >&2
    cat "$workdir/slo_end.prom" >&2
    exit 1
fi
resolved=$(slo_metric serve_alerts_resolved_total slo_end.prom)
firing_now=$(slo_metric serve_alerts_firing slo_end.prom)
if [ -z "$resolved" ] || [ "$resolved" -lt 1 ] || [ "$firing_now" != "0" ]; then
    echo "metrics_smoke: alert never resolved (resolved=$resolved," \
        "firing=$firing_now)" >&2
    cat "$workdir/slo_end.prom" >&2
    exit 1
fi
grep -q '"name":"overload"' "$workdir/alerts.json" || {
    echo "metrics_smoke: kAlerts body missing the rule" >&2
    cat "$workdir/alerts.json" >&2
    exit 1
}
grep -q '"serve_queued"' "$workdir/query.json" || {
    echo "metrics_smoke: kQuery body missing the series" >&2
    cat "$workdir/query.json" >&2
    exit 1
}
bundle=$(ls "$workdir/flight"/flight_*.json 2>/dev/null | head -n 1)
if [ -z "$bundle" ]; then
    echo "metrics_smoke: no flight bundle written on alert firing" >&2
    ls -la "$workdir/flight" >&2 || true
    exit 1
fi
python3 -m json.tool "$bundle" >/dev/null || {
    echo "metrics_smoke: flight bundle is not valid JSON: $bundle" >&2
    exit 1
}
grep -q '"reason"' "$bundle" && grep -q '"tsdb"' "$bundle" || {
    echo "metrics_smoke: flight bundle missing reason/tsdb sections" >&2
    exit 1
}
echo "metrics_smoke: slo ok (alert fired=$fired resolved=$resolved," \
    "shed=$shed, flight bundle $(basename "$bundle") parses)"

echo "metrics_smoke: ok ($requests requests, counters match, body parses," \
    "prefix series truthful, trace dump linked across failover," \
    "slo loop fired/shed/resolved with a flight bundle)"
