#!/bin/sh
# End-to-end metrics smoke gate: boot a serve_server, drive real generate
# requests through serve_client, scrape the kMetrics wire endpoint, and
# assert (1) the Prometheus body parses and (2) serve_requests_completed
# matches the number of requests actually served.
#
#   scripts/metrics_smoke.sh [build_dir]     # default: ./build
set -eu

build=${1:-build}
server="$build/examples/serve_server"
client="$build/examples/serve_client"
for bin in "$server" "$client"; do
    if [ ! -x "$bin" ]; then
        echo "metrics_smoke: missing $bin (build the examples first)" >&2
        exit 2
    fi
done

requests=5
workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

# Ephemeral port: the server prints the one it bound.
"$server" --shards 2 --port 0 --serve-seconds 60 >"$workdir/server.out" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$workdir/server.out")
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
        echo "metrics_smoke: server died during startup:" >&2
        cat "$workdir/server.out" >&2
        exit 1
    }
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "metrics_smoke: server never reported its port" >&2
    exit 1
fi
echo "metrics_smoke: server up on port $port"

"$client" --port "$port" --count "$requests" --tokens 4 >"$workdir/client.out"

"$client" --port "$port" --metrics >"$workdir/metrics.prom"
"$client" --port "$port" --metrics-json >"$workdir/metrics.json"

# Prometheus validity: every sample line is "<name> <number>", every # line
# is a TYPE comment. A malformed line fails the gate.
awk '
    /^#/ { if ($2 != "TYPE") { print "bad comment: " $0; bad = 1 }; next }
    /^$/ { next }
    NF != 2 || $2 !~ /^[0-9.eE+-]+$/ { print "bad sample: " $0; bad = 1 }
    END { exit bad }
' "$workdir/metrics.prom" || {
    echo "metrics_smoke: Prometheus body failed to parse" >&2
    exit 1
}

completed=$(awk '$1 == "serve_requests_completed" { print $2 }' \
    "$workdir/metrics.prom")
if [ "$completed" != "$requests" ]; then
    echo "metrics_smoke: serve_requests_completed=$completed, want $requests" >&2
    cat "$workdir/metrics.prom" >&2
    exit 1
fi

# The same count must appear in the JSON body, and TTFT must have samples.
grep -q "\"serve_requests_completed\":$requests" "$workdir/metrics.json" || {
    echo "metrics_smoke: JSON body disagrees with Prometheus body" >&2
    exit 1
}
ttft_count=$(awk '$1 == "serve_ttft_ns_count" { print $2 }' \
    "$workdir/metrics.prom")
if [ "$ttft_count" != "$requests" ]; then
    echo "metrics_smoke: serve_ttft_ns_count=$ttft_count, want $requests" >&2
    exit 1
fi

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
echo "metrics_smoke: ok ($requests requests, counters match, body parses)"
