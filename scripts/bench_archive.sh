#!/bin/sh
# Appends BENCH_*.json perf records to bench/history/ (never overwrites), so
# throughput trajectories stay visible across PRs:
#
#   scripts/bench_archive.sh [file...]     # default: ./BENCH_*.json
#   cmake --build build --target bench_archive   # archives from the build dir
#
# Each record lands at bench/history/<bench-name>/<utc-stamp>-<git-sha>.json.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
hist="$repo_root/bench/history"
stamp=$(date -u +%Y%m%dT%H%M%SZ)
sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo nogit)

if [ "$#" -eq 0 ]; then
    set -- BENCH_*.json
fi

archived=0
for f in "$@"; do
    [ -f "$f" ] || continue
    name=$(basename "$f" .json)
    mkdir -p "$hist/$name"
    dest="$hist/$name/$stamp-$sha.json"
    i=1
    while [ -e "$dest" ]; do
        dest="$hist/$name/$stamp-$sha-$i.json"
        i=$((i + 1))
    done
    cp "$f" "$dest"
    echo "archived $f -> $dest"
    archived=$((archived + 1))
done

if [ "$archived" -eq 0 ]; then
    echo "bench_archive: no BENCH_*.json records found" >&2
    exit 1
fi
