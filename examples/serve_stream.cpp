// Streaming + control-plane tour of the DecodeBackend serve API, driven by
// the background serve thread.
//
// Demonstrates what the request API adds over submit-and-wait: per-token
// streaming callbacks, cooperative cancellation through a RequestHandle,
// deadlines that shed queued work, shortest-job-first admission — all served
// by ServeEngine::run()'s dedicated thread (no hand-cranked step() loop) —
// plus the same request set on the cycle-priced KV260 twin with a
// capacity-governed KV page pool, reporting the simulated device serving
// rate and pool pressure next to the host's wall-clock numbers.
//
//   $ ./serve_stream
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "runtime/serve.hpp"

using namespace efld;

int main() {
    std::printf("-- serve_stream: background driver, streaming, cancellation, "
                "deadlines, paging\n");
    std::printf("-- (synthetic micro-256 weights: output bytes are gibberish)\n\n");

    runtime::ServeOptions host_opts;
    host_opts.sampler.temperature = 0.0f;  // deterministic demo
    host_opts.max_batch = 4;
    host_opts.scheduler = serve::SchedulerPolicy::kSjf;
    runtime::ServeDeployment host =
        runtime::synthetic_serve(model::ModelConfig::micro_256(), 21, host_opts);

    // The serving thread: from here on the engine decodes on its own; this
    // thread only submits and awaits.
    host.engine->run();

    // 1. Streaming: tokens arrive through the callback (on the driver
    //    thread) long before the future resolves.
    std::printf("[stream ] ");
    runtime::RequestHandle streaming = host.engine->submit(runtime::ServeRequest{
        .prompt = "stream these tokens",
        .max_new_tokens = 24,
        .on_token = [](std::int32_t, std::string_view piece) {
            std::printf("%.*s", static_cast<int>(piece.size()), piece.data());
            std::fflush(stdout);
        }});

    // 2. Cancellation: start a long request, pull the plug once a few tokens
    //    have streamed (so the cancel provably lands mid-decode regardless of
    //    machine speed), keep the partial output.
    std::atomic<int> doomed_tokens{0};
    runtime::RequestHandle doomed = host.engine->submit(runtime::ServeRequest{
        .prompt = "never finishes",
        .max_new_tokens = 45,
        .on_token = [&doomed_tokens](std::int32_t, std::string_view) {
            doomed_tokens.fetch_add(1);
        }});
    while (doomed_tokens.load() < 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    doomed.cancel();

    // 3. Deadline: a request whose deadline already passed is shed from the
    //    queue without ever taking a session slot.
    runtime::RequestHandle late = host.engine->submit(runtime::ServeRequest{
        .prompt = "too late",
        .max_new_tokens = 8,
        .deadline = std::chrono::steady_clock::now()});

    host.engine->wait_until_idle();
    std::printf("\n[cancel ] %zu tokens kept, finish_reason=%s\n",
                doomed.get().tokens.size(),
                std::string(to_string(doomed.get().finish_reason)).c_str());
    std::printf("[expire ] %zu tokens, finish_reason=%s\n", late.get().tokens.size(),
                std::string(to_string(late.get().finish_reason)).c_str());
    (void)streaming.get();
    host.engine->stop();

    const runtime::ServeStats& hs = host.engine->stats();
    std::printf("[host   ] %zu walks / %zu tokens = %.3f walks/token\n\n", hs.steps,
                hs.generated_tokens, hs.weight_walks_per_token());

    // 4. Same API, accel backend with a PAGED KV pool: the functional KV260
    //    twin priced by the batched cycle model, sessions drawing 16-token
    //    pages from a tiny budget — the capacity governor serializes what
    //    does not fit and every deferred request still completes.
    runtime::ServeOptions accel_opts;
    accel_opts.sampler.temperature = 0.0f;
    accel_opts.backend = engine::BackendKind::kAccel;
    accel_opts.max_batch = 4;
    accel_opts.paging = true;
    accel_opts.kv_page_tokens = 16;
    accel_opts.kv_pool_pages = 2;  // 32 tokens of aggregate KV: real pressure
    runtime::ServeDeployment accel =
        runtime::synthetic_serve(model::ModelConfig::micro_256(), 21, accel_opts);
    accel.engine->run();
    std::vector<runtime::RequestHandle> hs2;
    for (const std::string& p : {"alpha", "beta", "gamma", "delta"}) {
        hs2.push_back(accel.engine->submit(
            runtime::ServeRequest{.prompt = p, .max_new_tokens = 6}));
    }
    std::size_t deferred = 0;
    for (auto& h : hs2) deferred += h.get().times_deferred > 0 ? 1 : 0;
    accel.engine->stop();
    const runtime::ServeStats& as = accel.engine->stats();
    std::printf("[accel  ] %.0f simulated tok/s on the KV260 twin "
                "(%.3f walks/token, peak batch %zu)\n",
                as.simulated_tokens_per_s(), as.weight_walks_per_token(),
                as.peak_batch);
    std::printf("[paging ] %zu-page pool, %zu/%zu requests deferred then served, "
                "peak committed %zu pages\n",
                accel.engine->governor()->total_pages(), deferred, hs2.size(),
                accel.engine->governor()->stats().peak_committed_pages);
    return 0;
}
