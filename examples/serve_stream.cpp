// Streaming + control-plane tour of the DecodeBackend serve API.
//
// Demonstrates what the redesigned request API adds over submit-and-wait:
// per-token streaming callbacks, cooperative cancellation through a
// RequestHandle, deadlines that shed queued work, shortest-job-first
// admission — and the same request set served on the cycle-priced KV260
// twin, reporting the simulated device serving rate next to the host's
// wall-clock one.
//
//   $ ./serve_stream
#include <chrono>
#include <cstdio>
#include <string>

#include "runtime/serve.hpp"

using namespace efld;

namespace {

runtime::ServeDeployment make_deployment(engine::BackendKind backend) {
    runtime::ServeOptions opts;
    opts.sampler.temperature = 0.0f;  // deterministic demo
    opts.backend = backend;
    opts.max_batch = 4;
    opts.scheduler = serve::SchedulerPolicy::kSjf;
    return runtime::synthetic_serve(model::ModelConfig::micro_256(), 21, opts);
}

}  // namespace

int main() {
    std::printf("-- serve_stream: streaming, cancellation, deadlines, two backends\n");
    std::printf("-- (synthetic micro-256 weights: output bytes are gibberish)\n\n");

    // 1. Streaming: tokens arrive through the callback as they are sampled,
    //    long before the future resolves.
    runtime::ServeDeployment host = make_deployment(engine::BackendKind::kHost);
    std::printf("[stream ] ");
    runtime::RequestHandle streaming = host.engine->submit(runtime::ServeRequest{
        .prompt = "stream these tokens",
        .max_new_tokens = 24,
        .on_token = [](std::int32_t, std::string_view piece) {
            std::printf("%.*s", static_cast<int>(piece.size()), piece.data());
            std::fflush(stdout);
        }});

    // 2. Cancellation: start a 10k-token request, pull the plug after a few
    //    steps, keep the partial output.
    runtime::RequestHandle doomed = host.engine->submit(
        runtime::ServeRequest{.prompt = "never finishes", .max_new_tokens = 10000});
    for (int i = 0; i < 25 && host.engine->step(); ++i) {}
    doomed.cancel();

    // 3. Deadline: a request whose deadline already passed is shed from the
    //    queue without ever taking a session slot.
    runtime::RequestHandle late = host.engine->submit(runtime::ServeRequest{
        .prompt = "too late",
        .max_new_tokens = 8,
        .deadline = std::chrono::steady_clock::now()});

    host.engine->run_until_idle();
    std::printf("\n[cancel ] %zu tokens kept, cancelled=%s\n",
                doomed.get().tokens.size(), doomed.get().cancelled ? "yes" : "no");
    std::printf("[expire ] %zu tokens, hit_deadline=%s\n", late.get().tokens.size(),
                late.get().hit_deadline ? "yes" : "no");
    (void)streaming.get();

    const runtime::ServeStats& hs = host.engine->stats();
    std::printf("[host   ] %zu walks / %zu tokens = %.3f walks/token\n\n", hs.steps,
                hs.generated_tokens, hs.weight_walks_per_token());

    // 4. Same engine loop, accel backend: the functional KV260 twin priced by
    //    the batched cycle model. The number that matters is the simulated
    //    device serving rate.
    runtime::ServeDeployment accel = make_deployment(engine::BackendKind::kAccel);
    for (const std::string& p : {"alpha", "beta", "gamma", "delta"}) {
        (void)accel.engine->submit(runtime::ServeRequest{.prompt = p, .max_new_tokens = 6});
    }
    accel.engine->run_until_idle();
    const runtime::ServeStats& as = accel.engine->stats();
    std::printf("[accel  ] %.0f simulated tok/s on the KV260 twin "
                "(%.3f walks/token, peak batch %zu)\n",
                as.simulated_tokens_per_s(), as.weight_walks_per_token(), as.peak_batch);
    return 0;
}
