// Capacity planner: which (model, quantization, context) combinations fit
// which embedded device? — the Fig. 1 / §VIII deployment-feasibility tool.
//
//   $ ./capacity_planner            # the standard matrix
//   $ ./capacity_planner 8          # plan for an 8 GiB device instead
#include <cstdio>
#include <cstdlib>

#include "common/mathutil.hpp"
#include "runtime/memory_planner.hpp"

using namespace efld;

int main(int argc, char** argv) {
    std::uint64_t device_gib = 4;
    if (argc > 1) {
        device_gib = static_cast<std::uint64_t>(std::strtoull(argv[1], nullptr, 10));
        if (device_gib == 0) device_gib = 4;
    }
    const std::uint64_t device = device_gib * kGiB;

    std::printf("=== Capacity planner: %llu GiB embedded device, 1 MiB bare-metal "
                "reservation ===\n\n",
                static_cast<unsigned long long>(device_gib));

    const model::ModelConfig models[] = {model::ModelConfig::tinyllama_1_1b(),
                                         model::ModelConfig::llama2_7b()};
    struct Scheme {
        const char* name;
        model::QuantScheme s;
    };
    const Scheme schemes[] = {{"W4A16+KV8", model::QuantScheme::w4a16_kv8()},
                              {"W8A16+KV8", model::QuantScheme::w8a16_kv8()},
                              {"FP16", model::QuantScheme::fp16_baseline()}};

    for (const auto& mc : models) {
        std::printf("%s:\n", mc.name.c_str());
        std::printf("  %-10s %12s %10s %12s %14s\n", "scheme", "weights MiB",
                    "fits@1024", "util@1024", "max ctx (tok)");
        for (const auto& sc : schemes) {
            const auto plan = runtime::MemoryPlanner::plan(mc, sc.s, device, kMiB);
            const auto max_ctx =
                runtime::MemoryPlanner::max_context(mc, sc.s, device, kMiB);
            std::printf("  %-10s %12.0f %10s %11.1f%% %14llu\n", sc.name,
                        static_cast<double>(plan.weight_bytes) / double(kMiB),
                        plan.fits ? "yes" : "NO", 100.0 * plan.utilization,
                        static_cast<unsigned long long>(max_ctx));
        }
        std::printf("\n");
    }

    std::printf("the paper's deployment point: LLaMA2-7B, W4A16+KV8, 4 GiB -> fits with "
                "~93%% utilization,\nbut only bare-metal: a usable Linux resident set "
                "(~512 MiB) no longer fits beside it.\n");
    return 0;
}
