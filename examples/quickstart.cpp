// Quickstart: build a model, run it on the simulated accelerator, read the
// decode rate.
//
//   $ ./quickstart
//
// Uses a tiny synthetic model so it finishes in seconds; the same API drives
// the full LLaMA2-7B geometry (see bandwidth_explorer for the 7B timing path).
#include <cstdio>

#include "runtime/session.hpp"

int main() {
    using namespace efld;

    // 1. An inference session: synthetic weights -> AWQ-style W4 group-128
    //    quantization -> Fig. 4A packed streams -> accelerator simulator.
    runtime::SessionOptions opts;
    opts.sampler.temperature = 0.8f;
    opts.sampler.top_k = 40;
    opts.sampler.seed = 2025;
    auto session =
        runtime::InferenceSession::synthetic(model::ModelConfig::tiny_512(), 42, opts);

    std::printf("model: %s (dim %llu, %llu layers, vocab %llu)\n",
                session.config().name.c_str(),
                static_cast<unsigned long long>(session.config().dim),
                static_cast<unsigned long long>(session.config().n_layers),
                static_cast<unsigned long long>(session.config().vocab_size));

    // 2. Generate. The weights are random, so the text is gibberish — the
    //    point is the full pipeline: tokenizer -> prefill -> fused decode ->
    //    KV8 cache -> sampler, with per-token simulated KV260 latency.
    const runtime::GenerationOutput out = session.generate("Hello FPGA", 24);

    std::printf("generated %zu tokens\n", out.tokens.size());
    std::printf("simulated decode rate on KV260: %.1f token/s\n",
                out.simulated_tokens_per_s());
    std::printf("(LLaMA2-7B at the same settings decodes at ~5 token/s; see\n"
                " bench_headline_decode for the full-scale run)\n");
    return 0;
}
