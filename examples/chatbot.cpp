// Chatbot over the serial console — the paper's motivating edge scenario
// (Fig. 1: "Tokenizer & Decode Program" on the PS, accelerator on the PL,
// tokens streaming out of the UART).
//
// Runs a multi-turn loop on a tiny synthetic model, echoing tokens to stdout
// as they would appear on the KV260's serial port, with the simulated
// decode rate after each turn. Pass prompts as arguments to script it:
//   $ ./chatbot "tell me about FPGAs" "and memory bandwidth"
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/session.hpp"

int main(int argc, char** argv) {
    using namespace efld;

    std::vector<std::string> prompts;
    for (int i = 1; i < argc; ++i) prompts.emplace_back(argv[i]);
    if (prompts.empty()) {
        prompts = {"Hello, little language model.", "What lives in DDR4?",
                   "Goodbye."};
    }

    runtime::SessionOptions opts;
    opts.sampler.temperature = 0.9f;
    opts.sampler.top_p = 0.95f;
    opts.sampler.seed = 7;
    opts.echo_to_stdout = true;  // stream tokens like the UART does
    auto session =
        runtime::InferenceSession::synthetic(model::ModelConfig::micro_256(), 9, opts);

    std::printf("-- KV260 bare-metal chat (synthetic %s; weights are random, so\n"
                "-- replies are gibberish: this demo exercises the *system*, "
                "end to end)\n\n",
                session.config().name.c_str());

    for (const std::string& prompt : prompts) {
        std::printf("user> %s\nbot > ", prompt.c_str());
        const runtime::GenerationOutput out = session.generate(prompt, 32);
        std::printf("      [%zu tokens, %.1f token/s simulated on KV260]\n\n",
                    out.tokens.size(), out.simulated_tokens_per_s());
        if (session.accelerator().position() + 48 >= session.config().max_seq_len) {
            std::printf("-- context window (%llu) nearly full; clearing KV cache --\n",
                        static_cast<unsigned long long>(session.config().max_seq_len));
            session.reset();
        }
    }
    return 0;
}
