// Wire-protocol client for serve_server: one TCP connection, length-prefixed
// frames, blocking round trips — including the 429 dance (a rejected request
// backs off for the server's retry hint and tries again).
//
//   $ ./serve_client --port 9177 --prompt "hello cluster" --tokens 16
//   $ ./serve_client --port 9177 --count 8     # a burst of requests
//   $ ./serve_client --port 9177 --metrics     # scrape Prometheus metrics
//   $ ./serve_client --port 9177 --metrics-json
//   $ ./serve_client --port 9177 --trace       # dump the Perfetto timeline
//   $ ./serve_client --port 9177 --alerts      # SLO alert rules + timeline
//   $ ./serve_client --port 9177 --query serve_queued --window 60
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/socket_frontend.hpp"
#include "serve/serve_types.hpp"

using namespace efld;
namespace wire = efld::cluster::wire;

int main(int argc, char** argv) {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string prompt = "hello cluster";
    std::size_t tokens = 16;
    std::size_t count = 1;
    std::uint32_t deadline_ms = 0;
    bool metrics = false;
    bool trace = false;
    bool alerts = false;
    std::string query_series;
    std::uint32_t query_window_s = 0;
    wire::MetricsFormat metrics_format = wire::MetricsFormat::kPrometheus;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
            host = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--prompt") == 0 && i + 1 < argc) {
            prompt = argv[++i];
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            tokens = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
            count = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
            deadline_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            metrics = true;
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            metrics = true;
            metrics_format = wire::MetricsFormat::kJson;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            trace = true;
        } else if (std::strcmp(argv[i], "--alerts") == 0) {
            alerts = true;
        } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
            query_series = argv[++i];
        } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
            query_window_s = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s --port P [--host H] [--prompt S] [--tokens N] "
                         "[--count C] [--deadline-ms D] "
                         "[--metrics | --metrics-json | --trace | --alerts | "
                         "--query SERIES [--window S]]\n",
                         argv[0]);
            return 2;
        }
    }
    if (port == 0) {
        std::fprintf(stderr, "serve_client: --port is required\n");
        return 2;
    }

    cluster::SocketClient client(host, port);
    if (metrics) {
        const std::string body = client.metrics(metrics_format);
        std::fputs(body.c_str(), stdout);
        return 0;
    }
    if (trace) {
        const std::string body = client.trace_dump();
        std::fputs(body.c_str(), stdout);
        return 0;
    }
    if (alerts) {
        const std::string body = client.alerts();
        std::fputs(body.c_str(), stdout);
        std::fputc('\n', stdout);
        return 0;
    }
    if (!query_series.empty()) {
        const std::string body =
            client.query(query_series, query_window_s * 1000u);
        std::fputs(body.c_str(), stdout);
        std::fputc('\n', stdout);
        return 0;
    }
    for (std::size_t r = 0; r < count; ++r) {
        wire::WireRequest req;
        req.prompt = count > 1 ? prompt + " " + std::to_string(r) : prompt;
        req.max_new_tokens = static_cast<std::uint32_t>(tokens);
        req.deadline_ms = deadline_ms;

        // The 429 path: a saturated cluster answers with a retry hint instead
        // of queueing unboundedly; honor it a few times before giving up.
        wire::WireResponse resp;
        for (int attempt = 0; attempt < 5; ++attempt) {
            const auto t0 = std::chrono::steady_clock::now();
            resp = client.request(req);
            const double ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            if (resp.status != wire::Status::kRejected) {
                if (resp.status == wire::Status::kOk) {
                    std::printf(
                        "[%zu] %zu tokens in %.1f ms, finish=%s%s: %s\n", r,
                        resp.tokens.size(), ms,
                        std::string(to_string(static_cast<serve::FinishReason>(
                                        resp.finish_reason)))
                            .c_str(),
                        resp.times_deferred > 0 ? " (deferred)" : "",
                        resp.text.c_str());
                } else {
                    std::printf("[%zu] error: %s\n", r, resp.error.c_str());
                }
                break;
            }
            std::printf("[%zu] 429: cluster saturated, retrying in %u ms\n", r,
                        resp.retry_ms);
            std::this_thread::sleep_for(std::chrono::milliseconds(resp.retry_ms));
        }
        if (resp.status == wire::Status::kRejected) {
            std::fprintf(stderr, "[%zu] gave up after repeated 429s\n", r);
            return 1;
        }
    }
    return 0;
}
