// Boot flow demo: the full §VII.A bring-up — offline conversion to the
// SD-card image, bare-metal boot (load, CRC, memory map), then serving
// token commands.
//
//   $ ./boot_flow [image_path]
#include <cstdio>
#include <string>

#include "runtime/host.hpp"
#include "runtime/loader.hpp"

using namespace efld;

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : "/tmp/efld_demo_model.bin";

    // --- offline flow (would run on a workstation) -----------------------
    std::printf("offline: quantizing synthetic %s to W4A16 g128 and packing to the "
                "bus format...\n",
                model::ModelConfig::tiny_512().name.c_str());
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::tiny_512(), 77);
    const auto qw = model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    const accel::PackedModel packed = accel::PackedModel::build(qw);
    runtime::save_model(packed, path);
    std::printf("offline: wrote image %s (%.1f MiB)\n\n", path.c_str(),
                static_cast<double>(packed.weight_stream_bytes()) / 1048576.0);

    // --- on-device flow (bare-metal program on the KV260) ----------------
    const auto image_file = runtime::load_model(path);  // re-read for realism
    const auto image = runtime::serialize_model(image_file);
    runtime::BareMetalHost host = runtime::BareMetalHost::boot(image);
    const runtime::BootReport& r = host.report();
    std::printf("boot: image %.1f MiB, CRC %s\n",
                static_cast<double>(r.image_bytes) / 1048576.0, r.crc_ok ? "ok" : "BAD");
    std::printf("boot: SD load %.2f s @25 MB/s, DDR placement %.4f s, map "
                "utilization %.1f%%\n",
                r.sd_load_s, r.ddr_copy_s, 100 * r.capacity_utilization);
    std::printf("boot: a LLaMA2-7B image (3.8 GB) would take %.0f s from the same "
                "card — %.1f min of boot time\n\n",
                runtime::BareMetalHost::estimated_sd_load_s(3'800'000'000ull, {}),
                runtime::BareMetalHost::estimated_sd_load_s(3'800'000'000ull, {}) / 60.0);

    // Serve a few AXI-Lite token commands.
    std::printf("serving token commands:\n");
    double total_ns = 0;
    for (const std::int32_t tok : {1, 42, 7, 99}) {
        const accel::StepResult res = host.execute({tok, false});
        total_ns += res.timing.total_ns;
        std::printf("  token %3d -> argmax %3d  (%.3f ms simulated)\n", tok,
                    model::Sampler::argmax(res.logits), res.timing.total_ns / 1e6);
    }
    std::printf("decode rate: %.1f token/s simulated on the KV260 memory system\n",
                4.0 * 1e9 / total_ns);
    return 0;
}
