// Bandwidth explorer: what decode rate would this model get on that memory
// system? — the §VIII design-space question ("it is timely for FPGA vendors
// to integrate advanced memory support").
//
// Sweeps models x memory systems with the full cycle model and prints
// token/s and bandwidth utilization for each point.
#include <cstdio>

#include "accel/cycle_model.hpp"

using namespace efld;

namespace {

struct MemPoint {
    const char* name;
    memsim::MemorySystemConfig cfg;
    accel::AccelConfig accel;  // PL clock scaled with the stream rate
};

MemPoint scaled(const char* name, double mtps, unsigned ports, double port_mhz) {
    MemPoint p;
    p.name = name;
    p.cfg = memsim::MemorySystemConfig::kv260();
    p.cfg.ddr.data_rate_mtps = mtps;
    p.cfg.axi.num_ports = ports;
    p.cfg.axi.port.clock_mhz = port_mhz;
    // The VPU must consume one 512-bit word per clock at the stream rate,
    // so the PL clock scales with the port clock (the paper's 300 MHz pairs
    // with DDR4-2400 exactly this way).
    p.accel.clock_mhz = port_mhz;
    return p;
}

}  // namespace

int main() {
    std::printf("=== Bandwidth explorer: decode rate across memory systems ===\n\n");

    const MemPoint mems[] = {
        scaled("KV260 DDR4-2400 x64 (19.2 GB/s)", 2400, 4, 300),
        scaled("ZCU104-class DDR4-2133 (17.1 GB/s)", 2133, 4, 267),
        scaled("hypothetical DDR5-4800 (38.4 GB/s)", 4800, 4, 600),
        scaled("hypothetical LPDDR5x (68 GB/s)", 8533, 4, 1066),
    };
    const model::ModelConfig models[] = {model::ModelConfig::tinyllama_1_1b(),
                                         model::ModelConfig::llama2_7b()};

    for (const auto& mc : models) {
        std::printf("model: %s (%.2fB params, W4A16+KV8)\n", mc.name.c_str(),
                    static_cast<double>(mc.total_params()) / 1e9);
        const double wbytes =
            static_cast<double>(mc.layer_params() + mc.lm_head_params()) * 0.5;
        std::printf("  %-38s %9s %9s %7s\n", "memory system", "theo t/s", "sim t/s",
                    "util%");
        for (const auto& mp : mems) {
            accel::DecodeCycleModel m(mc, model::QuantScheme::w4a16_kv8(), mp.accel,
                                      mp.cfg);
            const double theo = mp.cfg.peak_bytes_per_s() / wbytes;
            const double sim = m.token_timing(256).tokens_per_s();
            std::printf("  %-38s %9.2f %9.2f %6.1f%%\n", mp.name, theo, sim,
                        100.0 * sim / theo);
        }
        std::printf("\n");
    }

    std::printf("reading: decode speed tracks bandwidth almost linearly — the paper's "
                "core claim.\nCapacity note: 7B W4 weights + 1024-token KV need ~3.8 GiB "
                "regardless of speed grade.\n");
    return 0;
}
