// A deployable serving cluster on one command line: N engine shards behind a
// load-aware router behind a TCP front-end.
//
//   $ ./serve_server --shards 2 --policy least-loaded --port 9177
//   listening on 127.0.0.1:9177 (2 shards, least-loaded, micro-256)
//
// Then, from another terminal: ./serve_client --port 9177 --prompt "hi".
// The server runs until stdin closes (Ctrl-D, or the end of a pipe) or
// --serve-seconds elapses — both scriptable shapes.
//
//   --shards N          engine shards, each with its own backend + driver (2)
//   --policy P          round-robin | least-loaded | best-fit |
//                       prefix-affinity (least-loaded)
//   --port P            TCP port; 0 picks an ephemeral one (0)
//   --model M           micro | tiny (micro)
//   --paging            per-shard KV page pools + governor admission
//   --prefix-sharing    shared-prefix KV reuse across sessions (implies
//                       --paging; pair with --policy prefix-affinity so
//                       sharers co-locate)
//   --serve-seconds S   serve for S seconds instead of until stdin EOF
//   --metrics-dump S    print the cluster's Prometheus snapshot every S
//                       seconds while serving (same body a kMetrics wire
//                       scrape returns), plus a one-line windowed-rates
//                       summary (trailing 10s arrivals/tokens per second)
//   --trace-out PATH    enable the trace ring + per-phase profiler and write
//                       the Perfetto timeline JSON to PATH at exit (the same
//                       body a kTraceDump wire request returns live)
//   --fault-shard0 SPEC scripted fault on shard 0 only (e.g. step:40) —
//                       failover demos without hand-crafted clients
//   --slo SPEC          SLO engine: comma-separated alert rules (threshold:
//                       .../burnrate:... — see obs/alert_engine.hpp) sampled
//                       every second into the in-process TSDB; firing alerts
//                       engage overload protection (shedding, stretched
//                       retry hints, degraded placement) until they resolve,
//                       and the kAlerts/kQuery wire frames come alive
//   --slo-interval-ms N sampling cadence for --slo (default 1000; smoke
//                       tests drop it to catch short bursts)
//   --flight-dir DIR    write flight-recorder bundles (black-box JSON) to
//                       DIR on shard failure or alert firing (works alone
//                       for shard-failure capture; pair with --slo for
//                       alert-triggered bundles)
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/socket_frontend.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"

using namespace efld;

int main(int argc, char** argv) {
    std::size_t shards = 2;
    std::string policy = "least-loaded";
    std::string model_name = "micro";
    std::uint16_t port = 0;
    bool paging = false;
    bool prefix_sharing = false;
    long serve_seconds = -1;
    long metrics_dump_seconds = 0;
    std::string trace_out;
    std::string fault_shard0;
    std::string slo_rules;
    std::string flight_dir;
    long slo_interval_ms = 1000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
            policy = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
        } else if (std::strcmp(argv[i], "--paging") == 0) {
            paging = true;
        } else if (std::strcmp(argv[i], "--prefix-sharing") == 0) {
            prefix_sharing = true;
        } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
            serve_seconds = std::stol(argv[++i]);
        } else if (std::strcmp(argv[i], "--metrics-dump") == 0 && i + 1 < argc) {
            metrics_dump_seconds = std::max(1L, std::stol(argv[++i]));
        } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (std::strcmp(argv[i], "--fault-shard0") == 0 && i + 1 < argc) {
            fault_shard0 = argv[++i];
        } else if (std::strcmp(argv[i], "--slo") == 0 && i + 1 < argc) {
            slo_rules = argv[++i];
        } else if (std::strcmp(argv[i], "--slo-interval-ms") == 0 &&
                   i + 1 < argc) {
            slo_interval_ms = std::max(1L, std::stol(argv[++i]));
        } else if (std::strcmp(argv[i], "--flight-dir") == 0 && i + 1 < argc) {
            flight_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--shards N] [--policy round-robin|least-"
                         "loaded|best-fit|prefix-affinity] [--port P] "
                         "[--model micro|tiny] [--paging] [--prefix-sharing] "
                         "[--serve-seconds S] [--metrics-dump S] "
                         "[--trace-out PATH] [--fault-shard0 SPEC] "
                         "[--slo RULES] [--slo-interval-ms N] "
                         "[--flight-dir DIR]\n",
                         argv[0]);
            return 2;
        }
    }

    runtime::ClusterOptions opts;
    opts.shards = shards;
    opts.placement = cluster::placement_policy_from_string(policy);
    opts.shard.sampler.temperature = 0.0f;  // deterministic demo output
    opts.shard.paging = paging || prefix_sharing;  // sharing lives in the pool
    opts.shard.prefix_sharing = prefix_sharing;
    if (!trace_out.empty() || !slo_rules.empty() || !flight_dir.empty()) {
        // One shared ring across shards (cross-shard failover reads as one
        // story) + the per-phase profiler, so the timeline has both the
        // request lifecycle and the driver's phase slices. The SLO engine
        // wants the same ring for its alert-transition events and flight
        // bundles.
        opts.shard.trace = std::make_shared<obs::TraceRecorder>(8192);
        opts.shard.profile = true;
    }
    std::shared_ptr<serve::OverloadGovernor> governor;
    if (!slo_rules.empty()) {
        // The actuator half of the SLO loop, shared by every shard's shed
        // sweep and the router's admission/placement paths.
        governor = std::make_shared<serve::OverloadGovernor>();
        opts.shard.overload = governor;
    }
    if (!fault_shard0.empty()) opts.shard_fault_specs = {fault_shard0};
    const model::ModelConfig cfg = model_name == "tiny"
                                       ? model::ModelConfig::tiny_512()
                                       : model::ModelConfig::micro_256();
    runtime::ClusterDeployment d = runtime::synthetic_cluster(cfg, 42, opts);
    std::unique_ptr<cluster::SloController> slo;
    if (!slo_rules.empty() || !flight_dir.empty()) {
        cluster::SloController::Options so;
        so.rules = slo_rules;
        so.flight_dir = flight_dir;
        so.governor = governor;
        so.sample_interval_ns =
            static_cast<std::uint64_t>(slo_interval_ms) * 1'000'000ull;
        slo = std::make_unique<cluster::SloController>(*d.router, so);
    }
    d.router->start();
    if (slo) slo->start();

    cluster::SocketServer::Options sopts;
    sopts.port = port;
    cluster::SocketServer server(*d.router, sopts);
    server.set_slo(slo.get());
    server.start();
    std::printf("listening on 127.0.0.1:%u (%zu shards, %s, %s%s%s)\n",
                server.port(), shards,
                std::string(d.router->placement_name()).c_str(),
                cfg.name.c_str(), opts.shard.paging ? ", paging" : "",
                prefix_sharing ? ", prefix-sharing" : "");
    std::fflush(stdout);

    // Periodic observability dump: the same Prometheus body a kMetrics wire
    // scrape returns, printed on an interval. Interval waits go through a
    // condition variable so shutdown never blocks on a sleeping dumper.
    std::mutex dump_mu;
    std::condition_variable dump_cv;
    bool dump_stop = false;
    std::thread dumper;
    if (metrics_dump_seconds > 0) {
        dumper = std::thread([&] {
            std::unique_lock<std::mutex> lk(dump_mu);
            while (!dump_cv.wait_for(lk,
                                     std::chrono::seconds(metrics_dump_seconds),
                                     [&] { return dump_stop; })) {
                lk.unlock();
                const obs::MetricsSnapshot snap = d.router->metrics_snapshot();
                std::printf("--- metrics dump ---\n%s",
                            obs::to_prometheus(snap).c_str());
                // The windowed view: what the cluster is doing RIGHT NOW,
                // not since boot (the cumulative counters above).
                const auto gauge = [&](const char* name) {
                    const auto it = snap.gauges.find(name);
                    return it == snap.gauges.end() ? 0.0 : it->second;
                };
                std::printf(
                    "window[10s]: %.1f arrivals/s, %.1f tokens/s, "
                    "%.1f deferrals/s, %.1f failovers/s\n",
                    gauge("serve_arrivals_per_s_window_10s"),
                    gauge("serve_tokens_per_s_window_10s"),
                    gauge("serve_deferrals_per_s_window_10s"),
                    gauge("serve_failovers_per_s_window_10s"));
                std::fflush(stdout);
                lk.lock();
            }
        });
    }

    if (serve_seconds >= 0) {
        std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    } else {
        while (std::fgetc(stdin) != EOF) {}
    }

    if (dumper.joinable()) {
        {
            const std::lock_guard<std::mutex> lk(dump_mu);
            dump_stop = true;
        }
        dump_cv.notify_one();
        dumper.join();
    }
    server.stop();
    if (slo) slo->stop();
    d.router->drain();
    if (!trace_out.empty()) {
        // Dump before stop(): a scripted fault may have parked an error that
        // stop() rethrows, and the timeline is the whole point of the run.
        std::ofstream out(trace_out);
        out << d.router->trace_json();
        std::printf("wrote trace to %s\n", trace_out.c_str());
    }
    d.router->stop();
    const runtime::ClusterStats cs = d.router->stats();
    std::printf("served %zu requests (%zu tokens) across %zu shards\n",
                cs.requests_completed(), cs.generated_tokens(), shards);
    for (std::size_t i = 0; i < cs.shards.size(); ++i) {
        std::printf("  shard %zu: %zu requests, %zu tokens, peak batch %zu\n", i,
                    cs.shards[i].stats.requests_completed,
                    cs.shards[i].stats.generated_tokens,
                    cs.shards[i].stats.peak_batch);
    }
    return 0;
}
