// Sharded-cluster serving: aggregate throughput and queue wait vs shard
// count x placement policy, plus the capacity story best-fit placement
// exists for.
//
// Each shard is a fully independent engine (own backend weight walk, own
// governor page pool, own driver thread) — the deployment model is one shard
// per device/NUMA domain, so the cluster's aggregate throughput is total
// tokens over the SLOWEST shard's busy time ("isolated tok/s": busy =
// StepCost wall time for the host backend, modeled device time for accel).
// That metric is what the scaling gate uses — it measures placement balance
// and is independent of how many host cores this machine happens to have.
// Measured wall-clock throughput and first-token waits (p50/p95/p99 from an
// obs::LatencyHistogram — the same log-bucket summaries the serving layer
// exports) are reported alongside: on a machine with >= shards cores the
// wall numbers follow the isolated ones.
//
// Phase A — scaling: policies x shard counts {1, 2, 4} over a uniform
// request load. Placement runs before the drivers start, so routing is a
// deterministic function of queue state, and every run's per-request tokens
// must equal a single-engine ServeEngine baseline (parity fingerprint —
// sharding must not change anyone's output).
//
// Phase B — capacity: a mixed-context workload (whole-pool "big" requests
// interleaved with small ones) against per-shard KV page pools, stepped in
// LOCKSTEP (no drivers) so concurrency is deterministic. Round-robin and
// least-loaded are blind to pages and stack the bigs on one shard where they
// serialize; best-fit-by-pages tops up tight shards with small requests and
// preserves whole-pool headroom for big ones — more sessions admitted
// concurrently and a shorter makespan from the same pools.
//
// Gates (exit code): parity, best-fit peak sessions >= round-robin, and
// either 2-shard isolated tok/s >= 1.5x 1-shard (--smoke: the CI gate) or
// isolated tok/s monotonically non-decreasing over {1, 2, 4} (full run, 2%
// tolerance).
//
// `--json [path]` emits a BENCH_cluster.json perf record; archive it with
// scripts/bench_archive.sh.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/serve.hpp"

using namespace efld;

namespace {

using Clock = std::chrono::steady_clock;

struct ScalingResult {
    std::string policy;
    std::size_t shards = 0;
    double wall_tok_s = 0.0;      // measured on this machine
    double isolated_tok_s = 0.0;  // tokens / slowest-shard busy time
    obs::LatencySummary wait;     // submit-burst start -> first token (ns)
    std::vector<std::vector<std::int32_t>> tokens;  // parity fingerprint
};

std::string prompt_of(std::size_t r) {
    return "cluster request " + std::to_string(r);
}

double ns_to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// Phase A runner: submit everything (deterministic placement over queue
// state), then start the drivers and drain.
ScalingResult run_scaling(const model::QuantizedModelWeights& qw,
                          engine::BackendKind backend,
                          cluster::PlacementPolicy policy, std::size_t shards,
                          std::size_t requests, std::size_t max_new) {
    runtime::ClusterOptions opts;
    opts.shards = shards;
    opts.placement = policy;
    opts.shard.backend = backend;
    opts.shard.sampler.temperature = 0.0f;  // deterministic across placements
    opts.shard.max_queue = requests;
    cluster::ClusterRouter router(qw, opts);

    struct Wait {
        std::atomic<std::int64_t> first_ns{-1};
    };
    std::vector<std::unique_ptr<Wait>> waits;
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t r = 0; r < requests; ++r) {
        waits.push_back(std::make_unique<Wait>());
        Wait* w = waits.back().get();
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = prompt_of(r),
            .max_new_tokens = max_new,
            .on_token =
                [w](std::int32_t, std::string_view) {
                    std::int64_t expected = -1;
                    const std::int64_t now =
                        Clock::now().time_since_epoch().count();
                    w->first_ns.compare_exchange_strong(expected, now);
                }}));
    }

    const auto t0 = Clock::now();
    router.start();
    router.drain();
    router.stop();
    const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    ScalingResult res;
    res.policy = std::string(cluster::to_string(policy));
    res.shards = shards;
    const runtime::ClusterStats cs = router.stats();
    res.wall_tok_s = static_cast<double>(cs.generated_tokens()) / wall_s;
    res.isolated_tok_s = backend == engine::BackendKind::kAccel
                             ? cs.simulated_cluster_tokens_per_s()
                             : cs.isolated_tokens_per_s();
    // First-token waits go through the same log-bucket histogram the serving
    // layer exports — one summary type from bench tables to wire scrapes.
    obs::LatencyHistogram wait_hist;
    const std::int64_t start_ns = t0.time_since_epoch().count();
    for (const auto& w : waits) {
        const std::int64_t f = w->first_ns.load();
        if (f >= start_ns) {
            wait_hist.record(static_cast<std::uint64_t>(f - start_ns));
        }
    }
    res.wait = obs::LatencySummary::from(wait_hist.snapshot());
    for (auto& h : handles) res.tokens.push_back(h.get().tokens);
    return res;
}

// Phase B: mixed-context capacity workload, stepped in lockstep for
// deterministic concurrency.
struct CapacityResult {
    std::string policy;
    std::size_t peak_sessions = 0;  // max over rounds of cluster-wide active
    std::size_t deferrals = 0;      // governor refusals, all shards
    std::size_t rounds = 0;         // lockstep makespan
    std::vector<std::vector<std::int32_t>> tokens;
};

CapacityResult run_capacity(const model::QuantizedModelWeights& qw,
                            engine::BackendKind backend,
                            cluster::PlacementPolicy policy) {
    // Per shard: 8 pages of 8 tokens = one full 64-token context of budget.
    // big = 5 pages (prompt 5 + 35 new = 40 tokens), small = 3 pages
    // (prompt 4 + 20 = 24): two bins where {big, small} packs exactly and
    // {big, big} or {small, small, small} does not — the bin-packing shape
    // page-blind placement fumbles.
    runtime::ClusterOptions opts;
    opts.shards = 2;
    opts.placement = policy;
    opts.shard.backend = backend;
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.max_batch = 4;  // slots are never the bound here
    opts.shard.max_queue = 16;
    opts.shard.paging = true;
    opts.shard.kv_page_tokens = 8;
    opts.shard.kv_pool_pages = 8;
    cluster::ClusterRouter router(qw, opts);

    std::vector<runtime::RequestHandle> handles;
    for (std::size_t pair = 0; pair < 4; ++pair) {
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = "big" + std::to_string(pair), .max_new_tokens = 35}));
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = "sm" + std::to_string(pair), .max_new_tokens = 20}));
    }

    CapacityResult res;
    res.policy = std::string(cluster::to_string(policy));
    bool more = true;
    while (more) {
        more = false;
        for (std::size_t i = 0; i < router.shard_count(); ++i) {
            more = router.shard(i).step() || more;
        }
        std::size_t active = 0;
        for (std::size_t i = 0; i < router.shard_count(); ++i) {
            active += router.shard(i).active_sessions();
        }
        res.peak_sessions = std::max(res.peak_sessions, active);
        ++res.rounds;
        check(res.rounds < 100000, "bench_cluster: lockstep failed to drain");
    }
    const runtime::ClusterStats cs = router.stats();
    res.deferrals = cs.capacity_deferrals();
    for (auto& h : handles) res.tokens.push_back(h.get().tokens);
    return res;
}

// Per-phase cost attribution, cluster-wide: a 2-shard profiled run whose
// serve_phase_* counters merge across shards in the router's snapshot.
struct PhaseTotalsRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t sim_ns = 0;
};

std::vector<PhaseTotalsRow> run_phases(const model::QuantizedModelWeights& qw,
                                       engine::BackendKind backend,
                                       std::size_t requests,
                                       std::size_t max_new) {
    runtime::ClusterOptions opts;
    opts.shards = 2;
    opts.shard.backend = backend;
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.max_queue = requests;
    opts.shard.profile = true;
    cluster::ClusterRouter router(qw, opts);
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t r = 0; r < requests; ++r) {
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = prompt_of(r), .max_new_tokens = max_new}));
    }
    router.start();
    router.drain();
    router.stop();
    for (auto& h : handles) (void)h.get();
    const obs::MetricsSnapshot snap = router.metrics_snapshot();
    std::vector<PhaseTotalsRow> rows;
    for (int p = 0; p < static_cast<int>(obs::Phase::kCount); ++p) {
        PhaseTotalsRow row;
        row.name = obs::to_string(static_cast<obs::Phase>(p));
        const std::string base = "serve_phase_" + row.name;
        const auto counter = [&](const std::string& n) -> std::uint64_t {
            const auto it = snap.counters.find(n);
            return it == snap.counters.end() ? 0 : it->second;
        };
        row.count = counter(base + "_count_total");
        row.wall_ns = counter(base + "_wall_ns_total");
        row.sim_ns = counter(base + "_sim_ns_total");
        if (row.count > 0) rows.push_back(row);
    }
    return rows;
}

}  // namespace

int main(int argc, char** argv) {
    std::string model_name = "micro";
    std::string backend_name = "host";
    std::size_t requests = 48;
    std::size_t max_new = 16;
    bool smoke = false;
    bool emit_json = false;
    std::string json_path = "BENCH_cluster.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(4, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--model micro|tiny] [--backend host|accel] "
                         "[--requests R] [--tokens N] [--smoke] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }
    const engine::BackendKind backend =
        engine::backend_kind_from_string(backend_name);
    const model::ModelConfig cfg = model_name == "tiny"
                                       ? model::ModelConfig::tiny_512()
                                       : model::ModelConfig::micro_256();
    if (smoke) requests = std::min<std::size_t>(requests, 24);

    std::printf(
        "=== Cluster serving: %s, %s backend, %zu requests x %zu tokens%s ===\n\n",
        cfg.name.c_str(), backend_name.c_str(), requests, max_new,
        smoke ? " (smoke)" : "");

    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    // Single-engine baseline: the parity fingerprint every cluster run must
    // reproduce request for request.
    std::vector<std::vector<std::int32_t>> baseline;
    {
        runtime::ServeOptions so;
        so.backend = backend;
        so.sampler.temperature = 0.0f;
        so.max_queue = requests;
        runtime::ServeDeployment d = runtime::synthetic_serve(cfg, 42, so);
        std::vector<std::future<runtime::ServeResult>> futs;
        for (std::size_t r = 0; r < requests; ++r) {
            futs.push_back(d.engine->submit(prompt_of(r), max_new));
        }
        d.engine->run_until_idle();
        for (auto& f : futs) baseline.push_back(f.get().tokens);
    }

    // ---- Phase A: scaling ----
    const std::vector<std::size_t> shard_counts =
        smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
    const std::vector<cluster::PlacementPolicy> policies =
        smoke ? std::vector<cluster::PlacementPolicy>{
                    cluster::PlacementPolicy::kLeastLoaded}
              : std::vector<cluster::PlacementPolicy>{
                    cluster::PlacementPolicy::kRoundRobin,
                    cluster::PlacementPolicy::kLeastLoaded,
                    cluster::PlacementPolicy::kBestFitPages};

    std::printf("%-14s | %6s | %12s | %12s | %9s | %9s | %9s\n", "policy",
                "shards", "wall tok/s", "isol. tok/s", "p50 wait", "p95 wait",
                "p99 wait");
    std::printf(
        "------------------------------------------------------------------------"
        "--------------\n");
    std::vector<ScalingResult> scaling;
    bool parity = true;
    for (const cluster::PlacementPolicy policy : policies) {
        for (const std::size_t shards : shard_counts) {
            scaling.push_back(
                run_scaling(qw, backend, policy, shards, requests, max_new));
            const ScalingResult& r = scaling.back();
            std::printf(
                "%-14s | %6zu | %12.1f | %12.1f | %7.1fms | %7.1fms | %7.1fms\n",
                r.policy.c_str(), r.shards, r.wall_tok_s, r.isolated_tok_s,
                ns_to_ms(r.wait.p50_ns), ns_to_ms(r.wait.p95_ns),
                ns_to_ms(r.wait.p99_ns));
            if (r.tokens != baseline) parity = false;
        }
    }
    std::printf("\nper-request tokens identical to single-engine serve: %s\n",
                parity ? "yes" : "NO (regression!)");

    // Scaling gates on the least-loaded column (the default policy).
    std::vector<double> isolated_by_shards;
    for (const ScalingResult& r : scaling) {
        if (r.policy == "least-loaded") isolated_by_shards.push_back(r.isolated_tok_s);
    }
    bool monotonic = true;
    for (std::size_t i = 1; i < isolated_by_shards.size(); ++i) {
        if (isolated_by_shards[i] < 0.98 * isolated_by_shards[i - 1]) {
            monotonic = false;
        }
    }
    const double smoke_speedup =
        isolated_by_shards.size() >= 2 && isolated_by_shards[0] > 0.0
            ? isolated_by_shards[1] / isolated_by_shards[0]
            : 0.0;
    if (smoke) {
        std::printf("2-shard isolated speedup: %.2fx (gate: >= 1.5x) — %s\n",
                    smoke_speedup, smoke_speedup >= 1.5 ? "ok" : "FAIL");
    } else {
        std::printf("isolated tok/s monotonic over shard count: %s\n",
                    monotonic ? "yes" : "NO (regression!)");
    }

    // ---- Phase B: capacity under mixed contexts ----
    std::printf("\n=== Capacity: mixed big/small contexts, 2 shards x 8-page "
                "pools (lockstep) ===\n\n");
    std::printf("%-14s | %14s | %9s | %8s\n", "policy", "peak sessions",
                "deferrals", "rounds");
    std::printf("----------------------------------------------------\n");
    std::vector<CapacityResult> capacity;
    for (const cluster::PlacementPolicy policy :
         {cluster::PlacementPolicy::kRoundRobin,
          cluster::PlacementPolicy::kLeastLoaded,
          cluster::PlacementPolicy::kBestFitPages}) {
        capacity.push_back(run_capacity(qw, backend, policy));
        const CapacityResult& r = capacity.back();
        std::printf("%-14s | %14zu | %9zu | %8zu\n", r.policy.c_str(),
                    r.peak_sessions, r.deferrals, r.rounds);
    }
    const CapacityResult& cap_rr = capacity[0];
    const CapacityResult& cap_bf = capacity[2];
    const bool bf_admits = cap_bf.peak_sessions >= cap_rr.peak_sessions;
    bool cap_parity = true;
    for (std::size_t i = 1; i < capacity.size(); ++i) {
        if (capacity[i].tokens != capacity[0].tokens) cap_parity = false;
    }
    std::printf("\nbest-fit admits >= round-robin sessions: %s (%zu vs %zu)\n",
                bf_admits ? "yes" : "NO (regression!)", cap_bf.peak_sessions,
                cap_rr.peak_sessions);
    if (!cap_parity) {
        std::printf("WARNING: capacity-workload tokens diverged across policies!\n");
    }

    // ---- per-phase attribution, merged across 2 shards ----
    const std::vector<PhaseTotalsRow> phases =
        run_phases(qw, backend, std::min<std::size_t>(requests, 16), max_new);
    std::printf("\n=== Per-phase cost attribution (2 shards, merged) ===\n");
    std::printf("%-14s | %10s | %12s | %12s\n", "phase", "count", "wall ms",
                "sim ms");
    std::printf("------------------------------------------------------\n");
    for (const PhaseTotalsRow& row : phases) {
        std::printf("%-14s | %10llu | %12.3f | %12.3f\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.count),
                    static_cast<double>(row.wall_ns) / 1e6,
                    static_cast<double>(row.sim_ns) / 1e6);
    }

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"cluster\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"backend\": \"" << backend_name << "\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
            << "  \"parity\": " << (parity ? "true" : "false") << ",\n"
            << "  \"scaling\": [\n";
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const ScalingResult& r = scaling[i];
            out << "    {\"policy\": \"" << r.policy << "\", \"shards\": "
                << r.shards << ", \"wall_tok_s\": " << r.wall_tok_s
                << ", \"isolated_tok_s\": " << r.isolated_tok_s
                << ", \"latency\": {\"count\": " << r.wait.count
                << ", \"p50_wait_ms\": " << ns_to_ms(r.wait.p50_ns)
                << ", \"p95_wait_ms\": " << ns_to_ms(r.wait.p95_ns)
                << ", \"p99_wait_ms\": " << ns_to_ms(r.wait.p99_ns)
                << ", \"max_wait_ms\": " << ns_to_ms(r.wait.max_ns) << "}}"
                << (i + 1 < scaling.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        if (smoke) {
            out << "  \"smoke_speedup_2_shards\": " << smoke_speedup << ",\n";
        } else {
            out << "  \"scaling_monotonic\": " << (monotonic ? "true" : "false")
                << ",\n";
        }
        out << "  \"capacity\": {\n"
            << "    \"shards\": 2, \"pool_pages\": 8, \"page_tokens\": 8,\n";
        for (std::size_t i = 0; i < capacity.size(); ++i) {
            const CapacityResult& r = capacity[i];
            out << "    \"" << r.policy << "\": {\"peak_sessions\": "
                << r.peak_sessions << ", \"deferrals\": " << r.deferrals
                << ", \"rounds\": " << r.rounds << "}"
                << (i + 1 < capacity.size() ? "," : "") << "\n";
        }
        out << "  },\n"
            << "  \"phases\": [\n";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const PhaseTotalsRow& row = phases[i];
            out << "    {\"phase\": \"" << row.name
                << "\", \"count\": " << row.count
                << ", \"wall_ns\": " << row.wall_ns
                << ", \"sim_ns\": " << row.sim_ns << "}"
                << (i + 1 < phases.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    const bool scaling_ok = smoke ? smoke_speedup >= 1.5 : monotonic;
    return (parity && cap_parity && bf_admits && scaling_ok) ? 0 : 1;
}
