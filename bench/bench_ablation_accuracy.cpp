// Ablation — numerical fidelity of the quantization choices (§IV).
//
// End-to-end logits similarity vs. the float golden model on a synthetic
// tiny model, across weight and KV precisions. Shapes to reproduce:
//   - W4A16 (AWQ-style grouping) loses little vs. W8A16,
//   - KV8 is near-transparent, KV4 visibly degrades — the reason the paper
//     follows Li et al. and keeps the cache at 8 bits for a 7B model.
#include <cstdio>

#include "common/mathutil.hpp"
#include "model/reference_engine.hpp"
#include "model/sampler.hpp"

using namespace efld;

namespace {

double rollout_similarity(model::ReferenceEngine& golden, model::ReferenceEngine& test,
                          int steps) {
    golden.reset();
    test.reset();
    std::vector<float> lg, lt;
    std::int32_t tg = 1;
    for (int i = 0; i < steps; ++i) {
        lg = golden.forward(tg);
        lt = test.forward(tg);
        tg = model::Sampler::argmax(lg);  // teacher-forced greedy path
    }
    return cosine_similarity(lg, lt);
}

}  // namespace

int main() {
    std::printf("=== Ablation: quantization fidelity (tiny-512 synthetic, 12-step "
                "teacher-forced rollout) ===\n\n");
    const model::ModelConfig cfg = model::ModelConfig::tiny_512();
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 2024);

    quant::GroupQuantConfig g4;  // 4-bit, group 128
    quant::GroupQuantConfig g8;
    g8.bits = 8;
    const model::QuantizedModelWeights w4 = model::QuantizedModelWeights::quantize(fw, g4);
    const model::QuantizedModelWeights w8 = model::QuantizedModelWeights::quantize(fw, g8);

    struct Variant {
        const char* name;
        model::ReferenceEngine engine;
    };
    model::ReferenceEngine golden(fw);
    Variant variants[] = {
        {"FP16-ish weights + float KV (golden)", model::ReferenceEngine(fw)},
        {"W8A16 + float KV", model::ReferenceEngine(w8)},
        {"W4A16 + float KV", model::ReferenceEngine(w4)},
        {"W4A16 + KV8  (deployed)", model::ReferenceEngine(w4, true, 8)},
        {"W4A16 + KV4  (rejected by the paper)", model::ReferenceEngine(w4, true, 4)},
        {"W4A16 + KV2  (for scale)", model::ReferenceEngine(w4, true, 2)},
    };

    std::printf("  %-40s %18s\n", "configuration", "cosine(logits)");
    std::printf("  --------------------------------------------------------------\n");
    double kv8_sim = 1.0, kv4_sim = 1.0;
    for (auto& v : variants) {
        const double sim = rollout_similarity(golden, v.engine, 12);
        std::printf("  %-40s %18.5f\n", v.name, sim);
        if (std::string_view(v.name).find("KV8") != std::string_view::npos) kv8_sim = sim;
        if (std::string_view(v.name).find("KV4") != std::string_view::npos) kv4_sim = sim;
    }

    std::printf("\n  KV8 -> KV4 similarity drop: %.5f (KV8 is ~free, KV4 is not — "
                "§IV.B's choice, on synthetic worst-case weights)\n",
                kv8_sim - kv4_sim);
    return 0;
}
