// Observability-overhead smoke gate: serving throughput with the per-phase
// profiler ON must stay within a few percent of profiler OFF.
//
// The profiler's hot-path contract is "cheap enough to leave on": scoped
// spans are two clock reads plus relaxed atomic adds, and the span ring is
// touched only on control-plane phases (admission, retire) or per-step, not
// per weight element. This bench measures the same continuous-batching
// workload both ways (best of --reps runs each, interleaved) and gates the
// ratio at >= 0.97x — a regression here means someone put real work on the
// instrumented path.
//
// `--json [path]` emits a BENCH_obs_overhead.json perf record; archive it
// with scripts/bench_archive.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/serve.hpp"

using namespace efld;

namespace {

double run_once(const model::QuantizedModelWeights& qw, bool profile,
                std::size_t requests, std::size_t max_new) {
    serve::ServeOptions opts;
    opts.max_batch = 4;
    opts.max_queue = requests;
    opts.sampler.temperature = 0.0f;
    opts.profile = profile;
    serve::ServeEngine eng(qw, opts);
    std::vector<std::future<serve::ServeResult>> futs;
    futs.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(eng.submit("overhead probe " + std::to_string(r), max_new));
    }
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until_idle();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (auto& f : futs) (void)f.get();
    return static_cast<double>(eng.stats().generated_tokens) / s;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 8;
    std::size_t max_new = 24;
    std::size_t reps = 3;
    bool emit_json = false;
    std::string json_path = "BENCH_obs_overhead.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests R] [--tokens N] [--reps K] "
                         "[--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }

    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    std::printf(
        "=== Profiler overhead: %s, host backend, %zu requests x %zu tokens, "
        "best of %zu ===\n\n",
        cfg.name.c_str(), requests, max_new, reps);

    // Interleave off/on reps so machine-load drift hits both columns alike;
    // best-of-K is the standard wall-clock noise filter.
    double best_off = 0.0;
    double best_on = 0.0;
    for (std::size_t k = 0; k < reps; ++k) {
        best_off = std::max(best_off, run_once(qw, false, requests, max_new));
        best_on = std::max(best_on, run_once(qw, true, requests, max_new));
    }
    const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;
    const bool ok = ratio >= 0.97;

    std::printf("profiler off: %10.2f tok/s\n", best_off);
    std::printf("profiler on:  %10.2f tok/s\n", best_on);
    std::printf("\nratio on/off: %.4f (gate: >= 0.97) — %s\n", ratio,
                ok ? "ok" : "FAIL");

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"obs_overhead\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"reps\": " << reps << ",\n"
            << "  \"tok_s_profiler_off\": " << best_off << ",\n"
            << "  \"tok_s_profiler_on\": " << best_on << ",\n"
            << "  \"ratio\": " << ratio << ",\n"
            << "  \"ok\": " << (ok ? "true" : "false") << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
