// Observability-overhead smoke gate: serving throughput with the per-phase
// profiler ON — and separately with the full SLO stack (TSDB sampler +
// alert evaluation) running against the live engine — must stay within a
// few percent of everything-OFF.
//
// The profiler's hot-path contract is "cheap enough to leave on": scoped
// spans are two clock reads plus relaxed atomic adds, and the span ring is
// touched only on control-plane phases (admission, retire) or per-step, not
// per weight element. The SLO stack's contract is "off the hot path
// entirely": a background thread snapshots metrics, ingests into the
// time-series store, and evaluates alert rules — the engine only pays the
// snapshot's atomic reads. This bench measures the same continuous-batching
// workload all three ways (median of --reps paired ratios, arm order
// rotated) and gates each ratio — profiler >= 0.95x (it instruments the
// driver thread itself), SLO stack >= 0.97x (it must stay off that thread
// entirely). A regression here means someone put real work on an
// instrumented path.
//
// `--json [path]` emits a BENCH_obs_overhead.json perf record; archive it
// with scripts/bench_archive.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/alert_engine.hpp"
#include "obs/time_series.hpp"
#include "runtime/serve.hpp"

using namespace efld;

namespace {

enum class Mode { kOff, kProfiler, kSlo };

// Driver-thread CPU seconds. The gate is about work ON the serving path, so
// the clock must not charge the driver for scheduler preemption (wall time
// on a 1-core CI container is mostly noise) nor for the SLO stack's own
// background thread (whose CPU share is a deliberate, bounded tax — what
// must stay clean is the engine's step loop).
double thread_cpu_s() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) / 1e9;
}

double run_once(const model::QuantizedModelWeights& qw, Mode mode,
                std::size_t requests, std::size_t max_new) {
    serve::ServeOptions opts;
    opts.max_batch = 4;
    opts.max_queue = requests;
    opts.sampler.temperature = 0.0f;
    opts.profile = mode == Mode::kProfiler;
    serve::ServeEngine eng(qw, opts);

    // The SLO arm runs the full detection pipeline at an aggressive 10ms
    // cadence (100x the 1s production default): snapshot -> TSDB ingest ->
    // alert evaluation, with live threshold + burn-rate rules that never
    // fire. Each cycle snapshots the whole registry (string-keyed maps), so
    // the cadence is the overhead knob — 10ms keeps the background thread's
    // CPU share proportionate to what any sane deployment would run. The
    // throughput metric divides by driver-thread CPU time, so this arm gates
    // what the ENGINE pays (snapshot locks + atomic reads), not the
    // background thread's own cycles.
    std::unique_ptr<obs::TimeSeriesStore> store;
    std::unique_ptr<obs::AlertEngine> alerts;
    std::unique_ptr<obs::MetricsSampler> sampler;
    if (mode == Mode::kSlo) {
        store = std::make_unique<obs::TimeSeriesStore>(
            obs::TimeSeriesStore::Options{});
        alerts = std::make_unique<obs::AlertEngine>(store.get());
        for (const obs::AlertRule& r : obs::parse_alert_rules(
                 "depth=threshold:serve_queued:gt:1000000:0,"
                 "ttft=burnrate:serve_ttft_ns:60000:0.999:14:3600s:300s")) {
            alerts->add_rule(r);
        }
        obs::MetricsSampler::Options so;
        so.interval_ns = 10'000'000;  // 10ms
        sampler = std::make_unique<obs::MetricsSampler>(
            [&eng] { return eng.metrics_snapshot(); }, store.get(), so);
        sampler->set_on_sample(
            [&alerts](std::uint64_t now_ns) { alerts->evaluate(now_ns); });
        sampler->start();
    }

    std::vector<std::future<serve::ServeResult>> futs;
    futs.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(eng.submit("overhead probe " + std::to_string(r), max_new));
    }
    const double cpu0 = thread_cpu_s();
    eng.run_until_idle();
    const double s = thread_cpu_s() - cpu0;
    for (auto& f : futs) (void)f.get();
    if (sampler) sampler->stop();
    return static_cast<double>(eng.stats().generated_tokens) / s;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 16;
    std::size_t max_new = 32;
    std::size_t reps = 7;
    bool emit_json = false;
    std::string json_path = "BENCH_obs_overhead.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests R] [--tokens N] [--reps K] "
                         "[--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }

    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    std::printf(
        "=== Profiler overhead: %s, host backend, %zu requests x %zu tokens, "
        "best of %zu ===\n\n",
        cfg.name.c_str(), requests, max_new, reps);

    // One unmeasured warmup absorbs first-touch page faults and allocator
    // warm-up, which would otherwise be charged entirely to the first arm.
    (void)run_once(qw, Mode::kOff, requests, max_new);

    // The three arms of one rep run back to back, so they see the same
    // machine conditions; the per-rep RATIO is the low-noise statistic, and
    // the median across reps discards the reps a scheduler hiccup corrupted.
    // (Best-of-K per arm is not enough on small containers: the arms' "best"
    // windows need not coincide.) The arm ORDER rotates each rep: clock
    // frequency drifts downward through a rep on thermally-limited boxes,
    // and a fixed order would hand the first arm a systematic edge.
    double best_off = 0.0;
    double best_prof = 0.0;
    double best_slo = 0.0;
    std::vector<double> ratios_prof, ratios_slo;
    for (std::size_t k = 0; k < reps; ++k) {
        double off = 0.0, prof = 0.0, slo = 0.0;
        static constexpr Mode kOrders[3][3] = {
            {Mode::kOff, Mode::kProfiler, Mode::kSlo},
            {Mode::kProfiler, Mode::kSlo, Mode::kOff},
            {Mode::kSlo, Mode::kOff, Mode::kProfiler},
        };
        for (Mode m : kOrders[k % 3]) {
            const double v = run_once(qw, m, requests, max_new);
            (m == Mode::kOff ? off : m == Mode::kProfiler ? prof : slo) = v;
        }
        best_off = std::max(best_off, off);
        best_prof = std::max(best_prof, prof);
        best_slo = std::max(best_slo, slo);
        if (off > 0.0) {
            ratios_prof.push_back(prof / off);
            ratios_slo.push_back(slo / off);
        }
    }
    const auto median = [](std::vector<double> v) {
        if (v.empty()) return 0.0;
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double ratio_prof = median(ratios_prof);
    const double ratio_slo = median(ratios_slo);
    // The profiler instruments the driver thread itself (scoped spans on
    // every phase), so its CPU-time cost is real if small — gate at 0.95.
    // The SLO stack must be entirely off the driver thread — gate at 0.97.
    const bool prof_ok = ratio_prof >= 0.95;
    const bool slo_ok = ratio_slo >= 0.97;
    const bool ok = prof_ok && slo_ok;

    std::printf("everything off:      %10.2f tok/cpu-s (best of %zu)\n",
                best_off, reps);
    std::printf("profiler on:         %10.2f tok/cpu-s\n", best_prof);
    std::printf("slo stack @10ms:     %10.2f tok/cpu-s\n", best_slo);
    std::printf("\nratio profiler/off: %.4f median (gate: >= 0.95) — %s\n",
                ratio_prof, prof_ok ? "ok" : "FAIL");
    std::printf("ratio slo/off:      %.4f median (gate: >= 0.97) — %s\n",
                ratio_slo, slo_ok ? "ok" : "FAIL");

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"obs_overhead\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"reps\": " << reps << ",\n"
            << "  \"tok_s_off\": " << best_off << ",\n"
            << "  \"tok_s_profiler_on\": " << best_prof << ",\n"
            << "  \"tok_s_slo_stack\": " << best_slo << ",\n"
            << "  \"ratio_profiler\": " << ratio_prof << ",\n"
            << "  \"ratio_slo\": " << ratio_slo << ",\n"
            << "  \"ok\": " << (ok ? "true" : "false") << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
