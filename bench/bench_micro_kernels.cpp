// Micro-kernel benchmarks (google-benchmark): the simulator's own hot paths.
#include <benchmark/benchmark.h>

#include "accel/hw_exp.hpp"
#include "accel/spu_rope.hpp"
#include "accel/spu_softmax.hpp"
#include "accel/vpu.hpp"
#include "common/rng.hpp"
#include "memsim/memory_system.hpp"
#include "quant/groupquant.hpp"
#include "quant/kvquant.hpp"
#include "quant/weight_format.hpp"

using namespace efld;

namespace {

std::vector<Fp16> random_halfs(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Fp16> v(n);
    for (auto& x : v) x = Fp16::from_float(static_cast<float>(rng.gaussian()));
    return v;
}

void BM_Fp16Conversion(benchmark::State& state) {
    Xoshiro256 rng(1);
    std::vector<float> xs(1024);
    for (auto& x : xs) x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        for (const float x : xs) {
            benchmark::DoNotOptimize(float_to_half_bits(x));
        }
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Fp16Conversion);

void BM_Dot128(benchmark::State& state) {
    const auto a = random_halfs(128, 2);
    const auto b = random_halfs(128, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel::DotEngine::dot128(a, b));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Dot128);

void BM_PackedGemv(benchmark::State& state) {
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    const std::size_t cols = 512;
    Xoshiro256 rng(4);
    std::vector<float> w(rows * cols);
    for (auto& x : w) x = static_cast<float>(rng.gaussian(0.0, 0.05));
    const auto q = quant::QuantizedLinear::quantize(w, rows, cols, {});
    const auto stream = quant::pack_weight_stream(q);
    const auto x = random_halfs(cols, 5);
    std::vector<Fp16> y(rows);
    for (auto _ : state) {
        accel::DotEngine::gemv(stream, rows, cols, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_PackedGemv)->Arg(16)->Arg(64)->Arg(256);

void BM_WeightPack(benchmark::State& state) {
    Xoshiro256 rng(6);
    std::vector<float> w(64 * 512);
    for (auto& x : w) x = static_cast<float>(rng.gaussian(0.0, 0.05));
    const auto q = quant::QuantizedLinear::quantize(w, 64, 512, {});
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant::pack_weight_stream(q));
    }
    state.SetBytesProcessed(state.iterations() * 64 * 512 / 2);
}
BENCHMARK(BM_WeightPack);

void BM_KvQuantize(benchmark::State& state) {
    Xoshiro256 rng(7);
    std::vector<float> x(128);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant::kv_quantize(x));
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_KvQuantize);

void BM_HwExp(benchmark::State& state) {
    const accel::HwExp hw;
    const auto xs = random_halfs(256, 8);
    for (auto _ : state) {
        for (const Fp16 x : xs) benchmark::DoNotOptimize(hw.exp(x));
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HwExp);

void BM_SpuSoftmax(benchmark::State& state) {
    const accel::HwExp hw;
    const accel::SpuSoftmax sm(hw);
    const auto x = random_halfs(static_cast<std::size_t>(state.range(0)), 9);
    std::vector<Fp16> out(x.size());
    for (auto _ : state) {
        sm.run(x, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpuSoftmax)->Arg(128)->Arg(1024);

void BM_SpuRope(benchmark::State& state) {
    const accel::SpuRope rope;
    auto v = random_halfs(128, 10);
    std::size_t pos = 0;
    for (auto _ : state) {
        rope.run(v, pos++ % 1024);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SpuRope);

void BM_MemorySystemSequential(benchmark::State& state) {
    memsim::MemorySystem mem(memsim::MemorySystemConfig::kv260());
    const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0)) << 20;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.sequential_read_ns(0, bytes));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MemorySystemSequential)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
