// Extension — roofline view of the §VIII discussion: decode is memory-bound
// on every edge device; the 128-lane VPU puts the KV260 ridge exactly at the
// decode intensity (bandwidth-area balance); prefill crosses the ridge.
#include <cstdio>

#include "analytic/roofline.hpp"

using namespace efld;
using analytic::DeviceRoofline;
using analytic::Roofline;
using analytic::RooflinePoint;

int main() {
    std::printf("=== Roofline: 4-bit LLaMA2-7B across edge devices ===\n\n");
    const auto cfg = model::ModelConfig::llama2_7b();
    const auto scheme = model::QuantScheme::w4a16_kv8();
    const double macs_per_token =
        static_cast<double>(cfg.layer_params() + cfg.lm_head_params());

    std::printf("decode intensity: %.2f MACs/byte (one use per quantized weight)\n\n",
                1.0 / scheme.bytes_per_weight());
    std::printf("%-20s | %10s | %12s | %12s | %10s\n", "device", "ridge", "decode bound",
                "decode t/s", "crossover");
    std::printf("------------------------------------------------------------------------\n");
    for (const DeviceRoofline& dev :
         {DeviceRoofline::kv260_accelerator(), DeviceRoofline::jetson_orin_nano(),
          DeviceRoofline::jetson_agx_orin()}) {
        const RooflinePoint pt = Roofline::decode(dev, cfg, scheme);
        std::printf("%-20s | %10.2f | %12s | %12.2f | %7.1f tok\n", dev.name.c_str(),
                    dev.ridge_intensity(), pt.memory_bound ? "memory" : "compute",
                    pt.tokens_per_s(macs_per_token),
                    Roofline::crossover_prompt_len(dev, cfg, scheme));
    }

    std::printf("\nprefill on the KV260 accelerator:\n");
    for (const std::size_t n : {1u, 2u, 4u, 16u, 64u}) {
        const RooflinePoint pt =
            Roofline::prefill(DeviceRoofline::kv260_accelerator(), cfg, scheme, n);
        std::printf("  prompt %3zu: intensity %7.2f MACs/byte -> %s-bound\n", n,
                    pt.intensity, pt.memory_bound ? "memory" : "compute");
    }
    std::printf("\nreading: the KV260 ridge (2.0) sits exactly at the decode intensity "
                "(1.92) — the VPU is\nsized to the stream, wasting neither area nor "
                "bandwidth (§VI.B). GPUs have ridges 100x\nhigher: their decode "
                "utilization suffers (Table III), their prefill shines.\n");
    return 0;
}
