// Table III — comparison with embedded CPUs and GPUs on 4-bit LLaMA2-7B
// decoding. Framework rows use the rates published for those devices; the
// KV260 row comes from the live cycle simulator.
#include <cstdio>
#include <iostream>

#include "accel/cycle_model.hpp"
#include "analytic/comparison.hpp"

using namespace efld;

int main() {
    std::printf("=== Table III: comparison with embedded CPU/GPUs (4-bit LLaMA2-7B) "
                "===\n\n");

    accel::DecodeCycleModel sim(model::ModelConfig::llama2_7b(),
                                model::QuantScheme::w4a16_kv8(), accel::AccelConfig{});
    const double ours = sim.token_timing(512).tokens_per_s();
    std::printf("simulated KV260 decode rate (ctx=512): %.2f token/s "
                "[paper reports 4.9]\n\n",
                ours);

    const auto rows = analytic::build_table3(ours);
    analytic::print_table3(std::cout, rows);

    // The headline claim: highest bandwidth utilization despite the smallest
    // memory system — ~6% above Orin Nano + NanoLLM.
    double nano = 0, mine = 0;
    for (const auto& r : rows) {
        if (r.row.device == "JetsonOrinNano") nano = r.perf.utilization_pct();
        if (r.row.work == "Ours") mine = r.perf.utilization_pct();
    }
    std::printf("\nutilization gap vs. Jetson Orin Nano + NanoLLM: +%.1f%% "
                "(paper: ~6%% higher)\n",
                mine - nano);
    return 0;
}
