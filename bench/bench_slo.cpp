// Closed-loop SLO gate: proves the alert→governor loop actually protects the
// cluster instead of just narrating its demise.
//
// Two scripted scenarios over a live single-shard cluster with a real
// SloController sampling every few milliseconds:
//
//   overload   — more deadline-carrying work than the shard can finish in
//                budget. Run twice: governor attached (alert fires → queue
//                shedding + stretched hints) vs detect-only. The gate:
//                shedding-on GOODPUT (deadline-met completions per second)
//                must hold >= 0.97x shedding-off — shedding stops the engine
//                from burning batch slots on requests that cannot land, so
//                the run ends sooner with the same survivors — and the
//                admitted requests' p99 TTFT must stay inside the SLO bound.
//   no overload — light load, same full SLO stack. The gate: ZERO sheds and
//                bit-identical tokens to a bare cluster with no SLO machinery
//                at all. Protection must be invisible until needed.
//
// `--json [path]` emits BENCH_slo.json; archive with scripts/bench_archive.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/slo_controller.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/serve.hpp"
#include "serve/overload.hpp"

using namespace efld;

namespace {

struct RunResult {
    double wall_s = 0.0;
    std::size_t deadline_met = 0;  // finished their full budget in time
    std::size_t shed = 0;
    std::uint64_t ttft_p99_ns = 0;  // admitted requests only
    std::vector<std::vector<std::int32_t>> tokens;
};

runtime::ClusterOptions cluster_opts() {
    runtime::ClusterOptions opts;
    opts.shards = 1;
    opts.shard.max_batch = 2;
    opts.shard.sampler.temperature = 0.0f;
    return opts;
}

// One measured pass: `requests` submissions of `max_new` tokens each, all
// carrying `budget` as their deadline (zero budget = no deadlines). The SLO
// stack samples serve_queued at 2ms; with `govern` the firing alert engages
// shedding, without it the controller only detects.
RunResult run_cluster(std::size_t requests, std::size_t max_new,
                      std::chrono::milliseconds budget, bool govern,
                      bool with_slo = true) {
    runtime::ClusterOptions opts = cluster_opts();
    std::shared_ptr<serve::OverloadGovernor> governor;
    if (govern) {
        // Conservative margin: the shed estimate is the MEAN observed TTFT,
        // which overstates the wait of requests near the queue head. A low
        // margin sheds only the deep tail that cannot possibly land, never a
        // request the next admission would have saved.
        serve::OverloadGovernor::Options go;
        go.hopeless_margin = 0.3;
        governor = std::make_shared<serve::OverloadGovernor>(go);
        opts.shard.overload = governor;
    }
    runtime::ClusterDeployment d =
        runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, opts);
    d.router->start();

    std::unique_ptr<cluster::SloController> slo;
    if (with_slo) {
        cluster::SloController::Options so;
        so.rules = "overload=threshold:serve_queued:gt:3:0";
        so.sample_interval_ns = 2'000'000;  // 2ms
        so.governor = governor;
        slo = std::make_unique<cluster::SloController>(*d.router, so);
        slo->start();
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<runtime::RequestHandle> handles;
    handles.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        runtime::ServeRequest req;
        req.prompt = "slo probe " + std::to_string(r);
        req.max_new_tokens = max_new;
        if (budget.count() > 0) req.deadline = t0 + budget;
        handles.push_back(d.router->submit(std::move(req)));
    }

    RunResult out;
    for (auto& h : handles) {
        const runtime::ServeResult& r = h.get();
        out.tokens.push_back(r.tokens);
        out.deadline_met +=
            r.finish_reason == runtime::FinishReason::kBudget ? 1 : 0;
        out.shed +=
            r.finish_reason == runtime::FinishReason::kShedOverload ? 1 : 0;
    }
    out.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const obs::MetricsSnapshot snap = d.router->metrics_snapshot();
    const auto it = snap.histograms.find("serve_ttft_ns");
    if (it != snap.histograms.end() && it->second.count > 0) {
        out.ttft_p99_ns = obs::LatencySummary::from(it->second).p99_ns;
    }
    if (slo) slo->stop();
    d.router->drain();
    d.router->stop();
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 24;
    std::size_t max_new = 24;
    bool emit_json = false;
    std::string json_path = "BENCH_slo.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(4, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests R] [--tokens N] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf(
        "=== SLO closed loop: micro-256, 1 shard x batch 2, %zu requests x "
        "%zu tokens ===\n\n",
        requests, max_new);

    // Calibrate: fault-free wall time for the full workload sets the deadline
    // budget and the TTFT SLO bound, keeping the gates meaningful on any
    // machine. 0.45x lands the budget mid-gap between batch completions —
    // roughly the first half of the queue is comfortably viable, the rest is
    // comfortably hopeless — so the viable/doomed split is stable run to run.
    const RunResult cal =
        run_cluster(requests, max_new, std::chrono::milliseconds(0), false,
                    /*with_slo=*/false);
    const auto budget = std::chrono::milliseconds(
        std::max<std::int64_t>(20, static_cast<std::int64_t>(cal.wall_s * 450.0)));
    std::printf("calibration: %.3f s fault-free -> %lld ms deadline budget\n\n",
                cal.wall_s, static_cast<long long>(budget.count()));

    // Scenario 1: overload, detect-only vs closed-loop. One timed run is one
    // noisy sample on a shared machine (the container's clock speed drifts
    // between calibration and measurement), so interleave three runs per arm
    // and gate on the MEDIAN goodput — drift hits both arms equally.
    std::vector<RunResult> offs, ons;
    for (int rep = 0; rep < 3; ++rep) {
        offs.push_back(run_cluster(requests, max_new, budget, false));
        ons.push_back(run_cluster(requests, max_new, budget, true));
    }
    const auto goodput = [](const RunResult& r) {
        return r.wall_s > 0.0 ? static_cast<double>(r.deadline_met) / r.wall_s
                              : 0.0;
    };
    const auto median3 = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double goodput_off =
        median3({goodput(offs[0]), goodput(offs[1]), goodput(offs[2])});
    const double goodput_on =
        median3({goodput(ons[0]), goodput(ons[1]), goodput(ons[2])});
    RunResult off = offs[0];
    RunResult on = ons[0];
    for (const RunResult& r : offs) {
        if (goodput(r) == goodput_off) off = r;
    }
    for (const RunResult& r : ons) {
        if (goodput(r) == goodput_on) on = r;
    }
    std::size_t shed_total = 0;
    for (const RunResult& r : ons) shed_total += r.shed;
    // Admitted requests must land their first token inside 1.5x the per-
    // request budget (admission sweeps the hopeless; what's left must be
    // viable). 0.97x on the goodput ratio absorbs wall-clock noise.
    const std::uint64_t slo_bound_ns =
        static_cast<std::uint64_t>(budget.count()) * 1'500'000ull;
    const bool goodput_ok = goodput_on >= goodput_off * 0.97;
    const bool shed_ok = shed_total > 0;
    const bool ttft_ok = on.ttft_p99_ns > 0 && on.ttft_p99_ns <= slo_bound_ns;

    std::printf("overload, shedding off (median of 3): %2zu/%zu in deadline, "
                "%2zu shed, %.3f s -> %6.2f good req/s (ttft p99 %.1f ms)\n",
                off.deadline_met, requests, off.shed, off.wall_s, goodput_off,
                static_cast<double>(off.ttft_p99_ns) / 1e6);
    std::printf("overload, shedding on  (median of 3): %2zu/%zu in deadline, "
                "%2zu shed, %.3f s -> %6.2f good req/s (ttft p99 %.1f ms)\n\n",
                on.deadline_met, requests, on.shed, on.wall_s, goodput_on,
                static_cast<double>(on.ttft_p99_ns) / 1e6);
    std::printf("goodput on/off: %.4f (gate >= 0.97) — %s\n",
                goodput_off > 0.0 ? goodput_on / goodput_off : 0.0,
                goodput_ok ? "ok" : "FAIL");
    std::printf("sheds under overload: %zu across 3 runs (gate > 0) — %s\n",
                shed_total, shed_ok ? "ok" : "FAIL");
    std::printf("admitted ttft p99: %.1f ms (gate <= %.1f ms) — %s\n\n",
                static_cast<double>(on.ttft_p99_ns) / 1e6,
                static_cast<double>(slo_bound_ns) / 1e6,
                ttft_ok ? "ok" : "FAIL");

    // Scenario 2: no overload — the full stack must be a bystander.
    const std::size_t light = std::max<std::size_t>(2, requests / 8);
    const RunResult bare =
        run_cluster(light, max_new, std::chrono::milliseconds(0), false,
                    /*with_slo=*/false);
    const RunResult guarded =
        run_cluster(light, max_new, std::chrono::milliseconds(0), true);
    const bool zero_sheds = guarded.shed == 0;
    const bool identical = guarded.tokens == bare.tokens;
    std::printf("no overload: %zu requests, sheds %zu (gate 0) — %s; tokens "
                "%s bare run — %s\n\n",
                light, guarded.shed, zero_sheds ? "ok" : "FAIL",
                identical ? "bit-identical to" : "DIVERGED from",
                identical ? "ok" : "FAIL");

    const bool ok = goodput_ok && shed_ok && ttft_ok && zero_sheds && identical;
    std::printf("bench_slo: %s\n", ok ? "ok" : "FAIL");

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"slo\",\n"
            << "  \"model\": \"micro-256\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"deadline_budget_ms\": " << budget.count() << ",\n"
            << "  \"goodput_shedding_off\": " << goodput_off << ",\n"
            << "  \"goodput_shedding_on\": " << goodput_on << ",\n"
            << "  \"deadline_met_off\": " << off.deadline_met << ",\n"
            << "  \"deadline_met_on\": " << on.deadline_met << ",\n"
            << "  \"shed_on_total\": " << shed_total << ",\n"
            << "  \"ttft_p99_on_ms\": "
            << static_cast<double>(on.ttft_p99_ns) / 1e6 << ",\n"
            << "  \"no_overload_sheds\": " << guarded.shed << ",\n"
            << "  \"no_overload_bit_identical\": "
            << (identical ? "true" : "false") << ",\n"
            << "  \"ok\": " << (ok ? "true" : "false") << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
