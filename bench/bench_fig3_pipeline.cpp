// Fig. 3 — the fine-grained head-wise fused pipeline vs. a DFX-style coarse
// pipeline: all miscellaneous (SPU) operations must hide inside the dense
// weight streams with no cycle penalty.
#include <cstdio>

#include "accel/cycle_model.hpp"

using namespace efld;
using accel::AccelConfig;
using accel::DecodeCycleModel;
using accel::TokenTiming;

int main() {
    std::printf("=== Fig. 3: operator-fusion pipeline — misc ops hidden in dense "
                "computation ===\n\n");
    const auto cfg = model::ModelConfig::llama2_7b();
    const auto scheme = model::QuantScheme::w4a16_kv8();

    AccelConfig fine;
    AccelConfig coarse;
    coarse.fine_grained_fusion = false;

    std::printf("%6s | %22s | %24s | %s\n", "ctx", "fine (fused, Fig.3)",
                "coarse (DFX-style)", "penalty");
    std::printf("%6s | %10s %11s | %10s %13s | %s\n", "", "token/s", "misc-exp ms",
                "token/s", "misc-exp ms", "");
    std::printf("-------------------------------------------------------------------------"
                "---\n");
    for (const std::size_t ctx : {0u, 128u, 256u, 512u, 768u, 1023u}) {
        DecodeCycleModel mf(cfg, scheme, fine);
        DecodeCycleModel mc(cfg, scheme, coarse);
        const TokenTiming tf = mf.token_timing(ctx);
        const TokenTiming tc = mc.token_timing(ctx);
        std::printf("%6zu | %10.2f %11.3f | %10.2f %13.3f | +%.1f%% latency\n", ctx,
                    tf.tokens_per_s(), tf.spu_exposed_ns / 1e6, tc.tokens_per_s(),
                    tc.spu_exposed_ns / 1e6,
                    100.0 * (tc.total_ns - tf.total_ns) / tf.total_ns);
    }

    // Per-op view at the deployment point: every SPU op in the fused
    // schedule must report hidden=yes.
    DecodeCycleModel m(cfg, scheme, fine);
    const TokenTiming t = m.token_timing(512, /*collect_ops=*/true);
    std::size_t hidden = 0, with_spu = 0;
    for (const auto& op : t.ops) {
        if (op.spu_ns > 0.0) {
            ++with_spu;
            if (op.spu_hidden) ++hidden;
        }
    }
    std::printf("\nfused schedule at ctx=512: %zu/%zu SPU-carrying ops fully hidden "
                "(paper: no cycle penalties)\n",
                hidden, with_spu);
    std::printf("exposed misc time: %.3f ms of %.1f ms total (%.2f%%)\n",
                t.spu_exposed_ns / 1e6, t.total_ns / 1e6,
                100.0 * t.spu_exposed_ns / t.total_ns);
    return 0;
}
