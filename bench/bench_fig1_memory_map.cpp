// Fig. 1 — memory capacity utilization on the KV260.
//
// Paper: LLaMA2-7B AWQ-4bit weights 3556 MB + KV cache (1024 tokens) 264 MB
// occupy 93.3% of the 4 GB DDR4, leaving no room for an OS.
#include <cstdio>

#include "common/mathutil.hpp"
#include "model/config.hpp"
#include "runtime/memory_planner.hpp"

using namespace efld;

namespace {

void print_plan(const char* title, const runtime::MemoryPlan& p) {
    std::printf("%s\n", title);
    std::printf("  %-34s %12s %8s\n", "region", "MiB", "% of 4GB");
    for (const auto& r : p.regions) {
        std::printf("  %-34s %12.1f %7.2f%%\n", r.name.c_str(),
                    static_cast<double>(r.bytes) / static_cast<double>(kMiB),
                    r.pct_of_total);
    }
    std::printf("  weights total: %.0f MiB   kv total: %.0f MiB\n",
                static_cast<double>(p.weight_bytes) / static_cast<double>(kMiB),
                static_cast<double>(p.kv_bytes) / static_cast<double>(kMiB));
    std::printf("  capacity utilization: %.1f%%  (paper: 93.3%%)   fits: %s\n\n",
                100.0 * p.utilization, p.fits ? "yes" : "NO");
}

}  // namespace

int main() {
    std::printf("=== Fig. 1: LLaMA2-7B memory map on KV260 (4 GiB DDR4) ===\n\n");

    const auto cfg = model::ModelConfig::llama2_7b();
    print_plan("W4A16 (AWQ) + KV8, 1024-token context  [deployed configuration]",
               runtime::MemoryPlanner::plan_kv260(cfg, model::QuantScheme::w4a16_kv8()));

    print_plan("W8A16 + KV8 (does not fit -> why 4-bit weights are required)",
               runtime::MemoryPlanner::plan_kv260(cfg, model::QuantScheme::w8a16_kv8()));

    print_plan("FP16 baseline (hopeless on 4 GiB)",
               runtime::MemoryPlanner::plan_kv260(cfg, model::QuantScheme::fp16_baseline()));

    const std::uint64_t max_ctx = runtime::MemoryPlanner::max_context(
        cfg, model::QuantScheme::w4a16_kv8(), 4 * kGiB, 1 * kMiB);
    std::printf("max context that fits beside the W4 weights: %llu tokens "
                "(paper reserves 1024)\n",
                static_cast<unsigned long long>(max_ctx));
    std::printf("fits with a ~512 MiB Linux resident set? %s  "
                "(paper: bare-metal required)\n",
                runtime::MemoryPlanner::fits_with_os(cfg, model::QuantScheme::w4a16_kv8(),
                                                     4 * kGiB, 512 * kMiB)
                    ? "yes"
                    : "no");
    return 0;
}
