// Ablation — AXI HP port count (§VI.A: four 128-bit ports are needed to
// expose the full 19.2 GB/s to the PL).
#include <cstdio>

#include "accel/cycle_model.hpp"

using namespace efld;

int main() {
    std::printf("=== Ablation: S_AXI_HP port count (LLaMA2-7B, ctx=512) ===\n\n");
    std::printf("%6s | %12s | %9s | %s\n", "ports", "PL peak GB/s", "token/s",
                "note");
    std::printf("---------------------------------------------------------\n");
    for (const unsigned ports : {1u, 2u, 3u, 4u}) {
        memsim::MemorySystemConfig mem = memsim::MemorySystemConfig::kv260();
        mem.axi.num_ports = ports;
        accel::DecodeCycleModel m(model::ModelConfig::llama2_7b(),
                                  model::QuantScheme::w4a16_kv8(), accel::AccelConfig{},
                                  mem);
        const double rate = m.token_timing(512).tokens_per_s();
        std::printf("%6u | %12.1f | %9.2f | %s\n", ports,
                    mem.axi.peak_bytes_per_s() / 1e9, rate,
                    ports == 4 ? "deployed (matches DDR bandwidth)"
                               : "PL-side bottleneck");
    }
    std::printf("\n-> decode rate scales with exposed port bandwidth until it matches "
                "the 19.2 GB/s DDR peak.\n");
    return 0;
}
