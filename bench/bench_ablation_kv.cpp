// Ablation — KV-cache precision (§IV.B: KV8 chosen over KV16 for capacity
// and over KV4 for model quality at <=13B).
#include <cstdio>

#include "accel/cycle_model.hpp"
#include "common/mathutil.hpp"
#include "runtime/memory_planner.hpp"

using namespace efld;

int main() {
    std::printf("=== Ablation: KV cache precision on the KV260 (LLaMA2-7B W4) ===\n\n");

    std::printf("%6s | %12s | %11s | %14s | %9s\n", "KV", "cache MiB", "fits@1024",
                "max ctx (tok)", "token/s*");
    std::printf("----------------------------------------------------------------\n");
    for (const unsigned kv_bits : {8u, 16u}) {
        model::QuantScheme s = model::QuantScheme::w4a16_kv8();
        s.kv_bits = kv_bits;
        const auto plan = runtime::MemoryPlanner::plan_kv260(
            model::ModelConfig::llama2_7b(), s);
        const std::uint64_t max_ctx = runtime::MemoryPlanner::max_context(
            model::ModelConfig::llama2_7b(), s, 4 * kGiB, 1 * kMiB);

        // Decode rate at the largest common context that fits both (256).
        model::ModelConfig cfg = model::ModelConfig::llama2_7b();
        cfg.max_seq_len = 256;
        accel::DecodeCycleModel m(cfg, s, accel::AccelConfig{});
        const double rate = m.token_timing(255).tokens_per_s();

        std::printf("%5ub | %12.0f | %11s | %14llu | %9.2f\n", kv_bits,
                    static_cast<double>(plan.kv_bytes) / static_cast<double>(kMiB),
                    plan.fits ? "yes" : "NO",
                    static_cast<unsigned long long>(max_ctx), rate);
    }
    std::printf("  (*at ctx=255, the largest point where both variants fit)\n\n");

    // KV4 (hypothetical): capacity only — the paper follows Li et al. in
    // rejecting it for <=13B models on accuracy grounds.
    model::QuantScheme s4 = model::QuantScheme::w4a16_kv8();
    s4.kv_bits = 4;  // bytes-per-element floor: modelled as half of KV8 codes
    const auto f8 = model::compute_footprint(model::ModelConfig::llama2_7b(),
                                             model::QuantScheme::w4a16_kv8());
    std::printf("KV4 would halve the 256 MiB code region to 128 MiB (saving %.0f MiB) "
                "but degrades multi-step reasoning at 7B — not worth it (§IV.B).\n",
                static_cast<double>(f8.kv_cache_bytes) / 2.0 / double(kMiB));
    return 0;
}
