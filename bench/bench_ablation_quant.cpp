// Ablation — weight precision W4 vs. W8 vs. FP16 (§IV.A: AWQ W4A16), and the
// AWQ scale search itself on a synthetic salient-channel layer.
#include <cstdio>

#include "accel/cycle_model.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "quant/awq.hpp"
#include "runtime/memory_planner.hpp"

using namespace efld;

int main() {
    std::printf("=== Ablation: weight precision on the KV260 ===\n\n");
    std::printf("%8s | %12s | %10s | %9s\n", "weights", "weights MiB", "fits 4GiB",
                "token/s*");
    std::printf("------------------------------------------------\n");
    struct Variant {
        const char* name;
        model::QuantScheme scheme;
    };
    const Variant variants[] = {
        {"W4A16", model::QuantScheme::w4a16_kv8()},
        {"W8A16", model::QuantScheme::w8a16_kv8()},
        {"FP16", model::QuantScheme::fp16_baseline()},
    };
    for (const auto& v : variants) {
        const auto plan = runtime::MemoryPlanner::plan_kv260(
            model::ModelConfig::llama2_7b(), v.scheme);
        double rate = 0.0;
        if (plan.fits) {
            accel::DecodeCycleModel m(model::ModelConfig::llama2_7b(), v.scheme,
                                      accel::AccelConfig{});
            rate = m.token_timing(512).tokens_per_s();
        } else {
            // Rate if capacity were not the constraint (bandwidth arithmetic).
            rate = 19.2e9 / static_cast<double>(plan.weight_bytes);
        }
        std::printf("%8s | %12.0f | %10s | %8.2f%s\n", v.name,
                    static_cast<double>(plan.weight_bytes) / double(kMiB),
                    plan.fits ? "yes" : "NO", rate, plan.fits ? "" : " (hypothetical)");
    }
    std::printf("  (*ctx=512; non-fitting variants show the pure bandwidth bound)\n\n");

    // AWQ scale search on a layer with salient channels (the algorithmic
    // half of §IV.A, run end to end).
    std::printf("=== AWQ activation-aware scaling (16x512 layer, salient channels) "
                "===\n\n");
    Xoshiro256 rng(123);
    const std::size_t rows = 16, cols = 512, samples = 8;
    std::vector<float> w(rows * cols), calib(samples * cols);
    for (auto& x : w) x = static_cast<float>(rng.gaussian(0.0, 0.05));
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t j = 0; j < cols; ++j) {
            calib[s * cols + j] = static_cast<float>(
                rng.gaussian(0.0, (j % 32 == 0) ? 10.0 : 0.5));
        }
    }
    quant::AwqConfig acfg;
    const quant::AwqResult r = quant::awq_quantize(w, rows, cols, calib, samples, acfg);
    std::printf("  plain W4 group-128 output MSE : %.3e\n", r.baseline_mse);
    std::printf("  AWQ-scaled (alpha=%.2f)        : %.3e  (%.1fx lower)\n",
                static_cast<double>(r.best_alpha), r.best_mse,
                r.baseline_mse / r.best_mse);
    return 0;
}
