// Headline result (§I, §VII): ~5 token/s LLaMA2-7B decoding on the KV260 at
// ~85% of the theoretical bandwidth limit, across the context window.
#include <cstdio>

#include "accel/cycle_model.hpp"

using namespace efld;
using accel::DecodeCycleModel;
using accel::TokenTiming;

int main() {
    std::printf("=== Headline: LLaMA2-7B decoding on KV260 (simulated) ===\n\n");
    const auto cfg = model::ModelConfig::llama2_7b();
    const auto scheme = model::QuantScheme::w4a16_kv8();

    // Theoretical ceiling, paper definition (4-bit weight transfers/second).
    const double theo = 19.2e9 / (static_cast<double>(cfg.layer_params() +
                                                      cfg.lm_head_params()) *
                                  0.5);
    std::printf("theoretical peak (Table II footnote 1): %.2f token/s\n\n", theo);

    std::printf("%6s | %9s | %7s | %11s | %11s | %10s\n", "ctx", "token/s", "util.%",
                "weights GB", "KV R+W MB", "latency ms");
    std::printf("--------------------------------------------------------------------\n");
    for (const std::size_t ctx : {0u, 64u, 128u, 256u, 512u, 768u, 1023u}) {
        DecodeCycleModel m(cfg, scheme, accel::AccelConfig{});
        const TokenTiming t = m.token_timing(ctx);
        std::printf("%6zu | %9.2f | %7.1f | %11.2f | %11.1f | %10.1f\n", ctx,
                    t.tokens_per_s(), 100.0 * t.tokens_per_s() / theo,
                    static_cast<double>(t.weight_bytes) / 1e9,
                    static_cast<double>(t.kv_read_bytes + t.kv_write_bytes) / 1e6,
                    t.total_ns / 1e6);
    }

    // Whole-generation average, as a deployment would see it.
    DecodeCycleModel m(cfg, scheme, accel::AccelConfig{});
    double total_ns = 0;
    std::size_t n = 0;
    for (std::size_t ctx = 32; ctx < 1024; ctx += 64) {  // sampled positions
        total_ns += m.token_timing(ctx).total_ns;
        ++n;
    }
    const double avg = static_cast<double>(n) * 1e9 / total_ns;
    std::printf("\ngeneration-average decode rate: %.2f token/s  -> %.1f%% of "
                "theoretical  [paper: 4.9 token/s, 84.5%%]\n",
                avg, 100.0 * avg / theo);
    return 0;
}
