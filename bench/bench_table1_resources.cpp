// Table I — resource consumption breakdown of the accelerator.
//
// Regenerated from the parameterized resource model (calibrated to the
// published Vivado 2022.2 results) plus the power model.
#include <cstdio>

#include "analytic/power_model.hpp"
#include "analytic/resource_model.hpp"

using namespace efld::analytic;

namespace {

void row(const char* name, const ResourceVector& v, const ResourceVector& cap) {
    std::printf("  %-7s %7.1fK/%2.0f%% %8.1fK/%2.0f%% %7.1fK/%2.0f%% %6.0f/%2.0f%% "
                "%5.0f/%2.0f%% %6.1f/%2.0f%%\n",
                name, v.lut / 1e3, 100 * v.lut / cap.lut, v.ff / 1e3,
                100 * v.ff / cap.ff, v.carry / 1e3, 100 * v.carry / cap.carry, v.dsp,
                100 * v.dsp / cap.dsp, v.uram, 100 * v.uram / cap.uram, v.bram,
                100 * v.bram / cap.bram);
}

}  // namespace

int main() {
    std::printf("=== Table I: resource consumption breakdown (KV260 / XCK26, 300 MHz) "
                "===\n\n");
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const FpgaDevice dev = FpgaDevice::kv260();

    std::printf("  %-7s %12s %13s %12s %10s %9s %11s\n", "", "LUTs", "FFs", "CARRY",
                "DSP", "URAM", "BRAM");
    row("Total", r.total(), dev.capacity);
    row("MemCtrl", r.mem_ctrl, dev.capacity);
    row("VPU", r.vpu, dev.capacity);
    row("SPU", r.spu, dev.capacity);

    std::printf("\n  paper Table I: Total 78K/67%% LUT, 105K/45%% FF, 3.8K/26%% CARRY, "
                "291/24%% DSP, 10/16%% URAM, 36.5/25%% BRAM\n");

    const PowerEstimate p = PowerModel::estimate(r, 300.0);
    std::printf("\n  power estimate: %.2f W (PS %.2f + PL static %.2f + DDR %.2f + "
                "dynamic %.2f)   [paper: 6.57 W]\n",
                p.total_w(), p.ps_static_w, p.pl_static_w, p.ddr_w, p.dynamic_w);
    std::printf("  energy at 4.9 token/s: %.2f J/token\n",
                PowerModel::joules_per_token(p, 4.9));

    std::printf("\n  fits KV260 under the 75%% routability ceiling: %s\n",
                ResourceModel::fits(r, dev, 0.25) ? "yes" : "NO");

    // The PPA argument of §VI.B: a wider VPU neither fits nor helps.
    ArchParams wide;
    wide.vpu_lanes = 256;
    std::printf("  256-lane variant fits: %s  (bandwidth-bound -> extra lanes idle)\n",
                ResourceModel::fits(ResourceModel::estimate(wide), dev, 0.25) ? "yes"
                                                                              : "no");
    return 0;
}
