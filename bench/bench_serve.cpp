// Serving throughput vs. batch size: the GEMV→GEMM amortization measured on
// either DecodeBackend.
//
// Decode is weight-bound — one full weight walk per token per stream — so a
// single stream is capped by bandwidth / weight-bytes. The serve engine
// amortizes each walk across every active session; this bench sweeps
// max_batch {1, 2, 4, 8} over the same request load and reports tokens/s,
// weight-walks-per-token (1.0+ single-stream, → 1/batch when fully
// overlapped), and time-to-first-token p50/p99 straight from the engine's
// serve_ttft_ns histogram (obs/latency_histogram.hpp).
//
//   --backend host   (default) wall-clock throughput of the skinny-GEMM host
//                    fast path.
//   --backend accel  the cycle-priced KV260 twin: `sim tok/s` is the
//                    predicted *device* serving throughput for a batched step
//                    (weights streamed once, KV per session); wall time is
//                    simulation overhead and is reported but not the metric.
//
// `--paging` adds the CAPACITY comparison (the paper's second axis): the same
// DDR token budget (--pool-tokens, default 128) spent as full-context static
// reservations (budget / max_seq_len sessions) versus as a kvpool page pool
// with governor admission. Same request load, same tokens out; the paged run
// sustains more concurrent sessions — peak batch — and therefore more
// throughput, because requests are charged their actual length, not the
// context window.
//
// `--json [path]` emits a BENCH_serve.json perf record; archive it with
// scripts/bench_archive.sh so the serving-throughput trajectory stays
// visible across PRs.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/latency_histogram.hpp"
#include "runtime/serve.hpp"

using namespace efld;

namespace {

struct BatchResult {
    std::size_t max_batch = 0;
    double tok_s = 0.0;        // wall-clock
    double sim_tok_s = 0.0;    // cycle-model (accel backend; 0 for host)
    double walks_per_token = 0.0;
    double occupancy = 0.0;
    std::size_t peak_batch = 0;
    std::size_t deferrals = 0;  // governor refusals (paging only)
    // Time-to-first-token summary from the engine's own serve_ttft_ns
    // histogram — the same numbers a kMetrics wire scrape would report.
    obs::LatencySummary ttft;
    std::vector<std::vector<std::int32_t>> tokens;  // parity fingerprint
    double simulated_ns = 0.0;       // stats().simulated_ns (accel; 0 host)
    obs::MetricsSnapshot metrics;    // full snapshot (phase counters, ...)
};

// One phase row pulled back out of the serve_phase_* metric series.
struct PhaseRow {
    const char* name;
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t sim_ns = 0;
};

std::vector<PhaseRow> phase_rows(const obs::MetricsSnapshot& snap) {
    std::vector<PhaseRow> rows;
    for (int p = 0; p < static_cast<int>(obs::Phase::kCount); ++p) {
        PhaseRow row;
        row.name = obs::to_string(static_cast<obs::Phase>(p));
        const std::string base = std::string("serve_phase_") + row.name;
        const auto counter = [&](const std::string& name) -> std::uint64_t {
            const auto it = snap.counters.find(name);
            return it == snap.counters.end() ? 0 : it->second;
        };
        row.count = counter(base + "_count_total");
        row.wall_ns = counter(base + "_wall_ns_total");
        row.sim_ns = counter(base + "_sim_ns_total");
        if (row.count > 0) rows.push_back(row);
    }
    return rows;
}

BatchResult run_serve_opts(const model::QuantizedModelWeights& qw,
                           serve::ServeOptions opts, std::size_t requests,
                           std::size_t max_new, const std::string& prompt_prefix) {
    opts.sampler.temperature = 0.0f;  // greedy: deterministic across batch sizes
    opts.max_queue = requests;
    serve::ServeEngine eng(qw, opts);

    std::vector<std::future<serve::ServeResult>> futs;
    futs.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(eng.submit(prompt_prefix + std::to_string(r), max_new));
    }
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until_idle();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();

    BatchResult res;
    res.max_batch = opts.max_batch;
    res.tok_s = static_cast<double>(eng.stats().generated_tokens) / s;
    res.sim_tok_s = eng.stats().simulated_tokens_per_s();
    res.walks_per_token = eng.stats().weight_walks_per_token();
    res.occupancy = eng.stats().mean_batch_occupancy();
    res.peak_batch = eng.stats().peak_batch;
    res.deferrals = eng.stats().capacity_deferrals;
    res.simulated_ns = eng.stats().simulated_ns;
    res.metrics = eng.metrics_snapshot();
    const auto ttft_it = res.metrics.histograms.find("serve_ttft_ns");
    if (ttft_it != res.metrics.histograms.end()) {
        res.ttft = obs::LatencySummary::from(ttft_it->second);
    }
    for (auto& f : futs) res.tokens.push_back(f.get().tokens);
    return res;
}

BatchResult run_serve(const model::QuantizedModelWeights& qw,
                      engine::BackendKind backend, std::size_t max_batch,
                      std::size_t requests, std::size_t max_new,
                      std::size_t threads) {
    serve::ServeOptions opts;
    opts.backend = backend;
    opts.max_batch = max_batch;
    opts.threads = threads;
    return run_serve_opts(qw, opts, requests, max_new, "benchmark request ");
}

// Static full-context reservations vs the paged pool, same DDR token budget.
struct PagingComparison {
    std::size_t pool_tokens = 0;
    std::size_t page_tokens = 0;
    std::size_t pool_pages = 0;
    BatchResult fixed;  // static: max_batch = pool_tokens / max_seq_len
    BatchResult paged;
    bool parity = false;
};

PagingComparison run_paging(const model::QuantizedModelWeights& qw,
                            engine::BackendKind backend, std::size_t pool_tokens,
                            std::size_t page_tokens, std::size_t slots,
                            std::size_t requests, std::size_t max_new,
                            std::size_t threads) {
    PagingComparison cmp;
    cmp.pool_tokens = pool_tokens;
    cmp.page_tokens = page_tokens;
    cmp.pool_pages = pool_tokens / page_tokens;

    // Static: the same budget buys pool_tokens / max_seq_len full-context
    // session slots (the pre-kvpool deployment).
    serve::ServeOptions fixed;
    fixed.backend = backend;
    fixed.max_batch =
        std::max<std::size_t>(1, pool_tokens / qw.config.max_seq_len);
    fixed.threads = threads;
    cmp.fixed = run_serve_opts(qw, fixed, requests, max_new, "r");

    // Paged: page-granular pool + governor admission; slots stop being the
    // capacity bound, the pool is.
    serve::ServeOptions paged;
    paged.backend = backend;
    paged.max_batch = slots;
    paged.threads = threads;
    paged.paging = true;
    paged.kv_page_tokens = page_tokens;
    paged.kv_pool_pages = cmp.pool_pages;
    cmp.paged = run_serve_opts(qw, paged, requests, max_new, "r");

    cmp.parity = cmp.fixed.tokens == cmp.paged.tokens;
    return cmp;
}

}  // namespace

int main(int argc, char** argv) {
    std::string model_name = "micro";
    std::string backend_name = "host";
    std::size_t max_new = 24;
    std::size_t requests = 8;
    std::size_t threads = 1;
    bool emit_json = false;
    bool paging = false;
    std::size_t pool_tokens = 128;  // DDR budget for the capacity comparison
    std::size_t page_tokens = 16;
    // More slots than the pool has pages for: the governor, not the slot
    // count, must be the concurrency bound in the paged run.
    std::size_t paged_slots = 12;
    std::string json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--paging") == 0) {
            paging = true;
        } else if (std::strcmp(argv[i], "--pool-tokens") == 0 && i + 1 < argc) {
            pool_tokens = std::max<std::size_t>(16, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--page-tokens") == 0 && i + 1 < argc) {
            page_tokens = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
            paged_slots = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--model micro|tiny] [--backend host|accel] "
                         "[--tokens N] [--requests R] [--threads T] [--paging] "
                         "[--pool-tokens N] [--page-tokens N] [--slots N] "
                         "[--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }
    const engine::BackendKind backend = engine::backend_kind_from_string(backend_name);
    const bool accel = backend == engine::BackendKind::kAccel;

    const model::ModelConfig cfg =
        model_name == "tiny" ? model::ModelConfig::tiny_512() : model::ModelConfig::micro_256();
    std::printf(
        "=== Serve throughput vs batch: %s, %s backend, W4 group-128, KV8, %zu "
        "thread(s) ===\n",
        cfg.name.c_str(), backend_name.c_str(), threads);
    std::printf("(%zu requests x %zu tokens, continuous batching)\n\n", requests, max_new);

    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    std::printf("%-10s | %10s | %10s | %8s | %12s | %10s | %9s | %9s\n",
                "max_batch", "token/s", "sim tok/s", "speedup", "walks/token",
                "occupancy", "ttft p50", "ttft p99");
    std::printf(
        "----------------------------------------------------------------------"
        "-----------------------------\n");
    std::vector<BatchResult> results;
    bool monotonic = true;
    bool parity = true;
    // The metric the sweep must improve: simulated device tokens/s for the
    // accel backend, wall tokens/s for the host.
    auto metric = [accel](const BatchResult& r) { return accel ? r.sim_tok_s : r.tok_s; };
    for (const std::size_t b : {1u, 2u, 4u, 8u}) {
        results.push_back(run_serve(qw, backend, b, requests, max_new, threads));
        const BatchResult& r = results.back();
        std::printf(
            "%-10zu | %10.2f | %10.2f | %7.2fx | %12.3f | %10.2f | %7.2fms | "
            "%7.2fms\n",
            r.max_batch, r.tok_s, r.sim_tok_s, metric(r) / metric(results.front()),
            r.walks_per_token, r.occupancy,
            static_cast<double>(r.ttft.p50_ns) / 1e6,
            static_cast<double>(r.ttft.p99_ns) / 1e6);
        if (results.size() >= 2 && metric(r) < metric(results[results.size() - 2])) {
            monotonic = false;
        }
        if (r.tokens != results.front().tokens) parity = false;
    }
    std::printf("\n%s monotonically increasing with batch: %s\n",
                accel ? "simulated tokens/s" : "tokens/s",
                monotonic ? "yes" : "NO (regression!)");
    if (!parity) {
        std::printf("WARNING: generated tokens diverged across batch sizes!\n");
    }

    // ---- capacity comparison: static reservations vs the paged pool ----
    PagingComparison pg;
    bool paged_wins = true;
    if (paging) {
        // Short requests (<= one page each) are the capacity-utilization
        // worst case for static reservations: every slot strands
        // max_seq_len - ~16 tokens of budget.
        const std::size_t pg_requests = 16;
        const std::size_t pg_max_new = 12;
        pg = run_paging(qw, backend, pool_tokens, page_tokens, paged_slots,
                        pg_requests, pg_max_new, threads);
        std::printf(
            "\n=== Capacity: same %zu-token DDR budget, static vs paged ===\n",
            pool_tokens);
        std::printf("(%zu requests x %zu tokens, page %zu tokens, %zu pages)\n\n",
                    pg_requests, pg_max_new, page_tokens, pg.pool_pages);
        std::printf("%-22s | %10s | %10s | %13s | %9s\n", "layout", "token/s",
                    "sim tok/s", "peak sessions", "deferrals");
        std::printf(
            "-----------------------------------------------------------------------\n");
        std::printf("%-22s | %10.2f | %10.2f | %13zu | %9s\n",
                    ("static max_batch=" + std::to_string(pg.fixed.max_batch)).c_str(),
                    pg.fixed.tok_s, pg.fixed.sim_tok_s, pg.fixed.peak_batch, "-");
        std::printf("%-22s | %10.2f | %10.2f | %13zu | %9zu\n", "paged + governor",
                    pg.paged.tok_s, pg.paged.sim_tok_s, pg.paged.peak_batch,
                    pg.paged.deferrals);
        // Concurrency (deterministic) gates on both backends; the throughput
        // edge gates only on the deterministic cycle-model metric — host
        // wall-clock at these millisecond scales wobbles with machine load,
        // which (as for the sweep above) is a report, not a bug.
        paged_wins = pg.paged.peak_batch > pg.fixed.max_batch &&
                     (!accel || pg.paged.sim_tok_s > pg.fixed.sim_tok_s);
        std::printf("\npaged serving beats static under the same budget: %s\n",
                    paged_wins ? "yes" : "NO (regression!)");
        if (!pg.parity) {
            std::printf("WARNING: paged tokens diverged from static tokens!\n");
        }
    }

    // ---- per-phase cost attribution: where the step time actually goes ----
    // A profiled run (max_batch 4) whose serve_phase_* counters break the
    // backend's reported cost down by phase. The sim-ns attribution is exact
    // by construction (prefill + decode_batch partition each step's
    // StepCost::simulated_ns), so it must re-sum to stats().simulated_ns —
    // a 1% drift gate catches any future attribution bug.
    serve::ServeOptions prof_opts;
    prof_opts.backend = backend;
    prof_opts.max_batch = 4;
    prof_opts.threads = threads;
    prof_opts.profile = true;
    const BatchResult prof =
        run_serve_opts(qw, prof_opts, requests, max_new, "benchmark request ");
    const std::vector<PhaseRow> phases = phase_rows(prof.metrics);
    double phase_sim_sum = 0.0;
    std::printf("\n=== Per-phase cost attribution (profiled, max_batch=4) ===\n");
    std::printf("%-14s | %10s | %12s | %12s | %9s\n", "phase", "count",
                "wall ms", "sim ms", "sim share");
    std::printf("--------------------------------------------------------------------\n");
    for (const PhaseRow& row : phases) {
        phase_sim_sum += static_cast<double>(row.sim_ns);
        std::printf("%-14s | %10llu | %12.3f | %12.3f | %8.1f%%\n", row.name,
                    static_cast<unsigned long long>(row.count),
                    static_cast<double>(row.wall_ns) / 1e6,
                    static_cast<double>(row.sim_ns) / 1e6,
                    prof.simulated_ns > 0.0
                        ? 100.0 * static_cast<double>(row.sim_ns) / prof.simulated_ns
                        : 0.0);
    }
    bool phases_ok = true;
    if (accel && prof.simulated_ns > 0.0) {
        const double drift =
            std::abs(phase_sim_sum - prof.simulated_ns) / prof.simulated_ns;
        phases_ok = drift <= 0.01;
        std::printf("\nphase sim-ns re-sums to stats().simulated_ns: %s "
                    "(drift %.4f%%)\n",
                    phases_ok ? "yes" : "NO (regression!)", drift * 100.0);
    }

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"serve\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"backend\": \"" << backend_name << "\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"single_stream_tok_s\": " << results.front().tok_s << ",\n"
            << "  \"single_stream_simulated_tok_s\": " << results.front().sim_tok_s
            << ",\n"
            << "  \"monotonic\": " << (monotonic ? "true" : "false") << ",\n"
            << "  \"batch\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BatchResult& r = results[i];
            out << "    {\"max_batch\": " << r.max_batch << ", \"tok_s\": " << r.tok_s
                << ", \"simulated_tok_s\": " << r.sim_tok_s
                << ", \"weight_walks_per_token\": " << r.walks_per_token
                << ", \"mean_batch_occupancy\": " << r.occupancy
                << ", \"latency\": {\"count\": " << r.ttft.count
                << ", \"ttft_p50_ms\": " << static_cast<double>(r.ttft.p50_ns) / 1e6
                << ", \"ttft_p95_ms\": " << static_cast<double>(r.ttft.p95_ns) / 1e6
                << ", \"ttft_p99_ms\": " << static_cast<double>(r.ttft.p99_ns) / 1e6
                << ", \"ttft_max_ms\": " << static_cast<double>(r.ttft.max_ns) / 1e6
                << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"phases\": {\n"
            << "    \"total_simulated_ns\": " << prof.simulated_ns << ",\n"
            << "    \"phase_sim_ns_sum\": " << phase_sim_sum << ",\n"
            << "    \"attribution_ok\": " << (phases_ok ? "true" : "false")
            << ",\n"
            << "    \"per_phase\": [\n";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const PhaseRow& row = phases[i];
            out << "      {\"phase\": \"" << row.name
                << "\", \"count\": " << row.count
                << ", \"wall_ns\": " << row.wall_ns
                << ", \"sim_ns\": " << row.sim_ns << ", \"sim_share\": "
                << (prof.simulated_ns > 0.0
                        ? static_cast<double>(row.sim_ns) / prof.simulated_ns
                        : 0.0)
                << "}" << (i + 1 < phases.size() ? "," : "") << "\n";
        }
        out << "    ]\n  }";
        if (paging) {
            out << ",\n  \"paging\": {\n"
                << "    \"pool_tokens\": " << pg.pool_tokens << ",\n"
                << "    \"page_tokens\": " << pg.page_tokens << ",\n"
                << "    \"pool_pages\": " << pg.pool_pages << ",\n"
                << "    \"static_max_batch\": " << pg.fixed.max_batch << ",\n"
                << "    \"static_tok_s\": " << pg.fixed.tok_s << ",\n"
                << "    \"static_simulated_tok_s\": " << pg.fixed.sim_tok_s << ",\n"
                << "    \"static_peak_sessions\": " << pg.fixed.peak_batch << ",\n"
                << "    \"paged_slots\": " << pg.paged.max_batch << ",\n"
                << "    \"paged_tok_s\": " << pg.paged.tok_s << ",\n"
                << "    \"paged_simulated_tok_s\": " << pg.paged.sim_tok_s << ",\n"
                << "    \"paged_peak_sessions\": " << pg.paged.peak_batch << ",\n"
                << "    \"paged_deferrals\": " << pg.paged.deferrals << ",\n"
                << "    \"paged_walks_per_token\": " << pg.paged.walks_per_token
                << ",\n"
                << "    \"parity\": " << (pg.parity ? "true" : "false") << "\n"
                << "  }";
        }
        out << "\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    // Parity is a correctness gate on both backends (including paged-vs-
    // static tokens), and so is the paged concurrency edge; throughput
    // monotonicity/superiority gates the exit code only for the
    // deterministic cycle-model metric — host wall-clock can wobble with
    // machine load, which is a report, not a bug.
    const bool paging_ok = !paging || (pg.parity && paged_wins);
    return (parity && (monotonic || !accel) && paging_ok && phases_ok) ? 0 : 1;
}
