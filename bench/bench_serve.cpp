// Serving throughput vs. batch size: the GEMV→GEMM amortization measured on
// either DecodeBackend.
//
// Decode is weight-bound — one full weight walk per token per stream — so a
// single stream is capped by bandwidth / weight-bytes. The serve engine
// amortizes each walk across every active session; this bench sweeps
// max_batch {1, 2, 4, 8} over the same request load and reports tokens/s and
// weight-walks-per-token (1.0+ single-stream, → 1/batch when fully
// overlapped).
//
//   --backend host   (default) wall-clock throughput of the skinny-GEMM host
//                    fast path.
//   --backend accel  the cycle-priced KV260 twin: `sim tok/s` is the
//                    predicted *device* serving throughput for a batched step
//                    (weights streamed once, KV per session); wall time is
//                    simulation overhead and is reported but not the metric.
//
// `--json [path]` emits a BENCH_serve.json perf record; archive it with
// scripts/bench_archive.sh so the serving-throughput trajectory stays
// visible across PRs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/serve.hpp"

using namespace efld;

namespace {

struct BatchResult {
    std::size_t max_batch = 0;
    double tok_s = 0.0;        // wall-clock
    double sim_tok_s = 0.0;    // cycle-model (accel backend; 0 for host)
    double walks_per_token = 0.0;
    double occupancy = 0.0;
    std::vector<std::vector<std::int32_t>> tokens;  // parity fingerprint
};

BatchResult run_serve(const model::QuantizedModelWeights& qw,
                      engine::BackendKind backend, std::size_t max_batch,
                      std::size_t requests, std::size_t max_new,
                      std::size_t threads) {
    serve::ServeOptions opts;
    opts.sampler.temperature = 0.0f;  // greedy: deterministic across batch sizes
    opts.backend = backend;
    opts.max_batch = max_batch;
    opts.max_queue = requests;
    opts.threads = threads;
    serve::ServeEngine eng(qw, opts);

    std::vector<std::future<serve::ServeResult>> futs;
    futs.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(eng.submit("benchmark request " + std::to_string(r), max_new));
    }
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until_idle();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();

    BatchResult res;
    res.max_batch = max_batch;
    res.tok_s = static_cast<double>(eng.stats().generated_tokens) / s;
    res.sim_tok_s = eng.stats().simulated_tokens_per_s();
    res.walks_per_token = eng.stats().weight_walks_per_token();
    res.occupancy = eng.stats().mean_batch_occupancy();
    for (auto& f : futs) res.tokens.push_back(f.get().tokens);
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    std::string model_name = "micro";
    std::string backend_name = "host";
    std::size_t max_new = 24;
    std::size_t requests = 8;
    std::size_t threads = 1;
    bool emit_json = false;
    std::string json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend_name = argv[++i];
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--model micro|tiny] [--backend host|accel] "
                         "[--tokens N] [--requests R] [--threads T] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }
    const engine::BackendKind backend = engine::backend_kind_from_string(backend_name);
    const bool accel = backend == engine::BackendKind::kAccel;

    const model::ModelConfig cfg =
        model_name == "tiny" ? model::ModelConfig::tiny_512() : model::ModelConfig::micro_256();
    std::printf(
        "=== Serve throughput vs batch: %s, %s backend, W4 group-128, KV8, %zu "
        "thread(s) ===\n",
        cfg.name.c_str(), backend_name.c_str(), threads);
    std::printf("(%zu requests x %zu tokens, continuous batching)\n\n", requests, max_new);

    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    std::printf("%-10s | %10s | %10s | %8s | %12s | %10s\n", "max_batch", "token/s",
                "sim tok/s", "speedup", "walks/token", "occupancy");
    std::printf("-------------------------------------------------------------------------\n");
    std::vector<BatchResult> results;
    bool monotonic = true;
    bool parity = true;
    // The metric the sweep must improve: simulated device tokens/s for the
    // accel backend, wall tokens/s for the host.
    auto metric = [accel](const BatchResult& r) { return accel ? r.sim_tok_s : r.tok_s; };
    for (const std::size_t b : {1u, 2u, 4u, 8u}) {
        results.push_back(run_serve(qw, backend, b, requests, max_new, threads));
        const BatchResult& r = results.back();
        std::printf("%-10zu | %10.2f | %10.2f | %7.2fx | %12.3f | %10.2f\n", r.max_batch,
                    r.tok_s, r.sim_tok_s, metric(r) / metric(results.front()),
                    r.walks_per_token, r.occupancy);
        if (results.size() >= 2 && metric(r) < metric(results[results.size() - 2])) {
            monotonic = false;
        }
        if (r.tokens != results.front().tokens) parity = false;
    }
    std::printf("\n%s monotonically increasing with batch: %s\n",
                accel ? "simulated tokens/s" : "tokens/s",
                monotonic ? "yes" : "NO (regression!)");
    if (!parity) {
        std::printf("WARNING: generated tokens diverged across batch sizes!\n");
    }

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"serve\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"backend\": \"" << backend_name << "\",\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"single_stream_tok_s\": " << results.front().tok_s << ",\n"
            << "  \"single_stream_simulated_tok_s\": " << results.front().sim_tok_s
            << ",\n"
            << "  \"monotonic\": " << (monotonic ? "true" : "false") << ",\n"
            << "  \"batch\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BatchResult& r = results[i];
            out << "    {\"max_batch\": " << r.max_batch << ", \"tok_s\": " << r.tok_s
                << ", \"simulated_tok_s\": " << r.sim_tok_s
                << ", \"weight_walks_per_token\": " << r.walks_per_token
                << ", \"mean_batch_occupancy\": " << r.occupancy << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    // Parity is a correctness gate on both backends. Monotonicity gates the
    // exit code only for the deterministic cycle-model metric — host
    // wall-clock can wobble with machine load, which is a report, not a bug.
    return (parity && (monotonic || !accel)) ? 0 : 1;
}
