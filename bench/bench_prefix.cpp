// Prefix sharing vs no sharing on the same DDR budget: the capacity and
// TTFT win of copy-on-write shared KV pages (ISSUE: serve N sessions that
// open with one common system prompt).
//
// Three measurements, all deterministic:
//
//   1. Engine capacity: one warm request registers a 256-token system prompt
//      in the prefix index, then N follower sessions (same prompt + a unique
//      tail) arrive at once. Without sharing each follower is charged the
//      full 18-page worst case and the pool holds two of them; with sharing
//      the governor discounts the 16 fully-covered pages and every follower
//      fits. Peak concurrent sessions, governor deferrals, and TTFT
//      p50/p99 (from the engine's serve_ttft_ns histogram) are compared at
//      the SAME pool size, and the follower tokens must be bit-identical
//      across the two runs — sharing is a capacity trick, not a model
//      change.
//   2. Cluster routing: prefix-affinity vs best-fit on the hit rate. Same
//      two-shard budget, same warm-then-4-followers traffic; affinity
//      co-locates every sharer onto the warm shard while best-fit pays cold
//      re-prefills on the far one.
//   3. Accel pricing: the cycle model's prefill_timing_shared — the modeled
//      TTFT of adopting 256 of the prompt's tokens from shared DDR pages
//      instead of streaming weights for them.
//
//   --sessions N    follower sessions in the engine phase (8)
//   --tokens N      new tokens per request (16)
//   --pool-pages N  shared pool size, 16-token pages (40)
//   --smoke         CI shape: 6 sessions x 12 tokens, same gates
//   --json [path]   emit BENCH_prefix.json (archive via scripts/bench_archive.sh)
//
// Exit code gates only deterministic metrics: token parity, the >= 2x
// concurrency gain, hit counts, the cluster hit-rate edge, and the
// cycle-model TTFT cut. Wall-clock TTFT is gated too, but only as
// shared-p50 < baseline-p50 — the margin is the difference between
// prefilling 3 tokens and 259, far beyond machine-load wobble.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "accel/cycle_model.hpp"
#include "cluster/placement.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/serve.hpp"

using namespace efld;

namespace {

constexpr std::size_t kPageTokens = 16;
constexpr std::size_t kSysChars = 255;  // 256 tokens with BOS: 16 full pages

struct EngineResult {
    std::size_t peak_sessions = 0;
    std::size_t deferrals = 0;
    double tok_s = 0.0;
    obs::LatencySummary ttft;
    engine::PrefixSharingStats prefix;
    std::size_t prefix_hits = 0;
    std::vector<std::vector<std::int32_t>> tokens;  // parity fingerprint
};

// Warm the index with the bare system prompt, then throw `sessions`
// followers at the engine at once. Follower 0 reuses the exact system prompt
// (a page-aligned full match: the adoption lands mid-page and must CoW);
// the rest append a unique tail and diverge cleanly on a page boundary.
EngineResult run_engine(const model::QuantizedModelWeights& qw, bool sharing,
                        std::size_t sessions, std::size_t max_new,
                        std::size_t pool_pages) {
    serve::ServeOptions opts;
    opts.max_batch = 16;
    opts.max_queue = sessions + 1;
    opts.paging = true;
    opts.kv_page_tokens = kPageTokens;
    opts.kv_pool_pages = pool_pages;
    opts.prefix_sharing = sharing;
    opts.sampler.temperature = 0.0f;  // greedy: deterministic across configs
    serve::ServeEngine eng(qw, opts);

    const std::string sys(kSysChars, 's');
    std::future<serve::ServeResult> warm = eng.submit(sys, max_new);
    eng.run_until_idle();
    (void)warm.get();

    std::vector<std::future<serve::ServeResult>> futs;
    for (std::size_t r = 0; r < sessions; ++r) {
        futs.push_back(
            eng.submit(r == 0 ? sys : sys + "/" + std::to_string(r), max_new));
    }
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_until_idle();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();

    EngineResult res;
    res.peak_sessions = eng.stats().peak_batch;
    res.deferrals = eng.stats().capacity_deferrals;
    res.prefix_hits = eng.stats().prefix_hits;
    res.prefix = eng.load().prefix;
    res.tok_s = static_cast<double>(sessions * max_new) / s;
    const obs::MetricsSnapshot snap = eng.metrics().snapshot();
    const auto it = snap.histograms.find("serve_ttft_ns");
    if (it != snap.histograms.end()) {
        res.ttft = obs::LatencySummary::from(it->second);
    }
    for (auto& f : futs) res.tokens.push_back(f.get().tokens);
    return res;
}

// The routing comparison from tests/cluster: two 9-page shards, a 32-token
// system prompt warmed through the router, then 4 same-prefix followers.
// Counts prefix hits and how many requests the cold shard served.
struct ClusterResult {
    std::size_t hits = 0;
    std::size_t far_requests = 0;
};

ClusterResult run_cluster(cluster::PlacementPolicy policy) {
    runtime::ClusterOptions o;
    o.shards = 2;
    o.placement = policy;
    o.shard.max_batch = 4;
    o.shard.paging = true;
    o.shard.kv_page_tokens = 8;
    o.shard.kv_pool_pages = 9;
    o.shard.prefix_sharing = true;
    o.shard.sampler.temperature = 0.0f;
    runtime::ClusterDeployment d =
        runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, o);

    const std::string sys(31, 's');  // 32 tokens: 4 aligned 8-token pages
    d.router->submit(runtime::ServeRequest{.prompt = sys, .max_new_tokens = 8});
    d.router->drain();
    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 4; ++r) {
        hs.push_back(d.router->submit(
            runtime::ServeRequest{.prompt = sys, .max_new_tokens = 8}));
    }
    d.router->drain();
    for (auto& h : hs) (void)h.get();

    ClusterResult res;
    for (std::size_t i = 0; i < d.router->shard_count(); ++i) {
        res.hits += d.router->shard(i).stats().prefix_hits;
    }
    res.far_requests = d.router->shard(1).stats().requests_completed;
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t sessions = 8;
    std::size_t max_new = 16;
    std::size_t pool_pages = 40;
    bool emit_json = false;
    std::string json_path = "BENCH_prefix.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
            sessions = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--pool-pages") == 0 && i + 1 < argc) {
            pool_pages = std::max<std::size_t>(18, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            sessions = 6;
            max_new = 12;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--sessions N] [--tokens N] [--pool-pages N] "
                         "[--smoke] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }

    // The stock micro config reserves 64 KV slots; the shared-prefix story
    // is a 256-token system prompt, so the bench widens the reservation. The
    // pool (not max_seq_len) is still the capacity bound under paging.
    model::ModelConfig cfg = model::ModelConfig::micro_256();
    cfg.max_seq_len = 320;
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    const std::size_t sys_tokens = kSysChars + 1;
    // Follower worst case, undiscounted: prompt + tail + new tokens, in pages.
    const std::size_t unique_pages =
        (sys_tokens + 3 + max_new + kPageTokens - 1) / kPageTokens;
    const std::size_t covered_pages = sys_tokens / kPageTokens;
    std::printf(
        "=== Prefix sharing: %zu sessions x %zu-token system prompt, "
        "%zu-page pool (%zu-token pages) ===\n",
        sessions, sys_tokens, pool_pages, kPageTokens);
    std::printf(
        "(each session: ~%zu pages unique, charged %zu when sharing; "
        "%zu new tokens)\n\n",
        unique_pages, unique_pages - covered_pages, max_new);

    const EngineResult base =
        run_engine(qw, /*sharing=*/false, sessions, max_new, pool_pages);
    const EngineResult shared =
        run_engine(qw, /*sharing=*/true, sessions, max_new, pool_pages);

    std::printf("%-12s | %13s | %9s | %9s | %9s | %12s\n", "mode",
                "peak sessions", "deferrals", "ttft p50", "ttft p99",
                "pages shared");
    std::printf(
        "--------------------------------------------------------------------------\n");
    std::printf("%-12s | %13zu | %9zu | %7.2fms | %7.2fms | %12s\n",
                "no sharing", base.peak_sessions, base.deferrals,
                static_cast<double>(base.ttft.p50_ns) / 1e6,
                static_cast<double>(base.ttft.p99_ns) / 1e6, "-");
    std::printf("%-12s | %13zu | %9zu | %7.2fms | %7.2fms | %12zu\n",
                "shared", shared.peak_sessions, shared.deferrals,
                static_cast<double>(shared.ttft.p50_ns) / 1e6,
                static_cast<double>(shared.ttft.p99_ns) / 1e6,
                shared.prefix.pages_shared);
    std::printf(
        "(shared run: %zu hits, %zu covered tokens, %zu CoW %s)\n",
        shared.prefix_hits, static_cast<std::size_t>(shared.prefix.covered_tokens),
        static_cast<std::size_t>(shared.prefix.cow_copies),
        shared.prefix.cow_copies == 1 ? "copy" : "copies");

    const bool parity = base.tokens == shared.tokens;
    const bool capacity_win =
        shared.peak_sessions >= 2 * base.peak_sessions && shared.deferrals == 0;
    const bool ttft_win = shared.ttft.p50_ns < base.ttft.p50_ns;
    const bool all_hit = shared.prefix_hits == sessions;
    std::printf("\nconcurrency gain: %.1fx, tokens bit-identical: %s\n",
                static_cast<double>(shared.peak_sessions) /
                    static_cast<double>(base.peak_sessions),
                parity ? "yes" : "NO (regression!)");

    // ---- cluster: prefix-affinity vs best-fit, same budget and traffic ----
    const ClusterResult affinity =
        run_cluster(cluster::PlacementPolicy::kPrefixAffinity);
    const ClusterResult bestfit =
        run_cluster(cluster::PlacementPolicy::kBestFitPages);
    std::printf("\n=== Cluster: 4 sharers after one warm request, 2 shards ===\n");
    std::printf("%-16s | %10s | %15s\n", "policy", "hits (of 4)", "cold-shard reqs");
    std::printf("--------------------------------------------------\n");
    std::printf("%-16s | %10zu | %15zu\n", "prefix-affinity", affinity.hits,
                affinity.far_requests);
    std::printf("%-16s | %10zu | %15zu\n", "best-fit", bestfit.hits,
                bestfit.far_requests);
    const bool affinity_wins = affinity.hits > bestfit.hits;

    // ---- accel: the cycle model prices the skipped prefill ----
    accel::AccelConfig acfg;
    acfg.kv_page_tokens = kPageTokens;
    accel::DecodeCycleModel cm(model::ModelConfig::llama2_7b(),
                               model::QuantScheme::w4a16_kv8(), acfg);
    const std::size_t prompt_len = sys_tokens + 3;
    const accel::PrefillTiming full = cm.prefill_timing(prompt_len);
    const accel::PrefillTiming adopted =
        cm.prefill_timing_shared(prompt_len, sys_tokens);
    std::printf("\n=== KV260 pricing (LLaMA2-7B): %zu-token prompt, %zu adopted "
                "===\n",
                prompt_len, sys_tokens);
    std::printf("TTFT full prefill: %.2fs, adopted prefix: %.2fs (%.1fx)\n",
                full.total_ns / 1e9, adopted.total_ns / 1e9,
                full.total_ns / adopted.total_ns);
    const bool accel_win = adopted.total_ns < full.total_ns;

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"prefix\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"sys_prompt_tokens\": " << sys_tokens << ",\n"
            << "  \"sessions\": " << sessions << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"page_tokens\": " << kPageTokens << ",\n"
            << "  \"pool_pages\": " << pool_pages << ",\n"
            << "  \"baseline\": {\"peak_sessions\": " << base.peak_sessions
            << ", \"deferrals\": " << base.deferrals
            << ", \"tok_s\": " << base.tok_s
            << ", \"ttft_p50_ms\": " << static_cast<double>(base.ttft.p50_ns) / 1e6
            << ", \"ttft_p99_ms\": " << static_cast<double>(base.ttft.p99_ns) / 1e6
            << "},\n"
            << "  \"shared\": {\"peak_sessions\": " << shared.peak_sessions
            << ", \"deferrals\": " << shared.deferrals
            << ", \"tok_s\": " << shared.tok_s
            << ", \"ttft_p50_ms\": "
            << static_cast<double>(shared.ttft.p50_ns) / 1e6
            << ", \"ttft_p99_ms\": "
            << static_cast<double>(shared.ttft.p99_ns) / 1e6
            << ", \"prefix_hits\": " << shared.prefix_hits
            << ", \"covered_tokens\": " << shared.prefix.covered_tokens
            << ", \"pages_shared\": " << shared.prefix.pages_shared
            << ", \"cow_copies\": " << shared.prefix.cow_copies << "},\n"
            << "  \"parity\": " << (parity ? "true" : "false") << ",\n"
            << "  \"concurrency_gain\": "
            << static_cast<double>(shared.peak_sessions) /
                   static_cast<double>(base.peak_sessions)
            << ",\n"
            << "  \"cluster\": {\"affinity_hits\": " << affinity.hits
            << ", \"affinity_far_requests\": " << affinity.far_requests
            << ", \"bestfit_hits\": " << bestfit.hits
            << ", \"bestfit_far_requests\": " << bestfit.far_requests << "},\n"
            << "  \"accel\": {\"prompt_tokens\": " << prompt_len
            << ", \"adopted_tokens\": " << sys_tokens
            << ", \"ttft_full_s\": " << full.total_ns / 1e9
            << ", \"ttft_adopted_s\": " << adopted.total_ns / 1e9
            << ", \"ttft_speedup\": " << full.total_ns / adopted.total_ns
            << "}\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    const bool ok = parity && capacity_win && ttft_win && all_hit &&
                    affinity_wins && accel_win;
    std::printf("\nsharing admits >= 2x the sessions of the same budget: %s\n",
                ok ? "yes" : "NO (regression!)");
    return ok ? 0 : 1;
}
