// Ablation — burst length vs. achieved DDR efficiency (§V.B: "large
// consecutive burst transfers achieve significantly higher bandwidth
// efficiency than short bursts with discontinuous addresses").
#include <cstdio>

#include "memsim/memory_system.hpp"

using namespace efld;
using memsim::Dir;
using memsim::MemorySystem;
using memsim::MemorySystemConfig;
using memsim::TransactionStream;

namespace {

double efficiency(std::uint64_t burst_bytes, bool sequential) {
    MemorySystem mem(MemorySystemConfig::kv260());
    TransactionStream s;
    const std::uint64_t total = 64ull << 20;
    std::uint64_t addr = 0;
    for (std::uint64_t moved = 0; moved < total; moved += burst_bytes) {
        s.push_back({addr, burst_bytes, Dir::kRead});
        // Discontinuous: hop rows between bursts (stride breaks row locality).
        addr += sequential ? burst_bytes : burst_bytes + 1048576 + 8192;
    }
    const auto stats = mem.run(s);
    return stats.achieved_bw() / mem.peak_bytes_per_s();
}

}  // namespace

int main() {
    std::printf("=== Ablation: burst length vs. DDR bandwidth efficiency ===\n\n");
    std::printf("%12s | %12s | %14s\n", "burst bytes", "sequential", "discontinuous");
    std::printf("---------------------------------------------\n");
    for (const std::uint64_t b : {64ull, 128ull, 256ull, 512ull, 1024ull, 2048ull,
                                  4096ull, 16384ull, 65536ull}) {
        std::printf("%12llu | %11.1f%% | %13.1f%%\n",
                    static_cast<unsigned long long>(b), 100 * efficiency(b, true),
                    100 * efficiency(b, false));
    }
    std::printf("\n-> the weight stream (one multi-MB sequential burst per matrix) sits "
                "at the top-right of this table;\n   per-group scale/zero fetches would "
                "sit at the top-left. This gap is why Fig. 4A interleaves them.\n");
    return 0;
}
