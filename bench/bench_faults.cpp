// Chaos bench: kill 1 of 4 shards mid-workload and measure what fault
// tolerance costs — and prove what it must not cost.
//
// Shard 0 serves with a scripted fault plan (engine/fault_injection.hpp)
// guaranteeing it dies on its Nth decode step, while a 4-shard cluster works
// through a uniform request load. The router's failure handler harvests the
// dead shard's queued and in-flight requests and fails them over to the
// survivors, replaying each victim's already-streamed tokens as prefill;
// restart_shard(0) then rebuilds the slot while traffic continues.
//
// Gates (exit code):
//   - completion: 100% of accepted requests finish with their full token
//     budget — a shard death mid-workload loses nothing.
//   - parity: every request's tokens are bit-for-bit the fault-free
//     single-engine baseline's (failover resume is deterministic).
//   - exactly-once: per-request streaming transcripts equal the final token
//     sequences — no position delivered twice, none dropped, across the
//     shard boundary the request migrated over.
//   - recovery: the restarted shard is kRestarted and completes new work.
//
// Reported alongside: fault-detection and restart latency, degraded (one
// shard down) vs fault-free cluster throughput, and the replay overhead
// (tokens re-fed as prefill on survivors).
//
// `--json [path]` emits a BENCH_faults.json perf record; archive it with
// scripts/bench_archive.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "runtime/serve.hpp"

using namespace efld;

namespace {

using Clock = std::chrono::steady_clock;

std::string prompt_of(std::size_t r) {
    return "chaos request " + std::to_string(r);
}

double ms_since(Clock::time_point t0, Clock::time_point t1) {
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Fault-free single-engine run over the same prompts: the token sequences
// every chaos run must reproduce.
std::vector<std::vector<std::int32_t>> baseline_tokens(
    const model::QuantizedModelWeights& qw, const model::ModelConfig& cfg,
    std::size_t requests, std::size_t max_new) {
    runtime::ServeOptions so;
    so.sampler.temperature = 0.0f;
    so.max_queue = requests;
    serve::ServeEngine engine(qw, so);
    std::vector<std::future<runtime::ServeResult>> futs;
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(engine.submit(prompt_of(r), max_new));
    }
    engine.run_until_idle();
    std::vector<std::vector<std::int32_t>> out;
    for (auto& f : futs) out.push_back(f.get().tokens);
    (void)cfg;
    return out;
}

runtime::ClusterOptions chaos_options(std::size_t requests,
                                      std::string fault_spec) {
    runtime::ClusterOptions opts;
    opts.shards = 4;
    opts.placement = cluster::PlacementPolicy::kLeastLoaded;
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.max_queue = requests;  // survivors can absorb the full harvest
    if (!fault_spec.empty()) opts.shard_fault_specs = {std::move(fault_spec)};
    return opts;
}

struct ChaosResult {
    // Gates.
    bool completed = false;     // all requests ran their full budget
    bool parity = false;        // tokens == fault-free baseline
    bool exactly_once = false;  // transcripts == results, no dupes/drops
    bool restart_serves = false;
    bool fault_fired = false;
    // Timings.
    double detect_ms = 0.0;      // start -> router marks the shard failed
    double restart_ms = 0.0;     // restart_shard() latency
    double wall_tok_s = 0.0;     // throughput of the faulted run
    // Counters from the router.
    std::size_t failed_over = 0;
    std::size_t lost = 0;
    std::size_t replayed = 0;
    std::size_t displaced_requests = 0;  // results with failovers > 0
};

ChaosResult run_chaos(const model::QuantizedModelWeights& qw,
                      const std::vector<std::vector<std::int32_t>>& want,
                      std::size_t requests, std::size_t max_new,
                      std::size_t kill_step) {
    cluster::ClusterRouter router(
        qw, chaos_options(requests, "step:" + std::to_string(kill_step)));

    // Per-request streaming transcript: exactly-once is judged by comparing
    // what on_token delivered against what the result says was generated.
    std::mutex log_mu;
    std::vector<std::vector<std::int32_t>> streamed(requests);
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t r = 0; r < requests; ++r) {
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = prompt_of(r),
            .max_new_tokens = max_new,
            .on_token =
                [&log_mu, &streamed, r](std::int32_t tok, std::string_view) {
                    const std::lock_guard<std::mutex> lock(log_mu);
                    streamed[r].push_back(tok);
                }}));
    }

    ChaosResult res;
    const auto t0 = Clock::now();
    router.start();

    // Wait for the scripted death, then restart the slot while the survivors
    // keep serving — recovery happens under load, as it would in production.
    while (router.shard_health(0) != cluster::ShardHealth::kFailed) {
        if (router.stats().requests_completed() >= requests) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    res.fault_fired = router.shard_health(0) == cluster::ShardHealth::kFailed;
    const auto t_detect = Clock::now();
    if (res.fault_fired) router.restart_shard(0);
    const auto t_restarted = Clock::now();

    for (auto& h : handles) (void)h.get();
    const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    res.detect_ms = ms_since(t0, t_detect);
    res.restart_ms = ms_since(t_detect, t_restarted);

    res.completed = true;
    res.parity = true;
    res.exactly_once = true;
    for (std::size_t r = 0; r < requests; ++r) {
        const runtime::ServeResult& got = handles[r].get();
        if (got.finish_reason != runtime::FinishReason::kBudget) res.completed = false;
        if (got.tokens != want[r]) res.parity = false;
        res.displaced_requests += got.failovers > 0 ? 1 : 0;
        const std::lock_guard<std::mutex> lock(log_mu);
        if (streamed[r] != got.tokens) res.exactly_once = false;
    }

    runtime::ClusterStats cs = router.stats();
    res.wall_tok_s = static_cast<double>(cs.generated_tokens()) / wall_s;
    res.failed_over = cs.requests_failed_over;
    res.lost = cs.requests_lost;
    res.replayed = cs.replayed_tokens();

    // Recovery gate: the rebuilt slot is marked restarted and pulls its share
    // of fresh traffic.
    if (res.fault_fired &&
        router.shard_health(0) == cluster::ShardHealth::kRestarted) {
        std::vector<runtime::RequestHandle> post;
        for (std::size_t r = 0; r < 8; ++r) {
            post.push_back(router.submit(runtime::ServeRequest{
                .prompt = "post-restart " + std::to_string(r),
                .max_new_tokens = 4}));
        }
        for (auto& h : post) (void)h.get();
        res.restart_serves =
            router.stats().shards[0].stats.requests_completed > 0;
    }
    router.stop();
    return res;
}

// The same workload with no fault script: the throughput yardstick the
// degraded run is measured against.
double run_fault_free(const model::QuantizedModelWeights& qw,
                      std::size_t requests, std::size_t max_new) {
    cluster::ClusterRouter router(qw, chaos_options(requests, ""));
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t r = 0; r < requests; ++r) {
        handles.push_back(router.submit(
            runtime::ServeRequest{.prompt = prompt_of(r), .max_new_tokens = max_new}));
    }
    const auto t0 = Clock::now();
    router.start();
    router.drain();
    const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    router.stop();
    return static_cast<double>(router.stats().generated_tokens()) / wall_s;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t requests = 32;
    std::size_t max_new = 16;
    std::size_t kill_step = 30;
    bool smoke = false;
    bool emit_json = false;
    std::string json_path = "BENCH_faults.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::max<std::size_t>(8, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            max_new = std::max<std::size_t>(4, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--kill-step") == 0 && i + 1 < argc) {
            kill_step = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests R] [--tokens N] [--kill-step K] "
                         "[--smoke] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke) requests = std::min<std::size_t>(requests, 16);

    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    std::printf(
        "=== Chaos: kill shard 0/4 at decode step %zu, %zu requests x %zu "
        "tokens%s ===\n\n",
        kill_step, requests, max_new, smoke ? " (smoke)" : "");

    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    const std::vector<std::vector<std::int32_t>> want =
        baseline_tokens(qw, cfg, requests, max_new);
    const ChaosResult r = run_chaos(qw, want, requests, max_new, kill_step);
    const double fault_free_tok_s = run_fault_free(qw, requests, max_new);
    const double degraded_ratio =
        fault_free_tok_s > 0.0 ? r.wall_tok_s / fault_free_tok_s : 0.0;

    std::printf("fault fired on shard 0:            %s\n",
                r.fault_fired ? "yes" : "NO (kill step never reached!)");
    std::printf("fault detected after:              %.1f ms\n", r.detect_ms);
    std::printf("restart_shard latency:             %.1f ms\n", r.restart_ms);
    std::printf("requests failed over / lost:       %zu / %zu\n", r.failed_over,
                r.lost);
    std::printf("displaced requests completed:      %zu\n", r.displaced_requests);
    std::printf("tokens replayed as prefill:        %zu\n", r.replayed);
    std::printf("degraded throughput:               %.1f tok/s (fault-free "
                "%.1f, ratio %.2f)\n\n",
                r.wall_tok_s, fault_free_tok_s, degraded_ratio);

    std::printf("all accepted requests completed:   %s\n",
                r.completed ? "yes" : "NO (regression!)");
    std::printf("token parity with fault-free run:  %s\n",
                r.parity ? "yes" : "NO (regression!)");
    std::printf("exactly-once streaming:            %s\n",
                r.exactly_once ? "yes" : "NO (regression!)");
    std::printf("restarted shard serves again:      %s\n",
                r.restart_serves ? "yes" : "NO (regression!)");

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"faults\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"shards\": 4,\n"
            << "  \"requests\": " << requests << ",\n"
            << "  \"max_new_tokens\": " << max_new << ",\n"
            << "  \"kill_step\": " << kill_step << ",\n"
            << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
            << "  \"gates\": {\"completed\": " << (r.completed ? "true" : "false")
            << ", \"parity\": " << (r.parity ? "true" : "false")
            << ", \"exactly_once\": " << (r.exactly_once ? "true" : "false")
            << ", \"restart_serves\": " << (r.restart_serves ? "true" : "false")
            << "},\n"
            << "  \"detect_ms\": " << r.detect_ms << ",\n"
            << "  \"restart_ms\": " << r.restart_ms << ",\n"
            << "  \"requests_failed_over\": " << r.failed_over << ",\n"
            << "  \"requests_lost\": " << r.lost << ",\n"
            << "  \"replayed_tokens\": " << r.replayed << ",\n"
            << "  \"degraded_tok_s\": " << r.wall_tok_s << ",\n"
            << "  \"fault_free_tok_s\": " << fault_free_tok_s << ",\n"
            << "  \"degraded_ratio\": " << degraded_ratio << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    const bool ok = r.fault_fired && r.completed && r.parity &&
                    r.exactly_once && r.restart_serves && r.lost == 0;
    return ok ? 0 : 1;
}
