// Table II — performance comparison with existing FPGA research.
//
// Published rows are inputs (measured on hardware we do not have); the Ours
// row is produced live by the KV260 cycle simulator decoding LLaMA2-7B.
#include <cstdio>
#include <iostream>

#include "accel/cycle_model.hpp"
#include "analytic/comparison.hpp"

using namespace efld;

int main() {
    std::printf("=== Table II: comparison with existing FPGA research ===\n\n");

    // Simulate our accelerator at the paper's reported operating region
    // (mid-generation, ctx ~512).
    accel::DecodeCycleModel sim(model::ModelConfig::llama2_7b(),
                                model::QuantScheme::w4a16_kv8(), accel::AccelConfig{});
    const double ours = sim.token_timing(512).tokens_per_s();
    std::printf("simulated KV260 decode rate (ctx=512): %.2f token/s "
                "[paper reports 4.9]\n\n",
                ours);

    analytic::print_table2(std::cout, analytic::build_table2(ours));

    std::printf("\npaper row:  Ours KV260 19.2 GB/s LLaMA2-7B W4 -> 5.8 / 4.9 / 84.5%%\n");
    std::printf("token/s^1 = theoretical peak (bandwidth / 4-bit weight bytes); "
                "token/s^2 = measured; Util. = ratio.\n");
    return 0;
}
