// Fig. 4 — bus-width aligned data arrangement.
//
// A) Model weights: the interleaved zero/scale/weight stream turns every
//    fetch into one long sequential burst; the naive layout (separate scale
//    and zero-point side tables read group by group) fragments the traffic.
// B) KV cache scalars: the scale-zero FIFO packs 16 tokens of (scale, zero)
//    into one 512-bit word before writing; the naive path writes 4 bytes per
//    head per token.
#include <cstdio>

#include "common/bitpack.hpp"
#include "memsim/memory_system.hpp"
#include "quant/weight_format.hpp"

using namespace efld;
using memsim::Dir;
using memsim::MemorySystem;
using memsim::MemorySystemConfig;
using memsim::Transaction;
using memsim::TransactionStream;

namespace {

struct Result {
    double ns;
    double efficiency;
    std::uint64_t transactions;
};

Result run(const TransactionStream& stream) {
    MemorySystem mem(MemorySystemConfig::kv260());
    const auto stats = mem.run(stream);
    return {stats.busy_ns, stats.achieved_bw() / mem.peak_bytes_per_s(),
            stats.transactions};
}

}  // namespace

int main() {
    std::printf("=== Fig. 4A: interleaved weight arrangement vs. separate side tables "
                "===\n\n");

    // One LLaMA2-7B projection layer: 4096 x 4096, group 128.
    const std::size_t rows = 4096, cols = 4096;
    const std::size_t groups = rows * cols / quant::kFormatGroupSize;
    const std::uint64_t weight_bytes = groups * kBusBytes;
    const std::uint64_t interleaved_bytes = quant::stream_words(groups) * kBusBytes;

    // Interleaved (ours): one sequential stream, scales/zeros inline.
    TransactionStream interleaved{{0, interleaved_bytes, Dir::kRead}};

    // Naive: weights sequential, but each group needs a 2-byte scale and a
    // half-byte zero from separate regions (padded to minimum transfer).
    TransactionStream naive;
    const std::uint64_t scale_base = 1ull << 31;
    const std::uint64_t zero_base = (1ull << 31) + (1ull << 28);
    for (std::size_t g = 0; g < groups; ++g) {
        naive.push_back({g * kBusBytes, kBusBytes, Dir::kRead});      // weights
        naive.push_back({scale_base + g * 2, 2, Dir::kRead});         // fp16 scale
        naive.push_back({zero_base + g, 1, Dir::kRead});              // zero point
    }

    const Result ri = run(interleaved);
    const Result rn = run(naive);
    std::printf("  layout        transactions   payload MiB   time ms   bus efficiency\n");
    std::printf("  interleaved   %12llu   %11.1f   %7.2f   %13.1f%%\n",
                static_cast<unsigned long long>(ri.transactions),
                static_cast<double>(interleaved_bytes) / 1048576.0, ri.ns / 1e6,
                100 * ri.efficiency);
    std::printf("  side tables   %12llu   %11.1f   %7.2f   %13.1f%%\n",
                static_cast<unsigned long long>(rn.transactions),
                static_cast<double>(weight_bytes + groups * 3) / 1048576.0, rn.ns / 1e6,
                100 * rn.efficiency);
    std::printf("  -> interleaving is %.2fx faster; stream overhead is only %.2f%%\n\n",
                rn.ns / ri.ns, 100 * quant::stream_overhead(groups));

    std::printf("=== Fig. 4B: KV scale-zero FIFO packing vs. scalar writes ===\n\n");
    // 32 layers x 32 heads x K/V over 1024 tokens.
    const std::size_t streams = 2 * 32 * 32;
    const std::size_t tokens = 1024;
    const std::uint64_t kv_base = 3ull << 30;

    TransactionStream packed;   // one 64 B word per stream per 16 tokens
    TransactionStream scalar;   // 4 B per stream per token
    for (std::size_t t = 0; t < tokens; ++t) {
        for (std::size_t s = 0; s < streams; ++s) {
            const std::uint64_t base = kv_base + s * tokens * 4;
            if (t % 16 == 15) {
                packed.push_back({base + (t / 16) * kBusBytes, kBusBytes, Dir::kWrite});
            }
            scalar.push_back({base + t * 4, 4, Dir::kWrite});
        }
    }
    const Result rp = run(packed);
    const Result rs = run(scalar);
    std::printf("  scheme        transactions   bytes moved   time ms   bus efficiency\n");
    std::printf("  FIFO-packed   %12llu   %11.2f MiB %7.2f   %13.1f%%\n",
                static_cast<unsigned long long>(rp.transactions),
                static_cast<double>(streams * (tokens / 16) * kBusBytes) / 1048576.0,
                rp.ns / 1e6, 100 * rp.efficiency);
    std::printf("  per-scalar    %12llu   %11.2f MiB %7.2f   %13.1f%%\n",
                static_cast<unsigned long long>(rs.transactions),
                static_cast<double>(streams * tokens * 4) / 1048576.0, rs.ns / 1e6,
                100 * rs.efficiency);
    std::printf("  -> packing is %.1fx faster for KV scalar writeback\n", rs.ns / rp.ns);
    return 0;
}
