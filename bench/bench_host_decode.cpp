// Host decode throughput: the software twin's fused fast path vs. the seed
// gemv_reference route, single- and multi-threaded, against the simulated
// KV260 decode rate from the cycle model.
//
// The paper's thesis is that decode = memory streaming; the host engine only
// serves as a credible baseline for the cycle model if its own hot path is
// not dominated by allocation and recomputation. This bench quantifies that:
//
//   legacy  : seed path (allocating gemv_reference per projection, 1 thread)
//   fused 1t: fused dequantize×dot fast path, allocation-free decode loop
//   fused Nt: same with GEMV rows / attention heads across a worker pool
//
// `--json [path]` additionally emits a BENCH_host_decode.json perf record so
// the throughput trajectory is trackable across PRs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/cycle_model.hpp"
#include "model/reference_engine.hpp"
#include "model/weights.hpp"

using namespace efld;

namespace {

struct RunResult {
    double tokens_per_s = 0.0;
    double logit_checksum = 0.0;  // parity fingerprint across variants
};

RunResult run_decode(const model::QuantizedModelWeights& qw, model::EngineOptions opts,
                     std::size_t prefill_tokens, std::size_t decode_tokens) {
    model::ReferenceEngine eng(qw, opts);
    const auto vocab = static_cast<std::int32_t>(qw.config.vocab_size);
    std::int32_t token = 1;
    for (std::size_t i = 0; i < prefill_tokens; ++i) {
        (void)eng.decode(token);
        token = static_cast<std::int32_t>((token * 5 + 3) % vocab);
    }

    double checksum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < decode_tokens; ++i) {
        const std::span<const float> logits = eng.decode(token);
        // Greedy next token keeps the run deterministic while exercising the
        // real logits the way a sampler would.
        token = static_cast<std::int32_t>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        checksum += static_cast<double>(logits[0]);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    return RunResult{static_cast<double>(decode_tokens) / s, checksum};
}

}  // namespace

int main(int argc, char** argv) {
    std::string model_name = "micro";
    std::size_t decode_tokens = 32;
    std::size_t prefill_tokens = 8;
    bool emit_json = false;
    std::string json_path = "BENCH_host_decode.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
        } else if (std::strcmp(argv[i], "--tokens") == 0 && i + 1 < argc) {
            decode_tokens = std::max<std::size_t>(1, std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--model micro|tiny] [--tokens N] [--json [path]]\n",
                         argv[0]);
            return 2;
        }
    }

    const model::ModelConfig cfg =
        model_name == "tiny" ? model::ModelConfig::tiny_512() : model::ModelConfig::micro_256();
    // The engine refuses to decode past the context window; keep the run
    // inside it rather than aborting mid-benchmark.
    if (prefill_tokens + decode_tokens > cfg.max_seq_len) {
        decode_tokens = cfg.max_seq_len - prefill_tokens;
        std::fprintf(stderr, "note: clamped --tokens to %zu (max_seq_len %llu)\n",
                     decode_tokens,
                     static_cast<unsigned long long>(cfg.max_seq_len));
    }
    std::printf("=== Host decode throughput: %s, W4 group-128, KV8 ===\n\n",
                cfg.name.c_str());
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) {
        std::printf("(note: only %u hardware thread(s) available — threaded rows "
                    "measure pool overhead, not scaling)\n\n",
                    hw);
    }

    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 42);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});

    const model::EngineOptions legacy{.use_kv8 = true, .seed_baseline = true, .threads = 1};
    const model::EngineOptions fused1{.use_kv8 = true, .seed_baseline = false, .threads = 1};

    std::printf("%-22s | %10s | %8s\n", "configuration", "token/s", "speedup");
    std::printf("---------------------------------------------\n");
    const RunResult base = run_decode(qw, legacy, prefill_tokens, decode_tokens);
    std::printf("%-22s | %10.2f | %7.2fx\n", "legacy (seed path)", base.tokens_per_s, 1.0);
    const RunResult f1 = run_decode(qw, fused1, prefill_tokens, decode_tokens);
    std::printf("%-22s | %10.2f | %7.2fx\n", "fused, 1 thread", f1.tokens_per_s,
                f1.tokens_per_s / base.tokens_per_s);

    std::vector<std::pair<std::size_t, double>> threaded;
    for (const std::size_t t : {2u, 4u}) {
        model::EngineOptions o = fused1;
        o.threads = t;
        const RunResult r = run_decode(qw, o, prefill_tokens, decode_tokens);
        threaded.emplace_back(t, r.tokens_per_s);
        char label[32];
        std::snprintf(label, sizeof label, "fused, %zu threads", t);
        std::printf("%-22s | %10.2f | %7.2fx\n", label, r.tokens_per_s,
                    r.tokens_per_s / base.tokens_per_s);
        if (std::abs(r.logit_checksum - f1.logit_checksum) > 0.0) {
            std::printf("  WARNING: threaded checksum diverged from 1-thread!\n");
        }
    }

    // The simulated KV260 rate the host baseline is measured against.
    accel::DecodeCycleModel sim(cfg, model::QuantScheme::w4a16_kv8(), accel::AccelConfig{});
    const double sim_tok_s =
        sim.token_timing(prefill_tokens + decode_tokens / 2).tokens_per_s();
    const double best_host =
        std::max(f1.tokens_per_s,
                 std::max(threaded[0].second, threaded[1].second));
    std::printf("\nsimulated KV260 decode rate : %10.2f token/s\n", sim_tok_s);
    std::printf("host-vs-simulated gap       : %10.2fx (host %s)\n",
                best_host > sim_tok_s ? best_host / sim_tok_s : sim_tok_s / best_host,
                best_host > sim_tok_s ? "faster" : "slower");

    if (emit_json) {
        std::ofstream out(json_path);
        out << "{\n"
            << "  \"bench\": \"host_decode\",\n"
            << "  \"model\": \"" << cfg.name << "\",\n"
            << "  \"decode_tokens\": " << decode_tokens << ",\n"
            << "  \"legacy_tok_s\": " << base.tokens_per_s << ",\n"
            << "  \"fused_1t_tok_s\": " << f1.tokens_per_s << ",\n"
            << "  \"fused_2t_tok_s\": " << threaded[0].second << ",\n"
            << "  \"fused_4t_tok_s\": " << threaded[1].second << ",\n"
            << "  \"speedup_1t\": " << f1.tokens_per_s / base.tokens_per_s << ",\n"
            << "  \"simulated_tok_s\": " << sim_tok_s << "\n"
            << "}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
