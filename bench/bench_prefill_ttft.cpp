// Extension — prefill phase / time-to-first-token (Fig. 2A).
//
// §VI.B: "we sacrifice some performance in the prefill stage and implement a
// bandwidth-area balanced DOT computing engine". This bench quantifies the
// sacrifice: the 128-lane vector engine is compute-bound during prefill,
// while a hypothetical matrix engine (or a GPU) reuses streamed weights.
#include <cstdio>

#include "accel/cycle_model.hpp"

using namespace efld;

int main() {
    std::printf("=== Prefill / TTFT on KV260 (LLaMA2-7B W4A16, tile = 16 tokens) "
                "===\n\n");
    const auto cfg = model::ModelConfig::llama2_7b();
    const auto scheme = model::QuantScheme::w4a16_kv8();

    std::printf("%8s | %10s | %12s | %11s | %20s\n", "prompt", "TTFT s",
                "prefill t/s", "bound", "matrix engine TTFT s");
    std::printf("----------------------------------------------------------------------\n");
    for (const std::size_t n : {16u, 64u, 128u, 256u, 512u}) {
        accel::DecodeCycleModel m(cfg, scheme, accel::AccelConfig{});
        const accel::PrefillTiming p = m.prefill_timing(n);
        accel::DecodeCycleModel m2(cfg, scheme, accel::AccelConfig{});
        const double matrix_ns = m2.matrix_engine_prefill_ns(n, 4096.0);
        std::printf("%8zu | %10.2f | %12.1f | %11s | %20.2f\n", n, p.total_ns / 1e9,
                    p.tokens_per_s(), p.compute_bound() ? "compute" : "bandwidth",
                    matrix_ns / 1e9);
    }

    std::printf("\nreading: decode is bandwidth-bound (the whole paper), prefill on the "
                "vector engine is\ncompute-bound — exactly Chen et al.'s asymmetry. A "
                "4096-MAC matrix engine would cut TTFT\nby an order of magnitude but "
                "would not fit the KV260 (see bench_table1_resources) and\nwould sit "
                "idle during decode. The paper's PPA choice is the vector engine.\n");
    return 0;
}
