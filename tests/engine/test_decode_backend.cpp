// The DecodeBackend seam: both implementations (host ReferenceEngine, accel
// Accelerator) must honor the same slot-lifecycle and decode contract, report
// honest StepCosts, and stay bit-identical to their own native entry points —
// with contiguous per-slot KV reservations AND with the paged kvpool layout
// (every parity assertion compares a paged batch against a contiguous solo
// run, so paged-vs-contiguous bit-exactness is part of the contract).
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/packed_model.hpp"
#include "common/check.hpp"
#include "engine/backend_factory.hpp"
#include "engine/decode_backend.hpp"
#include "model/reference_engine.hpp"

namespace efld::engine {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

const model::QuantizedModelWeights& test_weights() {
    static const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 42), quant::GroupQuantConfig{});
    return qw;
}

// (backend kind, kv_page_tokens): 0 = contiguous KV, > 0 = paged kvpool.
using ContractParam = std::tuple<BackendKind, std::size_t>;

BackendBundle make_with(BackendKind kind, std::size_t max_batch,
                        std::size_t page_tokens) {
    model::EngineOptions eo;
    eo.use_kv8 = true;
    eo.max_batch = max_batch;
    eo.kv_page_tokens = page_tokens;
    return make_backend(kind, test_weights(), eo);
}

class DecodeBackendContract : public ::testing::TestWithParam<ContractParam> {
protected:
    // The backend under test, built per the (kind, paging) parameter.
    BackendBundle make(std::size_t max_batch) {
        return make_with(std::get<0>(GetParam()), max_batch, std::get<1>(GetParam()));
    }
    // The parity oracle: always a CONTIGUOUS solo backend of the same kind.
    BackendBundle make_solo_contiguous() {
        return make_with(std::get<0>(GetParam()), 1, 0);
    }
    [[nodiscard]] BackendKind kind() const { return std::get<0>(GetParam()); }
};

TEST_P(DecodeBackendContract, SlotLifecycle) {
    BackendBundle b = make(2);
    DecodeBackend& be = *b.backend;
    EXPECT_EQ(be.max_batch(), 2u);

    const std::size_t s0 = be.reserve_slot();
    const std::size_t s1 = be.reserve_slot();
    EXPECT_NE(s0, s1);
    EXPECT_EQ(be.reserve_slot(), DecodeBackend::kNoSlot);  // full

    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 5;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&s1, 1), logits);
    EXPECT_EQ(be.position(s1), 1u);
    EXPECT_EQ(be.position(s0), 0u);

    be.release_slot(s1);  // clears KV + position
    const std::size_t s2 = be.reserve_slot();
    EXPECT_EQ(s2, s1);
    EXPECT_EQ(be.position(s2), 0u);
    EXPECT_THROW(be.release_slot(99), efld::Error);
}

TEST_P(DecodeBackendContract, StepCostReported) {
    BackendBundle b = make(1);
    DecodeBackend& be = *b.backend;
    const std::size_t slot = be.reserve_slot();
    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 9;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&slot, 1), logits);
    const StepCost c = be.last_step_cost();
    EXPECT_GT(c.wall_ns, 0.0);
    EXPECT_DOUBLE_EQ(c.weight_walks, 1.0);
    if (kind() == BackendKind::kAccel) {
        EXPECT_GT(c.simulated_ns, 0.0);  // cycle-priced
    } else {
        EXPECT_EQ(c.simulated_ns, 0.0);  // the host IS the wall clock
    }
}

TEST_P(DecodeBackendContract, BatchNeverChangesLogits) {
    // Two slots fed the same token stream produce each lane bit-identical to
    // a fresh CONTIGUOUS solo backend of the same kind — for the paged
    // params this is the paged-vs-contiguous bit-for-bit parity guarantee.
    BackendBundle batched = make(2);
    BackendBundle solo = make_solo_contiguous();
    DecodeBackend& bb = *batched.backend;
    DecodeBackend& sb = *solo.backend;
    const std::size_t b0 = bb.reserve_slot();
    const std::size_t b1 = bb.reserve_slot();
    const std::size_t s0 = sb.reserve_slot();

    const std::size_t vocab = bb.config().vocab_size;
    std::vector<float> batch_logits(2 * vocab), solo_logits(vocab);
    const std::vector<std::int32_t> stream = {3, 7, 11, 3};
    for (const std::int32_t tok : stream) {
        const std::int32_t toks[] = {tok, tok};
        const std::size_t slots[] = {b0, b1};
        bb.decode_batch(toks, slots, batch_logits);
        sb.decode_batch(std::span<const std::int32_t>(&tok, 1),
                        std::span<const std::size_t>(&s0, 1), solo_logits);
        for (std::size_t lane = 0; lane < 2; ++lane) {
            for (std::size_t i = 0; i < vocab; ++i) {
                ASSERT_EQ(batch_logits[lane * vocab + i], solo_logits[i])
                    << "lane " << lane << " logit " << i;
            }
        }
    }
}

TEST_P(DecodeBackendContract, ResetClearsStateKeepsReservations) {
    BackendBundle b = make(2);
    DecodeBackend& be = *b.backend;
    const std::size_t s0 = be.reserve_slot();
    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 4;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&s0, 1), logits);
    EXPECT_EQ(be.position(s0), 1u);
    be.reset();
    EXPECT_EQ(be.position(s0), 0u);
    // Reservation survived: the other slot is still the only free one.
    const std::size_t s1 = be.reserve_slot();
    EXPECT_NE(s1, s0);
    EXPECT_EQ(be.reserve_slot(), DecodeBackend::kNoSlot);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackendsBothLayouts, DecodeBackendContract,
    ::testing::Values(ContractParam{BackendKind::kHost, 0},
                      ContractParam{BackendKind::kHost, 8},
                      ContractParam{BackendKind::kAccel, 0},
                      ContractParam{BackendKind::kAccel, 8}),
    [](const ::testing::TestParamInfo<ContractParam>& info) {
        const std::size_t pt = std::get<1>(info.param);
        return std::string(to_string(std::get<0>(info.param))) +
               (pt > 0 ? "_paged" + std::to_string(pt) : "_contiguous");
    });

TEST(DecodeBackendPaged, HostFloatCachePagedParity) {
    // The float (non-KV8) host path pages through a different arena (gathered
    // spans instead of dequant) — its logits must also be bit-for-bit the
    // contiguous float path's.
    model::EngineOptions paged_eo;
    paged_eo.use_kv8 = false;
    paged_eo.max_batch = 2;
    paged_eo.kv_page_tokens = 4;
    model::EngineOptions contig_eo;
    contig_eo.use_kv8 = false;
    model::ReferenceEngine paged(test_weights(), paged_eo);
    model::ReferenceEngine contig(test_weights(), contig_eo);

    const std::size_t vocab = test_cfg().vocab_size;
    std::vector<float> got(2 * vocab), want(vocab);
    const std::size_t p0 = paged.reserve_slot();
    const std::size_t p1 = paged.reserve_slot();
    const std::size_t c0 = contig.reserve_slot();
    for (const std::int32_t tok : {2, 6, 10, 14, 3, 1, 12, 9, 5}) {
        const std::int32_t toks[] = {tok, tok};
        const std::size_t slots[] = {p0, p1};
        paged.decode_batch(toks, slots, got);
        contig.decode_batch(std::span<const std::int32_t>(&tok, 1),
                            std::span<const std::size_t>(&c0, 1), want);
        for (std::size_t lane = 0; lane < 2; ++lane) {
            for (std::size_t i = 0; i < vocab; ++i) {
                ASSERT_EQ(got[lane * vocab + i], want[i]) << "lane " << lane;
            }
        }
    }
}

TEST(DecodeBackendPaged, HostPoolSmallerThanWorstCaseStillServesShortSessions) {
    // The capacity point at the engine level: 2 slots backed by a pool far
    // smaller than 2 x max_seq_len decode short sessions fine, and
    // release_slot returns pages for the next tenant.
    model::EngineOptions eo;
    eo.use_kv8 = true;
    eo.max_batch = 2;
    eo.kv_page_tokens = 4;
    eo.kv_pool_pages = 4;  // 16 tokens total << 2 * 1024
    model::ReferenceEngine eng(test_weights(), eo);

    const std::size_t vocab = test_cfg().vocab_size;
    std::vector<float> logits(2 * vocab);
    for (int round = 0; round < 3; ++round) {
        const std::size_t s0 = eng.reserve_slot();
        const std::size_t s1 = eng.reserve_slot();
        const std::size_t slots[] = {s0, s1};
        for (std::int32_t t = 0; t < 8; ++t) {  // 8 tokens each: exactly fits
            const std::int32_t toks[] = {t, t + 1};
            eng.decode_batch(toks, slots, logits);
        }
        eng.release_slot(s0);
        eng.release_slot(s1);
    }
    // A session that outgrows the pool surfaces as an error, not corruption.
    const std::size_t s = eng.reserve_slot();
    std::vector<float> row(vocab);
    for (std::int32_t t = 0; t < 16; ++t) {
        eng.decode_batch(std::span<const std::int32_t>(&t, 1),
                         std::span<const std::size_t>(&s, 1), row);
    }
    const std::int32_t overflow = 0;
    EXPECT_THROW(eng.decode_batch(std::span<const std::int32_t>(&overflow, 1),
                                  std::span<const std::size_t>(&s, 1), row),
                 efld::Error);
}

TEST(DecodeBackendFactory, KindRoundTrips) {
    EXPECT_EQ(backend_kind_from_string("host"), BackendKind::kHost);
    EXPECT_EQ(backend_kind_from_string("accel"), BackendKind::kAccel);
    EXPECT_EQ(to_string(BackendKind::kAccel), "accel");
    EXPECT_THROW((void)backend_kind_from_string("gpu"), std::invalid_argument);
}

TEST(DecodeBackendFactory, HostBackendMatchesNativeDecode) {
    // The seam's logits_out copy is bit-for-bit the native span-returning
    // decode on an identically configured engine.
    model::EngineOptions eo;
    eo.use_kv8 = true;
    BackendBundle b = make_with(BackendKind::kHost, 1, 0);
    model::ReferenceEngine native(test_weights(), eo);

    const std::size_t slot = b.backend->reserve_slot();
    std::vector<float> seam(b.backend->config().vocab_size);
    for (const std::int32_t tok : {1, 8, 64}) {
        b.backend->decode_batch(std::span<const std::int32_t>(&tok, 1),
                                std::span<const std::size_t>(&slot, 1), seam);
        const std::span<const float> want = native.decode(tok);
        for (std::size_t i = 0; i < seam.size(); ++i) ASSERT_EQ(seam[i], want[i]);
    }
}

TEST(DecodeBackendFactory, AccelBackendMatchesNativeStep) {
    // Accelerator::decode_batch single lane == Accelerator::step, functional
    // and priced: simulated_ns of the 1-lane batch equals the step timing.
    BackendBundle b = make_with(BackendKind::kAccel, 1, 0);
    accel::Accelerator native(*b.packed);

    auto& be = *b.backend;
    const std::size_t slot = be.reserve_slot();
    std::vector<float> seam(be.config().vocab_size);
    for (const std::int32_t tok : {2, 5, 17}) {
        be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                        std::span<const std::size_t>(&slot, 1), seam);
        const accel::StepResult want = native.step(tok);
        for (std::size_t i = 0; i < seam.size(); ++i) ASSERT_EQ(seam[i], want.logits[i]);
        EXPECT_DOUBLE_EQ(be.last_step_cost().simulated_ns, want.timing.total_ns);
    }
}

TEST(DecodeBackendFactory, AccelSlotsAreIndependentSessions) {
    // Two accel slots fed different streams keep independent KV: slot A's
    // logits match a solo accelerator fed only A's stream.
    BackendBundle b = make_with(BackendKind::kAccel, 2, 0);
    accel::Accelerator solo(*b.packed);

    auto& be = *b.backend;
    const std::size_t sa = be.reserve_slot();
    const std::size_t sb = be.reserve_slot();
    const std::size_t vocab = be.config().vocab_size;
    std::vector<float> logits(2 * vocab);

    accel::StepResult want;
    for (const std::int32_t tok : {3, 9, 27}) {
        const std::int32_t toks[] = {tok, static_cast<std::int32_t>(tok + 1)};
        const std::size_t slots[] = {sa, sb};
        be.decode_batch(toks, slots, logits);
        want = solo.step(tok);
        for (std::size_t i = 0; i < vocab; ++i) ASSERT_EQ(logits[i], want.logits[i]);
    }
}

}  // namespace
}  // namespace efld::engine
