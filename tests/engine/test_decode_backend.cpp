// The DecodeBackend seam: both implementations (host ReferenceEngine, accel
// Accelerator) must honor the same slot-lifecycle and decode contract, report
// honest StepCosts, and stay bit-identical to their own native entry points.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/packed_model.hpp"
#include "common/check.hpp"
#include "engine/backend_factory.hpp"
#include "engine/decode_backend.hpp"
#include "model/reference_engine.hpp"

namespace efld::engine {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

const model::QuantizedModelWeights& test_weights() {
    static const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 42), quant::GroupQuantConfig{});
    return qw;
}

BackendBundle make(BackendKind kind, std::size_t max_batch) {
    model::EngineOptions eo;
    eo.use_kv8 = true;
    eo.max_batch = max_batch;
    return make_backend(kind, test_weights(), eo);
}

class DecodeBackendContract : public ::testing::TestWithParam<BackendKind> {};

TEST_P(DecodeBackendContract, SlotLifecycle) {
    BackendBundle b = make(GetParam(), 2);
    DecodeBackend& be = *b.backend;
    EXPECT_EQ(be.max_batch(), 2u);

    const std::size_t s0 = be.reserve_slot();
    const std::size_t s1 = be.reserve_slot();
    EXPECT_NE(s0, s1);
    EXPECT_EQ(be.reserve_slot(), DecodeBackend::kNoSlot);  // full

    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 5;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&s1, 1), logits);
    EXPECT_EQ(be.position(s1), 1u);
    EXPECT_EQ(be.position(s0), 0u);

    be.release_slot(s1);  // clears KV + position
    const std::size_t s2 = be.reserve_slot();
    EXPECT_EQ(s2, s1);
    EXPECT_EQ(be.position(s2), 0u);
    EXPECT_THROW(be.release_slot(99), efld::Error);
}

TEST_P(DecodeBackendContract, StepCostReported) {
    BackendBundle b = make(GetParam(), 1);
    DecodeBackend& be = *b.backend;
    const std::size_t slot = be.reserve_slot();
    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 9;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&slot, 1), logits);
    const StepCost c = be.last_step_cost();
    EXPECT_GT(c.wall_ns, 0.0);
    EXPECT_DOUBLE_EQ(c.weight_walks, 1.0);
    if (GetParam() == BackendKind::kAccel) {
        EXPECT_GT(c.simulated_ns, 0.0);  // cycle-priced
    } else {
        EXPECT_EQ(c.simulated_ns, 0.0);  // the host IS the wall clock
    }
}

TEST_P(DecodeBackendContract, BatchNeverChangesLogits) {
    // Two slots fed the same token stream produce each lane bit-identical to
    // a fresh solo backend of the same kind.
    BackendBundle batched = make(GetParam(), 2);
    BackendBundle solo = make(GetParam(), 1);
    DecodeBackend& bb = *batched.backend;
    DecodeBackend& sb = *solo.backend;
    const std::size_t b0 = bb.reserve_slot();
    const std::size_t b1 = bb.reserve_slot();
    const std::size_t s0 = sb.reserve_slot();

    const std::size_t vocab = bb.config().vocab_size;
    std::vector<float> batch_logits(2 * vocab), solo_logits(vocab);
    const std::vector<std::int32_t> stream = {3, 7, 11, 3};
    for (const std::int32_t tok : stream) {
        const std::int32_t toks[] = {tok, tok};
        const std::size_t slots[] = {b0, b1};
        bb.decode_batch(toks, slots, batch_logits);
        sb.decode_batch(std::span<const std::int32_t>(&tok, 1),
                        std::span<const std::size_t>(&s0, 1), solo_logits);
        for (std::size_t lane = 0; lane < 2; ++lane) {
            for (std::size_t i = 0; i < vocab; ++i) {
                ASSERT_EQ(batch_logits[lane * vocab + i], solo_logits[i])
                    << "lane " << lane << " logit " << i;
            }
        }
    }
}

TEST_P(DecodeBackendContract, ResetClearsStateKeepsReservations) {
    BackendBundle b = make(GetParam(), 2);
    DecodeBackend& be = *b.backend;
    const std::size_t s0 = be.reserve_slot();
    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 4;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&s0, 1), logits);
    EXPECT_EQ(be.position(s0), 1u);
    be.reset();
    EXPECT_EQ(be.position(s0), 0u);
    // Reservation survived: the other slot is still the only free one.
    const std::size_t s1 = be.reserve_slot();
    EXPECT_NE(s1, s0);
    EXPECT_EQ(be.reserve_slot(), DecodeBackend::kNoSlot);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, DecodeBackendContract,
                         ::testing::Values(BackendKind::kHost, BackendKind::kAccel),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                             return std::string(to_string(info.param));
                         });

TEST(DecodeBackendFactory, KindRoundTrips) {
    EXPECT_EQ(backend_kind_from_string("host"), BackendKind::kHost);
    EXPECT_EQ(backend_kind_from_string("accel"), BackendKind::kAccel);
    EXPECT_EQ(to_string(BackendKind::kAccel), "accel");
    EXPECT_THROW((void)backend_kind_from_string("gpu"), std::invalid_argument);
}

TEST(DecodeBackendFactory, HostBackendMatchesNativeDecode) {
    // The seam's logits_out copy is bit-for-bit the native span-returning
    // decode on an identically configured engine.
    model::EngineOptions eo;
    eo.use_kv8 = true;
    BackendBundle b = make(BackendKind::kHost, 1);
    model::ReferenceEngine native(test_weights(), eo);

    const std::size_t slot = b.backend->reserve_slot();
    std::vector<float> seam(b.backend->config().vocab_size);
    for (const std::int32_t tok : {1, 8, 64}) {
        b.backend->decode_batch(std::span<const std::int32_t>(&tok, 1),
                                std::span<const std::size_t>(&slot, 1), seam);
        const std::span<const float> want = native.decode(tok);
        for (std::size_t i = 0; i < seam.size(); ++i) ASSERT_EQ(seam[i], want[i]);
    }
}

TEST(DecodeBackendFactory, AccelBackendMatchesNativeStep) {
    // Accelerator::decode_batch single lane == Accelerator::step, functional
    // and priced: simulated_ns of the 1-lane batch equals the step timing.
    BackendBundle b = make(BackendKind::kAccel, 1);
    accel::Accelerator native(*b.packed);

    auto& be = *b.backend;
    const std::size_t slot = be.reserve_slot();
    std::vector<float> seam(be.config().vocab_size);
    for (const std::int32_t tok : {2, 5, 17}) {
        be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                        std::span<const std::size_t>(&slot, 1), seam);
        const accel::StepResult want = native.step(tok);
        for (std::size_t i = 0; i < seam.size(); ++i) ASSERT_EQ(seam[i], want.logits[i]);
        EXPECT_DOUBLE_EQ(be.last_step_cost().simulated_ns, want.timing.total_ns);
    }
}

TEST(DecodeBackendFactory, AccelSlotsAreIndependentSessions) {
    // Two accel slots fed different streams keep independent KV: slot A's
    // logits match a solo accelerator fed only A's stream.
    BackendBundle b = make(BackendKind::kAccel, 2);
    accel::Accelerator solo(*b.packed);

    auto& be = *b.backend;
    const std::size_t sa = be.reserve_slot();
    const std::size_t sb = be.reserve_slot();
    const std::size_t vocab = be.config().vocab_size;
    std::vector<float> logits(2 * vocab);

    accel::StepResult want;
    for (const std::int32_t tok : {3, 9, 27}) {
        const std::int32_t toks[] = {tok, static_cast<std::int32_t>(tok + 1)};
        const std::size_t slots[] = {sa, sb};
        be.decode_batch(toks, slots, logits);
        want = solo.step(tok);
        for (std::size_t i = 0; i < vocab; ++i) ASSERT_EQ(logits[i], want.logits[i]);
    }
}

}  // namespace
}  // namespace efld::engine
