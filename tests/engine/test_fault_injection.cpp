// FaultInjectingBackend: the scripted fault schedule must fire exactly where
// the spec says (reproducibly), death must be sticky, and the decorator must
// be a transparent pass-through everywhere the plan is silent — these are the
// guarantees the failover tests and the chaos bench stand on.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "engine/backend_factory.hpp"
#include "engine/fault_injection.hpp"

namespace efld::engine {
namespace {

const model::QuantizedModelWeights& test_weights() {
    static const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(
            model::ModelWeights::synthetic(model::ModelConfig::micro_256(), 42),
            quant::GroupQuantConfig{});
    return qw;
}

BackendBundle make_faulty(std::string_view spec, std::size_t max_batch = 2) {
    model::EngineOptions eo;
    eo.max_batch = max_batch;
    return make_backend(BackendKind::kHost, test_weights(), eo, {}, spec);
}

// One single-lane decode step; returns without inspecting logits.
void step_once(DecodeBackend& be, std::size_t slot) {
    std::vector<float> logits(be.config().vocab_size);
    const std::int32_t tok = 7;
    be.decode_batch(std::span<const std::int32_t>(&tok, 1),
                    std::span<const std::size_t>(&slot, 1), logits);
}

TEST(FaultPlanParsing, AcceptsTheDocumentedGrammar) {
    EXPECT_TRUE(parse_fault_plan("").empty());
    EXPECT_TRUE(parse_fault_plan("   ").empty());

    FaultPlan p = parse_fault_plan("step:3");
    EXPECT_EQ(p.throw_at_step, 3u);
    EXPECT_FALSE(p.empty());

    p = parse_fault_plan("alloc:2");
    EXPECT_EQ(p.throw_at_reservation, 2u);

    p = parse_fault_plan("stall:4:250");
    EXPECT_EQ(p.stall_at_step, 4u);
    EXPECT_EQ(p.stall.count(), 250);

    p = parse_fault_plan("flaky:0.5:99");
    EXPECT_DOUBLE_EQ(p.flaky_p, 0.5);
    EXPECT_EQ(p.flaky_seed, 99u);

    p = parse_fault_plan("step:3,stall:2:50");
    EXPECT_EQ(p.throw_at_step, 3u);
    EXPECT_EQ(p.stall_at_step, 2u);
}

TEST(FaultPlanParsing, RejectsMalformedSpecsLoudly) {
    EXPECT_THROW((void)parse_fault_plan("stp:3"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("step:0"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("step:x"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("step"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("stall:1"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("flaky:1.5:1"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("flaky:0:1"), std::invalid_argument);
    EXPECT_THROW((void)parse_fault_plan("step:3,,"), std::invalid_argument);
}

TEST(FaultInjection, FactoryWrapsOnlyWhenSpecIsNonEmpty) {
    BackendBundle plain = make_faulty("");
    EXPECT_EQ(plain.backend->name(), "host");

    BackendBundle wrapped = make_faulty("step:5");
    EXPECT_EQ(wrapped.backend->name(), "fault-injecting");
    auto* fi = dynamic_cast<FaultInjectingBackend*>(wrapped.backend.get());
    ASSERT_NE(fi, nullptr);
    EXPECT_EQ(fi->inner_name(), "host");

    EXPECT_THROW((void)make_faulty("bogus:1"), std::invalid_argument);
}

TEST(FaultInjection, DiesAtExactlyTheScriptedStepAndStaysDead) {
    BackendBundle b = make_faulty("step:3");
    auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
    const std::size_t slot = be.reserve_slot();

    step_once(be, slot);
    step_once(be, slot);
    EXPECT_FALSE(be.faulted());
    EXPECT_THROW(step_once(be, slot), BackendFault);
    EXPECT_TRUE(be.faulted());
    EXPECT_EQ(be.steps_attempted(), 3u);

    // Sticky: a dead device does not come back on retry, and further slot
    // allocation fails too.
    EXPECT_THROW(step_once(be, slot), BackendFault);
    EXPECT_THROW((void)be.reserve_slot(), BackendFault);
}

TEST(FaultInjection, ReleaseSlotIsANoOpOnADeadDevice) {
    // Teardown paths walk sessions and release their slots; none of that may
    // trip over the corpse.
    BackendBundle b = make_faulty("step:1");
    auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
    const std::size_t slot = be.reserve_slot();
    EXPECT_THROW(step_once(be, slot), BackendFault);
    EXPECT_NO_THROW(be.release_slot(slot));
}

TEST(FaultInjection, AllocFaultFiresOnTheNthReservation) {
    BackendBundle b = make_faulty("alloc:2", 4);
    auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
    const std::size_t s0 = be.reserve_slot();
    EXPECT_NE(s0, DecodeBackend::kNoSlot);
    EXPECT_THROW((void)be.reserve_slot(), BackendFault);
    EXPECT_TRUE(be.faulted());
}

TEST(FaultInjection, StallDelaysTheStepButDoesNotKillIt) {
    BackendBundle b = make_faulty("stall:2:60");
    auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
    const std::size_t slot = be.reserve_slot();

    step_once(be, slot);
    const auto t0 = std::chrono::steady_clock::now();
    step_once(be, slot);  // stalled step still succeeds
    const auto stalled = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(stalled)
                  .count(),
              60);
    EXPECT_FALSE(be.faulted());
    step_once(be, slot);
    EXPECT_EQ(be.steps_attempted(), 3u);
}

TEST(FaultInjection, FlakyScheduleIsDeterministicPerSeed) {
    // The same seed must fail at the same step, run after run — that is what
    // makes a "random" chaos bench reproducible.
    const auto steps_until_death = [](std::uint64_t seed) {
        BackendBundle b = make_faulty("flaky:0.3:" + std::to_string(seed));
        auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
        const std::size_t slot = be.reserve_slot();
        std::size_t steps = 0;
        for (; steps < 200; ++steps) {
            try {
                step_once(be, slot);
            } catch (const BackendFault&) {
                break;
            }
        }
        return steps;
    };
    const std::size_t first = steps_until_death(7);
    EXPECT_LT(first, 200u);  // p=0.3 over 200 steps: death is certain enough
    EXPECT_EQ(first, steps_until_death(7));
    // A different seed draws a different stream (overwhelmingly likely to
    // die elsewhere; equality here would be a 0.3-probability coincidence we
    // accept rather than flake on).
}

TEST(FaultInjection, EmptyPlanIsATransparentPassThrough) {
    BackendBundle b = make_faulty("stall:1:1");  // wrapped, plan effectively quiet after step 1
    auto& be = dynamic_cast<FaultInjectingBackend&>(*b.backend);
    const std::size_t slot = be.reserve_slot();
    step_once(be, slot);
    EXPECT_EQ(be.position(slot), 1u);
    EXPECT_EQ(be.max_batch(), 2u);
    be.release_slot(slot);
    EXPECT_EQ(be.position(slot), 0u);
    be.reset();
    EXPECT_FALSE(be.faulted());
}

}  // namespace
}  // namespace efld::engine
