// Full-pipeline integration: synthetic weights -> AWQ-style quantization ->
// bus-format packing -> SD-card image -> bare-metal boot -> decode on the
// accelerator -> validated against the software twin, with timing and FIFO
// behaviour checked along the way. Every module in the repository is on this
// path.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/mathutil.hpp"
#include "model/reference_engine.hpp"
#include "runtime/host.hpp"
#include "runtime/loader.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"

namespace efld {
namespace {

TEST(EndToEnd, OfflineToDecodePipeline) {
    // Offline: quantize and pack.
    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 1234);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    const accel::PackedModel packed = accel::PackedModel::build(qw);

    // Image round trip through a file (the SD card).
    const std::string path = testing::TempDir() + "/efld_e2e_model.bin";
    runtime::save_model(packed, path);
    const accel::PackedModel loaded = runtime::load_model(path);
    std::remove(path.c_str());

    // Boot the bare-metal host on the image.
    runtime::BareMetalHost host = runtime::BareMetalHost::boot(
        runtime::serialize_model(loaded));
    ASSERT_TRUE(host.report().crc_ok);

    // Decode against the software twin (same quantized weights, KV8).
    model::ReferenceEngine twin(qw, /*use_kv8=*/true);
    std::vector<float> lh, lt;
    double sim_ns = 0.0;
    for (const std::int32_t t : {1, 9, 4, 7, 2, 8}) {
        const accel::StepResult r = host.execute({t, false});
        lh = r.logits;
        lt = twin.forward(t);
        sim_ns += r.timing.total_ns;
    }
    EXPECT_GT(cosine_similarity(lh, lt), 0.995);
    EXPECT_GT(sim_ns, 0.0);

    // FIFO discipline: no stream flushed yet (6 < 16 tokens)...
    const auto& fifo = host.accelerator().scale_zero_fifo();
    EXPECT_EQ(fifo.words_flushed(), 0u);
    // ...and each K/V stream holds exactly 6 packs.
    EXPECT_EQ(fifo.slot_fill(0, 0, false), 6u);
    EXPECT_EQ(fifo.slot_fill(cfg.n_layers - 1, cfg.n_kv_heads - 1, true), 6u);
}

TEST(EndToEnd, SessionAgainstHostConsistency) {
    // The high-level session and the explicit host flow must produce the same
    // logits stream for the same model and inputs.
    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, 555);
    const model::QuantizedModelWeights qw =
        model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    accel::PackedModel packed = accel::PackedModel::build(qw);
    const auto image = runtime::serialize_model(packed);

    runtime::SessionOptions opts;
    opts.sampler.temperature = 0.0f;
    runtime::InferenceSession session(std::move(packed), opts);
    runtime::BareMetalHost host = runtime::BareMetalHost::boot(image);

    const auto prompt_ids = session.tokenizer().encode("ab");
    for (const auto id : prompt_ids) {
        (void)host.execute({id, true});
    }
    const runtime::GenerationOutput out = session.generate("ab", 3);
    ASSERT_EQ(out.tokens.size(), 3u);

    // Replay the greedy choice on the host side.
    std::int32_t next = out.tokens[0];
    // (First token came from the prompt's last logits; verify the chain.)
    for (std::size_t i = 1; i < out.tokens.size(); ++i) {
        const accel::StepResult r = host.execute({next, false});
        next = model::Sampler::argmax(r.logits);
        EXPECT_EQ(next, out.tokens[i]) << "diverged at step " << i;
    }
}

TEST(EndToEnd, CapacityAndTimingConsistentFor7B) {
    // The planner, the MCU map, and the cycle model must tell one coherent
    // story for the deployment configuration.
    const model::ModelConfig cfg = model::ModelConfig::llama2_7b();
    const model::QuantScheme scheme = model::QuantScheme::w4a16_kv8();

    const runtime::MemoryPlan plan = runtime::MemoryPlanner::plan_kv260(cfg, scheme);
    ASSERT_TRUE(plan.fits);

    accel::DecodeCycleModel m(cfg, scheme, accel::AccelConfig{});
    // MCU map utilization within 1% of the planner's arithmetic.
    EXPECT_NEAR(m.mcu().map().utilization(), plan.utilization, 0.01);

    // Weight bytes moved per token == packed weight bytes placed in DDR
    // (excluding the embedding table, which is fetched one row at a time).
    const accel::TokenTiming t = m.token_timing(0);
    const double placed = static_cast<double>(plan.weight_bytes) -
                          static_cast<double>(model::compute_footprint(cfg, scheme)
                                                  .embedding_bytes);
    EXPECT_NEAR(static_cast<double>(t.weight_bytes), placed, placed * 0.01);
}

}  // namespace
}  // namespace efld
