// Prefix-affinity routing: the placement policy, sharers co-locating onto
// the shard that holds their prefix (and beating best-fit's hit rate on the
// same budget), and failover of a shared-prefix session rebuilding through
// the survivor's index instead of re-prefilling.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::cluster {
namespace {

// 2 shards, 8-token pages, 9-page pools: one 32-token-prompt + 8-new request
// is a 5-page worst case, so a shard holds two sharers (discounted to 2
// pages each) but not two strangers.
ClusterOptions cluster_opts(PlacementPolicy policy) {
    ClusterOptions o;
    o.shards = 2;
    o.placement = policy;
    o.shard.max_batch = 4;
    o.shard.paging = true;
    o.shard.kv_page_tokens = 8;
    o.shard.kv_pool_pages = 9;
    o.shard.prefix_sharing = true;
    o.shard.sampler.temperature = 0.0f;
    return o;
}

const std::string kSysPrompt(31, 's');  // 32 tokens with BOS: 4 aligned pages

std::unique_ptr<Placement> affinity() {
    return make_placement(PlacementPolicy::kPrefixAffinity);
}

ShardLoad paged_shard(std::size_t free, std::size_t covered) {
    ShardLoad s;
    s.queue_capacity = 8;
    s.paging = true;
    s.total_pages = 16;
    s.committed_pages = 16 - free;
    s.prefix_covered_tokens = covered;
    return s;
}

TEST(PrefixAffinityPlacement, DeepestCoverageWinsTiesBreakTighter) {
    auto p = affinity();
    std::vector<ShardLoad> shards = {paged_shard(8, 16), paged_shard(8, 24),
                                     paged_shard(8, 24)};
    // Deepest coverage wins; among equals the tighter (fewer free pages)
    // shard does, then the lower index.
    EXPECT_EQ(p->pick(shards, 2), 1u);
    shards[2].committed_pages += 2;  // shard 2 now tighter at equal coverage
    EXPECT_EQ(p->pick(shards, 2), 2u);
    EXPECT_EQ(p->name(), "prefix-affinity");
}

TEST(PrefixAffinityPlacement, IgnoresCoverageOnIneligibleShards) {
    auto p = affinity();
    std::vector<ShardLoad> shards = {paged_shard(8, 24), paged_shard(8, 8)};
    shards[0].healthy = false;
    EXPECT_EQ(p->pick(shards, 2), 1u);  // dead shard's cache is not capacity
    shards[1].queued = shards[1].queue_capacity;  // full queue: also ineligible
    EXPECT_EQ(p->pick(shards, 2), kNoShard);
}

TEST(PrefixAffinityPlacement, FallsBackToBestFitWhenNoShardCovers) {
    auto p = affinity();
    // No coverage anywhere: must behave exactly like best-fit (tightest
    // slack that fits).
    std::vector<ShardLoad> shards = {paged_shard(8, 0), paged_shard(4, 0)};
    EXPECT_EQ(p->pick(shards, 2), 1u);
    EXPECT_EQ(make_placement(PlacementPolicy::kBestFitPages)->pick(shards, 2), 1u);
}

TEST(PrefixAffinityPlacement, ParsesAndPrints) {
    EXPECT_EQ(placement_policy_from_string("prefix-affinity"),
              PlacementPolicy::kPrefixAffinity);
    EXPECT_EQ(placement_policy_from_string("prefix"),
              PlacementPolicy::kPrefixAffinity);
    EXPECT_EQ(to_string(PlacementPolicy::kPrefixAffinity), "prefix-affinity");
}

// Warm one request through the router, then 4 same-prefix followers. The
// affinity cluster piles every follower onto the warm shard — 4 hits out of
// 4 — while best-fit splits them across shards and pays a cold re-prefill on
// the far side. Same budget, same traffic: the hit rate is the policy's win.
std::size_t run_followers(PlacementPolicy policy, std::size_t* far_requests) {
    runtime::ClusterDeployment d = runtime::synthetic_cluster(
        model::ModelConfig::micro_256(), 42, cluster_opts(policy));
    runtime::RequestHandle warm = d.router->submit(
        runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 8});
    d.router->drain();
    EXPECT_EQ(warm.get().tokens.size(), 8u);

    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 4; ++r) {
        hs.push_back(d.router->submit(
            runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 8}));
    }
    d.router->drain();
    std::vector<std::int32_t> first = hs.front().get().tokens;
    for (auto& h : hs) EXPECT_EQ(h.get().tokens, first);  // sharers identical

    std::size_t hits = 0;
    for (std::size_t i = 0; i < d.router->shard_count(); ++i) {
        hits += d.router->shard(i).stats().prefix_hits;
    }
    // The warm request landed on shard 0 (best-fit tie-break) under both
    // policies; "far" is everything shard 1 served.
    *far_requests = d.router->shard(1).stats().requests_completed;
    return hits;
}

TEST(ClusterPrefix, AffinityBeatsBestFitOnHitRate) {
    std::size_t far_affinity = 0;
    std::size_t far_bestfit = 0;
    const std::size_t affinity_hits =
        run_followers(PlacementPolicy::kPrefixAffinity, &far_affinity);
    const std::size_t bestfit_hits =
        run_followers(PlacementPolicy::kBestFitPages, &far_bestfit);
    EXPECT_EQ(affinity_hits, 4u);   // every follower adopted
    EXPECT_EQ(far_affinity, 0u);    // all of them on the warm shard
    EXPECT_GT(far_bestfit, 0u);     // best-fit sent someone to the cold shard
    EXPECT_GT(affinity_hits, bestfit_hits);
}

TEST(ClusterPrefix, FailoverRebuildsSharedPrefixThroughSurvivorIndex) {
    // Both shards warmed with the system prompt, then a long request lands on
    // shard 0 (affinity tie-break) and shard 0 dies mid-stream. The survivor
    // must rebuild the displaced session by ADOPTING its prompt from the
    // index — the trace shows a prefix hit on shard 1 after the resubmission
    // — and the tokens still match a fault-free solo run exactly.
    auto trace = std::make_shared<obs::TraceRecorder>(2048);
    ClusterOptions opts = cluster_opts(PlacementPolicy::kPrefixAffinity);
    opts.shard.trace = trace;
    // The two warm runs below consume ~39 driver steps on each shard; the
    // victim then samples from roughly step 40 on shard 0, so step 45 kills
    // it mid-stream with a handful of tokens already delivered.
    opts.shard_fault_specs = {"step:45"};
    runtime::ClusterDeployment d = runtime::synthetic_cluster(
        model::ModelConfig::micro_256(), 42, opts);

    // Warm each shard's index directly (inline stepping, drivers not up).
    for (std::size_t i = 0; i < 2; ++i) {
        runtime::RequestHandle w = d.router->shard(i).submit(
            runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 8});
        d.router->shard(i).run_until_idle();
        EXPECT_EQ(w.get().tokens.size(), 8u);
        EXPECT_GT(d.router->shard(i).load().shared_pages, 0u);
    }

    runtime::RequestHandle victim = d.router->submit(
        runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 12});
    d.router->start();
    const runtime::ServeResult& res = victim.get();
    d.router->stop();

    ASSERT_EQ(res.failovers, 1u);
    EXPECT_EQ(res.finish_reason, serve::FinishReason::kBudget);
    EXPECT_EQ(res.tokens.size(), 12u);

    const std::vector<obs::TraceRecord> ev = trace->for_request(res.id);
    // Anchor on the harvest: it is recorded by the dying shard BEFORE the
    // resubmission enqueues, so everything the survivor does sits after it in
    // the ring. (kResubmitted itself is traced by the failed shard's thread
    // and can land after the survivor's admission — not an ordering anchor.)
    EXPECT_TRUE(std::any_of(ev.begin(), ev.end(), [](const obs::TraceRecord& r) {
        return r.event == obs::TraceEvent::kResubmitted;
    }));
    const auto harvest = std::find_if(
        ev.begin(), ev.end(), [](const obs::TraceRecord& r) {
            return r.event == obs::TraceEvent::kFailoverHarvest;
        });
    ASSERT_NE(harvest, ev.end());
    // The rebuild adopted the prompt's 31 coverable tokens from the
    // survivor's index — after the harvest, on shard 1, without
    // re-prefilling the covered pages.
    const auto rebuilt = std::find_if(
        harvest, ev.end(), [](const obs::TraceRecord& r) {
            return r.event == obs::TraceEvent::kPrefixHit;
        });
    ASSERT_NE(rebuilt, ev.end());
    EXPECT_EQ(rebuilt->shard, 1u);
    EXPECT_EQ(rebuilt->arg, 31u);
    EXPECT_EQ(std::count_if(ev.begin(), ev.end(),
                            [](const obs::TraceRecord& r) {
                                return r.event == obs::TraceEvent::kFirstToken;
                            }),
              1);

    // Bit-parity through displacement + adoption: a fault-free, sharing-free
    // solo engine serves the same request identically.
    serve::ServeOptions solo_opts;
    solo_opts.sampler.temperature = 0.0f;
    runtime::ServeDeployment solo =
        runtime::synthetic_serve(model::ModelConfig::micro_256(), 42, solo_opts);
    runtime::RequestHandle sh = solo.engine->submit(
        runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 12});
    solo.engine->run_until_idle();
    EXPECT_EQ(res.tokens, sh.get().tokens);
}

TEST(ClusterPrefix, ConcurrentSubmissionsProbeLiveIndexes) {
    // Router-thread probes race the shard drivers' index mutations: the
    // TSan-visible path. No placement assertions — just that every sharer
    // completes identically while probe/adopt/register run concurrently.
    runtime::ClusterDeployment d = runtime::synthetic_cluster(
        model::ModelConfig::micro_256(), 42,
        cluster_opts(PlacementPolicy::kPrefixAffinity));
    d.router->start();
    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 8; ++r) {
        hs.push_back(d.router->submit(
            runtime::ServeRequest{.prompt = kSysPrompt, .max_new_tokens = 6}));
    }
    std::vector<std::int32_t> first = hs.front().get().tokens;
    for (auto& h : hs) EXPECT_EQ(h.get().tokens, first);
    d.router->stop();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < d.router->shard_count(); ++i) {
        hits += d.router->shard(i).stats().prefix_hits;
    }
    EXPECT_GT(hits, 0u);  // at least every later sharer on the warm shard
}

}  // namespace
}  // namespace efld::cluster
