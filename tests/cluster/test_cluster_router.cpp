// ClusterRouter: requests sharded across independent engines complete with
// single-engine token parity, backpressure surfaces as 429-style rejection
// instead of exceptions, shard errors propagate through parallel stop(), and
// cluster stats aggregate per-shard loads.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "runtime/serve.hpp"

namespace efld::cluster {
namespace {

runtime::ClusterDeployment deploy(ClusterOptions opts, std::uint64_t seed = 42) {
    opts.shard.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_cluster(model::ModelConfig::micro_256(), seed, opts);
}

TEST(ClusterRouter, ServesAcrossShardsWithSingleEngineParity) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.placement = PlacementPolicy::kLeastLoaded;
    runtime::ClusterDeployment d = deploy(opts);

    // Submit before start: placement is then a deterministic function of
    // queue depths, so the load must split across both shards.
    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 8; ++r) {
        handles.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "cluster " + std::to_string(r), .max_new_tokens = 6}));
    }
    d.router->start();
    EXPECT_TRUE(d.router->running());
    d.router->drain();
    d.router->stop();
    EXPECT_FALSE(d.router->running());

    // Same prompts on a single engine: tokens must match request for request
    // (sessions are independent, so sharding cannot change anyone's output).
    runtime::ServeOptions so;
    so.sampler.temperature = 0.0f;
    runtime::ServeDeployment single =
        runtime::synthetic_serve(model::ModelConfig::micro_256(), 42, so);
    std::vector<std::future<runtime::ServeResult>> futs;
    for (int r = 0; r < 8; ++r) {
        futs.push_back(single.engine->submit("cluster " + std::to_string(r), 6));
    }
    single.engine->run_until_idle();
    for (std::size_t r = 0; r < handles.size(); ++r) {
        EXPECT_EQ(handles[r].get().tokens, futs[r].get().tokens) << "request " << r;
        EXPECT_EQ(handles[r].get().finish_reason, runtime::FinishReason::kBudget);
    }

    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.requests_completed(), 8u);
    EXPECT_EQ(cs.generated_tokens(), 48u);
    EXPECT_EQ(cs.queued(), 0u);
    EXPECT_EQ(cs.active(), 0u);
    // Deterministic pre-start placement: both shards served work.
    for (const auto& s : cs.shards) EXPECT_GT(s.stats.requests_completed, 0u);
}

TEST(ClusterRouter, TrySubmitRejectsWithRetryHintWhenSaturated) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard.max_queue = 1;  // saturates after one queued request per shard
    opts.retry_hint_ms = 7;
    runtime::ClusterDeployment d = deploy(opts);

    // Drivers not started: queues only fill. Two accepts, then 429.
    auto a = d.router->try_submit(
        runtime::ServeRequest{.prompt = "a", .max_new_tokens = 3});
    auto b = d.router->try_submit(
        runtime::ServeRequest{.prompt = "b", .max_new_tokens = 3});
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    EXPECT_NE(a.shard, b.shard);  // least-loaded spread them out

    auto rejected = d.router->try_submit(
        runtime::ServeRequest{.prompt = "c", .max_new_tokens = 3});
    EXPECT_FALSE(rejected.accepted);
    EXPECT_FALSE(rejected.handle.valid());
    EXPECT_GE(rejected.retry_hint, std::chrono::milliseconds(7));

    // submit() surfaces the same condition as an exception.
    EXPECT_THROW((void)d.router->submit(runtime::ServeRequest{
                     .prompt = "d", .max_new_tokens = 3}),
                 efld::Error);

    // Draining makes room again — the rejection was transient backpressure.
    d.router->start();
    d.router->drain();
    auto late = d.router->try_submit(
        runtime::ServeRequest{.prompt = "late", .max_new_tokens = 3});
    EXPECT_TRUE(late.accepted);
    EXPECT_EQ(late.handle.get().tokens.size(), 3u);
    EXPECT_EQ(a.handle.get().tokens.size(), 3u);
    EXPECT_EQ(b.handle.get().tokens.size(), 3u);
    d.router->stop();
}

TEST(ClusterRouter, ImpossibleDemandThrowsInsteadOfRejecting) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard.paging = true;
    opts.shard.kv_page_tokens = 8;
    opts.shard.kv_pool_pages = 4;  // 32 tokens per shard
    runtime::ClusterDeployment d = deploy(opts);
    // Demand 5 pages > every shard's 4-page pool: malformed, not backpressure.
    EXPECT_THROW((void)d.router->try_submit(runtime::ServeRequest{
                     .prompt = "too big", .max_new_tokens = 33}),
                 efld::Error);
    // A demand that fits is still routed normally.
    auto ok = d.router->try_submit(
        runtime::ServeRequest{.prompt = "fits", .max_new_tokens = 8});
    EXPECT_TRUE(ok.accepted);
    d.router->drain();
    EXPECT_EQ(ok.handle.get().tokens.size(), 8u);
}

TEST(ClusterRouter, BestFitRoutesByGovernorHeadroom) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.placement = PlacementPolicy::kBestFitPages;
    opts.shard.paging = true;
    opts.shard.kv_page_tokens = 8;
    opts.shard.kv_pool_pages = 8;
    runtime::ClusterDeployment d = deploy(opts);

    // Two half-pool requests pack onto shard 0 (best fit tops up the tight
    // shard); the whole-pool request then finds shard 1 empty. Submitted
    // before start, so the routing is deterministic.
    auto s1 = d.router->try_submit(
        runtime::ServeRequest{.prompt = "sm0", .max_new_tokens = 28});  // 4 pages
    auto s2 = d.router->try_submit(
        runtime::ServeRequest{.prompt = "sm1", .max_new_tokens = 28});  // 4 pages
    auto big = d.router->try_submit(
        runtime::ServeRequest{.prompt = "big", .max_new_tokens = 59});  // 8 pages
    ASSERT_TRUE(s1.accepted && s2.accepted && big.accepted);
    EXPECT_EQ(s1.shard, s2.shard);
    EXPECT_NE(big.shard, s1.shard);

    d.router->drain();
    EXPECT_EQ(big.handle.get().tokens.size(), 59u);
    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.committed_pages(), 0u);  // every shard released its pages
    EXPECT_EQ(cs.total_pages(), 16u);
}

TEST(ClusterRouter, StopRethrowsShardCallbackError) {
    ClusterOptions opts;
    opts.shards = 2;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    runtime::RequestHandle h = d.router->submit(runtime::ServeRequest{
        .prompt = "boom",
        .max_new_tokens = 1,
        .on_token = [](std::int32_t, std::string_view) {
            throw std::runtime_error("shard callback exploded");
        }});
    (void)h.get();  // the token boundary completes before the driver parks
    // The shard's driver died on the parked error; the router's parallel
    // stop() must still quiesce the OTHER shard, then rethrow.
    EXPECT_THROW(d.router->stop(), std::runtime_error);
    for (std::size_t i = 0; i < d.router->shard_count(); ++i) {
        EXPECT_FALSE(d.router->shard(i).running());
    }
    d.router->stop();  // error consumed; now a no-op
}

TEST(ClusterRouter, DrainWithoutStartDrivesShardsInline) {
    ClusterOptions opts;
    opts.shards = 2;
    runtime::ClusterDeployment d = deploy(opts);
    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 4; ++r) {
        handles.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "inline " + std::to_string(r), .max_new_tokens = 4}));
    }
    d.router->drain();  // no drivers: each shard drains on its own thread
    for (auto& h : handles) EXPECT_EQ(h.get().tokens.size(), 4u);
}

TEST(ClusterRouter, OptionValidation) {
    ClusterOptions zero_shards;
    zero_shards.shards = 0;
    EXPECT_THROW(deploy(zero_shards), std::invalid_argument);

    ClusterOptions zero_hint;
    zero_hint.retry_hint_ms = 0;
    EXPECT_THROW(deploy(zero_hint), std::invalid_argument);

    ClusterOptions bad_shard;
    bad_shard.shard.max_batch = 0;  // shard options validate too
    EXPECT_THROW(deploy(bad_shard), std::invalid_argument);
}

}  // namespace
}  // namespace efld::cluster
