// Placement policies are pure functions of synthetic ShardLoad snapshots:
// deterministic picks given fixed shard loads, shared eligibility rules
// (full queues, never-fitting pools), and the best-fit bin-packing behavior
// that preserves whole-pool headroom for big requests.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/placement.hpp"

namespace efld::cluster {
namespace {

ShardLoad load(std::size_t queued, std::size_t active,
               std::size_t queue_capacity = 64) {
    ShardLoad s;
    s.queued = queued;
    s.active = active;
    s.queue_capacity = queue_capacity;
    return s;
}

ShardLoad paged(std::size_t committed, std::size_t queued_pages,
                std::size_t total_pages) {
    ShardLoad s;
    s.queue_capacity = 64;
    s.paging = true;
    s.committed_pages = committed;
    s.queued_pages = queued_pages;
    s.total_pages = total_pages;
    return s;
}

TEST(Placement, RoundRobinCycles) {
    auto rr = make_placement(PlacementPolicy::kRoundRobin);
    const std::vector<ShardLoad> shards{load(0, 0), load(0, 0), load(0, 0)};
    EXPECT_EQ(rr->pick(shards, 0), 0u);
    EXPECT_EQ(rr->pick(shards, 0), 1u);
    EXPECT_EQ(rr->pick(shards, 0), 2u);
    EXPECT_EQ(rr->pick(shards, 0), 0u);  // wraps
}

TEST(Placement, RoundRobinSkipsFullQueuesAndNeverFittingPools) {
    auto rr = make_placement(PlacementPolicy::kRoundRobin);
    std::vector<ShardLoad> shards{load(8, 0, /*queue_capacity=*/8),  // full
                                  paged(0, 0, 4),                    // tiny pool
                                  load(0, 0)};
    // Demand 6 pages: shard 0 is full, shard 1 could never hold it.
    EXPECT_EQ(rr->pick(shards, 6), 2u);
    EXPECT_EQ(rr->pick(shards, 6), 2u);  // still the only candidate
}

TEST(Placement, RoundRobinAllSaturatedIsNoShard) {
    auto rr = make_placement(PlacementPolicy::kRoundRobin);
    const std::vector<ShardLoad> shards{load(4, 0, 4), load(4, 2, 4)};
    EXPECT_EQ(rr->pick(shards, 0), kNoShard);
}

TEST(Placement, LeastLoadedPicksMinInflightTieLowestIndex) {
    auto ll = make_placement(PlacementPolicy::kLeastLoaded);
    EXPECT_EQ(ll->pick(std::vector<ShardLoad>{load(2, 2), load(1, 2), load(4, 0)},
                       0),
              1u);  // inflight 4, 3, 4
    EXPECT_EQ(ll->pick(std::vector<ShardLoad>{load(1, 1), load(2, 0), load(0, 2)},
                       0),
              0u);  // three-way tie keeps the lowest index
}

TEST(Placement, LeastLoadedSkipsFullQueues) {
    auto ll = make_placement(PlacementPolicy::kLeastLoaded);
    // Shard 0 has the fewest in-flight but its queue is full.
    EXPECT_EQ(ll->pick(std::vector<ShardLoad>{load(1, 0, 1), load(3, 1)}, 0), 1u);
}

TEST(Placement, BestFitPicksTightestHeadroomThatFits) {
    auto bf = make_placement(PlacementPolicy::kBestFitPages);
    // Free pages: 6, 3, 8. Demand 3 fits all; shard 1 is the tightest fit.
    const std::vector<ShardLoad> shards{paged(2, 0, 8), paged(5, 0, 8),
                                        paged(0, 0, 8)};
    EXPECT_EQ(bf->pick(shards, 3), 1u);
    // Demand 5 no longer fits shard 1 (free 3): shard 0 (free 6) is tighter
    // than shard 2 (free 8).
    EXPECT_EQ(bf->pick(shards, 5), 0u);
}

TEST(Placement, BestFitCountsQueuedDemandAsSpokenFor) {
    auto bf = make_placement(PlacementPolicy::kBestFitPages);
    // Shard 0 has nothing committed but 6 pages of queued demand: its real
    // headroom is 2, so a 4-page request must go to shard 1.
    const std::vector<ShardLoad> shards{paged(0, 6, 8), paged(4, 0, 8)};
    EXPECT_EQ(bf->pick(shards, 4), 1u);
}

TEST(Placement, BestFitPreservesWholePoolHeadroomForBigRequests) {
    // The bin-packing story: two half-pool requests land on ONE shard (the
    // second tops up the tight shard), leaving the other pool whole for a
    // full-pool request. Page-blind policies would split the smalls and
    // strand half a pool on each shard.
    auto bf = make_placement(PlacementPolicy::kBestFitPages);
    std::vector<ShardLoad> shards{paged(0, 0, 8), paged(0, 0, 8)};
    EXPECT_EQ(bf->pick(shards, 4), 0u);  // empty tie -> lowest index
    shards[0].queued_pages = 4;
    EXPECT_EQ(bf->pick(shards, 4), 0u);  // tightest fit: tops up shard 0
    shards[0].queued_pages = 8;
    EXPECT_EQ(bf->pick(shards, 8), 1u);  // whole pool still free on shard 1
}

TEST(Placement, BestFitFallsBackToMostFreePagesWhenNothingFits) {
    auto bf = make_placement(PlacementPolicy::kBestFitPages);
    // Demand 5 fits nowhere right now; shard 1 frees soonest (3 free vs 1).
    const std::vector<ShardLoad> shards{paged(7, 0, 8), paged(5, 0, 8)};
    EXPECT_EQ(bf->pick(shards, 5), 1u);
}

TEST(Placement, BestFitWithoutPagingActsLeastLoaded) {
    auto bf = make_placement(PlacementPolicy::kBestFitPages);
    EXPECT_EQ(bf->pick(std::vector<ShardLoad>{load(3, 1), load(1, 1)}, 0), 1u);
}

TEST(Placement, EveryPolicyExcludesUnhealthyShards) {
    // A failed shard is ineligible no matter how attractive its load looks —
    // an empty queue on a dead engine is not capacity.
    for (const PlacementPolicy p :
         {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
          PlacementPolicy::kBestFitPages}) {
        auto policy = make_placement(p);
        std::vector<ShardLoad> shards{load(0, 0), load(5, 3)};
        shards[0].healthy = false;
        EXPECT_EQ(policy->pick(shards, 0), 1u) << to_string(p);
        shards[1].healthy = false;
        EXPECT_EQ(policy->pick(shards, 0), kNoShard) << to_string(p);
    }
}

TEST(Placement, PolicyNamesRoundTrip) {
    for (const PlacementPolicy p :
         {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
          PlacementPolicy::kBestFitPages}) {
        EXPECT_EQ(placement_policy_from_string(to_string(p)), p);
        EXPECT_EQ(make_placement(p)->name(), to_string(p));
    }
    EXPECT_THROW((void)placement_policy_from_string("random"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace efld::cluster
