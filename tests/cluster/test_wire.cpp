// Wire-format round trips and malformed-payload rejection — no sockets
// involved; the framing codec must be correct independent of transport.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/wire.hpp"
#include "common/check.hpp"

namespace efld::cluster::wire {
namespace {

TEST(Wire, RequestRoundTrip) {
    WireRequest req;
    req.prompt = "hello cluster \x01\xff binary-safe";
    req.max_new_tokens = 128;
    req.deadline_ms = 2500;
    const std::vector<std::uint8_t> bytes = encode_request(req);
    const WireRequest back = decode_request(bytes);
    EXPECT_EQ(back.prompt, req.prompt);
    EXPECT_EQ(back.max_new_tokens, 128u);
    EXPECT_EQ(back.deadline_ms, 2500u);
}

TEST(Wire, EmptyPromptRoundTrips) {
    // The wire layer transports it; rejecting empty prompts is the engine's
    // job (and comes back as a status-2 error response).
    const WireRequest back = decode_request(encode_request(WireRequest{}));
    EXPECT_TRUE(back.prompt.empty());
    EXPECT_EQ(back.max_new_tokens, 0u);
}

TEST(Wire, OkResponseRoundTrip) {
    WireResponse resp;
    resp.status = Status::kOk;
    resp.id = 0x1122334455667788ull;
    resp.finish_reason = 2;
    resp.times_deferred = 3;
    resp.failovers = 1;
    resp.tokens = {1, -7, 65000, 0};
    resp.text = "decoded text";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kOk);
    EXPECT_EQ(back.id, resp.id);
    EXPECT_EQ(back.finish_reason, 2u);
    EXPECT_EQ(back.times_deferred, 3u);
    EXPECT_EQ(back.failovers, 1u);
    EXPECT_EQ(back.tokens, resp.tokens);
    EXPECT_EQ(back.text, "decoded text");
}

TEST(Wire, RejectedResponseRoundTrip) {
    WireResponse resp;
    resp.status = Status::kRejected;
    resp.retry_ms = 40;
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kRejected);
    EXPECT_EQ(back.retry_ms, 40u);
}

TEST(Wire, ErrorResponseRoundTrip) {
    WireResponse resp;
    resp.status = Status::kError;
    resp.error = "prompt exceeds the context window";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kError);
    EXPECT_EQ(back.error, resp.error);
}

TEST(Wire, MetricsRequestRoundTrip) {
    WireRequest req;
    req.kind = RequestKind::kMetrics;
    req.metrics_format = MetricsFormat::kJson;
    const WireRequest back = decode_request(encode_request(req));
    EXPECT_EQ(back.kind, RequestKind::kMetrics);
    EXPECT_EQ(back.metrics_format, MetricsFormat::kJson);

    req.metrics_format = MetricsFormat::kPrometheus;
    EXPECT_EQ(decode_request(encode_request(req)).metrics_format,
              MetricsFormat::kPrometheus);
}

TEST(Wire, MetricsResponseRoundTrip) {
    WireResponse resp;
    resp.status = Status::kMetrics;
    resp.metrics = "# TYPE serve_steps counter\nserve_steps 42\n";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kMetrics);
    EXPECT_EQ(back.metrics, resp.metrics);
}

TEST(Wire, TraceDumpRequestRoundTrip) {
    // A kind-2 frame carries no body beyond the header.
    WireRequest req;
    req.kind = RequestKind::kTraceDump;
    const std::vector<std::uint8_t> bytes = encode_request(req);
    EXPECT_EQ(bytes.size(), 2u);  // version + kind
    EXPECT_EQ(decode_request(bytes).kind, RequestKind::kTraceDump);
}

TEST(Wire, TraceDumpResponseRoundTrip) {
    WireResponse resp;
    resp.status = Status::kTraceDump;
    resp.trace = "{\"traceEvents\":[{\"ph\":\"s\",\"id\":7}]}";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kTraceDump);
    EXPECT_EQ(back.trace, resp.trace);
}

TEST(Wire, UnknownRequestKindThrows) {
    WireRequest req;
    req.kind = RequestKind::kMetrics;
    std::vector<std::uint8_t> bytes = encode_request(req);
    bytes[1] = 9;  // kind byte
    EXPECT_THROW((void)decode_request(bytes), efld::Error);
}

TEST(Wire, UnknownMetricsFormatThrows) {
    WireRequest req;
    req.kind = RequestKind::kMetrics;
    std::vector<std::uint8_t> bytes = encode_request(req);
    bytes[2] = 7;  // format byte
    EXPECT_THROW((void)decode_request(bytes), efld::Error);
}

TEST(Wire, TruncatedPayloadThrows) {
    std::vector<std::uint8_t> bytes = encode_request(
        WireRequest{.prompt = "truncate me", .max_new_tokens = 4});
    bytes.resize(bytes.size() - 3);
    EXPECT_THROW((void)decode_request(bytes), efld::Error);
    EXPECT_THROW((void)decode_request(std::vector<std::uint8_t>{}), efld::Error);
}

TEST(Wire, TrailingBytesThrow) {
    std::vector<std::uint8_t> bytes =
        encode_request(WireRequest{.prompt = "x", .max_new_tokens = 1});
    bytes.push_back(0);
    EXPECT_THROW((void)decode_request(bytes), efld::Error);
}

TEST(Wire, UnknownVersionOrStatusThrows) {
    std::vector<std::uint8_t> req =
        encode_request(WireRequest{.prompt = "v", .max_new_tokens = 1});
    req[0] = 9;  // version byte
    EXPECT_THROW((void)decode_request(req), efld::Error);

    WireResponse ok;
    ok.status = Status::kOk;
    std::vector<std::uint8_t> resp = encode_response(ok);
    resp[1] = 7;  // status byte
    EXPECT_THROW((void)decode_response(resp), efld::Error);
}

TEST(Wire, AlertsRequestAndResponseRoundTrip) {
    WireRequest req;
    req.kind = RequestKind::kAlerts;
    const std::vector<std::uint8_t> bytes = encode_request(req);
    EXPECT_EQ(bytes.size(), 2u);  // header-only, like kTraceDump
    EXPECT_EQ(decode_request(bytes).kind, RequestKind::kAlerts);

    WireResponse resp;
    resp.status = Status::kAlerts;
    resp.alerts = "{\"rules\":[{\"name\":\"hot\",\"state\":\"firing\"}]}";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kAlerts);
    EXPECT_EQ(back.alerts, resp.alerts);
}

TEST(Wire, QueryRequestAndResponseRoundTrip) {
    WireRequest req;
    req.kind = RequestKind::kQuery;
    req.query_series = "serve_queue_depth";
    req.query_window_ms = 60'000;
    const WireRequest rback = decode_request(encode_request(req));
    EXPECT_EQ(rback.kind, RequestKind::kQuery);
    EXPECT_EQ(rback.query_series, "serve_queue_depth");
    EXPECT_EQ(rback.query_window_ms, 60'000u);

    // An empty series name survives the trip (the server rejects it, but the
    // codec must not).
    WireRequest empty;
    empty.kind = RequestKind::kQuery;
    EXPECT_EQ(decode_request(encode_request(empty)).query_series, "");

    WireResponse resp;
    resp.status = Status::kQuery;
    resp.query = "{\"series\":\"serve_queue_depth\",\"points\":[[1,2]]}";
    const WireResponse back = decode_response(encode_response(resp));
    EXPECT_EQ(back.status, Status::kQuery);
    EXPECT_EQ(back.query, resp.query);
}

TEST(Wire, QueryTruncatedSeriesThrows) {
    WireRequest req;
    req.kind = RequestKind::kQuery;
    req.query_series = "serve_queue_depth";
    std::vector<std::uint8_t> bytes = encode_request(req);
    bytes.resize(bytes.size() - 5);  // cut into the series string
    EXPECT_THROW((void)decode_request(bytes), efld::Error);
}

TEST(Wire, TokenCountCannotExceedFrameBound) {
    // A hostile count field must be rejected before the decoder loops on it.
    WireResponse resp;
    resp.status = Status::kOk;
    std::vector<std::uint8_t> bytes = encode_response(resp);
    // token_count lives after version(1) + status(1) + id(8) + reason(1) +
    // deferred(4) + failovers(4) = offset 19.
    bytes[19] = 0xff;
    bytes[20] = 0xff;
    bytes[21] = 0xff;
    bytes[22] = 0xff;
    EXPECT_THROW((void)decode_response(bytes), efld::Error);
}

}  // namespace
}  // namespace efld::cluster::wire
