// Fault-tolerant cluster serving: a shard scripted to die mid-workload must
// not cost a single accepted request or duplicate a single streamed token.
// Displaced requests fail over to survivors and finish with bit-for-bit the
// tokens a fault-free single engine produces; the failed shard's governor
// commitments release; restart_shard() brings the slot back into rotation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "runtime/serve.hpp"

namespace efld::cluster {
namespace {

runtime::ClusterDeployment deploy(ClusterOptions opts, std::uint64_t seed = 42) {
    opts.shard.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_cluster(model::ModelConfig::micro_256(), seed, opts);
}

// Fault-free single-engine reference for the same prompts: failover must not
// change anyone's tokens.
std::vector<std::vector<std::int32_t>> reference_tokens(
    const std::vector<std::string>& prompts, std::size_t max_new,
    runtime::ServeOptions so = {}) {
    so.sampler.temperature = 0.0f;
    runtime::ServeDeployment single =
        runtime::synthetic_serve(model::ModelConfig::micro_256(), 42, so);
    std::vector<std::future<runtime::ServeResult>> futs;
    futs.reserve(prompts.size());
    for (const std::string& p : prompts) {
        futs.push_back(single.engine->submit(p, max_new));
    }
    single.engine->run_until_idle();
    std::vector<std::vector<std::int32_t>> out;
    out.reserve(futs.size());
    for (auto& f : futs) out.push_back(f.get().tokens);
    return out;
}

// Thread-safe per-request stream transcript, for exactly-once assertions.
struct StreamLog {
    std::mutex mu;
    std::map<std::uint64_t, std::vector<std::int32_t>> streamed;

    runtime::ServeRequest tap(std::string prompt, std::size_t max_new,
                              std::uint64_t key) {
        return runtime::ServeRequest{
            .prompt = std::move(prompt),
            .max_new_tokens = max_new,
            .on_token = [this, key](std::int32_t tok, std::string_view) {
                const std::lock_guard<std::mutex> lock(mu);
                streamed[key].push_back(tok);
            }};
    }
};

TEST(Failover, MidStreamKillLosesNoRequestAndDuplicatesNoToken) {
    ClusterOptions opts;
    opts.shards = 2;
    // Shard 0 dies on its 8th decode_batch call — past prefill for these
    // short prompts, so its requests are genuinely mid-stream when killed.
    opts.shard_fault_specs = {"step:8"};
    runtime::ClusterDeployment d = deploy(opts);

    const std::size_t kMaxNew = 6;
    std::vector<std::string> prompts;
    for (int r = 0; r < 4; ++r) prompts.push_back("fo " + std::to_string(r));

    StreamLog log;
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t r = 0; r < prompts.size(); ++r) {
        // Submit before start: least-loaded placement splits the four
        // requests two per shard, so shard 0 has victims.
        handles.push_back(d.router->submit(log.tap(prompts[r], kMaxNew, r)));
    }
    d.router->start();

    const std::vector<std::vector<std::int32_t>> want =
        reference_tokens(prompts, kMaxNew);
    std::size_t displaced = 0;
    for (std::size_t r = 0; r < handles.size(); ++r) {
        const runtime::ServeResult& res = handles[r].get();
        EXPECT_EQ(res.finish_reason, runtime::FinishReason::kBudget)
            << "request " << r;
        // Token parity with the fault-free run — head generated on the dead
        // shard, tail on the survivor, same sequence.
        EXPECT_EQ(res.tokens, want[r]) << "request " << r;
        // Exactly-once streaming: the transcript on_token saw is the result,
        // with no position delivered twice (replayed prefill never streams).
        const std::lock_guard<std::mutex> lock(log.mu);
        EXPECT_EQ(log.streamed[r], res.tokens) << "request " << r;
        displaced += res.failovers > 0 ? 1 : 0;
    }
    EXPECT_GE(displaced, 1u);  // shard 0 really was killed mid-workload

    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.shard_failures, 1u);
    EXPECT_EQ(cs.health[0], ShardHealth::kFailed);
    EXPECT_EQ(cs.health[1], ShardHealth::kHealthy);
    EXPECT_EQ(cs.healthy_shards(), 1u);
    EXPECT_EQ(cs.requests_lost, 0u);
    EXPECT_GE(cs.requests_failed_over, displaced);
    EXPECT_GT(cs.replayed_tokens(), 0u);  // mid-stream resume really replayed
    EXPECT_EQ(cs.requests_completed(), prompts.size());
    ASSERT_NE(d.router->shard_error(0), nullptr);
    EXPECT_THROW(std::rethrow_exception(d.router->shard_error(0)), efld::Error);

    // A backend fault is handled, not parked: stop() must not rethrow it.
    EXPECT_NO_THROW(d.router->stop());
}

TEST(Failover, AdmissionFaultFailsOverQueuedRequests) {
    // alloc:1 kills shard 0 the first time it tries to seat a session — the
    // admission path must stage the fault and hand every queued request over.
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard_fault_specs = {"alloc:1"};
    runtime::ClusterDeployment d = deploy(opts);

    std::vector<std::string> prompts = {"aa", "bb", "cc", "dd"};
    std::vector<runtime::RequestHandle> handles;
    for (const std::string& p : prompts) {
        handles.push_back(
            d.router->submit(runtime::ServeRequest{.prompt = p, .max_new_tokens = 5}));
    }
    d.router->start();

    const std::vector<std::vector<std::int32_t>> want = reference_tokens(prompts, 5);
    for (std::size_t r = 0; r < handles.size(); ++r) {
        const runtime::ServeResult& res = handles[r].get();
        EXPECT_EQ(res.finish_reason, runtime::FinishReason::kBudget);
        EXPECT_EQ(res.tokens, want[r]) << "request " << r;
    }
    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.shard_failures, 1u);
    EXPECT_EQ(cs.requests_lost, 0u);
    // Nothing ran on shard 0 before the fault, so nothing needed replaying.
    EXPECT_EQ(cs.shards[0].stats.generated_tokens, 0u);
    d.router->stop();
}

TEST(Failover, FailedShardReleasesItsGovernorCommitments) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard.paging = true;
    opts.shard.kv_page_tokens = 8;
    opts.shard.kv_pool_pages = 16;
    opts.shard_fault_specs = {"step:6"};
    runtime::ClusterDeployment d = deploy(opts);

    std::vector<std::string> prompts = {"pg0", "pg1", "pg2", "pg3"};
    std::vector<runtime::RequestHandle> handles;
    for (const std::string& p : prompts) {
        handles.push_back(d.router->submit(
            runtime::ServeRequest{.prompt = p, .max_new_tokens = 8}));
    }
    d.router->start();
    const std::vector<std::vector<std::int32_t>> want = reference_tokens(
        prompts, 8,
        runtime::ServeOptions{.paging = true, .kv_page_tokens = 8, .kv_pool_pages = 16});
    for (std::size_t r = 0; r < handles.size(); ++r) {
        EXPECT_EQ(handles[r].get().tokens, want[r]) << "request " << r;
    }

    // The dead shard admitted sessions (pages committed) and will never
    // retire them — if failure handling skipped the governor release, these
    // pages would be committed forever.
    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.shards[0].stats.backend_failures, 1u);
    EXPECT_EQ(cs.shards[0].committed_pages, 0u);
    EXPECT_EQ(cs.committed_pages(), 0u);  // survivor released on retire too
    d.router->stop();
}

TEST(Failover, RestartShardRejoinsTheRotation) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard_fault_specs = {"step:4"};
    runtime::ClusterDeployment d = deploy(opts);

    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 4; ++r) {
        handles.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "rs " + std::to_string(r), .max_new_tokens = 4}));
    }
    d.router->start();
    for (auto& h : handles) (void)h.get();  // shard 0 is dead by now
    ASSERT_EQ(d.router->shard_health(0), ShardHealth::kFailed);

    // Restarting a live shard would drop its work; only kFailed restarts.
    EXPECT_THROW(d.router->restart_shard(1), efld::Error);
    EXPECT_THROW(d.router->restart_shard(9), std::out_of_range);

    d.router->restart_shard(0);
    EXPECT_EQ(d.router->shard_health(0), ShardHealth::kRestarted);
    EXPECT_EQ(d.router->shard_error(0), nullptr)
        << "restart clears the recorded fault";

    // The replacement engine is fault-free (the script killed the original
    // device, not its successor) and serving-eligible immediately.
    std::vector<runtime::RequestHandle> again;
    for (int r = 0; r < 4; ++r) {
        again.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "again " + std::to_string(r), .max_new_tokens = 4}));
    }
    d.router->drain();
    for (auto& h : again) {
        EXPECT_EQ(h.get().finish_reason, runtime::FinishReason::kBudget);
    }
    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.shard_restarts, 1u);
    EXPECT_EQ(cs.healthy_shards(), 2u);
    // The restarted slot pulled its share of the post-restart load.
    EXPECT_GT(cs.shards[0].stats.requests_completed, 0u);
    d.router->stop();
}

TEST(Failover, TotalOutageResolvesShardFailureInsteadOfHanging) {
    ClusterOptions opts;
    opts.shards = 1;
    opts.shard_fault_specs = {"step:1"};
    runtime::ClusterDeployment d = deploy(opts);

    auto h0 = d.router->submit(runtime::ServeRequest{.prompt = "x0", .max_new_tokens = 4});
    auto h1 = d.router->submit(runtime::ServeRequest{.prompt = "x1", .max_new_tokens = 4});
    d.router->start();

    // No survivor exists: both handles must resolve (not hang) with
    // kShardFailure and whatever was streamed before the death — here
    // nothing, the backend died on its first step.
    EXPECT_EQ(h0.get().finish_reason, runtime::FinishReason::kShardFailure);
    EXPECT_EQ(h1.get().finish_reason, runtime::FinishReason::kShardFailure);
    EXPECT_TRUE(h0.get().tokens.empty());

    runtime::ClusterStats cs = d.router->stats();
    EXPECT_EQ(cs.healthy_shards(), 0u);
    EXPECT_EQ(cs.requests_lost, 2u);

    // A cluster with zero healthy shards is an outage, not backpressure.
    EXPECT_THROW((void)d.router->try_submit(runtime::ServeRequest{
                     .prompt = "down", .max_new_tokens = 2}),
                 efld::Error);

    // Recovery from total outage: restart, and admission works again.
    d.router->restart_shard(0);
    auto ok = d.router->try_submit(
        runtime::ServeRequest{.prompt = "up", .max_new_tokens = 3});
    ASSERT_TRUE(ok.accepted);
    d.router->drain();
    EXPECT_EQ(ok.handle.get().tokens.size(), 3u);
    d.router->stop();
}

}  // namespace
}  // namespace efld::cluster
