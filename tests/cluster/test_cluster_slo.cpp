// SloController over a live synthetic cluster: the closed loop from sampled
// metrics through alert transitions to governor actuation and flight-recorder
// bundles, driven deterministically by a ManualClock (sample_now(), no
// background sampler thread).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/slo_controller.hpp"
#include "common/check.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"
#include "serve/overload.hpp"

namespace efld::cluster {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

std::string tmp_dir(const char* tag) {
    std::string tmpl = std::string("/tmp/efld_slo_") + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = ::mkdtemp(buf.data());
    check(d != nullptr, "mkdtemp failed");
    return d;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct SloCluster {
    std::shared_ptr<obs::ManualClock> clock;
    std::shared_ptr<serve::OverloadGovernor> governor;
    runtime::ClusterDeployment d;
};

SloCluster deploy(std::size_t shards, ClusterOptions opts = {}) {
    SloCluster c;
    c.clock = std::make_shared<obs::ManualClock>(1 * kSec);
    c.governor = std::make_shared<serve::OverloadGovernor>();
    opts.shards = shards;
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.clock = c.clock;
    opts.shard.trace = std::make_shared<obs::TraceRecorder>(4096);
    opts.shard.overload = c.governor;
    c.d = runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, opts);
    return c;
}

void run_burst(ClusterRouter& router, std::size_t n, const std::string& tag) {
    std::vector<runtime::RequestHandle> handles;
    for (std::size_t i = 0; i < n; ++i) {
        handles.push_back(router.submit(runtime::ServeRequest{
            .prompt = tag + " " + std::to_string(i), .max_new_tokens = 4}));
    }
    for (auto& h : handles) (void)h.get();
}

}  // namespace

TEST(ClusterSlo, ClosedLoopLifecycleFromTrafficToGovernorAndBack) {
    SloCluster c = deploy(2);
    c.d.router->start();

    const std::string dir = tmp_dir("alert");
    SloController::Options so;
    // Completion RATE above 0.5/s: active traffic trips it, idleness clears
    // it — a lifecycle the test can script via bursts and clock steps.
    so.rules = "busy=threshold:serve_requests_completed:gt:0.5:0";
    so.flight_dir = dir;
    so.governor = c.governor;
    SloController slo(*c.d.router, so);

    // t=1s: first sample only baselines the counter — no rate yet, no alert.
    slo.sample_now();
    EXPECT_EQ(slo.engine().state(0), obs::AlertState::kInactive);
    EXPECT_FALSE(c.governor->engaged());

    // t=2s: a burst completed inside the second → rate > 0.5 → the rule
    // fires (for=0) and the governor engages.
    run_burst(*c.d.router, 4, "busy");
    c.clock->advance_ns(1 * kSec);
    slo.sample_now();
    EXPECT_EQ(slo.engine().state(0), obs::AlertState::kFiring);
    EXPECT_TRUE(c.governor->engaged());
    EXPECT_EQ(c.governor->engagements(), 1u);

    // The firing wrote a flight bundle named after the alert.
    const obs::MetricsSnapshot fired = slo.metrics_snapshot();
    EXPECT_EQ(fired.counters.at("slo_flight_captures_total"), 1u);
    EXPECT_DOUBLE_EQ(fired.gauges.at("serve_alerts_firing"), 1.0);
    EXPECT_DOUBLE_EQ(fired.gauges.at("serve_alert_state_busy"), 2.0);
    EXPECT_DOUBLE_EQ(fired.gauges.at("cluster_overload_engaged"), 1.0);
    EXPECT_GT(fired.gauges.at("process_uptime_seconds"), 0.0);
    EXPECT_GT(fired.counters.at("slo_tsdb_ingests_total"), 0u);

    // t=3s: no completions this second → rate 0 → resolves (resolve=for=0)
    // and the governor disengages.
    c.clock->advance_ns(1 * kSec);
    slo.sample_now();
    EXPECT_EQ(slo.engine().state(0), obs::AlertState::kInactive);
    EXPECT_FALSE(c.governor->engaged());

    // The shared trace ring holds the full incident: pending+firing at the
    // same evaluation (for=0), then the resolve.
    std::size_t pending = 0, firing = 0, resolved = 0;
    for (const obs::TraceRecord& e : c.d.router->options().shard.trace->snapshot()) {
        pending += e.event == obs::TraceEvent::kAlertPending ? 1 : 0;
        firing += e.event == obs::TraceEvent::kAlertFiring ? 1 : 0;
        resolved += e.event == obs::TraceEvent::kAlertResolved ? 1 : 0;
    }
    EXPECT_EQ(pending, 1u);
    EXPECT_EQ(firing, 1u);
    EXPECT_EQ(resolved, 1u);

    // Wire bodies: the alert timeline and a queryable TSDB series.
    const std::string alerts = slo.alerts_json();
    EXPECT_NE(alerts.find("\"name\":\"busy\""), std::string::npos);
    EXPECT_NE(alerts.find("\"to\":\"firing\""), std::string::npos);
    const std::string q =
        slo.query_json("serve_requests_completed", 60 * kSec);
    EXPECT_NE(q.find("\"series\":\"serve_requests_completed\""),
              std::string::npos);
    EXPECT_NE(q.find("\"points\":[["), std::string::npos);

    c.d.router->drain();
    c.d.router->stop();
}

TEST(ClusterSlo, ShardFailureTriggersFlightBundleWithFailoverEvidence) {
    ClusterOptions opts;
    opts.shard_fault_specs = {"step:8"};  // shard 0 dies mid-workload
    SloCluster c = deploy(2, opts);

    const std::string dir = tmp_dir("failure");
    SloController::Options so;
    so.flight_dir = dir;  // no rules: flight capture alone
    SloController slo(*c.d.router, so);

    // Ingest one pre-incident sample so the bundle's TSDB tail has data.
    slo.sample_now();
    c.clock->advance_ns(1 * kSec);

    std::vector<runtime::RequestHandle> handles;
    for (int i = 0; i < 4; ++i) {
        // Submit before start: least-loaded placement gives shard 0 victims.
        handles.push_back(c.d.router->submit(runtime::ServeRequest{
            .prompt = "fo " + std::to_string(i), .max_new_tokens = 6}));
    }
    c.d.router->start();
    for (auto& h : handles) {
        EXPECT_EQ(h.get().finish_reason, runtime::FinishReason::kBudget);
    }
    EXPECT_EQ(c.d.router->stats().shard_failures, 1u);

    // The observer runs on the dying shard's driver thread after the failover
    // sweep; displaced requests can finish on the survivor first. Wait for
    // the bundle, bounded.
    ASSERT_NE(slo.recorder(), nullptr);
    for (int i = 0; i < 2000 && slo.recorder()->captures() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(slo.recorder()->captures(), 1u);
    const obs::MetricsSnapshot snap = slo.metrics_snapshot();
    EXPECT_EQ(snap.counters.at("slo_flight_captures_total"), 1u);

    const std::string bundle =
        slurp(dir + "/flight_0_shard_failure_0.json");
    ASSERT_FALSE(bundle.empty());
    EXPECT_EQ(bundle.front(), '{');
    EXPECT_NE(bundle.find("\"reason\":\"shard_failure_0\""), std::string::npos);
    EXPECT_NE(bundle.find("failover_harvest"), std::string::npos);
    EXPECT_NE(bundle.find("resubmitted"), std::string::npos);
    EXPECT_NE(bundle.find("\"tsdb\":{"), std::string::npos);
    EXPECT_NE(bundle.find("cluster_shard_failures"), std::string::npos);

    EXPECT_NO_THROW(c.d.router->stop());
}

TEST(ClusterSlo, BackgroundSamplerDrivesTheLoopWithoutManualTicks) {
    // Production shape: start() runs the sampler thread on a short interval
    // against the real steady clock; the TSDB fills with router series.
    SloCluster c = deploy(2);
    c.d.router->start();
    SloController::Options so;
    so.sample_interval_ns = 2'000'000;  // 2ms
    so.clock = &obs::steady_clock();  // override the shards' ManualClock
    SloController slo(*c.d.router, so);
    slo.start();
    EXPECT_TRUE(slo.running());
    run_burst(*c.d.router, 4, "bg");
    while (slo.samples() < 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    slo.stop();
    EXPECT_FALSE(slo.running());
    const std::uint64_t n = slo.samples();
    EXPECT_GE(n, 5u);

    // The store retained real series from the router snapshot.
    bool saw_completed = false;
    for (const std::string& name : slo.store().series_names()) {
        saw_completed |= name == "serve_requests_completed";
    }
    EXPECT_TRUE(saw_completed);

    c.d.router->drain();
    c.d.router->stop();
}

TEST(ClusterSlo, RejectsBadRuleSpecEagerly) {
    SloCluster c = deploy(1);
    SloController::Options so;
    so.rules = "threshold:oops";
    EXPECT_THROW(SloController(*c.d.router, so), std::invalid_argument);
}

}  // namespace efld::cluster
