// Socket front-end smoke: real loopback TCP round trips through the cluster
// router — token parity with a direct submit, concurrent clients, 429
// backpressure on the wire, and request-level errors that keep the
// connection alive.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/slo_controller.hpp"
#include "cluster/socket_frontend.hpp"
#include "common/check.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::cluster {
namespace {

runtime::ClusterDeployment deploy(ClusterOptions opts) {
    opts.shard.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, opts);
}

TEST(SocketFrontend, RoundTripOverLoopback) {
    ClusterOptions opts;
    opts.shards = 2;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);  // port 0: ephemeral
    server.start();
    ASSERT_GT(server.port(), 0u);

    SocketClient client("127.0.0.1", server.port());
    wire::WireRequest req;
    req.prompt = "hello socket";
    req.max_new_tokens = 8;
    const wire::WireResponse resp = client.request(req);
    ASSERT_EQ(resp.status, wire::Status::kOk);
    EXPECT_EQ(resp.tokens.size(), 8u);
    EXPECT_EQ(static_cast<serve::FinishReason>(resp.finish_reason),
              serve::FinishReason::kBudget);
    EXPECT_FALSE(resp.text.empty());

    // Parity: the same prompt submitted directly produces the same tokens —
    // the wire added transport, not semantics.
    runtime::RequestHandle direct = d.router->submit(
        runtime::ServeRequest{.prompt = "hello socket", .max_new_tokens = 8});
    EXPECT_EQ(direct.get().tokens, resp.tokens);
    EXPECT_EQ(direct.get().text, resp.text);

    EXPECT_EQ(server.requests_served(), 1u);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, ConcurrentClientsAllServed) {
    ClusterOptions opts;
    opts.shards = 2;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);
    server.start();

    constexpr int kClients = 3;
    constexpr int kPerClient = 2;
    std::vector<std::thread> clients;
    std::vector<int> ok_counts(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            SocketClient client("127.0.0.1", server.port());
            for (int r = 0; r < kPerClient; ++r) {
                wire::WireRequest req;
                req.prompt = "client " + std::to_string(c) + " req " +
                             std::to_string(r);
                req.max_new_tokens = 5;
                const wire::WireResponse resp = client.request(req);
                if (resp.status == wire::Status::kOk &&
                    resp.tokens.size() == 5u) {
                    ++ok_counts[c];
                }
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok_counts[c], kPerClient);
    EXPECT_EQ(server.requests_served(),
              static_cast<std::size_t>(kClients * kPerClient));
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, SaturatedClusterAnswers429OnTheWire) {
    ClusterOptions opts;
    opts.shards = 1;
    opts.shard.max_queue = 1;
    runtime::ClusterDeployment d = deploy(opts);
    // Router NOT started: the one queue slot fills and stays full, so the
    // second request deterministically sees a saturated cluster.
    SocketServer server(*d.router);
    server.start();

    // First request occupies the queue; its handler blocks on the future.
    std::thread first([&] {
        SocketClient client("127.0.0.1", server.port());
        const wire::WireResponse resp = client.request(
            wire::WireRequest{.prompt = "first", .max_new_tokens = 4});
        EXPECT_EQ(resp.status, wire::Status::kOk);
        EXPECT_EQ(resp.tokens.size(), 4u);
    });
    while (d.router->stats().queued() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    SocketClient client("127.0.0.1", server.port());
    const wire::WireResponse rejected = client.request(
        wire::WireRequest{.prompt = "second", .max_new_tokens = 4});
    EXPECT_EQ(rejected.status, wire::Status::kRejected);
    EXPECT_GT(rejected.retry_ms, 0u);

    d.router->start();  // unblocks the first handler
    first.join();
    // After draining, the same connection's retry succeeds — 429 was
    // transient.
    const wire::WireResponse retry = client.request(
        wire::WireRequest{.prompt = "second", .max_new_tokens = 4});
    EXPECT_EQ(retry.status, wire::Status::kOk);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, UnservableRequestGetsErrorAndConnectionSurvives) {
    ClusterOptions opts;
    opts.shards = 1;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);
    server.start();

    SocketClient client("127.0.0.1", server.port());
    // micro-256's context window is 64 tokens: a 200-byte prompt cannot fit,
    // which is the request's fault, not the transport's.
    wire::WireRequest oversized;
    oversized.prompt = std::string(200, 'x');
    oversized.max_new_tokens = 4;
    const wire::WireResponse err = client.request(oversized);
    EXPECT_EQ(err.status, wire::Status::kError);
    EXPECT_FALSE(err.error.empty());

    // Same connection, valid request: still served.
    const wire::WireResponse ok = client.request(
        wire::WireRequest{.prompt = "still alive", .max_new_tokens = 3});
    EXPECT_EQ(ok.status, wire::Status::kOk);
    EXPECT_EQ(ok.tokens.size(), 3u);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, MetricsScrapeMatchesClusterStats) {
    ClusterOptions opts;
    opts.shards = 2;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);
    server.start();

    SocketClient client("127.0.0.1", server.port());
    constexpr std::size_t kRequests = 3;
    for (std::size_t r = 0; r < kRequests; ++r) {
        const wire::WireResponse resp = client.request(wire::WireRequest{
            .prompt = "scrape " + std::to_string(r), .max_new_tokens = 4});
        ASSERT_EQ(resp.status, wire::Status::kOk);
    }
    d.router->drain();

    // Same connection, kind-1 frame: the Prometheus body must parse and its
    // counters must agree with the router's own stats exactly.
    const std::string body = client.metrics();
    const std::map<std::string, double> parsed = obs::parse_prometheus(body);
    const runtime::ClusterStats cs = d.router->stats();
    EXPECT_DOUBLE_EQ(parsed.at("serve_requests_completed"),
                     static_cast<double>(cs.requests_completed()));
    EXPECT_DOUBLE_EQ(parsed.at("serve_generated_tokens"),
                     static_cast<double>(cs.generated_tokens()));
    EXPECT_DOUBLE_EQ(parsed.at("cluster_shards"), 2.0);
    EXPECT_DOUBLE_EQ(parsed.at("cluster_healthy_shards"), 2.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_ttft_ns_count"),
                     static_cast<double>(kRequests));

    // The JSON format answers on the same connection too.
    const std::string json = client.metrics(wire::MetricsFormat::kJson);
    EXPECT_NE(json.find("\"serve_requests_completed\":3"), std::string::npos);

    // Scrapes do not count as served generate requests, and the connection
    // still serves generate traffic afterwards.
    EXPECT_EQ(server.requests_served(), kRequests);
    const wire::WireResponse after = client.request(
        wire::WireRequest{.prompt = "after scrape", .max_new_tokens = 2});
    EXPECT_EQ(after.status, wire::Status::kOk);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, TraceDumpReturnsPerfettoJsonOverTheWire) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard.trace = std::make_shared<obs::TraceRecorder>(1024);
    opts.shard.profile = true;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);
    server.start();

    SocketClient client("127.0.0.1", server.port());
    const wire::WireResponse resp = client.request(
        wire::WireRequest{.prompt = "trace me", .max_new_tokens = 4});
    ASSERT_EQ(resp.status, wire::Status::kOk);
    d.router->drain();

    // Kind-2 frame: the body is the cluster's merged Perfetto JSON — the
    // request's lifecycle instants plus the serving shard's phase slices.
    const std::string json = client.trace_dump();
    EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"submitted\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"first_token\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);

    // A trace dump is not a served generate request, and the connection
    // still serves generate traffic afterwards.
    EXPECT_EQ(server.requests_served(), 1u);
    const wire::WireResponse after = client.request(
        wire::WireRequest{.prompt = "after trace", .max_new_tokens = 2});
    EXPECT_EQ(after.status, wire::Status::kOk);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, AlertsAndQueryAnswerWhenSloControllerAttached) {
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard.trace = std::make_shared<obs::TraceRecorder>(1024);
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();

    SloController::Options so;
    so.rules = "deep=threshold:cluster_shards:gt:1:0";  // true for 2 shards
    SloController slo(*d.router, so);
    slo.sample_now();  // gauges store immediately: the rule fires now

    SocketServer server(*d.router);
    server.set_slo(&slo);
    server.start();
    SocketClient client("127.0.0.1", server.port());

    // kind-3: the alert engine's rules + timeline.
    const std::string alerts = client.alerts();
    EXPECT_NE(alerts.find("\"name\":\"deep\""), std::string::npos);
    EXPECT_NE(alerts.find("\"state\":\"firing\""), std::string::npos);

    // kind-4: one TSDB series' tail, default window.
    const std::string q = client.query("cluster_shards");
    EXPECT_NE(q.find("\"series\":\"cluster_shards\""), std::string::npos);
    EXPECT_NE(q.find("\"points\":[["), std::string::npos);
    const std::string windowed = client.query("cluster_shards", 60'000);
    EXPECT_NE(windowed.find("\"points\":[["), std::string::npos);

    // With a controller attached, the kMetrics scrape body grows the alert
    // and TSDB series — still valid Prometheus.
    const std::map<std::string, double> parsed =
        obs::parse_prometheus(client.metrics());
    EXPECT_DOUBLE_EQ(parsed.at("serve_alerts_firing"), 1.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_alert_state_deep"), 2.0);
    EXPECT_GE(parsed.at("slo_tsdb_ingests_total"), 1.0);

    // Observability frames are not generate requests; the connection still
    // serves traffic afterwards.
    EXPECT_EQ(server.requests_served(), 0u);
    const wire::WireResponse after = client.request(
        wire::WireRequest{.prompt = "after alerts", .max_new_tokens = 2});
    EXPECT_EQ(after.status, wire::Status::kOk);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, AlertsWithoutSloControllerIsRequestError) {
    ClusterOptions opts;
    opts.shards = 1;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);  // no set_slo
    server.start();
    SocketClient client("127.0.0.1", server.port());

    // A config error answers status-2 on that frame; the link survives.
    EXPECT_THROW((void)client.alerts(), efld::Error);
    EXPECT_THROW((void)client.query("serve_queue_depth"), efld::Error);
    const wire::WireResponse after = client.request(
        wire::WireRequest{.prompt = "still alive", .max_new_tokens = 2});
    EXPECT_EQ(after.status, wire::Status::kOk);
    server.stop();
    d.router->stop();
}

TEST(SocketFrontend, StopJoinsCleanlyWithIdleConnections) {
    ClusterOptions opts;
    opts.shards = 1;
    runtime::ClusterDeployment d = deploy(opts);
    d.router->start();
    SocketServer server(*d.router);
    server.start();
    SocketClient idle("127.0.0.1", server.port());  // connects, never sends
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.stop();  // must shutdown the idle connection and join its handler
    EXPECT_FALSE(server.running());
    server.stop();  // idempotent
    d.router->stop();
}

}  // namespace
}  // namespace efld::cluster
