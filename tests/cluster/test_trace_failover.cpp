// Trace continuity across a shard failure: one shared TraceRecorder must
// tell a displaced request's whole story — submitted on the dead shard,
// harvested, resubmitted to a survivor, retired — with exactly one
// first-token event no matter where the token was generated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::cluster {
namespace {

std::size_t count_event(const std::vector<obs::TraceRecord>& events,
                        obs::TraceEvent e) {
    return static_cast<std::size_t>(
        std::count_if(events.begin(), events.end(),
                      [e](const obs::TraceRecord& r) { return r.event == e; }));
}

TEST(TraceFailover, ScriptedKillYieldsHarvestResubmitAndOneFirstToken) {
    auto trace = std::make_shared<obs::TraceRecorder>(1024);
    ClusterOptions opts;
    opts.shards = 2;
    // Shard 0 dies on its 8th decode_batch call — mid-stream for these
    // prompts, so its requests carry partial token histories when harvested.
    opts.shard_fault_specs = {"step:8"};
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.trace = trace;
    runtime::ClusterDeployment d =
        runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, opts);

    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 4; ++r) {
        handles.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "tf " + std::to_string(r), .max_new_tokens = 6}));
    }
    d.router->start();

    std::size_t displaced = 0;
    for (auto& h : handles) {
        const runtime::ServeResult& res = h.get();
        const std::vector<obs::TraceRecord> events = trace->for_request(res.id);
        ASSERT_FALSE(events.empty()) << "request " << res.id;

        // Every request's story starts at submission and ends at retirement,
        // and the retirement reason in the trace is the one the caller saw.
        EXPECT_EQ(events.front().event, obs::TraceEvent::kSubmitted);
        EXPECT_EQ(events.back().event, obs::TraceEvent::kRetired);
        EXPECT_EQ(events.back().arg,
                  static_cast<std::uint64_t>(res.finish_reason));

        // Exactly-once first token, displaced or not: a resumed request's
        // replayed history must never re-fire the event on the survivor.
        EXPECT_EQ(count_event(events, obs::TraceEvent::kFirstToken), 1u)
            << "request " << res.id;

        if (res.failovers > 0) {
            ++displaced;
            EXPECT_EQ(count_event(events, obs::TraceEvent::kFailoverHarvest),
                      res.failovers);
            EXPECT_EQ(count_event(events, obs::TraceEvent::kResubmitted),
                      res.failovers);
            // Harvested off the dead shard, retired on the survivor.
            const auto harvest = std::find_if(
                events.begin(), events.end(), [](const obs::TraceRecord& r) {
                    return r.event == obs::TraceEvent::kFailoverHarvest;
                });
            EXPECT_EQ(harvest->shard, 0u);
            EXPECT_EQ(events.back().shard, 1u);
            // The resubmission lands after the harvest, before retirement.
            const auto resub = std::find_if(
                events.begin(), events.end(), [](const obs::TraceRecord& r) {
                    return r.event == obs::TraceEvent::kResubmitted;
                });
            EXPECT_LT(harvest - events.begin(), resub - events.begin());
        }
    }
    EXPECT_GE(displaced, 1u);  // the kill really displaced someone
    EXPECT_EQ(trace->dropped(), 0u);
    d.router->stop();
}

TEST(TraceFailover, QueueHarvestTracesResubmissionWithoutTokens) {
    // alloc:1 kills shard 0 at its first admission: its requests are
    // harvested from the queue with zero tokens done, and the survivor owns
    // every first-token event.
    auto trace = std::make_shared<obs::TraceRecorder>(1024);
    ClusterOptions opts;
    opts.shards = 2;
    opts.shard_fault_specs = {"alloc:1"};
    opts.shard.sampler.temperature = 0.0f;
    opts.shard.trace = trace;
    runtime::ClusterDeployment d =
        runtime::synthetic_cluster(model::ModelConfig::micro_256(), 42, opts);

    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 4; ++r) {
        handles.push_back(d.router->submit(runtime::ServeRequest{
            .prompt = "qh " + std::to_string(r), .max_new_tokens = 4}));
    }
    d.router->start();

    for (auto& h : handles) {
        const runtime::ServeResult& res = h.get();
        const std::vector<obs::TraceRecord> events = trace->for_request(res.id);
        EXPECT_EQ(count_event(events, obs::TraceEvent::kFirstToken), 1u);
        if (res.failovers > 0) {
            // Nothing ran before the fault: the harvest records zero tokens
            // done and the first token fires on the surviving shard.
            const auto harvest = std::find_if(
                events.begin(), events.end(), [](const obs::TraceRecord& r) {
                    return r.event == obs::TraceEvent::kFailoverHarvest;
                });
            ASSERT_NE(harvest, events.end());
            EXPECT_EQ(harvest->arg, 0u);
            const auto first = std::find_if(
                events.begin(), events.end(), [](const obs::TraceRecord& r) {
                    return r.event == obs::TraceEvent::kFirstToken;
                });
            EXPECT_EQ(first->shard, 1u);
        }
    }
    d.router->stop();
}

}  // namespace
}  // namespace efld::cluster
