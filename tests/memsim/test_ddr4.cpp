// DDR4 timing model: the burst-efficiency behaviour the paper's data
// arrangement format exploits.
#include <gtest/gtest.h>

#include "memsim/ddr4_model.hpp"

namespace efld::memsim {
namespace {

TEST(Ddr4Config, Kv260Peak) {
    const DdrConfig cfg = DdrConfig::kv260_ddr4_2400();
    EXPECT_NEAR(cfg.peak_bytes_per_s(), 19.2e9, 1e6);
    EXPECT_NEAR(cfg.clock_ghz(), 1.2, 1e-9);
}

TEST(Ddr4Model, SequentialLargeTransferIsEfficient) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    TransactionStream s;
    // 16 MiB sequential in 4 KiB bursts — the weight-stream pattern.
    for (std::uint64_t a = 0; a < 16 * 1024 * 1024; a += 4096) {
        s.push_back({a, 4096, Dir::kRead});
    }
    const BandwidthStats stats = ddr.run(s);
    const double eff = Ddr4Model::efficiency(stats, ddr.config());
    EXPECT_GT(eff, 0.90);
    EXPECT_LT(eff, 1.0);
}

TEST(Ddr4Model, ShortScatteredTransfersAreInefficient) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    TransactionStream s;
    // 64-byte reads scattered across rows — the "fetch scales group by group
    // from a side table" anti-pattern of §V.B.
    for (std::uint64_t i = 0; i < 4096; ++i) {
        s.push_back({i * 1337 * 4096 % (1ull << 30), 64, Dir::kRead});
    }
    const BandwidthStats stats = ddr.run(s);
    EXPECT_LT(Ddr4Model::efficiency(stats, ddr.config()), 0.25);
}

TEST(Ddr4Model, EfficiencyImprovesMonotonicallyWithBurstLength) {
    double prev = 0.0;
    for (const std::uint64_t burst : {64ull, 256ull, 1024ull, 4096ull}) {
        Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
        TransactionStream s;
        for (std::uint64_t a = 0; a < 4 * 1024 * 1024; a += burst) {
            s.push_back({a, burst, Dir::kRead});
        }
        const double eff = Ddr4Model::efficiency(ddr.run(s), ddr.config());
        EXPECT_GT(eff, prev) << "burst=" << burst;
        prev = eff;
    }
}

TEST(Ddr4Model, RowHitsDominateSequentialTraffic) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    TransactionStream s;
    for (std::uint64_t a = 0; a < 1024 * 1024; a += 2048) {
        s.push_back({a, 2048, Dir::kRead});
    }
    const BandwidthStats stats = ddr.run(s);
    EXPECT_GT(stats.row_hits, stats.row_misses * 2);
}

TEST(Ddr4Model, DirectionTurnaroundCharged) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    // Alternating read/write at the same address: every access flips the bus.
    TransactionStream alternating;
    for (int i = 0; i < 200; ++i) {
        alternating.push_back({0, 512, i % 2 == 0 ? Dir::kRead : Dir::kWrite});
    }
    Ddr4Model ddr2(DdrConfig::kv260_ddr4_2400());
    TransactionStream uniform;
    for (int i = 0; i < 200; ++i) uniform.push_back({0, 512, Dir::kRead});

    EXPECT_GT(ddr.run(alternating).busy_ns, ddr2.run(uniform).busy_ns);
}

TEST(Ddr4Model, ZeroByteTransactionIsFree) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    const DdrAccessResult r = ddr.access({0, 0, Dir::kRead});
    EXPECT_EQ(r.busy_ns, 0.0);
}

TEST(Ddr4Model, ResetClosesRows) {
    Ddr4Model ddr(DdrConfig::kv260_ddr4_2400());
    const DdrAccessResult first = ddr.access({0, 64, Dir::kRead});
    EXPECT_EQ(first.row_misses, 1u);
    const DdrAccessResult second = ddr.access({64, 64, Dir::kRead});
    EXPECT_EQ(second.row_misses, 0u);  // row still open
    ddr.reset();
    const DdrAccessResult third = ddr.access({128, 64, Dir::kRead});
    EXPECT_EQ(third.row_misses, 1u);  // closed again
}

TEST(Ddr4Model, RefreshOverheadScalesBusyTime) {
    DdrConfig with = DdrConfig::kv260_ddr4_2400();
    DdrConfig without = with;
    without.refresh_overhead = 0.0;
    Ddr4Model a(with), b(without);
    const Transaction txn{0, 1 << 20, Dir::kRead};
    const double ns_with = a.access(txn).busy_ns;
    const double ns_without = b.access(txn).busy_ns;
    EXPECT_NEAR(ns_with / ns_without, 1.0 + with.refresh_overhead, 1e-9);
}

TEST(Ddr4Model, PresetsDifferInPeak) {
    EXPECT_LT(DdrConfig::pynq_z2_ddr3().peak_bytes_per_s(),
              DdrConfig::kv260_ddr4_2400().peak_bytes_per_s());
    EXPECT_GT(DdrConfig::zcu102_ddr4_2666().peak_bytes_per_s(),
              DdrConfig::kv260_ddr4_2400().peak_bytes_per_s());
}

}  // namespace
}  // namespace efld::memsim
