// AXI port framing and bundle lock-step behaviour.
#include <gtest/gtest.h>

#include "memsim/axi.hpp"

namespace efld::memsim {
namespace {

TEST(AxiPort, PeakBandwidth) {
    const AxiPortConfig cfg;  // 128-bit @ 300 MHz
    EXPECT_NEAR(cfg.peak_bytes_per_s(), 4.8e9, 1e6);
}

TEST(AxiPort, FrameRespects4KBoundary) {
    AxiPort port(AxiPortConfig{});
    const auto bursts = port.frame({4096 - 128, 1024, Dir::kRead});
    ASSERT_GE(bursts.size(), 2u);
    EXPECT_EQ(bursts[0].bytes, 128u);  // up to the boundary
    for (const auto& b : bursts) {
        EXPECT_LE(b.addr / 4096, (b.addr + b.bytes - 1) / 4096);
        EXPECT_EQ(b.addr / 4096, (b.addr + b.bytes - 1) / 4096)
            << "burst crosses 4K boundary";
    }
}

TEST(AxiPort, FrameRespectsMaxBurstBytes) {
    AxiPortConfig cfg;
    cfg.max_burst_beats = 16;  // 16 x 16B = 256B
    AxiPort port(cfg);
    const auto bursts = port.frame({0, 1024, Dir::kRead});
    EXPECT_EQ(bursts.size(), 4u);
    for (const auto& b : bursts) EXPECT_LE(b.bytes, 256u);
}

TEST(AxiPort, FrameCoversExactly) {
    AxiPort port(AxiPortConfig{});
    const Transaction txn{12345, 100000, Dir::kWrite};
    std::uint64_t covered = 0;
    std::uint64_t expect_addr = txn.addr;
    for (const auto& b : port.frame(txn)) {
        EXPECT_EQ(b.addr, expect_addr);
        expect_addr += b.bytes;
        covered += b.bytes;
        EXPECT_EQ(b.dir, Dir::kWrite);
    }
    EXPECT_EQ(covered, txn.bytes);
}

TEST(AxiPort, LargeBurstsAmortizeIssueOverhead) {
    AxiPort port(AxiPortConfig{});
    // Same bytes, one as a single logical transfer, one as 64-byte pieces.
    const auto big = port.frame({0, 64 * 1024, Dir::kRead});
    std::vector<AxiBurst> small;
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
        small.push_back({a, 64, Dir::kRead});
    }
    EXPECT_LT(port.busy_ns(big), port.busy_ns(small));
}

TEST(AxiBundle, PeakIs4Ports) {
    const AxiBundleConfig cfg;
    EXPECT_NEAR(cfg.peak_bytes_per_s(), 19.2e9, 1e6);
    EXPECT_EQ(cfg.stream_bytes_per_clk(), 64u);  // one 512-bit word per clock
}

TEST(AxiBundle, SplitCoversContiguously) {
    AxiBundle bundle(AxiBundleConfig{});
    const Transaction txn{1000, 100000, Dir::kRead};
    const auto parts = bundle.split(txn);
    ASSERT_EQ(parts.size(), 4u);
    std::uint64_t addr = txn.addr, total = 0;
    for (const auto& p : parts) {
        EXPECT_EQ(p.addr, addr);
        addr += p.bytes;
        total += p.bytes;
    }
    EXPECT_EQ(total, txn.bytes);
}

TEST(AxiBundle, SplitHandlesTinyTransfers) {
    AxiBundle bundle(AxiBundleConfig{});
    const auto parts = bundle.split({0, 8, Dir::kWrite});
    std::uint64_t total = 0;
    for (const auto& p : parts) total += p.bytes;
    EXPECT_EQ(total, 8u);
}

TEST(AxiBundle, FourPortsBeatOnePort) {
    AxiBundleConfig four;
    AxiBundleConfig one;
    one.num_ports = 1;
    AxiBundle b4(four), b1(one);
    const Transaction txn{0, 1 << 20, Dir::kRead};
    EXPECT_LT(b4.busy_ns(txn), b1.busy_ns(txn) / 3.0);
}

TEST(AxiBundle, BusyTimeNearPeakForLargeTransfers) {
    AxiBundle bundle(AxiBundleConfig{});
    const std::uint64_t bytes = 64ull << 20;
    const double ns = bundle.busy_ns({0, bytes, Dir::kRead});
    const double ideal_ns = static_cast<double>(bytes) / 19.2e9 * 1e9;
    EXPECT_GT(ns, ideal_ns);            // can't beat the wire
    EXPECT_LT(ns, ideal_ns * 1.10);     // within 10% at long bursts
}

}  // namespace
}  // namespace efld::memsim
