// Bare-metal address map: the two Zynq windows and capacity accounting.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "memsim/address_map.hpp"

namespace efld::memsim {
namespace {

TEST(AddressMap, Kv260WindowsMatchDatasheet) {
    AddressMap m = AddressMap::kv260_bare_metal();
    // 2047 MiB low + 2048 MiB high.
    EXPECT_EQ(m.total_capacity(), 0x7FF00000ull + 0x80000000ull);
    EXPECT_EQ(m.reserved_bytes(), 1 * kMiB);
}

TEST(AddressMap, HighWindowPreferred) {
    AddressMap m = AddressMap::kv260_bare_metal();
    const Region r = m.allocate("weights", 100 * kMiB);
    EXPECT_GE(r.base, 0x80000000ull);
}

TEST(AddressMap, ExplicitLowPlacement) {
    AddressMap m = AddressMap::kv260_bare_metal();
    const Region r = m.allocate("kv", 10 * kMiB, AddressMap::Placement::kLow);
    EXPECT_LT(r.base, 0x80000000ull);
    EXPECT_GE(r.base, 1 * kMiB);  // firmware reservation respected
}

TEST(AddressMap, SpillsToLowWhenHighFull) {
    AddressMap m = AddressMap::kv260_bare_metal();
    (void)m.allocate("big", 2000 * kMiB, AddressMap::Placement::kHigh);
    const Region r = m.allocate("next", 200 * kMiB);  // kAny
    EXPECT_LT(r.base, 0x80000000ull);
}

TEST(AddressMap, ThrowsWhenFull) {
    AddressMap m = AddressMap::generic(1 * kGiB, 0);
    (void)m.allocate("a", 512 * kMiB, AddressMap::Placement::kLow);
    EXPECT_THROW((void)m.allocate("b", 513 * kMiB, AddressMap::Placement::kLow),
                 efld::Error);
}

TEST(AddressMap, RegionsDoNotOverlap) {
    AddressMap m = AddressMap::kv260_bare_metal();
    for (int i = 0; i < 20; ++i) {
        (void)m.allocate("r" + std::to_string(i), (static_cast<std::uint64_t>(i) + 1) * 777);
    }
    const auto& rs = m.regions();
    for (std::size_t i = 0; i < rs.size(); ++i) {
        for (std::size_t j = i + 1; j < rs.size(); ++j) {
            const bool disjoint = rs[i].end() <= rs[j].base || rs[j].end() <= rs[i].base;
            EXPECT_TRUE(disjoint) << rs[i].name << " overlaps " << rs[j].name;
        }
    }
}

TEST(AddressMap, AllocationsAre64ByteAligned) {
    AddressMap m = AddressMap::kv260_bare_metal();
    for (int i = 0; i < 5; ++i) {
        const Region r = m.allocate("r" + std::to_string(i), 100 + static_cast<std::uint64_t>(i));
        EXPECT_EQ(r.base % 64, 0u);
    }
}

TEST(AddressMap, FindByName) {
    AddressMap m = AddressMap::kv260_bare_metal();
    (void)m.allocate("kv_cache", 264 * kMiB);
    const auto r = m.find("kv_cache");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bytes, 264 * kMiB);
    EXPECT_FALSE(m.find("nonexistent").has_value());
}

TEST(AddressMap, UtilizationArithmetic) {
    AddressMap m = AddressMap::generic(1000, 0);
    (void)m.allocate("half", 448);  // aligned to 448 (multiple of 64)
    EXPECT_NEAR(m.utilization(), 448.0 / 1000.0, 1e-12);
}

TEST(AddressMap, RejectsZeroSizeRegion) {
    AddressMap m = AddressMap::kv260_bare_metal();
    EXPECT_THROW((void)m.allocate("empty", 0), efld::Error);
}

}  // namespace
}  // namespace efld::memsim
