// Datamover descriptor queue semantics.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memsim/datamover.hpp"

namespace efld::memsim {
namespace {

TEST(Datamover, PreservesIssueOrder) {
    Datamover dm;
    dm.queue_mm2s(0x1000, 64);
    dm.queue_s2mm(0x2000, 128);
    dm.queue_mm2s(0x3000, 256);
    ASSERT_EQ(dm.pending(), 3u);

    Transaction t = dm.pop();
    EXPECT_EQ(t.addr, 0x1000u);
    EXPECT_EQ(t.dir, Dir::kRead);
    t = dm.pop();
    EXPECT_EQ(t.addr, 0x2000u);
    EXPECT_EQ(t.dir, Dir::kWrite);
    t = dm.pop();
    EXPECT_EQ(t.addr, 0x3000u);
    EXPECT_TRUE(dm.empty());
}

TEST(Datamover, DrainReturnsAllAndClears) {
    Datamover dm;
    for (int i = 0; i < 10; ++i) dm.queue_mm2s(static_cast<std::uint64_t>(i) * 64, 64);
    const TransactionStream s = dm.drain();
    EXPECT_EQ(s.size(), 10u);
    EXPECT_TRUE(dm.empty());
    for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i].addr, i * 64);
}

TEST(Datamover, CountsReadsAndWrites) {
    Datamover dm;
    dm.queue_mm2s(0, 64);
    dm.queue_mm2s(64, 64);
    dm.queue_s2mm(128, 64);
    EXPECT_EQ(dm.issued_reads(), 2u);
    EXPECT_EQ(dm.issued_writes(), 1u);
}

TEST(Datamover, RejectsZeroLengthDescriptors) {
    Datamover dm;
    EXPECT_THROW(dm.queue_mm2s(0, 0), efld::Error);
    EXPECT_THROW(dm.queue_s2mm(0, 0), efld::Error);
}

TEST(Datamover, PopOnEmptyThrows) {
    Datamover dm;
    EXPECT_THROW((void)dm.pop(), efld::Error);
}

}  // namespace
}  // namespace efld::memsim
