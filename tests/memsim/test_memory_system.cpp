// End-to-end memory system: AXI + DDR composed.
#include <gtest/gtest.h>

#include "memsim/memory_system.hpp"

namespace efld::memsim {
namespace {

TEST(MemorySystem, Kv260PeakIs19GBs) {
    MemorySystem mem(MemorySystemConfig::kv260());
    EXPECT_NEAR(mem.peak_bytes_per_s(), 19.2e9, 1e6);
}

TEST(MemorySystem, LargeSequentialReadNearPeak) {
    MemorySystem mem(MemorySystemConfig::kv260());
    const std::uint64_t bytes = 256ull << 20;  // weight-stream sized
    const double ns = mem.sequential_read_ns(0, bytes);
    const double achieved = static_cast<double>(bytes) / (ns * 1e-9);
    EXPECT_GT(achieved / 19.2e9, 0.90);
    EXPECT_LE(achieved / 19.2e9, 1.0);
}

TEST(MemorySystem, ScatteredSmallReadsFarFromPeak) {
    MemorySystem mem(MemorySystemConfig::kv260());
    TransactionStream s;
    for (std::uint64_t i = 0; i < 2048; ++i) {
        s.push_back({(i * 7919) % (1u << 28) / 64 * 64, 64, Dir::kRead});
    }
    const BandwidthStats st = mem.run(s);
    EXPECT_LT(st.achieved_bw() / 19.2e9, 0.30);
}

TEST(MemorySystem, LifetimeStatsAccumulate) {
    MemorySystem mem(MemorySystemConfig::kv260());
    (void)mem.sequential_read_ns(0, 1024);
    (void)mem.service({4096, 2048, Dir::kWrite});
    const BandwidthStats& s = mem.lifetime_stats();
    EXPECT_EQ(s.read_bytes, 1024u);
    EXPECT_EQ(s.write_bytes, 2048u);
    EXPECT_EQ(s.transactions, 2u);
    EXPECT_GT(s.busy_ns, 0.0);
}

TEST(MemorySystem, ResetClearsState) {
    MemorySystem mem(MemorySystemConfig::kv260());
    (void)mem.sequential_read_ns(0, 1 << 20);
    mem.reset();
    EXPECT_EQ(mem.lifetime_stats().total_bytes(), 0u);
    EXPECT_EQ(mem.lifetime_stats().busy_ns, 0.0);
}

TEST(MemorySystem, ZeroByteServiceIsFree) {
    MemorySystem mem(MemorySystemConfig::kv260());
    EXPECT_EQ(mem.service({0, 0, Dir::kRead}), 0.0);
}

TEST(MemorySystem, FewerPortsLowerThroughput) {
    MemorySystemConfig one = MemorySystemConfig::kv260();
    one.axi.num_ports = 1;
    MemorySystem m1(one), m4(MemorySystemConfig::kv260());
    const std::uint64_t bytes = 64 << 20;
    EXPECT_GT(m1.sequential_read_ns(0, bytes), 3.0 * m4.sequential_read_ns(0, bytes));
}

TEST(MemorySystem, RunAggregatesPerTransactionStats) {
    MemorySystem mem(MemorySystemConfig::kv260());
    TransactionStream s{{0, 4096, Dir::kRead}, {1 << 20, 4096, Dir::kWrite}};
    const BandwidthStats st = mem.run(s);
    EXPECT_EQ(st.transactions, 2u);
    EXPECT_EQ(st.read_bytes, 4096u);
    EXPECT_EQ(st.write_bytes, 4096u);
    EXPECT_GT(st.axi_bursts, 0u);
}

}  // namespace
}  // namespace efld::memsim
