// Memory planner: the Fig. 1 capacity story.
#include <gtest/gtest.h>

#include "common/mathutil.hpp"
#include "runtime/memory_planner.hpp"

namespace efld::runtime {
namespace {

using model::ModelConfig;
using model::QuantScheme;

TEST(MemoryPlanner, Llama7BFitsKv260) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w4a16_kv8());
    EXPECT_TRUE(p.fits);
}

TEST(MemoryPlanner, UtilizationNearPaper93_3) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w4a16_kv8());
    // Our accounting: 92.5%; paper: 93.3% (see EXPERIMENTS.md for the delta).
    EXPECT_NEAR(p.utilization, 0.933, 0.015);
}

TEST(MemoryPlanner, KvRegionIs264MiB) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w4a16_kv8());
    EXPECT_EQ(p.kv_bytes, 264 * kMiB);
}

TEST(MemoryPlanner, WeightsNearPaper3556MiB) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w4a16_kv8());
    EXPECT_NEAR(static_cast<double>(p.weight_bytes) / double(kMiB), 3556, 40);
}

TEST(MemoryPlanner, Fp16DoesNotFit) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::fp16_baseline());
    EXPECT_FALSE(p.fits);
}

TEST(MemoryPlanner, W8DoesNotFit7B) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w8a16_kv8());
    EXPECT_FALSE(p.fits);
}

TEST(MemoryPlanner, NoRoomForLinux) {
    // §VII.A: "impossible to load a Linux operating system with so little
    // memory remaining". ~280 MiB is free after weights+KV — a practically
    // usable Linux resident set (~512 MiB with CMA headroom) cannot fit.
    EXPECT_FALSE(MemoryPlanner::fits_with_os(ModelConfig::llama2_7b(),
                                             QuantScheme::w4a16_kv8(), 4 * kGiB,
                                             512 * kMiB));
    // The tiny bare-metal reservation is what makes it possible.
    EXPECT_TRUE(MemoryPlanner::fits_with_os(ModelConfig::llama2_7b(),
                                            QuantScheme::w4a16_kv8(), 4 * kGiB, 1 * kMiB));
}

TEST(MemoryPlanner, MaxContextNearPaperReservation) {
    const std::uint64_t ctx = MemoryPlanner::max_context(
        ModelConfig::llama2_7b(), QuantScheme::w4a16_kv8(), 4 * kGiB, 1 * kMiB);
    // The paper reserves 1024; the hard ceiling is somewhat above it.
    EXPECT_GE(ctx, 1024u);
    EXPECT_LT(ctx, 4096u);
}

TEST(MemoryPlanner, MaxContextZeroWhenWeightsTooBig) {
    EXPECT_EQ(MemoryPlanner::max_context(ModelConfig::llama2_7b(),
                                         QuantScheme::fp16_baseline(), 4 * kGiB, 0),
              0u);
}

TEST(MemoryPlanner, TinyLlamaLeavesRoomFor2GBDevice) {
    model::ModelConfig c = ModelConfig::tinyllama_1_1b();
    c.max_seq_len = 1024;
    const MemoryPlan p = MemoryPlanner::plan(c, QuantScheme::w4a16_kv8(), 2 * kGiB, kMiB);
    EXPECT_TRUE(p.fits);
    EXPECT_LT(p.utilization, 0.5);
}

TEST(MemoryPlanner, RegionsSumToDevice) {
    const MemoryPlan p = MemoryPlanner::plan_kv260(ModelConfig::llama2_7b(),
                                                   QuantScheme::w4a16_kv8());
    std::uint64_t sum = 0;
    for (const auto& r : p.regions) sum += r.bytes;
    EXPECT_EQ(sum, p.device_bytes);
    double pct = 0;
    for (const auto& r : p.regions) pct += r.pct_of_total;
    EXPECT_NEAR(pct, 100.0, 0.01);
}

}  // namespace
}  // namespace efld::runtime
