// Bare-metal host boot flow (§VII.A).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "runtime/host.hpp"
#include "runtime/loader.hpp"

namespace efld::runtime {
namespace {

std::vector<std::uint8_t> micro_image() {
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::micro_256(), 21);
    const auto qw = model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    return serialize_model(accel::PackedModel::build(qw));
}

TEST(BareMetalHost, BootsFromValidImage) {
    BareMetalHost host = BareMetalHost::boot(micro_image());
    EXPECT_TRUE(host.report().crc_ok);
    EXPECT_EQ(host.config().name, "micro-256");
    EXPECT_GT(host.report().image_bytes, 0u);
    EXPECT_GT(host.report().sd_load_s, 0.0);
    EXPECT_GT(host.report().ddr_copy_s, 0.0);
    // Copying into DDR at 19.2 GB/s is far faster than reading the SD card.
    EXPECT_LT(host.report().ddr_copy_s, host.report().sd_load_s);
}

TEST(BareMetalHost, RejectsCorruptImage) {
    auto img = micro_image();
    img[img.size() / 3] ^= 0x40;
    EXPECT_THROW((void)BareMetalHost::boot(img), efld::Error);
}

TEST(BareMetalHost, ExecutesTokenCommands) {
    BareMetalHost host = BareMetalHost::boot(micro_image());
    const accel::StepResult r1 = host.execute({.token_index = 5, .is_prefill = true});
    const accel::StepResult r2 = host.execute({.token_index = 9, .is_prefill = false});
    EXPECT_EQ(r1.logits.size(), host.config().vocab_size);
    EXPECT_EQ(r2.logits.size(), host.config().vocab_size);
    EXPECT_EQ(host.accelerator().position(), 2u);
}

TEST(BareMetalHost, MatchesDirectAccelerator) {
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::micro_256(), 21);
    const auto qw = model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    const accel::PackedModel packed = accel::PackedModel::build(qw);
    accel::Accelerator direct(packed);

    BareMetalHost host = BareMetalHost::boot(serialize_model(packed));
    for (const std::int32_t t : {1, 2, 3}) {
        const auto a = host.execute({.token_index = t, .is_prefill = false}).logits;
        const auto b = direct.step(t).logits;
        EXPECT_EQ(a, b);
    }
}

TEST(BareMetalHost, SdLoadArithmeticFor7B) {
    // A 3.8 GB image at 25 MB/s: ~2.5 minutes of boot time — the real-world
    // cost of the SD-card flow the paper describes.
    const double s = BareMetalHost::estimated_sd_load_s(3'800'000'000ull, {});
    EXPECT_NEAR(s, 152.0, 1.0);
    // A UHS-I card at 90 MB/s would cut it to ~42 s.
    const double fast = BareMetalHost::estimated_sd_load_s(3'800'000'000ull, {90.0});
    EXPECT_NEAR(fast, 42.2, 0.5);
}

}  // namespace
}  // namespace efld::runtime
