// Model-image serialization (the SD-card round trip).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.hpp"
#include "runtime/loader.hpp"

namespace efld::runtime {
namespace {

accel::PackedModel micro_model() {
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::micro_256(), 11);
    const auto qw = model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    return accel::PackedModel::build(qw);
}

bool models_equal(const accel::PackedModel& a, const accel::PackedModel& b) {
    if (a.config.dim != b.config.dim || a.config.n_layers != b.config.n_layers ||
        a.config.name != b.config.name) {
        return false;
    }
    if (a.embedding.size() != b.embedding.size()) return false;
    for (std::size_t i = 0; i < a.embedding.size(); ++i) {
        if (a.embedding[i].bits() != b.embedding[i].bits()) return false;
    }
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        if (a.layers[l].wq.stream != b.layers[l].wq.stream) return false;
        if (a.layers[l].w_down.stream != b.layers[l].w_down.stream) return false;
    }
    return a.lm_head.stream == b.lm_head.stream;
}

TEST(Crc32, KnownVector) {
    // CRC32("123456789") = 0xCBF43926 (IEEE check value).
    const char* s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Loader, SerializeDeserializeRoundTrip) {
    const accel::PackedModel m = micro_model();
    const auto img = serialize_model(m);
    const accel::PackedModel back = deserialize_model(img);
    EXPECT_TRUE(models_equal(m, back));
    EXPECT_EQ(back.config.name, "micro-256");
}

TEST(Loader, CorruptionDetected) {
    const accel::PackedModel m = micro_model();
    auto img = serialize_model(m);
    img[img.size() / 2] ^= 0x01;  // flip one payload bit
    EXPECT_THROW((void)deserialize_model(img), efld::Error);
}

TEST(Loader, BadMagicRejected) {
    const accel::PackedModel m = micro_model();
    auto img = serialize_model(m);
    img[0] ^= 0xFF;
    EXPECT_THROW((void)deserialize_model(img), efld::Error);
}

TEST(Loader, TruncationRejected) {
    const accel::PackedModel m = micro_model();
    auto img = serialize_model(m);
    img.resize(img.size() - 100);
    EXPECT_THROW((void)deserialize_model(img), efld::Error);
}

TEST(Loader, FileRoundTrip) {
    const accel::PackedModel m = micro_model();
    const std::string path = testing::TempDir() + "/efld_model_test.bin";
    save_model(m, path);
    const accel::PackedModel back = load_model(path);
    EXPECT_TRUE(models_equal(m, back));
    std::remove(path.c_str());
}

TEST(Loader, MissingFileThrows) {
    EXPECT_THROW((void)load_model("/nonexistent/path/model.bin"), efld::Error);
}

TEST(Loader, ImageSizeTracksStreamBytes) {
    const accel::PackedModel m = micro_model();
    const auto img = serialize_model(m);
    // Image must be dominated by weight streams + embedding, with a small
    // framing overhead.
    const std::uint64_t payload = m.weight_stream_bytes() + m.embedding_bytes();
    EXPECT_GT(img.size(), payload);
    EXPECT_LT(img.size(), payload + payload / 10 + 4096);
}

}  // namespace
}  // namespace efld::runtime
