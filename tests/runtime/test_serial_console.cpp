// Serial console (UART) model.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/serial_console.hpp"

namespace efld::runtime {
namespace {

TEST(SerialConsole, CollectsTranscript) {
    SerialConsole c;
    c.emit("Hello", 100.0);
    c.emit(" world", 200.0);
    c.newline();
    EXPECT_EQ(c.transcript(), "Hello world\n");
    EXPECT_EQ(c.tokens_emitted(), 2u);
}

TEST(SerialConsole, EchoesToStream) {
    std::ostringstream os;
    SerialConsole c(&os);
    c.emit("abc", 1.0);
    c.newline();
    EXPECT_EQ(os.str(), "abc\n");
}

TEST(SerialConsole, RateFromTimestamps) {
    SerialConsole c;
    // 4 tokens, 1 ms apart: 3 intervals over 3 ms -> 1000 token/s.
    for (int i = 0; i < 4; ++i) c.emit("x", 1e6 * i);
    EXPECT_NEAR(c.tokens_per_s(), 1000.0, 1e-9);
}

TEST(SerialConsole, RateUndefinedForFewTokens) {
    SerialConsole c;
    EXPECT_EQ(c.tokens_per_s(), 0.0);
    c.emit("x", 5.0);
    EXPECT_EQ(c.tokens_per_s(), 0.0);
}

TEST(SerialConsole, NoEchoWhenNull) {
    SerialConsole c(nullptr);
    c.emit("quiet", 1.0);  // must not crash
    EXPECT_EQ(c.transcript(), "quiet");
}

}  // namespace
}  // namespace efld::runtime
