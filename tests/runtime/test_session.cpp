// End-to-end inference session: prompt in, text + simulated rate out.
#include <gtest/gtest.h>

#include "accel/cycle_model.hpp"
#include "runtime/session.hpp"

namespace efld::runtime {
namespace {

SessionOptions greedy_opts() {
    SessionOptions o;
    o.sampler.temperature = 0.0f;
    return o;
}

TEST(Session, GeneratesTokensDeterministically) {
    auto a = InferenceSession::synthetic(model::ModelConfig::micro_256(), 3, greedy_opts());
    auto b = InferenceSession::synthetic(model::ModelConfig::micro_256(), 3, greedy_opts());
    const GenerationOutput ga = a.generate("hi", 4);
    const GenerationOutput gb = b.generate("hi", 4);
    EXPECT_EQ(ga.tokens, gb.tokens);
    EXPECT_EQ(ga.text, gb.text);
    EXPECT_FALSE(ga.tokens.empty());
}

TEST(Session, ReportsSimulatedRate) {
    auto s = InferenceSession::synthetic(model::ModelConfig::micro_256(), 4, greedy_opts());
    const GenerationOutput g = s.generate("abc", 3);
    EXPECT_GT(g.simulated_ns, 0.0);
    EXPECT_GT(g.simulated_tokens_per_s(), 0.0);
    // micro-256 is ~1000x smaller than 7B: simulated rate must be far above
    // the 7B's ~5 token/s.
    EXPECT_GT(g.simulated_tokens_per_s(), 100.0);
}

TEST(Session, SimulatedNsBillsExactlyTheDecodeSteps) {
    // Timing attribution regression: each generated token is billed the
    // decode step that consumes it. simulated_ns must equal the sum of the
    // cycle model's step latencies at positions prompt_len .. prompt_len+N-1
    // — the prefill steps are never charged (the old code billed the first
    // token the last prefill step and dropped the final decode step).
    const model::ModelConfig cfg = model::ModelConfig::micro_256();
    auto s = InferenceSession::synthetic(cfg, 4, greedy_opts());
    const std::string prompt = "abc";
    const std::size_t n = 5;
    const GenerationOutput g = s.generate(prompt, n);
    ASSERT_EQ(g.tokens.size(), n);  // run must not hit EOS for this check
    for (const std::int32_t t : g.tokens) ASSERT_NE(t, model::ByteTokenizer::kEos);

    const std::size_t prompt_len = s.tokenizer().encode(prompt).size();
    accel::DecodeCycleModel sim(cfg, model::QuantScheme::w4a16_kv8(),
                                accel::AccelConfig{});
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        want += sim.token_timing(prompt_len + i).total_ns;
    }
    EXPECT_DOUBLE_EQ(g.simulated_ns, want);
}

TEST(Session, ConsoleCollectsTranscript) {
    auto s = InferenceSession::synthetic(model::ModelConfig::micro_256(), 5, greedy_opts());
    const GenerationOutput g = s.generate("x", 4);
    EXPECT_EQ(s.console().transcript().substr(0, g.text.size()), g.text);
    EXPECT_EQ(s.console().tokens_emitted(), g.tokens.size());
}

TEST(Session, ResetAllowsFreshGeneration) {
    auto s = InferenceSession::synthetic(model::ModelConfig::micro_256(), 6, greedy_opts());
    const GenerationOutput first = s.generate("q", 3);
    s.reset();
    const GenerationOutput second = s.generate("q", 3);
    EXPECT_EQ(first.tokens, second.tokens);
}

TEST(Session, DifferentPromptsDiverge) {
    auto s = InferenceSession::synthetic(model::ModelConfig::micro_256(), 7, greedy_opts());
    const GenerationOutput a = s.generate("aaaa", 4);
    s.reset();
    const GenerationOutput b = s.generate("zzzz", 4);
    EXPECT_NE(a.tokens, b.tokens);
}

TEST(Session, RespectsContextLimit) {
    model::ModelConfig cfg = model::ModelConfig::micro_256();
    cfg.max_seq_len = 8;
    auto s = InferenceSession::synthetic(cfg, 8, greedy_opts());
    // Prompt of 5 (incl. BOS) leaves 3 steps of headroom.
    const GenerationOutput g = s.generate("abcd", 100);
    EXPECT_LE(g.tokens.size(), 4u);
}

}  // namespace
}  // namespace efld::runtime
