// Property sweeps over the Fig. 4A stream format: for any group count the
// schedule is self-consistent, round trips are exact, and the on-chip state
// of the decoder never exceeds one scale word + one zero word.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "quant/scale_zero_pack.hpp"
#include "quant/weight_format.hpp"

namespace efld::quant {
namespace {

class FormatScheduleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FormatScheduleProperty, ScheduleCountsAreExact) {
    const std::size_t groups = GetParam();
    const auto sched = stream_schedule(groups);
    std::size_t w = 0, s = 0, z = 0;
    for (const auto k : sched) {
        if (k == WordKind::kWeight) ++w;
        if (k == WordKind::kScale) ++s;
        if (k == WordKind::kZero) ++z;
    }
    EXPECT_EQ(w, groups);
    EXPECT_EQ(s, div_ceil(groups, kGroupsPerScaleWord));
    EXPECT_EQ(z, div_ceil(groups, kGroupsPerZeroWord));
    EXPECT_EQ(sched.size(), stream_words(groups));
}

TEST_P(FormatScheduleProperty, EveryWeightWordIsPrecededByItsMetadata) {
    // Walking the schedule, a weight word must never appear before the scale
    // word of its block and the zero word of its chunk — the decoder's
    // single-register invariant.
    const std::size_t groups = GetParam();
    const auto sched = stream_schedule(groups);
    bool have_zero = false, have_scale = false;
    std::size_t weights_since_scale = 0;
    std::size_t weights_since_zero = 0;
    for (const auto k : sched) {
        switch (k) {
            case WordKind::kZero:
                have_zero = true;
                weights_since_zero = 0;
                break;
            case WordKind::kScale:
                have_scale = true;
                weights_since_scale = 0;
                break;
            case WordKind::kWeight:
                ASSERT_TRUE(have_zero && have_scale);
                ++weights_since_scale;
                ++weights_since_zero;
                ASSERT_LE(weights_since_scale, kGroupsPerScaleWord);
                ASSERT_LE(weights_since_zero, kGroupsPerZeroWord);
                break;
        }
    }
}

TEST_P(FormatScheduleProperty, OverheadBounded) {
    const std::size_t groups = GetParam();
    const double oh = stream_overhead(groups);
    EXPECT_GE(oh, 5.0 / 133.0 - 1e-9);  // never better than the asymptote
    EXPECT_LE(oh, 2.0 / 3.0 + 1e-9);    // worst case: 1 group = 3 words
}

INSTANTIATE_TEST_SUITE_P(Sweep, FormatScheduleProperty,
                         ::testing::Values<std::size_t>(1, 2, 31, 32, 33, 63, 64, 96,
                                                        127, 128, 129, 160, 255, 256,
                                                        1000, 4096, 131072));

class FormatRoundTripProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FormatRoundTripProperty, PackUnpackExact) {
    const auto [rows, cols] = GetParam();
    efld::Xoshiro256 rng(rows * 1000003 + cols);
    std::vector<float> w(rows * cols);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.1));
    const auto layer = QuantizedLinear::quantize(w, rows, cols, GroupQuantConfig{});
    const auto words = pack_weight_stream(layer);
    const auto back = unpack_weight_stream(words, rows, cols);
    ASSERT_EQ(back.dequantize(), layer.dequantize());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormatRoundTripProperty,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 128),
                      std::make_pair<std::size_t, std::size_t>(1, 4096),
                      std::make_pair<std::size_t, std::size_t>(2, 256),
                      std::make_pair<std::size_t, std::size_t>(7, 384),
                      std::make_pair<std::size_t, std::size_t>(16, 512),
                      std::make_pair<std::size_t, std::size_t>(33, 128),
                      std::make_pair<std::size_t, std::size_t>(40, 640),
                      std::make_pair<std::size_t, std::size_t>(128, 128)));

class FifoProperty : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(FifoProperty, FlushCountMatchesTokenWindows) {
    const auto [layers, heads, tokens] = GetParam();
    ScaleZeroFifo fifo(layers, heads);
    std::size_t flushed = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
        for (std::size_t l = 0; l < layers; ++l) {
            for (std::size_t h = 0; h < heads; ++h) {
                for (const bool v : {false, true}) {
                    if (fifo.append(l, h, v, t, {Fp16::one(), 0})) ++flushed;
                }
            }
        }
    }
    EXPECT_EQ(flushed, 2 * layers * heads * (tokens / kPacksPerWord));
    // Drain the rest and check total conservation.
    std::size_t drained = 0;
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t h = 0; h < heads; ++h) {
            for (const bool v : {false, true}) {
                if (fifo.flush(l, h, v)) ++drained;
            }
        }
    }
    const std::size_t partial = (tokens % kPacksPerWord) ? 2 * layers * heads : 0;
    EXPECT_EQ(drained, partial);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FifoProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 3, 8),
                       ::testing::Values<std::size_t>(1, 15, 16, 17, 47, 64)));

}  // namespace
}  // namespace efld::quant
