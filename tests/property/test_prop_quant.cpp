// Property sweeps over the quantization pipeline: for every geometry and
// weight distribution, quantize -> dequantize must satisfy the grid-error
// bound, codes must stay in range, and GEMV must commute with dequantization.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "quant/groupquant.hpp"
#include "quant/kvquant.hpp"

namespace efld::quant {
namespace {

enum class Dist { kGaussian, kUniform, kHeavyTail, kShifted };

const char* dist_name(Dist d) {
    switch (d) {
        case Dist::kGaussian: return "gaussian";
        case Dist::kUniform: return "uniform";
        case Dist::kHeavyTail: return "heavytail";
        case Dist::kShifted: return "shifted";
    }
    return "?";
}

std::vector<float> sample(Dist d, std::size_t n, std::uint64_t seed) {
    efld::Xoshiro256 rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) {
        switch (d) {
            case Dist::kGaussian:
                x = static_cast<float>(rng.gaussian(0.0, 0.05));
                break;
            case Dist::kUniform:
                x = static_cast<float>(rng.uniform(-0.2, 0.2));
                break;
            case Dist::kHeavyTail: {
                const double g = rng.gaussian();
                x = static_cast<float>(g * g * g * 0.02);
                break;
            }
            case Dist::kShifted:
                x = static_cast<float>(rng.gaussian(0.3, 0.05));
                break;
        }
    }
    return v;
}

using QuantParam = std::tuple<std::size_t /*rows*/, std::size_t /*cols*/,
                              std::size_t /*group*/, unsigned /*bits*/, Dist>;

class GroupQuantProperty : public ::testing::TestWithParam<QuantParam> {};

TEST_P(GroupQuantProperty, RoundTripWithinGridError) {
    const auto [rows, cols, group, bits, dist] = GetParam();
    const auto w = sample(dist, rows * cols, 0xC0FFEE ^ (rows * 31 + cols));
    GroupQuantConfig cfg;
    cfg.group_size = group;
    cfg.bits = bits;
    const auto q = QuantizedLinear::quantize(w, rows, cols, cfg);
    const auto back = q.dequantize();

    // Per-group bound: |w - w'| <= scale/2 from code rounding, plus up to one
    // extra step at the range edges when the rounded zero point pushes the
    // extreme code past qmax (standard asymmetric min/max behaviour) —
    // 1.5 * scale worst case, plus fp16 resolution slack.
    const std::size_t groups = q.num_groups();
    for (std::size_t g = 0; g < groups; ++g) {
        const float s = q.scale(g).to_float();
        const float bound = s * 1.5f + s * 0.01f + 1e-6f;
        for (std::size_t i = 0; i < group; ++i) {
            const std::size_t idx = g * group + i;
            ASSERT_NEAR(back[idx], w[idx], bound)
                << dist_name(dist) << " rows=" << rows << " cols=" << cols
                << " group=" << group << " bits=" << bits << " idx=" << idx;
        }
    }
}

TEST_P(GroupQuantProperty, CodesAndZerosInRange) {
    const auto [rows, cols, group, bits, dist] = GetParam();
    const auto w = sample(dist, rows * cols, 0xBEEF ^ cols);
    GroupQuantConfig cfg;
    cfg.group_size = group;
    cfg.bits = bits;
    const auto q = QuantizedLinear::quantize(w, rows, cols, cfg);
    const std::uint8_t qmax = cfg.qmax();
    for (const auto c : q.codes()) ASSERT_LE(c, qmax);
    for (const auto z : q.zeros()) ASSERT_LE(z, qmax);
}

TEST_P(GroupQuantProperty, GemvLinearInInput) {
    // q.gemv(a*x) == a * q.gemv(x): the quantized operator is linear.
    const auto [rows, cols, group, bits, dist] = GetParam();
    const auto w = sample(dist, rows * cols, 0xF00D ^ rows);
    GroupQuantConfig cfg;
    cfg.group_size = group;
    cfg.bits = bits;
    const auto q = QuantizedLinear::quantize(w, rows, cols, cfg);

    efld::Xoshiro256 rng(7);
    std::vector<float> x(cols);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    std::vector<float> x2(cols);
    for (std::size_t i = 0; i < cols; ++i) x2[i] = 2.5f * x[i];

    const auto y = q.gemv_reference(x);
    const auto y2 = q.gemv_reference(x2);
    for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_NEAR(y2[r], 2.5f * y[r], 1e-3f + 1e-3f * std::abs(y[r]));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupQuantProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8),
                       ::testing::Values<std::size_t>(128, 256, 512),
                       ::testing::Values<std::size_t>(64, 128),
                       ::testing::Values<unsigned>(4, 8),
                       ::testing::Values(Dist::kGaussian, Dist::kUniform,
                                         Dist::kHeavyTail, Dist::kShifted)),
    [](const auto& info) {
        return "r" + std::to_string(std::get<0>(info.param)) + "_c" +
               std::to_string(std::get<1>(info.param)) + "_g" +
               std::to_string(std::get<2>(info.param)) + "_b" +
               std::to_string(std::get<3>(info.param)) + "_" +
               dist_name(std::get<4>(info.param));
    });

class KvQuantProperty : public ::testing::TestWithParam<std::tuple<std::size_t, Dist>> {};

TEST_P(KvQuantProperty, RoundTripWithinGridBound) {
    const auto [n, dist] = GetParam();
    const auto x = sample(dist, n, 0xAB ^ n);
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    const float s = q.params.scale.to_float();
    for (std::size_t i = 0; i < n; ++i) {
        // scale/2 interior; up to 1.5*scale at range edges (zero-point
        // rounding can clamp the extreme code by one step).
        ASSERT_NEAR(back[i], x[i], s * 1.51f + 1e-6f) << dist_name(dist) << " i=" << i;
    }
}

TEST_P(KvQuantProperty, DequantizeIsMonotoneInCode) {
    const auto [n, dist] = GetParam();
    const auto x = sample(dist, n, 0xCD ^ n);
    const KvQuantized q = kv_quantize(x);
    // Larger code always decodes to a larger value (positive scale).
    const auto v0 = kv_dequantize(std::vector<std::uint8_t>{0}, q.params);
    const auto v255 = kv_dequantize(std::vector<std::uint8_t>{255}, q.params);
    ASSERT_LT(v0[0], v255[0] + 1e-9f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KvQuantProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 64, 128, 333),
                       ::testing::Values(Dist::kGaussian, Dist::kUniform,
                                         Dist::kHeavyTail, Dist::kShifted)),
    [](const auto& info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_" +
               dist_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace efld::quant
