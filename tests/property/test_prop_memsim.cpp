// Memory-system invariants swept over configurations and traffic shapes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "memsim/memory_system.hpp"

namespace efld::memsim {
namespace {

using PortParam = std::tuple<unsigned /*ports*/, unsigned /*burst beats*/>;

class MemoryProperty : public ::testing::TestWithParam<PortParam> {};

MemorySystemConfig make_config(const PortParam& p) {
    MemorySystemConfig cfg = MemorySystemConfig::kv260();
    cfg.axi.num_ports = std::get<0>(p);
    cfg.axi.port.max_burst_beats = std::get<1>(p);
    return cfg;
}

TEST_P(MemoryProperty, EfficiencyNeverExceedsOne) {
    MemorySystem mem(make_config(GetParam()));
    Xoshiro256 rng(99);
    TransactionStream s;
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t addr = rng.below(1ull << 30) / 64 * 64;
        const std::uint64_t bytes = 64 + rng.below(64) * 64;
        s.push_back({addr, bytes, rng.below(2) ? Dir::kRead : Dir::kWrite});
    }
    const BandwidthStats st = mem.run(s);
    EXPECT_GT(st.busy_ns, 0.0);
    EXPECT_LE(st.achieved_bw(), mem.peak_bytes_per_s() * (1.0 + 1e-9));
}

TEST_P(MemoryProperty, TimeIsAdditiveAcrossTransactions) {
    // Serving a stream equals the sum of serving its parts (the model is
    // state-dependent only through open rows, which both paths share).
    MemorySystem a(make_config(GetParam()));
    MemorySystem b(make_config(GetParam()));
    TransactionStream s{{0, 8192, Dir::kRead},
                        {8192, 8192, Dir::kRead},
                        {1 << 20, 256, Dir::kWrite}};
    const double whole = a.run(s).busy_ns;
    double parts = 0;
    for (const auto& t : s) parts += b.service(t);
    EXPECT_NEAR(whole, parts, 1e-6);
}

TEST_P(MemoryProperty, SplittingATransferNeverSpeedsItUp) {
    MemorySystem whole(make_config(GetParam()));
    MemorySystem split(make_config(GetParam()));
    const std::uint64_t total = 1 << 22;
    const double t_whole = whole.sequential_read_ns(0, total);
    double t_split = 0;
    for (std::uint64_t a = 0; a < total; a += 4096) {
        t_split += split.service({a, 4096, Dir::kRead});
    }
    EXPECT_LE(t_whole, t_split * 1.0001);
}

TEST_P(MemoryProperty, MoreBytesTakeLonger) {
    MemorySystem mem(make_config(GetParam()));
    double prev = 0;
    for (const std::uint64_t bytes : {1ull << 12, 1ull << 16, 1ull << 20, 1ull << 24}) {
        MemorySystem fresh(make_config(GetParam()));
        const double ns = fresh.sequential_read_ns(0, bytes);
        EXPECT_GT(ns, prev);
        prev = ns;
    }
}

TEST_P(MemoryProperty, FramingConservesBytes) {
    AxiBundle bundle(make_config(GetParam()).axi);
    Xoshiro256 rng(5);
    for (int i = 0; i < 200; ++i) {
        const Transaction txn{rng.below(1ull << 32), 1 + rng.below(1 << 18), Dir::kRead};
        std::uint64_t covered = 0;
        for (const auto& part : bundle.split(txn)) {
            for (const auto& b : bundle.port().frame(part)) {
                covered += b.bytes;
                ASSERT_EQ(b.addr / 4096, (b.addr + b.bytes - 1) / 4096)
                    << "4 KiB boundary violated";
            }
        }
        ASSERT_EQ(covered, txn.bytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemoryProperty,
    ::testing::Combine(::testing::Values<unsigned>(1, 2, 4),
                       ::testing::Values<unsigned>(16, 64, 256)),
    [](const auto& info) {
        return "p" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace efld::memsim
