// Prefix-sharing pool invariants under randomized share / CoW / cancel /
// release sequences.
//
// The model mirrors how the serving layer drives KvBlockPool: one registered
// prefix chain (index pins, one pool reference per page), sessions that adopt
// some head of that chain — full-page aligned or mid-page, the latter forcing
// copy-on-write on their first private append — then grow, retire, or are
// cancelled at random, with the whole chain occasionally dropped under
// capacity pressure. After EVERY operation three invariants must hold:
//
//   1. refcount conservation: the pool's refcount sum equals the number of
//      mapped references — every live block-table entry plus every index pin.
//   2. page conservation: free + used = total, and a page is used iff its
//      refcount is nonzero.
//   3. CoW isolation: once a sequence takes a private copy, the new page is
//      reachable from that sequence alone — never from another sequence's
//      block table, never from the pinned chain — so diverged histories can
//      never alias.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "kvpool/kv_block_pool.hpp"

namespace efld::kvpool {
namespace {

constexpr std::size_t kPageTokens = 4;
constexpr std::size_t kPages = 24;

class SharingModel {
public:
    SharingModel() : pool_({.page_tokens = kPageTokens, .n_pages = kPages}) {}

    KvBlockPool& pool() { return pool_; }

    // A session adopting `k` chain pages, mid-page with probability 1/2 (the
    // serving layer's prompt.size()-1 cap lands mid-page whenever the prompt
    // is page-aligned, which is what arms CoW).
    void create_session(Xoshiro256& rng) {
        const std::size_t seq = pool_.create_sequence();
        if (!chain_.empty() && rng.below(2) == 0) {
            const std::size_t k = 1 + rng.below(chain_.size());
            std::size_t tokens = k * kPageTokens;
            if (rng.below(2) == 0) tokens -= 1;  // mid-page: CoW pending
            pool_.adopt_pages(seq,
                              std::span<const std::size_t>(chain_.data(), k),
                              tokens);
        }
        live_.push_back(seq);
    }

    // Grows a random session by one token, resolving CoW exactly as the
    // engine does: a shared write target takes a private copy first; a dry
    // pool refuses both paths without corrupting anything.
    void append(Xoshiro256& rng) {
        if (live_.empty()) return;
        const std::size_t seq = live_[rng.below(live_.size())];
        if (pool_.write_needs_cow(seq)) {
            const std::size_t before = pool_.seq_tokens(seq);
            const KvBlockPool::CowResult cow = pool_.cow_page(seq);
            if (!cow.ok) {
                ASSERT_EQ(pool_.pages_free(), 0u);  // refusal means dry
                ASSERT_EQ(pool_.seq_tokens(seq), before);
                ASSERT_TRUE(pool_.write_needs_cow(seq));  // still unresolved
                return;
            }
            ASSERT_NE(cow.new_page, cow.old_page);
            ASSERT_EQ(pool_.page_refcount(cow.new_page), 1u);
            assert_exclusive(cow.new_page, seq);
            // The copy resolved the divergence: the next write is private,
            // mid-page, and cannot need a fresh page — it must land.
            ASSERT_FALSE(pool_.write_needs_cow(seq));
            ASSERT_TRUE(pool_.append_token(seq));
            return;
        }
        (void)pool_.append_token(seq);  // false = exhausted, sequence unchanged
    }

    // Registers the next chain page out of a session whose history extends
    // the chain — one extra pool reference, exactly like a PrefixIndex pin.
    void register_next(Xoshiro256& rng) {
        if (live_.empty()) return;
        const std::size_t seq = live_[rng.below(live_.size())];
        const auto& table = pool_.block_table(seq);
        // The session must share the whole current chain (its pages ARE the
        // chain's head) and own a full page beyond it.
        if (table.size() <= chain_.size()) return;
        if (!std::equal(chain_.begin(), chain_.end(), table.begin())) return;
        if (pool_.seq_tokens(seq) < (chain_.size() + 1) * kPageTokens) return;
        pool_.retain_page(table[chain_.size()]);
        chain_.push_back(table[chain_.size()]);
        ever_chained_.insert(chain_.back());
    }

    // Cancel/retire: every block-table reference released, adopted or owned.
    void release_session(Xoshiro256& rng) {
        if (live_.empty()) return;
        const std::size_t i = rng.below(live_.size());
        pool_.free_sequence(live_[i]);
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // Capacity-pressure escape: drop every index pin.
    void drop_chain() {
        for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
            pool_.release_page(*it);
        }
        chain_.clear();
    }

    void check_invariants() const {
        // (1) refcount conservation.
        std::uint64_t mapped = chain_.size();
        for (const std::size_t seq : live_) {
            mapped += pool_.block_table(seq).size();
        }
        ASSERT_EQ(pool_.refcount_sum(), mapped);
        // (2) page conservation.
        ASSERT_EQ(pool_.pages_free() + pool_.pages_used(), pool_.pages_total());
        std::size_t referenced = 0;
        for (std::size_t p = 0; p < pool_.pages_total(); ++p) {
            referenced += pool_.page_refcount(p) > 0 ? 1 : 0;
        }
        ASSERT_EQ(referenced, pool_.pages_used());
        // (3) a page shared by two sessions must be chain history — both
        // tables hold it at the SAME logical position, so the token paths
        // into it are identical, never diverged.
        for (std::size_t a = 0; a < live_.size(); ++a) {
            const auto& ta = pool_.block_table(live_[a]);
            for (std::size_t b = a + 1; b < live_.size(); ++b) {
                const auto& tb = pool_.block_table(live_[b]);
                for (std::size_t i = 0; i < ta.size(); ++i) {
                    for (std::size_t j = 0; j < tb.size(); ++j) {
                        if (ta[i] != tb[j]) continue;
                        ASSERT_EQ(i, j) << "page " << ta[i]
                                        << " aliased at diverged positions";
                        ASSERT_TRUE(was_chain_page(ta[i]))
                            << "shared page " << ta[i] << " never registered";
                    }
                }
            }
        }
    }

    std::size_t live_count() const { return live_.size(); }

private:
    void assert_exclusive(std::size_t page, std::size_t owner) const {
        for (const std::size_t seq : live_) {
            if (seq == owner) continue;
            const auto& t = pool_.block_table(seq);
            ASSERT_TRUE(std::find(t.begin(), t.end(), page) == t.end());
        }
        ASSERT_TRUE(std::find(chain_.begin(), chain_.end(), page) ==
                    chain_.end());
    }

    // Sharing is only ever introduced by adoption from the chain, so any page
    // two sessions share must have been a chain page at some point.
    bool was_chain_page(std::size_t page) const {
        return ever_chained_.count(page) > 0;
    }

    KvBlockPool pool_;
    std::vector<std::size_t> live_;
    std::vector<std::size_t> chain_;
    std::set<std::size_t> ever_chained_;
};

TEST(KvPoolSharingProperty, RandomizedShareCowCancelRelease) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SharingModel m;
        Xoshiro256 rng(seed);
        for (int step = 0; step < 2000; ++step) {
            switch (rng.below(100)) {
                case 0: case 1: case 2: case 3: case 4: case 5:
                    if (m.live_count() < 8) m.create_session(rng);
                    break;
                case 6: case 7: case 8:
                    m.register_next(rng);
                    break;
                case 9: case 10:
                    m.release_session(rng);
                    break;
                case 11:
                    m.drop_chain();
                    break;
                default:
                    m.append(rng);
                    break;
            }
            m.check_invariants();
        }
    }
}

TEST(KvPoolSharingProperty, CowUnderExhaustionNeverCorrupts) {
    // Tiny pool, guaranteed to run dry mid-CoW: every refusal must leave the
    // sequence, the chain, and the free list exactly as they were. Two pages
    // total and every one of them shared — the copy has nowhere to go.
    KvBlockPool pool({.page_tokens = 2, .n_pages = 2});
    const std::size_t donor = pool.create_sequence();
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.append_token(donor));
    // Pin both donor pages as a registered chain.
    const std::vector<std::size_t> chain = pool.block_table(donor);
    for (const std::size_t p : chain) pool.retain_page(p);

    // Adopt mid-page so the first append needs CoW; the pool is full, so the
    // copy must refuse.
    const std::size_t adopter = pool.create_sequence();
    pool.adopt_pages(adopter, chain, 3);
    ASSERT_TRUE(pool.write_needs_cow(adopter));
    ASSERT_EQ(pool.pages_free(), 0u);
    KvBlockPool::CowResult cow = pool.cow_page(adopter);
    EXPECT_FALSE(cow.ok);
    EXPECT_EQ(pool.seq_tokens(adopter), 3u);
    EXPECT_EQ(pool.page_refcount(chain[1]), 3u);  // donor + pin + adopter
    // A direct append into the shared page is a caller bug and must throw
    // rather than corrupt the shared history.
    EXPECT_THROW((void)pool.append_token(adopter), efld::Error);

    // Retiring the donor and dropping both chain pins frees nothing — the
    // adopter still maps both pages — but it does make the adopter the sole
    // holder, so the write target is private again and CoW dissolves.
    pool.free_sequence(donor);
    pool.release_page(chain[0]);
    pool.release_page(chain[1]);
    EXPECT_EQ(pool.pages_free(), 0u);
    EXPECT_EQ(pool.page_refcount(chain[1]), 1u);
    EXPECT_FALSE(pool.write_needs_cow(adopter));
    EXPECT_TRUE(pool.append_token(adopter));
}

}  // namespace
}  // namespace efld::kvpool
