// Cycle-model invariants swept over models, contexts, and schedules.
#include <gtest/gtest.h>

#include <tuple>

#include "accel/cycle_model.hpp"

namespace efld::accel {
namespace {

enum class Which { kLlama7B, kTinyLlama, kTiny512 };

model::ModelConfig make_model(Which w) {
    switch (w) {
        case Which::kLlama7B: return model::ModelConfig::llama2_7b();
        case Which::kTinyLlama: return model::ModelConfig::tinyllama_1_1b();
        case Which::kTiny512: return model::ModelConfig::tiny_512();
    }
    return model::ModelConfig::tiny_512();
}

const char* which_name(Which w) {
    switch (w) {
        case Which::kLlama7B: return "llama7b";
        case Which::kTinyLlama: return "tinyllama";
        case Which::kTiny512: return "tiny512";
    }
    return "?";
}

using CycleParam = std::tuple<Which, bool /*fine*/>;

class CycleProperty : public ::testing::TestWithParam<CycleParam> {};

TEST_P(CycleProperty, LatencyMonotoneInContext) {
    const auto [which, fine] = GetParam();
    const model::ModelConfig cfg = make_model(which);
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    DecodeCycleModel m(cfg, model::QuantScheme::w4a16_kv8(), acc);
    double prev = 0;
    for (const std::uint64_t ctx :
         {std::uint64_t{0}, cfg.max_seq_len / 4, cfg.max_seq_len / 2,
          cfg.max_seq_len - 1}) {
        const double ns = m.token_timing(ctx).total_ns;
        ASSERT_GE(ns, prev) << "ctx=" << ctx;
        prev = ns;
    }
}

TEST_P(CycleProperty, ByteAccountingMatchesTrafficModel) {
    // The cycle model's walked byte counts must agree with the closed-form
    // decode_traffic() arithmetic (two independent derivations).
    const auto [which, fine] = GetParam();
    const model::ModelConfig cfg = make_model(which);
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    DecodeCycleModel m(cfg, model::QuantScheme::w4a16_kv8(), acc);
    const std::size_t ctx = cfg.max_seq_len / 2;
    const TokenTiming t = m.token_timing(ctx);
    const model::DecodeTraffic ref =
        model::decode_traffic(cfg, model::QuantScheme::w4a16_kv8(), ctx);

    // Weight side: within 1% (stream framing rounds rows to bus words).
    EXPECT_NEAR(static_cast<double>(t.weight_bytes),
                static_cast<double>(ref.weight_read_bytes + ref.embedding_read_bytes),
                static_cast<double>(ref.weight_read_bytes) * 0.01);
    // KV side: pack reads round up to 64 B words per head; allow that slack.
    const double pack_slack =
        static_cast<double>(2 * cfg.n_layers * cfg.n_kv_heads * 64 * cfg.n_heads);
    EXPECT_NEAR(static_cast<double>(t.kv_read_bytes),
                static_cast<double>(ref.kv_read_bytes), pack_slack);
}

TEST_P(CycleProperty, UtilizationInUnitInterval) {
    const auto [which, fine] = GetParam();
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    DecodeCycleModel m(make_model(which), model::QuantScheme::w4a16_kv8(), acc);
    const double u = m.bandwidth_utilization(make_model(which).max_seq_len / 2);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
}

TEST_P(CycleProperty, FineNeverSlowerThanCoarse) {
    const auto [which, fine] = GetParam();
    if (!fine) GTEST_SKIP() << "pair covered by the fine instantiation";
    const model::ModelConfig cfg = make_model(which);
    AccelConfig f, c;
    c.fine_grained_fusion = false;
    DecodeCycleModel mf(cfg, model::QuantScheme::w4a16_kv8(), f);
    DecodeCycleModel mc(cfg, model::QuantScheme::w4a16_kv8(), c);
    const std::size_t ctx = cfg.max_seq_len / 2;
    EXPECT_LE(mf.token_timing(ctx).total_ns, mc.token_timing(ctx).total_ns * 1.001);
}

TEST_P(CycleProperty, PrefillComputeBoundAndDecodeBandwidthBound) {
    const auto [which, fine] = GetParam();
    const model::ModelConfig cfg = make_model(which);
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    DecodeCycleModel m(cfg, model::QuantScheme::w4a16_kv8(), acc);
    const PrefillTiming p = m.prefill_timing(std::min<std::size_t>(64, cfg.max_seq_len));
    EXPECT_TRUE(p.compute_bound());
    EXPECT_GT(p.total_ns, 0.0);
    // A weight-reusing matrix engine must beat the vector engine on prefill.
    DecodeCycleModel m2(cfg, model::QuantScheme::w4a16_kv8(), acc);
    EXPECT_LT(m2.matrix_engine_prefill_ns(64, 4096.0), p.total_ns);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CycleProperty,
    ::testing::Combine(::testing::Values(Which::kLlama7B, Which::kTinyLlama,
                                         Which::kTiny512),
                       ::testing::Bool()),
    [](const auto& info) {
        return std::string(which_name(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_fine" : "_coarse");
    });

}  // namespace
}  // namespace efld::accel
