// Algebraic properties of the FP16 soft float, swept over random operands —
// the guarantees an RTL FP16 datapath provides and the VPU relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.hpp"
#include "common/rng.hpp"

namespace efld {
namespace {

class Fp16Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fp16Property, AdditionCommutes) {
    Xoshiro256 rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.uniform(-1000, 1000)));
        const Fp16 b = Fp16::from_float(static_cast<float>(rng.uniform(-1000, 1000)));
        ASSERT_EQ((a + b).bits(), (b + a).bits());
    }
}

TEST_P(Fp16Property, MultiplicationCommutes) {
    Xoshiro256 rng(GetParam() ^ 1);
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.gaussian()));
        const Fp16 b = Fp16::from_float(static_cast<float>(rng.gaussian()));
        ASSERT_EQ((a * b).bits(), (b * a).bits());
    }
}

TEST_P(Fp16Property, NegationIsInvolution) {
    Xoshiro256 rng(GetParam() ^ 2);
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.uniform(-6e4, 6e4)));
        ASSERT_EQ((-(-a)).bits(), a.bits());
    }
}

TEST_P(Fp16Property, AddingZeroIsIdentityForNormals) {
    Xoshiro256 rng(GetParam() ^ 3);
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.uniform(-6e4, 6e4)));
        ASSERT_EQ((a + Fp16::zero()).to_float(), a.to_float());
    }
}

TEST_P(Fp16Property, MultiplyByOneIsIdentity) {
    Xoshiro256 rng(GetParam() ^ 4);
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.gaussian(0, 100)));
        ASSERT_EQ((a * Fp16::one()).bits(), a.bits());
    }
}

TEST_P(Fp16Property, ConversionIsMonotone) {
    // f1 <= f2 implies half(f1) <= half(f2): rounding never reorders.
    Xoshiro256 rng(GetParam() ^ 5);
    for (int i = 0; i < 2000; ++i) {
        const float f1 = static_cast<float>(rng.uniform(-6e4, 6e4));
        const float f2 = static_cast<float>(rng.uniform(-6e4, 6e4));
        const float lo = std::min(f1, f2), hi = std::max(f1, f2);
        ASSERT_LE(Fp16::from_float(lo).to_float(), Fp16::from_float(hi).to_float());
    }
}

TEST_P(Fp16Property, SubtractionOfSelfIsZero) {
    Xoshiro256 rng(GetParam() ^ 6);
    for (int i = 0; i < 2000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.gaussian(0, 50)));
        ASSERT_TRUE((a - a).is_zero());
    }
}

TEST_P(Fp16Property, ErrorBoundedByHalfUlp) {
    Xoshiro256 rng(GetParam() ^ 7);
    for (int i = 0; i < 2000; ++i) {
        const float f = static_cast<float>(rng.uniform(0.001, 60000.0));
        const float r = Fp16::from_float(f).to_float();
        ASSERT_LE(std::abs(r - f) / f, 0x1.0p-11f + 1e-7f);  // <= 2^-11 relative
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fp16Property,
                         ::testing::Values<std::uint64_t>(11, 222, 3333, 44444));

}  // namespace
}  // namespace efld
