// Decode cycle model: the paper's headline performance numbers.
#include <gtest/gtest.h>

#include <vector>

#include "accel/cycle_model.hpp"
#include "common/check.hpp"

namespace efld::accel {
namespace {

DecodeCycleModel llama_model(bool fine = true) {
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    return DecodeCycleModel(model::ModelConfig::llama2_7b(),
                            model::QuantScheme::w4a16_kv8(), acc);
}

TEST(CycleModel, DecodeRateNearPaperHeadline) {
    // Paper: ~4.9 token/s at deployment. Accept the "around 5 token/s" band.
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(512);
    EXPECT_GT(t.tokens_per_s(), 4.5);
    EXPECT_LT(t.tokens_per_s(), 5.6);
}

TEST(CycleModel, BandwidthUtilizationNearPaper) {
    // Paper: 84.5% of the 5.8 token/s theoretical limit (at the reported
    // operating point). Require the simulated point to land in 80-90%.
    DecodeCycleModel m = llama_model();
    const double util = m.bandwidth_utilization(512);
    EXPECT_GT(util, 0.78);
    EXPECT_LT(util, 0.92);
}

TEST(CycleModel, RateDecreasesWithContext) {
    DecodeCycleModel m = llama_model();
    const double r0 = m.token_timing(0).tokens_per_s();
    const double r512 = m.token_timing(512).tokens_per_s();
    const double r1023 = m.token_timing(1023).tokens_per_s();
    EXPECT_GT(r0, r512);
    EXPECT_GT(r512, r1023);
    // KV traffic at 1023 tokens is ~8% of weights: rate drop bounded.
    EXPECT_GT(r1023, r0 * 0.85);
}

TEST(CycleModel, WeightBytesMatchFootprint) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(0);
    // Weight traffic per token ~= packed weight bytes (3.43 GB).
    EXPECT_NEAR(static_cast<double>(t.weight_bytes), 3.43e9, 0.05e9);
    EXPECT_EQ(t.kv_read_bytes, 0u);
}

TEST(CycleModel, KvBytesMatchContext) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(256);
    // Codes: 2*32*4096*256; packs: 2*32*32*ceil(256/16)*64.
    EXPECT_EQ(t.kv_read_bytes,
              2ull * 32 * 4096 * 256 + 2ull * 32 * 32 * 16 * 64);
    EXPECT_EQ(t.kv_write_bytes, 2ull * 32 * 4096);  // codes only (t%16 != 15)
}

TEST(CycleModel, PackWritesAppearEvery16thToken) {
    DecodeCycleModel m = llama_model();
    const auto t14 = m.token_timing(14);
    const auto t15 = m.token_timing(15);
    EXPECT_EQ(t15.kv_write_bytes - t14.kv_write_bytes, 2ull * 32 * 32 * 64);
}

TEST(CycleModel, CoarsePipelineIsSlower) {
    DecodeCycleModel fine = llama_model(true);
    DecodeCycleModel coarse = llama_model(false);
    const double f = fine.token_timing(512).total_ns;
    const double c = coarse.token_timing(512).total_ns;
    EXPECT_GT(c, f * 1.02);  // misc exposure must cost measurably
}

TEST(CycleModel, FineHidesSpuWork) {
    DecodeCycleModel m = llama_model(true);
    const TokenTiming t = m.token_timing(512);
    // Hidden misc ops: exposure must be a tiny fraction of total.
    EXPECT_LT(t.spu_exposed_ns, t.total_ns * 0.01);
}

TEST(CycleModel, CoarseExposesSpuWork) {
    DecodeCycleModel m = llama_model(false);
    const TokenTiming t = m.token_timing(512);
    EXPECT_GT(t.spu_exposed_ns, t.total_ns * 0.02);
}

TEST(CycleModel, OpBreakdownCollectable) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(64, /*collect_ops=*/true);
    EXPECT_FALSE(t.ops.empty());
    double sum = 0;
    for (const auto& op : t.ops) sum += op.total_ns;
    EXPECT_LE(sum, t.total_ns + 1.0);
    // Projections dominate: find at least one op with mem_ns >> compute gap.
    bool found_weight_op = false;
    for (const auto& op : t.ops) {
        if (op.name == "gate_proj") {
            found_weight_op = true;
            EXPECT_GT(op.mem_ns, 0.0);
        }
    }
    EXPECT_TRUE(found_weight_op);
}

TEST(CycleModel, GenerationTimingAggregates) {
    DecodeCycleModel m = llama_model();
    const GenerationTiming g = m.generate_timing(0, 3);
    EXPECT_EQ(g.tokens, 3u);
    EXPECT_GT(g.tokens_per_s(), 4.0);
    EXPECT_LT(g.tokens_per_s(), 6.0);
}

TEST(CycleModel, W8HalvesDecodeRate) {
    AccelConfig acc;
    model::ModelConfig cfg = model::ModelConfig::llama2_7b();
    cfg.max_seq_len = 256;  // W8 weights + KV must still fit the map
    DecodeCycleModel w4(cfg, model::QuantScheme::w4a16_kv8(), acc);
    // W8 at 7B does NOT fit 4 GiB (6.9 GB weights) — verified elsewhere.
    // Use TinyLlama for the W4-vs-W8 rate ratio instead.
    model::ModelConfig tl = model::ModelConfig::tinyllama_1_1b();
    DecodeCycleModel t4(tl, model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel t8(tl, model::QuantScheme::w8a16_kv8(), acc);
    const double r4 = t4.token_timing(128).tokens_per_s();
    const double r8 = t8.token_timing(128).tokens_per_s();
    EXPECT_NEAR(r4 / r8, 2.0, 0.25);
    (void)w4;
}

TEST(CycleModel, TinyLlamaOnKv260FasterThan7B) {
    AccelConfig acc;
    DecodeCycleModel tiny(model::ModelConfig::tinyllama_1_1b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel big = llama_model();
    EXPECT_GT(tiny.token_timing(128).tokens_per_s(),
              4.0 * big.token_timing(128).tokens_per_s());
}

TEST(CycleModel, MoreBandwidthMoreSpeed) {
    AccelConfig acc;
    memsim::MemorySystemConfig fast = memsim::MemorySystemConfig::kv260();
    fast.ddr.data_rate_mtps = 4800;  // hypothetical DDR5-class part
    fast.axi.port.clock_mhz = 600;
    AccelConfig fast_acc;
    fast_acc.clock_mhz = 600;  // PL must consume 512b/clk at the higher rate
    DecodeCycleModel slow(model::ModelConfig::llama2_7b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel quick(model::ModelConfig::llama2_7b(),
                           model::QuantScheme::w4a16_kv8(), fast_acc, fast);
    EXPECT_GT(quick.token_timing(128).tokens_per_s(),
              1.7 * slow.token_timing(128).tokens_per_s());
}

TEST(CycleModel, FasterMemoryAloneIsWastedOnFixedPlClock) {
    // The dual of the previous test — and the reason the paper balances the
    // VPU width to the stream rate: if the PL still consumes one 512-bit word
    // per 300 MHz clock, doubling DDR bandwidth buys almost nothing.
    AccelConfig acc;  // 300 MHz PL
    memsim::MemorySystemConfig fast = memsim::MemorySystemConfig::kv260();
    fast.ddr.data_rate_mtps = 4800;
    fast.axi.port.clock_mhz = 600;
    DecodeCycleModel base(model::ModelConfig::llama2_7b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel mem_only(model::ModelConfig::llama2_7b(),
                              model::QuantScheme::w4a16_kv8(), acc, fast);
    EXPECT_LT(mem_only.token_timing(128).tokens_per_s(),
              1.25 * base.token_timing(128).tokens_per_s());
}

// ---- batched-step pricing (the serve-side cycle model) ----

TEST(CycleModel, BatchTimingOfOneLaneIsTokenTiming) {
    // batch_timing({ctx}) is documented bit-identical to token_timing(ctx):
    // same op sequence, same arithmetic.
    DecodeCycleModel m = llama_model();
    for (const std::size_t ctx : {0u, 1u, 15u, 128u, 511u}) {
        const std::size_t one[] = {ctx};
        EXPECT_DOUBLE_EQ(m.batch_timing(one).total_ns, m.token_timing(ctx).total_ns)
            << "ctx " << ctx;
    }
}

TEST(CycleModel, BatchedStepAmortizesWeightStreams) {
    // Weights cross the bus once per step regardless of lanes. On the KV260's
    // balanced design the VPU consumes exactly one word per clock, so dense
    // compute grows with the batch and the win is bounded — but a 4-lane step
    // must still be strictly cheaper than 4 solo steps (shared streams,
    // per-step overheads paid once), and weight bytes must not scale with the
    // lanes while KV bytes do.
    DecodeCycleModel m = llama_model();
    const std::size_t lanes[] = {128, 128, 128, 128};
    const TokenTiming batched = m.batch_timing(lanes);
    const TokenTiming solo = m.token_timing(128);
    EXPECT_LT(batched.total_ns, 3.9 * solo.total_ns);  // strictly sub-linear
    EXPECT_GT(batched.total_ns, solo.total_ns);        // but not free
    // Projection/head streams are shared; only the per-token embedding row
    // fetch (fp16 * dim) is per lane.
    const std::uint64_t emb_row = 2ull * model::ModelConfig::llama2_7b().dim;
    EXPECT_EQ(batched.weight_bytes, solo.weight_bytes + 3 * emb_row);
    EXPECT_EQ(batched.kv_read_bytes, 4 * solo.kv_read_bytes);
    EXPECT_EQ(batched.kv_write_bytes, 4 * solo.kv_write_bytes);
}

TEST(CycleModel, BatchedTokensPerSecondMonotonicInBatch) {
    // The serving argument itself: simulated tokens/s of one step must rise
    // monotonically with the number of lanes riding it.
    DecodeCycleModel m = llama_model();
    double prev = 0.0;
    for (const std::size_t nb : {1u, 2u, 4u, 8u}) {
        const std::vector<std::size_t> lanes(nb, 256);
        const double ns = m.batch_timing(lanes).total_ns;
        const double tok_s = static_cast<double>(nb) * 1e9 / ns;
        EXPECT_GT(tok_s, prev) << "batch " << nb;
        prev = tok_s;
    }
}

TEST(CycleModel, BatchLanesPricedAtTheirOwnContext) {
    // Mixed contexts: each lane's KV traffic follows its own history length,
    // so {0, 511} sits strictly between {0, 0} and {511, 511}.
    DecodeCycleModel m = llama_model();
    const std::size_t lo[] = {0, 0};
    const std::size_t mid[] = {0, 511};
    const std::size_t hi[] = {511, 511};
    const double lo_ns = m.batch_timing(lo).total_ns;
    const double mid_ns = m.batch_timing(mid).total_ns;
    const double hi_ns = m.batch_timing(hi).total_ns;
    EXPECT_LT(lo_ns, mid_ns);
    EXPECT_LT(mid_ns, hi_ns);
}

TEST(CycleModel, BatchTimingRejectsBadInput) {
    DecodeCycleModel m = llama_model();
    EXPECT_THROW((void)m.batch_timing({}), efld::Error);
    const std::size_t over[] = {model::ModelConfig::llama2_7b().max_seq_len};
    EXPECT_THROW((void)m.batch_timing(over), efld::Error);
}

DecodeCycleModel paged_llama_model(std::size_t page_tokens) {
    AccelConfig acc;
    acc.kv_page_tokens = page_tokens;
    return DecodeCycleModel(model::ModelConfig::llama2_7b(),
                            model::QuantScheme::w4a16_kv8(), acc);
}

TEST(CycleModelPaged, SameBytesMorePagesSlightlySlower) {
    // Paged KV streaming (16-token pages, pack-word aligned) moves exactly
    // the same KV bytes as the contiguous reservation — the history is just
    // split into one descriptor per page, each paying its own FSM start. So:
    // identical byte counts, strictly more time, and the penalty stays small
    // relative to the weight-bound token (capacity is nearly free).
    DecodeCycleModel contig = llama_model();
    DecodeCycleModel paged = paged_llama_model(16);
    for (const std::size_t ctx : {std::size_t{64}, std::size_t{512}}) {
        const TokenTiming tc = contig.token_timing(ctx);
        const TokenTiming tp = paged.token_timing(ctx);
        EXPECT_EQ(tp.kv_read_bytes, tc.kv_read_bytes) << "ctx " << ctx;
        EXPECT_EQ(tp.weight_bytes, tc.weight_bytes) << "ctx " << ctx;
        EXPECT_EQ(tp.kv_write_bytes, tc.kv_write_bytes) << "ctx " << ctx;
        EXPECT_GT(tp.total_ns, tc.total_ns) << "ctx " << ctx;
        EXPECT_LT(tp.total_ns, tc.total_ns * 1.30) << "ctx " << ctx;
    }
}

TEST(CycleModelPaged, PageCountDrivesDescriptorCount) {
    // At ctx 64 with 16-token pages each history stream becomes 4 bursts.
    DecodeCycleModel contig = llama_model();
    DecodeCycleModel paged = paged_llama_model(16);
    const std::size_t ctx = 64;
    auto count_ops = [ctx](DecodeCycleModel& m, const char* name) {
        const TokenTiming t = m.token_timing(ctx, /*collect_ops=*/true);
        std::size_t n = 0;
        for (const OpTiming& op : t.ops) n += op.name == name ? 1 : 0;
        return n;
    };
    EXPECT_EQ(count_ops(paged, "kv_qk_hist"), 4 * count_ops(contig, "kv_qk_hist"));
    EXPECT_EQ(count_ops(paged, "kv_av_hist"), 4 * count_ops(contig, "kv_av_hist"));
}

TEST(CycleModelPaged, SingleLaneStillEqualsTokenTiming) {
    // The batch/token equivalence contract holds under paging too.
    DecodeCycleModel m = paged_llama_model(16);
    for (const std::size_t ctx : {std::size_t{0}, std::size_t{16}, std::size_t{100}}) {
        const std::size_t one[] = {ctx};
        EXPECT_DOUBLE_EQ(m.batch_timing(one).total_ns, m.token_timing(ctx).total_ns)
            << "ctx " << ctx;
    }
}

}  // namespace
}  // namespace efld::accel
