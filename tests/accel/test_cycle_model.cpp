// Decode cycle model: the paper's headline performance numbers.
#include <gtest/gtest.h>

#include "accel/cycle_model.hpp"

namespace efld::accel {
namespace {

DecodeCycleModel llama_model(bool fine = true) {
    AccelConfig acc;
    acc.fine_grained_fusion = fine;
    return DecodeCycleModel(model::ModelConfig::llama2_7b(),
                            model::QuantScheme::w4a16_kv8(), acc);
}

TEST(CycleModel, DecodeRateNearPaperHeadline) {
    // Paper: ~4.9 token/s at deployment. Accept the "around 5 token/s" band.
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(512);
    EXPECT_GT(t.tokens_per_s(), 4.5);
    EXPECT_LT(t.tokens_per_s(), 5.6);
}

TEST(CycleModel, BandwidthUtilizationNearPaper) {
    // Paper: 84.5% of the 5.8 token/s theoretical limit (at the reported
    // operating point). Require the simulated point to land in 80-90%.
    DecodeCycleModel m = llama_model();
    const double util = m.bandwidth_utilization(512);
    EXPECT_GT(util, 0.78);
    EXPECT_LT(util, 0.92);
}

TEST(CycleModel, RateDecreasesWithContext) {
    DecodeCycleModel m = llama_model();
    const double r0 = m.token_timing(0).tokens_per_s();
    const double r512 = m.token_timing(512).tokens_per_s();
    const double r1023 = m.token_timing(1023).tokens_per_s();
    EXPECT_GT(r0, r512);
    EXPECT_GT(r512, r1023);
    // KV traffic at 1023 tokens is ~8% of weights: rate drop bounded.
    EXPECT_GT(r1023, r0 * 0.85);
}

TEST(CycleModel, WeightBytesMatchFootprint) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(0);
    // Weight traffic per token ~= packed weight bytes (3.43 GB).
    EXPECT_NEAR(static_cast<double>(t.weight_bytes), 3.43e9, 0.05e9);
    EXPECT_EQ(t.kv_read_bytes, 0u);
}

TEST(CycleModel, KvBytesMatchContext) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(256);
    // Codes: 2*32*4096*256; packs: 2*32*32*ceil(256/16)*64.
    EXPECT_EQ(t.kv_read_bytes,
              2ull * 32 * 4096 * 256 + 2ull * 32 * 32 * 16 * 64);
    EXPECT_EQ(t.kv_write_bytes, 2ull * 32 * 4096);  // codes only (t%16 != 15)
}

TEST(CycleModel, PackWritesAppearEvery16thToken) {
    DecodeCycleModel m = llama_model();
    const auto t14 = m.token_timing(14);
    const auto t15 = m.token_timing(15);
    EXPECT_EQ(t15.kv_write_bytes - t14.kv_write_bytes, 2ull * 32 * 32 * 64);
}

TEST(CycleModel, CoarsePipelineIsSlower) {
    DecodeCycleModel fine = llama_model(true);
    DecodeCycleModel coarse = llama_model(false);
    const double f = fine.token_timing(512).total_ns;
    const double c = coarse.token_timing(512).total_ns;
    EXPECT_GT(c, f * 1.02);  // misc exposure must cost measurably
}

TEST(CycleModel, FineHidesSpuWork) {
    DecodeCycleModel m = llama_model(true);
    const TokenTiming t = m.token_timing(512);
    // Hidden misc ops: exposure must be a tiny fraction of total.
    EXPECT_LT(t.spu_exposed_ns, t.total_ns * 0.01);
}

TEST(CycleModel, CoarseExposesSpuWork) {
    DecodeCycleModel m = llama_model(false);
    const TokenTiming t = m.token_timing(512);
    EXPECT_GT(t.spu_exposed_ns, t.total_ns * 0.02);
}

TEST(CycleModel, OpBreakdownCollectable) {
    DecodeCycleModel m = llama_model();
    const TokenTiming t = m.token_timing(64, /*collect_ops=*/true);
    EXPECT_FALSE(t.ops.empty());
    double sum = 0;
    for (const auto& op : t.ops) sum += op.total_ns;
    EXPECT_LE(sum, t.total_ns + 1.0);
    // Projections dominate: find at least one op with mem_ns >> compute gap.
    bool found_weight_op = false;
    for (const auto& op : t.ops) {
        if (op.name == "gate_proj") {
            found_weight_op = true;
            EXPECT_GT(op.mem_ns, 0.0);
        }
    }
    EXPECT_TRUE(found_weight_op);
}

TEST(CycleModel, GenerationTimingAggregates) {
    DecodeCycleModel m = llama_model();
    const GenerationTiming g = m.generate_timing(0, 3);
    EXPECT_EQ(g.tokens, 3u);
    EXPECT_GT(g.tokens_per_s(), 4.0);
    EXPECT_LT(g.tokens_per_s(), 6.0);
}

TEST(CycleModel, W8HalvesDecodeRate) {
    AccelConfig acc;
    model::ModelConfig cfg = model::ModelConfig::llama2_7b();
    cfg.max_seq_len = 256;  // W8 weights + KV must still fit the map
    DecodeCycleModel w4(cfg, model::QuantScheme::w4a16_kv8(), acc);
    // W8 at 7B does NOT fit 4 GiB (6.9 GB weights) — verified elsewhere.
    // Use TinyLlama for the W4-vs-W8 rate ratio instead.
    model::ModelConfig tl = model::ModelConfig::tinyllama_1_1b();
    DecodeCycleModel t4(tl, model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel t8(tl, model::QuantScheme::w8a16_kv8(), acc);
    const double r4 = t4.token_timing(128).tokens_per_s();
    const double r8 = t8.token_timing(128).tokens_per_s();
    EXPECT_NEAR(r4 / r8, 2.0, 0.25);
    (void)w4;
}

TEST(CycleModel, TinyLlamaOnKv260FasterThan7B) {
    AccelConfig acc;
    DecodeCycleModel tiny(model::ModelConfig::tinyllama_1_1b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel big = llama_model();
    EXPECT_GT(tiny.token_timing(128).tokens_per_s(),
              4.0 * big.token_timing(128).tokens_per_s());
}

TEST(CycleModel, MoreBandwidthMoreSpeed) {
    AccelConfig acc;
    memsim::MemorySystemConfig fast = memsim::MemorySystemConfig::kv260();
    fast.ddr.data_rate_mtps = 4800;  // hypothetical DDR5-class part
    fast.axi.port.clock_mhz = 600;
    AccelConfig fast_acc;
    fast_acc.clock_mhz = 600;  // PL must consume 512b/clk at the higher rate
    DecodeCycleModel slow(model::ModelConfig::llama2_7b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel quick(model::ModelConfig::llama2_7b(),
                           model::QuantScheme::w4a16_kv8(), fast_acc, fast);
    EXPECT_GT(quick.token_timing(128).tokens_per_s(),
              1.7 * slow.token_timing(128).tokens_per_s());
}

TEST(CycleModel, FasterMemoryAloneIsWastedOnFixedPlClock) {
    // The dual of the previous test — and the reason the paper balances the
    // VPU width to the stream rate: if the PL still consumes one 512-bit word
    // per 300 MHz clock, doubling DDR bandwidth buys almost nothing.
    AccelConfig acc;  // 300 MHz PL
    memsim::MemorySystemConfig fast = memsim::MemorySystemConfig::kv260();
    fast.ddr.data_rate_mtps = 4800;
    fast.axi.port.clock_mhz = 600;
    DecodeCycleModel base(model::ModelConfig::llama2_7b(),
                          model::QuantScheme::w4a16_kv8(), acc);
    DecodeCycleModel mem_only(model::ModelConfig::llama2_7b(),
                              model::QuantScheme::w4a16_kv8(), acc, fast);
    EXPECT_LT(mem_only.token_timing(128).tokens_per_s(),
              1.25 * base.token_timing(128).tokens_per_s());
}

}  // namespace
}  // namespace efld::accel
