// MCU address planning and descriptor generation.
#include <gtest/gtest.h>

#include "accel/mcu.hpp"
#include "common/bitpack.hpp"
#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::accel {
namespace {

Mcu llama_mcu() {
    return Mcu(model::ModelConfig::llama2_7b(), model::QuantScheme::w4a16_kv8());
}

TEST(Mcu, Llama7BFitsKv260) {
    const Mcu mcu = llama_mcu();
    // The whole point of the paper: it fits, at >90% utilization.
    EXPECT_GT(mcu.map().utilization(), 0.90);
    EXPECT_LT(mcu.map().utilization(), 1.0);
}

TEST(Mcu, Llama7BUtilizationNearPaper) {
    // Paper: 93.3%. Our accounting (embedding fp16, lm_head W4): ~92.5%.
    const Mcu mcu = llama_mcu();
    EXPECT_NEAR(mcu.map().utilization(), 0.933, 0.015);
}

TEST(Mcu, EmbeddingRowAddressing) {
    const Mcu mcu = llama_mcu();
    const auto t0 = mcu.embedding_read(0);
    const auto t1 = mcu.embedding_read(1);
    EXPECT_EQ(t0.bytes, 4096u * 2);
    EXPECT_EQ(t1.addr, t0.addr + 4096 * 2);
    EXPECT_EQ(t0.dir, memsim::Dir::kRead);
}

TEST(Mcu, WeightStreamBytesMatchFormat) {
    const Mcu mcu = llama_mcu();
    // Wq: 4096x4096 = 131072 groups -> (131072 + 4096 + 1024) * 64 B.
    EXPECT_EQ(mcu.matrix_stream_bytes(MatrixId::kWq), (131072ull + 4096 + 1024) * 64);
    // Gate: 11008x4096.
    const std::uint64_t gate_groups = 11008ull * 4096 / 128;
    EXPECT_EQ(mcu.matrix_stream_bytes(MatrixId::kWGate),
              (gate_groups + efld::div_ceil(gate_groups, 32) + efld::div_ceil(gate_groups, 128)) * 64);
}

TEST(Mcu, MatricesWithinLayerAreContiguous) {
    const Mcu mcu = llama_mcu();
    const auto q = mcu.weight_stream_read(0, MatrixId::kWq);
    const auto k = mcu.weight_stream_read(0, MatrixId::kWk);
    EXPECT_EQ(k.addr, q.addr + q.bytes);
}

TEST(Mcu, RowRangeCoversMatrix) {
    const Mcu mcu = llama_mcu();
    const auto full = mcu.weight_stream_read(3, MatrixId::kWq);
    std::uint64_t covered = 0;
    for (std::size_t h = 0; h < 32; ++h) {
        const auto part = mcu.weight_rows_read(3, MatrixId::kWq, h * 128, (h + 1) * 128);
        covered += part.bytes;
        EXPECT_GE(part.addr, full.addr);
        EXPECT_LE(part.addr + part.bytes, full.addr + full.bytes + 64);
    }
    EXPECT_NEAR(static_cast<double>(covered), static_cast<double>(full.bytes),
                static_cast<double>(full.bytes) * 0.01);
}

TEST(Mcu, KvReadSequentialPerHead) {
    const Mcu mcu = llama_mcu();
    const auto k512 = mcu.kv_code_read(0, 5, false, 512);
    EXPECT_EQ(k512.bytes, 512u * 128);  // head_dim=128, 1 B codes
    const auto k1 = mcu.kv_code_read(0, 5, false, 1);
    EXPECT_EQ(k1.addr, k512.addr);  // history always starts at the head base
}

TEST(Mcu, KvHeadsAndStreamsDisjoint) {
    const Mcu mcu = llama_mcu();
    const auto k_h0 = mcu.kv_code_read(0, 0, false, 1024);
    const auto k_h1 = mcu.kv_code_read(0, 1, false, 1024);
    const auto v_h0 = mcu.kv_code_read(0, 0, true, 1024);
    EXPECT_GE(k_h1.addr, k_h0.addr + k_h0.bytes);
    const bool disjoint = v_h0.addr >= k_h0.addr + 32ull * 1024 * 128 ||
                          v_h0.addr + v_h0.bytes <= k_h0.addr;
    EXPECT_TRUE(disjoint);
}

TEST(Mcu, KvWriteTargetsTokenSlot) {
    const Mcu mcu = llama_mcu();
    const auto w0 = mcu.kv_code_write(2, 3, false, 0);
    const auto w9 = mcu.kv_code_write(2, 3, false, 9);
    EXPECT_EQ(w0.bytes, 128u);
    EXPECT_EQ(w9.addr, w0.addr + 9 * 128);
    EXPECT_EQ(w9.dir, memsim::Dir::kWrite);
}

TEST(Mcu, PackWriteScheduleEvery16) {
    const Mcu mcu = llama_mcu();
    for (std::size_t t = 0; t < 64; ++t) {
        EXPECT_EQ(mcu.pack_write_due(t), t % 16 == 15) << t;
    }
    const auto p15 = mcu.kv_pack_write(0, 0, false, 15);
    const auto p31 = mcu.kv_pack_write(0, 0, false, 31);
    EXPECT_EQ(p15.bytes, 64u);
    EXPECT_EQ(p31.addr, p15.addr + 64);
    EXPECT_THROW((void)mcu.kv_pack_write(0, 0, false, 14), efld::Error);
}

TEST(Mcu, PackReadRoundsUpTo16) {
    const Mcu mcu = llama_mcu();
    EXPECT_EQ(mcu.kv_pack_read(0, 0, false, 1).bytes, 64u);
    EXPECT_EQ(mcu.kv_pack_read(0, 0, false, 16).bytes, 64u);
    EXPECT_EQ(mcu.kv_pack_read(0, 0, false, 17).bytes, 128u);
}

TEST(Mcu, Kv16SchemeHasNoPacks) {
    model::QuantScheme s = model::QuantScheme::w4a16_kv8();
    s.kv_bits = 16;
    // KV16 doubles the cache; 1024-token reservation no longer fits beside
    // the weights, which is itself a result — use a shorter context here.
    model::ModelConfig cfg = model::ModelConfig::llama2_7b();
    cfg.max_seq_len = 512;
    Mcu mcu(cfg, s);
    EXPECT_EQ(mcu.kv_pack_read(0, 0, false, 100).bytes, 0u);
    EXPECT_FALSE(mcu.pack_write_due(15));
}

TEST(Mcu, TinyModelFitsEasily) {
    Mcu mcu(model::ModelConfig::tiny_512(), model::QuantScheme::w4a16_kv8());
    EXPECT_LT(mcu.map().utilization(), 0.05);
}

TEST(Mcu, Fp16SchemeDoesNotFit) {
    // LLaMA2-7B at fp16 must blow the 4 GiB map — the motivating failure.
    EXPECT_THROW(Mcu(model::ModelConfig::llama2_7b(), model::QuantScheme::fp16_baseline()),
                 efld::Error);
}

}  // namespace
}  // namespace efld::accel
