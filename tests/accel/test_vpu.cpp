// VPU: dequantization unit and FP16 dot engine.
#include <gtest/gtest.h>

#include "accel/vpu.hpp"
#include "common/rng.hpp"
#include "quant/weight_format.hpp"

namespace efld::accel {
namespace {

TEST(DequantUnit, MatchesScalarFormula) {
    Word512 w;
    for (std::size_t i = 0; i < kVpuLanes; ++i) {
        w.set_nibble(i, static_cast<std::uint8_t>(i % 16));
    }
    const Fp16 scale = Fp16::from_float(0.125f);
    const auto lanes = DequantUnit::run(w, scale, 7);
    for (std::size_t i = 0; i < kVpuLanes; ++i) {
        const float expect = (static_cast<float>(i % 16) - 7.0f) * 0.125f;
        EXPECT_FLOAT_EQ(lanes[i].to_float(), expect) << i;
    }
}

TEST(DequantUnit, CodesOverloadAgrees) {
    Xoshiro256 rng(1);
    Word512 w;
    std::vector<std::uint8_t> codes(kVpuLanes);
    for (std::size_t i = 0; i < kVpuLanes; ++i) {
        codes[i] = static_cast<std::uint8_t>(rng.below(16));
        w.set_nibble(i, codes[i]);
    }
    const Fp16 s = Fp16::from_float(0.07f);
    const auto a = DequantUnit::run(w, s, 3);
    const auto b = DequantUnit::run(codes, s, 3);
    for (std::size_t i = 0; i < kVpuLanes; ++i) EXPECT_EQ(a[i].bits(), b[i].bits());
}

TEST(DequantUnit, KvVariant) {
    const std::vector<std::uint8_t> codes{0, 100, 200, 255};
    quant::KvQuantParams p{Fp16::from_float(0.5f), 100};
    const auto vals = DequantUnit::run_kv(codes, p);
    EXPECT_FLOAT_EQ(vals[0].to_float(), -50.0f);
    EXPECT_FLOAT_EQ(vals[1].to_float(), 0.0f);
    EXPECT_FLOAT_EQ(vals[2].to_float(), 50.0f);
    EXPECT_FLOAT_EQ(vals[3].to_float(), 77.5f);
}

TEST(DotEngine, TreeSumSmall) {
    std::vector<Fp16> v;
    for (const float f : {1.0f, 2.0f, 3.0f, 4.0f, 5.0f}) v.push_back(Fp16::from_float(f));
    EXPECT_FLOAT_EQ(DotEngine::tree_sum(v).to_float(), 15.0f);
}

TEST(DotEngine, TreeSumEmptyAndSingle) {
    EXPECT_TRUE(DotEngine::tree_sum({}).is_zero());
    const std::vector<Fp16> one{Fp16::from_float(-2.5f)};
    EXPECT_FLOAT_EQ(DotEngine::tree_sum(one).to_float(), -2.5f);
}

TEST(DotEngine, TreeSumIsDeterministicBinaryTree) {
    // The tree reduction order is fixed — the same inputs must give
    // bit-identical results run to run (RTL equivalence requirement).
    Xoshiro256 rng(2);
    std::vector<Fp16> v(128);
    for (auto& x : v) x = Fp16::from_float(static_cast<float>(rng.gaussian()));
    const Fp16 a = DotEngine::tree_sum(v);
    const Fp16 b = DotEngine::tree_sum(v);
    EXPECT_EQ(a.bits(), b.bits());
}

TEST(DotEngine, Dot128CloseToFloat) {
    Xoshiro256 rng(3);
    std::vector<Fp16> a(128), b(128);
    double exact = 0;
    for (std::size_t i = 0; i < 128; ++i) {
        a[i] = Fp16::from_float(static_cast<float>(rng.gaussian(0, 0.1)));
        b[i] = Fp16::from_float(static_cast<float>(rng.gaussian(0, 0.1)));
        exact += static_cast<double>(a[i].to_float()) * b[i].to_float();
    }
    EXPECT_NEAR(DotEngine::dot128(a, b).to_float(), exact, 0.02);
}

TEST(DotEngine, DotHandlesNonMultipleLengths) {
    std::vector<Fp16> a(200, Fp16::one()), b(200, Fp16::one());
    EXPECT_FLOAT_EQ(DotEngine::dot(a, b).to_float(), 200.0f);
}

TEST(DotEngine, GemvMatchesQuantizedReference) {
    // The full path: quantize -> pack stream -> VPU gemv must match the
    // scalar dequantized GEMV within fp16 accumulation error.
    Xoshiro256 rng(4);
    const std::size_t rows = 8, cols = 512;
    std::vector<float> w(rows * cols);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
    const auto q = quant::QuantizedLinear::quantize(w, rows, cols, {});
    const auto stream = quant::pack_weight_stream(q);

    std::vector<float> xf(cols);
    for (auto& v : xf) v = static_cast<float>(rng.gaussian(0.0, 0.5));
    const auto x = to_fp16(xf);

    std::vector<Fp16> y(rows);
    DotEngine::gemv(stream, rows, cols, x, y);
    const auto y_ref = q.gemv_reference(to_float(x));
    for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_NEAR(y[r].to_float(), y_ref[r], 0.05f + 0.02f * std::abs(y_ref[r])) << r;
    }
}

TEST(DotEngine, GemvCycles) {
    EXPECT_EQ(DotEngine::gemv_cycles(4096, 4096), 4096u * 32);
    EXPECT_EQ(DotEngine::gemv_cycles(128, 128), 128u);
}

TEST(Fp16Bridge, RoundTrips) {
    const std::vector<float> xs{0.0f, 1.0f, -2.5f, 100.0f};
    const auto h = to_fp16(xs);
    const auto back = to_float(h);
    for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_FLOAT_EQ(back[i], xs[i]);
}

}  // namespace
}  // namespace efld::accel
