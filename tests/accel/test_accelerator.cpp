// Full functional accelerator vs. the software reference engines.
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "model/reference_engine.hpp"

namespace efld::accel {
namespace {

struct Fixture {
    model::ModelWeights fw;
    model::QuantizedModelWeights qw;
    PackedModel packed;

    explicit Fixture(const model::ModelConfig& cfg, std::uint64_t seed = 42)
        : fw(model::ModelWeights::synthetic(cfg, seed)),
          qw(model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{})),
          packed(PackedModel::build(qw)) {}
};

const Fixture& micro_fixture() {
    static const Fixture f(model::ModelConfig::micro_256());
    return f;
}

TEST(Accelerator, LogitsFiniteAndShaped) {
    Accelerator acc(micro_fixture().packed);
    const StepResult r = acc.step(5);
    ASSERT_EQ(r.logits.size(), micro_fixture().packed.config.vocab_size);
    for (const float v : r.logits) EXPECT_TRUE(std::isfinite(v));
}

TEST(Accelerator, MatchesQuantizedSoftwareTwin) {
    // The W4A16+KV8 reference engine is the software twin of the datapath;
    // logits must agree closely (differences: fp16 arithmetic, LUT rope/exp).
    Accelerator acc(micro_fixture().packed);
    model::ReferenceEngine twin(micro_fixture().qw, /*use_kv8=*/true);
    std::vector<float> la, lt;
    for (const std::int32_t t : {1, 7, 3, 9, 2}) {
        la = acc.step(t).logits;
        lt = twin.forward(t);
    }
    EXPECT_GT(efld::cosine_similarity(la, lt), 0.995);
}

TEST(Accelerator, CloseToFloatReference) {
    // End-to-end quantization + fp16 error vs. the pure float model.
    Accelerator acc(micro_fixture().packed);
    model::ReferenceEngine golden(micro_fixture().fw);
    std::vector<float> la, lg;
    for (const std::int32_t t : {4, 8, 15, 16}) {
        la = acc.step(t).logits;
        lg = golden.forward(t);
    }
    // Synthetic gaussian weights: W4 + KV8 + fp16 accumulation lands ~0.94;
    // the tight check against the *quantized* twin is the bit-level one.
    EXPECT_GT(efld::cosine_similarity(la, lg), 0.92);
}

TEST(Accelerator, ArgmaxAgreementWithTwin) {
    // Same top-1 token on a short greedy rollout.
    Accelerator acc(micro_fixture().packed);
    model::ReferenceEngine twin(micro_fixture().qw, true);
    std::int32_t ta = 3, tt = 3;
    for (int i = 0; i < 6; ++i) {
        const auto la = acc.step(ta).logits;
        const auto lt = twin.forward(tt);
        ta = model::Sampler::argmax(la);
        tt = model::Sampler::argmax(lt);
        EXPECT_EQ(ta, tt) << "step " << i;
    }
}

TEST(Accelerator, DeterministicAcrossRuns) {
    Accelerator a(micro_fixture().packed), b(micro_fixture().packed);
    for (const std::int32_t t : {2, 4, 6}) {
        const auto la = a.step(t).logits;
        const auto lb = b.step(t).logits;
        EXPECT_EQ(la, lb);
    }
}

TEST(Accelerator, ResetRestoresState) {
    Accelerator acc(micro_fixture().packed);
    const auto first = acc.step(9).logits;
    (void)acc.step(1);
    acc.reset();
    EXPECT_EQ(acc.position(), 0u);
    EXPECT_EQ(acc.step(9).logits, first);
}

TEST(Accelerator, TimingAttachedToSteps) {
    Accelerator acc(micro_fixture().packed);
    const StepResult r = acc.step(1);
    EXPECT_GT(r.timing.total_ns, 0.0);
    EXPECT_GT(r.timing.weight_bytes, 0u);
}

TEST(Accelerator, TimingOptional) {
    AcceleratorOptions opts;
    opts.collect_timing = false;
    Accelerator acc(micro_fixture().packed, opts);
    EXPECT_EQ(acc.step(1).timing.total_ns, 0.0);
}

TEST(Accelerator, ScaleZeroFifoFollowsSchedule) {
    Accelerator acc(micro_fixture().packed);
    const auto& cfg = micro_fixture().packed.config;
    for (int t = 0; t < 16; ++t) (void)acc.step(1);
    // After 16 tokens every (layer, head, K|V) stream flushed exactly once.
    EXPECT_EQ(acc.scale_zero_fifo().words_flushed(),
              2u * cfg.n_layers * cfg.n_kv_heads);
}

TEST(Accelerator, GenerateProducesTokensAndTiming) {
    Accelerator acc(micro_fixture().packed);
    model::Sampler sampler({.temperature = 0.0f});
    const std::vector<std::int32_t> prompt{1, 2, 3};
    const GenerationResult g = acc.generate(prompt, 5, sampler);
    EXPECT_EQ(g.tokens.size(), 5u);
    EXPECT_GT(g.total_ns, 0.0);
    EXPECT_GT(g.tokens_per_s(), 0.0);
}

TEST(Accelerator, GenerateStopsAtEos) {
    Accelerator acc(micro_fixture().packed);
    model::Sampler sampler({.temperature = 0.0f});
    // Use the greedy token after the prompt as the EOS: generation must stop
    // after emitting it once.
    Accelerator probe(micro_fixture().packed);
    std::vector<float> logits;
    for (const std::int32_t t : {1, 2}) logits = probe.step(t).logits;
    const std::int32_t eos = model::Sampler::argmax(logits);

    const std::vector<std::int32_t> prompt{1, 2};
    const GenerationResult g = acc.generate(prompt, 10, sampler, eos);
    ASSERT_EQ(g.tokens.size(), 1u);
    EXPECT_EQ(g.tokens[0], eos);
}

TEST(Accelerator, RejectsOutOfRangeToken) {
    Accelerator acc(micro_fixture().packed);
    EXPECT_THROW((void)acc.step(-1), efld::Error);
    EXPECT_THROW(
        (void)acc.step(static_cast<std::int32_t>(micro_fixture().packed.config.vocab_size)),
        efld::Error);
}

TEST(Accelerator, GqaModelWorks) {
    model::ModelConfig cfg = model::ModelConfig::micro_256();
    cfg.name = "micro-gqa";
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    const Fixture f(cfg, 7);
    Accelerator acc(f.packed);
    model::ReferenceEngine twin(f.qw, true);
    std::vector<float> la, lt;
    for (const std::int32_t t : {1, 2, 3, 4}) {
        la = acc.step(t).logits;
        lt = twin.forward(t);
    }
    EXPECT_GT(efld::cosine_similarity(la, lt), 0.99);
}

}  // namespace
}  // namespace efld::accel
