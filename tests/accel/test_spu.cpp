// SPU submodules vs. the float reference kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/hw_exp.hpp"
#include "accel/serial_to_parallel.hpp"
#include "accel/spu_quant.hpp"
#include "accel/spu_rmsnorm.hpp"
#include "accel/spu_rope.hpp"
#include "accel/spu_silu.hpp"
#include "accel/spu_softmax.hpp"
#include "accel/vpu.hpp"
#include "common/rng.hpp"
#include "model/kernels.hpp"
#include "quant/kvquant.hpp"

namespace efld::accel {
namespace {

TEST(HwExp, MatchesLibmWithinLutError) {
    HwExp hw;
    for (float x = -10.0f; x <= 5.0f; x += 0.0371f) {
        const float got = hw.exp(Fp16::from_float(x)).to_float();
        const float want = std::exp(x);
        EXPECT_NEAR(got, want, want * 3e-3f + 1e-6f) << "x=" << x;
    }
}

TEST(HwExp, SaturationBehaviour) {
    HwExp hw;
    EXPECT_EQ(hw.exp(Fp16::from_float(-100.0f)).to_float(), 0.0f);
    EXPECT_TRUE(hw.exp(Fp16::from_float(100.0f)).is_inf());
    EXPECT_FLOAT_EQ(hw.exp(Fp16::zero()).to_float(), 1.0f);
}

TEST(HwExp, SigmoidSymmetry) {
    HwExp hw;
    for (float x = -6.0f; x <= 6.0f; x += 0.5f) {
        const float s = hw.sigmoid(Fp16::from_float(x)).to_float();
        const float s_neg = hw.sigmoid(Fp16::from_float(-x)).to_float();
        EXPECT_NEAR(s + s_neg, 1.0f, 5e-3f) << x;
    }
}

TEST(SinCosRom, MatchesLibmAcrossQuadrants) {
    SinCosRom rom;
    for (double a = -10.0; a < 10.0; a += 0.0173) {
        EXPECT_NEAR(rom.sin(a).to_float(), std::sin(a), 2e-3) << a;
        EXPECT_NEAR(rom.cos(a).to_float(), std::cos(a), 2e-3) << a;
    }
}

TEST(InvFreqRom, MatchesClosedForm) {
    InvFreqRom rom(10000.0f);
    const std::size_t d = 128;
    for (std::size_t j = 0; j < d / 2; ++j) {
        const double want =
            std::pow(10000.0, -2.0 * static_cast<double>(j) / static_cast<double>(d));
        EXPECT_NEAR(rom.freq(j, d), want, want * 1e-9) << j;
    }
}

TEST(SpuRope, MatchesReferenceKernel) {
    Xoshiro256 rng(1);
    SpuRope rope;
    for (const std::size_t pos : {0u, 1u, 17u, 500u, 1023u}) {
        std::vector<float> vf(128);
        for (auto& x : vf) x = static_cast<float>(rng.gaussian());
        auto vh = to_fp16(vf);

        model::rope_rotate(vf, pos, 10000.0f);
        rope.run(vh, pos);
        for (std::size_t i = 0; i < vf.size(); ++i) {
            EXPECT_NEAR(vh[i].to_float(), vf[i], 0.02f) << "pos=" << pos << " i=" << i;
        }
    }
}

TEST(SpuRope, CycleCountIsVectorLength) {
    SpuRope rope;
    std::vector<Fp16> v(128, Fp16::one());
    EXPECT_EQ(rope.run(v, 3).cycles, 128u);
}

TEST(SpuRmsNorm, MatchesReference) {
    Xoshiro256 rng(2);
    std::vector<float> xf(256), wf(256);
    for (auto& v : xf) v = static_cast<float>(rng.gaussian());
    for (auto& v : wf) v = static_cast<float>(1.0 + 0.1 * rng.gaussian());
    std::vector<float> ref(256);
    model::rmsnorm(xf, wf, 1e-5f, ref);

    SpuRmsNorm rms;
    const auto xh = to_fp16(xf), wh = to_fp16(wf);
    std::vector<Fp16> out(256);
    rms.run(xh, wh, 1e-5f, out);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(out[i].to_float(), ref[i], 0.01f + 0.01f * std::abs(ref[i])) << i;
    }
}

TEST(SpuRmsNorm, BypassHalvesCycles) {
    SpuRmsNorm rms;
    std::vector<Fp16> x(256, Fp16::one()), w(256, Fp16::one()), out(256);
    const auto full = rms.run(x, w, 1e-5f, out);
    const auto bypass = rms.run(x, w, 1e-5f, out, SpuRmsNorm::square_sum(x));
    EXPECT_EQ(full.cycles, 2u * 256 + 16);
    EXPECT_EQ(bypass.cycles, 256u + 16);
}

TEST(SpuRmsNorm, BypassProducesSameResult) {
    Xoshiro256 rng(3);
    std::vector<float> xf(128);
    for (auto& v : xf) v = static_cast<float>(rng.gaussian());
    const auto x = to_fp16(xf);
    std::vector<Fp16> w(128, Fp16::one()), a(128), b(128);
    SpuRmsNorm rms;
    rms.run(x, w, 1e-5f, a);
    rms.run(x, w, 1e-5f, b, SpuRmsNorm::square_sum(x));
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits(), b[i].bits());
}

TEST(SpuSoftmax, MatchesReference) {
    Xoshiro256 rng(4);
    HwExp hw;
    SpuSoftmax sm(hw);
    std::vector<float> xf(300);
    for (auto& v : xf) v = static_cast<float>(rng.gaussian(0.0, 3.0));
    std::vector<float> ref(300);
    model::softmax(xf, ref);

    const auto x = to_fp16(xf);
    std::vector<Fp16> out(300);
    sm.run(x, out);
    float sum = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_NEAR(out[i].to_float(), ref[i], 0.01f) << i;
        sum += out[i].to_float();
    }
    EXPECT_NEAR(sum, 1.0f, 0.02f);
}

TEST(SpuSoftmax, StableUnderLargeInputs) {
    HwExp hw;
    SpuSoftmax sm(hw);
    std::vector<Fp16> x{Fp16::from_float(60000.0f), Fp16::from_float(60000.0f)};
    std::vector<Fp16> out(2);
    sm.run(x, out);
    EXPECT_NEAR(out[0].to_float(), 0.5f, 0.01f);
    EXPECT_NEAR(out[1].to_float(), 0.5f, 0.01f);
}

TEST(SpuSoftmax, ThreePassCycleCount) {
    HwExp hw;
    SpuSoftmax sm(hw);
    std::vector<Fp16> x(100, Fp16::one()), out(100);
    EXPECT_EQ(sm.run(x, out).cycles, 3u * 100 + 16);
}

TEST(SpuSilu, MatchesReference) {
    Xoshiro256 rng(5);
    HwExp hw;
    SpuSilu silu(hw);
    std::vector<float> gf(200), uf(200);
    for (auto& v : gf) v = static_cast<float>(rng.gaussian(0.0, 2.0));
    for (auto& v : uf) v = static_cast<float>(rng.gaussian());
    std::vector<float> ref(200);
    model::silu_gate(gf, uf, ref);

    std::vector<Fp16> out(200);
    silu.run(to_fp16(gf), to_fp16(uf), out);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(out[i].to_float(), ref[i], 0.02f + 0.01f * std::abs(ref[i])) << i;
    }
}

TEST(SpuQuant, AgreesWithOfflineKvQuant) {
    Xoshiro256 rng(6);
    std::vector<float> xf(128);
    for (auto& v : xf) v = static_cast<float>(rng.gaussian());
    // Snap to fp16 resolution first: the SPU sees fp16 inputs.
    auto xh = to_fp16(xf);
    const auto xf16 = to_float(xh);

    SpuQuant sq;
    const auto hw = sq.run(xh);
    const auto sw = quant::kv_quantize(xf16);
    EXPECT_EQ(hw.params.scale.bits(), sw.params.scale.bits());
    EXPECT_EQ(hw.params.zero, sw.params.zero);
    EXPECT_EQ(hw.codes, sw.codes);
}

TEST(SpuQuant, TwoPassCycleCount) {
    SpuQuant sq;
    std::vector<Fp16> x(128, Fp16::one());
    EXPECT_EQ(sq.run(x).cycles.cycles, 2u * 128 + 8);
}

TEST(SerialToParallel, EmitsEvery64Bytes) {
    SerialToParallel s2p;
    for (int i = 0; i < 63; ++i) {
        EXPECT_FALSE(s2p.push_byte(static_cast<std::uint8_t>(i)).has_value());
    }
    const auto word = s2p.push_byte(63);
    ASSERT_TRUE(word.has_value());
    for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(word->byte(i), i);
    EXPECT_EQ(s2p.words_emitted(), 1u);
}

TEST(SerialToParallel, HalfLanes) {
    SerialToParallel s2p;
    for (int i = 0; i < 31; ++i) {
        EXPECT_FALSE(s2p.push_half(Fp16::from_float(static_cast<float>(i))).has_value());
    }
    const auto word = s2p.push_half(Fp16::from_float(31.0f));
    ASSERT_TRUE(word.has_value());
    EXPECT_FLOAT_EQ(word->half(31).to_float(), 31.0f);
}

TEST(SerialToParallel, DrainPartial) {
    SerialToParallel s2p;
    (void)s2p.push_byte(0xAB);
    const auto word = s2p.drain();
    ASSERT_TRUE(word.has_value());
    EXPECT_EQ(word->byte(0), 0xAB);
    EXPECT_EQ(word->byte(1), 0);
    EXPECT_FALSE(s2p.drain().has_value());
}

}  // namespace
}  // namespace efld::accel
