// PackedModel: the DDR image's geometry must agree with both the footprint
// arithmetic and the MCU's address plan — three independent derivations of
// the same bytes.
#include <gtest/gtest.h>

#include "accel/mcu.hpp"
#include "accel/packed_model.hpp"
#include "common/check.hpp"
#include "model/config.hpp"

namespace efld::accel {
namespace {

PackedModel build_tiny() {
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::tiny_512(), 31);
    const auto qw = model::QuantizedModelWeights::quantize(fw, quant::GroupQuantConfig{});
    return PackedModel::build(qw);
}

TEST(PackedModel, StreamBytesMatchMcuPlan) {
    const PackedModel p = build_tiny();
    const Mcu mcu(p.config, model::QuantScheme::w4a16_kv8());

    std::uint64_t mcu_bytes = 0;
    for (std::size_t l = 0; l < p.config.n_layers; ++l) {
        for (const MatrixId m : {MatrixId::kWq, MatrixId::kWk, MatrixId::kWv,
                                 MatrixId::kWo, MatrixId::kWGate, MatrixId::kWUp,
                                 MatrixId::kWDown}) {
            mcu_bytes += mcu.matrix_stream_bytes(m) / p.config.n_layers * 1;
        }
    }
    // Per-layer stream bytes from the image itself.
    std::uint64_t image_bytes = 0;
    for (const auto& l : p.layers) {
        image_bytes += l.wq.stream_bytes() + l.wk.stream_bytes() + l.wv.stream_bytes() +
                       l.wo.stream_bytes() + l.w_gate.stream_bytes() +
                       l.w_up.stream_bytes() + l.w_down.stream_bytes();
    }
    // The MCU geometry is per layer; multiply back out.
    std::uint64_t mcu_total = 0;
    for (const MatrixId m : {MatrixId::kWq, MatrixId::kWk, MatrixId::kWv, MatrixId::kWo,
                             MatrixId::kWGate, MatrixId::kWUp, MatrixId::kWDown}) {
        mcu_total += mcu.matrix_stream_bytes(m);
    }
    mcu_total *= p.config.n_layers;
    EXPECT_EQ(image_bytes, mcu_total);
    (void)mcu_bytes;
}

TEST(PackedModel, StreamBytesMatchFootprintArithmetic) {
    const PackedModel p = build_tiny();
    const model::ModelFootprint f =
        model::compute_footprint(p.config, model::QuantScheme::w4a16_kv8());
    // weight_stream_bytes covers layers + lm_head + norms; footprint's
    // layer_weight + lm_head + norm must agree within format tail padding.
    const double ours = static_cast<double>(p.weight_stream_bytes());
    const double ref = static_cast<double>(f.layer_weight_bytes + f.lm_head_bytes +
                                           f.norm_bytes);
    EXPECT_NEAR(ours, ref, ref * 0.005);
    EXPECT_EQ(p.embedding_bytes(), f.embedding_bytes);
}

TEST(PackedModel, GroupCountsConsistent) {
    const PackedModel p = build_tiny();
    const auto& cfg = p.config;
    EXPECT_EQ(p.layers[0].wq.num_groups(), cfg.dim * cfg.dim / 128);
    EXPECT_EQ(p.layers[0].w_gate.num_groups(), cfg.hidden_dim * cfg.dim / 128);
    EXPECT_EQ(p.lm_head.num_groups(), cfg.vocab_size * cfg.dim / 128);
}

TEST(PackedModel, RejectsWrongGroupSize) {
    const auto fw = model::ModelWeights::synthetic(model::ModelConfig::micro_256(), 3);
    quant::GroupQuantConfig qc;
    qc.group_size = 64;
    const auto qw = model::QuantizedModelWeights::quantize(fw, qc);
    EXPECT_THROW((void)PackedModel::build(qw), efld::Error);
}

}  // namespace
}  // namespace efld::accel
