// LatencyHistogram: bucket geometry, the quantile error bound the log-scale
// layout promises, lock-free concurrent recording, and cross-shard merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace efld::obs {
namespace {

TEST(LatencyHistogram, SmallValuesAreExact) {
    // Values below 16 land in unit-wide buckets: no quantization at all.
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(LatencyHistogram::bucket_of(v), static_cast<std::size_t>(v));
        EXPECT_EQ(LatencyHistogram::bucket_lower_bound(
                      LatencyHistogram::bucket_of(v)),
                  v);
        EXPECT_EQ(LatencyHistogram::bucket_upper_bound(
                      LatencyHistogram::bucket_of(v)),
                  v);
    }
}

TEST(LatencyHistogram, BucketBoundsContainTheirValues) {
    // Every probed value must fall inside [lower, upper] of its own bucket,
    // and buckets must be monotone in the value.
    std::size_t prev = 0;
    for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 / 2 + 1) {
        const std::size_t b = LatencyHistogram::bucket_of(v);
        EXPECT_GE(v, LatencyHistogram::bucket_lower_bound(b)) << "value " << v;
        EXPECT_LE(v, LatencyHistogram::bucket_upper_bound(b)) << "value " << v;
        EXPECT_GE(b, prev) << "bucket index regressed at value " << v;
        prev = b;
    }
    // The largest representable value still maps inside the table.
    EXPECT_LT(LatencyHistogram::bucket_of(~0ull),
              histogram_detail::kBucketCount);
}

TEST(LatencyHistogram, RelativeBucketWidthIsBounded) {
    // The quantile error bound: above the exact range, each bucket spans at
    // most 1/8 of its lower bound (3 sub-bucket bits).
    for (std::uint64_t v = 16; v < (1ull << 48); v = v * 2 + 7) {
        const std::size_t b = LatencyHistogram::bucket_of(v);
        const std::uint64_t lo = LatencyHistogram::bucket_lower_bound(b);
        const std::uint64_t hi = LatencyHistogram::bucket_upper_bound(b);
        EXPECT_LE(hi - lo, lo / 8) << "bucket " << b << " at value " << v;
    }
}

TEST(LatencyHistogram, CountSumMinMax) {
    LatencyHistogram h;
    EXPECT_TRUE(h.snapshot().empty());
    h.record(100);
    h.record(300);
    h.record(200);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 600u);
    EXPECT_EQ(s.min, 100u);
    EXPECT_EQ(s.max, 300u);
    EXPECT_DOUBLE_EQ(s.mean(), 200.0);
    h.reset();
    EXPECT_TRUE(h.snapshot().empty());
}

TEST(LatencyHistogram, QuantileWithinRelativeErrorBound) {
    // Record 1..N exactly once each: the true q-quantile is q*N, and the
    // histogram's answer must be within one bucket width (12.5% relative).
    LatencyHistogram h;
    constexpr std::uint64_t kN = 100000;
    for (std::uint64_t v = 1; v <= kN; ++v) h.record(v);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, kN);
    for (const double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999}) {
        const double truth = q * static_cast<double>(kN);
        const double got = static_cast<double>(s.quantile(q));
        EXPECT_NEAR(got, truth, truth * 0.125 + 1.0) << "quantile " << q;
    }
    // Extremes clamp to the observed range.
    EXPECT_EQ(s.quantile(0.0), 1u);
    EXPECT_EQ(s.quantile(1.0), kN);
}

TEST(LatencyHistogram, QuantileOfSingleValue) {
    LatencyHistogram h;
    h.record(12345);
    const HistogramSnapshot s = h.snapshot();
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(s.quantile(q), 12345u);
    }
}

TEST(LatencyHistogram, EmptySnapshotIsSafe) {
    const HistogramSnapshot s = LatencyHistogram().snapshot();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.quantile(0.5), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    const LatencySummary sum = LatencySummary::from(s);
    EXPECT_EQ(sum.count, 0u);
    EXPECT_EQ(sum.p99_ns, 0u);
}

TEST(LatencyHistogram, ConcurrentWritersLoseNothing) {
    // The TSan job runs this: racing relaxed-atomic recorders must neither
    // data-race nor drop counts.
    LatencyHistogram h;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                h.record(i * static_cast<std::uint64_t>(t + 1) + 1);
            }
        });
    }
    for (auto& w : writers) w.join();
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, (kPerThread - 1) * kThreads + 1);
}

TEST(LatencyHistogram, MergeEqualsSingleHistogram) {
    // Cluster aggregation: merging shard snapshots must answer exactly like
    // one histogram that saw every sample.
    LatencyHistogram all;
    LatencyHistogram shard_a;
    LatencyHistogram shard_b;
    for (std::uint64_t v = 1; v <= 5000; ++v) {
        all.record(v);
        (v % 2 == 0 ? shard_a : shard_b).record(v);
    }
    HistogramSnapshot merged = shard_a.snapshot();
    merged.merge(shard_b.snapshot());
    const HistogramSnapshot truth = all.snapshot();
    EXPECT_EQ(merged.count, truth.count);
    EXPECT_EQ(merged.sum, truth.sum);
    EXPECT_EQ(merged.min, truth.min);
    EXPECT_EQ(merged.max, truth.max);
    for (const double q : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(merged.quantile(q), truth.quantile(q)) << "quantile " << q;
    }
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
    LatencyHistogram h;
    h.record(42);
    HistogramSnapshot s = h.snapshot();
    s.merge(HistogramSnapshot{});
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 42u);
    EXPECT_EQ(s.max, 42u);

    HistogramSnapshot empty;
    empty.merge(h.snapshot());
    EXPECT_EQ(empty.count, 1u);
    EXPECT_EQ(empty.min, 42u);
}

TEST(LatencySummary, FromSnapshot) {
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
    const LatencySummary s = LatencySummary::from(h.snapshot());
    EXPECT_EQ(s.count, 1000u);
    EXPECT_NEAR(static_cast<double>(s.p50_ns), 500.0, 500.0 * 0.125 + 1.0);
    EXPECT_NEAR(static_cast<double>(s.p95_ns), 950.0, 950.0 * 0.125 + 1.0);
    EXPECT_NEAR(static_cast<double>(s.p99_ns), 990.0, 990.0 * 0.125 + 1.0);
    EXPECT_EQ(s.max_ns, 1000u);
    EXPECT_EQ(s.mean_ns, 500u);  // mean 500.5, truncated to whole ns
}

}  // namespace
}  // namespace efld::obs
