// RollingWindow: bucket wraparound, idle-gap expiry, the trailing-window
// query, cross-shard snapshot merge, windowed quantiles, and concurrent
// recording — all under ManualClock so every boundary is exact.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/rolling_window.hpp"

namespace efld::obs {
namespace {

RollingWindow::Options small_opts(std::uint64_t bucket_ns, std::size_t buckets,
                                  bool hist = false) {
    RollingWindow::Options o;
    o.bucket_ns = bucket_ns;
    o.buckets = buckets;
    o.with_histogram = hist;
    return o;
}

TEST(RollingWindow, CountsLandInTheCurrentBucketWindow) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 8));
    clock.set_ns(0);
    win.add(3);
    clock.set_ns(150);  // bucket 1
    win.add(2);

    // 1-bucket window: only the current bucket.
    EXPECT_EQ(win.over(100).count, 2u);
    // 2-bucket window: both.
    EXPECT_EQ(win.over(200).count, 5u);
    EXPECT_DOUBLE_EQ(win.over(200).rate_per_s(), 5.0 * 1e9 / 200.0);
}

TEST(RollingWindow, RingWraparoundRecyclesLappedBuckets) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 4));  // ring spans 400ns
    for (std::uint64_t b = 0; b < 10; ++b) {
        clock.set_ns(b * 100);
        win.add(1);
    }
    // At t=900 (bucket 9) the ring holds buckets 6, 7, 8, 9 — the earlier
    // occupants of those slots were recycled, not double counted.
    EXPECT_EQ(win.over(400).count, 4u);
    EXPECT_EQ(win.over(100).count, 1u);
}

TEST(RollingWindow, IdleGapExpiresStaleBuckets) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 8));
    clock.set_ns(0);
    win.add(5);
    // A long idle gap, shorter than the ring's lap: the old bucket still
    // physically sits in the ring but its index is out of any window.
    clock.set_ns(650);
    EXPECT_EQ(win.over(200).count, 0u);
    EXPECT_EQ(win.over(800).count, 5u);  // clamped to the ring span (8x100)
    // After a full lap the slot gets recycled on next touch.
    clock.set_ns(800);
    win.add(1);
    EXPECT_EQ(win.over(800).count, 1u);
}

TEST(RollingWindow, RecordTracksMinMaxSumPerWindow) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 8));
    clock.set_ns(0);
    win.record(40);
    win.record(10);
    clock.set_ns(100);
    win.record(70);

    const WindowSnapshot w1 = win.over(100);
    EXPECT_EQ(w1.count, 1u);
    EXPECT_EQ(w1.min, 70u);
    EXPECT_EQ(w1.max, 70u);
    const WindowSnapshot w2 = win.over(200);
    EXPECT_EQ(w2.count, 3u);
    EXPECT_EQ(w2.sum, 120u);
    EXPECT_EQ(w2.min, 10u);
    EXPECT_EQ(w2.max, 70u);
}

TEST(RollingWindow, WindowedHistogramYieldsQuantiles) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(1'000'000'000, 64, /*hist=*/true));
    clock.set_ns(0);
    for (std::uint64_t v = 1; v <= 100; ++v) win.record(v * 1'000'000);
    const HistogramSnapshot h = win.over(10'000'000'000).histogram();
    EXPECT_EQ(h.count, 100u);
    // Log-bucket quantiles: p50 lands within a bucket width of 50ms.
    const std::uint64_t p50 = h.quantile(0.5);
    EXPECT_GE(p50, 40'000'000u);
    EXPECT_LE(p50, 70'000'000u);
}

TEST(RollingWindow, SnapshotsMergeAcrossShards) {
    ManualClock clock;
    RollingWindow a(&clock, small_opts(100, 8, true));
    RollingWindow b(&clock, small_opts(100, 8, true));
    clock.set_ns(50);
    a.record(10);
    a.record(30);
    b.record(200);

    WindowSnapshot merged = a.over(100);
    merged.merge(b.over(100));
    EXPECT_EQ(merged.count, 3u);
    EXPECT_EQ(merged.sum, 240u);
    EXPECT_EQ(merged.min, 10u);
    EXPECT_EQ(merged.max, 200u);
    EXPECT_DOUBLE_EQ(merged.rate_per_s(), 3.0 * 1e9 / 100.0);
    EXPECT_EQ(merged.histogram().count, 3u);

    // Merging an empty shard changes nothing.
    RollingWindow idle(&clock, small_opts(100, 8, true));
    merged.merge(idle.over(100));
    EXPECT_EQ(merged.count, 3u);
    EXPECT_EQ(merged.min, 10u);
}

TEST(RollingWindow, ConcurrentRecordsAllLand) {
    ManualClock clock;
    clock.set_ns(42);
    RollingWindow win(&clock, small_opts(1'000'000'000, 4));
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) win.add();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(win.over(1'000'000'000).count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(RollingWindow, BackwardsClockStepExcludesFutureBuckets) {
    // A clock that steps backwards (ManualClock rewound; ntp-ish slews on a
    // misconfigured timebase) leaves buckets stamped with FUTURE indices.
    // over() must not count them toward the now-earlier window.
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 8));
    clock.set_ns(900);
    win.add(5);  // bucket index 9
    clock.set_ns(300);  // rewind: current bucket is now 3
    EXPECT_EQ(win.over(400).count, 0u);  // the future bucket is invisible
    win.add(2);  // lands in bucket 3, recycling nothing
    EXPECT_EQ(win.over(400).count, 2u);
    // Once the clock re-advances past the stale stamp, new traffic lands in
    // fresh buckets and the 1-bucket window sees exactly it.
    clock.set_ns(1000);
    win.add(1);
    EXPECT_EQ(win.over(100).count, 1u);
}

TEST(RollingWindow, PauseLongerThanRingSpanDropsEverything) {
    // Ring spans 800ns; a pause far past that must expire every bucket, even
    // the ones whose slots no new traffic has recycled.
    ManualClock clock;
    RollingWindow win(&clock, small_opts(100, 8));
    for (std::uint64_t b = 0; b < 8; ++b) {
        clock.set_ns(b * 100);
        win.add(1);
    }
    EXPECT_EQ(win.over(800).count, 8u);
    clock.set_ns(100'000);  // long pause, no touches
    EXPECT_EQ(win.over(800).count, 0u);
    // The window clamps to the ring span: asking for more history than the
    // ring retains cannot resurrect recycled slots either.
    EXPECT_EQ(win.over(1'000'000).count, 0u);
    // Traffic resumes cleanly after the gap.
    win.add(3);
    EXPECT_EQ(win.over(800).count, 3u);
}

TEST(RollingWindow, ZeroOptionsClampSafely) {
    ManualClock clock;
    RollingWindow win(&clock, small_opts(0, 0));
    win.add();
    EXPECT_EQ(win.over(0).count, 1u);
    EXPECT_GT(win.over(0).window_ns, 0u);
}

}  // namespace
}  // namespace efld::obs
