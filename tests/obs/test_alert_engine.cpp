// AlertEngine: spec grammar, the pending→firing→resolved state machine, and
// the determinism contract — a scripted evaluation sequence reproduces its
// transition timeline bit-identically.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alert_engine.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/time_series.hpp"

using namespace efld::obs;

namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

TimeSeriesStore::Options small_opts() {
    TimeSeriesStore::Options o;
    o.levels = {{1 * kSec, 16}, {4 * kSec, 16}};
    return o;
}

MetricsSnapshot gauge_snap(const std::string& name, double v) {
    MetricsSnapshot s;
    s.set_gauge(name, v);
    return s;
}

}  // namespace

TEST(AlertRuleParse, ThresholdSpecFillsEveryField) {
    const AlertRule r =
        parse_alert_rule("hot=threshold:serve_queue_depth:gt:8:2s");
    EXPECT_EQ(r.name, "hot");
    EXPECT_EQ(r.kind, AlertRule::Kind::kThreshold);
    EXPECT_EQ(r.metric, "serve_queue_depth");
    EXPECT_EQ(r.op, AlertOp::kGt);
    EXPECT_DOUBLE_EQ(r.value, 8.0);
    EXPECT_EQ(r.for_ns, 2 * kSec);
    EXPECT_EQ(r.resolve_ns, 2 * kSec);  // hysteresis defaults to `for`

    // Bare durations are milliseconds; "ms" is explicit.
    EXPECT_EQ(parse_alert_rule("threshold:m:ge:1:1500").for_ns,
              1'500'000'000ull);
    EXPECT_EQ(parse_alert_rule("threshold:m:lt:1:250ms").for_ns,
              250'000'000ull);
    EXPECT_EQ(parse_alert_rule("threshold:m:le:1:0").for_ns, 0ull);
}

TEST(AlertRuleParse, BurnRateSpecFillsEveryField) {
    const AlertRule r =
        parse_alert_rule("slow=burnrate:serve_ttft_ns:250:99:14.4:1s:250ms");
    EXPECT_EQ(r.name, "slow");
    EXPECT_EQ(r.kind, AlertRule::Kind::kBurnRate);
    EXPECT_EQ(r.metric, "serve_ttft_ns");
    EXPECT_EQ(r.slo_threshold_ns, 250'000'000ull);
    EXPECT_DOUBLE_EQ(r.objective, 0.99);  // "99" normalizes to 0.99
    EXPECT_DOUBLE_EQ(r.factor, 14.4);
    EXPECT_EQ(r.long_window_ns, 1 * kSec);
    EXPECT_EQ(r.short_window_ns, 250'000'000ull);
    EXPECT_EQ(r.resolve_ns, r.short_window_ns);

    const AlertRule frac = parse_alert_rule("burnrate:h:50:0.9:2:4s:2s");
    EXPECT_DOUBLE_EQ(frac.objective, 0.9);
}

TEST(AlertRuleParse, ListSplitsOnCommasAndNamesTheAnonymous) {
    const std::vector<AlertRule> rules = parse_alert_rules(
        "threshold:a:gt:1:1s,,deep=threshold:b:gt:2:1s,burnrate:h:50:99:2:4s:1s");
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(rules[0].name, "rule0");
    EXPECT_EQ(rules[1].name, "deep");
    EXPECT_EQ(rules[2].name, "rule2");
}

TEST(AlertRuleParse, RejectsMalformedSpecs) {
    EXPECT_THROW(parse_alert_rule(""), std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("gauge:a:gt:1:1s"), std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("threshold:a:gt:1"), std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("threshold:a:between:1:1s"),
                 std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("threshold:a:gt:eight:1s"),
                 std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("threshold:a:gt:1:soon"),
                 std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("threshold::gt:1:1s"), std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("burnrate:h:50:99:2:4s"),
                 std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("burnrate:h:50:0:2:4s:1s"),
                 std::invalid_argument);  // objective out of (0,1)
    EXPECT_THROW(parse_alert_rule("burnrate:h:50:200:2:4s:1s"),
                 std::invalid_argument);
    EXPECT_THROW(parse_alert_rule("burnrate:h:50:99:0:4s:1s"),
                 std::invalid_argument);  // factor must be positive
    EXPECT_THROW(parse_alert_rule("burnrate:h:50:99:2:1s:4s"),
                 std::invalid_argument);  // short window exceeds long
}

TEST(AlertEngine, ThresholdLifecycleWithHysteresis) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    engine.add_rule(parse_alert_rule("hot=threshold:depth:gt:8:2s"));

    store.ingest(gauge_snap("depth", 10.0), 1 * kSec);
    engine.evaluate(1 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kPending);  // true, not held yet
    engine.evaluate(2 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kPending);  // held 1s of 2s
    engine.evaluate(3 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kFiring);  // held the full `for`
    EXPECT_EQ(engine.firing_count(), 1u);

    // Clearing the condition does not resolve until it stays clear for the
    // hysteresis hold.
    store.ingest(gauge_snap("depth", 0.0), 4 * kSec);
    engine.evaluate(4 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kFiring);
    engine.evaluate(5 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kFiring);
    engine.evaluate(6 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kInactive);
    EXPECT_EQ(engine.firing_count(), 0u);

    const std::vector<AlertEngine::Transition> tl = engine.timeline();
    ASSERT_EQ(tl.size(), 3u);
    EXPECT_EQ(tl[0].ts_ns, 1 * kSec);
    EXPECT_EQ(tl[0].to, AlertState::kPending);
    EXPECT_DOUBLE_EQ(tl[0].value, 10.0);
    EXPECT_EQ(tl[1].ts_ns, 3 * kSec);
    EXPECT_EQ(tl[1].from, AlertState::kPending);
    EXPECT_EQ(tl[1].to, AlertState::kFiring);
    EXPECT_EQ(tl[2].ts_ns, 6 * kSec);
    EXPECT_EQ(tl[2].from, AlertState::kFiring);
    EXPECT_EQ(tl[2].to, AlertState::kInactive);
    EXPECT_DOUBLE_EQ(tl[2].value, 0.0);
}

TEST(AlertEngine, PendingCancelsWithoutFiring) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    engine.add_rule(parse_alert_rule("threshold:depth:gt:8:5s"));

    store.ingest(gauge_snap("depth", 10.0), 1 * kSec);
    engine.evaluate(1 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kPending);
    store.ingest(gauge_snap("depth", 1.0), 2 * kSec);
    engine.evaluate(2 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kInactive);

    // A pending→inactive cancel is not a firing: the counters stay zero.
    MetricsSnapshot snap;
    engine.export_into(snap);
    EXPECT_EQ(snap.counters.at("serve_alerts_fired_total"), 0u);
    EXPECT_EQ(snap.counters.at("serve_alerts_resolved_total"), 0u);

    // A series with no data is never a violation.
    AlertEngine empty(&store);
    empty.add_rule(parse_alert_rule("threshold:nope:gt:0:0"));
    empty.evaluate(3 * kSec);
    EXPECT_EQ(empty.state(0), AlertState::kInactive);
}

TEST(AlertEngine, BurnRateFiresOnBothWindowsAndResolvesAfterRecovery) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    // 50ms SLO at 90%: the error budget is 0.1, so an all-bad window burns at
    // 10x — past the 2x factor. `for` is implicitly 0 for burn-rate rules:
    // the windows themselves provide the significance hold.
    engine.add_rule(parse_alert_rule("slow=burnrate:lat:50:0.9:2:4s:2s"));

    LatencyHistogram h;
    MetricsSnapshot s;
    h.record(1'000'000);  // good 1ms baseline sample
    s.histograms["lat"] = h.snapshot();
    store.ingest(s, 1 * kSec);
    engine.evaluate(1 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kInactive);  // baseline, no deltas

    for (std::uint64_t t = 2; t <= 4; ++t) {
        h.record(100'000'000);  // 100ms: every post-baseline sample is bad
        s.histograms["lat"] = h.snapshot();
        store.ingest(s, t * kSec);
        engine.evaluate(t * kSec);
        EXPECT_EQ(engine.state(0), AlertState::kFiring) << "t=" << t;
    }

    // Recovery: only good samples from t=5 on. The short window goes clean
    // two seconds before the long one — and that is exactly when the clear
    // clock starts.
    for (std::uint64_t t = 5; t <= 8; ++t) {
        h.record(1'000'000);
        s.histograms["lat"] = h.snapshot();
        store.ingest(s, t * kSec);
        engine.evaluate(t * kSec);
    }
    EXPECT_EQ(engine.state(0), AlertState::kFiring);  // hysteresis holds
    h.record(1'000'000);
    s.histograms["lat"] = h.snapshot();
    store.ingest(s, 9 * kSec);
    engine.evaluate(9 * kSec);
    EXPECT_EQ(engine.state(0), AlertState::kInactive);

    MetricsSnapshot snap;
    engine.export_into(snap);
    EXPECT_EQ(snap.counters.at("serve_alerts_fired_total"), 1u);
    EXPECT_EQ(snap.counters.at("serve_alerts_resolved_total"), 1u);
}

TEST(AlertEngine, SubscribersSeeEveryTransitionInOrder) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    engine.add_rule(parse_alert_rule("hot=threshold:depth:gt:8:1s"));

    std::vector<std::string> log;
    engine.subscribe([&](const AlertRule& rule,
                         const AlertEngine::Transition& t) {
        log.push_back(rule.name + ":" + std::string(to_string(t.from)) + ">" +
                      std::string(to_string(t.to)));
    });

    store.ingest(gauge_snap("depth", 10.0), 1 * kSec);
    engine.evaluate(1 * kSec);
    engine.evaluate(2 * kSec);
    store.ingest(gauge_snap("depth", 0.0), 3 * kSec);
    engine.evaluate(3 * kSec);
    engine.evaluate(4 * kSec);

    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], "hot:inactive>pending");
    EXPECT_EQ(log[1], "hot:pending>firing");
    EXPECT_EQ(log[2], "hot:firing>inactive");
}

TEST(AlertEngine, ExportAndJsonCarryPerRuleState) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    engine.add_rule(parse_alert_rule("hot=threshold:depth:gt:8:0"));
    engine.add_rule(parse_alert_rule("cold=threshold:depth:lt:-1:10s"));

    store.ingest(gauge_snap("depth", 10.0), 1 * kSec);
    engine.evaluate(1 * kSec);  // for=0: pending and firing in one pass
    EXPECT_EQ(engine.state(0), AlertState::kFiring);

    MetricsSnapshot snap;
    engine.export_into(snap);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_alerts_firing"), 1.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_alerts_pending"), 0.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_alert_state_hot"), 2.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_alert_state_cold"), 0.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_alert_value_hot"), 10.0);
    EXPECT_EQ(snap.counters.at("serve_alerts_fired_total"), 1u);

    const std::string json = engine.to_json();
    EXPECT_NE(json.find("\"name\":\"hot\""), std::string::npos);
    EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
    EXPECT_NE(json.find("\"from\":\"pending\""), std::string::npos);
    EXPECT_NE(json.find("\"to\":\"firing\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(AlertEngine, TimelineRingStaysBounded) {
    TimeSeriesStore store(small_opts());
    AlertEngine engine(&store);
    // for=0 and resolve=0: a value flip produces transitions every pass.
    engine.add_rule(parse_alert_rule("flap=threshold:depth:gt:8:0"));
    for (std::uint64_t t = 1; t <= 400; ++t) {
        store.ingest(gauge_snap("depth", t % 2 == 0 ? 10.0 : 0.0), t * kSec);
        engine.evaluate(t * kSec);
    }
    const std::vector<AlertEngine::Transition> tl = engine.timeline();
    EXPECT_EQ(tl.size(), 256u);  // the documented cap
    for (std::size_t i = 1; i < tl.size(); ++i) {
        EXPECT_LE(tl[i - 1].ts_ns, tl[i].ts_ns);  // oldest first, ordered
    }
}

TEST(AlertEngine, ScriptedRunReproducesBitIdentically) {
    // The acceptance bar for the whole subsystem: identical scripted inputs
    // produce an identical transition timeline and identical JSON, bit for
    // bit — no wall-clock, no randomness anywhere in the evaluate path.
    const auto run = [] {
        TimeSeriesStore store(small_opts());
        AlertEngine engine(&store);
        engine.add_rule(parse_alert_rule("hot=threshold:depth:gt:4:2s"));
        engine.add_rule(parse_alert_rule("slow=burnrate:lat:50:0.9:2:4s:2s"));
        LatencyHistogram h;
        for (std::uint64_t t = 1; t <= 12; ++t) {
            MetricsSnapshot s;
            s.set_gauge("depth", t >= 3 && t <= 7 ? 9.0 : 1.0);
            h.record(t >= 4 && t <= 6 ? 100'000'000 : 1'000'000);
            s.histograms["lat"] = h.snapshot();
            store.ingest(s, t * kSec);
            engine.evaluate(t * kSec);
        }
        return std::make_pair(engine.timeline(), engine.to_json());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.second, b.second);
    ASSERT_EQ(a.first.size(), b.first.size());
    ASSERT_GE(a.first.size(), 4u);  // both rules fired and resolved
    for (std::size_t i = 0; i < a.first.size(); ++i) {
        EXPECT_EQ(a.first[i].ts_ns, b.first[i].ts_ns);
        EXPECT_EQ(a.first[i].rule, b.first[i].rule);
        EXPECT_EQ(a.first[i].from, b.first[i].from);
        EXPECT_EQ(a.first[i].to, b.first[i].to);
        EXPECT_EQ(a.first[i].value, b.first[i].value);  // bit-identical
    }
}
