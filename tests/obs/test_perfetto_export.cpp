// Perfetto/Chrome-trace export: process/thread metadata per shard, phase
// slices from profiler spans, lifecycle instants, per-(request, shard)
// residence slices, and the failover flow pair that stitches one request's
// life across two shards — all asserted on fabricated records so every
// byte of the JSON is predictable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/perfetto_export.hpp"
#include "obs/trace.hpp"

namespace efld::obs {
namespace {

// One request (id 7) that lives on shard 0 until a scripted kill, then
// finishes on shard 1 — the exact shape ClusterRouter failover produces.
std::vector<TraceRecord> failover_lifecycle() {
    return {
        {1'000, 7, 0, TraceEvent::kSubmitted, 5},
        {2'000, 7, 0, TraceEvent::kAdmitted, 0},
        {9'000, 7, 0, TraceEvent::kFailoverHarvest, 3},
        {11'000, 7, 1, TraceEvent::kResubmitted, 1},
        {15'000, 7, 1, TraceEvent::kFirstToken, 42},
        {20'000, 7, 1, TraceEvent::kRetired, 0},
    };
}

bool contains(const std::string& hay, const std::string& needle) {
    return hay.find(needle) != std::string::npos;
}

TEST(PerfettoExport, EmptyInputsStillFormAValidEnvelope) {
    const std::string json = to_perfetto_json({}, {});
    EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST(PerfettoExport, ShardsGetProcessAndThreadMetadata) {
    const std::string json = to_perfetto_json(failover_lifecycle(), {});
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
                         "\"tid\":0,\"args\":{\"name\":\"shard 0\"}}"));
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
                         "\"tid\":0,\"args\":{\"name\":\"shard 1\"}}"));
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
                         "\"tid\":1,\"args\":{\"name\":\"driver\"}}"));
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                         "\"tid\":3,\"args\":{\"name\":\"requests\"}}"));
}

TEST(PerfettoExport, ProfilerSpansBecomePhaseSlices) {
    ShardSpans s;
    s.shard = 2;
    SpanRecord span;
    span.phase = Phase::kDecodeBatch;
    span.shard = 2;
    span.begin_ns = 4'000;
    span.end_ns = 6'500;
    s.spans.push_back(span);
    const std::string json = to_perfetto_json({}, {s});
    // ts/dur are microseconds with sub-µs precision: 4µs start, 2.5µs long.
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"X\",\"name\":\"decode_batch\","
                         "\"cat\":\"phase\",\"pid\":2,\"tid\":1,"
                         "\"ts\":4.000,\"dur\":2.500}"));
    // The shard also got metadata even with no lifecycle events.
    EXPECT_TRUE(contains(json, "\"args\":{\"name\":\"shard 2\"}"));
}

TEST(PerfettoExport, LifecycleEventsBecomeInstantsWithRequestArgs) {
    const std::string json = to_perfetto_json(failover_lifecycle(), {});
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"i\",\"name\":\"submitted\","
                         "\"cat\":\"lifecycle\",\"pid\":0,\"tid\":2,"
                         "\"ts\":1.000,\"s\":\"t\","
                         "\"args\":{\"request\":7,\"arg\":5}}"));
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"i\",\"name\":\"first_token\","
                         "\"cat\":\"lifecycle\",\"pid\":1,\"tid\":2,"
                         "\"ts\":15.000,\"s\":\"t\","
                         "\"args\":{\"request\":7,\"arg\":42}}"));
}

TEST(PerfettoExport, ResidenceSlicesSpanEachShardsStay) {
    const std::string json = to_perfetto_json(failover_lifecycle(), {});
    // Shard 0 hosted the request from submit (1µs) to harvest (9µs).
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"X\",\"name\":\"request 7\","
                         "\"cat\":\"request\",\"pid\":0,\"tid\":3,"
                         "\"ts\":1.000,\"dur\":8.000,"
                         "\"args\":{\"request\":7}}"));
    // Shard 1 hosted it from resubmit (11µs) to retire (20µs).
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"X\",\"name\":\"request 7\","
                         "\"cat\":\"request\",\"pid\":1,\"tid\":3,"
                         "\"ts\":11.000,\"dur\":9.000,"
                         "\"args\":{\"request\":7}}"));
}

TEST(PerfettoExport, SingleEventResidenceGetsARenderableFloor) {
    // One lone event would yield a zero-width slice; the exporter pads it to
    // 1µs so the UI renders it and flow arrows can bind.
    const std::vector<TraceRecord> one = {
        {5'000, 3, 0, TraceEvent::kSubmitted, 1}};
    const std::string json = to_perfetto_json(one, {});
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"X\",\"name\":\"request 3\","
                         "\"cat\":\"request\",\"pid\":0,\"tid\":3,"
                         "\"ts\":5.000,\"dur\":1.000,"
                         "\"args\":{\"request\":3}}"));
}

TEST(PerfettoExport, FailoverBecomesAFlowPairSharingTheRequestId) {
    const std::string json = to_perfetto_json(failover_lifecycle(), {});
    // "s" on the dying shard at the harvest...
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"s\",\"name\":\"failover\","
                         "\"cat\":\"failover\",\"id\":7,\"pid\":0,"
                         "\"tid\":3,\"ts\":9.000}"));
    // ..."f" (binding to the enclosing slice) on the survivor, same id.
    EXPECT_TRUE(contains(json,
                         "{\"ph\":\"f\",\"name\":\"failover\","
                         "\"cat\":\"failover\",\"id\":7,\"pid\":1,"
                         "\"tid\":3,\"ts\":11.000,\"bp\":\"e\"}"));
}

TEST(PerfettoExport, NoFailoverMeansNoFlowEvents) {
    const std::vector<TraceRecord> plain = {
        {1'000, 9, 0, TraceEvent::kSubmitted, 2},
        {3'000, 9, 0, TraceEvent::kRetired, 0},
    };
    const std::string json = to_perfetto_json(plain, {});
    EXPECT_FALSE(contains(json, "\"ph\":\"s\""));
    EXPECT_FALSE(contains(json, "\"ph\":\"f\""));
}

}  // namespace
}  // namespace efld::obs
