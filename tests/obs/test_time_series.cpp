// TimeSeriesStore + MetricsSampler: multi-resolution retention, counter→rate
// conversion, histogram deltas, lap-boundary downsampling, and the clock
// edge cases (backwards reads, pauses longer than retention) — all under
// ManualClock so every boundary is exact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/time_series.hpp"

namespace efld::obs {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

// A small store: 1s x 8 / 4s x 8 — laps arrive fast enough to test.
TimeSeriesStore::Options small_opts() {
    TimeSeriesStore::Options o;
    o.levels = {{kSec, 8}, {4 * kSec, 8}};
    return o;
}

MetricsSnapshot gauge_snap(const std::string& name, double v) {
    MetricsSnapshot s;
    s.set_gauge(name, v);
    return s;
}

TEST(TimeSeries, GaugesStoreAndQueryInOrder) {
    TimeSeriesStore store(small_opts());
    for (std::uint64_t t = 1; t <= 5; ++t) {
        EXPECT_TRUE(store.ingest(gauge_snap("g", static_cast<double>(t)), t * kSec));
    }
    const std::vector<SeriesPoint> pts = store.query("g", 0, 10 * kSec);
    ASSERT_EQ(pts.size(), 5u);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(pts[i].t_ns, (i + 1) * kSec);
        EXPECT_DOUBLE_EQ(pts[i].value, static_cast<double>(i + 1));
    }
    const auto last = store.latest("g");
    ASSERT_TRUE(last.has_value());
    EXPECT_DOUBLE_EQ(last->value, 5.0);
    EXPECT_TRUE(store.query("unknown", 0, 10 * kSec).empty());
    EXPECT_FALSE(store.latest("unknown").has_value());
}

TEST(TimeSeries, CountersBecomePerSecondRates) {
    TimeSeriesStore store(small_opts());
    MetricsSnapshot s;
    s.set_counter("c", 100);
    store.ingest(s, 1 * kSec);  // baseline: no rate point yet
    EXPECT_TRUE(store.query("c", 0, 10 * kSec).empty());

    s.set_counter("c", 150);
    store.ingest(s, 2 * kSec);  // +50 over 1s = 50/s
    s.set_counter("c", 150);
    store.ingest(s, 3 * kSec);  // idle second = 0/s

    const std::vector<SeriesPoint> pts = store.query("c", 0, 10 * kSec);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_DOUBLE_EQ(pts[0].value, 50.0);
    EXPECT_DOUBLE_EQ(pts[1].value, 0.0);
}

TEST(TimeSeries, CounterResetRestartsCleanly) {
    TimeSeriesStore store(small_opts());
    MetricsSnapshot s;
    s.set_counter("c", 1000);
    store.ingest(s, 1 * kSec);
    s.set_counter("c", 30);  // process restarted: counter went backwards
    store.ingest(s, 2 * kSec);
    const std::vector<SeriesPoint> pts = store.query("c", 0, 10 * kSec);
    ASSERT_EQ(pts.size(), 1u);
    // Reset-safe: the delta is the NEW value, not a huge unsigned wrap.
    EXPECT_DOUBLE_EQ(pts[0].value, 30.0);
}

TEST(TimeSeries, BackwardsAndFrozenClockDropsIngest) {
    TimeSeriesStore store(small_opts());
    EXPECT_TRUE(store.ingest(gauge_snap("g", 1.0), 5 * kSec));
    EXPECT_FALSE(store.ingest(gauge_snap("g", 2.0), 5 * kSec));  // frozen
    EXPECT_FALSE(store.ingest(gauge_snap("g", 3.0), 3 * kSec));  // backwards
    EXPECT_EQ(store.dropped_ingests(), 2u);
    EXPECT_EQ(store.ingests(), 1u);
    // The stored history is exactly the one accepted ingest.
    const std::vector<SeriesPoint> pts = store.query("g", 0, 10 * kSec);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_DOUBLE_EQ(pts[0].value, 1.0);
}

TEST(TimeSeries, PauseLongerThanRetentionServesFromCoarseLevel) {
    TimeSeriesStore store(small_opts());
    store.ingest(gauge_snap("g", 1.0), 1 * kSec);
    // A pause far past the fine ring's 8s retention; the next ingest must
    // not resurrect stale fine buckets into the query.
    store.ingest(gauge_snap("g", 9.0), 100 * kSec);
    const std::vector<SeriesPoint> recent =
        store.query("g", 95 * kSec, 101 * kSec);
    ASSERT_EQ(recent.size(), 1u);
    EXPECT_DOUBLE_EQ(recent[0].value, 9.0);
    // Asking for the full span falls to the coarse level, which has also
    // lapped (100s > 4s x 8): only the fresh point survives anywhere.
    const std::vector<SeriesPoint> all = store.query("g", 0, 101 * kSec);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_DOUBLE_EQ(all[0].value, 9.0);
}

TEST(TimeSeries, LapBoundaryDownsamplesIntoCoarseLevel) {
    TimeSeriesStore store(small_opts());
    // 20 ingests of value t at t=1..20s: the 1s ring (8 slots) laps twice;
    // the 4s ring (8 slots, 32s span) holds everything.
    for (std::uint64_t t = 1; t <= 20; ++t) {
        store.ingest(gauge_snap("g", static_cast<double>(t)), t * kSec);
    }
    // A query inside the fine retention is served at 1s grain.
    const std::vector<SeriesPoint> fine = store.query("g", 14 * kSec, 20 * kSec);
    ASSERT_EQ(fine.size(), 7u);
    EXPECT_DOUBLE_EQ(fine.front().value, 14.0);
    // A query past it falls back to the 4s level, where each bucket is the
    // MEAN of its ingests — eager downsampling preserved the lapped seconds.
    const std::vector<SeriesPoint> coarse = store.query("g", 0, 20 * kSec);
    ASSERT_FALSE(coarse.empty());
    // t=4..7s live in 4s-bucket index 1: mean of 4,5,6,7 = 5.5 — data the
    // fine ring lost to its second lap.
    bool found = false;
    for (const SeriesPoint& p : coarse) {
        if (p.t_ns == 4 * kSec) {
            EXPECT_DOUBLE_EQ(p.value, 5.5);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TimeSeries, HistogramDeltasRebuildWindowedDistribution) {
    TimeSeriesStore store(small_opts());
    LatencyHistogram h;
    MetricsSnapshot s;

    h.record(1'000'000);  // 1ms
    s.histograms["lat"] = h.snapshot();
    store.ingest(s, 1 * kSec);  // baseline

    h.record(100'000'000);  // 100ms, landing in the 1..2s interval
    s.histograms["lat"] = h.snapshot();
    store.ingest(s, 2 * kSec);

    h.record(200'000'000);  // 200ms in the 5..6s interval
    s.histograms["lat"] = h.snapshot();
    store.ingest(s, 6 * kSec);

    // A trailing-2s window sees ONLY the 200ms sample: the 100ms delta sits
    // in the [2s,3s) bucket, wholly before from=4s.
    const HistogramSnapshot w1 = store.histogram_over("lat", 2 * kSec, 6 * kSec);
    EXPECT_EQ(w1.count, 1u);
    EXPECT_GE(w1.max, 200'000'000u * 7 / 8);
    // The whole-history window sees both post-baseline samples.
    const HistogramSnapshot w2 = store.histogram_over("lat", 6 * kSec, 6 * kSec);
    EXPECT_EQ(w2.count, 2u);

    // bad_fraction over 50ms: both windowed samples exceed it.
    EXPECT_DOUBLE_EQ(store.bad_fraction("lat", 50'000'000, 6 * kSec, 6 * kSec),
                     1.0);
    // Over 500ms nothing does.
    EXPECT_DOUBLE_EQ(store.bad_fraction("lat", 500'000'000, 6 * kSec, 6 * kSec),
                     0.0);
    EXPECT_DOUBLE_EQ(store.bad_fraction("nope", 1, kSec, 6 * kSec), 0.0);
}

TEST(TimeSeries, QueryJsonAndDumpJsonAreWellFormed) {
    TimeSeriesStore store(small_opts());
    store.ingest(gauge_snap("queue_depth", 3.0), 1 * kSec);
    store.ingest(gauge_snap("queue_depth", 5.0), 2 * kSec);
    const std::string one = store.query_json("queue_depth", 10 * kSec, 2 * kSec);
    EXPECT_NE(one.find("\"series\":\"queue_depth\""), std::string::npos);
    EXPECT_NE(one.find("[1000000000,3]"), std::string::npos);
    EXPECT_NE(one.find("[2000000000,5]"), std::string::npos);
    const std::string unknown = store.query_json("nope", 10 * kSec, 2 * kSec);
    EXPECT_NE(unknown.find("\"points\":[]"), std::string::npos);
    const std::string dump = store.dump_json(10 * kSec, 2 * kSec);
    EXPECT_EQ(dump.front(), '{');
    EXPECT_EQ(dump.back(), '}');
    EXPECT_NE(dump.find("\"queue_depth\""), std::string::npos);
}

TEST(TimeSeries, SamplerSampleOnceIngestsAndNotifies) {
    ManualClock clock;
    TimeSeriesStore store(small_opts());
    MetricsSampler::Options so;
    so.clock = &clock;
    double gauge_value = 7.0;
    MetricsSampler sampler(
        [&] { return gauge_snap("g", gauge_value); }, &store, so);
    std::vector<std::uint64_t> evals;
    sampler.set_on_sample([&](std::uint64_t now) { evals.push_back(now); });

    clock.set_ns(1 * kSec);
    sampler.sample_once();
    clock.set_ns(2 * kSec);
    gauge_value = 9.0;
    sampler.sample_once();

    EXPECT_EQ(sampler.samples(), 2u);
    ASSERT_EQ(evals.size(), 2u);
    EXPECT_EQ(evals[0], 1 * kSec);
    EXPECT_EQ(evals[1], 2 * kSec);
    const auto last = store.latest("g");
    ASSERT_TRUE(last.has_value());
    EXPECT_DOUBLE_EQ(last->value, 9.0);
}

// The background thread against concurrent queries — the TSan target's meat.
TEST(TimeSeries, SamplerThreadRunsConcurrentWithQueries) {
    TimeSeriesStore store;  // default levels, steady clock timestamps
    std::atomic<int> calls{0};
    MetricsSampler::Options so;
    so.interval_ns = 1'000'000;  // 1ms: plenty of ticks in the test window
    MetricsSampler sampler(
        [&] {
            calls.fetch_add(1, std::memory_order_relaxed);
            MetricsSnapshot s;
            s.set_gauge("g", static_cast<double>(calls.load()));
            s.set_counter("c", static_cast<std::uint64_t>(calls.load()) * 10);
            return s;
        },
        &store, so);
    sampler.start();
    EXPECT_TRUE(sampler.running());
    for (int i = 0; i < 50; ++i) {
        (void)store.latest("g");
        (void)store.query("c", 0, ~std::uint64_t{0} / 2);
        (void)store.series_names();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    EXPECT_GE(sampler.samples(), 1u);
    const std::uint64_t after = sampler.samples();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(sampler.samples(), after);  // really stopped
    sampler.start();  // restartable
    sampler.stop();
}

TEST(TimeSeries, RejectsDegenerateOptions) {
    TimeSeriesStore::Options o;
    o.levels.clear();
    EXPECT_THROW(TimeSeriesStore{o}, Error);
    o.levels = {{0, 4}};
    EXPECT_THROW(TimeSeriesStore{o}, Error);
}

}  // namespace
}  // namespace efld::obs
