// Profiler: scoped spans under ManualClock, step-cost attribution (the
// exact-by-subtraction sim split), span-ring overwrite accounting, the
// enabled gate, and the exported serve_phase_* series.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"

namespace efld::obs {
namespace {

TEST(Profiler, DisabledScopesRecordNothing) {
    Profiler prof;
    EXPECT_FALSE(prof.enabled());
    { const ScopedPhase span(&prof, Phase::kAdmission); }
    { const ScopedPhase span(nullptr, Phase::kSampling); }
    EXPECT_EQ(prof.totals(Phase::kAdmission).count, 0u);
    EXPECT_TRUE(prof.spans().empty());
}

TEST(Profiler, ScopedSpanAccumulatesWallTime) {
    ManualClock clock;
    Profiler prof;
    prof.enable(&clock, 7);
    clock.set_ns(1000);
    {
        const ScopedPhase span(&prof, Phase::kSampling);
        clock.advance_ns(250);
    }
    {
        const ScopedPhase span(&prof, Phase::kSampling);
        clock.advance_ns(50);
    }
    const PhaseTotals t = prof.totals(Phase::kSampling);
    EXPECT_EQ(t.count, 2u);
    EXPECT_EQ(t.wall_ns, 300u);
    const std::vector<SpanRecord> spans = prof.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].phase, Phase::kSampling);
    EXPECT_EQ(spans[0].shard, 7u);
    EXPECT_EQ(spans[0].begin_ns, 1000u);
    EXPECT_EQ(spans[0].end_ns, 1250u);
    EXPECT_EQ(spans[1].begin_ns, 1250u);
}

TEST(Profiler, AttributeStepSplitsSimExactlyBySubtraction) {
    ManualClock clock;
    Profiler prof;
    prof.enable(&clock, 0);
    // 3 lanes, 1 prefilling: prefill gets 1/3 of everything (rounded), decode
    // the exact remainder — the two sim_ns MUST re-sum to the input.
    prof.attribute_step(/*wall_ns=*/900, /*sim_ns=*/1000.0,
                        /*weight_walks=*/1.0, /*prefill_lanes=*/1, /*lanes=*/3);
    const PhaseTotals pre = prof.totals(Phase::kPrefill);
    const PhaseTotals dec = prof.totals(Phase::kDecodeBatch);
    EXPECT_EQ(pre.count, 1u);
    EXPECT_EQ(dec.count, 1u);
    EXPECT_EQ(pre.wall_ns + dec.wall_ns, 900u);
    EXPECT_DOUBLE_EQ(pre.sim_ns + dec.sim_ns, 1000.0);
    EXPECT_DOUBLE_EQ(pre.weight_walks + dec.weight_walks, 1.0);

    // All-decode step: nothing lands on prefill.
    prof.attribute_step(600, 500.0, 1.0, 0, 2);
    EXPECT_EQ(prof.totals(Phase::kPrefill).count, 1u);
    EXPECT_EQ(prof.totals(Phase::kDecodeBatch).count, 2u);
    EXPECT_DOUBLE_EQ(prof.totals(Phase::kPrefill).sim_ns +
                         prof.totals(Phase::kDecodeBatch).sim_ns,
                     1500.0);
}

TEST(Profiler, SpanRingOverwritesOldestAndCountsDrops) {
    ManualClock clock;
    Profiler prof;
    prof.enable(&clock, 0, /*span_capacity=*/4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        clock.set_ns(i * 10);
        prof.record_span(Phase::kRetire, i * 10, i * 10 + 5);
    }
    EXPECT_EQ(prof.spans_dropped(), 6u);
    const std::vector<SpanRecord> spans = prof.spans();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first across the wrap: scopes 6..9 survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(spans[i].begin_ns, (6 + i) * 10);
    }
    EXPECT_EQ(prof.totals(Phase::kRetire).count, 10u);  // totals never drop
}

TEST(Profiler, ExportEmitsSeriesOnlyForActivePhases) {
    ManualClock clock;
    Profiler prof;
    prof.enable(&clock, 0);
    clock.set_ns(0);
    {
        const ScopedPhase span(&prof, Phase::kAdmission);
        clock.advance_ns(40);
    }
    prof.attribute_step(100, 200.0, 1.0, 0, 1);
    MetricsSnapshot snap;
    prof.export_into(snap);
    EXPECT_EQ(snap.counters.at("serve_phase_admission_count_total"), 1u);
    EXPECT_EQ(snap.counters.at("serve_phase_admission_wall_ns_total"), 40u);
    EXPECT_EQ(snap.counters.at("serve_phase_decode_batch_sim_ns_total"), 200u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_phase_decode_batch_weight_walks"),
                     1.0);
    // Untouched phases must stay absent — scrapes report what happened.
    EXPECT_EQ(snap.counters.count("serve_phase_prefill_count_total"), 0u);
    EXPECT_EQ(snap.counters.count("serve_phase_attention_count_total"), 0u);
}

TEST(Profiler, BoundRegistryCarriesWallHistograms) {
    ManualClock clock;
    MetricsRegistry reg;
    Profiler prof;
    prof.enable(&clock, 0);
    prof.bind_registry(reg);
    clock.set_ns(0);
    {
        const ScopedPhase span(&prof, Phase::kQueuePick);
        clock.advance_ns(123);
    }
    const MetricsSnapshot snap = reg.snapshot();
    const HistogramSnapshot& h =
        snap.histograms.at("serve_phase_queue_pick_wall_ns");
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, 123u);
}

TEST(Profiler, ConcurrentSpansKeepTotalsExact) {
    ManualClock clock;
    Profiler prof;
    prof.enable(&clock, 0, /*span_capacity=*/64);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                prof.record_span(Phase::kAttention, 0, 3);
            }
        });
    }
    for (auto& t : threads) t.join();
    const PhaseTotals tot = prof.totals(Phase::kAttention);
    EXPECT_EQ(tot.count, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(tot.wall_ns, static_cast<std::uint64_t>(kThreads * kPerThread * 3));
    EXPECT_EQ(prof.spans().size() + prof.spans_dropped(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Profiler, PhaseNames) {
    EXPECT_STREQ(to_string(Phase::kQueuePick), "queue_pick");
    EXPECT_STREQ(to_string(Phase::kPrefixAdopt), "prefix_adopt");
    EXPECT_STREQ(to_string(Phase::kDecodeBatch), "decode_batch");
    EXPECT_STREQ(to_string(Phase::kRetire), "retire");
}

}  // namespace
}  // namespace efld::obs
