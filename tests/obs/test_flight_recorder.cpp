// FlightRecorder: black-box bundles must land on disk as one JSON object per
// incident, coalesce storms, respect the bundle cap, and never write a
// filename a reason string can weaponize.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/alert_engine.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/time_series.hpp"
#include "obs/trace.hpp"

using namespace efld::obs;

namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

std::string tmp_dir(const char* tag) {
    std::string tmpl = std::string("/tmp/efld_flight_") + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = ::mkdtemp(buf.data());
    efld::check(d != nullptr, "mkdtemp failed");
    return d;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

TEST(FlightRecorder, CaptureWritesACompleteBundle) {
    const std::string dir = tmp_dir("bundle");
    ManualClock clock;
    clock.set_ns(42 * kSec);
    FlightRecorder::Options fo;
    fo.dir = dir;
    fo.clock = &clock;
    FlightRecorder rec(fo);

    MetricsSnapshot metrics;
    metrics.set_gauge("cluster_healthy_shards", 1.0);
    metrics.set_counter("serve_requests_completed", 7);

    std::vector<TraceRecord> trace(1);
    trace[0].ts_ns = 41 * kSec;
    trace[0].request_id = 5;
    trace[0].event = TraceEvent::kShed;
    trace[0].arg = 123;

    std::vector<SpanRecord> spans(1);
    spans[0].shard = 0;
    spans[0].begin_ns = 40 * kSec;
    spans[0].end_ns = 41 * kSec;

    TimeSeriesStore::Options so;
    so.levels = {{1 * kSec, 64}};
    TimeSeriesStore store(so);
    MetricsSnapshot s;
    s.set_gauge("serve_queue_depth", 9.0);
    store.ingest(s, 41 * kSec);

    AlertEngine alerts(&store);
    alerts.add_rule(parse_alert_rule("hot=threshold:serve_queue_depth:gt:8:0"));
    alerts.evaluate(41 * kSec);

    const std::string path =
        rec.capture("alert:hot", metrics, trace, spans, &alerts, &store);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(rec.captures(), 1u);
    EXPECT_EQ(rec.suppressed(), 0u);

    const std::string body = slurp(path);
    EXPECT_EQ(body.front(), '{');
    EXPECT_NE(body.find("\"reason\":\"alert_hot\""), std::string::npos);
    EXPECT_NE(body.find("\"ts_ns\":42000000000"), std::string::npos);
    EXPECT_NE(body.find("\"seq\":0"), std::string::npos);
    EXPECT_NE(body.find("serve_requests_completed\":7"), std::string::npos);
    EXPECT_NE(body.find("\"event\":\"shed\""), std::string::npos);
    EXPECT_NE(body.find("\"profiler_spans\":[{"), std::string::npos);
    EXPECT_NE(body.find("\"name\":\"hot\""), std::string::npos);  // alert json
    EXPECT_NE(body.find("serve_queue_depth"), std::string::npos);  // tsdb tail
}

TEST(FlightRecorder, NullSourcesSerializeAsNull) {
    const std::string dir = tmp_dir("nulls");
    ManualClock clock;
    clock.set_ns(1 * kSec);
    FlightRecorder::Options fo;
    fo.dir = dir;
    fo.clock = &clock;
    FlightRecorder rec(fo);
    const std::string path = rec.capture("shard_failure:0", MetricsSnapshot{},
                                         {}, {}, nullptr, nullptr);
    ASSERT_FALSE(path.empty());
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"alerts\":null"), std::string::npos);
    EXPECT_NE(body.find("\"tsdb\":null"), std::string::npos);
    EXPECT_NE(body.find("\"trace\":[]"), std::string::npos);
}

TEST(FlightRecorder, CoalescesCapturesWithinMinInterval) {
    const std::string dir = tmp_dir("coalesce");
    ManualClock clock;
    clock.set_ns(10 * kSec);
    FlightRecorder::Options fo;
    fo.dir = dir;
    fo.clock = &clock;
    fo.min_interval_ns = 2 * kSec;
    FlightRecorder rec(fo);

    EXPECT_FALSE(
        rec.capture("a", MetricsSnapshot{}, {}, {}, nullptr, nullptr).empty());
    // A storm inside the interval coalesces into the first bundle.
    clock.advance_ns(kSec / 2);
    EXPECT_TRUE(
        rec.capture("b", MetricsSnapshot{}, {}, {}, nullptr, nullptr).empty());
    clock.advance_ns(kSec / 2);
    EXPECT_TRUE(
        rec.capture("c", MetricsSnapshot{}, {}, {}, nullptr, nullptr).empty());
    EXPECT_EQ(rec.captures(), 1u);
    EXPECT_EQ(rec.suppressed(), 2u);
    // Past the interval the next incident records again.
    clock.advance_ns(2 * kSec);
    EXPECT_FALSE(
        rec.capture("d", MetricsSnapshot{}, {}, {}, nullptr, nullptr).empty());
    EXPECT_EQ(rec.captures(), 2u);
}

TEST(FlightRecorder, BundleCapStopsDiskFill) {
    const std::string dir = tmp_dir("cap");
    ManualClock clock;
    clock.set_ns(1 * kSec);
    FlightRecorder::Options fo;
    fo.dir = dir;
    fo.clock = &clock;
    fo.max_bundles = 3;
    fo.min_interval_ns = 0;
    FlightRecorder rec(fo);
    for (int i = 0; i < 10; ++i) {
        clock.advance_ns(kSec);
        (void)rec.capture("flap", MetricsSnapshot{}, {}, {}, nullptr, nullptr);
    }
    EXPECT_EQ(rec.captures(), 3u);
    EXPECT_EQ(rec.suppressed(), 7u);
}

TEST(FlightRecorder, ReasonIsSanitizedInFilenameAndBody) {
    const std::string dir = tmp_dir("sanitize");
    ManualClock clock;
    clock.set_ns(1 * kSec);
    FlightRecorder::Options fo;
    fo.dir = dir;
    fo.clock = &clock;
    FlightRecorder rec(fo);
    const std::string path = rec.capture("alert:../../etc; rm -rf \"x\"",
                                         MetricsSnapshot{}, {}, {}, nullptr,
                                         nullptr);
    ASSERT_FALSE(path.empty());
    // Everything outside [A-Za-z0-9_-] flattens to '_': no path traversal,
    // no quotes able to escape the JSON string.
    EXPECT_EQ(path.find("..", dir.size()), std::string::npos);
    EXPECT_EQ(path.find(';'), std::string::npos);
    EXPECT_EQ(path.find(' '), std::string::npos);
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"reason\":\"alert_______etc__rm_-rf__x_\""),
              std::string::npos);
}

TEST(FlightRecorder, RejectsEmptyDirectory) {
    FlightRecorder::Options fo;
    EXPECT_THROW(FlightRecorder{fo}, efld::Error);
}
