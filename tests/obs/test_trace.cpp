// TraceRecorder: deterministic timestamps through ManualClock, ring
// overwrite accounting, per-request filtering, and the JSONL dump format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace efld::obs {
namespace {

TEST(Trace, EventsKeepManualClockOrder) {
    ManualClock clock;
    TraceRecorder rec(16, &clock);
    clock.set_ns(100);
    rec.record(1, 0, TraceEvent::kSubmitted, 5);
    clock.advance_ns(50);
    rec.record(1, 0, TraceEvent::kAdmitted, 2);
    clock.advance_ns(50);
    rec.record(1, 0, TraceEvent::kFirstToken, 42);

    const std::vector<TraceRecord> events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].ts_ns, 100u);
    EXPECT_EQ(events[0].event, TraceEvent::kSubmitted);
    EXPECT_EQ(events[0].arg, 5u);
    EXPECT_EQ(events[1].ts_ns, 150u);
    EXPECT_EQ(events[1].event, TraceEvent::kAdmitted);
    EXPECT_EQ(events[2].ts_ns, 200u);
    EXPECT_EQ(events[2].event, TraceEvent::kFirstToken);
    EXPECT_EQ(events[2].arg, 42u);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
    ManualClock clock;
    TraceRecorder rec(4, &clock);
    for (std::uint64_t i = 0; i < 10; ++i) {
        clock.set_ns(i);
        rec.record(i, 0, TraceEvent::kSubmitted);
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    const std::vector<TraceRecord> events = rec.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first across the wrap point: requests 6, 7, 8, 9 survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].request_id, 6 + i);
        EXPECT_EQ(events[i].ts_ns, 6 + i);
    }
}

TEST(Trace, ForRequestFiltersAndKeepsOrder) {
    ManualClock clock;
    TraceRecorder rec(16, &clock);
    rec.record(7, 0, TraceEvent::kSubmitted);
    rec.record(8, 0, TraceEvent::kSubmitted);
    rec.record(7, 0, TraceEvent::kAdmitted);
    rec.record(7, 1, TraceEvent::kResubmitted, 1);
    const std::vector<TraceRecord> events = rec.for_request(7);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].event, TraceEvent::kSubmitted);
    EXPECT_EQ(events[1].event, TraceEvent::kAdmitted);
    EXPECT_EQ(events[2].event, TraceEvent::kResubmitted);
    EXPECT_EQ(events[2].shard, 1u);
    EXPECT_TRUE(rec.for_request(99).empty());
}

TEST(Trace, EventNames) {
    EXPECT_STREQ(to_string(TraceEvent::kSubmitted), "submitted");
    EXPECT_STREQ(to_string(TraceEvent::kRetired), "retired");
    EXPECT_STREQ(to_string(TraceEvent::kFailoverHarvest), "failover_harvest");
}

TEST(Trace, DumpJsonl) {
    ManualClock clock;
    clock.set_ns(42);
    TraceRecorder rec(8, &clock);
    rec.record(3, 1, TraceEvent::kFirstToken, 99);
    std::ostringstream out;
    rec.dump_jsonl(out);
    EXPECT_EQ(out.str(),
              "{\"ts_ns\":42,\"request\":3,\"shard\":1,"
              "\"event\":\"first_token\",\"arg\":99}\n");
}

TEST(Trace, ZeroCapacityClampsToOne) {
    TraceRecorder rec(0);
    EXPECT_EQ(rec.capacity(), 1u);
    rec.record(1, 0, TraceEvent::kSubmitted);
    rec.record(2, 0, TraceEvent::kSubmitted);
    EXPECT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec.dropped(), 1u);
    EXPECT_EQ(rec.snapshot()[0].request_id, 2u);
}

}  // namespace
}  // namespace efld::obs
