// TraceRecorder: deterministic timestamps through ManualClock, ring
// overwrite accounting, per-request filtering, and the JSONL dump format.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::obs {
namespace {

TEST(Trace, EventsKeepManualClockOrder) {
    ManualClock clock;
    TraceRecorder rec(16, &clock);
    clock.set_ns(100);
    rec.record(1, 0, TraceEvent::kSubmitted, 5);
    clock.advance_ns(50);
    rec.record(1, 0, TraceEvent::kAdmitted, 2);
    clock.advance_ns(50);
    rec.record(1, 0, TraceEvent::kFirstToken, 42);

    const std::vector<TraceRecord> events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].ts_ns, 100u);
    EXPECT_EQ(events[0].event, TraceEvent::kSubmitted);
    EXPECT_EQ(events[0].arg, 5u);
    EXPECT_EQ(events[1].ts_ns, 150u);
    EXPECT_EQ(events[1].event, TraceEvent::kAdmitted);
    EXPECT_EQ(events[2].ts_ns, 200u);
    EXPECT_EQ(events[2].event, TraceEvent::kFirstToken);
    EXPECT_EQ(events[2].arg, 42u);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
    ManualClock clock;
    TraceRecorder rec(4, &clock);
    for (std::uint64_t i = 0; i < 10; ++i) {
        clock.set_ns(i);
        rec.record(i, 0, TraceEvent::kSubmitted);
    }
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    const std::vector<TraceRecord> events = rec.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first across the wrap point: requests 6, 7, 8, 9 survive.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].request_id, 6 + i);
        EXPECT_EQ(events[i].ts_ns, 6 + i);
    }
}

TEST(Trace, ForRequestFiltersAndKeepsOrder) {
    ManualClock clock;
    TraceRecorder rec(16, &clock);
    rec.record(7, 0, TraceEvent::kSubmitted);
    rec.record(8, 0, TraceEvent::kSubmitted);
    rec.record(7, 0, TraceEvent::kAdmitted);
    rec.record(7, 1, TraceEvent::kResubmitted, 1);
    const std::vector<TraceRecord> events = rec.for_request(7);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].event, TraceEvent::kSubmitted);
    EXPECT_EQ(events[1].event, TraceEvent::kAdmitted);
    EXPECT_EQ(events[2].event, TraceEvent::kResubmitted);
    EXPECT_EQ(events[2].shard, 1u);
    EXPECT_TRUE(rec.for_request(99).empty());
}

TEST(Trace, EventNames) {
    EXPECT_STREQ(to_string(TraceEvent::kSubmitted), "submitted");
    EXPECT_STREQ(to_string(TraceEvent::kRetired), "retired");
    EXPECT_STREQ(to_string(TraceEvent::kFailoverHarvest), "failover_harvest");
}

TEST(Trace, DumpJsonl) {
    ManualClock clock;
    clock.set_ns(42);
    TraceRecorder rec(8, &clock);
    rec.record(3, 1, TraceEvent::kFirstToken, 99);
    std::ostringstream out;
    rec.dump_jsonl(out);
    EXPECT_EQ(out.str(),
              "{\"ts_ns\":42,\"request\":3,\"shard\":1,"
              "\"event\":\"first_token\",\"arg\":99}\n");
}

TEST(Trace, ServeExportsDroppedCounterFromItsRing) {
    // A deliberately tiny ring under real serve traffic must overflow, and
    // the engine's scrape must report exactly what the ring says it lost —
    // dropped trace events are an observability gap worth alerting on.
    auto trace = std::make_shared<TraceRecorder>(4);
    serve::ServeOptions opts;
    opts.max_batch = 2;
    opts.trace = trace;
    runtime::ServeDeployment d = runtime::synthetic_serve(
        model::ModelConfig::micro_256(), 42, opts);
    std::vector<std::future<serve::ServeResult>> futs;
    for (int r = 0; r < 4; ++r) {
        futs.push_back(d.engine->submit("drop probe " + std::to_string(r), 4));
    }
    d.engine->run_until_idle();
    for (auto& f : futs) (void)f.get();

    const MetricsSnapshot snap = d.engine->metrics_snapshot();
    EXPECT_GT(trace->dropped(), 0u);
    EXPECT_EQ(snap.counters.at("serve_trace_dropped_total"), trace->dropped());

    // No recorder configured → the counter must be absent, not zero.
    serve::ServeOptions bare;
    bare.max_batch = 2;
    runtime::ServeDeployment d2 = runtime::synthetic_serve(
        model::ModelConfig::micro_256(), 42, bare);
    auto fut = d2.engine->submit("no trace", 3);
    d2.engine->run_until_idle();
    (void)fut.get();
    EXPECT_EQ(d2.engine->metrics_snapshot().counters.count(
                  "serve_trace_dropped_total"),
              0u);
}

TEST(Trace, ZeroCapacityClampsToOne) {
    TraceRecorder rec(0);
    EXPECT_EQ(rec.capacity(), 1u);
    rec.record(1, 0, TraceEvent::kSubmitted);
    rec.record(2, 0, TraceEvent::kSubmitted);
    EXPECT_EQ(rec.size(), 1u);
    EXPECT_EQ(rec.dropped(), 1u);
    EXPECT_EQ(rec.snapshot()[0].request_id, 2u);
}

}  // namespace
}  // namespace efld::obs
