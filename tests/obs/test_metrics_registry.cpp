// MetricsRegistry: get-or-create stability, snapshot/merge semantics, and
// the Prometheus exposition round trip the wire scrape gate relies on.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics_registry.hpp"

namespace efld::obs {
namespace {

TEST(MetricsRegistry, GetOrCreateReturnsStableRefs) {
    MetricsRegistry reg;
    Counter& c1 = reg.counter("requests");
    Counter& c2 = reg.counter("requests");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    c2.add(4);
    EXPECT_EQ(c1.value(), 7u);

    Gauge& g = reg.gauge("occupancy");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("occupancy").value(), 2.5);

    LatencyHistogram& h1 = reg.histogram("ttft");
    LatencyHistogram& h2 = reg.histogram("ttft");
    EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, SnapshotCapturesEverything) {
    MetricsRegistry reg;
    reg.counter("steps").add(10);
    reg.gauge("queued").set(4.0);
    reg.histogram("lat").record(100);
    reg.histogram("lat").record(300);

    const MetricsSnapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.count("steps"), 1u);
    EXPECT_EQ(s.counters.at("steps"), 10u);
    ASSERT_EQ(s.gauges.count("queued"), 1u);
    EXPECT_DOUBLE_EQ(s.gauges.at("queued"), 4.0);
    ASSERT_EQ(s.histograms.count("lat"), 1u);
    EXPECT_EQ(s.histograms.at("lat").count, 2u);
    EXPECT_EQ(s.histograms.at("lat").sum, 400u);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
    MetricsRegistry reg;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < 1000; ++i) {
                reg.counter("shared").add(1);
                reg.histogram("hist").record(static_cast<std::uint64_t>(i) + 1);
            }
        });
    }
    for (auto& th : threads) th.join();
    const MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counters.at("shared"), 4000u);
    EXPECT_EQ(s.histograms.at("hist").count, 4000u);
}

TEST(MetricsSnapshot, MergeAddsCountersGaugesAndHistogramBuckets) {
    MetricsRegistry a;
    a.counter("requests").add(3);
    a.gauge("active").set(2.0);
    a.histogram("lat").record(10);

    MetricsRegistry b;
    b.counter("requests").add(4);
    b.counter("only_b").add(1);
    b.gauge("active").set(5.0);
    b.histogram("lat").record(30);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counters.at("requests"), 7u);
    EXPECT_EQ(merged.counters.at("only_b"), 1u);
    // Shard gauges are occupancy quantities: the cluster value is the sum.
    EXPECT_DOUBLE_EQ(merged.gauges.at("active"), 7.0);
    EXPECT_EQ(merged.histograms.at("lat").count, 2u);
    EXPECT_EQ(merged.histograms.at("lat").min, 10u);
    EXPECT_EQ(merged.histograms.at("lat").max, 30u);
}

TEST(Exposition, PrometheusRoundTripsScalars) {
    MetricsRegistry reg;
    reg.counter("serve_steps").add(42);
    reg.counter("serve_requests_completed").add(7);
    reg.gauge("serve_queued").set(3.0);
    for (std::uint64_t v = 1; v <= 100; ++v) {
        reg.histogram("serve_ttft_ns").record(v * 1000);
    }

    const std::string text = to_prometheus(reg.snapshot());
    const std::map<std::string, double> parsed = parse_prometheus(text);
    EXPECT_DOUBLE_EQ(parsed.at("serve_steps"), 42.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_requests_completed"), 7.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_queued"), 3.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_ttft_ns_count"), 100.0);
    // The cumulative bucket series ends at +Inf == _count.
    EXPECT_DOUBLE_EQ(parsed.at("serve_ttft_ns_bucket{le=\"+Inf\"}"), 100.0);
}

TEST(Exposition, ParseRejectsMalformedLines) {
    EXPECT_THROW((void)parse_prometheus("metric_without_value\n"), efld::Error);
    EXPECT_THROW((void)parse_prometheus("metric not_a_number\n"), efld::Error);
    // Comments and blank lines are fine.
    const std::map<std::string, double> parsed =
        parse_prometheus("# TYPE x counter\n\nx 1\n");
    EXPECT_DOUBLE_EQ(parsed.at("x"), 1.0);
}

TEST(Exposition, EverySampleFamilyCarriesHelpAndType) {
    MetricsRegistry reg;
    reg.counter("serve_requests_completed").add(7);  // well-known help text
    reg.counter("custom_widgets_total").add(1);      // generic fallback
    reg.gauge("serve_queued").set(3.0);
    reg.histogram("serve_ttft_ns").record(1000);
    const std::string text = to_prometheus(reg.snapshot());

    // Each family gets a # HELP/# TYPE pair, HELP first, before its samples.
    for (const char* pair :
         {"# HELP serve_requests_completed Requests retired, any finish "
          "reason.\n# TYPE serve_requests_completed counter\n"
          "serve_requests_completed 7\n",
          "# HELP custom_widgets_total counter custom_widgets_total.\n"
          "# TYPE custom_widgets_total counter\ncustom_widgets_total 1\n",
          "# HELP serve_queued Requests waiting in the admission queue."
          "\n# TYPE serve_queued gauge\nserve_queued 3\n",
          "# HELP serve_ttft_ns Time to first token per request.\n"
          "# TYPE serve_ttft_ns histogram\n"}) {
        EXPECT_NE(text.find(pair), std::string::npos) << pair;
    }

    // The annotated body still round-trips through our own parser (comment
    // tolerance), values intact.
    const std::map<std::string, double> parsed = parse_prometheus(text);
    EXPECT_DOUBLE_EQ(parsed.at("serve_requests_completed"), 7.0);
    EXPECT_DOUBLE_EQ(parsed.at("custom_widgets_total"), 1.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_queued"), 3.0);
    EXPECT_DOUBLE_EQ(parsed.at("serve_ttft_ns_count"), 1.0);
}

TEST(Exposition, JsonContainsHistogramSummaries) {
    MetricsRegistry reg;
    reg.counter("serve_steps").add(5);
    reg.histogram("serve_e2e_ns").record(1000);
    const std::string json = to_json(reg.snapshot());
    EXPECT_NE(json.find("\"serve_steps\""), std::string::npos);
    EXPECT_NE(json.find("\"serve_e2e_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}

}  // namespace
}  // namespace efld::obs
