// Bit-level tests of the IEEE binary16 soft float — the foundation of the
// accelerator's numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fp16.hpp"
#include "common/rng.hpp"

namespace efld {
namespace {

TEST(Fp16, KnownEncodings) {
    EXPECT_EQ(Fp16::from_float(0.0f).bits(), 0x0000);
    EXPECT_EQ(Fp16::from_float(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Fp16::from_float(1.0f).bits(), 0x3C00);
    EXPECT_EQ(Fp16::from_float(-1.0f).bits(), 0xBC00);
    EXPECT_EQ(Fp16::from_float(2.0f).bits(), 0x4000);
    EXPECT_EQ(Fp16::from_float(0.5f).bits(), 0x3800);
    EXPECT_EQ(Fp16::from_float(65504.0f).bits(), 0x7BFF);  // max normal
    EXPECT_EQ(Fp16::from_float(-65504.0f).bits(), 0xFBFF);
}

TEST(Fp16, KnownDecodings) {
    EXPECT_FLOAT_EQ(Fp16::from_bits(0x3C00).to_float(), 1.0f);
    EXPECT_FLOAT_EQ(Fp16::from_bits(0x3555).to_float(), 0.333251953125f);
    EXPECT_FLOAT_EQ(Fp16::from_bits(0x0001).to_float(), 5.960464477539063e-8f);  // min subnormal
    EXPECT_FLOAT_EQ(Fp16::from_bits(0x03FF).to_float(), 6.097555160522461e-5f);  // max subnormal
    EXPECT_FLOAT_EQ(Fp16::from_bits(0x0400).to_float(), 6.103515625e-5f);        // min normal
}

TEST(Fp16, OverflowToInfinity) {
    EXPECT_TRUE(Fp16::from_float(65536.0f).is_inf());
    EXPECT_TRUE(Fp16::from_float(1e10f).is_inf());
    EXPECT_TRUE(Fp16::from_float(-1e10f).is_inf());
    EXPECT_TRUE(Fp16::from_float(-1e10f).sign());
    // 65520 is the rounding boundary: rounds up to inf.
    EXPECT_TRUE(Fp16::from_float(65520.0f).is_inf());
    // 65519 rounds down to max.
    EXPECT_EQ(Fp16::from_float(65519.0f).bits(), 0x7BFF);
}

TEST(Fp16, UnderflowToZero) {
    EXPECT_TRUE(Fp16::from_float(1e-10f).is_zero());
    EXPECT_TRUE(Fp16::from_float(-1e-10f).is_zero());
    EXPECT_TRUE(Fp16::from_float(-1e-10f).sign());  // signed zero preserved
}

TEST(Fp16, NanPropagation) {
    const Fp16 nan = Fp16::from_float(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(nan.is_nan());
    EXPECT_TRUE(std::isnan(nan.to_float()));
    EXPECT_FALSE(nan == nan);
    EXPECT_TRUE((nan + Fp16::one()).is_nan());
}

TEST(Fp16, RoundToNearestEven) {
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties-to-even
    // keeps 1.0 (even mantissa).
    EXPECT_EQ(Fp16::from_float(1.0f + 0x1.0p-11f).bits(), 0x3C00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even
    // (mantissa 2).
    EXPECT_EQ(Fp16::from_float(1.0f + 3 * 0x1.0p-11f).bits(), 0x3C02);
    // Just above the halfway point rounds up.
    EXPECT_EQ(Fp16::from_float(1.0f + 0x1.2p-11f).bits(), 0x3C01);
}

TEST(Fp16, RoundTripAllFiniteBitPatterns) {
    // Every finite half value converts to float and back to the same bits —
    // float32 represents all half values exactly.
    for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
        const Fp16 h = Fp16::from_bits(static_cast<std::uint16_t>(b));
        if (h.is_nan()) continue;
        const Fp16 back = Fp16::from_float(h.to_float());
        EXPECT_EQ(back.bits(), h.bits()) << "bits=0x" << std::hex << b;
    }
}

TEST(Fp16, ConversionMatchesRoundTripProperty) {
    // For random floats within half range the stored value is within half an
    // ULP of the original (correct rounding).
    Xoshiro256 rng(42);
    for (int i = 0; i < 10000; ++i) {
        const float f = static_cast<float>(rng.uniform(-60000.0, 60000.0));
        const Fp16 h = Fp16::from_float(f);
        const float back = h.to_float();
        // ULP at |f|: 2^(floor(log2|f|) - 10).
        const float ulp =
            std::ldexp(1.0f, std::max(-14, std::ilogb(std::abs(f) + 1e-30f)) - 10);
        EXPECT_LE(std::abs(back - f), ulp * 0.5f + 1e-12f) << "f=" << f;
    }
}

TEST(Fp16, ArithmeticIsCorrectlyRounded) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Fp16 a = Fp16::from_float(static_cast<float>(rng.uniform(-100.0, 100.0)));
        const Fp16 b = Fp16::from_float(static_cast<float>(rng.uniform(-100.0, 100.0)));
        // float32 computes the exact product/sum of two halves; rounding that
        // to half is the correctly rounded result.
        EXPECT_EQ((a + b).bits(), Fp16::from_float(a.to_float() + b.to_float()).bits());
        EXPECT_EQ((a * b).bits(), Fp16::from_float(a.to_float() * b.to_float()).bits());
    }
}

TEST(Fp16, ComparisonSemantics) {
    EXPECT_TRUE(Fp16::from_float(1.0f) < Fp16::from_float(2.0f));
    EXPECT_FALSE(Fp16::from_float(2.0f) < Fp16::from_float(1.0f));
    EXPECT_TRUE(Fp16::from_float(-2.0f) < Fp16::from_float(-1.0f));
    EXPECT_TRUE(Fp16::from_float(0.0f) == Fp16::from_float(-0.0f));
}

TEST(Fp16, NegationFlipsSignBitOnly) {
    const Fp16 x = Fp16::from_float(3.14f);
    EXPECT_EQ((-x).bits(), x.bits() ^ 0x8000);
    EXPECT_FLOAT_EQ((-x).to_float(), -x.to_float());
}

TEST(Fp16, Constants) {
    EXPECT_FLOAT_EQ(Fp16::one().to_float(), 1.0f);
    EXPECT_FLOAT_EQ(Fp16::max().to_float(), 65504.0f);
    EXPECT_FLOAT_EQ(Fp16::lowest().to_float(), -65504.0f);
    EXPECT_TRUE(Fp16::infinity().is_inf());
    EXPECT_FLOAT_EQ(Fp16::epsilon().to_float(), 0x1.0p-10f);
}

TEST(Fp16, SubnormalArithmetic) {
    const Fp16 tiny = Fp16::from_bits(0x0001);  // min subnormal
    const Fp16 sum = tiny + tiny;
    EXPECT_EQ(sum.bits(), 0x0002);
    EXPECT_EQ((tiny - tiny).bits(), 0x0000);
}

}  // namespace
}  // namespace efld
