// Worker-pool semantics: full coverage of the index range, determinism
// across pool sizes, exception propagation, reuse across many jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/threadpool.hpp"

namespace efld {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndTinyRanges) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    std::vector<std::atomic<int>> hits(3);  // fewer items than workers
    pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DisjointChunksPartitionTheRange) {
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(97, [&](std::size_t b, std::size_t e) {
        std::lock_guard<std::mutex> lk(m);
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    std::size_t expect_begin = 0;
    for (const auto& [b, e] : chunks) {
        EXPECT_EQ(b, expect_begin);
        EXPECT_LT(b, e);
        expect_begin = e;
    }
    EXPECT_EQ(expect_begin, 97u);
}

TEST(ThreadPool, ResultsIndependentOfPoolSize) {
    // The determinism contract: disjoint writes give identical results for
    // any pool size.
    std::vector<double> want(512);
    for (std::size_t i = 0; i < want.size(); ++i) {
        want[i] = static_cast<double>(i) * 1.25 - 3.0;
    }
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        std::vector<double> got(want.size(), 0.0);
        pool.parallel_for(got.size(), [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) got[i] = static_cast<double>(i) * 1.25 - 3.0;
        });
        EXPECT_EQ(got, want) << threads << " threads";
    }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t b, std::size_t) {
                                       if (b == 0) throw Error("boom");
                                   }),
                 Error);
    // The pool must stay usable after a failed job.
    std::atomic<int> n{0};
    pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
        n.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int job = 0; job < 200; ++job) {
        pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
            long local = 0;
            for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
            total.fetch_add(local);
        });
    }
    EXPECT_EQ(total.load(), 200L * (63L * 64L / 2));
}

TEST(ThreadPool, GlobalPoolResizable) {
    ThreadPool::set_global_threads(3);
    EXPECT_EQ(ThreadPool::global().size(), 3u);
    std::atomic<int> n{0};
    ThreadPool::global().parallel_for(17, [&](std::size_t b, std::size_t e) {
        n.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(n.load(), 17);
    ThreadPool::set_global_threads(1);
    EXPECT_EQ(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace efld
