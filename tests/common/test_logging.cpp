// Logging levels and formatting.
#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace efld {
namespace {

class LoggingTest : public ::testing::Test {
protected:
    void TearDown() override { set_log_level(LogLevel::kWarn); }  // restore default
};

TEST_F(LoggingTest, LevelRoundTrip) {
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kOff);
    EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, DefaultIsWarn) {
    EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, BelowThresholdIsCheap) {
    // Messages below the level must not be formatted (no crash on odd args,
    // no output); this exercises the early-return path.
    set_log_level(LogLevel::kOff);
    log_error("this ", 42, " should be dropped");
    log_debug("and this");
    SUCCEED();
}

TEST_F(LoggingTest, VariadicFormatting) {
    set_log_level(LogLevel::kDebug);
    testing::internal::CaptureStderr();
    log_info("answer=", 42, " pi=", 3.14);
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("answer=42 pi=3.14"), std::string::npos);
    EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, PrefixCarriesUptimeAndThreadTag) {
    set_log_level(LogLevel::kInfo);
    testing::internal::CaptureStderr();
    log_info("tagged line");
    const std::string out = testing::internal::GetCapturedStderr();
    // "[efld:INFO +<seconds> t:<tag>] " — monotonic uptime and a stable
    // per-thread tag, so interleaved multi-shard logs stay attributable.
    EXPECT_NE(out.find("[efld:INFO +"), std::string::npos);
    EXPECT_NE(out.find(" t:"), std::string::npos);
    // No request scope active: the req: field is omitted entirely.
    EXPECT_EQ(out.find("req:"), std::string::npos);
}

TEST_F(LoggingTest, LogScopeTagsAndRestoresRequestId) {
    set_log_level(LogLevel::kInfo);
    EXPECT_EQ(current_log_request(), 0u);
    {
        const LogScope outer(17);
        EXPECT_EQ(current_log_request(), 17u);
        testing::internal::CaptureStderr();
        log_info("inside scope");
        EXPECT_NE(testing::internal::GetCapturedStderr().find("req:17"),
                  std::string::npos);
        {
            const LogScope inner(99);  // nests: innermost id wins
            EXPECT_EQ(current_log_request(), 99u);
        }
        EXPECT_EQ(current_log_request(), 17u);  // restored on exit
    }
    EXPECT_EQ(current_log_request(), 0u);
}

}  // namespace
}  // namespace efld
