// Logging levels and formatting.
#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace efld {
namespace {

class LoggingTest : public ::testing::Test {
protected:
    void TearDown() override { set_log_level(LogLevel::kWarn); }  // restore default
};

TEST_F(LoggingTest, LevelRoundTrip) {
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kOff);
    EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, DefaultIsWarn) {
    EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, BelowThresholdIsCheap) {
    // Messages below the level must not be formatted (no crash on odd args,
    // no output); this exercises the early-return path.
    set_log_level(LogLevel::kOff);
    log_error("this ", 42, " should be dropped");
    log_debug("and this");
    SUCCEED();
}

TEST_F(LoggingTest, VariadicFormatting) {
    set_log_level(LogLevel::kDebug);
    testing::internal::CaptureStderr();
    log_info("answer=", 42, " pi=", 3.14);
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("answer=42 pi=3.14"), std::string::npos);
    EXPECT_NE(out.find("INFO"), std::string::npos);
}

}  // namespace
}  // namespace efld
