// Reference math helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/mathutil.hpp"

namespace efld {
namespace {

TEST(MathUtil, SoftmaxSumsToOne) {
    std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
    softmax_inplace(x);
    float sum = 0;
    for (float v : x) sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(x[3], x[2]);
    EXPECT_GT(x[2], x[1]);
}

TEST(MathUtil, SoftmaxStableAtLargeInputs) {
    std::vector<float> x{1000.0f, 1000.0f};
    softmax_inplace(x);
    EXPECT_NEAR(x[0], 0.5f, 1e-6f);
    EXPECT_NEAR(x[1], 0.5f, 1e-6f);
}

TEST(MathUtil, SoftmaxSingleElement) {
    std::vector<float> x{-42.0f};
    softmax_inplace(x);
    EXPECT_NEAR(x[0], 1.0f, 1e-6f);
}

TEST(MathUtil, RootMeanSquare) {
    const std::vector<float> x{3.0f, 4.0f};  // mean square = 12.5
    EXPECT_NEAR(root_mean_square(x, 0.0f), std::sqrt(12.5f), 1e-5f);
}

TEST(MathUtil, RmsEpsilonGuardsZeroVector) {
    const std::vector<float> x(8, 0.0f);
    EXPECT_GT(root_mean_square(x, 1e-5f), 0.0f);
}

TEST(MathUtil, SiluKnownValues) {
    EXPECT_NEAR(silu(0.0f), 0.0f, 1e-7f);
    EXPECT_NEAR(silu(1.0f), 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
    EXPECT_NEAR(silu(-20.0f), 0.0f, 1e-6f);  // saturates toward 0
    EXPECT_NEAR(silu(20.0f), 20.0f, 1e-4f);  // approaches identity
}

TEST(MathUtil, DotProduct) {
    const std::vector<float> a{1, 2, 3}, b{4, 5, 6};
    EXPECT_FLOAT_EQ(dot_f32(a, b), 32.0f);
}

TEST(MathUtil, CosineSimilarity) {
    const std::vector<float> a{1, 0}, b{0, 1}, c{2, 0};
    EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
    EXPECT_NEAR(cosine_similarity(a, c), 1.0, 1e-12);
    EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(MathUtil, CosineSimilarityZeroVectors) {
    const std::vector<float> z{0, 0}, a{1, 1};
    EXPECT_EQ(cosine_similarity(z, z), 1.0);
    EXPECT_EQ(cosine_similarity(z, a), 0.0);
}

}  // namespace
}  // namespace efld
