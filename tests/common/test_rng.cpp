// Determinism and distribution sanity of the seeded generators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace efld {
namespace {

TEST(Rng, SplitMixDeterministic) {
    SplitMix64 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
    Xoshiro256 a(9), b(9), c(10);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next()) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
    Xoshiro256 rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected) {
    Xoshiro256 rng(6);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, GaussianMoments) {
    Xoshiro256 rng(77);
    const int n = 200000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BelowStaysBelow) {
    Xoshiro256 rng(8);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

}  // namespace
}  // namespace efld
