// Tests of the 512-bit bus word and nibble/half packing.
#include <gtest/gtest.h>

#include "common/bitpack.hpp"
#include "common/rng.hpp"

namespace efld {
namespace {

TEST(Word512, NibbleRoundTrip) {
    Word512 w;
    for (std::size_t i = 0; i < kNibblesPerWord; ++i) {
        w.set_nibble(i, static_cast<std::uint8_t>(i % 16));
    }
    for (std::size_t i = 0; i < kNibblesPerWord; ++i) {
        EXPECT_EQ(w.nibble(i), i % 16) << "lane " << i;
    }
}

TEST(Word512, NibbleMasksHighBits) {
    Word512 w;
    w.set_nibble(5, 0xFF);  // only low 4 bits stored
    EXPECT_EQ(w.nibble(5), 0xF);
    EXPECT_EQ(w.nibble(4), 0);
    EXPECT_EQ(w.nibble(6), 0);
}

TEST(Word512, ByteRoundTrip) {
    Word512 w;
    for (std::size_t i = 0; i < kBusBytes; ++i) {
        w.set_byte(i, static_cast<std::uint8_t>(i * 3 + 1));
    }
    for (std::size_t i = 0; i < kBusBytes; ++i) {
        EXPECT_EQ(w.byte(i), static_cast<std::uint8_t>(i * 3 + 1));
    }
}

TEST(Word512, HalfRoundTrip) {
    Word512 w;
    for (std::size_t i = 0; i < kHalfsPerWord; ++i) {
        w.set_half(i, Fp16::from_float(static_cast<float>(i) * 0.25f));
    }
    for (std::size_t i = 0; i < kHalfsPerWord; ++i) {
        EXPECT_FLOAT_EQ(w.half(i).to_float(), static_cast<float>(i) * 0.25f);
    }
}

TEST(Word512, Word32RoundTrip) {
    Word512 w;
    for (std::size_t i = 0; i < kU32PerWord; ++i) {
        w.set_word32(i, 0xDEAD0000u + static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < kU32PerWord; ++i) {
        EXPECT_EQ(w.word32(i), 0xDEAD0000u + i);
    }
}

TEST(Word512, LanesDoNotAlias) {
    // Writing one lane kind must not disturb neighbours of the same kind.
    Word512 w;
    w.set_byte(0, 0xAA);
    w.set_byte(1, 0xBB);
    w.set_nibble(4, 0x5);  // byte 2, low nibble
    EXPECT_EQ(w.byte(0), 0xAA);
    EXPECT_EQ(w.byte(1), 0xBB);
    EXPECT_EQ(w.byte(2), 0x05);
}

TEST(Pack, NibblesRoundTripExactMultiple) {
    Xoshiro256 rng(1);
    std::vector<std::uint8_t> vals(256);
    for (auto& v : vals) v = static_cast<std::uint8_t>(rng.below(16));
    const auto words = pack_nibbles(vals);
    EXPECT_EQ(words.size(), 2u);
    EXPECT_EQ(unpack_nibbles(words, vals.size()), vals);
}

TEST(Pack, NibblesRoundTripWithTail) {
    std::vector<std::uint8_t> vals(150, 7);
    const auto words = pack_nibbles(vals);
    EXPECT_EQ(words.size(), 2u);  // 128 + 22 padded
    EXPECT_EQ(unpack_nibbles(words, vals.size()), vals);
    // Padding lanes are zero.
    EXPECT_EQ(words[1].nibble(127), 0);
}

TEST(Pack, HalfsRoundTrip) {
    Xoshiro256 rng(2);
    std::vector<Fp16> vals(100);
    for (auto& v : vals) v = Fp16::from_float(static_cast<float>(rng.gaussian()));
    const auto words = pack_halfs(vals);
    EXPECT_EQ(words.size(), 4u);  // ceil(100/32)
    const auto back = unpack_halfs(words, vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
        EXPECT_EQ(back[i].bits(), vals[i].bits());
    }
}

TEST(Helpers, DivCeilAndAlignUp) {
    EXPECT_EQ(div_ceil(0, 8), 0u);
    EXPECT_EQ(div_ceil(1, 8), 1u);
    EXPECT_EQ(div_ceil(8, 8), 1u);
    EXPECT_EQ(div_ceil(9, 8), 2u);
    EXPECT_EQ(align_up(0, 64), 0u);
    EXPECT_EQ(align_up(1, 64), 64u);
    EXPECT_EQ(align_up(64, 64), 64u);
    EXPECT_EQ(align_up(65, 64), 128u);
}

}  // namespace
}  // namespace efld
