// AWQ activation-aware scaling: the search must never hurt, and must help
// when channel importance is skewed.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/awq.hpp"

namespace efld::quant {
namespace {

struct Problem {
    std::vector<float> weights;
    std::vector<float> calib;
    std::size_t rows, cols, samples;
};

// Builds a layer where a few input channels carry large activations —
// exactly the salient-channel structure AWQ exploits.
Problem skewed_problem(std::uint64_t seed) {
    Problem p;
    p.rows = 16;
    p.cols = 256;
    p.samples = 8;
    efld::Xoshiro256 rng(seed);
    p.weights.resize(p.rows * p.cols);
    for (auto& w : p.weights) w = static_cast<float>(rng.gaussian(0.0, 0.05));
    p.calib.resize(p.samples * p.cols);
    for (std::size_t s = 0; s < p.samples; ++s) {
        for (std::size_t j = 0; j < p.cols; ++j) {
            const double mag = (j % 16 == 0) ? 8.0 : 0.5;  // salient channels
            p.calib[s * p.cols + j] = static_cast<float>(rng.gaussian(0.0, mag));
        }
    }
    return p;
}

TEST(Awq, ImportanceReflectsActivationMagnitude) {
    const Problem p = skewed_problem(1);
    const auto imp = activation_importance(p.calib, p.samples, p.cols);
    ASSERT_EQ(imp.size(), p.cols);
    // Salient channels should have far higher mean |x|.
    double salient = 0, rest = 0;
    int ns = 0, nr = 0;
    for (std::size_t j = 0; j < p.cols; ++j) {
        if (j % 16 == 0) { salient += imp[j]; ++ns; } else { rest += imp[j]; ++nr; }
    }
    EXPECT_GT(salient / ns, 4.0 * rest / nr);
}

TEST(Awq, SearchNeverWorseThanBaseline) {
    const Problem p = skewed_problem(2);
    AwqConfig cfg;
    const AwqResult r = awq_quantize(p.weights, p.rows, p.cols, p.calib, p.samples, cfg);
    EXPECT_LE(r.best_mse, r.baseline_mse * (1.0 + 1e-9));
}

TEST(Awq, SearchImprovesSkewedLayers) {
    const Problem p = skewed_problem(3);
    AwqConfig cfg;
    const AwqResult r = awq_quantize(p.weights, p.rows, p.cols, p.calib, p.samples, cfg);
    // With strongly skewed activations, a nonzero alpha must win clearly.
    EXPECT_GT(r.best_alpha, 0.0f);
    EXPECT_LT(r.best_mse, r.baseline_mse * 0.9);
}

TEST(Awq, ChannelScalesArePositiveAndNormalized) {
    const Problem p = skewed_problem(4);
    AwqConfig cfg;
    const AwqResult r = awq_quantize(p.weights, p.rows, p.cols, p.calib, p.samples, cfg);
    ASSERT_EQ(r.channel_scale.size(), p.cols);
    double log_sum = 0;
    for (const float s : r.channel_scale) {
        EXPECT_GT(s, 0.0f);
        log_sum += std::log(static_cast<double>(s));
    }
    if (r.best_alpha > 0.0f) {
        // Geometric mean ~= 1 by construction.
        EXPECT_NEAR(std::exp(log_sum / static_cast<double>(p.cols)), 1.0, 0.05);
    }
}

TEST(Awq, MathematicalEquivalenceOfScaling) {
    // W * diag(s) applied to x/s must equal W x exactly in float (before
    // quantization) — the no-op property the trick relies on.
    const Problem p = skewed_problem(5);
    const auto imp = activation_importance(p.calib, p.samples, p.cols);
    std::vector<float> s(p.cols);
    for (std::size_t j = 0; j < p.cols; ++j) s[j] = std::sqrt(std::max(imp[j], 1e-6f));

    efld::Xoshiro256 rng(6);
    std::vector<float> x(p.cols);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());

    for (std::size_t r = 0; r < p.rows; ++r) {
        double y_plain = 0, y_scaled = 0;
        for (std::size_t j = 0; j < p.cols; ++j) {
            y_plain += static_cast<double>(p.weights[r * p.cols + j]) * x[j];
            y_scaled += static_cast<double>(p.weights[r * p.cols + j] * s[j]) * (x[j] / s[j]);
        }
        EXPECT_NEAR(y_plain, y_scaled, 1e-4);
    }
}

TEST(Awq, UniformActivationsKeepAlphaLow) {
    // Without skew, scaling cannot help much; best_mse stays close to
    // baseline (the search may still pick a tiny alpha by noise).
    Problem p;
    p.rows = 8;
    p.cols = 256;
    p.samples = 8;
    efld::Xoshiro256 rng(7);
    p.weights.resize(p.rows * p.cols);
    for (auto& w : p.weights) w = static_cast<float>(rng.gaussian(0.0, 0.05));
    p.calib.resize(p.samples * p.cols);
    for (auto& a : p.calib) a = static_cast<float>(rng.gaussian(0.0, 1.0));

    AwqConfig cfg;
    const AwqResult r = awq_quantize(p.weights, p.rows, p.cols, p.calib, p.samples, cfg);
    EXPECT_LT(r.baseline_mse / std::max(r.best_mse, 1e-30), 3.0);
}

}  // namespace
}  // namespace efld::quant
