// Fig. 4B scale-zero pack encoding and FIFO flush schedule.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "quant/scale_zero_pack.hpp"

namespace efld::quant {
namespace {

TEST(ScaleZeroPack, EncodeDecodeRoundTrip) {
    KvQuantParams p{Fp16::from_float(0.0421f), 117};
    const std::uint32_t enc = encode_scale_zero(p);
    const KvQuantParams back = decode_scale_zero(enc);
    EXPECT_EQ(back.scale.bits(), p.scale.bits());
    EXPECT_EQ(back.zero, p.zero);
}

TEST(ScaleZeroPack, DummyByteIsZero) {
    const std::uint32_t enc = encode_scale_zero({Fp16::from_float(1.0f), 0xFF});
    EXPECT_EQ(enc >> 24, 0u);  // alignment dummy stays clear
}

TEST(ScaleZeroFifo, SlotCountMatchesGeometry) {
    ScaleZeroFifo fifo(32, 32);
    EXPECT_EQ(fifo.num_slots(), 2u * 32 * 32);
    // On-chip footprint: 2048 slots x 64 B = 128 KiB.
    EXPECT_EQ(fifo.storage_bytes(), 2048u * 64);
}

TEST(ScaleZeroFifo, FlushesExactlyEvery16Tokens) {
    ScaleZeroFifo fifo(1, 1);
    for (std::size_t t = 0; t < 16; ++t) {
        const auto word = fifo.append(0, 0, false, t, {Fp16::one(), 0});
        if (t < 15) {
            EXPECT_FALSE(word.has_value()) << "token " << t;
        } else {
            EXPECT_TRUE(word.has_value());
        }
    }
    EXPECT_EQ(fifo.words_flushed(), 1u);
}

TEST(ScaleZeroFifo, FlushedWordContainsAll16Packs) {
    ScaleZeroFifo fifo(1, 1);
    std::optional<Word512> word;
    for (std::size_t t = 0; t < 16; ++t) {
        word = fifo.append(0, 0, true, t,
                           {Fp16::from_float(static_cast<float>(t) + 1.0f),
                            static_cast<std::uint8_t>(t)});
    }
    ASSERT_TRUE(word.has_value());
    for (std::size_t t = 0; t < 16; ++t) {
        const KvQuantParams p = decode_scale_zero(word->word32(t));
        EXPECT_FLOAT_EQ(p.scale.to_float(), static_cast<float>(t) + 1.0f);
        EXPECT_EQ(p.zero, t);
    }
}

TEST(ScaleZeroFifo, StreamsAreIndependent) {
    ScaleZeroFifo fifo(2, 2);
    // Fill K of (0,0) to 15 packs; other streams stay empty.
    for (std::size_t t = 0; t < 15; ++t) {
        (void)fifo.append(0, 0, false, t, {Fp16::one(), 1});
    }
    EXPECT_EQ(fifo.slot_fill(0, 0, false), 15u);
    EXPECT_EQ(fifo.slot_fill(0, 0, true), 0u);
    EXPECT_EQ(fifo.slot_fill(1, 1, false), 0u);
}

TEST(ScaleZeroFifo, OutOfOrderAppendRejected) {
    ScaleZeroFifo fifo(1, 1);
    (void)fifo.append(0, 0, false, 0, {Fp16::one(), 0});
    EXPECT_THROW((void)fifo.append(0, 0, false, 5, {Fp16::one(), 0}), efld::Error);
}

TEST(ScaleZeroFifo, PartialFlushAtEndOfGeneration) {
    ScaleZeroFifo fifo(1, 1);
    for (std::size_t t = 0; t < 5; ++t) {
        (void)fifo.append(0, 0, false, t, {Fp16::one(), 9});
    }
    const auto word = fifo.flush(0, 0, false);
    ASSERT_TRUE(word.has_value());
    EXPECT_EQ(decode_scale_zero(word->word32(4)).zero, 9);
    EXPECT_EQ(decode_scale_zero(word->word32(5)).zero, 0);  // padding lanes
    EXPECT_FALSE(fifo.flush(0, 0, false).has_value());      // now empty
}

TEST(ScaleZeroFifo, FullDecodeOf64Tokens) {
    // Simulates 64 tokens across a 2-layer 2-head model: every stream must
    // flush exactly 4 words.
    ScaleZeroFifo fifo(2, 2);
    std::size_t flushed = 0;
    for (std::size_t t = 0; t < 64; ++t) {
        for (std::size_t l = 0; l < 2; ++l) {
            for (std::size_t h = 0; h < 2; ++h) {
                for (const bool v : {false, true}) {
                    if (fifo.append(l, h, v, t, {Fp16::one(), 0})) ++flushed;
                }
            }
        }
    }
    EXPECT_EQ(flushed, 2u * 2 * 2 * 4);
    EXPECT_EQ(fifo.words_flushed(), flushed);
}

TEST(ScaleZeroFifo, BadSlotRejected) {
    ScaleZeroFifo fifo(2, 2);
    EXPECT_THROW((void)fifo.append(2, 0, false, 0, {}), efld::Error);
    EXPECT_THROW((void)fifo.append(0, 2, false, 0, {}), efld::Error);
}

}  // namespace
}  // namespace efld::quant
