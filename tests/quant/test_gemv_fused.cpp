// Fused GEMV fast path vs. the reference oracle: the accumulation contract
// says every variant (scalar, thread-pool, packed-4bit) performs identical
// float operations, so parity here is bit-for-bit, not approximate.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "quant/groupquant.hpp"

namespace efld::quant {
namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed, double scale = 0.05) {
    efld::Xoshiro256 rng(seed);
    std::vector<float> w(n);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, scale));
    return w;
}

QuantizedLinear make_layer(std::size_t rows, std::size_t cols, unsigned bits,
                           std::size_t group_size, std::uint64_t seed) {
    GroupQuantConfig cfg;
    cfg.bits = bits;
    cfg.group_size = group_size;
    return QuantizedLinear::quantize(random_floats(rows * cols, seed), rows, cols, cfg);
}

TEST(GemvFused, ScalarMatchesReferenceBitForBit) {
    // Sweep bits x group size x (non-square) shape.
    std::uint64_t seed = 1;
    for (const unsigned bits : {2u, 4u, 8u}) {
        for (const std::size_t gs : {32u, 64u, 128u}) {
            for (const auto& [rows, cols] :
                 std::vector<std::pair<std::size_t, std::size_t>>{
                     {3, 128}, {40, 256}, {7, 384}, {128, 640}}) {
                if (cols % gs != 0) continue;
                const QuantizedLinear q = make_layer(rows, cols, bits, gs, seed++);
                const auto x = random_floats(cols, seed++, 1.0);
                const std::vector<float> want = q.gemv_reference(x);
                std::vector<float> got(rows, -1.0f);
                q.gemv(x, got);
                EXPECT_EQ(got, want)
                    << "bits=" << bits << " gs=" << gs << " " << rows << "x" << cols;
            }
        }
    }
}

TEST(GemvFused, ThreadedMatchesScalarBitForBit) {
    const QuantizedLinear q = make_layer(96, 512, 4, 128, 77);
    const auto x = random_floats(512, 78, 1.0);
    std::vector<float> scalar(96);
    q.gemv(x, scalar);
    for (const std::size_t threads : {2u, 3u, 4u, 8u}) {
        ThreadPool pool(threads);
        std::vector<float> threaded(96, -1.0f);
        q.gemv(x, threaded, &pool);
        EXPECT_EQ(threaded, scalar) << threads << " threads";
    }
}

TEST(GemvFused, ThreadCountNeverChangesResults) {
    // Property sweep: random shapes/bits, every pool size gives the exact
    // reference output.
    efld::Xoshiro256 rng(99);
    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t gs = std::vector<std::size_t>{32, 64, 128}[trial % 3];
        const std::size_t rows = 1 + rng.next() % 50;
        const std::size_t cols = gs * (1 + rng.next() % 4);
        const unsigned bits = std::vector<unsigned>{2, 4, 8}[trial % 3];
        const QuantizedLinear q =
            make_layer(rows, cols, bits, gs, 1000 + static_cast<std::uint64_t>(trial));
        const auto x = random_floats(cols, 2000 + static_cast<std::uint64_t>(trial), 1.0);
        const std::vector<float> want = q.gemv_reference(x);
        for (const std::size_t threads : {1u, 2u, 5u}) {
            ThreadPool pool(threads);
            std::vector<float> got(rows, -1.0f);
            q.gemv(x, got, &pool);
            EXPECT_EQ(got, want) << "trial " << trial << ", " << threads << " threads";
        }
    }
}

TEST(GemvFused, Packed4BitMatchesReferenceBitForBit) {
    for (const std::size_t gs : {32u, 64u, 128u}) {
        for (const auto& [rows, cols] :
             std::vector<std::pair<std::size_t, std::size_t>>{
                 {5, 128}, {33, 256}, {96, 640}}) {
            if (cols % gs != 0) continue;
            const QuantizedLinear q = make_layer(rows, cols, 4, gs, 7 + gs);
            const auto packed = q.pack_codes();
            const auto x = random_floats(cols, 8 + gs, 1.0);
            const std::vector<float> want = q.gemv_reference(x);
            std::vector<float> got(rows, -1.0f);
            q.gemv_packed(packed, x, got);
            EXPECT_EQ(got, want) << "gs=" << gs << " " << rows << "x" << cols;

            ThreadPool pool(4);
            std::vector<float> got_mt(rows, -1.0f);
            q.gemv_packed(packed, x, got_mt, &pool);
            EXPECT_EQ(got_mt, want) << "threaded, gs=" << gs;
        }
    }
}

TEST(GemvFused, ReferenceStillMatchesDequantizedGemv) {
    // The rewritten oracle must still agree (to float tolerance) with a GEMV
    // over fully materialized weights — it changed accumulation structure,
    // not semantics.
    const std::size_t rows = 6, cols = 256;
    const QuantizedLinear q = make_layer(rows, cols, 4, 128, 4);
    const auto x = random_floats(cols, 5, 1.0);
    const auto y = q.gemv_reference(x);
    const auto wq = q.dequantize();
    for (std::size_t r = 0; r < rows; ++r) {
        float acc = 0;
        for (std::size_t c = 0; c < cols; ++c) acc += wq[r * cols + c] * x[c];
        EXPECT_NEAR(y[r], acc, 1e-4f) << "row " << r;
    }
}

TEST(GemvFused, SpanReferenceOverloadMatchesVectorForm) {
    const QuantizedLinear q = make_layer(10, 256, 4, 64, 21);
    const auto x = random_floats(256, 22, 1.0);
    std::vector<float> y(10, -1.0f);
    q.gemv_reference(x, y);
    EXPECT_EQ(y, q.gemv_reference(x));
}

TEST(GemvFused, PackedRejectsWideCodesAndBadStream) {
    const QuantizedLinear q8 = make_layer(4, 128, 8, 64, 31);
    EXPECT_THROW((void)q8.pack_codes(), efld::Error);

    const QuantizedLinear q4 = make_layer(4, 128, 4, 64, 32);
    const auto packed = q4.pack_codes();
    const auto x = random_floats(128, 33, 1.0);
    std::vector<float> y(4);
    EXPECT_THROW(q4.gemv_packed(std::span<const Word512>(packed).first(1), x, y),
                 efld::Error);
}

TEST(GemvFused, RejectsBadShapes) {
    const QuantizedLinear q = make_layer(4, 128, 4, 64, 41);
    std::vector<float> x(127), y(4);
    EXPECT_THROW(q.gemv(x, y), efld::Error);
    std::vector<float> x2(128), y2(3);
    EXPECT_THROW(q.gemv(x2, y2), efld::Error);
}

}  // namespace
}  // namespace efld::quant
