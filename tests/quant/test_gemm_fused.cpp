// Skinny-GEMM fast path vs. the reference oracle: one weight walk serving a
// batch of activation vectors must be bit-for-bit identical to independent
// GEMV calls — the accumulation contract extends per (row, batch column).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "quant/groupquant.hpp"

namespace efld::quant {
namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed, double scale = 0.05) {
    efld::Xoshiro256 rng(seed);
    std::vector<float> w(n);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, scale));
    return w;
}

QuantizedLinear make_layer(std::size_t rows, std::size_t cols, unsigned bits,
                           std::size_t group_size, std::uint64_t seed) {
    GroupQuantConfig cfg;
    cfg.bits = bits;
    cfg.group_size = group_size;
    return QuantizedLinear::quantize(random_floats(rows * cols, seed), rows, cols, cfg);
}

TEST(GemmFused, ReferenceIsExactlyIndependentGemvs) {
    const QuantizedLinear q = make_layer(24, 256, 4, 128, 11);
    const std::size_t batch = 5;
    const auto x = random_floats(batch * 256, 12, 1.0);
    std::vector<float> want(batch * 24);
    for (std::size_t b = 0; b < batch; ++b) {
        q.gemv_reference(std::span<const float>(x).subspan(b * 256, 256),
                         std::span<float>(want).subspan(b * 24, 24));
    }
    std::vector<float> got(batch * 24, -1.0f);
    q.gemm_reference(x, batch, got);
    EXPECT_EQ(got, want);
}

TEST(GemmFused, ScalarMatchesReferenceBitForBit) {
    // Sweep bits x group size x shape x batch (crossing the register-tile
    // boundary at kGemmBatchTile).
    std::uint64_t seed = 1;
    for (const unsigned bits : {2u, 4u, 8u}) {
        for (const std::size_t gs : {32u, 128u}) {
            for (const auto& [rows, cols] :
                 std::vector<std::pair<std::size_t, std::size_t>>{{3, 128}, {40, 256}}) {
                if (cols % gs != 0) continue;
                const QuantizedLinear q = make_layer(rows, cols, bits, gs, seed++);
                for (const std::size_t batch : {1u, 2u, 4u, 8u, 9u, 17u}) {
                    const auto x = random_floats(batch * cols, seed++, 1.0);
                    std::vector<float> want(batch * rows);
                    q.gemm_reference(x, batch, want);
                    std::vector<float> got(batch * rows, -1.0f);
                    q.gemm(x, batch, got);
                    EXPECT_EQ(got, want) << "bits=" << bits << " gs=" << gs << " "
                                         << rows << "x" << cols << " batch=" << batch;
                }
            }
        }
    }
}

TEST(GemmFused, Batch1IsIdenticalToGemv) {
    for (const unsigned bits : {4u, 8u}) {
        const QuantizedLinear q = make_layer(48, 384, bits, 128, 100 + bits);
        const auto x = random_floats(384, 200 + bits, 1.0);
        std::vector<float> via_gemv(48, -1.0f), via_gemm(48, -2.0f);
        q.gemv(x, via_gemv);
        q.gemm(x, 1, via_gemm);
        EXPECT_EQ(via_gemm, via_gemv) << "bits=" << bits;
    }
}

TEST(GemmFused, ThreadedMatchesScalarBitForBit) {
    const QuantizedLinear q = make_layer(96, 512, 4, 128, 77);
    for (const std::size_t batch : {1u, 3u, 8u}) {
        const auto x = random_floats(batch * 512, 78 + batch, 1.0);
        std::vector<float> scalar(batch * 96);
        q.gemm(x, batch, scalar);
        for (const std::size_t threads : {2u, 4u, 8u}) {
            ThreadPool pool(threads);
            std::vector<float> threaded(batch * 96, -1.0f);
            q.gemm(x, batch, threaded, &pool);
            EXPECT_EQ(threaded, scalar) << threads << " threads, batch " << batch;
        }
    }
}

TEST(GemmFused, Packed4BitMatchesReferenceBitForBit) {
    for (const std::size_t gs : {32u, 128u}) {
        const QuantizedLinear q = make_layer(33, 256, 4, gs, 7 + gs);
        const auto packed = q.pack_codes();
        for (const std::size_t batch : {1u, 2u, 4u, 8u, 11u}) {
            const auto x = random_floats(batch * 256, 8 + gs + batch, 1.0);
            std::vector<float> want(batch * 33);
            q.gemm_reference(x, batch, want);
            std::vector<float> got(batch * 33, -1.0f);
            q.gemm_packed(packed, x, batch, got);
            EXPECT_EQ(got, want) << "gs=" << gs << " batch=" << batch;

            ThreadPool pool(4);
            std::vector<float> got_mt(batch * 33, -1.0f);
            q.gemm_packed(packed, x, batch, got_mt, &pool);
            EXPECT_EQ(got_mt, want) << "threaded, gs=" << gs << " batch=" << batch;
        }
    }
}

TEST(GemmFused, PackedBatch1IsIdenticalToGemvPacked) {
    const QuantizedLinear q = make_layer(20, 384, 4, 128, 55);
    const auto packed = q.pack_codes();
    const auto x = random_floats(384, 56, 1.0);
    std::vector<float> via_gemv(20, -1.0f), via_gemm(20, -2.0f);
    q.gemv_packed(packed, x, via_gemv);
    q.gemm_packed(packed, x, 1, via_gemm);
    EXPECT_EQ(via_gemm, via_gemv);
}

TEST(GemmFused, RejectsBadShapes) {
    const QuantizedLinear q = make_layer(4, 128, 4, 64, 41);
    std::vector<float> x(2 * 128), y(2 * 4);
    EXPECT_THROW(q.gemm(x, 0, std::span<float>()), efld::Error);
    EXPECT_THROW(q.gemm(std::span<const float>(x).first(255), 2, y), efld::Error);
    EXPECT_THROW(q.gemm(x, 2, std::span<float>(y).first(7)), efld::Error);
    const auto packed = q.pack_codes();
    EXPECT_THROW(
        q.gemm_packed(std::span<const Word512>(packed).first(0), x, 2, y),
        efld::Error);
}

}  // namespace
}  // namespace efld::quant
