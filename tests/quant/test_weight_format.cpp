// Fig. 4A interleaved weight arrangement: schedule, round trip, overhead.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "quant/weight_format.hpp"

namespace efld::quant {
namespace {

QuantizedLinear random_layer(std::size_t rows, std::size_t cols, std::uint64_t seed) {
    efld::Xoshiro256 rng(seed);
    std::vector<float> w(rows * cols);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.05));
    return QuantizedLinear::quantize(w, rows, cols, GroupQuantConfig{});
}

TEST(WeightFormat, ScheduleStructureFullChunk) {
    // 128 groups = 1 zero word + 4 x (1 scale + 32 weights) = 133 words.
    const auto sched = stream_schedule(128);
    ASSERT_EQ(sched.size(), 133u);
    EXPECT_EQ(sched[0], WordKind::kZero);
    EXPECT_EQ(sched[1], WordKind::kScale);
    for (std::size_t i = 2; i < 34; ++i) EXPECT_EQ(sched[i], WordKind::kWeight);
    EXPECT_EQ(sched[34], WordKind::kScale);
    std::size_t weights = 0, scales = 0, zeros = 0;
    for (const auto k : sched) {
        if (k == WordKind::kWeight) ++weights;
        if (k == WordKind::kScale) ++scales;
        if (k == WordKind::kZero) ++zeros;
    }
    EXPECT_EQ(weights, 128u);
    EXPECT_EQ(scales, 4u);
    EXPECT_EQ(zeros, 1u);
}

TEST(WeightFormat, SchedulePartialChunk) {
    // 40 groups: 1 zero word, 2 scale words (32 + 8), 40 weight words.
    const auto sched = stream_schedule(40);
    EXPECT_EQ(sched.size(), 1u + 2 + 40);
    EXPECT_EQ(stream_words(40), 43u);
}

TEST(WeightFormat, StreamWordsMatchesScheduleForManySizes) {
    for (const std::size_t g : {1u, 31u, 32u, 33u, 127u, 128u, 129u, 500u, 4096u}) {
        EXPECT_EQ(stream_schedule(g).size(), stream_words(g)) << "groups=" << g;
    }
}

TEST(WeightFormat, OverheadApproaches376Percent) {
    // 5 overhead words per 133 at full chunks.
    EXPECT_NEAR(stream_overhead(128 * 100), 5.0 / 133.0, 1e-6);
    EXPECT_NEAR(stream_overhead(4096 * 32), 5.0 / 133.0, 1e-4);
}

TEST(WeightFormat, PackUnpackRoundTripSmall) {
    const auto layer = random_layer(4, 256, 1);
    const auto words = pack_weight_stream(layer);
    EXPECT_EQ(words.size(), stream_words(layer.num_groups()));
    const auto back = unpack_weight_stream(words, 4, 256);
    EXPECT_EQ(back.dequantize(), layer.dequantize());
}

TEST(WeightFormat, PackUnpackRoundTripMultiChunk) {
    // 40 rows x 512 cols = 160 groups: spans two chunks with a partial tail.
    const auto layer = random_layer(40, 512, 2);
    const auto words = pack_weight_stream(layer);
    const auto back = unpack_weight_stream(words, 40, 512);
    EXPECT_EQ(back.dequantize(), layer.dequantize());
    for (std::size_t g = 0; g < layer.num_groups(); ++g) {
        EXPECT_EQ(back.scale(g).bits(), layer.scale(g).bits()) << g;
        EXPECT_EQ(back.zero(g), layer.zero(g)) << g;
    }
}

TEST(WeightFormat, DecoderAttachesCorrectScaleZero) {
    const auto layer = random_layer(2, 128 * 40, 3);  // 80 groups
    const auto words = pack_weight_stream(layer);
    WeightStreamDecoder dec(layer.num_groups());
    std::size_t g = 0;
    for (const auto& w : words) {
        if (const auto grp = dec.consume(w)) {
            EXPECT_EQ(grp->scale.bits(), layer.scale(g).bits()) << g;
            EXPECT_EQ(grp->zero, layer.zero(g)) << g;
            const auto codes = layer.codes().subspan(g * 128, 128);
            for (std::size_t i = 0; i < 128; ++i) {
                EXPECT_EQ(grp->codes[i], codes[i]);
            }
            ++g;
        }
    }
    EXPECT_TRUE(dec.done());
    EXPECT_EQ(g, layer.num_groups());
}

TEST(WeightFormat, DecoderExpectedKindFollowsSchedule) {
    const std::size_t groups = 70;
    const auto sched = stream_schedule(groups);
    WeightStreamDecoder dec(groups);
    for (const auto kind : sched) {
        EXPECT_EQ(dec.expected_kind(), kind);
        (void)dec.consume(Word512{});
    }
    EXPECT_TRUE(dec.done());
    EXPECT_THROW((void)dec.expected_kind(), efld::Error);
}

TEST(WeightFormat, RejectsWrongGroupSize) {
    GroupQuantConfig cfg;
    cfg.group_size = 64;
    efld::Xoshiro256 rng(4);
    std::vector<float> w(2 * 128);
    for (auto& v : w) v = static_cast<float>(rng.gaussian());
    const auto layer = QuantizedLinear::quantize(w, 2, 128, cfg);
    EXPECT_THROW((void)pack_weight_stream(layer), efld::Error);
}

TEST(WeightFormat, RejectsWordCountMismatch) {
    const auto layer = random_layer(2, 256, 5);
    auto words = pack_weight_stream(layer);
    words.pop_back();
    EXPECT_THROW((void)unpack_weight_stream(words, 2, 256), efld::Error);
}

TEST(WeightFormat, Llama7BLayerStreamArithmetic) {
    // A 4096x4096 projection: 131072 groups -> 1024 zero words, 4096 scale
    // words, 131072 weight words.
    const std::size_t groups = 4096 * 4096 / 128;
    EXPECT_EQ(stream_words(groups), groups + groups / 32 + groups / 128);
    // Stream bytes = payload bytes exactly (no padding at full chunks):
    // codes 64B + scale 2B + zero 0.5B per group = 66.5B.
    EXPECT_EQ(stream_words(groups) * 64, groups * 64 + groups * 2 + groups / 2);
}

}  // namespace
}  // namespace efld::quant
