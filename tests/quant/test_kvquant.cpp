// KV8 per-vector quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "quant/kvquant.hpp"

namespace efld::quant {
namespace {

TEST(KvQuant, RoundTripBounded) {
    efld::Xoshiro256 rng(1);
    std::vector<float> x(128);
    for (auto& v : x) v = static_cast<float>(rng.gaussian(0.0, 2.0));
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    const float s = q.params.scale.to_float();
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(back[i], x[i], s * 0.51f + 1e-5f) << i;  // half-step error
    }
}

TEST(KvQuant, CodesSpanFullRange) {
    // A vector touching both extremes should produce codes near 0 and 255.
    std::vector<float> x(64);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = -1.0f + 2.0f * static_cast<float>(i) / 63.0f;
    }
    const KvQuantized q = kv_quantize(x);
    std::uint8_t lo = 255, hi = 0;
    for (const auto c : q.codes) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_LE(lo, 1);
    EXPECT_GE(hi, 254);
}

TEST(KvQuant, AllNegativeVector) {
    std::vector<float> x{-5.0f, -3.0f, -1.0f, -4.0f};
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    const float s = q.params.scale.to_float();
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], s);
}

TEST(KvQuant, AllPositiveVector) {
    std::vector<float> x{0.5f, 1.5f, 2.5f, 3.5f};
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    const float s = q.params.scale.to_float();
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], s);
}

TEST(KvQuant, ConstantVector) {
    std::vector<float> x(32, 1.25f);
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    for (const float v : back) EXPECT_NEAR(v, 1.25f, 0.01f);
}

TEST(KvQuant, ZeroVectorExact) {
    std::vector<float> x(32, 0.0f);
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    for (const float v : back) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(KvQuant, ZeroRepresentable) {
    // Zero must reconstruct to (near) zero even for shifted ranges.
    std::vector<float> x{0.0f, 10.0f, 20.0f, 30.0f};
    const KvQuantized q = kv_quantize(x);
    const auto back = kv_dequantize(q.codes, q.params);
    EXPECT_NEAR(back[0], 0.0f, q.params.scale.to_float());
}

TEST(KvQuant, DequantizeIntoMatchesVector) {
    efld::Xoshiro256 rng(2);
    std::vector<float> x(64);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    const KvQuantized q = kv_quantize(x);
    std::vector<float> a = kv_dequantize(q.codes, q.params);
    std::vector<float> b(64);
    kv_dequantize_into(q.codes, q.params, b);
    EXPECT_EQ(a, b);
}

TEST(KvQuant, BytesPerTokenLlama7B) {
    // 2 * 32 layers * 4096 dim codes + 2 * 32 * 32 heads * 4 B packs.
    EXPECT_EQ(kv8_bytes_per_token(32, 4096, 32), 2u * 32 * 4096 + 2u * 32 * 32 * 4);
}

TEST(KvQuant, VariableBitsCodeRange) {
    efld::Xoshiro256 rng(9);
    std::vector<float> x(64);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    for (const unsigned bits : {2u, 4u, 8u}) {
        const KvQuantized q = kv_quantize_bits(x, bits);
        const std::uint8_t qmax = static_cast<std::uint8_t>((1u << bits) - 1u);
        for (const auto c : q.codes) EXPECT_LE(c, qmax) << "bits=" << bits;
        EXPECT_LE(q.params.zero, qmax);
    }
}

TEST(KvQuant, EightBitsMatchesDefault) {
    efld::Xoshiro256 rng(10);
    std::vector<float> x(64);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    const KvQuantized a = kv_quantize(x);
    const KvQuantized b = kv_quantize_bits(x, 8);
    EXPECT_EQ(a.codes, b.codes);
    EXPECT_EQ(a.params.scale.bits(), b.params.scale.bits());
}

TEST(KvQuant, FewerBitsMoreError) {
    efld::Xoshiro256 rng(11);
    std::vector<float> x(128);
    for (auto& v : x) v = static_cast<float>(rng.gaussian());
    double prev_mse = 0.0;
    for (const unsigned bits : {8u, 4u, 2u}) {
        const KvQuantized q = kv_quantize_bits(x, bits);
        const auto back = kv_dequantize(q.codes, q.params);
        double mse = 0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            mse += (back[i] - x[i]) * (back[i] - x[i]);
        }
        EXPECT_GT(mse, prev_mse) << "bits=" << bits;
        prev_mse = mse;
    }
}

TEST(KvQuant, RejectsBadBitWidths) {
    std::vector<float> x{1.0f};
    EXPECT_THROW((void)kv_quantize_bits(x, 1), efld::Error);
    EXPECT_THROW((void)kv_quantize_bits(x, 9), efld::Error);
}

TEST(KvQuant, ErrorSmallerThanKv4Would) {
    // Spot-check the paper's KV8-over-KV4 choice: 8-bit error is far below
    // a 4-bit grid on the same data.
    efld::Xoshiro256 rng(3);
    std::vector<float> x(128);
    for (auto& v : x) v = static_cast<float>(rng.gaussian(0.0, 1.0));
    const KvQuantized q8 = kv_quantize(x);
    const auto back = kv_dequantize(q8.codes, q8.params);
    double mse8 = 0;
    float lo = x[0], hi = x[0];
    for (const float v : x) { lo = std::min(lo, v); hi = std::max(hi, v); }
    const double step4 = (hi - lo) / 15.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mse8 += (back[i] - x[i]) * (back[i] - x[i]);
    }
    mse8 /= static_cast<double>(x.size());
    // A 4-bit grid has expected MSE ~= step^2/12.
    EXPECT_LT(mse8, step4 * step4 / 12.0 / 10.0);
}

}  // namespace
}  // namespace efld::quant
