// W4A16 group quantization invariants and reconstruction accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "quant/groupquant.hpp"

namespace efld::quant {
namespace {

std::vector<float> random_weights(std::size_t n, std::uint64_t seed, double scale = 0.05) {
    efld::Xoshiro256 rng(seed);
    std::vector<float> w(n);
    for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, scale));
    return w;
}

TEST(GroupQuant, CodesWithinRange) {
    const auto w = random_weights(4 * 512, 1);
    const auto q = QuantizedLinear::quantize(w, 4, 512, GroupQuantConfig{});
    for (const std::uint8_t c : q.codes()) EXPECT_LE(c, 15);
    for (const std::uint8_t z : q.zeros()) EXPECT_LE(z, 15);
}

TEST(GroupQuant, GroupCountsAndShape) {
    const auto w = random_weights(8 * 1024, 2);
    const auto q = QuantizedLinear::quantize(w, 8, 1024, GroupQuantConfig{});
    EXPECT_EQ(q.rows(), 8u);
    EXPECT_EQ(q.cols(), 1024u);
    EXPECT_EQ(q.groups_per_row(), 8u);
    EXPECT_EQ(q.num_groups(), 64u);
    EXPECT_EQ(q.scales().size(), 64u);
}

TEST(GroupQuant, ReconstructionErrorBounded) {
    const auto w = random_weights(16 * 512, 3);
    const auto q = QuantizedLinear::quantize(w, 16, 512, GroupQuantConfig{});
    const auto back = q.dequantize();
    const QuantError e = quant_error(w, back);
    // 4-bit min/max quantization: error bounded by ~scale/2 per element.
    // With ~N(0, 0.05) groups, range ~= 0.4 -> scale ~= 0.027.
    EXPECT_LT(std::sqrt(e.mse), 0.02);
    EXPECT_LT(e.max_abs, 0.05);
}

TEST(GroupQuant, ZeroVectorQuantizesExactly) {
    const std::vector<float> w(2 * 128, 0.0f);
    const auto q = QuantizedLinear::quantize(w, 2, 128, GroupQuantConfig{});
    const auto back = q.dequantize();
    for (const float v : back) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(GroupQuant, ConstantGroupReconstructsNearExactly) {
    std::vector<float> w(128, 0.37f);
    const auto q = QuantizedLinear::quantize(w, 1, 128, GroupQuantConfig{});
    const auto back = q.dequantize();
    for (const float v : back) EXPECT_NEAR(v, 0.37f, 0.37f * 0.04f + 1e-3f);
}

TEST(GroupQuant, ZeroIsRepresentable) {
    // The quantization grid must contain exact zero (lo/hi are clamped to
    // include it), so sparse weights stay sparse.
    std::vector<float> w(128);
    for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = (i % 4 == 0) ? 0.0f : 0.1f + static_cast<float>(i) * 1e-3f;
    }
    const auto q = QuantizedLinear::quantize(w, 1, 128, GroupQuantConfig{});
    const auto back = q.dequantize();
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (w[i] == 0.0f) EXPECT_NEAR(back[i], 0.0f, 2e-3f) << i;
    }
}

TEST(GroupQuant, PerGroupScalesAreIndependent) {
    // One huge group must not degrade a small-magnitude group's precision.
    std::vector<float> w(2 * 128);
    for (std::size_t i = 0; i < 128; ++i) w[i] = static_cast<float>(i % 16) * 1.0f;
    for (std::size_t i = 128; i < 256; ++i) w[i] = static_cast<float>(i % 16) * 1e-3f;
    GroupQuantConfig cfg;
    const auto q = QuantizedLinear::quantize(w, 1, 256, cfg);
    const auto back = q.dequantize();
    for (std::size_t i = 128; i < 256; ++i) {
        EXPECT_NEAR(back[i], w[i], 1e-3f) << i;
    }
}

TEST(GroupQuant, GemvMatchesDequantizedGemv) {
    const std::size_t rows = 6, cols = 256;
    const auto w = random_weights(rows * cols, 4);
    const auto q = QuantizedLinear::quantize(w, rows, cols, GroupQuantConfig{});
    const auto x = random_weights(cols, 5, 1.0);
    const auto y = q.gemv_reference(x);

    const auto wq = q.dequantize();
    for (std::size_t r = 0; r < rows; ++r) {
        float acc = 0;
        for (std::size_t c = 0; c < cols; ++c) acc += wq[r * cols + c] * x[c];
        EXPECT_NEAR(y[r], acc, 1e-4f) << "row " << r;
    }
}

TEST(GroupQuant, EightBitBeatsFourBit) {
    const auto w = random_weights(8 * 512, 6);
    GroupQuantConfig c4, c8;
    c8.bits = 8;
    const auto q4 = QuantizedLinear::quantize(w, 8, 512, c4);
    const auto q8 = QuantizedLinear::quantize(w, 8, 512, c8);
    const double mse4 = quant_error(w, q4.dequantize()).mse;
    const double mse8 = quant_error(w, q8.dequantize()).mse;
    EXPECT_LT(mse8, mse4 / 10.0);
}

TEST(GroupQuant, SmallerGroupsReduceError) {
    const auto w = random_weights(4 * 1024, 7);
    GroupQuantConfig big, small;
    big.group_size = 256;
    small.group_size = 64;
    const double mse_big =
        quant_error(w, QuantizedLinear::quantize(w, 4, 1024, big).dequantize()).mse;
    const double mse_small =
        quant_error(w, QuantizedLinear::quantize(w, 4, 1024, small).dequantize()).mse;
    EXPECT_LT(mse_small, mse_big);
}

TEST(GroupQuant, PackedBytesArithmetic) {
    const auto w = random_weights(4096ull * 128, 8);
    const auto q = QuantizedLinear::quantize(w, 4096, 128, GroupQuantConfig{});
    // 4096 rows x 1 group: codes 4096*128/2 B, scales 4096*2 B, zeros 4096/2 B.
    EXPECT_EQ(q.packed_bytes(), 4096u * 64 + 4096u * 2 + 2048u);
}

TEST(GroupQuant, RejectsMisalignedCols) {
    const auto w = random_weights(4 * 100, 9);
    EXPECT_THROW((void)QuantizedLinear::quantize(w, 4, 100, GroupQuantConfig{}),
                 efld::Error);
}

TEST(GroupQuant, FromPartsRoundTrip) {
    const auto w = random_weights(2 * 256, 10);
    const auto q = QuantizedLinear::quantize(w, 2, 256, GroupQuantConfig{});
    const auto q2 = QuantizedLinear::from_parts(
        std::vector<std::uint8_t>(q.codes().begin(), q.codes().end()),
        std::vector<Fp16>(q.scales().begin(), q.scales().end()),
        std::vector<std::uint8_t>(q.zeros().begin(), q.zeros().end()), 2, 256,
        q.config());
    EXPECT_EQ(q.dequantize(), q2.dequantize());
}

}  // namespace
}  // namespace efld::quant
