// Prefix index: chained page hashing and root-first chain bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "prefix/prefix_index.hpp"

namespace efld::prefix {
namespace {

std::vector<std::int32_t> iota_tokens(std::size_t n, std::int32_t base = 3) {
    std::vector<std::int32_t> t(n);
    for (std::size_t i = 0; i < n; ++i) t[i] = base + static_cast<std::int32_t>(i);
    return t;
}

TEST(PrefixChainHashes, OnlyFullPagesHash) {
    EXPECT_TRUE(prefix_chain_hashes({}, 4).empty());
    EXPECT_TRUE(prefix_chain_hashes(iota_tokens(3), 4).empty());
    EXPECT_EQ(prefix_chain_hashes(iota_tokens(4), 4).size(), 1u);
    EXPECT_EQ(prefix_chain_hashes(iota_tokens(7), 4).size(), 1u);
    EXPECT_EQ(prefix_chain_hashes(iota_tokens(8), 4).size(), 2u);
}

TEST(PrefixChainHashes, LongerPromptExtendsShorterChain) {
    // The chain for a prompt is a prefix of the chain for any extension of it
    // — the property the whole index relies on.
    const auto short_chain = prefix_chain_hashes(iota_tokens(8), 4);
    const auto long_chain = prefix_chain_hashes(iota_tokens(20), 4);
    ASSERT_EQ(short_chain.size(), 2u);
    ASSERT_EQ(long_chain.size(), 5u);
    EXPECT_EQ(long_chain[0], short_chain[0]);
    EXPECT_EQ(long_chain[1], short_chain[1]);
}

TEST(PrefixChainHashes, EarlyDivergenceChangesEveryLaterKey) {
    // Two prompts differing in page 0 must never share ANY later key, or the
    // index would alias different token paths into one physical page.
    auto a = iota_tokens(16);
    auto b = iota_tokens(16);
    b[1] += 1;
    const auto ha = prefix_chain_hashes(a, 4);
    const auto hb = prefix_chain_hashes(b, 4);
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t k = 0; k < ha.size(); ++k) {
        EXPECT_NE(ha[k], hb[k]) << "page " << k;
    }
}

TEST(PrefixChainHashes, LateDivergenceKeepsEarlierKeys) {
    auto a = iota_tokens(16);
    auto b = iota_tokens(16);
    b[13] += 1;  // page 3 differs; pages 0..2 identical
    const auto ha = prefix_chain_hashes(a, 4);
    const auto hb = prefix_chain_hashes(b, 4);
    EXPECT_EQ(ha[0], hb[0]);
    EXPECT_EQ(ha[1], hb[1]);
    EXPECT_EQ(ha[2], hb[2]);
    EXPECT_NE(ha[3], hb[3]);
}

TEST(PrefixChainHashes, NeverProducesTheReservedZeroKey) {
    // 0 marks "no parent" in index entries, so no real key may be 0.
    for (std::int32_t base = 0; base < 64; ++base) {
        for (const std::uint64_t h : prefix_chain_hashes(iota_tokens(32, base), 4)) {
            EXPECT_NE(h, 0u);
        }
    }
}

TEST(PrefixIndex, InsertsRootFirstAndMatchesFrontToBack) {
    PrefixIndex idx;
    const auto h = prefix_chain_hashes(iota_tokens(12), 4);
    ASSERT_EQ(h.size(), 3u);
    EXPECT_TRUE(idx.insert(h[0], 10, 0, 0));
    EXPECT_TRUE(idx.insert(h[1], 11, h[0], 1));
    EXPECT_TRUE(idx.insert(h[2], 12, h[1], 2));
    EXPECT_EQ(idx.pages_held(), 3u);

    const std::vector<std::size_t> pages = idx.match(h);
    ASSERT_EQ(pages.size(), 3u);
    EXPECT_EQ(pages[0], 10u);
    EXPECT_EQ(pages[1], 11u);
    EXPECT_EQ(pages[2], 12u);

    // A diverged prompt matches only the shared head of the chain.
    auto div = iota_tokens(12);
    div[9] += 1;
    const auto hd = prefix_chain_hashes(div, 4);
    const std::vector<std::size_t> partial = idx.match(hd);
    ASSERT_EQ(partial.size(), 2u);
    EXPECT_EQ(partial[1], 11u);
}

TEST(PrefixIndex, RefusesGapsAndDuplicates) {
    PrefixIndex idx;
    const auto h = prefix_chain_hashes(iota_tokens(12), 4);
    // Depth 1 before its parent: rejected, or match() could walk a gap.
    EXPECT_FALSE(idx.insert(h[1], 11, h[0], 1));
    EXPECT_TRUE(idx.insert(h[0], 10, 0, 0));
    EXPECT_FALSE(idx.insert(h[0], 99, 0, 0));  // duplicate keeps first page
    EXPECT_TRUE(idx.insert(h[1], 11, h[0], 1));
    EXPECT_EQ(idx.pages_held(), 2u);
    EXPECT_EQ(idx.match(h)[0], 10u);
}

TEST(PrefixIndex, ClearReturnsEveryPinnedPage) {
    PrefixIndex idx;
    const auto h = prefix_chain_hashes(iota_tokens(12), 4);
    ASSERT_TRUE(idx.insert(h[0], 10, 0, 0));
    ASSERT_TRUE(idx.insert(h[1], 11, h[0], 1));
    std::vector<std::size_t> pages = idx.clear();
    std::sort(pages.begin(), pages.end());
    EXPECT_EQ(pages, (std::vector<std::size_t>{10, 11}));
    EXPECT_EQ(idx.pages_held(), 0u);
    EXPECT_TRUE(idx.match(h).empty());
}

}  // namespace
}  // namespace efld::prefix
