// Roofline analysis: decode below the ridge everywhere, prefill above it.
#include <gtest/gtest.h>

#include "analytic/roofline.hpp"

namespace efld::analytic {
namespace {

const model::ModelConfig kLlama = model::ModelConfig::llama2_7b();
const model::QuantScheme kScheme = model::QuantScheme::w4a16_kv8();

TEST(Roofline, DecodeIsMemoryBoundOnEveryDevice) {
    for (const DeviceRoofline& dev :
         {DeviceRoofline::kv260_accelerator(), DeviceRoofline::jetson_agx_orin(),
          DeviceRoofline::jetson_orin_nano()}) {
        const RooflinePoint pt = Roofline::decode(dev, kLlama, kScheme);
        EXPECT_TRUE(pt.memory_bound) << dev.name;
    }
}

TEST(Roofline, DecodeIntensityIsTwoMacsPerByteish) {
    // W4 g128: ~0.52 B per weight, 1 MAC per weight -> ~1.9 MACs/byte.
    const RooflinePoint pt =
        Roofline::decode(DeviceRoofline::kv260_accelerator(), kLlama, kScheme);
    EXPECT_NEAR(pt.intensity, 1.0 / kScheme.bytes_per_weight(), 1e-9);
    EXPECT_NEAR(pt.intensity, 1.92, 0.02);
}

TEST(Roofline, DecodeRateMatchesBandwidthArithmetic) {
    const DeviceRoofline dev = DeviceRoofline::kv260_accelerator();
    const RooflinePoint pt = Roofline::decode(dev, kLlama, kScheme);
    const double macs_per_token =
        static_cast<double>(kLlama.layer_params() + kLlama.lm_head_params());
    // Attainable rate = bandwidth / weight bytes: the whole paper in one line.
    EXPECT_NEAR(pt.tokens_per_s(macs_per_token),
                19.2e9 / (macs_per_token * kScheme.bytes_per_weight()), 1e-6);
}

TEST(Roofline, Kv260RidgeIsExactlyTwoMacsPerByte) {
    // 128 MACs/clk * 300 MHz over 19.2 GB/s = 2.0 MACs/byte: the VPU is sized
    // to put the ridge exactly at the decode intensity — the paper's
    // "bandwidth-area balanced" engine, in roofline terms.
    EXPECT_NEAR(DeviceRoofline::kv260_accelerator().ridge_intensity(), 2.0, 1e-12);
}

TEST(Roofline, PrefillCrossesToComputeBound) {
    const DeviceRoofline dev = DeviceRoofline::kv260_accelerator();
    const RooflinePoint p1 = Roofline::prefill(dev, kLlama, kScheme, 1);
    EXPECT_TRUE(p1.memory_bound);
    const RooflinePoint p64 = Roofline::prefill(dev, kLlama, kScheme, 64);
    EXPECT_FALSE(p64.memory_bound);
}

TEST(Roofline, CrossoverIsTinyOnOurAcceleratorHugeOnOrin) {
    // On the KV260 accelerator any prompt longer than ~1 token is already
    // compute-bound (the engine is decode-sized); the AGX Orin stays
    // memory-bound until prompts of ~100 tokens.
    const double ours = Roofline::crossover_prompt_len(
        DeviceRoofline::kv260_accelerator(), kLlama, kScheme);
    const double orin = Roofline::crossover_prompt_len(
        DeviceRoofline::jetson_agx_orin(), kLlama, kScheme);
    EXPECT_LT(ours, 2.0);
    EXPECT_GT(orin, 50.0);
}

TEST(Roofline, AttainableNeverExceedsCeilings) {
    for (const std::size_t n : {1u, 4u, 16u, 256u, 1024u}) {
        const DeviceRoofline dev = DeviceRoofline::kv260_accelerator();
        const RooflinePoint pt = Roofline::prefill(dev, kLlama, kScheme, n);
        EXPECT_LE(pt.attainable_macs, dev.peak_macs_per_s * (1 + 1e-12));
        EXPECT_LE(pt.attainable_macs,
                  pt.intensity * dev.peak_bytes_per_s * (1 + 1e-12));
    }
}

TEST(Roofline, HigherPrecisionLowersIntensity) {
    const DeviceRoofline dev = DeviceRoofline::kv260_accelerator();
    const RooflinePoint w4 = Roofline::decode(dev, kLlama, kScheme);
    const RooflinePoint fp16 =
        Roofline::decode(dev, kLlama, model::QuantScheme::fp16_baseline());
    EXPECT_GT(w4.intensity, fp16.intensity * 3.5);
    EXPECT_GT(w4.attainable_macs, fp16.attainable_macs * 3.5);
}

}  // namespace
}  // namespace efld::analytic
