// Resource and power models vs. the paper's Table I.
#include <gtest/gtest.h>

#include "analytic/power_model.hpp"
#include "analytic/resource_model.hpp"

namespace efld::analytic {
namespace {

TEST(ResourceModel, Table1TotalsWithinTolerance) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const ResourceVector t = r.total();
    EXPECT_NEAR(t.lut, 78e3, 78e3 * 0.03);
    EXPECT_NEAR(t.ff, 105e3, 105e3 * 0.03);
    EXPECT_NEAR(t.carry, 3.8e3, 3.8e3 * 0.10);
    EXPECT_NEAR(t.dsp, 291, 10);
    EXPECT_NEAR(t.uram, 10, 1);
    EXPECT_NEAR(t.bram, 36.5, 2);
}

TEST(ResourceModel, Table1PerUnitBreakdown) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    EXPECT_NEAR(r.mem_ctrl.lut, 14e3, 1e3);
    EXPECT_NEAR(r.mem_ctrl.bram, 30, 2);
    EXPECT_NEAR(r.mem_ctrl.uram, 7, 0.5);
    EXPECT_NEAR(r.vpu.lut, 34e3, 2e3);
    EXPECT_NEAR(r.vpu.dsp, 266, 5);
    EXPECT_EQ(r.vpu.bram, 0);
    EXPECT_NEAR(r.spu.lut, 29e3, 2e3);
    EXPECT_NEAR(r.spu.dsp, 24, 3);
    EXPECT_NEAR(r.spu.uram, 3, 0.5);
    EXPECT_NEAR(r.spu.bram, 6.5, 1);
}

TEST(ResourceModel, UtilizationMatchesPaperPercentages) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const FpgaDevice dev = FpgaDevice::kv260();
    const ResourceVector t = r.total();
    EXPECT_NEAR(ResourceModel::utilization_pct(t.lut, dev.capacity.lut), 67, 3);
    EXPECT_NEAR(ResourceModel::utilization_pct(t.ff, dev.capacity.ff), 45, 3);
    EXPECT_NEAR(ResourceModel::utilization_pct(t.dsp, dev.capacity.dsp), 24, 2);
    EXPECT_NEAR(ResourceModel::utilization_pct(t.uram, dev.capacity.uram), 16, 2);
    EXPECT_NEAR(ResourceModel::utilization_pct(t.bram, dev.capacity.bram), 25, 3);
}

TEST(ResourceModel, DeployedConfigFitsKv260) {
    // The paper closes timing at 300 MHz with ~70% system LUTs; 25% headroom
    // is the practical routability ceiling the deployed design sits under.
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    EXPECT_TRUE(ResourceModel::fits(r, FpgaDevice::kv260(), 0.25));
}

TEST(ResourceModel, DoubleLanesDoNotFit) {
    // The bandwidth-area tradeoff of §VI.B: a 256-lane VPU blows past the
    // 300 MHz routability ceiling on the KV260 (and would be pointless — the
    // stream only feeds 128 weights per clock).
    ArchParams p;
    p.vpu_lanes = 256;
    const ResourceBreakdown r = ResourceModel::estimate(p);
    EXPECT_FALSE(ResourceModel::fits(r, FpgaDevice::kv260(), 0.25));
    EXPECT_TRUE(ResourceModel::fits(r, FpgaDevice::u280(), 0.25));
}

TEST(ResourceModel, LanesScaleVpuLinearly) {
    ArchParams small, big;
    small.vpu_lanes = 64;
    big.vpu_lanes = 128;
    const auto rs = ResourceModel::estimate(small);
    const auto rb = ResourceModel::estimate(big);
    EXPECT_NEAR(rb.vpu.dsp / rs.vpu.dsp, 2.0, 0.1);
    EXPECT_NEAR(rb.vpu.lut / rs.vpu.lut, 2.0, 0.1);
    // MCU and SPU unchanged.
    EXPECT_EQ(rb.mem_ctrl.lut, rs.mem_ctrl.lut);
    EXPECT_EQ(rb.spu.lut, rs.spu.lut);
}

TEST(ResourceModel, PortsScaleMcu) {
    ArchParams two, four;
    two.axi_ports = 2;
    const auto r2 = ResourceModel::estimate(two);
    const auto r4 = ResourceModel::estimate(four);
    EXPECT_GT(r4.mem_ctrl.bram, r2.mem_ctrl.bram);
    EXPECT_GT(r4.mem_ctrl.lut, r2.mem_ctrl.lut);
}

TEST(ResourceModel, FifoSlotsScaleSpuUram) {
    ArchParams small, big;
    small.scale_zero_fifo_slots = 2 * 32 * 32;
    big.scale_zero_fifo_slots = 4 * 2 * 32 * 32;
    const auto rs = ResourceModel::estimate(small);
    const auto rb = ResourceModel::estimate(big);
    EXPECT_GT(rb.spu.uram, rs.spu.uram);
}

TEST(PowerModel, MatchesPaperTotal) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const PowerEstimate p = PowerModel::estimate(r, 300.0);
    EXPECT_NEAR(p.total_w(), 6.57, 0.25);
}

TEST(PowerModel, DynamicScalesWithClock) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const PowerEstimate slow = PowerModel::estimate(r, 150.0);
    const PowerEstimate fast = PowerModel::estimate(r, 300.0);
    EXPECT_NEAR(fast.dynamic_w / slow.dynamic_w, 2.0, 1e-9);
    EXPECT_EQ(fast.ps_static_w, slow.ps_static_w);
}

TEST(PowerModel, JoulesPerToken) {
    const ResourceBreakdown r = ResourceModel::estimate(ArchParams{});
    const PowerEstimate p = PowerModel::estimate(r, 300.0);
    // ~6.57 W at 4.9 token/s ~= 1.34 J/token.
    EXPECT_NEAR(PowerModel::joules_per_token(p, 4.9), 1.34, 0.1);
}

}  // namespace
}  // namespace efld::analytic
