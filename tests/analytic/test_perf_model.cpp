// Performance model and comparison tables vs. the paper's numbers.
#include <gtest/gtest.h>

#include <sstream>

#include "analytic/comparison.hpp"
#include "common/check.hpp"

namespace efld::analytic {
namespace {

TEST(PerfModel, TheoreticalRatesMatchPaperFootnotes) {
    // Table II column token/s^1.
    EXPECT_NEAR(PerfModel::theoretical_token_s(460, 1.5e9, 16), 153.0, 2.0);   // DFX
    EXPECT_NEAR(PerfModel::theoretical_token_s(460, 7e9, 4), 131.0, 2.0);      // FlightLLM
    EXPECT_NEAR(PerfModel::theoretical_token_s(2.1, 1.1e9, 4), 3.8, 0.1);      // SECDA
    EXPECT_NEAR(PerfModel::theoretical_token_s(21.3, 1.1e9, 8), 19.3, 0.2);    // LlamaF
    EXPECT_NEAR(PerfModel::theoretical_token_s(19.2, 6.62e9, 4), 5.8, 0.05);   // Ours
    // Table III.
    EXPECT_NEAR(PerfModel::theoretical_token_s(12.8, 6.62e9, 4), 3.9, 0.1);    // Pi
    EXPECT_NEAR(PerfModel::theoretical_token_s(204.8, 6.62e9, 4), 62.5, 1.5);  // AGX
    EXPECT_NEAR(PerfModel::theoretical_token_s(68, 6.62e9, 4), 20.7, 0.5);     // Nano
}

TEST(PerfModel, UtilizationsMatchPaper) {
    const auto rows = table2_fpga_rows();
    // DFX 13.7%, FlightLLM 42%, EdgeLLM 49%, SECDA 15.2%, LlamaF 7.7%.
    const double expected[] = {13.7, 42.0, 49.0, 15.2, 7.7};
    ASSERT_EQ(rows.size(), 5u);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PerfPoint p = PerfModel::evaluate(rows[i]);
        EXPECT_NEAR(p.utilization_pct(), expected[i], 2.0) << rows[i].work;
    }
}

TEST(PerfModel, Table3UtilizationsMatchPaper) {
    const auto rows = table3_edge_rows();
    const double expected[] = {2.8, 7.2, 52.8, 75.4, 79.2};
    ASSERT_EQ(rows.size(), 5u);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PerfPoint p = PerfModel::evaluate(rows[i]);
        EXPECT_NEAR(p.utilization_pct(), expected[i], 1.5) << rows[i].framework;
    }
}

TEST(PerfModel, OursAt4_9Gives84_5) {
    const PerfPoint p = PerfModel::evaluate(ours_row_template(), 4.9);
    EXPECT_NEAR(p.utilization_pct(), 84.5, 1.0);
}

TEST(Comparison, OursHasHighestUtilizationInTable2) {
    const auto rows = build_table2(4.9);
    const auto& ours = rows.back();
    ASSERT_EQ(ours.row.work, "Ours");
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        EXPECT_GT(ours.perf.utilization_pct(), rows[i].perf.utilization_pct())
            << rows[i].row.work;
    }
}

TEST(Comparison, OursBeatsNanoLlmUtilizationInTable3) {
    // Paper: "6% higher utilization than the Jetson Orin Nano using NanoLLM".
    const auto rows = build_table3(4.9);
    double nano_util = 0, ours_util = 0;
    for (const auto& r : rows) {
        if (r.row.device == "JetsonOrinNano") nano_util = r.perf.utilization_pct();
        if (r.row.work == "Ours") ours_util = r.perf.utilization_pct();
    }
    EXPECT_GT(ours_util, nano_util);
    EXPECT_NEAR(ours_util - nano_util, 5.3, 2.5);
}

TEST(Comparison, CloudFpgasFasterButLessEfficient) {
    // The paper's framing: HBM FPGAs win on absolute token/s, lose on
    // bandwidth utilization.
    const auto rows = build_table2(4.9);
    const auto& ours = rows.back();
    for (const auto& r : rows) {
        if (r.row.cls == PlatformClass::kCloudHbmFpga) {
            EXPECT_GT(r.perf.measured_token_s, ours.perf.measured_token_s);
            EXPECT_LT(r.perf.utilization_pct(), ours.perf.utilization_pct());
        }
    }
}

TEST(Comparison, PrintersProduceAllRows) {
    std::ostringstream os2, os3;
    print_table2(os2, build_table2(4.9));
    print_table3(os3, build_table3(4.9));
    const std::string t2 = os2.str(), t3 = os3.str();
    for (const char* name : {"DFX", "FlightLLM", "EdgeLLM", "SECDA", "LlamaF", "Ours"}) {
        EXPECT_NE(t2.find(name), std::string::npos) << name;
    }
    for (const char* name : {"llama.cpp", "TinyChat", "NanoLLM", "Ours"}) {
        EXPECT_NE(t3.find(name), std::string::npos) << name;
    }
}

TEST(PerfModel, EvaluateWithoutReportThrows) {
    ComparisonRow r = ours_row_template();  // no reported_token_s
    EXPECT_THROW((void)PerfModel::evaluate(r), efld::Error);
}

}  // namespace
}  // namespace efld::analytic
