// Token samplers (greedy, temperature, top-k, top-p).
#include <gtest/gtest.h>

#include <map>

#include "model/sampler.hpp"

namespace efld::model {
namespace {

TEST(Sampler, ArgmaxPicksLargest) {
    const std::vector<float> logits{0.1f, 5.0f, -2.0f, 4.9f};
    EXPECT_EQ(Sampler::argmax(logits), 1);
}

TEST(Sampler, GreedyViaZeroTemperature) {
    SamplerConfig cfg;
    cfg.temperature = 0.0f;
    Sampler s(cfg);
    const std::vector<float> logits{0.0f, 1.0f, 10.0f};
    for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(logits), 2);
}

TEST(Sampler, DeterministicPerSeed) {
    SamplerConfig cfg;
    cfg.temperature = 1.0f;
    cfg.seed = 99;
    Sampler a(cfg), b(cfg);
    const std::vector<float> logits{1.0f, 1.1f, 0.9f, 1.05f};
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a.sample(logits), b.sample(logits));
}

TEST(Sampler, TopKExcludesTail) {
    SamplerConfig cfg;
    cfg.temperature = 2.0f;  // flat enough to hit the tail if allowed
    cfg.top_k = 2;
    Sampler s(cfg);
    const std::vector<float> logits{3.0f, 2.9f, -100.0f, -100.0f};
    for (int i = 0; i < 200; ++i) {
        const auto id = s.sample(logits);
        EXPECT_TRUE(id == 0 || id == 1) << id;
    }
}

TEST(Sampler, TopPExcludesTail) {
    SamplerConfig cfg;
    cfg.temperature = 1.0f;
    cfg.top_p = 0.5f;
    Sampler s(cfg);
    // Token 0 has ~88% mass; nucleus at 0.5 keeps only it.
    const std::vector<float> logits{2.0f, 0.0f, 0.0f, 0.0f};
    for (int i = 0; i < 200; ++i) EXPECT_EQ(s.sample(logits), 0);
}

TEST(Sampler, SamplesRoughlyProportionally) {
    SamplerConfig cfg;
    cfg.temperature = 1.0f;
    cfg.seed = 7;
    Sampler s(cfg);
    // exp(1)/exp(0) ~= 2.72: token 1 should win ~73% of draws.
    const std::vector<float> logits{0.0f, 1.0f};
    std::map<int, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i) ++counts[s.sample(logits)];
    const double p1 = static_cast<double>(counts[1]) / n;
    EXPECT_NEAR(p1, std::exp(1.0) / (1.0 + std::exp(1.0)), 0.02);
}

TEST(Sampler, LowTemperatureSharpens) {
    SamplerConfig hot, cold;
    hot.temperature = 2.0f;
    hot.seed = 1;
    cold.temperature = 0.25f;
    cold.seed = 1;
    Sampler sh(hot), sc(cold);
    const std::vector<float> logits{0.0f, 1.0f};
    int hot1 = 0, cold1 = 0;
    for (int i = 0; i < 5000; ++i) {
        if (sh.sample(logits) == 1) ++hot1;
        if (sc.sample(logits) == 1) ++cold1;
    }
    EXPECT_GT(cold1, hot1);
}

}  // namespace
}  // namespace efld::model
