// Reference kernels: RMSNorm, RoPE, softmax, SiLU, attention.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "model/kernels.hpp"

namespace efld::model {
namespace {

TEST(Rmsnorm, UnitWeightNormalizesRms) {
    std::vector<float> x{1, 2, 3, 4}, w(4, 1.0f), out(4);
    rmsnorm(x, w, 0.0f, out);
    double ms = 0;
    for (const float v : out) ms += v * v;
    EXPECT_NEAR(ms / 4.0, 1.0, 1e-5);  // output RMS is 1
}

TEST(Rmsnorm, WeightScalesElementwise) {
    std::vector<float> x{1, 1, 1, 1}, w{1, 2, 3, 4}, out(4);
    rmsnorm(x, w, 0.0f, out);
    EXPECT_NEAR(out[1] / out[0], 2.0f, 1e-5);
    EXPECT_NEAR(out[3] / out[0], 4.0f, 1e-5);
}

TEST(Rmsnorm, EpsilonPreventsDivideByZero) {
    std::vector<float> x(8, 0.0f), w(8, 1.0f), out(8);
    rmsnorm(x, w, 1e-5f, out);
    for (const float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(Rope, PositionZeroIsIdentity) {
    std::vector<float> v{0.1f, 0.2f, 0.3f, 0.4f};
    const std::vector<float> orig = v;
    rope_rotate(v, 0, 10000.0f);
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], orig[i], 1e-6f);
}

TEST(Rope, PreservesNorm) {
    Xoshiro256 rng(1);
    std::vector<float> v(128);
    for (auto& x : v) x = static_cast<float>(rng.gaussian());
    const double n0 = std::inner_product(v.begin(), v.end(), v.begin(), 0.0);
    rope_rotate(v, 777, 10000.0f);
    const double n1 = std::inner_product(v.begin(), v.end(), v.begin(), 0.0);
    EXPECT_NEAR(n1, n0, 1e-3 * n0);  // rotations are orthogonal
}

TEST(Rope, RelativePositionProperty) {
    // The RoPE dot product depends only on the position difference:
    // <R(p)q, R(p+d)k> must be equal for any p with the same d.
    Xoshiro256 rng(2);
    std::vector<float> q0(64), k0(64);
    for (auto& x : q0) x = static_cast<float>(rng.gaussian());
    for (auto& x : k0) x = static_cast<float>(rng.gaussian());

    auto rotated_dot = [&](std::size_t p, std::size_t d) {
        std::vector<float> q = q0, k = k0;
        rope_rotate(q, p, 10000.0f);
        rope_rotate(k, p + d, 10000.0f);
        double acc = 0;
        for (std::size_t i = 0; i < q.size(); ++i) acc += q[i] * k[i];
        return acc;
    };

    const double a = rotated_dot(0, 5);
    const double b = rotated_dot(100, 5);
    const double c = rotated_dot(917, 5);
    EXPECT_NEAR(a, b, 1e-2 * std::abs(a) + 1e-3);
    EXPECT_NEAR(a, c, 1e-2 * std::abs(a) + 1e-3);
}

TEST(Rope, DifferentPositionsProduceDifferentVectors) {
    std::vector<float> a{1, 0, 0, 0}, b{1, 0, 0, 0};
    rope_rotate(a, 1, 10000.0f);
    rope_rotate(b, 2, 10000.0f);
    EXPECT_NE(a[0], b[0]);
}

TEST(Softmax, MatchesDirectComputation) {
    const std::vector<float> x{0.5f, -1.0f, 2.0f};
    std::vector<float> out(3);
    softmax(x, out);
    const float denom = std::exp(0.5f) + std::exp(-1.0f) + std::exp(2.0f);
    EXPECT_NEAR(out[0], std::exp(0.5f) / denom, 1e-6f);
    EXPECT_NEAR(out[2], std::exp(2.0f) / denom, 1e-6f);
}

TEST(Softmax, HandlesExtremeLogits) {
    const std::vector<float> x{-1e4f, 0.0f, 1e4f};
    std::vector<float> out(3);
    softmax(x, out);
    EXPECT_NEAR(out[2], 1.0f, 1e-6f);
    EXPECT_TRUE(std::isfinite(out[0]));
}

TEST(Silu, GateMultiplication) {
    const std::vector<float> gate{1.0f, -1.0f}, up{2.0f, 3.0f};
    std::vector<float> out(2);
    silu_gate(gate, up, out);
    const float s1 = 1.0f / (1.0f + std::exp(-1.0f));
    EXPECT_NEAR(out[0], s1 * 2.0f, 1e-6f);
    EXPECT_NEAR(out[1], (-1.0f) * (1.0f - s1) * 3.0f, 1e-6f);
}

TEST(Silu, InplaceMatchesScalar) {
    std::vector<float> x{-2.0f, -0.5f, 0.0f, 0.5f, 2.0f};
    const std::vector<float> orig = x;
    silu_inplace(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], orig[i] / (1.0f + std::exp(-orig[i])), 1e-6f);
    }
}

TEST(Attention, SingleTokenReturnsItsValue) {
    // With one cached token the softmax is 1 and the output is that value.
    const std::size_t hd = 8;
    std::vector<float> q(hd, 0.5f), k(hd, 0.3f), v(hd);
    for (std::size_t i = 0; i < hd; ++i) v[i] = static_cast<float>(i);
    std::vector<float> out(hd);
    attention_head(q, k, v, 1, hd, out);
    for (std::size_t i = 0; i < hd; ++i) EXPECT_NEAR(out[i], v[i], 1e-5f);
}

TEST(Attention, StrongMatchDominates) {
    const std::size_t hd = 4, ctx = 3;
    std::vector<float> q{10, 0, 0, 0};
    std::vector<float> keys(ctx * hd, 0.0f);
    keys[1 * hd + 0] = 10.0f;  // token 1 matches q strongly
    std::vector<float> values(ctx * hd, 0.0f);
    values[0 * hd + 0] = 1.0f;
    values[1 * hd + 0] = 2.0f;
    values[2 * hd + 0] = 3.0f;
    std::vector<float> out(hd);
    attention_head(q, keys, values, ctx, hd, out);
    EXPECT_NEAR(out[0], 2.0f, 0.01f);
}

TEST(Attention, UniformKeysAverageValues) {
    const std::size_t hd = 2, ctx = 4;
    std::vector<float> q{1, 1};
    std::vector<float> keys(ctx * hd, 0.0f);  // all scores identical
    std::vector<float> values(ctx * hd);
    for (std::size_t t = 0; t < ctx; ++t) {
        values[t * hd] = static_cast<float>(t);
        values[t * hd + 1] = 1.0f;
    }
    std::vector<float> out(hd);
    attention_head(q, keys, values, ctx, hd, out);
    EXPECT_NEAR(out[0], 1.5f, 1e-5f);  // mean of 0..3
    EXPECT_NEAR(out[1], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace efld::model
