// Golden reference engine: determinism, causality, quantized variants.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/mathutil.hpp"
#include "model/reference_engine.hpp"

namespace efld::model {
namespace {

const ModelWeights& micro_weights() {
    static const ModelWeights w = ModelWeights::synthetic(ModelConfig::micro_256(), 42);
    return w;
}

TEST(ReferenceEngine, LogitShapeAndFiniteness) {
    ReferenceEngine eng(micro_weights());
    const auto logits = eng.forward(5);
    ASSERT_EQ(logits.size(), micro_weights().config.vocab_size);
    for (const float v : logits) EXPECT_TRUE(std::isfinite(v));
}

TEST(ReferenceEngine, DeterministicAcrossInstances) {
    ReferenceEngine a(micro_weights()), b(micro_weights());
    const auto la = a.forward(7);
    const auto lb = b.forward(7);
    EXPECT_EQ(la, lb);
}

TEST(ReferenceEngine, PositionAdvances) {
    ReferenceEngine eng(micro_weights());
    EXPECT_EQ(eng.position(), 0u);
    (void)eng.forward(1);
    (void)eng.forward(2);
    EXPECT_EQ(eng.position(), 2u);
}

TEST(ReferenceEngine, ContextChangesLogits) {
    // Same token at position 1 after different history must differ (KV cache
    // is actually consulted).
    ReferenceEngine a(micro_weights()), b(micro_weights());
    (void)a.forward(1);
    (void)b.forward(2);
    const auto la = a.forward(9);
    const auto lb = b.forward(9);
    EXPECT_NE(la, lb);
}

TEST(ReferenceEngine, ResetRestoresInitialState) {
    ReferenceEngine eng(micro_weights());
    const auto first = eng.forward(3);
    (void)eng.forward(4);
    eng.reset();
    EXPECT_EQ(eng.position(), 0u);
    EXPECT_EQ(eng.forward(3), first);
}

TEST(ReferenceEngine, PrefillEqualsStepByStep) {
    ReferenceEngine a(micro_weights()), b(micro_weights());
    const std::vector<std::int32_t> prompt{1, 5, 9, 2};
    const auto la = a.prefill(prompt);
    std::vector<float> lb;
    for (const auto t : prompt) lb = b.forward(t);
    EXPECT_EQ(la, lb);
}

TEST(ReferenceEngine, RejectsBadToken) {
    ReferenceEngine eng(micro_weights());
    EXPECT_THROW((void)eng.forward(-1), efld::Error);
    EXPECT_THROW(
        (void)eng.forward(static_cast<std::int32_t>(micro_weights().config.vocab_size)),
        efld::Error);
}

TEST(ReferenceEngine, Kv8VariantStaysClose) {
    ReferenceEngine fp(micro_weights());
    ReferenceEngine kv8(micro_weights(), /*use_kv8=*/true);
    std::vector<float> lf, lq;
    for (const std::int32_t t : {1, 2, 3, 4, 5, 6}) {
        lf = fp.forward(t);
        lq = kv8.forward(t);
    }
    EXPECT_GT(efld::cosine_similarity(lf, lq), 0.999);
}

TEST(ReferenceEngine, W4VariantStaysClose) {
    quant::GroupQuantConfig qc;
    const QuantizedModelWeights qw =
        QuantizedModelWeights::quantize(micro_weights(), qc);
    ReferenceEngine fp(micro_weights());
    ReferenceEngine w4(qw);
    std::vector<float> lf, lq;
    for (const std::int32_t t : {1, 2, 3, 4}) {
        lf = fp.forward(t);
        lq = w4.forward(t);
    }
    // Random gaussian weights are the worst case for 4-bit groups (no trained
    // structure); real checkpoints sit much higher. 0.95 still catches any
    // systematic quantizer bug.
    EXPECT_GT(efld::cosine_similarity(lf, lq), 0.95);
}

TEST(ReferenceEngine, Kv4DegradesMoreThanKv8) {
    // The §IV.B argument: KV8 is near-transparent, KV4 measurably is not.
    ReferenceEngine golden(micro_weights());
    ReferenceEngine kv8(micro_weights(), true, 8);
    ReferenceEngine kv4(micro_weights(), true, 4);
    std::vector<float> lg, l8, l4;
    for (const std::int32_t t : {1, 2, 3, 4, 5, 6, 7, 8}) {
        lg = golden.forward(t);
        l8 = kv8.forward(t);
        l4 = kv4.forward(t);
    }
    const double sim8 = efld::cosine_similarity(lg, l8);
    const double sim4 = efld::cosine_similarity(lg, l4);
    EXPECT_GT(sim8, sim4);
    EXPECT_GT(sim8, 0.999);
    EXPECT_LT(sim4, 0.999);
}

TEST(ReferenceEngine, GqaConfigRuns) {
    // TinyLlama-style GQA geometry at micro scale: 4 heads, 2 KV heads.
    ModelConfig cfg = ModelConfig::micro_256();
    cfg.name = "micro-gqa";
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    const ModelWeights w = ModelWeights::synthetic(cfg, 17);
    ReferenceEngine eng(w);
    const auto logits = eng.prefill(std::vector<std::int32_t>{1, 2, 3});
    for (const float v : logits) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace efld::model
