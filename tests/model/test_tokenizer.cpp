// Byte tokenizer round trips and merge behaviour.
#include <gtest/gtest.h>

#include "model/tokenizer.hpp"

namespace efld::model {
namespace {

TEST(Tokenizer, EncodeDecodesRoundTrip) {
    ByteTokenizer tok;
    const std::string text = "Hello, FPGA world! \xF0\x9F\x98\x80";
    const auto ids = tok.encode(text);
    EXPECT_EQ(ids.front(), ByteTokenizer::kBos);
    EXPECT_EQ(tok.decode(ids), text);
}

TEST(Tokenizer, EncodeWithoutBos) {
    ByteTokenizer tok;
    const auto ids = tok.encode("ab", false);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], ByteTokenizer::kByteBase + 'a');
    EXPECT_EQ(ids[1], ByteTokenizer::kByteBase + 'b');
}

TEST(Tokenizer, EmptyString) {
    ByteTokenizer tok;
    const auto ids = tok.encode("", true);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], ByteTokenizer::kBos);
    EXPECT_EQ(tok.decode(ids), "");
}

TEST(Tokenizer, SpecialsDecodeToNothing) {
    ByteTokenizer tok;
    EXPECT_EQ(tok.decode_token(ByteTokenizer::kBos), "");
    EXPECT_EQ(tok.decode_token(ByteTokenizer::kEos), "");
    EXPECT_EQ(tok.decode_token(ByteTokenizer::kPad), "");
}

TEST(Tokenizer, MergesPreferLongestMatch) {
    ByteTokenizer tok;
    tok.add_merge("th");
    tok.add_merge("the");
    const auto ids = tok.encode("the", false);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], ByteTokenizer::kByteBase + 256 + 1);  // "the", not "th"+"e"
    EXPECT_EQ(tok.decode(ids), "the");
}

TEST(Tokenizer, MergesReduceTokenCount) {
    ByteTokenizer plain;
    ByteTokenizer merged;
    merged.add_merge("hello");
    const std::string text = "hello hello";
    EXPECT_LT(merged.encode(text).size(), plain.encode(text).size());
    EXPECT_EQ(merged.decode(merged.encode(text)), text);
}

TEST(Tokenizer, VocabSizeGrowsWithMerges) {
    ByteTokenizer tok;
    const auto base = tok.vocab_size();
    tok.add_merge("ab");
    EXPECT_EQ(tok.vocab_size(), base + 1);
}

TEST(Tokenizer, OutOfTableIdsRenderAsReplacement) {
    // Models can have vocab padding rows beyond the tokenizer table; they
    // must decode to U+FFFD, never crash.
    ByteTokenizer tok;
    EXPECT_EQ(tok.decode_token(tok.vocab_size()), "\xEF\xBF\xBD");
    EXPECT_EQ(tok.decode_token(-5), "");
}

TEST(Tokenizer, AllByteValuesRoundTrip) {
    ByteTokenizer tok;
    std::string text;
    for (int b = 0; b < 256; ++b) text.push_back(static_cast<char>(b));
    EXPECT_EQ(tok.decode(tok.encode(text, false)), text);
}

}  // namespace
}  // namespace efld::model
