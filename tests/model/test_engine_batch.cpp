// Batched multi-session decode parity: decode_batch of N sessions must be
// bit-for-bit identical to N independent single-session decode runs, for
// every batch size, thread count, and weight storage (8-bit codes and the
// packed-4bit bus stream).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "model/reference_engine.hpp"

namespace efld::model {
namespace {

const ModelConfig& gqa_cfg() {
    static const ModelConfig cfg = [] {
        ModelConfig c = ModelConfig::micro_256();
        c.name = "micro-gqa";
        c.n_heads = 4;
        c.n_kv_heads = 2;  // exercise the per-(lane, KV-head) task path
        return c;
    }();
    return cfg;
}

const QuantizedModelWeights& weights_w4() {
    static const QuantizedModelWeights qw = QuantizedModelWeights::quantize(
        ModelWeights::synthetic(gqa_cfg(), 42), quant::GroupQuantConfig{});
    return qw;
}

const QuantizedModelWeights& weights_w8() {
    static const QuantizedModelWeights qw = [] {
        quant::GroupQuantConfig qc;
        qc.bits = 8;
        return QuantizedModelWeights::quantize(ModelWeights::synthetic(gqa_cfg(), 42), qc);
    }();
    return qw;
}

// Deterministic distinct token stream for session s.
std::int32_t stream_token(std::size_t s, std::size_t step) {
    const auto vocab = static_cast<std::int32_t>(gqa_cfg().vocab_size);
    return static_cast<std::int32_t>((7 * s + 13 * step + 1) % vocab);
}

// Runs `steps` batched decode steps over `batch` sessions and compares every
// logits row against an independent single-session engine fed the same
// stream.
void expect_batch_matches_solo(const QuantizedModelWeights& qw, EngineOptions opts,
                               std::size_t batch, std::size_t steps) {
    opts.max_batch = batch;
    ReferenceEngine batched(qw, opts);

    EngineOptions solo_opts = opts;
    solo_opts.max_batch = 1;

    std::vector<std::vector<std::vector<float>>> want(batch);  // [s][step][vocab]
    for (std::size_t s = 0; s < batch; ++s) {
        ReferenceEngine solo(qw, solo_opts);
        for (std::size_t i = 0; i < steps; ++i) {
            want[s].push_back(solo.forward(stream_token(s, i)));
        }
    }

    std::vector<std::int32_t> tokens(batch);
    std::vector<std::size_t> slots(batch);
    const std::size_t vocab = qw.config.vocab_size;
    for (std::size_t i = 0; i < steps; ++i) {
        for (std::size_t s = 0; s < batch; ++s) {
            tokens[s] = stream_token(s, i);
            slots[s] = s;
        }
        const std::span<const float> logits = batched.decode_batch(tokens, slots);
        ASSERT_EQ(logits.size(), batch * vocab);
        for (std::size_t s = 0; s < batch; ++s) {
            const std::vector<float> got(logits.begin() + s * vocab,
                                         logits.begin() + (s + 1) * vocab);
            ASSERT_EQ(got, want[s][i]) << "session " << s << " step " << i;
        }
    }
}

TEST(EngineBatch, MatchesIndependentDecodes8BitWeights) {
    for (const std::size_t batch : {1u, 2u, 4u, 8u}) {
        for (const std::size_t threads : {1u, 4u}) {
            expect_batch_matches_solo(
                weights_w8(), EngineOptions{.use_kv8 = true, .threads = threads},
                batch, 3);
        }
    }
}

TEST(EngineBatch, MatchesIndependentDecodesPacked4BitWeights) {
    for (const std::size_t batch : {1u, 2u, 4u, 8u}) {
        for (const std::size_t threads : {1u, 4u}) {
            expect_batch_matches_solo(
                weights_w4(),
                EngineOptions{.use_kv8 = true, .threads = threads, .packed_weights = true},
                batch, 3);
        }
    }
}

TEST(EngineBatch, PackedWalkIdenticalToByteCodeWalk) {
    // The packed 4-bit bus stream and the byte-per-code storage follow the
    // same accumulation contract, so whole-engine logits agree bit-for-bit.
    ReferenceEngine bytes(weights_w4(), EngineOptions{.use_kv8 = true});
    ReferenceEngine packed(weights_w4(),
                           EngineOptions{.use_kv8 = true, .packed_weights = true});
    for (const std::int32_t t : {1, 7, 30, 2, 99}) {
        EXPECT_EQ(bytes.forward(t), packed.forward(t)) << "token " << t;
    }
}

TEST(EngineBatch, StaggeredPositionsStayBitExact) {
    // Sessions at different context lengths batch together: prefill slot 0 by
    // 5 tokens and slot 1 by 2, then decode both in one batch. This is the
    // token-boundary join continuous batching relies on.
    EngineOptions opts{.use_kv8 = true, .max_batch = 2};
    ReferenceEngine batched(weights_w4(), opts);

    ReferenceEngine solo_a(weights_w4(), EngineOptions{.use_kv8 = true});
    ReferenceEngine solo_b(weights_w4(), EngineOptions{.use_kv8 = true});

    const std::vector<std::int32_t> warm_a{11, 12, 13, 14, 15};
    const std::vector<std::int32_t> warm_b{21, 22};
    for (const auto t : warm_a) {
        const std::size_t s = 0;
        (void)batched.decode_batch(std::span<const std::int32_t>(&t, 1),
                                   std::span<const std::size_t>(&s, 1));
        (void)solo_a.decode(t);
    }
    for (const auto t : warm_b) {
        const std::size_t s = 1;
        (void)batched.decode_batch(std::span<const std::int32_t>(&t, 1),
                                   std::span<const std::size_t>(&s, 1));
        (void)solo_b.decode(t);
    }
    EXPECT_EQ(batched.position(0), 5u);
    EXPECT_EQ(batched.position(1), 2u);

    for (std::size_t i = 0; i < 3; ++i) {
        const std::vector<std::int32_t> tokens{static_cast<std::int32_t>(40 + i),
                                               static_cast<std::int32_t>(60 + i)};
        const std::vector<std::size_t> slots{0, 1};
        const std::span<const float> logits = batched.decode_batch(tokens, slots);
        const std::vector<float> wa = solo_a.forward(tokens[0]);
        const std::vector<float> wb = solo_b.forward(tokens[1]);
        const std::size_t vocab = gqa_cfg().vocab_size;
        EXPECT_TRUE(std::equal(wa.begin(), wa.end(), logits.begin())) << "step " << i;
        EXPECT_TRUE(std::equal(wb.begin(), wb.end(), logits.begin() + vocab))
            << "step " << i;
    }
}

TEST(EngineBatch, SubsetAndReorderedSlots) {
    // A batch may name any distinct subset of slots in any order; each row
    // lines up with its slot, not with slot numbering.
    EngineOptions opts{.use_kv8 = true, .max_batch = 4};
    ReferenceEngine eng(weights_w4(), opts);
    ReferenceEngine solo2(weights_w4(), EngineOptions{.use_kv8 = true});
    ReferenceEngine solo0(weights_w4(), EngineOptions{.use_kv8 = true});

    const std::vector<std::int32_t> tokens{5, 9};
    const std::vector<std::size_t> slots{2, 0};
    const std::span<const float> logits = eng.decode_batch(tokens, slots);
    const std::vector<float> w2 = solo2.forward(5);
    const std::vector<float> w0 = solo0.forward(9);
    const std::size_t vocab = gqa_cfg().vocab_size;
    EXPECT_TRUE(std::equal(w2.begin(), w2.end(), logits.begin()));
    EXPECT_TRUE(std::equal(w0.begin(), w0.end(), logits.begin() + vocab));
    EXPECT_EQ(eng.position(2), 1u);
    EXPECT_EQ(eng.position(0), 1u);
    EXPECT_EQ(eng.position(1), 0u);
}

TEST(EngineBatch, ResetSessionClearsOneSlotOnly) {
    EngineOptions opts{.use_kv8 = true, .max_batch = 2};
    ReferenceEngine eng(weights_w4(), opts);
    const std::vector<std::int32_t> tokens{3, 4};
    const std::vector<std::size_t> slots{0, 1};
    (void)eng.decode_batch(tokens, slots);
    eng.reset_session(1);
    EXPECT_EQ(eng.position(0), 1u);
    EXPECT_EQ(eng.position(1), 0u);
}

TEST(EngineBatch, FloatWeightBatchMatchesSolo) {
    static const ModelWeights fw = ModelWeights::synthetic(gqa_cfg(), 17);
    ReferenceEngine batched(fw, EngineOptions{.threads = 2, .max_batch = 3});
    std::vector<std::vector<float>> want;
    for (std::size_t s = 0; s < 3; ++s) {
        ReferenceEngine solo(fw, EngineOptions{.threads = 2});
        want.push_back(solo.forward(stream_token(s, 0)));
    }
    std::vector<std::int32_t> tokens{stream_token(0, 0), stream_token(1, 0),
                                     stream_token(2, 0)};
    std::vector<std::size_t> slots{0, 1, 2};
    const std::span<const float> logits = batched.decode_batch(tokens, slots);
    const std::size_t vocab = gqa_cfg().vocab_size;
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_TRUE(std::equal(want[s].begin(), want[s].end(),
                               logits.begin() + s * vocab))
            << "lane " << s;
    }
}

TEST(EngineBatch, RejectsBadBatches) {
    ReferenceEngine eng(weights_w4(), EngineOptions{.max_batch = 2});
    const std::vector<std::int32_t> t2{1, 2};
    const std::vector<std::size_t> dup{0, 0};
    EXPECT_THROW((void)eng.decode_batch(t2, dup), efld::Error);
    const std::vector<std::size_t> oob{0, 2};
    EXPECT_THROW((void)eng.decode_batch(t2, oob), efld::Error);
    const std::vector<std::int32_t> t3{1, 2, 3};
    const std::vector<std::size_t> s3{0, 1, 2};
    EXPECT_THROW((void)eng.decode_batch(t3, s3), efld::Error);
    EXPECT_THROW((void)eng.decode_batch(std::span<const std::int32_t>(),
                                        std::span<const std::size_t>()),
                 efld::Error);
}

}  // namespace
}  // namespace efld::model
