// Model geometry and footprint arithmetic — the numbers behind Fig. 1 and
// the Table II/III theoretical rates.
#include <gtest/gtest.h>

#include "common/mathutil.hpp"
#include "model/config.hpp"

namespace efld::model {
namespace {

TEST(ModelConfig, Llama7BParameterCount) {
    const ModelConfig c = ModelConfig::llama2_7b();
    // Official LLaMA2-7B: 6.74B parameters.
    EXPECT_NEAR(static_cast<double>(c.total_params()), 6.74e9, 0.02e9);
    EXPECT_EQ(c.layer_params(), 32ull * (4 * 4096 * 4096 + 3 * 4096 * 11008));
    EXPECT_EQ(c.head_dim(), 128u);
    EXPECT_EQ(c.kv_dim(), 4096u);
}

TEST(ModelConfig, TinyLlamaParameterCount) {
    const ModelConfig c = ModelConfig::tinyllama_1_1b();
    EXPECT_NEAR(static_cast<double>(c.total_params()), 1.1e9, 0.05e9);
    EXPECT_EQ(c.kv_dim(), 256u);  // 4 KV heads x 64 head_dim (GQA)
}

TEST(ModelConfig, Gpt2GeometryNear1_5B) {
    EXPECT_NEAR(static_cast<double>(ModelConfig::gpt2_1_5b_geometry().total_params()),
                1.5e9, 0.2e9);
}

TEST(ModelConfig, ChatGlmGeometryNear6B) {
    EXPECT_NEAR(static_cast<double>(ModelConfig::chatglm_6b_geometry().total_params()),
                6.2e9, 0.3e9);
}

TEST(QuantScheme, BytesPerWeight) {
    // W4 g128: 0.5 B codes + (2 + 0.5)/128 B scale/zero.
    EXPECT_NEAR(QuantScheme::w4a16_kv8().bytes_per_weight(), 0.51953125, 1e-9);
    EXPECT_NEAR(QuantScheme::w8a16_kv8().bytes_per_weight(), 1.0 + 3.0 / 128.0, 1e-9);
    EXPECT_EQ(QuantScheme::fp16_baseline().bytes_per_weight(), 2.0);
}

TEST(Footprint, Llama7BWeightsMatchPaper) {
    // The paper stores 3556 MiB of weights; our accounting (embedding fp16,
    // everything else W4 g128) lands within 1%.
    const ModelFootprint f =
        compute_footprint(ModelConfig::llama2_7b(), QuantScheme::w4a16_kv8());
    const double weights_mib = static_cast<double>(f.weight_bytes()) / double(kMiB);
    EXPECT_NEAR(weights_mib, 3556.0, 40.0);
}

TEST(Footprint, Llama7BKvCacheMatchesPaperExactly) {
    // 1024-token KV8 cache: 256 MiB codes + 8 MiB scale-zero packs = 264 MiB,
    // exactly the Fig. 1 number.
    const ModelFootprint f =
        compute_footprint(ModelConfig::llama2_7b(), QuantScheme::w4a16_kv8());
    EXPECT_EQ(f.kv_cache_bytes, 256 * kMiB);
    EXPECT_EQ(f.kv_pack_bytes, 8 * kMiB);
}

TEST(Footprint, Fp16BaselineDoesNotFit4GB) {
    // The motivating arithmetic: LLaMA2-7B at fp16 needs ~13.5 GB — more than
    // three times the KV260's DDR.
    const ModelFootprint f =
        compute_footprint(ModelConfig::llama2_7b(), QuantScheme::fp16_baseline());
    EXPECT_GT(f.weight_bytes(), 13.0e9);
    EXPECT_GT(f.weight_bytes(), 3 * (4ull * kGiB));
}

TEST(Footprint, KvScalesLinearlyWithContext) {
    ModelConfig c = ModelConfig::llama2_7b();
    c.max_seq_len = 512;
    const auto f512 = compute_footprint(c, QuantScheme::w4a16_kv8());
    c.max_seq_len = 1024;
    const auto f1024 = compute_footprint(c, QuantScheme::w4a16_kv8());
    EXPECT_EQ(f1024.kv_total_bytes(), 2 * f512.kv_total_bytes());
    EXPECT_EQ(f1024.weight_bytes(), f512.weight_bytes());
}

TEST(DecodeTraffic, WeightsDominateAtShortContext) {
    const DecodeTraffic t =
        decode_traffic(ModelConfig::llama2_7b(), QuantScheme::w4a16_kv8(), 16);
    EXPECT_GT(t.weight_read_bytes, 50 * t.kv_read_bytes);
}

TEST(DecodeTraffic, KvTrafficGrowsWithContext) {
    const ModelConfig c = ModelConfig::llama2_7b();
    const QuantScheme s = QuantScheme::w4a16_kv8();
    const auto t0 = decode_traffic(c, s, 0);
    const auto t512 = decode_traffic(c, s, 512);
    const auto t1023 = decode_traffic(c, s, 1023);
    EXPECT_EQ(t0.kv_read_bytes, 0u);
    EXPECT_GT(t512.kv_read_bytes, 0u);
    EXPECT_NEAR(static_cast<double>(t1023.kv_read_bytes),
                static_cast<double>(t512.kv_read_bytes) * 1023.0 / 512.0, 1e3);
    EXPECT_EQ(t0.weight_read_bytes, t1023.weight_read_bytes);
}

TEST(DecodeTraffic, Llama7BPerTokenKvBytes) {
    // Per history token: 2 * 32 layers * 4096 codes + 2 * 32 * 32 packs * 4B.
    const auto t = decode_traffic(ModelConfig::llama2_7b(), QuantScheme::w4a16_kv8(), 1);
    EXPECT_EQ(t.kv_read_bytes, 2u * 32 * 4096 + 2u * 32 * 32 * 4);
}

TEST(TheoreticalRate, Llama7BOnKv260Is5_8) {
    // Table II footnote 1 arithmetic, using nominal 4-bit weights.
    const double rate = 19.2e9 / (6.62e9 * 0.5);
    EXPECT_NEAR(rate, 5.8, 0.05);
}

TEST(TheoreticalRate, FullFootprintVersionIsLower) {
    // Against the *actual* stored bytes (incl. scales/zeros/embedding) the
    // ceiling drops to ~5.15 token/s — utilization measured against 5.8 can
    // therefore never reach 100% by construction. Documented in EXPERIMENTS.md.
    const double rate = theoretical_tokens_per_s(ModelConfig::llama2_7b(),
                                                 QuantScheme::w4a16_kv8(), 19.2e9);
    EXPECT_GT(rate, 4.9);
    EXPECT_LT(rate, 5.8);
}

TEST(TinyConfigs, BusFormatCompatible) {
    for (const ModelConfig& c : {ModelConfig::tiny_512(), ModelConfig::micro_256()}) {
        EXPECT_EQ(c.dim % 128, 0u) << c.name;
        EXPECT_EQ(c.hidden_dim % 128, 0u) << c.name;
        EXPECT_EQ(c.n_heads % c.n_kv_heads, 0u) << c.name;
    }
}

}  // namespace
}  // namespace efld::model
