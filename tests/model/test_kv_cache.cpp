// Float and KV8 caches: layout, GQA head views, quantization transparency.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "model/kv_cache.hpp"

namespace efld::model {
namespace {

ModelConfig micro() { return ModelConfig::micro_256(); }  // 2 layers, 2 heads, hd=128

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.gaussian());
    return v;
}

TEST(KvCache, AppendAdvancesAfterAllLayers) {
    const ModelConfig cfg = micro();
    KvCache cache(cfg);
    const auto k = random_vec(cfg.kv_dim(), 1), v = random_vec(cfg.kv_dim(), 2);
    cache.append(0, k, v);
    EXPECT_EQ(cache.length(), 0u);  // layer 1 still pending
    cache.append(1, k, v);
    EXPECT_EQ(cache.length(), 1u);
}

TEST(KvCache, HeadViewExtractsCorrectSlice) {
    const ModelConfig cfg = micro();
    KvCache cache(cfg);
    std::vector<float> k(cfg.kv_dim()), v(cfg.kv_dim());
    for (std::size_t i = 0; i < cfg.kv_dim(); ++i) {
        k[i] = static_cast<float>(i);
        v[i] = -static_cast<float>(i);
    }
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, k, v);

    const std::size_t hd = cfg.head_dim();
    const auto head1 = cache.keys_for_head(0, 1, 1);
    ASSERT_EQ(head1.size(), hd);
    for (std::size_t i = 0; i < hd; ++i) {
        EXPECT_FLOAT_EQ(head1[i], static_cast<float>(hd + i));
    }
}

TEST(KvCache, MultiTokenHistoryOrdered) {
    const ModelConfig cfg = micro();
    KvCache cache(cfg);
    for (int t = 0; t < 3; ++t) {
        std::vector<float> k(cfg.kv_dim(), static_cast<float>(t));
        for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, k, k);
    }
    const auto hist = cache.keys_for_head(1, 0, 3);
    const std::size_t hd = cfg.head_dim();
    EXPECT_FLOAT_EQ(hist[0], 0.0f);
    EXPECT_FLOAT_EQ(hist[hd], 1.0f);
    EXPECT_FLOAT_EQ(hist[2 * hd], 2.0f);
}

TEST(KvCache, CapacityEnforced) {
    ModelConfig cfg = micro();
    cfg.max_seq_len = 2;
    KvCache cache(cfg);
    const auto k = random_vec(cfg.kv_dim(), 3);
    for (int t = 0; t < 2; ++t) {
        for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, k, k);
    }
    EXPECT_THROW(cache.append(0, k, k), efld::Error);
}

TEST(KvCache, ResetClearsLength) {
    const ModelConfig cfg = micro();
    KvCache cache(cfg);
    const auto k = random_vec(cfg.kv_dim(), 4);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, k, k);
    cache.reset();
    EXPECT_EQ(cache.length(), 0u);
}

TEST(QuantizedKvCache, ReconstructionCloseToFloat) {
    const ModelConfig cfg = micro();
    QuantizedKvCache qcache(cfg);
    KvCache fcache(cfg);
    const auto k = random_vec(cfg.kv_dim(), 5), v = random_vec(cfg.kv_dim(), 6);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
        qcache.append(l, k, v);
        fcache.append(l, k, v);
    }
    const auto qk = qcache.keys_for_head(0, 0, 1);
    const auto fk = fcache.keys_for_head(0, 0, 1);
    for (std::size_t i = 0; i < qk.size(); ++i) {
        EXPECT_NEAR(qk[i], fk[i], 0.05f) << i;  // 8-bit grid over ~N(0,1)
    }
}

TEST(QuantizedKvCache, PerHeadParamsIndependent) {
    const ModelConfig cfg = micro();
    QuantizedKvCache qcache(cfg);
    std::vector<float> k(cfg.kv_dim()), v(cfg.kv_dim(), 0.1f);
    const std::size_t hd = cfg.head_dim();
    // Head 0 small range, head 1 large range.
    for (std::size_t i = 0; i < hd; ++i) k[i] = 0.01f * static_cast<float>(i % 3);
    for (std::size_t i = hd; i < 2 * hd; ++i) k[i] = 10.0f * static_cast<float>(i % 5);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) qcache.append(l, k, v);

    const float s0 = qcache.key_params(0, 0, 0).scale.to_float();
    const float s1 = qcache.key_params(0, 0, 1).scale.to_float();
    EXPECT_LT(s0, s1 / 100.0f);
}

TEST(QuantizedKvCache, ValuesRoundTripToo) {
    const ModelConfig cfg = micro();
    QuantizedKvCache qcache(cfg);
    const auto k = random_vec(cfg.kv_dim(), 7), v = random_vec(cfg.kv_dim(), 8);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) qcache.append(l, k, v);
    const auto qv = qcache.values_for_head(1, 1, 1);
    const std::size_t hd = cfg.head_dim();
    for (std::size_t i = 0; i < hd; ++i) {
        EXPECT_NEAR(qv[i], v[hd + i], 0.05f);
    }
}

}  // namespace
}  // namespace efld::model
