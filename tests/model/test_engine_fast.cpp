// Fast-path decode parity: the fused/threaded/table-driven engine must be
// bit-for-bit identical to the seed-style path, and the cached RoPE
// trigonometry identical to the direct kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "model/kernels.hpp"
#include "model/reference_engine.hpp"

namespace efld::model {
namespace {

const ModelConfig& gqa_cfg() {
    static const ModelConfig cfg = [] {
        ModelConfig c = ModelConfig::micro_256();
        c.name = "micro-gqa";
        c.n_heads = 4;
        c.n_kv_heads = 2;  // exercise the per-KV-head cluster path
        return c;
    }();
    return cfg;
}

const QuantizedModelWeights& quant_weights() {
    static const QuantizedModelWeights qw = QuantizedModelWeights::quantize(
        ModelWeights::synthetic(gqa_cfg(), 42), quant::GroupQuantConfig{});
    return qw;
}

std::vector<std::vector<float>> run_tokens(ReferenceEngine& eng) {
    std::vector<std::vector<float>> logits;
    for (const std::int32_t t : {1, 7, 30, 2, 99, 5}) logits.push_back(eng.forward(t));
    return logits;
}

TEST(EngineFast, FastPathTracksSeedBaseline) {
    // The fast path regroups the GEMV accumulation (per-group scale factoring,
    // partial lanes), so it is not bit-identical to the seed loop — but on the
    // same quantized weights it must stay numerically indistinguishable.
    ReferenceEngine seed(quant_weights(),
                         EngineOptions{.use_kv8 = true, .seed_baseline = true});
    ReferenceEngine fast(quant_weights(),
                         EngineOptions{.use_kv8 = true, .seed_baseline = false});
    const auto ls = run_tokens(seed);
    const auto lf = run_tokens(fast);
    ASSERT_EQ(ls.size(), lf.size());
    for (std::size_t i = 0; i < ls.size(); ++i) {
        EXPECT_GT(efld::cosine_similarity(ls[i], lf[i]), 0.99999) << "token " << i;
    }
}

TEST(EngineFast, ThreadCountNeverChangesLogits) {
    ReferenceEngine single(quant_weights(),
                           EngineOptions{.use_kv8 = true, .threads = 1});
    const auto want = run_tokens(single);
    for (const std::size_t threads : {2u, 4u}) {
        ReferenceEngine multi(quant_weights(),
                              EngineOptions{.use_kv8 = true, .threads = threads});
        EXPECT_EQ(run_tokens(multi), want) << threads << " threads";
    }
}

TEST(EngineFast, GlobalPoolEngineMatchesPrivateAndSingle) {
    // threads == 0 borrows ThreadPool::global() (the SessionOptions
    // host_threads wiring); results must still be exact.
    ReferenceEngine single(quant_weights(),
                           EngineOptions{.use_kv8 = true, .threads = 1});
    const auto want = run_tokens(single);
    ThreadPool::set_global_threads(3);
    ReferenceEngine global(quant_weights(),
                           EngineOptions{.use_kv8 = true, .threads = 0});
    EXPECT_EQ(run_tokens(global), want);
    ThreadPool::set_global_threads(1);
}

TEST(EngineFast, FloatWeightEngineThreadingIsExact) {
    static const ModelWeights fw = ModelWeights::synthetic(gqa_cfg(), 17);
    ReferenceEngine single(fw, EngineOptions{.threads = 1});
    ReferenceEngine multi(fw, EngineOptions{.threads = 4});
    EXPECT_EQ(run_tokens(single), run_tokens(multi));
}

TEST(EngineFast, DecodeSpanMatchesForward) {
    ReferenceEngine a(quant_weights(), EngineOptions{}), b(quant_weights(), EngineOptions{});
    const auto la = a.forward(9);
    const std::span<const float> lb = b.decode(9);
    ASSERT_EQ(la.size(), lb.size());
    EXPECT_TRUE(std::equal(la.begin(), la.end(), lb.begin()));
}

TEST(RopeTable, CachedRotationMatchesDirectKernelBitForBit) {
    const std::size_t d = 64;
    const RopeTable table(d, 32, 10000.0f);
    Xoshiro256 rng(3);
    for (const std::size_t pos : {0u, 1u, 13u, 31u}) {
        std::vector<float> direct(d), cached(d);
        for (std::size_t i = 0; i < d; ++i) {
            direct[i] = static_cast<float>(rng.gaussian());
            cached[i] = direct[i];
        }
        rope_rotate(direct, pos, 10000.0f);
        rope_rotate_cached(cached, table.cos_row(pos), table.sin_row(pos));
        EXPECT_EQ(direct, cached) << "pos " << pos;
    }
}

TEST(RopeTable, IncrementalFrequenciesMatchPow) {
    // The recurrence freq_{i+1} = freq_i * base^(-2/d) must agree with the
    // direct pow to float precision across the whole head.
    const std::size_t d = 128;
    std::vector<float> cosr(d / 2), sinr(d / 2);
    const std::size_t pos = 777;
    rope_angles(d, pos, 10000.0f, cosr, sinr);
    for (std::size_t i = 0; i < d / 2; ++i) {
        const double freq =
            std::pow(10000.0, -2.0 * static_cast<double>(i) / static_cast<double>(d));
        const double angle = static_cast<double>(pos) * freq;
        EXPECT_NEAR(cosr[i], std::cos(angle), 2e-6) << i;
        EXPECT_NEAR(sinr[i], std::sin(angle), 2e-6) << i;
    }
}

TEST(EngineFast, Kv8ScratchPathStaysCloseToGolden) {
    // The per-cluster dequant scratch must not change the KV8 engine's
    // numerics: same closeness bound the seed test asserted.
    static const ModelWeights fw = ModelWeights::synthetic(gqa_cfg(), 11);
    ReferenceEngine golden(fw, EngineOptions{.threads = 2});
    ReferenceEngine kv8(fw, EngineOptions{.use_kv8 = true, .threads = 2});
    std::vector<float> lg, lq;
    for (const std::int32_t t : {1, 2, 3, 4, 5, 6}) {
        lg = golden.forward(t);
        lq = kv8.forward(t);
    }
    EXPECT_GT(efld::cosine_similarity(lg, lq), 0.999);
}

}  // namespace
}  // namespace efld::model
