// KvBlockPool + CapacityGovernor: the capacity-utilization bookkeeping —
// page math against the planner's footprint model, alloc/grow/free through
// block tables, exhaustion, and admission commitments.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "kvpool/capacity_governor.hpp"
#include "kvpool/kv_block_pool.hpp"
#include "runtime/memory_planner.hpp"

namespace efld::kvpool {
namespace {

model::ModelConfig cfg() { return model::ModelConfig::micro_256(); }
model::QuantScheme scheme() { return model::QuantScheme::w4a16_kv8(); }

TEST(KvPoolMath, PageBytesMatchFootprintModel) {
    // A 16-token page costs exactly what the planner's footprint model says a
    // 16-token KV reservation costs — one source of truth for capacity.
    model::ModelConfig probe = cfg();
    probe.max_seq_len = 16;
    const model::ModelFootprint f = model::compute_footprint(probe, scheme());
    EXPECT_EQ(page_bytes(cfg(), scheme(), 16), f.kv_total_bytes());

    // max_seq_len's worth of 16-token pages covers the full reservation.
    const model::ModelFootprint full = model::compute_footprint(cfg(), scheme());
    EXPECT_EQ(page_bytes(cfg(), scheme(), 16) * (cfg().max_seq_len / 16),
              full.kv_total_bytes());
}

TEST(KvPoolMath, PagesForBudgetFloors) {
    const std::uint64_t per_page = page_bytes(cfg(), scheme(), 16);
    EXPECT_EQ(pages_for_budget(cfg(), scheme(), 10 * per_page, 16), 10u);
    EXPECT_EQ(pages_for_budget(cfg(), scheme(), 10 * per_page + per_page - 1, 16), 10u);
    EXPECT_EQ(pages_for_budget(cfg(), scheme(), per_page - 1, 16), 0u);
}

TEST(KvPoolMath, Kv260BudgetIsEverythingAfterWeights) {
    const runtime::MemoryPlan plan = runtime::MemoryPlanner::plan_kv260(cfg(), scheme());
    ASSERT_TRUE(plan.fits);
    EXPECT_EQ(kv_budget_from_plan(plan),
              plan.device_bytes - plan.weight_bytes - plan.reserved_bytes);
    // The paged budget strictly beats the static single-session reservation.
    EXPECT_GT(kv_budget_from_plan(plan), plan.kv_bytes);
}

TEST(KvBlockPool, GrowsByPagesAtBoundaries) {
    KvBlockPool pool({.page_tokens = 4, .n_pages = 8});
    const std::size_t s = pool.create_sequence();
    EXPECT_EQ(pool.seq_tokens(s), 0u);
    EXPECT_EQ(pool.pages_used(), 0u);

    for (std::size_t t = 1; t <= 9; ++t) {
        ASSERT_TRUE(pool.append_token(s));
        EXPECT_EQ(pool.seq_tokens(s), t);
        EXPECT_EQ(pool.pages_used(), (t + 3) / 4) << "token " << t;
    }
    EXPECT_EQ(pool.block_table(s).size(), 3u);
}

TEST(KvBlockPool, LocateMapsLogicalTokensThroughBlockTable) {
    KvBlockPool pool({.page_tokens = 4, .n_pages = 8});
    const std::size_t a = pool.create_sequence();
    const std::size_t b = pool.create_sequence();
    // Interleave growth so the block tables interleave physical pages.
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(pool.append_token(a));
        ASSERT_TRUE(pool.append_token(b));
    }
    const auto& ta = pool.block_table(a);
    const auto& tb = pool.block_table(b);
    ASSERT_EQ(ta.size(), 2u);
    ASSERT_EQ(tb.size(), 2u);
    EXPECT_EQ(pool.locate(a, 0).page, ta[0]);
    EXPECT_EQ(pool.locate(a, 3).offset, 3u);
    EXPECT_EQ(pool.locate(a, 4).page, ta[1]);
    EXPECT_EQ(pool.locate(a, 4).offset, 0u);
    EXPECT_EQ(pool.locate(b, 4).page, tb[1]);
    // Distinct sequences never share a physical page.
    for (const std::size_t pa : ta) {
        for (const std::size_t pb : tb) EXPECT_NE(pa, pb);
    }
    EXPECT_THROW((void)pool.locate(a, 5), efld::Error);
}

TEST(KvBlockPool, ExhaustionRefusesWithoutCorruption) {
    KvBlockPool pool({.page_tokens = 2, .n_pages = 2});
    const std::size_t s = pool.create_sequence();
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.append_token(s));
    // Pool dry: the 5th token needs a 3rd page.
    EXPECT_FALSE(pool.append_token(s));
    EXPECT_EQ(pool.seq_tokens(s), 4u);  // sequence unchanged by the refusal
    EXPECT_EQ(pool.pages_free(), 0u);

    // Freeing another way in lets the refused append succeed.
    pool.reset_sequence(s);
    EXPECT_EQ(pool.pages_free(), 2u);
    EXPECT_TRUE(pool.append_token(s));
}

TEST(KvBlockPool, FreeAndResetReturnPagesAndReuseIds) {
    KvBlockPool pool({.page_tokens = 2, .n_pages = 4});
    const std::size_t a = pool.create_sequence();
    const std::size_t b = pool.create_sequence();
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(pool.append_token(a));
    ASSERT_TRUE(pool.append_token(b));
    EXPECT_EQ(pool.pages_used(), 3u);

    pool.free_sequence(a);
    EXPECT_EQ(pool.pages_used(), 1u);
    EXPECT_THROW((void)pool.seq_tokens(a), efld::Error);  // id retired
    // Smallest-first id reuse: a slot population sees stable ids.
    EXPECT_EQ(pool.create_sequence(), a);
    EXPECT_EQ(pool.seq_tokens(a), 0u);

    pool.reset_sequence(b);  // pages back, id kept
    EXPECT_EQ(pool.pages_used(), 0u);
    EXPECT_EQ(pool.seq_tokens(b), 0u);
}

TEST(KvBlockPool, RejectsBadConfig) {
    EXPECT_THROW(KvBlockPool({.page_tokens = 0, .n_pages = 4}), efld::Error);
    EXPECT_THROW(KvBlockPool({.page_tokens = 16, .n_pages = 0}), efld::Error);
}

TEST(CapacityGovernor, PredictsWorstCasePages) {
    CapacityGovernor g(64, 16);
    EXPECT_EQ(g.predict_pages(1, 0), 1u);
    EXPECT_EQ(g.predict_pages(16, 0), 1u);
    EXPECT_EQ(g.predict_pages(17, 0), 2u);
    EXPECT_EQ(g.predict_pages(10, 30), 3u);  // ceil(40/16)
}

TEST(CapacityGovernor, AdmitsUntilCommittedBudgetIsFull) {
    CapacityGovernor g(10, 16);
    EXPECT_TRUE(g.try_admit(4));
    EXPECT_TRUE(g.try_admit(4));
    EXPECT_EQ(g.committed_pages(), 8u);
    EXPECT_FALSE(g.try_admit(3));  // 11 > 10: deferred
    EXPECT_EQ(g.committed_pages(), 8u);
    EXPECT_TRUE(g.try_admit(2));  // exact fit admits
    EXPECT_DOUBLE_EQ(g.utilization(), 1.0);

    g.release(4);  // a retirement frees its whole commitment
    EXPECT_TRUE(g.try_admit(3));

    EXPECT_EQ(g.stats().admitted, 4u);
    EXPECT_EQ(g.stats().deferral_events, 1u);
    EXPECT_EQ(g.stats().peak_committed_pages, 10u);
    EXPECT_THROW(g.release(100), efld::Error);
}

TEST(CapacityGovernor, EverAdmissibleBoundsSubmit) {
    CapacityGovernor g(4, 16);
    EXPECT_TRUE(g.ever_admissible(4));
    EXPECT_FALSE(g.ever_admissible(5));
}

}  // namespace
}  // namespace efld::kvpool
