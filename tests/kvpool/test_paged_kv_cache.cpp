// Paged KV arenas vs the contiguous caches: page-gathered (or
// page-dequantized) history must be bit-for-bit what the contiguous
// reservation returns, pages must recycle across sequences, and exhaustion
// must surface as an error, not corruption.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "kvpool/paged_kv_cache.hpp"
#include "model/kv_cache.hpp"

namespace efld::kvpool {
namespace {

model::ModelConfig cfg() {
    model::ModelConfig c = model::ModelConfig::micro_256();
    c.max_seq_len = 64;  // keep the contiguous oracle small
    return c;
}

std::vector<float> random_vec(Xoshiro256& rng, std::size_t n) {
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
    return v;
}

TEST(PagedKvArena, GatherMatchesContiguousSpansBitForBit) {
    const model::ModelConfig c = cfg();
    // Pages deliberately smaller than the history so gathers cross pages.
    PagedKvArena arena(c, {.page_tokens = 4, .n_pages = 64});
    model::KvCache oracle(c);
    const std::size_t seq = arena.create_sequence();

    Xoshiro256 rng(7);
    const std::size_t n_tokens = 19;  // not a page multiple: partial last page
    for (std::size_t t = 0; t < n_tokens; ++t) {
        for (std::size_t l = 0; l < c.n_layers; ++l) {
            const std::vector<float> k = random_vec(rng, c.kv_dim());
            const std::vector<float> v = random_vec(rng, c.kv_dim());
            arena.append(seq, l, k, v);
            oracle.append(l, k, v);
        }
    }
    ASSERT_EQ(arena.length(seq), n_tokens);

    std::vector<float> scratch(n_tokens * c.head_dim());
    for (std::size_t l = 0; l < c.n_layers; ++l) {
        for (std::size_t h = 0; h < c.n_kv_heads; ++h) {
            for (const std::size_t len : {std::size_t{1}, std::size_t{4},
                                          std::size_t{5}, n_tokens}) {
                const std::span<const float> got =
                    arena.gather_keys(seq, l, h, len, scratch);
                const std::span<const float> want = oracle.keys_span(l, h, len);
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    ASSERT_EQ(got[i], want[i]) << "keys l" << l << " h" << h;
                }
                const std::span<const float> gv =
                    arena.gather_values(seq, l, h, len, scratch);
                const std::span<const float> wv = oracle.values_span(l, h, len);
                for (std::size_t i = 0; i < gv.size(); ++i) {
                    ASSERT_EQ(gv[i], wv[i]) << "values l" << l << " h" << h;
                }
            }
        }
    }
}

TEST(PagedQuantizedKvArena, DequantMatchesContiguousQuantizedCache) {
    const model::ModelConfig c = cfg();
    PagedQuantizedKvArena arena(c, {.page_tokens = 4, .n_pages = 64}, 8);
    model::QuantizedKvCache oracle(c, 8);
    const std::size_t seq = arena.create_sequence();

    Xoshiro256 rng(11);
    const std::size_t n_tokens = 13;
    for (std::size_t t = 0; t < n_tokens; ++t) {
        for (std::size_t l = 0; l < c.n_layers; ++l) {
            const std::vector<float> k = random_vec(rng, c.kv_dim());
            const std::vector<float> v = random_vec(rng, c.kv_dim());
            arena.append(seq, l, k, v);
            oracle.append(l, k, v);
        }
    }

    std::vector<float> got(n_tokens * c.head_dim());
    std::vector<float> want(n_tokens * c.head_dim());
    for (std::size_t l = 0; l < c.n_layers; ++l) {
        for (std::size_t h = 0; h < c.n_kv_heads; ++h) {
            const auto g = arena.dequant_keys_into(seq, l, h, n_tokens, got);
            const auto w = oracle.dequant_keys_into(l, h, n_tokens, want);
            for (std::size_t i = 0; i < g.size(); ++i) ASSERT_EQ(g[i], w[i]);
            const auto gv = arena.dequant_values_into(seq, l, h, n_tokens, got);
            const auto wv = oracle.dequant_values_into(l, h, n_tokens, want);
            for (std::size_t i = 0; i < gv.size(); ++i) ASSERT_EQ(gv[i], wv[i]);
        }
    }
}

TEST(PagedKvArena, SequencesInterleaveWithoutCrosstalk) {
    const model::ModelConfig c = cfg();
    PagedKvArena arena(c, {.page_tokens = 2, .n_pages = 32});
    model::KvCache oracle_a(c), oracle_b(c);
    const std::size_t a = arena.create_sequence();
    const std::size_t b = arena.create_sequence();

    Xoshiro256 rng(3);
    for (std::size_t t = 0; t < 7; ++t) {
        for (std::size_t l = 0; l < c.n_layers; ++l) {
            const std::vector<float> ka = random_vec(rng, c.kv_dim());
            const std::vector<float> va = random_vec(rng, c.kv_dim());
            const std::vector<float> kb = random_vec(rng, c.kv_dim());
            const std::vector<float> vb = random_vec(rng, c.kv_dim());
            arena.append(a, l, ka, va);
            arena.append(b, l, kb, vb);
            oracle_a.append(l, ka, va);
            oracle_b.append(l, kb, vb);
        }
    }
    std::vector<float> scratch(7 * c.head_dim());
    for (std::size_t h = 0; h < c.n_kv_heads; ++h) {
        const auto ga = arena.gather_keys(a, 1, h, 7, scratch);
        const auto wa = oracle_a.keys_span(1, h, 7);
        for (std::size_t i = 0; i < ga.size(); ++i) ASSERT_EQ(ga[i], wa[i]);
        const auto gb = arena.gather_values(b, 1, h, 7, scratch);
        const auto wb = oracle_b.values_span(1, h, 7);
        for (std::size_t i = 0; i < gb.size(); ++i) ASSERT_EQ(gb[i], wb[i]);
    }
}

TEST(PagedKvArena, ExhaustionThrowsAndFreedPagesRecycle) {
    const model::ModelConfig c = cfg();
    // 4 pages of 2 tokens: one sequence can hold at most 8 tokens.
    PagedKvArena arena(c, {.page_tokens = 2, .n_pages = 4});
    const std::size_t a = arena.create_sequence();
    Xoshiro256 rng(5);
    auto push = [&](std::size_t seq) {
        for (std::size_t l = 0; l < c.n_layers; ++l) {
            arena.append(seq, l, random_vec(rng, c.kv_dim()),
                         random_vec(rng, c.kv_dim()));
        }
    };
    for (int t = 0; t < 8; ++t) push(a);
    EXPECT_THROW(push(a), efld::Error);

    // Retiring the hog returns its pages; a new sequence grows again.
    arena.free_sequence(a);
    const std::size_t b = arena.create_sequence();
    for (int t = 0; t < 8; ++t) push(b);
    EXPECT_EQ(arena.length(b), 8u);
    EXPECT_EQ(arena.pool().pages_used(), 4u);
}

}  // namespace
}  // namespace efld::kvpool
