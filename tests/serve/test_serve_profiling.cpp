// Serve-layer cost attribution: with ServeOptions::profile on, the engine's
// metrics snapshot must carry serve_phase_* series whose totals reconcile
// with ServeStats — in particular, on the accel backend the per-phase
// simulated-ns split must re-sum to the cycle model's total within 1% (the
// exporter rounds each phase's double to a counter). With profile off, the
// series must be absent.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

runtime::ServeDeployment run_profiled(ServeOptions opts, std::size_t requests,
                                      std::size_t max_new) {
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);
    std::vector<std::future<ServeResult>> futs;
    for (std::size_t r = 0; r < requests; ++r) {
        futs.push_back(d.engine->submit("profile req " + std::to_string(r),
                                        max_new));
    }
    d.engine->run_until_idle();
    for (auto& f : futs) (void)f.get();
    return d;
}

std::uint64_t phase_counter(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

TEST(ServeProfiling, HostRunEmitsPhaseSeriesWithZeroSim) {
    ServeOptions opts;
    opts.max_batch = 2;
    opts.profile = true;
    runtime::ServeDeployment d = run_profiled(opts, 4, 5);

    const ServeStats stats = d.engine->stats();
    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    // Control-plane phases fire once per admitted / retired request.
    EXPECT_EQ(phase_counter(snap, "serve_phase_admission_count_total"), 4u);
    EXPECT_EQ(phase_counter(snap, "serve_phase_retire_count_total"), 4u);
    // Every step is attributed: a mixed step lands on both phases, so the
    // two counts together at least cover the step count.
    EXPECT_GE(phase_counter(snap, "serve_phase_prefill_count_total") +
                  phase_counter(snap, "serve_phase_decode_batch_count_total"),
              stats.steps);
    EXPECT_GT(phase_counter(snap, "serve_phase_decode_batch_count_total"), 0u);
    EXPECT_GT(phase_counter(snap, "serve_phase_decode_batch_wall_ns_total"),
              0u);
    // The host backend has no cycle model: simulated ns stays zero, so the
    // sim series must not appear (the exporter skips empty phases' series
    // only when the whole phase is idle — sim counters round to 0 here).
    EXPECT_EQ(phase_counter(snap, "serve_phase_decode_batch_sim_ns_total"),
              0u);
    EXPECT_DOUBLE_EQ(stats.simulated_ns, 0.0);
}

TEST(ServeProfiling, AccelPhaseSimSumsReconcileWithStats) {
    ServeOptions opts;
    opts.max_batch = 3;
    opts.backend = engine::BackendKind::kAccel;
    opts.profile = true;
    runtime::ServeDeployment d = run_profiled(opts, 5, 6);

    const ServeStats stats = d.engine->stats();
    ASSERT_GT(stats.simulated_ns, 0.0);
    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    double phase_sim = 0.0;
    double phase_walks = 0.0;
    for (const char* slug : {"prefill", "decode_batch"}) {
        phase_sim += static_cast<double>(phase_counter(
            snap, std::string("serve_phase_") + slug + "_sim_ns_total"));
        const auto it = snap.gauges.find(std::string("serve_phase_") + slug +
                                         "_weight_walks");
        if (it != snap.gauges.end()) phase_walks += it->second;
    }
    // The attribution is exact by construction (decode = total - prefill);
    // only the counter rounding can move the sum, so 1% is generous.
    EXPECT_LE(std::abs(phase_sim - stats.simulated_ns),
              0.01 * stats.simulated_ns)
        << "phase sim " << phase_sim << " vs stats " << stats.simulated_ns;
    EXPECT_DOUBLE_EQ(phase_walks, stats.weight_walks);
}

TEST(ServeProfiling, ProfileOffKeepsPhaseSeriesAbsent) {
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = run_profiled(opts, 3, 4);
    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    for (const auto& [name, value] : snap.counters) {
        EXPECT_EQ(name.rfind("serve_phase_", 0), std::string::npos)
            << name << "=" << value << " present with profiling off";
    }
}

TEST(ServeProfiling, SpanRingFeedsTheTimelineWhenEnabled) {
    ServeOptions opts;
    opts.max_batch = 2;
    opts.profile = true;
    opts.profiler_spans = 128;
    runtime::ServeDeployment d = run_profiled(opts, 3, 4);
    const std::vector<obs::SpanRecord> spans = d.engine->profiler().spans();
    ASSERT_FALSE(spans.empty());
    for (const obs::SpanRecord& s : spans) {
        EXPECT_LE(s.begin_ns, s.end_ns);
    }
}

}  // namespace
}  // namespace efld::serve
