// Capacity-aware serving: the governor defers what does not fit the page
// pool, retirement (any reason) returns pages and lets deferred work in,
// finish reasons name every outcome, and paged serving is token-identical to
// contiguous serving on both backends.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "kvpool/kv_block_pool.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

runtime::ServeDeployment deploy(ServeOptions opts, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(test_cfg(), seed, opts);
}

// Serve options with a deliberately tiny pool: `pool_tokens` of aggregate KV
// capacity in 8-token pages.
ServeOptions tiny_pool(std::size_t pool_tokens, std::size_t max_batch = 4) {
    ServeOptions o;
    o.max_batch = max_batch;
    o.paging = true;
    o.kv_page_tokens = 8;
    o.kv_pool_pages = pool_tokens / 8;
    return o;
}

TEST(ServePaging, GovernorSizedFromKv260PlanByDefault) {
    ServeOptions o;
    o.paging = true;
    runtime::ServeDeployment d = deploy(o);
    const kvpool::CapacityGovernor* g = d.engine->governor();
    ASSERT_NE(g, nullptr);
    model::QuantScheme scheme = model::QuantScheme::w4a16_kv8();
    const runtime::MemoryPlan plan =
        runtime::MemoryPlanner::plan_kv260(test_cfg(), scheme);
    EXPECT_EQ(g->total_pages(),
              kvpool::pages_for_budget(test_cfg(), scheme,
                                       kvpool::kv_budget_from_plan(plan), 16));
    // micro-256 weights are tiny: nearly the whole 4 GiB backs KV pages.
    EXPECT_GT(g->total_pages(), 1000u);
}

TEST(ServePaging, PoolPressureDefersAndSerializesButServesEveryone) {
    // Pool of 32 tokens; each request demands 2 pages (prompt ~5 + 8 new =
    // 13 tokens -> ceil(13/8) = 2). Four slots are free, but only two
    // requests fit the pool at once.
    runtime::ServeDeployment d = deploy(tiny_pool(32));
    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 4; ++r) {
        hs.push_back(d.engine->submit(
            runtime::ServeRequest{.prompt = "req " + std::to_string(r),
                                  .max_new_tokens = 8}));
    }
    d.engine->run_until_idle();

    std::size_t deferred_requests = 0;
    for (auto& h : hs) {
        const ServeResult& r = h.get();
        EXPECT_EQ(r.tokens.size(), 8u);
        EXPECT_EQ(r.finish_reason, FinishReason::kBudget);
        deferred_requests += r.times_deferred > 0 ? 1 : 0;
    }
    // Capacity, not slots, set the concurrency: never more than 2 at once,
    // and the ones that waited say so.
    EXPECT_EQ(d.engine->stats().peak_batch, 2u);
    EXPECT_GT(deferred_requests, 0u);
    EXPECT_GT(d.engine->stats().capacity_deferrals, 0u);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);  // all released
    EXPECT_EQ(d.engine->governor()->stats().peak_committed_pages, 4u);
}

TEST(ServePaging, CancelReleasesPagesAndAdmitsDeferredRequest) {
    // One hog commits the whole 4-page pool; a second request defers behind
    // it. Cancelling the hog must free its pages and let the deferred one in.
    runtime::ServeDeployment d = deploy(tiny_pool(32, 2));
    runtime::RequestHandle hog = d.engine->submit(
        runtime::ServeRequest{.prompt = "hog", .max_new_tokens = 27});  // 4 pages
    runtime::RequestHandle waiter = d.engine->submit(
        runtime::ServeRequest{.prompt = "waiter", .max_new_tokens = 8});

    for (int i = 0; i < 4; ++i) ASSERT_TRUE(d.engine->step());
    EXPECT_EQ(d.engine->active_sessions(), 1u);  // waiter deferred, not admitted
    EXPECT_EQ(d.engine->governor()->committed_pages(), 4u);

    hog.cancel();
    d.engine->run_until_idle();
    EXPECT_EQ(hog.get().finish_reason, FinishReason::kCancelled);
    EXPECT_LT(hog.get().tokens.size(), 27u);  // partial output kept
    const ServeResult& w = waiter.get();
    EXPECT_EQ(w.finish_reason, FinishReason::kBudget);
    EXPECT_EQ(w.tokens.size(), 8u);
    EXPECT_GT(w.times_deferred, 0u);  // it did wait for capacity
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

TEST(ServePaging, DeadlineRetirementReleasesPagesToo) {
    // Same shape, but the hog dies by deadline instead of cancel: the waiter
    // must still inherit the freed pages.
    runtime::ServeDeployment d = deploy(tiny_pool(32, 2));
    runtime::RequestHandle hog = d.engine->submit(runtime::ServeRequest{
        .prompt = "hog",
        .max_new_tokens = 27,
        .deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(50)});
    runtime::RequestHandle waiter = d.engine->submit(
        runtime::ServeRequest{.prompt = "waiter", .max_new_tokens = 8});

    ASSERT_TRUE(d.engine->step());  // hog admitted, whole pool committed
    EXPECT_EQ(d.engine->governor()->committed_pages(), 4u);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    d.engine->run_until_idle();

    EXPECT_EQ(hog.get().finish_reason, FinishReason::kDeadline);
    EXPECT_EQ(waiter.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(waiter.get().tokens.size(), 8u);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
    EXPECT_EQ(d.engine->stats().requests_expired, 1u);
}

TEST(ServePaging, FinishReasonsNameEveryRetirementPath) {
    ServeOptions o;
    o.max_batch = 2;
    runtime::ServeDeployment d = deploy(o);

    // budget
    runtime::RequestHandle budget =
        d.engine->submit(runtime::ServeRequest{.prompt = "aa", .max_new_tokens = 3});
    // cancelled (queued -> shed)
    runtime::RequestHandle cancelled =
        d.engine->submit(runtime::ServeRequest{.prompt = "bb", .max_new_tokens = 3});
    cancelled.cancel();
    // deadline already passed (shed from the queue)
    runtime::RequestHandle late = d.engine->submit(
        runtime::ServeRequest{.prompt = "cc",
                              .max_new_tokens = 3,
                              .deadline = std::chrono::steady_clock::now()});
    d.engine->run_until_idle();

    EXPECT_EQ(budget.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(cancelled.get().finish_reason, FinishReason::kCancelled);
    EXPECT_EQ(late.get().finish_reason, FinishReason::kDeadline);
    EXPECT_EQ(to_string(FinishReason::kContextOverflow), "context_overflow");

    // zero-budget requests resolve as budget-complete without a slot
    runtime::RequestHandle zero =
        d.engine->submit(runtime::ServeRequest{.prompt = "dd", .max_new_tokens = 0});
    EXPECT_EQ(zero.get().finish_reason, FinishReason::kBudget);
}

TEST(ServePaging, OversizedRequestRejectedAtSubmit) {
    runtime::ServeDeployment d = deploy(tiny_pool(32));
    // Demand 5 pages > 4-page pool: would defer forever, so submit throws.
    EXPECT_THROW((void)d.engine->submit(runtime::ServeRequest{
                     .prompt = "too big", .max_new_tokens = 33}),
                 efld::Error);
    // The pool bound is the aggregate-capacity bound, tighter than the
    // context-window bound the contiguous path enforces.
}

TEST(ServePaging, CallbackExceptionReleasesRetiredCommitment) {
    // The thrower retires (budget) at the same token boundary whose callback
    // throws: retire() must release its pages BEFORE step() rethrows, or the
    // pool leaks a commitment every time a callback misbehaves.
    runtime::ServeDeployment d = deploy(tiny_pool(32, 2));
    runtime::RequestHandle boom = d.engine->submit(runtime::ServeRequest{
        .prompt = "boom",
        .max_new_tokens = 1,
        .on_token = [](std::int32_t, std::string_view) {
            throw std::runtime_error("callback exploded");
        }});
    EXPECT_THROW(d.engine->run_until_idle(), std::runtime_error);
    EXPECT_EQ(boom.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

TEST(ServePaging, CallbackExceptionKeepsLiveCommitmentUntilRetirement) {
    // A thrower that does NOT retire at the throwing boundary stays active
    // and rightfully holds its pages; cancelling it must then release them
    // through the normal retirement path (cancel is observed at the next
    // boundary's control-plane pass, before any further callback fires).
    runtime::ServeDeployment d = deploy(tiny_pool(32, 2));
    runtime::RequestHandle boom = d.engine->submit(runtime::ServeRequest{
        .prompt = "boom2",
        .max_new_tokens = 5,  // 2 pages; does not finish at the throw
        .on_token = [](std::int32_t, std::string_view) {
            throw std::runtime_error("callback exploded");
        }});
    EXPECT_THROW(d.engine->run_until_idle(), std::runtime_error);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 2u);  // still live
    EXPECT_EQ(d.engine->active_sessions(), 1u);

    boom.cancel();
    d.engine->run_until_idle();  // retires before the callback could re-throw
    EXPECT_EQ(boom.get().finish_reason, FinishReason::kCancelled);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

TEST(ServePaging, StopWithActiveSessionsKeepsCommitmentsForRestart) {
    // stop() parks in-flight sessions for a later run()/step(); their pages
    // must stay committed while parked (the work is resumable) and release
    // through whatever retirement eventually claims them.
    //
    // The first token's callback blocks the driver mid-boundary until this
    // thread has called stop() — releasing it and requesting the stop
    // happen while the driver is provably inside the request, so the stop
    // deterministically lands with the session active (a timing poll could
    // miss a fast request entirely and spin forever).
    runtime::ServeDeployment d = deploy(tiny_pool(32, 2));
    std::atomic<bool> started{false};
    std::atomic<bool> released{false};
    runtime::RequestHandle hog = d.engine->submit(runtime::ServeRequest{
        .prompt = "hog",
        .max_new_tokens = 27,  // 4 pages: the whole pool
        .on_token = [&](std::int32_t, std::string_view) {
            started.store(true);
            while (!released.load()) {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        }});
    d.engine->run();
    while (!started.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The driver is parked inside the first token's boundary: the session is
    // active and its commitment held. Release the callback and stop — the
    // driver finishes at most the in-flight step before observing the stop
    // request, so the 27-token budget cannot complete.
    EXPECT_EQ(d.engine->active_sessions(), 1u);
    EXPECT_EQ(d.engine->load().committed_pages, 4u);
    released.store(true);
    d.engine->stop();
    ASSERT_FALSE(hog.done());
    EXPECT_EQ(d.engine->governor()->committed_pages(), 4u);  // parked, not leaked

    hog.cancel();
    d.engine->run_until_idle();  // manual stepping claims the parked session
    EXPECT_EQ(hog.get().finish_reason, FinishReason::kCancelled);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

TEST(ServePaging, OptionValidation) {
    ServeOptions bad_page = tiny_pool(32);
    bad_page.kv_page_tokens = 0;
    EXPECT_THROW(deploy(bad_page), std::invalid_argument);

    ServeOptions stray_pool;
    stray_pool.kv_pool_pages = 8;  // paging off
    EXPECT_THROW(deploy(stray_pool), std::invalid_argument);
}

TEST(ServePaging, PagedTokensIdenticalToContiguousBothBackends) {
    // Same request load served contiguous vs paged must produce identical
    // tokens per request on the host AND the cycle-priced accel backend.
    for (const engine::BackendKind kind :
         {engine::BackendKind::kHost, engine::BackendKind::kAccel}) {
        ServeOptions contig;
        contig.backend = kind;
        contig.max_batch = 3;
        ServeOptions paged = tiny_pool(96, 3);
        paged.backend = kind;

        std::vector<std::vector<std::int32_t>> outs[2];
        int which = 0;
        for (const ServeOptions& o : {contig, paged}) {
            runtime::ServeDeployment d = deploy(o);
            std::vector<runtime::RequestHandle> hs;
            for (int r = 0; r < 5; ++r) {
                hs.push_back(d.engine->submit(runtime::ServeRequest{
                    .prompt = "parity " + std::to_string(r),
                    .max_new_tokens = 6}));
            }
            d.engine->run_until_idle();
            for (auto& h : hs) outs[which].push_back(h.get().tokens);
            ++which;
        }
        EXPECT_EQ(outs[0], outs[1]) << "backend " << engine::to_string(kind);
    }
}

}  // namespace
}  // namespace efld::serve
