// Serve-layer observability: the engine's metrics snapshot must agree with
// its own ServeStats exactly, the latency histograms must fire once per
// request boundary, and the trace must tell each request's story in order.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

TEST(ServeMetrics, CountersMatchServeStatsExactly) {
    ServeOptions opts;
    opts.max_batch = 3;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    constexpr std::size_t kRequests = 5;
    std::vector<std::future<ServeResult>> futs;
    for (std::size_t r = 0; r < kRequests; ++r) {
        futs.push_back(d.engine->submit("metrics req " + std::to_string(r), 6));
    }
    d.engine->run_until_idle();
    for (auto& f : futs) (void)f.get();

    const ServeStats stats = d.engine->stats();
    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    EXPECT_EQ(stats.requests_completed, kRequests);
    EXPECT_EQ(snap.counters.at("serve_requests_completed"),
              stats.requests_completed);
    EXPECT_EQ(snap.counters.at("serve_steps"), stats.steps);
    EXPECT_EQ(snap.counters.at("serve_prompt_tokens"), stats.prompt_tokens);
    EXPECT_EQ(snap.counters.at("serve_generated_tokens"),
              stats.generated_tokens);
    EXPECT_EQ(snap.counters.at("serve_requests_lost"), stats.requests_lost);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_queued"), 0.0);
    EXPECT_DOUBLE_EQ(snap.gauges.at("serve_active_sessions"), 0.0);

    // And the wire body round-trips those same numbers.
    const auto parsed = obs::parse_prometheus(obs::to_prometheus(snap));
    EXPECT_DOUBLE_EQ(parsed.at("serve_requests_completed"),
                     static_cast<double>(kRequests));
}

TEST(ServeMetrics, LatencyHistogramsFireOncePerBoundary) {
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    constexpr std::size_t kRequests = 4;
    std::vector<std::future<ServeResult>> futs;
    for (std::size_t r = 0; r < kRequests; ++r) {
        futs.push_back(d.engine->submit("latency req " + std::to_string(r), 5));
    }
    d.engine->run_until_idle();
    for (auto& f : futs) (void)f.get();

    const ServeStats stats = d.engine->stats();
    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    // One queue-wait, one TTFT, one e2e sample per request; one inter-token
    // gap per generated token after each request's first.
    EXPECT_EQ(snap.histograms.at("serve_queue_wait_ns").count, kRequests);
    EXPECT_EQ(snap.histograms.at("serve_ttft_ns").count, kRequests);
    EXPECT_EQ(snap.histograms.at("serve_e2e_ns").count, kRequests);
    EXPECT_EQ(snap.histograms.at("serve_intertoken_gap_ns").count,
              stats.generated_tokens - kRequests);

    // The load snapshot carries the same summaries for the placement layer.
    const ServeLoad load = d.engine->load();
    EXPECT_EQ(load.ttft.count, kRequests);
    EXPECT_EQ(load.e2e.count, kRequests);
}

TEST(ServeMetrics, TraceTellsEachRequestsStoryInOrder) {
    auto clock = std::make_shared<obs::ManualClock>();
    auto trace = std::make_shared<obs::TraceRecorder>(256, clock.get());
    ServeOptions opts;
    opts.max_batch = 2;
    opts.trace = trace;
    opts.clock = clock;
    opts.shard_id = 3;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    std::vector<std::future<ServeResult>> futs;
    futs.push_back(d.engine->submit("trace one", 4));
    futs.push_back(d.engine->submit("trace two", 4));
    d.engine->run_until_idle();
    std::vector<std::uint64_t> ids;
    for (auto& f : futs) ids.push_back(f.get().id);

    for (const std::uint64_t id : ids) {
        const std::vector<obs::TraceRecord> events = trace->for_request(id);
        // submitted → admitted → prefill_done → first_token → retired, all
        // tagged with this engine's shard id.
        ASSERT_GE(events.size(), 5u) << "request " << id;
        EXPECT_EQ(events.front().event, obs::TraceEvent::kSubmitted);
        std::vector<obs::TraceEvent> order;
        for (const obs::TraceRecord& e : events) {
            EXPECT_EQ(e.shard, 3u);
            order.push_back(e.event);
        }
        const std::vector<obs::TraceEvent> want{
            obs::TraceEvent::kSubmitted, obs::TraceEvent::kAdmitted,
            obs::TraceEvent::kPrefillDone, obs::TraceEvent::kFirstToken,
            obs::TraceEvent::kRetired};
        EXPECT_EQ(order, want) << "request " << id;
    }
}

}  // namespace
}  // namespace efld::serve
