// Live stats snapshots (the cluster router's placement input) and the
// anti-starvation promotion guard.
//
// stats_snapshot()/load() must be safe and coherent WHILE the background
// driver decodes — the old stats() reference is only valid at quiet points.
// The promotion guard bounds how long SJF (or governor deferrals) can pass
// over a big request: after max_deferrals it becomes the mandatory next
// admission regardless of policy order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

runtime::ServeDeployment deploy(ServeOptions opts = {}, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(model::ModelConfig::micro_256(), seed, opts);
}

TEST(ServeStatsSnapshot, ConcurrentSnapshotsWhileDriverServes) {
    ServeOptions o;
    o.max_batch = 2;
    runtime::ServeDeployment d = deploy(o);
    d.engine->run();
    std::vector<runtime::RequestHandle> handles;
    for (int r = 0; r < 10; ++r) {
        handles.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = "snap " + std::to_string(r), .max_new_tokens = 12}));
    }

    // Hammer the snapshot paths from this thread while the driver decodes.
    // Counters must be coherent (no torn reads) and monotone.
    std::size_t last_generated = 0;
    std::size_t last_completed = 0;
    bool all_done = false;
    while (!all_done) {
        const ServeStats snap = d.engine->stats_snapshot();
        EXPECT_GE(snap.generated_tokens, last_generated);
        EXPECT_GE(snap.requests_completed, last_completed);
        EXPECT_GE(snap.lane_steps, snap.steps);  // >= 1 lane per step
        last_generated = snap.generated_tokens;
        last_completed = snap.requests_completed;

        const ServeLoad load = d.engine->load();
        EXPECT_LE(load.queued, load.queue_capacity);
        EXPECT_LE(load.active, load.slots);
        EXPECT_EQ(load.slots, 2u);
        EXPECT_FALSE(load.paging);
        EXPECT_EQ(load.total_pages, 0u);

        all_done = true;
        for (auto& h : handles) all_done = all_done && h.done();
    }
    d.engine->wait_until_idle();
    d.engine->stop();

    // At a quiet point the snapshot equals the plain reference.
    const ServeStats final_snap = d.engine->stats_snapshot();
    EXPECT_EQ(final_snap.generated_tokens, d.engine->stats().generated_tokens);
    EXPECT_EQ(final_snap.requests_completed, 10u);
    EXPECT_EQ(final_snap.generated_tokens, 120u);
    const ServeLoad final_load = d.engine->load();
    EXPECT_EQ(final_load.queued, 0u);
    EXPECT_EQ(final_load.active, 0u);
}

TEST(ServeStatsSnapshot, LoadReportsPagingLedgerAndQueuedDemand) {
    ServeOptions o;
    o.max_batch = 1;
    o.paging = true;
    o.kv_page_tokens = 8;
    o.kv_pool_pages = 4;
    runtime::ServeDeployment d = deploy(o);
    // "hold" = 5 tokens + 11 new = 16 -> 2 pages; queued twin demands the
    // same. No stepping yet: everything still queued.
    runtime::RequestHandle active = d.engine->submit(
        runtime::ServeRequest{.prompt = "hold", .max_new_tokens = 11});
    runtime::RequestHandle queued = d.engine->submit(
        runtime::ServeRequest{.prompt = "wait", .max_new_tokens = 11});
    ServeLoad l = d.engine->load();
    EXPECT_TRUE(l.paging);
    EXPECT_EQ(l.total_pages, 4u);
    EXPECT_EQ(l.committed_pages, 0u);
    EXPECT_EQ(l.queued, 2u);
    EXPECT_EQ(l.queued_pages, 4u);

    ASSERT_TRUE(d.engine->step());  // admits the first (slot bound: batch 1)
    l = d.engine->load();
    EXPECT_EQ(l.active, 1u);
    EXPECT_EQ(l.committed_pages, 2u);
    EXPECT_EQ(l.queued, 1u);
    EXPECT_EQ(l.queued_pages, 2u);

    d.engine->run_until_idle();
    l = d.engine->load();
    EXPECT_EQ(l.committed_pages, 0u);
    EXPECT_EQ(l.queued_pages, 0u);
    EXPECT_EQ(active.get().tokens.size(), 11u);
    EXPECT_EQ(queued.get().tokens.size(), 11u);
}

// Order in which requests got their first sampled token — the observable
// admission order under max_batch = 1.
std::vector<std::string> admission_order(ServeOptions o,
                                         std::size_t big_budget,
                                         std::size_t* big_deferrals,
                                         std::size_t* promotions) {
    o.max_batch = 1;
    o.scheduler = SchedulerPolicy::kSjf;
    runtime::ServeDeployment d = deploy(o);
    std::vector<std::string> order;
    std::vector<runtime::RequestHandle> handles;
    std::vector<std::string> names;
    auto submit = [&](const std::string& name, std::size_t max_new) {
        names.push_back(name);
        const std::size_t idx = names.size() - 1;
        handles.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = name,
            .max_new_tokens = max_new,
            .on_token =
                [&order, &names, idx, first = true](std::int32_t,
                                                    std::string_view) mutable {
                    if (first) order.push_back(names[idx]);
                    first = false;
                }}));
    };
    // The big request goes in FIRST; SJF then admits every later, shorter
    // request ahead of it, charging it one deferral each time.
    submit("big", big_budget);
    for (int r = 0; r < 6; ++r) submit("s" + std::to_string(r), 2);
    d.engine->run_until_idle();
    *big_deferrals = handles.front().get().times_deferred;
    *promotions = d.engine->stats().queue_promotions;
    return order;
}

TEST(ServeAntiStarvation, SjfStarvesBigRequestWithoutTheGuard) {
    ServeOptions o;
    o.max_deferrals = 100;  // effectively off for 6 competitors
    std::size_t big_deferrals = 0;
    std::size_t promotions = 0;
    const std::vector<std::string> order =
        admission_order(o, /*big_budget=*/20, &big_deferrals, &promotions);
    ASSERT_EQ(order.size(), 7u);
    EXPECT_EQ(order.back(), "big");  // every small passed it
    EXPECT_EQ(big_deferrals, 6u);    // charged once per pass-over
    EXPECT_EQ(promotions, 0u);
}

TEST(ServeAntiStarvation, PromotionAdmitsBigRequestAfterMaxDeferrals) {
    ServeOptions o;
    o.max_deferrals = 3;
    std::size_t big_deferrals = 0;
    std::size_t promotions = 0;
    const std::vector<std::string> order =
        admission_order(o, /*big_budget=*/20, &big_deferrals, &promotions);
    ASSERT_EQ(order.size(), 7u);
    // Exactly three smalls pass it, then the guard forces it in ahead of the
    // remaining three — SJF would have kept picking them.
    EXPECT_EQ(order[3], "big");
    EXPECT_EQ(big_deferrals, 3u);
    EXPECT_EQ(promotions, 1u);
}

TEST(ServeAntiStarvation, MaxDeferralsValidated) {
    ServeOptions o;
    o.max_deferrals = 0;
    EXPECT_THROW(deploy(o), std::invalid_argument);
}

}  // namespace
}  // namespace efld::serve
