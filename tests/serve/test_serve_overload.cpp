// OverloadGovernor: the actuator half of the SLO loop. Unit tests for the
// engagement state machine, plus the ServeEngine queue sweep that sheds
// deadline-hopeless requests with kShedOverload while the governor is
// engaged.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/serve.hpp"
#include "serve/overload.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

}  // namespace

TEST(OverloadGovernor, EngagementCountsFiringAlerts) {
    OverloadGovernor g;
    EXPECT_FALSE(g.engaged());
    EXPECT_DOUBLE_EQ(g.retry_hint_scale(), 1.0);
    EXPECT_FALSE(g.shed_hopeless());
    EXPECT_FALSE(g.degraded_placement());

    g.on_alert_firing();
    EXPECT_TRUE(g.engaged());
    EXPECT_DOUBLE_EQ(g.retry_hint_scale(), 4.0);  // default scale
    EXPECT_TRUE(g.shed_hopeless());
    EXPECT_TRUE(g.degraded_placement());

    // Two overlapping alerts: disengages only when BOTH resolve.
    g.on_alert_firing();
    g.on_alert_resolved();
    EXPECT_TRUE(g.engaged());
    g.on_alert_resolved();
    EXPECT_FALSE(g.engaged());
    EXPECT_EQ(g.engagements(), 2u);
}

TEST(OverloadGovernor, ResolveWithoutFiringClampsAtZero) {
    // A subscriber attached mid-incident can see a resolve with no matched
    // firing; the count must not wedge negative.
    OverloadGovernor g;
    g.on_alert_resolved();
    g.on_alert_resolved();
    EXPECT_FALSE(g.engaged());
    g.on_alert_firing();
    EXPECT_TRUE(g.engaged());  // one firing still engages
    g.on_alert_resolved();
    EXPECT_FALSE(g.engaged());
}

TEST(OverloadGovernor, OptionsGateEachActuator) {
    OverloadGovernor::Options o;
    o.retry_hint_scale = 8.0;
    o.shed_hopeless = false;
    o.degrade_placement = false;
    OverloadGovernor g(o);
    g.on_alert_firing();
    EXPECT_TRUE(g.engaged());
    EXPECT_DOUBLE_EQ(g.retry_hint_scale(), 8.0);
    EXPECT_FALSE(g.shed_hopeless());
    EXPECT_FALSE(g.degraded_placement());

    g.count_shed();
    g.count_shed();
    EXPECT_EQ(g.shed_total(), 2u);
}

TEST(ServeOverload, EngagedGovernorShedsDeadlineHopelessQueuedRequests) {
    ServeOptions opts;
    opts.max_batch = 1;
    opts.sampler.temperature = 0.0f;
    opts.trace = std::make_shared<obs::TraceRecorder>(1024);
    // A huge hopelessness margin makes any finite deadline hopeless once a
    // single TTFT sample exists — the sweep's decision becomes deterministic
    // instead of racing the real clock.
    OverloadGovernor::Options go;
    go.hopeless_margin = 1e9;
    auto governor = std::make_shared<OverloadGovernor>(go);
    opts.overload = governor;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    // Warm up: one completed request seeds the 10s TTFT window the sweep
    // estimates from (no observation → no shedding).
    auto warm = d.engine->submit("warmup", 2);
    d.engine->run_until_idle();
    (void)warm.get();

    governor->on_alert_firing();
    Request blocker;
    blocker.prompt = "blocker";
    blocker.max_new_tokens = 8;
    RequestHandle hb = d.engine->submit(std::move(blocker));
    std::vector<RequestHandle> doomed;
    for (int i = 0; i < 3; ++i) {
        Request r;
        r.prompt = "hopeless";
        r.max_new_tokens = 4;
        r.deadline = std::chrono::steady_clock::now() +
                     std::chrono::seconds(10);  // future, but inside est TTFT
        doomed.push_back(d.engine->submit(std::move(r)));
    }
    d.engine->run_until_idle();

    EXPECT_EQ(hb.get().finish_reason, FinishReason::kBudget);
    for (RequestHandle& h : doomed) {
        const ServeResult& r = h.get();
        EXPECT_EQ(r.finish_reason, FinishReason::kShedOverload);
        EXPECT_TRUE(r.tokens.empty());  // shed from the queue, never decoded
    }
    EXPECT_EQ(d.engine->stats().requests_shed, 3u);
    EXPECT_EQ(governor->shed_total(), 3u);

    const obs::MetricsSnapshot snap = d.engine->metrics_snapshot();
    EXPECT_EQ(snap.counters.at("serve_requests_shed"), 3u);

    // Each shed leaves a kShed trace event carrying the remaining budget.
    std::size_t shed_events = 0;
    for (const obs::TraceRecord& e : opts.trace->snapshot()) {
        if (e.event == obs::TraceEvent::kShed) {
            ++shed_events;
            EXPECT_GT(e.arg, 0u);
        }
    }
    EXPECT_EQ(shed_events, 3u);
}

TEST(ServeOverload, DisengagedGovernorNeverSheds) {
    ServeOptions opts;
    opts.max_batch = 1;
    opts.sampler.temperature = 0.0f;
    OverloadGovernor::Options go;
    go.hopeless_margin = 1e9;
    auto governor = std::make_shared<OverloadGovernor>(go);
    opts.overload = governor;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    auto warm = d.engine->submit("warmup", 2);
    d.engine->run_until_idle();
    (void)warm.get();
    // Same hopeless shape as above — but no firing alert, so they decode.
    std::vector<RequestHandle> fine;
    for (int i = 0; i < 3; ++i) {
        Request r;
        r.prompt = "still fine";
        r.max_new_tokens = 2;
        r.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
        fine.push_back(d.engine->submit(std::move(r)));
    }
    d.engine->run_until_idle();
    for (RequestHandle& h : fine) {
        EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    }
    EXPECT_EQ(d.engine->stats().requests_shed, 0u);
    EXPECT_EQ(governor->shed_total(), 0u);
}

TEST(ServeOverload, NoTtftObservationMeansNoShedding) {
    // Engaged, but the TTFT window is empty: the sweep has no estimate to
    // judge hopelessness by, so it must not guess.
    ServeOptions opts;
    opts.max_batch = 2;
    opts.sampler.temperature = 0.0f;
    auto governor = std::make_shared<OverloadGovernor>();
    opts.overload = governor;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    governor->on_alert_firing();
    Request r;
    r.prompt = "first ever";
    r.max_new_tokens = 2;
    r.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    RequestHandle h = d.engine->submit(std::move(r));
    d.engine->run_until_idle();
    EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(governor->shed_total(), 0u);
}

}  // namespace efld::serve
