// Prefix-sharing serving: adoption skips prefill with bit-identical tokens,
// a mid-page adoption copy-on-writes before diverging, the governor charges
// shared pages once (capacity deferrals DROP under the same DDR budget), a
// starved pool dumps the index rather than refuse admissible work, and the
// whole story lands in metrics and the trace ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

runtime::ServeDeployment deploy(ServeOptions opts, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(test_cfg(), seed, opts);
}

// 8-token pages over a small pool, sharing on unless asked otherwise.
ServeOptions sharing_opts(std::size_t pool_pages, bool sharing = true,
                          std::size_t max_batch = 4) {
    ServeOptions o;
    o.max_batch = max_batch;
    o.paging = true;
    o.kv_page_tokens = 8;
    o.kv_pool_pages = pool_pages;
    o.prefix_sharing = sharing;
    return o;
}

// A prompt of `chars` characters tokenizes to chars+1 ids (BOS first), so 23
// chars = 24 tokens = 3 aligned 8-token pages, and 31 chars = 32 tokens = 4
// aligned pages whose full match forces the mid-page CoW adoption.
std::string prompt_of(std::size_t chars, char fill = 's') {
    return std::string(chars, fill);
}

std::vector<std::int32_t> run_one(runtime::ServeDeployment& d,
                                  const std::string& prompt,
                                  std::size_t max_new = 8) {
    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = prompt, .max_new_tokens = max_new});
    d.engine->run_until_idle();
    return h.get().tokens;
}

TEST(ServePrefix, RequiresPaging) {
    ServeOptions o;
    o.prefix_sharing = true;
    EXPECT_THROW(deploy(o), std::invalid_argument);
}

TEST(ServePrefix, SecondSessionAdoptsWithBitIdenticalTokens) {
    // Both backends: the adopter must emit exactly the tokens a no-sharing
    // engine emits — shared pages are a capacity trick, never a model change.
    for (const engine::BackendKind kind :
         {engine::BackendKind::kHost, engine::BackendKind::kAccel}) {
        ServeOptions shared = sharing_opts(16);
        shared.backend = kind;
        ServeOptions solo = sharing_opts(16, /*sharing=*/false);
        solo.backend = kind;
        runtime::ServeDeployment ds = deploy(shared);
        runtime::ServeDeployment dn = deploy(solo);

        const std::string sys = prompt_of(25);  // 26 tokens: 3 full pages + 2
        const auto warm_s = run_one(ds, sys);
        const auto warm_n = run_one(dn, sys);
        EXPECT_EQ(warm_s, warm_n) << engine::to_string(kind);
        EXPECT_EQ(ds.engine->stats().prefix_hits, 0u);  // cold index

        const auto hit_s = run_one(ds, sys);
        const auto hit_n = run_one(dn, sys);
        EXPECT_EQ(hit_s, hit_n) << engine::to_string(kind);
        EXPECT_EQ(ds.engine->stats().prefix_hits, 1u) << engine::to_string(kind);
        // 3 full pages = 24 of the 26 prompt tokens never re-prefilled.
        EXPECT_EQ(ds.engine->stats().prefix_hit_tokens, 24u)
            << engine::to_string(kind);
        EXPECT_EQ(dn.engine->stats().prefix_hits, 0u);
        EXPECT_GT(ds.engine->load().shared_pages, 0u);
    }
}

TEST(ServePrefix, PageAlignedFullMatchCopiesOnWrite) {
    // A 32-token prompt fully matched: adoption caps at 31 tokens, landing
    // mid-page in the still-shared 4th page, so the re-fed last prompt token
    // must take a private copy before it writes — and both the pool counter
    // and the trace ring must say so, in order, exactly once.
    auto trace = std::make_shared<obs::TraceRecorder>(1024);
    ServeOptions o = sharing_opts(16);
    o.trace = trace;
    runtime::ServeDeployment d = deploy(o);

    const std::string sys = prompt_of(31);  // 32 tokens: 4 aligned pages
    (void)run_one(d, sys);
    ASSERT_EQ(d.engine->load().prefix.cow_copies, 0u);

    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = sys, .max_new_tokens = 8});
    d.engine->run_until_idle();
    const runtime::ServeResult& res = h.get();
    EXPECT_EQ(res.tokens.size(), 8u);
    EXPECT_EQ(d.engine->stats().prefix_hits, 1u);
    EXPECT_EQ(d.engine->stats().prefix_hit_tokens, 31u);  // prompt-1, mid-page
    EXPECT_EQ(d.engine->load().prefix.cow_copies, 1u);

    const std::vector<obs::TraceRecord> ev = trace->for_request(res.id);
    const auto find = [&](obs::TraceEvent e) {
        return std::find_if(ev.begin(), ev.end(), [e](const obs::TraceRecord& r) {
            return r.event == e;
        });
    };
    const auto admitted = find(obs::TraceEvent::kAdmitted);
    const auto hit = find(obs::TraceEvent::kPrefixHit);
    const auto cow = find(obs::TraceEvent::kCowCopy);
    const auto prefill_done = find(obs::TraceEvent::kPrefillDone);
    ASSERT_NE(hit, ev.end());
    ASSERT_NE(cow, ev.end());
    EXPECT_EQ(hit->arg, 31u);
    EXPECT_LT(admitted - ev.begin(), hit - ev.begin());
    EXPECT_LT(hit - ev.begin(), cow - ev.begin());
    EXPECT_LT(cow - ev.begin(), prefill_done - ev.begin());
    EXPECT_EQ(std::count_if(ev.begin(), ev.end(),
                            [](const obs::TraceRecord& r) {
                                return r.event == obs::TraceEvent::kCowCopy;
                            }),
              1);

    // Divergence isolated: the CoW'd session's tokens still match a solo run.
    runtime::ServeDeployment solo = deploy(sharing_opts(16, /*sharing=*/false));
    (void)run_one(solo, sys);
    EXPECT_EQ(res.tokens, run_one(solo, sys));
}

TEST(ServePrefix, SharingDropsCapacityDeferralsUnderSameBudget) {
    // The satellite regression: a 9-page pool, 32-token prompt, 8 new tokens
    // (5-page worst case). Two concurrent sessions WITHOUT sharing need 10
    // pages — one must defer. WITH sharing the second session is discounted
    // its 3 fully covered pages (the 4th, partially covered, stays charged to
    // fund its CoW), so both fit: deferrals drop to zero on the same budget.
    const std::string sys = prompt_of(31);
    std::size_t deferrals[2] = {0, 0};
    std::vector<std::vector<std::int32_t>> tokens[2];
    int which = 0;
    for (const bool sharing : {false, true}) {
        runtime::ServeDeployment d = deploy(sharing_opts(9, sharing));
        (void)run_one(d, sys);  // warm the index (both configs for symmetry)
        std::vector<runtime::RequestHandle> hs;
        for (int r = 0; r < 2; ++r) {
            hs.push_back(d.engine->submit(
                runtime::ServeRequest{.prompt = sys, .max_new_tokens = 8}));
        }
        d.engine->run_until_idle();
        for (auto& h : hs) tokens[which].push_back(h.get().tokens);
        deferrals[which] = d.engine->stats().capacity_deferrals;
        if (sharing) {
            EXPECT_EQ(d.engine->stats().prefix_hits, 2u);
            EXPECT_EQ(d.engine->stats().peak_batch, 2u);  // truly concurrent
        }
        ++which;
    }
    EXPECT_GT(deferrals[0], 0u);  // no sharing: the pool can't hold both
    EXPECT_EQ(deferrals[1], 0u);  // sharing: both admitted outright
    EXPECT_EQ(tokens[0], tokens[1]);  // and not by changing a single token
}

TEST(ServePrefix, StarvedPoolDropsIndexInsteadOfRefusingWork) {
    // 6-page pool: serving one 24-token prompt leaves 3 pages pinned by the
    // index. A 40-token unique prompt then demands all 6 pages — with nothing
    // active, the engine must dump the cache and admit rather than starve.
    runtime::ServeDeployment d = deploy(sharing_opts(6));
    (void)run_one(d, prompt_of(23));
    EXPECT_GT(d.engine->load().shared_pages, 0u);

    const auto big = run_one(d, prompt_of(39, 'u'));
    EXPECT_EQ(big.size(), 8u);
    EXPECT_EQ(d.engine->stats().prefix_cache_drops, 1u);
    EXPECT_EQ(d.engine->load().shared_pages, 0u);

    runtime::ServeDeployment solo = deploy(sharing_opts(6, /*sharing=*/false));
    EXPECT_EQ(big, run_one(solo, prompt_of(39, 'u')));
}

TEST(ServePrefix, MetricsNameTheWholeStory) {
    runtime::ServeDeployment d = deploy(sharing_opts(16));
    const std::string sys = prompt_of(31);
    (void)run_one(d, sys);
    (void)run_one(d, sys);

    const obs::MetricsSnapshot m = d.engine->metrics_snapshot();
    EXPECT_EQ(m.counters.at("serve_prefix_hits_total"), 1u);
    EXPECT_EQ(m.counters.at("serve_prefix_covered_tokens_total"), 31u);
    EXPECT_EQ(m.counters.at("serve_prefix_cow_copies_total"), 1u);
    EXPECT_EQ(m.counters.at("serve_prefix_cache_drops_total"), 0u);
    EXPECT_GE(m.gauges.at("serve_prefix_pages_shared"), 1.0);

    // Sharing off: the series are absent, not zero — scrapes stay honest
    // about what the engine is actually doing.
    runtime::ServeDeployment solo = deploy(sharing_opts(16, /*sharing=*/false));
    (void)run_one(solo, sys);
    const obs::MetricsSnapshot ms = solo.engine->metrics_snapshot();
    EXPECT_EQ(ms.counters.count("serve_prefix_hits_total"), 0u);
    EXPECT_EQ(ms.gauges.count("serve_prefix_pages_shared"), 0u);
}

}  // namespace
}  // namespace efld::serve
