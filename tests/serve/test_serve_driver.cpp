// Background serve driver: a dedicated thread drives step(), sleeps on the
// queue's condition variable when idle, wakes on submit, and hands the loop
// back cleanly on stop().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

runtime::ServeDeployment deploy(ServeOptions opts = {}, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(model::ModelConfig::micro_256(), seed, opts);
}

TEST(ServeDriver, ServesSubmittedWorkWithoutManualStepping) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    EXPECT_TRUE(d.engine->running());

    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 6; ++r) {
        hs.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = "driver " + std::to_string(r), .max_new_tokens = 5}));
    }
    for (auto& h : hs) {
        EXPECT_EQ(h.get().tokens.size(), 5u);  // blocks on the future only
        EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    }
    d.engine->wait_until_idle();
    d.engine->stop();
    EXPECT_FALSE(d.engine->running());
    EXPECT_EQ(d.engine->stats().requests_completed, 6u);
    EXPECT_EQ(d.engine->active_sessions(), 0u);
}

TEST(ServeDriver, WakesFromIdleOnLateSubmit) {
    // The driver goes idle (empty queue), sleeps on the CV, and a submit from
    // another thread must wake it — no polling, no manual step.
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // driver idles

    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "late", .max_new_tokens = 4});
    EXPECT_EQ(h.get().tokens.size(), 4u);
    d.engine->stop();
}

TEST(ServeDriver, StreamingCallbacksFireOnDriverThread) {
    runtime::ServeDeployment d = deploy();
    const std::thread::id main_id = std::this_thread::get_id();
    std::atomic<int> streamed{0};
    std::atomic<bool> on_main{false};
    d.engine->run();
    runtime::RequestHandle h = d.engine->submit(runtime::ServeRequest{
        .prompt = "stream",
        .max_new_tokens = 6,
        .on_token = [&](std::int32_t, std::string_view) {
            streamed.fetch_add(1);
            if (std::this_thread::get_id() == main_id) on_main.store(true);
        }});
    (void)h.get();
    d.engine->stop();
    EXPECT_EQ(streamed.load(), 6);
    EXPECT_FALSE(on_main.load());  // callbacks ran on the driver thread
}

TEST(ServeDriver, ManualSteppingIsLockedOutWhileRunning) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    EXPECT_THROW((void)d.engine->step(), efld::Error);
    EXPECT_THROW(d.engine->run_until_idle(), efld::Error);
    EXPECT_THROW(d.engine->run(), efld::Error);  // one driver at a time
    d.engine->stop();
    d.engine->stop();  // idempotent
    // After stop, manual stepping works again (queue drained by the driver,
    // so one step reports no work).
    EXPECT_FALSE(d.engine->step());
}

TEST(ServeDriver, StopLeavesUnfinishedWorkForRestart) {
    runtime::ServeDeployment d = deploy();
    // 40 decode steps: long enough that the stop below lands mid-request,
    // short enough to stay inside micro-256's 64-token context window.
    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "survives restart", .max_new_tokens = 40});
    d.engine->run();
    // Let the driver make some progress, then stop mid-request.
    while (d.engine->active_sessions() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    d.engine->stop();
    ASSERT_FALSE(h.done());  // request still in flight, not dropped

    d.engine->run();  // a fresh driver picks the session back up
    EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(h.get().tokens.size(), 40u);
    d.engine->stop();
}

TEST(ServeDriver, CallbackExceptionParksAndRethrowsFromStop) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    // max_new = 1: the request retires (budget) at the same boundary whose
    // callback throws, so its future resolves before the driver parks the
    // error and exits.
    runtime::RequestHandle h = d.engine->submit(runtime::ServeRequest{
        .prompt = "boom",
        .max_new_tokens = 1,
        .on_token = [](std::int32_t, std::string_view) {
            throw std::runtime_error("callback exploded");
        }});
    (void)h.get();  // token boundary completes; the future still resolves
    // The driver parked the error and exited; stop() surfaces it.
    while (d.engine->running()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_THROW(d.engine->stop(), std::runtime_error);
    d.engine->stop();  // error consumed; now a no-op
}

TEST(ServeDriver, WaitUntilIdleWithoutDriverDrivesInline) {
    runtime::ServeDeployment d = deploy();
    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "inline", .max_new_tokens = 3});
    d.engine->wait_until_idle();  // no driver: equivalent to run_until_idle
    EXPECT_EQ(h.get().tokens.size(), 3u);
}

TEST(ServeDriver, PagedServingUnderTheDriver) {
    // The governor's defer/admit cycle works the same when the driver owns
    // the loop: capacity serializes, everyone finishes.
    ServeOptions o;
    o.max_batch = 4;
    o.paging = true;
    o.kv_page_tokens = 8;
    o.kv_pool_pages = 4;  // 32 tokens aggregate
    runtime::ServeDeployment d = deploy(o);
    d.engine->run();
    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 4; ++r) {
        hs.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = "pg " + std::to_string(r), .max_new_tokens = 8}));
    }
    for (auto& h : hs) EXPECT_EQ(h.get().tokens.size(), 8u);
    d.engine->wait_until_idle();
    d.engine->stop();
    EXPECT_EQ(d.engine->stats().peak_batch, 2u);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

}  // namespace
}  // namespace efld::serve
