// Background serve driver: a dedicated thread drives step(), sleeps on the
// queue's condition variable when idle, wakes on submit, and hands the loop
// back cleanly on stop().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "engine/fault_injection.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

runtime::ServeDeployment deploy(ServeOptions opts = {}, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(model::ModelConfig::micro_256(), seed, opts);
}

TEST(ServeDriver, ServesSubmittedWorkWithoutManualStepping) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    EXPECT_TRUE(d.engine->running());

    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 6; ++r) {
        hs.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = "driver " + std::to_string(r), .max_new_tokens = 5}));
    }
    for (auto& h : hs) {
        EXPECT_EQ(h.get().tokens.size(), 5u);  // blocks on the future only
        EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    }
    d.engine->wait_until_idle();
    d.engine->stop();
    EXPECT_FALSE(d.engine->running());
    EXPECT_EQ(d.engine->stats().requests_completed, 6u);
    EXPECT_EQ(d.engine->active_sessions(), 0u);
}

TEST(ServeDriver, WakesFromIdleOnLateSubmit) {
    // The driver goes idle (empty queue), sleeps on the CV, and a submit from
    // another thread must wake it — no polling, no manual step.
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // driver idles

    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "late", .max_new_tokens = 4});
    EXPECT_EQ(h.get().tokens.size(), 4u);
    d.engine->stop();
}

TEST(ServeDriver, StreamingCallbacksFireOnDriverThread) {
    runtime::ServeDeployment d = deploy();
    const std::thread::id main_id = std::this_thread::get_id();
    std::atomic<int> streamed{0};
    std::atomic<bool> on_main{false};
    d.engine->run();
    runtime::RequestHandle h = d.engine->submit(runtime::ServeRequest{
        .prompt = "stream",
        .max_new_tokens = 6,
        .on_token = [&](std::int32_t, std::string_view) {
            streamed.fetch_add(1);
            if (std::this_thread::get_id() == main_id) on_main.store(true);
        }});
    (void)h.get();
    d.engine->stop();
    EXPECT_EQ(streamed.load(), 6);
    EXPECT_FALSE(on_main.load());  // callbacks ran on the driver thread
}

TEST(ServeDriver, ManualSteppingIsLockedOutWhileRunning) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    EXPECT_THROW((void)d.engine->step(), efld::Error);
    EXPECT_THROW(d.engine->run_until_idle(), efld::Error);
    EXPECT_THROW(d.engine->run(), efld::Error);  // one driver at a time
    d.engine->stop();
    d.engine->stop();  // idempotent
    // After stop, manual stepping works again (queue drained by the driver,
    // so one step reports no work).
    EXPECT_FALSE(d.engine->step());
}

TEST(ServeDriver, StopLeavesUnfinishedWorkForRestart) {
    runtime::ServeDeployment d = deploy();
    // 40 decode steps: long enough that the stop below lands mid-request,
    // short enough to stay inside micro-256's 64-token context window.
    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "survives restart", .max_new_tokens = 40});
    d.engine->run();
    // Let the driver make some progress, then stop mid-request.
    while (d.engine->active_sessions() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    d.engine->stop();
    ASSERT_FALSE(h.done());  // request still in flight, not dropped

    d.engine->run();  // a fresh driver picks the session back up
    EXPECT_EQ(h.get().finish_reason, FinishReason::kBudget);
    EXPECT_EQ(h.get().tokens.size(), 40u);
    d.engine->stop();
}

TEST(ServeDriver, CallbackExceptionParksAndRethrowsFromStop) {
    runtime::ServeDeployment d = deploy();
    d.engine->run();
    // max_new = 1: the request retires (budget) at the same boundary whose
    // callback throws, so its future resolves before the driver parks the
    // error and exits.
    runtime::RequestHandle h = d.engine->submit(runtime::ServeRequest{
        .prompt = "boom",
        .max_new_tokens = 1,
        .on_token = [](std::int32_t, std::string_view) {
            throw std::runtime_error("callback exploded");
        }});
    (void)h.get();  // token boundary completes; the future still resolves
    // The driver parked the error and exited; stop() surfaces it.
    while (d.engine->running()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_THROW(d.engine->stop(), std::runtime_error);
    d.engine->stop();  // error consumed; now a no-op
}

TEST(ServeDriver, WaitUntilIdleWithoutDriverDrivesInline) {
    runtime::ServeDeployment d = deploy();
    runtime::RequestHandle h = d.engine->submit(
        runtime::ServeRequest{.prompt = "inline", .max_new_tokens = 3});
    d.engine->wait_until_idle();  // no driver: equivalent to run_until_idle
    EXPECT_EQ(h.get().tokens.size(), 3u);
}

TEST(ServeDriver, PagedServingUnderTheDriver) {
    // The governor's defer/admit cycle works the same when the driver owns
    // the loop: capacity serializes, everyone finishes.
    ServeOptions o;
    o.max_batch = 4;
    o.paging = true;
    o.kv_page_tokens = 8;
    o.kv_pool_pages = 4;  // 32 tokens aggregate
    runtime::ServeDeployment d = deploy(o);
    d.engine->run();
    std::vector<runtime::RequestHandle> hs;
    for (int r = 0; r < 4; ++r) {
        hs.push_back(d.engine->submit(runtime::ServeRequest{
            .prompt = "pg " + std::to_string(r), .max_new_tokens = 8}));
    }
    for (auto& h : hs) EXPECT_EQ(h.get().tokens.size(), 8u);
    d.engine->wait_until_idle();
    d.engine->stop();
    EXPECT_EQ(d.engine->stats().peak_batch, 2u);
    EXPECT_EQ(d.engine->governor()->committed_pages(), 0u);
}

TEST(ServeDriver, BackendFaultFiresCallbackAndResolvesEveryHandle) {
    ServeOptions o;
    o.fault_spec = "step:4";  // dies after the first sampled tokens
    o.max_batch = 1;          // the second request stays queued until the end
    runtime::ServeDeployment d = deploy(o);

    std::atomic<int> reported{0};
    std::exception_ptr seen;
    d.engine->set_on_failure([&](const std::exception_ptr& e) {
        // By contract the engine is already marked failed when this fires.
        EXPECT_TRUE(d.engine->failed());
        seen = e;
        reported.fetch_add(1);
    });

    runtime::RequestHandle inflight = d.engine->submit(
        runtime::ServeRequest{.prompt = "f", .max_new_tokens = 8});
    runtime::RequestHandle queued = d.engine->submit(
        runtime::ServeRequest{.prompt = "never admitted, queue of one slot",
                              .max_new_tokens = 8});
    d.engine->run();

    // Without a cluster above it, the engine resolves its own dead: both
    // futures come back kShardFailure — neither hangs — with whatever was
    // streamed before the fault preserved.
    EXPECT_EQ(inflight.get().finish_reason, FinishReason::kShardFailure);
    EXPECT_EQ(queued.get().finish_reason, FinishReason::kShardFailure);
    EXPECT_FALSE(inflight.get().tokens.empty());  // mid-stream when killed
    EXPECT_LT(inflight.get().tokens.size(), 8u);
    EXPECT_TRUE(queued.get().tokens.empty());

    EXPECT_EQ(reported.load(), 1);  // at most once, even with two casualties
    ASSERT_NE(seen, nullptr);
    EXPECT_THROW(std::rethrow_exception(seen), engine::BackendFault);
    EXPECT_NE(d.engine->failure(), nullptr);
    EXPECT_EQ(d.engine->stats_snapshot().backend_failures, 1u);
    EXPECT_EQ(d.engine->stats_snapshot().requests_lost, 2u);

    // A backend fault is reported through the callback, not parked like a
    // callback error: stop() must NOT rethrow it...
    EXPECT_NO_THROW(d.engine->stop());
    // ...and a failed engine refuses to serve again.
    EXPECT_THROW(d.engine->run(), efld::Error);
}

TEST(ServeDriver, SubmitAfterFailureResolvesInsteadOfQueueingForever) {
    ServeOptions o;
    o.fault_spec = "step:1";
    runtime::ServeDeployment d = deploy(o);
    runtime::RequestHandle victim = d.engine->submit(
        runtime::ServeRequest{.prompt = "v", .max_new_tokens = 2});
    d.engine->run();
    EXPECT_EQ(victim.get().finish_reason, FinishReason::kShardFailure);

    // The engine is dead; a straggler submit still gets a resolving handle
    // (kShardFailure), never a request parked on a queue nobody will drain.
    runtime::RequestHandle late = d.engine->submit(
        runtime::ServeRequest{.prompt = "late", .max_new_tokens = 2});
    EXPECT_EQ(late.get().finish_reason, FinishReason::kShardFailure);
    d.engine->stop();
}

TEST(ServeDriver, TakeUnfinishedIsForFailedEnginesOnly) {
    runtime::ServeDeployment d = deploy();
    EXPECT_THROW((void)d.engine->take_unfinished(), efld::Error);
}

TEST(ServeDriver, HandlesOutliveTheEngine) {
    // Inert-handle guarantee: destruction resolves outstanding futures with
    // kShardFailure (partial tokens preserved), and the surviving handle's
    // cancel()/get() stay safe with the engine gone.
    std::optional<runtime::RequestHandle> queued_h;
    std::optional<runtime::RequestHandle> inflight_h;
    {
        ServeOptions o;
        o.max_batch = 1;  // keeps the second request queued at teardown
        runtime::ServeDeployment d = deploy(o);
        inflight_h = d.engine->submit(
            runtime::ServeRequest{.prompt = "mid", .max_new_tokens = 40});
        queued_h = d.engine->submit(runtime::ServeRequest{
            .prompt = "still queued at teardown", .max_new_tokens = 40});
        d.engine->run();
        while (d.engine->active_sessions() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        d.engine->stop();  // leaves one active session + one queued request
    }  // engine destroyed here
    EXPECT_EQ(inflight_h->get().finish_reason, FinishReason::kShardFailure);
    EXPECT_EQ(queued_h->get().finish_reason, FinishReason::kShardFailure);
    EXPECT_TRUE(queued_h->get().tokens.empty());
    inflight_h->cancel();  // writes shared state the handle co-owns; no UAF
    EXPECT_TRUE(inflight_h->done());
}

}  // namespace
}  // namespace efld::serve
