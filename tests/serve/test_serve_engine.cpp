// Continuous-batching serve engine: sessions joining and retiring mid-stream
// must produce exactly the tokens a solo run of each request would, while
// the stats expose the GEMV→GEMM weight-walk amortization.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "model/reference_engine.hpp"
#include "model/sampler.hpp"
#include "model/tokenizer.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

// Replicates one request's generation with a dedicated single-session engine
// — the ground truth the batched serve loop must match token for token.
std::vector<std::int32_t> solo_generate(const model::QuantizedModelWeights& qw,
                                        const ServeOptions& opts,
                                        const std::string& prompt,
                                        std::size_t max_new) {
    model::ByteTokenizer tok;
    const std::vector<std::int32_t> ids = tok.encode(prompt);
    model::EngineOptions eo;
    eo.use_kv8 = opts.use_kv8;
    eo.kv_bits = opts.kv_bits;
    eo.threads = opts.threads;
    eo.packed_weights = opts.packed_weights;
    model::ReferenceEngine eng(qw, eo);
    model::Sampler sampler(opts.sampler);

    std::span<const float> logits;
    for (const std::int32_t t : ids) logits = eng.decode(t);
    std::vector<std::int32_t> gen;
    while (true) {
        const std::int32_t next = sampler.sample(logits);
        gen.push_back(next);
        if (next == model::ByteTokenizer::kEos) break;
        if (gen.size() >= max_new) break;
        if (eng.position() >= qw.config.max_seq_len) break;
        logits = eng.decode(next);
    }
    return gen;
}

struct Submission {
    std::string prompt;
    std::size_t max_new;
};

const std::vector<Submission>& mixed_submissions() {
    static const std::vector<Submission> subs{
        {"hello", 6}, {"a much longer prompt string", 3}, {"x", 9},
        {"medium one", 5}, {"zz", 2}, {"continuation test", 7},
    };
    return subs;
}

TEST(ServeEngine, ContinuousBatchingMatchesSoloRuns) {
    // Different prompt lengths and max tokens: sessions join and retire
    // mid-stream, prompts prefill inside mixed batches — tokens must still be
    // exactly the solo-run tokens.
    ServeOptions opts;
    opts.max_batch = 3;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);

    std::vector<std::future<ServeResult>> futs;
    for (const Submission& s : mixed_submissions()) {
        futs.push_back(d.engine->submit(s.prompt, s.max_new));
    }
    d.engine->run_until_idle();

    for (std::size_t i = 0; i < futs.size(); ++i) {
        const ServeResult r = futs[i].get();
        const std::vector<std::int32_t> want = solo_generate(
            *d.weights, opts, mixed_submissions()[i].prompt, mixed_submissions()[i].max_new);
        EXPECT_EQ(r.tokens, want) << "request " << i;
        EXPECT_FALSE(r.tokens.empty()) << "request " << i;
    }
    EXPECT_EQ(d.engine->stats().requests_completed, futs.size());
    EXPECT_EQ(d.engine->stats().peak_batch, 3u);
    EXPECT_EQ(d.engine->active_sessions(), 0u);
    EXPECT_EQ(d.engine->queued_requests(), 0u);
}

TEST(ServeEngine, BatchSizeNeverChangesTokens) {
    // The same submissions through max_batch 1, 2, and 4 give identical
    // per-request tokens: batching changes throughput, never results.
    std::vector<std::vector<std::vector<std::int32_t>>> all;
    for (const std::size_t mb : {1u, 2u, 4u}) {
        ServeOptions opts;
        opts.max_batch = mb;
        runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 42, opts);
        std::vector<std::future<ServeResult>> futs;
        for (const Submission& s : mixed_submissions()) {
            futs.push_back(d.engine->submit(s.prompt, s.max_new));
        }
        d.engine->run_until_idle();
        std::vector<std::vector<std::int32_t>> tokens;
        for (auto& f : futs) tokens.push_back(f.get().tokens);
        all.push_back(std::move(tokens));
    }
    EXPECT_EQ(all[0], all[1]);
    EXPECT_EQ(all[0], all[2]);
}

TEST(ServeEngine, PackedWeightServingMatchesByteCodes) {
    ServeOptions packed;
    packed.max_batch = 2;
    packed.packed_weights = true;
    runtime::ServeDeployment dp = runtime::synthetic_serve(test_cfg(), 7, packed);

    ServeOptions plain;
    plain.max_batch = 2;
    runtime::ServeDeployment db = runtime::synthetic_serve(test_cfg(), 7, plain);

    auto fp = dp.engine->submit("packed parity", 5);
    auto fb = db.engine->submit("packed parity", 5);
    dp.engine->run_until_idle();
    db.engine->run_until_idle();
    EXPECT_EQ(fp.get().tokens, fb.get().tokens);
}

TEST(ServeEngine, StatsExposeWeightWalkAmortization) {
    // Four identical fully-overlapped sessions: the weight stream is walked
    // (prompt + max_new - 1) times but 4 * max_new tokens come out, so walks
    // per token drops well below the single-stream 1.0.
    ServeOptions opts;
    opts.max_batch = 4;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 11, opts);
    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(d.engine->submit("same prompt", 8));
    d.engine->run_until_idle();
    for (auto& f : futs) (void)f.get();

    const ServeStats& st = d.engine->stats();
    EXPECT_EQ(st.requests_completed, 4u);
    EXPECT_EQ(st.peak_batch, 4u);
    EXPECT_GT(st.generated_tokens, 0u);
    EXPECT_LT(st.weight_walks_per_token(), 1.0);
    EXPECT_GT(st.mean_batch_occupancy(), 1.0);
    // Every lane-step is accounted to either prefill or a sampled token feed.
    EXPECT_EQ(st.lane_steps, st.prompt_tokens + st.generated_tokens -
                                 st.requests_completed);
}

TEST(ServeEngine, FutureCarriesTextAndMetadata) {
    ServeOptions opts;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 13, opts);
    auto fut = d.engine->submit("abc", 4);
    d.engine->run_until_idle();
    const ServeResult r = fut.get();
    model::ByteTokenizer tok;
    EXPECT_EQ(r.text, tok.decode(r.tokens));
    EXPECT_EQ(r.prompt_tokens, tok.encode("abc").size());
    EXPECT_GE(r.id, 1u);
}

TEST(ServeEngine, QueueFullRejectsSubmit) {
    ServeOptions opts;
    opts.max_batch = 1;
    opts.max_queue = 1;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 17, opts);
    auto f1 = d.engine->submit("first", 2);
    EXPECT_THROW((void)d.engine->submit("second", 2), efld::Error);
    d.engine->run_until_idle();
    EXPECT_EQ(f1.get().tokens.size(), 2u);
}

TEST(ServeEngine, ZeroMaxTokensResolvesImmediately) {
    ServeOptions opts;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 19, opts);
    auto fut = d.engine->submit("noop", 0);
    const ServeResult r = fut.get();  // resolved without any stepping
    EXPECT_TRUE(r.tokens.empty());
    EXPECT_EQ(d.engine->stats().steps, 0u);
}

TEST(ServeEngine, ContextLimitRetiresSessionLikeSolo) {
    model::ModelConfig cfg = test_cfg();
    cfg.max_seq_len = 8;
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = runtime::synthetic_serve(cfg, 23, opts);
    auto fut = d.engine->submit("abcd", 100);  // 5 prompt ids + headroom of 3
    d.engine->run_until_idle();
    const ServeResult r = fut.get();
    const std::vector<std::int32_t> want = solo_generate(*d.weights, opts, "abcd", 100);
    EXPECT_EQ(r.tokens, want);
    if (!r.hit_eos) EXPECT_TRUE(r.hit_context_limit);
    EXPECT_LE(r.tokens.size(), 4u);
}

TEST(ServeEngine, OverlongPromptRejected) {
    model::ModelConfig cfg = test_cfg();
    cfg.max_seq_len = 4;
    runtime::ServeDeployment d = runtime::synthetic_serve(cfg, 29, ServeOptions{});
    EXPECT_THROW((void)d.engine->submit("way too long prompt", 1), efld::Error);
}

TEST(ServeEngine, LateSubmissionsJoinARunningBatch) {
    // Drive the engine manually: start one long request, then submit more
    // mid-stream and confirm they join at a token boundary and still match
    // their solo runs.
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = runtime::synthetic_serve(test_cfg(), 31, opts);
    auto f0 = d.engine->submit("long running request", 10);
    for (int i = 0; i < 3 && d.engine->step(); ++i) {}
    EXPECT_EQ(d.engine->active_sessions(), 1u);
    auto f1 = d.engine->submit("joiner", 4);
    d.engine->run_until_idle();
    EXPECT_EQ(f0.get().tokens, solo_generate(*d.weights, opts, "long running request", 10));
    EXPECT_EQ(f1.get().tokens, solo_generate(*d.weights, opts, "joiner", 4));
    EXPECT_EQ(d.engine->stats().peak_batch, 2u);
}

}  // namespace
}  // namespace efld::serve
