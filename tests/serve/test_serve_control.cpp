// Control plane of the redesigned serve API: streaming callbacks, cooperative
// cancellation, deadline retirement, scheduler policies, option validation,
// and serving on the accel (cycle-priced) backend.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/reference_engine.hpp"
#include "model/sampler.hpp"
#include "model/tokenizer.hpp"
#include "runtime/serve.hpp"

namespace efld::serve {
namespace {

using std::chrono::steady_clock;

model::ModelConfig test_cfg() { return model::ModelConfig::micro_256(); }

runtime::ServeDeployment deploy(ServeOptions opts, std::uint64_t seed = 42) {
    opts.sampler.temperature = 0.0f;  // deterministic
    return runtime::synthetic_serve(test_cfg(), seed, opts);
}

TEST(ServeControl, StreamingCallbackSeesEveryTokenInOrder) {
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = deploy(opts);

    std::vector<std::int32_t> streamed;
    std::string streamed_text;
    Request req;
    req.prompt = "stream me";
    req.max_new_tokens = 8;
    req.on_token = [&](std::int32_t tok, std::string_view piece) {
        streamed.push_back(tok);
        streamed_text.append(piece);
    };
    RequestHandle h = d.engine->submit(std::move(req));
    d.engine->run_until_idle();

    const ServeResult& r = h.get();
    EXPECT_EQ(streamed, r.tokens);  // every sampled token, in order, incl. EOS
    model::ByteTokenizer tok;
    std::string want_text;
    for (const std::int32_t t : r.tokens) want_text.append(tok.decode_token(t));
    EXPECT_EQ(streamed_text, want_text);
}

TEST(ServeControl, HandleLifecycle) {
    ServeOptions opts;
    runtime::ServeDeployment d = deploy(opts);
    RequestHandle h = d.engine->submit(Request{.prompt = "abc", .max_new_tokens = 3});
    EXPECT_TRUE(h.valid());
    EXPECT_GE(h.id(), 1u);
    EXPECT_FALSE(h.done());
    d.engine->run_until_idle();
    EXPECT_TRUE(h.done());
    EXPECT_EQ(h.get().tokens.size(), 3u);
    EXPECT_FALSE(RequestHandle{}.valid());  // default handle is inert
}

TEST(ServeControl, CancelActiveSessionDeliversPartialOutput) {
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment d = deploy(opts);

    RequestHandle victim =
        d.engine->submit(Request{.prompt = "long running", .max_new_tokens = 200});
    RequestHandle survivor =
        d.engine->submit(Request{.prompt = "short one", .max_new_tokens = 4});

    for (int i = 0; i < 3; ++i) ASSERT_TRUE(d.engine->step());
    victim.cancel();
    d.engine->run_until_idle();

    const ServeResult& rv = victim.get();
    EXPECT_TRUE(rv.cancelled);
    EXPECT_FALSE(rv.hit_eos);
    EXPECT_LT(rv.tokens.size(), 200u);  // retired early
    const ServeResult& rs = survivor.get();
    EXPECT_FALSE(rs.cancelled);  // the batch-mate was untouched

    EXPECT_EQ(d.engine->stats().requests_cancelled, 1u);
    EXPECT_EQ(d.engine->active_sessions(), 0u);
    // The cancelled slot is reusable.
    RequestHandle again = d.engine->submit(Request{.prompt = "next", .max_new_tokens = 2});
    d.engine->run_until_idle();
    EXPECT_EQ(again.get().tokens.size(), 2u);
}

TEST(ServeControl, CancelQueuedRequestIsShedWithoutASlot) {
    ServeOptions opts;
    opts.max_batch = 1;
    runtime::ServeDeployment d = deploy(opts);
    RequestHandle running =
        d.engine->submit(Request{.prompt = "occupies the slot", .max_new_tokens = 6});
    RequestHandle queued =
        d.engine->submit(Request{.prompt = "never admitted", .max_new_tokens = 6});
    queued.cancel();
    d.engine->run_until_idle();

    const ServeResult& rq = queued.get();
    EXPECT_TRUE(rq.cancelled);
    EXPECT_TRUE(rq.tokens.empty());  // never decoded a token
    EXPECT_GT(rq.prompt_tokens, 0u);
    EXPECT_FALSE(running.get().cancelled);
    EXPECT_EQ(d.engine->stats().requests_cancelled, 1u);
}

TEST(ServeControl, ExpiredQueuedDeadlineIsShed) {
    ServeOptions opts;
    opts.max_batch = 1;
    runtime::ServeDeployment d = deploy(opts);
    RequestHandle running =
        d.engine->submit(Request{.prompt = "occupies the slot", .max_new_tokens = 4});
    RequestHandle expired = d.engine->submit(Request{.prompt = "too late",
                                                     .max_new_tokens = 4,
                                                     .deadline = steady_clock::now()});
    d.engine->run_until_idle();

    const ServeResult& re = expired.get();
    EXPECT_TRUE(re.hit_deadline);
    EXPECT_TRUE(re.tokens.empty());
    EXPECT_FALSE(running.get().hit_deadline);
    EXPECT_EQ(d.engine->stats().requests_expired, 1u);
}

TEST(ServeControl, ActiveSessionRetiresAtDeadline) {
    ServeOptions opts;
    runtime::ServeDeployment d = deploy(opts);
    // A budget far beyond what 40ms of micro-256 decode can produce: the
    // deadline must cut it with partial output.
    RequestHandle h = d.engine->submit(
        Request{.prompt = "deadline bound",
                .max_new_tokens = 100000,
                .deadline = steady_clock::now() + std::chrono::milliseconds(40)});
    d.engine->run_until_idle();
    const ServeResult& r = h.get();
    if (!r.hit_eos && !r.hit_context_limit) {
        EXPECT_TRUE(r.hit_deadline);
        EXPECT_LT(r.tokens.size(), 100000u);
        EXPECT_EQ(d.engine->stats().requests_expired, 1u);
    }
}

TEST(ServeControl, SjfAdmitsShortestQueuedJobFirst) {
    ServeOptions opts;
    opts.max_batch = 1;
    opts.scheduler = SchedulerPolicy::kSjf;
    runtime::ServeDeployment d = deploy(opts);

    std::vector<char> admission_order;
    auto tracker = [&admission_order](char label) {
        return [&admission_order, label,
                seen = false](std::int32_t, std::string_view) mutable {
            if (!seen) admission_order.push_back(label);
            seen = true;
        };
    };
    // All three are queued before the first step, so SJF admits the short C
    // first; A and B tie on work and keep FIFO order between them.
    RequestHandle a = d.engine->submit(
        Request{.prompt = "aaaa", .max_new_tokens = 6, .on_token = tracker('a')});
    RequestHandle b = d.engine->submit(
        Request{.prompt = "bbbb", .max_new_tokens = 6, .on_token = tracker('b')});
    RequestHandle c = d.engine->submit(
        Request{.prompt = "cccc", .max_new_tokens = 2, .on_token = tracker('c')});
    d.engine->run_until_idle();
    (void)a.get();
    (void)b.get();
    (void)c.get();
    ASSERT_EQ(admission_order.size(), 3u);
    EXPECT_EQ(admission_order[0], 'c');
    EXPECT_EQ(admission_order[1], 'a');
    EXPECT_EQ(admission_order[2], 'b');
}

TEST(ServeControl, FcfsKeepsSubmissionOrder) {
    ServeOptions opts;
    opts.max_batch = 1;
    opts.scheduler = SchedulerPolicy::kFcfs;
    runtime::ServeDeployment d = deploy(opts);
    std::vector<char> order;
    auto first_token = [&order](char label) {
        return [&order, label, seen = false](std::int32_t, std::string_view) mutable {
            if (!seen) order.push_back(label);
            seen = true;
        };
    };
    RequestHandle a = d.engine->submit(
        Request{.prompt = "aaaa", .max_new_tokens = 6, .on_token = first_token('a')});
    RequestHandle b = d.engine->submit(
        Request{.prompt = "bbbb", .max_new_tokens = 6, .on_token = first_token('b')});
    RequestHandle c = d.engine->submit(
        Request{.prompt = "cccc", .max_new_tokens = 2, .on_token = first_token('c')});
    d.engine->run_until_idle();
    (void)a.get();
    (void)b.get();
    (void)c.get();
    EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(ServeControl, SjfCannotStarveADeadQueuedRequest) {
    // Regression: queued cancel/deadline must be observed by sweeping the
    // whole queue each step, not only when the scheduler happens to pick the
    // request — SJF would pass over a long job forever under short-job load.
    ServeOptions opts;
    opts.max_batch = 1;
    opts.scheduler = SchedulerPolicy::kSjf;
    runtime::ServeDeployment d = deploy(opts);

    RequestHandle active =
        d.engine->submit(Request{.prompt = "busy busy busy", .max_new_tokens = 30});
    RequestHandle starved = d.engine->submit(
        Request{.prompt = "very long job the scheduler always passes over",
                .max_new_tokens = 500});
    ASSERT_TRUE(d.engine->step());  // `active` owns the only slot
    starved.cancel();
    ASSERT_TRUE(d.engine->step());  // swept from the queue this boundary
    EXPECT_TRUE(starved.done());
    EXPECT_TRUE(starved.get().cancelled);
    d.engine->run_until_idle();
    EXPECT_FALSE(active.get().cancelled);
}

TEST(ServeControl, ThrowingOnTokenDoesNotCorruptTheBatch) {
    // A throwing callback surfaces from step() only after the token boundary
    // completes; the batch-mate's stream stays bit-for-bit its solo run.
    ServeOptions opts;
    opts.max_batch = 2;
    runtime::ServeDeployment baseline = deploy(opts);
    RequestHandle want = baseline.engine->submit(
        Request{.prompt = "undisturbed", .max_new_tokens = 6});
    baseline.engine->run_until_idle();

    runtime::ServeDeployment d = deploy(opts);
    int thrown = 0;
    RequestHandle thrower = d.engine->submit(Request{
        .prompt = "misbehaving client",
        .max_new_tokens = 6,
        .on_token = [&thrown](std::int32_t, std::string_view) {
            ++thrown;
            throw std::runtime_error("client bug");
        }});
    RequestHandle mate =
        d.engine->submit(Request{.prompt = "undisturbed", .max_new_tokens = 6});

    std::size_t rethrows = 0;
    for (int i = 0; i < 200; ++i) {
        try {
            if (!d.engine->step()) break;
        } catch (const std::runtime_error&) {
            ++rethrows;
        }
    }
    EXPECT_GT(thrown, 0);
    EXPECT_EQ(static_cast<std::size_t>(thrown), rethrows);
    EXPECT_FALSE(thrower.get().tokens.empty());  // request still completed
    EXPECT_EQ(mate.get().tokens, want.get().tokens);
}

TEST(ServeControl, InertHandleGetThrowsInsteadOfUb) {
    RequestHandle inert;
    EXPECT_FALSE(inert.valid());
    EXPECT_FALSE(inert.done());
    EXPECT_THROW((void)inert.get(), std::future_error);
}

TEST(ServeControl, ByoBackendWithReservedSlotsRejected) {
    const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 1), quant::GroupQuantConfig{});
    auto backend = std::make_unique<model::ReferenceEngine>(
        qw, model::EngineOptions{.use_kv8 = true, .max_batch = 2});
    (void)backend->reserve_slot();  // someone else owns a session
    ServeOptions opts;
    opts.max_batch = 2;
    EXPECT_THROW(ServeEngine(std::move(backend), opts), std::invalid_argument);
}

TEST(ServeControl, ByoBackendWithFreeSlotsServes) {
    const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 1), quant::GroupQuantConfig{});
    auto backend = std::make_unique<model::ReferenceEngine>(
        qw, model::EngineOptions{.use_kv8 = true, .max_batch = 2});
    ServeOptions opts;
    opts.sampler.temperature = 0.0f;
    ServeEngine eng(std::move(backend), opts);
    RequestHandle h = eng.submit(Request{.prompt = "byo", .max_new_tokens = 3});
    eng.run_until_idle();
    EXPECT_EQ(h.get().tokens.size(), 3u);
}

TEST(ServeControl, LegacySubmitStillWorks) {
    // The pre-DecodeBackend API is a thin shim over the Request path.
    ServeOptions opts;
    runtime::ServeDeployment d = deploy(opts);
    std::future<ServeResult> fut = d.engine->submit("legacy prompt", 5);
    d.engine->run_until_idle();
    const ServeResult r = fut.get();
    EXPECT_FALSE(r.tokens.empty());
    EXPECT_FALSE(r.cancelled);
    EXPECT_FALSE(r.hit_deadline);
}

// ---- option validation (std::invalid_argument, not silent misbehavior) ----

TEST(ServeControl, InvalidServeOptionsRejected) {
    const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 1), quant::GroupQuantConfig{});
    {
        ServeOptions o;
        o.max_batch = 0;
        EXPECT_THROW(ServeEngine(qw, o), std::invalid_argument);
    }
    {
        ServeOptions o;
        o.max_queue = 0;
        EXPECT_THROW(ServeEngine(qw, o), std::invalid_argument);
    }
    {
        ServeOptions o;
        o.threads = 1u << 20;  // garbage value, not a plausible pool
        EXPECT_THROW(ServeEngine(qw, o), std::invalid_argument);
    }
}

TEST(ServeControl, InvalidEngineOptionsRejected) {
    const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(
        model::ModelWeights::synthetic(test_cfg(), 1), quant::GroupQuantConfig{});
    EXPECT_THROW(model::ReferenceEngine(qw, model::EngineOptions{.max_batch = 0}),
                 std::invalid_argument);
    EXPECT_THROW(
        model::ReferenceEngine(qw, model::EngineOptions{.threads = 1u << 20}),
        std::invalid_argument);
    EXPECT_THROW(model::ReferenceEngine(
                     qw, model::EngineOptions{.seed_baseline = true, .threads = 2}),
                 std::invalid_argument);
}

// ---- the accel backend behind the same serve loop ----

TEST(ServeControl, AccelBackendServesAndReportsSimulatedTime) {
    ServeOptions opts;
    opts.backend = engine::BackendKind::kAccel;
    opts.max_batch = 2;
    runtime::ServeDeployment d = deploy(opts, 7);

    RequestHandle h0 = d.engine->submit(Request{.prompt = "ab", .max_new_tokens = 6});
    RequestHandle h1 = d.engine->submit(Request{.prompt = "ab", .max_new_tokens = 6});
    d.engine->run_until_idle();

    const ServeResult& r0 = h0.get();
    const ServeResult& r1 = h1.get();
    EXPECT_FALSE(r0.tokens.empty());
    EXPECT_EQ(r0.tokens, r1.tokens);  // identical greedy requests

    const ServeStats& st = d.engine->stats();
    EXPECT_GT(st.simulated_ns, 0.0);
    EXPECT_GT(st.simulated_tokens_per_s(), 0.0);
    EXPECT_GT(st.wall_ns, 0.0);
    EXPECT_EQ(st.peak_batch, 2u);
    if (!r0.hit_eos) {
        // Two fully-overlapped sessions: fewer walks than generated tokens.
        EXPECT_LT(st.weight_walks_per_token(), 1.0);
    }
}

TEST(ServeControl, AccelServeMatchesSoloAccelGenerate) {
    // Serving on the accel backend never changes a request's tokens: the
    // batched serve run must equal a dedicated Accelerator::generate of the
    // same prompt (greedy), token for token.
    ServeOptions opts;
    opts.backend = engine::BackendKind::kAccel;
    opts.max_batch = 2;
    opts.sampler.temperature = 0.0f;
    runtime::ServeDeployment d = deploy(opts, 11);

    const std::string prompt = "parity";
    const std::size_t max_new = 5;
    RequestHandle h = d.engine->submit(Request{.prompt = prompt, .max_new_tokens = max_new});
    RequestHandle other =
        d.engine->submit(Request{.prompt = "different stream", .max_new_tokens = 3});
    d.engine->run_until_idle();

    // Solo ground truth on a fresh accelerator over the same packed image.
    accel::PackedModel packed = accel::PackedModel::build(*d.weights);
    accel::Accelerator solo(packed);
    model::Sampler sampler(opts.sampler);
    model::ByteTokenizer tok;
    const std::vector<std::int32_t> ids = tok.encode(prompt);
    accel::GenerationResult want =
        solo.generate(ids, max_new, sampler, model::ByteTokenizer::kEos);

    EXPECT_EQ(h.get().tokens, want.tokens);
    (void)other.get();
}

}  // namespace
}  // namespace efld::serve
