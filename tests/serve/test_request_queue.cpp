// RequestQueue edge cases: bounded rejection, FIFO ordering (including under
// concurrent submitters), and scheduler-driven admission order.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"

namespace efld::serve {
namespace {

PendingRequest req(std::uint64_t id, std::size_t prompt_len = 1,
                   std::size_t max_new = 1) {
    PendingRequest r;
    r.id = id;
    r.prompt.assign(prompt_len, 0);
    r.max_new_tokens = max_new;
    return r;
}

TEST(RequestQueue, PopOnEmptyIsNullopt) {
    RequestQueue q(4);
    EXPECT_FALSE(q.try_pop().has_value());
    EXPECT_FALSE(q.pop_with(FcfsScheduler{}).has_value());
    EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, FullQueueRejectsWithoutLosingTheRequest) {
    RequestQueue q(2);
    EXPECT_TRUE(q.push(req(1)));
    EXPECT_TRUE(q.push(req(2)));

    PendingRequest third = req(3, 5, 7);
    EXPECT_FALSE(q.push(std::move(third)));
    // Rejection leaves the request intact — the caller can retry or reroute.
    EXPECT_EQ(third.id, 3u);
    EXPECT_EQ(third.prompt.size(), 5u);
    EXPECT_EQ(third.max_new_tokens, 7u);

    // Draining one slot makes room again.
    ASSERT_TRUE(q.try_pop().has_value());
    EXPECT_TRUE(q.push(std::move(third)));
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, FifoOrderSingleThread) {
    RequestQueue q(8);
    for (std::uint64_t id = 1; id <= 5; ++id) EXPECT_TRUE(q.push(req(id)));
    for (std::uint64_t id = 1; id <= 5; ++id) {
        const std::optional<PendingRequest> p = q.try_pop();
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->id, id);
    }
}

TEST(RequestQueue, ConcurrentSubmittersKeepPerThreadFifoOrder) {
    // N submitter threads interleave arbitrarily, but each thread's own
    // requests must drain in its submission order, every accepted request
    // must drain exactly once, and accepted + rejected must account for all.
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 64;
    RequestQueue q(kThreads * kPerThread / 2);  // deliberately undersized

    std::atomic<std::size_t> rejected{0};
    std::atomic<bool> done_submitting{false};
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                // id encodes (thread, sequence) so the drain can check order.
                const std::uint64_t id = t * 1000 + i;
                if (!q.push(req(id))) {
                    rejected.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    // Concurrent drain while submitters run (the serve loop's pop pattern).
    std::vector<std::uint64_t> drained;
    std::thread drainer([&] {
        while (true) {
            std::optional<PendingRequest> p = q.try_pop();
            if (p.has_value()) {
                drained.push_back(p->id);
            } else if (done_submitting.load(std::memory_order_acquire)) {
                if (!q.try_pop().has_value()) break;
            }
        }
    });
    for (auto& s : submitters) s.join();
    done_submitting.store(true, std::memory_order_release);
    drainer.join();

    EXPECT_EQ(drained.size() + rejected.load(), kThreads * kPerThread);
    // Per-submitter FIFO: sequence numbers of each thread appear increasing.
    std::vector<std::int64_t> last_seq(kThreads, -1);
    for (const std::uint64_t id : drained) {
        const std::size_t t = id / 1000;
        const std::int64_t seq = static_cast<std::int64_t>(id % 1000);
        ASSERT_LT(t, kThreads);
        EXPECT_GT(seq, last_seq[t]) << "thread " << t << " order violated";
        last_seq[t] = seq;
    }
}

TEST(RequestQueue, SjfSchedulerPicksShortestRemainingWork) {
    RequestQueue q(8);
    ASSERT_TRUE(q.push(req(1, /*prompt=*/10, /*max_new=*/20)));  // work 30
    ASSERT_TRUE(q.push(req(2, /*prompt=*/2, /*max_new=*/3)));    // work 5
    ASSERT_TRUE(q.push(req(3, /*prompt=*/2, /*max_new=*/3)));    // work 5 (tie)
    ASSERT_TRUE(q.push(req(4, /*prompt=*/1, /*max_new=*/1)));    // work 2

    const SjfScheduler sjf;
    EXPECT_EQ(q.pop_with(sjf)->id, 4u);
    EXPECT_EQ(q.pop_with(sjf)->id, 2u);  // tie keeps FIFO order
    EXPECT_EQ(q.pop_with(sjf)->id, 3u);
    EXPECT_EQ(q.pop_with(sjf)->id, 1u);
}

TEST(RequestQueue, FcfsSchedulerIsTryPop) {
    RequestQueue q(4);
    ASSERT_TRUE(q.push(req(1, 9, 9)));
    ASSERT_TRUE(q.push(req(2, 1, 1)));
    EXPECT_EQ(q.pop_with(FcfsScheduler{})->id, 1u);
    EXPECT_EQ(q.try_pop()->id, 2u);
}

TEST(RequestQueue, PopIfChargesPassedOverRequests) {
    RequestQueue q(8);
    ASSERT_TRUE(q.push(req(1, /*prompt=*/10, /*max_new=*/20)));  // big, oldest
    ASSERT_TRUE(q.push(req(2, 1, 1)));
    ASSERT_TRUE(q.push(req(3, 1, 1)));
    const SjfScheduler sjf;
    const auto admit_all = [](PendingRequest&) { return true; };

    RequestQueue::PopOutcome out = q.pop_if(sjf, admit_all);
    ASSERT_TRUE(out.req.has_value());
    EXPECT_EQ(out.req->id, 2u);
    EXPECT_FALSE(out.promoted);
    out = q.pop_if(sjf, admit_all);
    EXPECT_EQ(out.req->id, 3u);
    // The big request watched two younger submissions jump it.
    out = q.pop_if(sjf, admit_all);
    EXPECT_EQ(out.req->id, 1u);
    EXPECT_EQ(out.req->times_deferred, 2u);
}

TEST(RequestQueue, PopIfPromotesAtMaxDeferrals) {
    RequestQueue q(8);
    ASSERT_TRUE(q.push(req(1, 10, 20)));  // big: never SJF's pick
    for (std::uint64_t id = 2; id <= 5; ++id) ASSERT_TRUE(q.push(req(id, 1, 1)));
    const SjfScheduler sjf;
    const auto admit_all = [](PendingRequest&) { return true; };

    // With the guard at 2, two smalls pass; the third pop is forced to the
    // big request even though shorter work is still queued.
    EXPECT_EQ(q.pop_if(sjf, admit_all, 2).req->id, 2u);
    EXPECT_EQ(q.pop_if(sjf, admit_all, 2).req->id, 3u);
    RequestQueue::PopOutcome promoted = q.pop_if(sjf, admit_all, 2);
    ASSERT_TRUE(promoted.req.has_value());
    EXPECT_EQ(promoted.req->id, 1u);
    EXPECT_TRUE(promoted.promoted);
    EXPECT_EQ(promoted.req->times_deferred, 2u);
    // Remaining smalls drain normally.
    EXPECT_EQ(q.pop_if(sjf, admit_all, 2).req->id, 4u);
}

TEST(RequestQueue, RefusedPromotedPickStillBlocksAdmission) {
    RequestQueue q(8);
    PendingRequest big = req(1, 10, 20);
    big.times_deferred = 5;  // already past the guard
    ASSERT_TRUE(q.push(std::move(big)));
    ASSERT_TRUE(q.push(req(2, 1, 1)));
    const SjfScheduler sjf;

    // The promoted pick is refused (no capacity): admission defers in place —
    // the small request must NOT slip past it, or promotion would starve.
    const RequestQueue::PopOutcome out = q.pop_if(
        sjf, [](PendingRequest& r) { return r.id != 1; }, 3);
    EXPECT_FALSE(out.req.has_value());
    EXPECT_TRUE(out.deferred);
    EXPECT_EQ(q.size(), 2u);
}

}  // namespace
}  // namespace efld::serve
