// Per-session bookkeeping for one in-flight request.
//
// A session occupies one ReferenceEngine slot from admission to retirement.
// Its token feed is a single logical stream: first the prompt ids (prefill,
// riding the same batched weight walks as everyone else's decode), then the
// tokens its own sampler picked. The session is therefore indistinguishable
// — token for token — from a solo run of the same prompt, which is what the
// continuous-batching parity tests assert.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "model/sampler.hpp"
#include "serve/serve_types.hpp"

namespace efld::serve {

struct SessionState {
    SessionState(PendingRequest&& req, const model::SamplerConfig& sampler_cfg,
                 std::size_t slot_index)
        : id(req.id),
          slot(slot_index),
          prompt(std::move(req.prompt)),
          max_new_tokens(req.max_new_tokens),
          deadline(req.deadline),
          on_token(std::move(req.on_token)),
          control(std::move(req.control)),
          times_deferred(req.times_deferred),
          sampler(sampler_cfg),
          promise(std::move(req.promise)) {}

    std::uint64_t id = 0;
    std::size_t slot = 0;
    std::vector<std::int32_t> prompt;
    std::size_t prompt_fed = 0;          // prompt ids already decoded
    std::size_t max_new_tokens = 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    TokenCallback on_token;              // streaming; may be empty
    std::shared_ptr<RequestControl> control;  // cancel channel; may be null
    std::size_t times_deferred = 0;      // governor deferrals while queued
    std::size_t committed_pages = 0;     // governor commitment, released at retire
    std::vector<std::int32_t> generated;
    model::Sampler sampler;              // fresh per request (seeded by config)
    std::promise<ServeResult> promise;
    std::int32_t pending_token = -1;     // sampled, not yet fed back

    [[nodiscard]] bool cancel_requested() const noexcept {
        return control != nullptr && control->cancel.load(std::memory_order_relaxed);
    }
    [[nodiscard]] bool deadline_passed(
        std::chrono::steady_clock::time_point now) const noexcept {
        return deadline.has_value() && now >= *deadline;
    }

    // Next token to feed this step: remaining prompt first, then the token
    // sampled last step.
    [[nodiscard]] std::int32_t next_feed() const noexcept {
        return prompt_fed < prompt.size()
                   ? prompt[prompt_fed]
                   : pending_token;
    }
    // Whether this step's logits row is samplable (true once the whole prompt
    // has been fed — i.e. the fed token was the last prompt id or a
    // generated one).
    [[nodiscard]] bool sampling_after_feed() const noexcept {
        return prompt_fed + 1 >= prompt.size();
    }
};

}  // namespace efld::serve
