// Per-session bookkeeping for one in-flight request.
//
// A session occupies one ReferenceEngine slot from admission to retirement.
// Its token feed is a single logical stream: first the prompt ids (prefill,
// riding the same batched weight walks as everyone else's decode), then the
// tokens its own sampler picked. The session is therefore indistinguishable
// — token for token — from a solo run of the same prompt, which is what the
// continuous-batching parity tests assert.
//
// Failover resume: a request displaced by a shard failure arrives with the
// tokens the dead shard already generated and streamed (PendingRequest::
// resumed). They extend the prefill prefix — prompt first, then the resumed
// tokens — so the new slot's KV history is rebuilt exactly as the dead shard
// built it, and they seed `generated` so budget math and the final result
// are unchanged. Because sampling only begins once the WHOLE prefix has been
// fed, on_token fires only for tokens generated here: a position streamed by
// the dead shard is never delivered again.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "model/sampler.hpp"
#include "serve/serve_types.hpp"

namespace efld::serve {

struct SessionState {
    SessionState(PendingRequest&& req, const model::SamplerConfig& sampler_cfg,
                 std::size_t slot_index)
        : id(req.id),
          slot(slot_index),
          prompt(std::move(req.prompt)),
          resumed_count(req.resumed.size()),
          max_new_tokens(req.max_new_tokens),
          deadline(req.deadline),
          on_token(std::move(req.on_token)),
          control(std::move(req.control)),
          times_deferred(req.times_deferred),
          failovers(req.failovers),
          submitted_ns(req.submitted_ns),
          generated(std::move(req.resumed)),
          sampler(sampler_cfg),
          promise(std::move(req.promise)) {}

    std::uint64_t id = 0;
    std::size_t slot = 0;
    std::vector<std::int32_t> prompt;
    std::size_t prefix_fed = 0;          // prefill ids (prompt + resumed) fed
    std::size_t resumed_count = 0;       // head of `generated` that is replay
    std::size_t max_new_tokens = 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    TokenCallback on_token;              // streaming; may be empty
    std::shared_ptr<RequestControl> control;  // cancel channel; may be null
    std::size_t times_deferred = 0;      // governor deferrals while queued
    std::size_t failovers = 0;           // shard failures that displaced it
    std::size_t committed_pages = 0;     // governor commitment, released at retire
    std::size_t adopted_tokens = 0;      // prefix tokens covered by adoption
    // Adoption ended mid-page in a still-shared page: the session's first
    // append will take a private copy. Set at admission, cleared (with a
    // cow_copy trace event) once the first post-adoption feed lands.
    bool cow_pending = false;
    // Latency anchors (obs::Clock nanoseconds). submitted_ns survives
    // failover with the request; admitted_ns/last_token_ns are per-admission
    // (a failed-over session restarts its inter-token clock on the new
    // shard, so cross-shard replay never pollutes the gap histogram).
    std::uint64_t submitted_ns = 0;
    std::uint64_t admitted_ns = 0;
    std::uint64_t last_token_ns = 0;
    std::vector<std::int32_t> generated; // seeded with the resumed tokens
    model::Sampler sampler;              // fresh per request (seeded by config)
    std::promise<ServeResult> promise;
    std::int32_t pending_token = -1;     // sampled, not yet fed back

    [[nodiscard]] bool cancel_requested() const noexcept {
        return control != nullptr && control->cancel.load(std::memory_order_relaxed);
    }
    [[nodiscard]] bool deadline_passed(
        std::chrono::steady_clock::time_point now) const noexcept {
        return deadline.has_value() && now >= *deadline;
    }

    // The prefill prefix: the prompt, then (after a failover) the tokens the
    // dead shard already generated — both must be fed before sampling starts.
    [[nodiscard]] std::size_t prefix_len() const noexcept {
        return prompt.size() + resumed_count;
    }
    [[nodiscard]] std::int32_t prefix_at(std::size_t i) const noexcept {
        return i < prompt.size() ? prompt[i] : generated[i - prompt.size()];
    }
    // Next token to feed this step: remaining prefix first, then the token
    // sampled last step.
    [[nodiscard]] std::int32_t next_feed() const noexcept {
        return prefix_fed < prefix_len() ? prefix_at(prefix_fed) : pending_token;
    }
    // Whether this step's logits row is samplable (true once the whole prefix
    // has been fed — i.e. the fed token was the last prefix id or a freshly
    // generated one).
    [[nodiscard]] bool sampling_after_feed() const noexcept {
        return prefix_fed + 1 >= prefix_len();
    }
};

}  // namespace efld::serve
