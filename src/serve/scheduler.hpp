// Admission scheduling: which pending request takes a freed session slot.
//
// Continuous batching admits at token boundaries only, so the scheduler is a
// pure policy over the queue snapshot — it never preempts running sessions.
// FCFS is the fairness default; shortest-job-first minimizes mean latency
// under mixed lengths at the cost of potential starvation (pair it with
// Request::deadline, which sheds queued work the scheduler keeps passing
// over).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/serve_types.hpp"

namespace efld::serve {

class Scheduler {
public:
    virtual ~Scheduler() = default;

    // Index of the request to admit next. `pending` is non-empty, in
    // submission order (front() is oldest).
    [[nodiscard]] virtual std::size_t pick(
        const std::deque<PendingRequest>& pending) const = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

class FcfsScheduler final : public Scheduler {
public:
    [[nodiscard]] std::size_t pick(const std::deque<PendingRequest>&) const override {
        return 0;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "fcfs"; }
};

// Shortest remaining work first: prompt prefill plus decode budget (both ride
// the same batched weight walks, so both are "work"). Ties keep FIFO order.
class SjfScheduler final : public Scheduler {
public:
    [[nodiscard]] std::size_t pick(
        const std::deque<PendingRequest>& pending) const override {
        auto work = [](const PendingRequest& r) {
            return r.prompt.size() + r.max_new_tokens;
        };
        std::size_t best = 0;
        for (std::size_t i = 1; i < pending.size(); ++i) {
            if (work(pending[i]) < work(pending[best])) best = i;
        }
        return best;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "sjf"; }
};

enum class SchedulerPolicy { kFcfs, kSjf };

[[nodiscard]] inline std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy p) {
    switch (p) {
        case SchedulerPolicy::kFcfs: return std::make_unique<FcfsScheduler>();
        case SchedulerPolicy::kSjf: return std::make_unique<SjfScheduler>();
    }
    throw std::invalid_argument("make_scheduler: unknown policy");
}

}  // namespace efld::serve
