// Bounded thread-safe FIFO of pending requests.
//
// submit() may be called from any thread; the serve loop pops at token
// boundaries (the only points where a session can join the batch). The queue
// is deliberately bounded — a serving system must shed load explicitly, not
// grow an unbounded backlog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/serve_types.hpp"

namespace efld::serve {

class Scheduler;

class RequestQueue {
public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    // Enqueues `req`; returns false (leaving `req` untouched) when full.
    bool push(PendingRequest&& req);

    // Oldest pending request, or nullopt when empty.
    std::optional<PendingRequest> try_pop();

    // Removes and returns the scheduler's pick over the current backlog, or
    // nullopt when empty. try_pop() is pop_with(FcfsScheduler{}).
    std::optional<PendingRequest> pop_with(const Scheduler& scheduler);

    // pop_with gated by an admission predicate: the scheduler's pick is
    // removed and returned only when `admissible(pick)` holds. When it does
    // not, the pick stays queued IN PLACE (strict policy order — nothing
    // jumps a deferred request, which is what keeps big requests from
    // starving) and `deferred` is set. The predicate may mutate the request's
    // bookkeeping (deferral counters) and runs under the queue lock, so it
    // must not call back into the queue.
    //
    // Deferral accounting: a successful pop charges one deferral to every
    // still-queued request submitted EARLIER than the popped one (it was
    // passed over — SJF admitting a shorter, younger job), on top of the
    // deferrals the predicate itself records when it refuses the pick for
    // capacity. Under FCFS without capacity pressure nothing accrues.
    //
    // Anti-starvation: a request whose times_deferred has reached
    // `max_deferrals` overrides the scheduler — it becomes the mandatory next
    // pick (most-deferred first, FIFO on ties) until admitted, so a stream of
    // small requests cannot pass over a big one forever. A promoted pick the
    // predicate refuses still blocks admission (strict order), which bounds
    // its wait by the batch's drain time. kNoPromotion disables the guard.
    struct PopOutcome {
        std::optional<PendingRequest> req;
        bool deferred = false;  // pick existed but was refused admission
        bool promoted = false;  // pick was forced by the starvation guard
    };
    static constexpr std::size_t kNoPromotion = static_cast<std::size_t>(-1);
    PopOutcome pop_if(const Scheduler& scheduler,
                      const std::function<bool(PendingRequest&)>& admissible,
                      std::size_t max_deferrals = kNoPromotion);

    // Blocks until the queue is non-empty or `wake()` returns true. push()
    // notifies; an external waker (ServeEngine::stop) flips its flag and
    // calls notify_all(). The background serve driver idles here.
    void wait_for_work(const std::function<bool()>& wake);
    void notify_all();

    // Removes every request matching `pred` (kept in FIFO order) and returns
    // them. The serve loop uses this to shed cancelled/expired requests the
    // scheduler might otherwise pass over forever.
    std::vector<PendingRequest> remove_if(
        const std::function<bool(const PendingRequest&)>& pred);

    // Visits every queued request (FIFO order) under the queue lock — the
    // load-snapshot path (ServeEngine::load) sums queued page demand with
    // this. `fn` must not call back into the queue.
    void for_each(const std::function<void(const PendingRequest&)>& fn) const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    mutable std::mutex m_;
    std::condition_variable cv_;  // signaled on push and by notify_all()
    std::deque<PendingRequest> q_;
    std::size_t capacity_;
};

}  // namespace efld::serve
