#include "serve/serve_engine.hpp"

#include <algorithm>
#include <exception>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "engine/fault_injection.hpp"
#include "kvpool/kv_block_pool.hpp"
#include "runtime/memory_planner.hpp"

namespace efld::serve {

namespace {
model::EngineOptions engine_options(const ServeOptions& o) {
    model::EngineOptions e;
    e.use_kv8 = o.use_kv8;
    e.kv_bits = o.kv_bits;
    e.threads = o.threads;
    e.max_batch = o.max_batch;
    e.packed_weights = o.packed_weights;
    return e;
}

void validate(const ServeOptions& o) {
    if (o.max_batch == 0) {
        throw std::invalid_argument("ServeOptions: max_batch must be >= 1");
    }
    if (o.max_queue == 0) {
        throw std::invalid_argument(
            "ServeOptions: max_queue must be >= 1 (a queueless server cannot "
            "accept work; shed load by rejecting submits instead)");
    }
    if (o.paging && o.kv_page_tokens == 0) {
        throw std::invalid_argument(
            "ServeOptions: paging needs kv_page_tokens >= 1");
    }
    if (!o.paging && (o.kv_pool_pages != 0 || o.kv_pool_bytes != 0)) {
        throw std::invalid_argument(
            "ServeOptions: kv_pool_pages/kv_pool_bytes have no effect without "
            "paging (set paging = true)");
    }
    if (o.prefix_sharing && !o.paging) {
        throw std::invalid_argument(
            "ServeOptions: prefix_sharing needs paging (shared pages are "
            "refcounted pool pages)");
    }
    if (o.max_deferrals == 0) {
        throw std::invalid_argument(
            "ServeOptions: max_deferrals must be >= 1 (0 would promote every "
            "queued request instantly, bypassing the scheduler entirely)");
    }
    // The thread-count contract is shared with EngineOptions; validate it here
    // too so the accel backend (which never builds a ReferenceEngine) rejects
    // the same misconfigurations.
    model::validate(engine_options(o));
}
}  // namespace

void ServeEngine::init_governor(const model::ModelConfig& cfg) {
    model::QuantScheme scheme = model::QuantScheme::w4a16_kv8();
    scheme.kv_bits = opts_.kv_bits;
    std::size_t pages = opts_.kv_pool_pages;
    if (pages == 0) {
        // The pool's DDR budget: explicit, or whatever the KV260 plan leaves
        // after the weights and the bare-metal firmware reservation.
        std::uint64_t budget = opts_.kv_pool_bytes;
        if (budget == 0) {
            budget = kvpool::kv_budget_from_plan(
                runtime::MemoryPlanner::plan_kv260(cfg, scheme));
        }
        pages = kvpool::pages_for_budget(cfg, scheme, budget, opts_.kv_page_tokens);
    }
    check(pages > 0,
          "ServeEngine: KV pool budget affords zero pages (weights already "
          "overflow the device?)");
    governor_ =
        std::make_unique<kvpool::CapacityGovernor>(pages, opts_.kv_page_tokens);
}

ServeEngine::ServeEngine(const model::QuantizedModelWeights& weights, ServeOptions opts)
    : opts_(opts), queue_(opts.max_queue) {
    validate(opts_);
    if (opts_.paging) init_governor(weights.config);
    accel::AcceleratorOptions accel_opts;
    accel_opts.collect_timing = opts_.collect_timing;
    model::EngineOptions eo = engine_options(opts_);
    if (governor_ != nullptr) {
        // The host backend's paged arena and the governor's ledger budget the
        // same pool; the accel backend prices the page layout in its cycle
        // model (its functional KV storage is host-side scaffolding).
        eo.kv_page_tokens = opts_.kv_page_tokens;
        eo.kv_pool_pages = governor_->total_pages();
        eo.prefix_sharing = opts_.prefix_sharing;
    }
    bundle_ = engine::make_backend(opts_.backend, weights, eo, accel_opts,
                                   opts_.fault_spec);
    backend_ = bundle_.backend.get();
    init();
}

ServeEngine::ServeEngine(std::unique_ptr<engine::DecodeBackend> backend,
                         ServeOptions opts)
    : opts_(opts), queue_(opts.max_queue) {
    validate(opts_);
    if (backend == nullptr) {
        throw std::invalid_argument("ServeEngine: null backend");
    }
    // The engine assumes every backend slot is its to hand out; a backend
    // with slots already reserved elsewhere would fail mid-serve instead of
    // here. Probe the full capacity up front (reserve-all / release-all is a
    // no-op on fresh slots).
    std::vector<std::size_t> probe;
    probe.reserve(backend->max_batch());
    while (probe.size() < backend->max_batch()) {
        const std::size_t slot = backend->reserve_slot();
        if (slot == engine::DecodeBackend::kNoSlot) break;
        probe.push_back(slot);
    }
    const bool all_free = probe.size() == backend->max_batch();
    for (const std::size_t slot : probe) backend->release_slot(slot);
    if (!all_free) {
        throw std::invalid_argument(
            "ServeEngine: backend already has reserved slots; hand the serve "
            "engine a backend it can own outright");
    }
    // Wrap AFTER the probe so the probe's reserve/release churn does not
    // consume the fault plan's reservation schedule (and an alloc:1 plan
    // faults on the first real admission, not inside this constructor).
    if (!opts_.fault_spec.empty()) {
        backend = std::make_unique<engine::FaultInjectingBackend>(
            std::move(backend), engine::parse_fault_plan(opts_.fault_spec));
    }
    bundle_.backend = std::move(backend);
    backend_ = bundle_.backend.get();
    if (opts_.paging) init_governor(backend_->config());
    init();
}

ServeEngine::~ServeEngine() {
    try {
        stop();
    } catch (...) {
        // A parked driver error has nowhere to go from a destructor.
    }
    // Inert-handle guarantee: a request still outstanding at teardown
    // resolves with kShardFailure (partial tokens preserved) instead of
    // leaving its future to break — handles held elsewhere return from
    // get() with a reason, never a std::future_error surprise. Marking the
    // engine failed first lets take_unfinished() do the harvest; on a clean
    // teardown (everything already resolved) the harvest is empty.
    failed_.store(true, std::memory_order_release);
    for (PendingRequest& req : take_unfinished()) {
        resolve_lost(std::move(req));
    }
}

void ServeEngine::init() {
    check(static_cast<std::uint64_t>(tokenizer_.vocab_size()) <=
              backend_->config().vocab_size,
          "ServeEngine: model vocab too small for the byte tokenizer");
    clock_ = opts_.clock ? opts_.clock.get() : &obs::steady_clock();
    next_id_.store(opts_.id_base + 1, std::memory_order_relaxed);
    hist_queue_wait_ = &metrics_.histogram("serve_queue_wait_ns");
    hist_ttft_ = &metrics_.histogram("serve_ttft_ns");
    hist_intertoken_ = &metrics_.histogram("serve_intertoken_gap_ns");
    hist_e2e_ = &metrics_.histogram("serve_e2e_ns");
    // Rolling windows are always on (they cost a mutexed bucket bump at
    // control-plane rate); the profiler costs are opt-in.
    obs::RollingWindow::Options wopts;
    win_arrivals_ = std::make_unique<obs::RollingWindow>(clock_, wopts);
    win_deferrals_ = std::make_unique<obs::RollingWindow>(clock_, wopts);
    win_failovers_ = std::make_unique<obs::RollingWindow>(clock_, wopts);
    win_tokens_ = std::make_unique<obs::RollingWindow>(clock_, wopts);
    wopts.with_histogram = true;
    win_ttft_ = std::make_unique<obs::RollingWindow>(clock_, wopts);
    if (opts_.profile) {
        prof_.enable(clock_, opts_.shard_id, opts_.profiler_spans);
        prof_.bind_registry(metrics_);
        backend_->set_profiler(&prof_);
    }
    scheduler_ = make_scheduler(opts_.scheduler);
    slots_.resize(backend_->max_batch());
    feed_tokens_.reserve(slots_.size());
    feed_slots_.reserve(slots_.size());
    logits_.resize(slots_.size() * backend_->config().vocab_size);
}

void ServeEngine::trace(std::uint64_t request_id, obs::TraceEvent event,
                        std::uint64_t arg) const {
    if (opts_.trace) opts_.trace->record(request_id, opts_.shard_id, event, arg);
}

PendingRequest ServeEngine::make_pending(
    const std::string& prompt, std::size_t max_new,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    TokenCallback on_token) {
    PendingRequest req;
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    req.prompt = tokenizer_.encode(prompt);
    check(!req.prompt.empty(), "ServeEngine: empty prompt after tokenization");
    check(req.prompt.size() <= backend_->config().max_seq_len,
          "ServeEngine: prompt exceeds the context window");
    req.max_new_tokens = max_new;
    req.deadline = deadline;
    req.on_token = std::move(on_token);
    req.control = std::make_shared<RequestControl>();
    if (governor_ != nullptr) {
        // A demand that exceeds the WHOLE pool can never be admitted; reject
        // now instead of deferring it forever at the head of the queue.
        check(governor_->ever_admissible(
                  governor_->predict_pages(req.prompt.size(), max_new)),
              "ServeEngine: prompt + max_new demand exceeds the whole KV pool");
    }
    req.submitted_ns = clock_->now_ns();
    win_arrivals_->add();
    trace(req.id, obs::TraceEvent::kSubmitted, req.prompt.size());
    return req;
}

FinishReason ServeEngine::finish_reason_of(Retire why) noexcept {
    switch (why) {
        case Retire::kEos: return FinishReason::kEos;
        case Retire::kBudget: return FinishReason::kBudget;
        case Retire::kContext: return FinishReason::kContextOverflow;
        case Retire::kCancelled: return FinishReason::kCancelled;
        case Retire::kDeadline: return FinishReason::kDeadline;
        case Retire::kShed: return FinishReason::kShedOverload;
    }
    return FinishReason::kNone;
}

void ServeEngine::resolve_unstarted(PendingRequest&& req, Retire why) {
    ServeResult r;
    r.id = req.id;
    r.prompt_tokens = req.prompt.size();
    r.finish_reason = finish_reason_of(why);
    r.times_deferred = req.times_deferred;
    r.failovers = req.failovers;
    r.tokens = std::move(req.resumed);  // a resumed request keeps its progress
    r.text = tokenizer_.decode(r.tokens);
    r.cancelled = why == Retire::kCancelled;
    r.hit_deadline = why == Retire::kDeadline;
    trace(req.id, obs::TraceEvent::kRetired,
          static_cast<std::uint64_t>(r.finish_reason));
    req.promise.set_value(std::move(r));
}

RequestHandle ServeEngine::submit(Request req) {
    PendingRequest p =
        make_pending(req.prompt, req.max_new_tokens, req.deadline,
                     std::move(req.on_token));
    const std::uint64_t id = p.id;
    std::shared_ptr<RequestControl> control = p.control;
    std::shared_future<ServeResult> fut = p.promise.get_future().share();
    if (p.max_new_tokens == 0) {
        // Nothing to decode: resolve immediately without occupying a slot.
        resolve_unstarted(std::move(p), Retire::kBudget);
    } else {
        check(queue_.push(std::move(p)), "ServeEngine: request queue full");
        // A failure landing between the failed() check inside step and this
        // push would strand the request in a dead queue (the failure sweep
        // already ran). Re-check and pull our own request back out so the
        // handle still resolves.
        if (failed()) {
            for (PendingRequest& mine : queue_.remove_if(
                     [id](const PendingRequest& r) { return r.id == id; })) {
                resolve_lost(std::move(mine));
            }
        }
    }
    return RequestHandle(id, std::move(control), std::move(fut));
}

std::future<ServeResult> ServeEngine::submit(const std::string& prompt,
                                             std::size_t max_new_tokens) {
    PendingRequest p = make_pending(prompt, max_new_tokens, std::nullopt, nullptr);
    const std::uint64_t id = p.id;
    std::future<ServeResult> fut = p.promise.get_future();
    if (max_new_tokens == 0) {
        resolve_unstarted(std::move(p), Retire::kBudget);
        return fut;
    }
    check(queue_.push(std::move(p)), "ServeEngine: request queue full");
    if (failed()) {
        for (PendingRequest& mine : queue_.remove_if(
                 [id](const PendingRequest& r) { return r.id == id; })) {
            resolve_lost(std::move(mine));
        }
    }
    return fut;
}

void ServeEngine::admit() {
    // Dead (cancelled/expired) requests were already swept from the queue by
    // step() this boundary; one landing in the microseconds since is admitted
    // normally and retired at the next boundary's control-plane pass.
    while (n_active_.load(std::memory_order_relaxed) < slots_.size()) {
        std::size_t committed = 0;
        const std::uint64_t pick_begin = prof_.enabled() ? prof_.now_ns() : 0;
        RequestQueue::PopOutcome out = queue_.pop_if(
            *scheduler_,
            [&](PendingRequest& r) {
                if (governor_ == nullptr) return true;
                std::size_t need = governor_->predict_pages(
                    r.prompt.size(), r.max_new_tokens);
                if (opts_.prefix_sharing) {
                    // Covered FULL pages are already charged once on the
                    // shared ledger, so this session pays only for its unique
                    // pages. A partially covered page is never discounted —
                    // keeping it committed is what funds the copy-on-write
                    // divergence copy.
                    const obs::ScopedPhase probe_span(&prof_,
                                                      obs::Phase::kPrefixProbe);
                    const std::size_t covered =
                        backend_->probe_prefix(r.prompt, r.prompt.size() - 1);
                    const std::size_t full = covered / opts_.kv_page_tokens;
                    need = need > full ? need - full : 1;
                }
                if (!governor_->try_admit(need)) {
                    ++r.times_deferred;
                    trace(r.id, obs::TraceEvent::kDeferred, r.times_deferred);
                    return false;
                }
                committed = need;
                return true;
            },
            opts_.max_deferrals);
        if (prof_.enabled()) {
            prof_.record_span(obs::Phase::kQueuePick, pick_begin,
                              prof_.now_ns());
        }
        if (governor_ != nullptr) {
            committed_pages_cache_.store(governor_->committed_pages(),
                                         std::memory_order_release);
        }
        if (out.deferred) {
            // Deferred with ZERO active sessions: nothing will ever free, so
            // only pinned prefixes can be in the way. Dump the index (the
            // pins are the only holders when no session runs, so every page
            // actually frees) and retry rather than starve admissible work.
            if (opts_.prefix_sharing &&
                n_active_.load(std::memory_order_relaxed) == 0) {
                const std::size_t released = backend_->drop_prefix_cache();
                if (released > 0) {
                    governor_->release_shared(released);
                    shared_pages_cache_.store(governor_->shared_pages(),
                                              std::memory_order_release);
                    const std::lock_guard<std::mutex> g(stats_mu_);
                    ++stats_.prefix_cache_drops;
                    continue;
                }
            }
            // The pick (scheduler's or promoted) does not fit the pool yet.
            // It stays queued in place and admission stops for this boundary —
            // strict policy order, so a big request is delayed, never starved.
            win_deferrals_->add();
            const std::lock_guard<std::mutex> g(stats_mu_);
            ++stats_.capacity_deferrals;
            return;
        }
        if (!out.req.has_value()) return;
        if (out.promoted) {
            const std::lock_guard<std::mutex> g(stats_mu_);
            ++stats_.queue_promotions;
        }
        // Admission proper: slot binding + session construction (+ adoption).
        const obs::ScopedPhase admission_span(&prof_, obs::Phase::kAdmission);

        std::size_t slot = engine::DecodeBackend::kNoSlot;
        try {
            slot = backend_->reserve_slot();
        } catch (...) {
            // Device fault mid-admission: the popped request is in neither
            // the queue nor a slot. Roll back its commitment, park it where
            // take_unfinished() will find it, and stage the fault for
            // step_locked() to consume at the next safe point.
            if (!backend_error_) backend_error_ = std::current_exception();
            if (governor_ != nullptr && committed != 0) {
                governor_->release(committed);
                committed_pages_cache_.store(governor_->committed_pages(),
                                             std::memory_order_release);
            }
            orphans_.push_back(std::move(*out.req));
            return;
        }
        check(slot != engine::DecodeBackend::kNoSlot && slot < slots_.size() &&
                  !slots_[slot].has_value(),
              "ServeEngine: backend slot bookkeeping diverged");
        slots_[slot].emplace(std::move(*out.req), opts_.sampler, slot);
        SessionState& s = *slots_[slot];
        s.committed_pages = committed;
        s.admitted_ns = clock_->now_ns();
        if (s.admitted_ns > s.submitted_ns) {
            hist_queue_wait_->record(s.admitted_ns - s.submitted_ns);
        } else {
            hist_queue_wait_->record(0);
        }
        trace(s.id, obs::TraceEvent::kAdmitted, slot);
        if (opts_.prefix_sharing) {
            // Adopt the longest indexed prefix, capped at prompt-1: the last
            // prompt token is always re-fed so the session has logits to
            // sample from — and when a page-aligned prompt matched fully,
            // that re-feed is what diverges into the shared tail page and
            // triggers the copy-on-write. A resumed (failed-over) session
            // adopts the same cap, so its resumed tokens all replay and the
            // sampler's draw-and-discard stream stays aligned with the
            // fault-free run.
            std::size_t covered = 0;
            {
                const obs::ScopedPhase adopt_span(&prof_,
                                                  obs::Phase::kPrefixAdopt);
                covered =
                    backend_->adopt_prefix(slot, s.prompt, s.prompt.size() - 1);
            }
            if (covered > 0) {
                s.prefix_fed = covered;
                s.adopted_tokens = covered;
                s.cow_pending = covered % opts_.kv_page_tokens != 0;
                trace(s.id, obs::TraceEvent::kPrefixHit, covered);
                const std::lock_guard<std::mutex> g(stats_mu_);
                ++stats_.prefix_hits;
                stats_.prefix_hit_tokens += covered;
            }
        }
        n_active_.fetch_add(1, std::memory_order_release);
    }
}

void ServeEngine::retire(SessionState& s, Retire why) {
    const obs::ScopedPhase retire_span(&prof_, obs::Phase::kRetire);
    ServeResult r;
    r.id = s.id;
    r.tokens = std::move(s.generated);
    r.text = tokenizer_.decode(r.tokens);
    r.prompt_tokens = s.prompt.size();
    r.finish_reason = finish_reason_of(why);
    r.times_deferred = s.times_deferred;
    r.failovers = s.failovers;
    r.hit_eos = why == Retire::kEos;
    r.hit_context_limit = why == Retire::kContext;
    r.cancelled = why == Retire::kCancelled;
    r.hit_deadline = why == Retire::kDeadline;
    const std::size_t committed = s.committed_pages;
    const std::uint64_t now_ns = clock_->now_ns();
    if (s.submitted_ns != 0) {
        hist_e2e_->record(now_ns > s.submitted_ns ? now_ns - s.submitted_ns : 0);
    }
    trace(s.id, obs::TraceEvent::kRetired,
          static_cast<std::uint64_t>(finish_reason_of(why)));
    s.promise.set_value(std::move(r));
    const std::size_t slot = s.slot;
    try {
        backend_->release_slot(slot);  // clears the slot's KV for the next tenant
    } catch (...) {
        // Device fault on teardown of a FINISHED request: its result already
        // resolved, so finish this retirement's bookkeeping and stage the
        // fault for step_locked() to consume between phases.
        if (!backend_error_) backend_error_ = std::current_exception();
    }
    slots_[slot].reset();
    if (governor_ != nullptr) {
        // Whole worst-case commitment back to the budget — an early
        // retirement (EOS, cancel, deadline) frees pages it never touched,
        // which is exactly what lets a deferred request in.
        governor_->release(committed);
        committed_pages_cache_.store(governor_->committed_pages(),
                                     std::memory_order_release);
    }
    n_active_.fetch_sub(1, std::memory_order_release);
    const std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.requests_completed;
    if (why == Retire::kCancelled) ++stats_.requests_cancelled;
    if (why == Retire::kDeadline) ++stats_.requests_expired;
}

bool ServeEngine::step() {
    check(!running(),
          "ServeEngine: step() while the background driver owns the loop");
    return step_locked();
}

void ServeEngine::set_on_failure(FailureCallback cb) {
    const std::lock_guard<std::mutex> g(failure_mu_);
    on_failure_ = std::move(cb);
}

std::exception_ptr ServeEngine::failure() const {
    const std::lock_guard<std::mutex> g(failure_mu_);
    return failure_;
}

void ServeEngine::resolve_lost(PendingRequest&& req) {
    ServeResult r;
    r.id = req.id;
    r.tokens = std::move(req.resumed);  // whatever was streamed pre-failure
    r.text = tokenizer_.decode(r.tokens);
    r.prompt_tokens = req.prompt.size();
    r.finish_reason = FinishReason::kShardFailure;
    r.times_deferred = req.times_deferred;
    r.failovers = req.failovers;
    // Count the loss BEFORE resolving the promise: a waiter unblocked by
    // get() must see this request already reflected in stats_snapshot(),
    // not catch the sweep mid-bookkeeping.
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.requests_completed;
        ++stats_.requests_lost;
    }
    trace(r.id, obs::TraceEvent::kRetired,
          static_cast<std::uint64_t>(FinishReason::kShardFailure));
    try {
        req.promise.set_value(std::move(r));
    } catch (const std::future_error&) {
        // Already resolved on another path; nothing to deliver.
    }
}

void ServeEngine::fail_backend() {
    std::exception_ptr e = backend_error_;
    backend_error_ = nullptr;
    {
        const std::lock_guard<std::mutex> g(failure_mu_);
        failure_ = e;
    }
    failed_.store(true, std::memory_order_release);
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.backend_failures;
    }
    if (governor_ != nullptr) {
        // Every session commitment back to the pool at once — the sessions
        // are about to be harvested, and the replacement engine starts from
        // a clean ledger either way. The prefix pins die with the backend.
        governor_->release(governor_->committed_pages());
        governor_->release_shared(governor_->shared_pages());
        committed_pages_cache_.store(0, std::memory_order_release);
        shared_pages_cache_.store(0, std::memory_order_release);
    }
    FailureCallback cb;
    {
        const std::lock_guard<std::mutex> g(failure_mu_);
        cb = on_failure_;
    }
    if (cb) {
        try {
            cb(e);
        } catch (...) {
            // Failure reporting must not take the reporting thread down too.
        }
    }
    // Whatever the callback's failover did not rescue resolves now, so no
    // handle is left waiting on a dead engine. With no callback this is the
    // whole backlog.
    for (PendingRequest& req : take_unfinished()) {
        resolve_lost(std::move(req));
    }
}

std::vector<PendingRequest> ServeEngine::take_unfinished() {
    check(failed(),
          "ServeEngine: take_unfinished() is only for a failed engine");
    std::vector<PendingRequest> out;
    // In-flight sessions first — they carry progress worth preserving. Their
    // generated-so-far tokens (all already streamed to on_token at sampling
    // time) become the resume record; the displacement bumps the failover
    // count. Slots are cleared WITHOUT release_slot: the device is dead, and
    // teardown must not trip over the corpse.
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        SessionState& s = *slots_[slot];
        PendingRequest req;
        req.id = s.id;
        req.prompt = std::move(s.prompt);
        req.resumed = std::move(s.generated);
        req.max_new_tokens = s.max_new_tokens;
        req.deadline = s.deadline;
        req.on_token = std::move(s.on_token);
        req.control = std::move(s.control);
        req.times_deferred = s.times_deferred;
        req.failovers = s.failovers + 1;
        req.submitted_ns = s.submitted_ns;
        req.promise = std::move(s.promise);
        trace(req.id, obs::TraceEvent::kFailoverHarvest, req.resumed.size());
        out.push_back(std::move(req));
        slots_[slot].reset();
    }
    n_active_.store(0, std::memory_order_release);
    // Then requests that fell between queue and slot (reserve_slot faulted),
    // then the still-queued backlog, all displaced once by this failure.
    for (PendingRequest& req : orphans_) {
        ++req.failovers;
        trace(req.id, obs::TraceEvent::kFailoverHarvest, req.resumed.size());
        out.push_back(std::move(req));
    }
    orphans_.clear();
    for (PendingRequest& req :
         queue_.remove_if([](const PendingRequest&) { return true; })) {
        ++req.failovers;
        trace(req.id, obs::TraceEvent::kFailoverHarvest, req.resumed.size());
        out.push_back(std::move(req));
    }
    return out;
}

bool ServeEngine::resubmit(PendingRequest& req) {
    if (failed()) return false;
    if (governor_ != nullptr &&
        !governor_->ever_admissible(
            governor_->predict_pages(req.prompt.size(), req.max_new_tokens))) {
        // predict_pages(prompt, max_new) is the resumed request's demand too:
        // budget accounting counts the resume record against max_new, so the
        // session tops out at prompt + max_new tokens total either way.
        return false;
    }
    const std::uint64_t id = req.id;
    const std::size_t failover_count = req.failovers;
    if (!queue_.push(std::move(req))) return false;  // full: req left intact
    win_failovers_->add();
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.requests_resumed;
    }
    trace(id, obs::TraceEvent::kResubmitted, failover_count);
    // Same failure race as submit(): once pushed, the request WILL resolve
    // here — pull it back ourselves if this engine just died, because the
    // failure sweep may already have run.
    if (failed()) {
        for (PendingRequest& mine : queue_.remove_if(
                 [id](const PendingRequest& r) { return r.id == id; })) {
            resolve_lost(std::move(mine));
        }
    }
    return true;
}

bool ServeEngine::step_locked() {
    if (failed()) return false;  // a dead engine steps no more
    const auto now = std::chrono::steady_clock::now();

    // Token boundary, part 1: control-plane retirements (cancel, deadline)
    // free their slots before admission looks at the queue. Partial output is
    // delivered; the batch never stalls on a control operation.
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        SessionState& s = *slots_[slot];
        if (s.cancel_requested()) {
            retire(s, Retire::kCancelled);
        } else if (s.deadline_passed(now)) {
            retire(s, Retire::kDeadline);
        }
    }

    // Sweep the whole queue for dead requests, not just the scheduler's next
    // pick — SJF could pass over a cancelled/expired request forever, leaving
    // its future unresolved.
    for (PendingRequest& dead : queue_.remove_if([now](const PendingRequest& r) {
             return (r.control != nullptr &&
                     r.control->cancel.load(std::memory_order_relaxed)) ||
                    (r.deadline.has_value() && now >= *r.deadline);
         })) {
        const bool was_cancelled =
            dead.control != nullptr &&
            dead.control->cancel.load(std::memory_order_relaxed);
        resolve_unstarted(std::move(dead),
                          was_cancelled ? Retire::kCancelled : Retire::kDeadline);
        const std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.requests_completed;
        if (was_cancelled) {
            ++stats_.requests_cancelled;
        } else {
            ++stats_.requests_expired;
        }
    }

    // Overload shedding: while an SLO alert has the governor engaged, shed
    // queued requests whose deadline the engine can no longer plausibly meet
    // — remaining budget below the TTFT observed over the last 10s — so free
    // slots go to requests that can still land inside their SLO. Resolved
    // with kShedOverload (not kDeadline: the deadline has NOT passed yet;
    // the caller learns it was load-shed, the HTTP-503 of admission).
    if (opts_.overload != nullptr && opts_.overload->shed_hopeless()) {
        const obs::WindowSnapshot w = win_ttft_->over(10'000'000'000ull);
        if (w.count > 0) {
            const double est_ns = static_cast<double>(w.sum) /
                                  static_cast<double>(w.count) *
                                  opts_.overload->options().hopeless_margin;
            const auto est = std::chrono::nanoseconds(
                static_cast<std::int64_t>(est_ns));
            for (PendingRequest& doomed :
                 queue_.remove_if([now, est](const PendingRequest& r) {
                     return r.deadline.has_value() && now + est >= *r.deadline;
                 })) {
                const auto left = std::chrono::duration_cast<
                    std::chrono::nanoseconds>(*doomed.deadline - now);
                trace(doomed.id, obs::TraceEvent::kShed,
                      left.count() > 0 ? static_cast<std::uint64_t>(left.count())
                                       : 0);
                resolve_unstarted(std::move(doomed), Retire::kShed);
                opts_.overload->count_shed();
                const std::lock_guard<std::mutex> g(stats_mu_);
                ++stats_.requests_completed;
                ++stats_.requests_shed;
            }
        }
    }

    // Fault checkpoints: a backend exception staged by retire()/admit() is
    // consumed here, between phases, so no retirement or admission is ever
    // torn mid-flight by failure handling.
    if (backend_error_) {
        fail_backend();
        return false;
    }

    // Part 2: queued requests join whatever slots are free.
    admit();
    if (backend_error_) {
        fail_backend();
        return false;
    }
    if (n_active_.load(std::memory_order_relaxed) == 0) {
        // Nothing admitted: the queue is empty — or its head is a deferred
        // request, which with zero active sessions cannot happen (an empty
        // pool admits anything submit accepted).
        return false;
    }

    feed_tokens_.clear();
    feed_slots_.clear();
    std::size_t prefill_lanes = 0;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        feed_tokens_.push_back(slots_[slot]->next_feed());
        feed_slots_.push_back(slot);
        // A lane whose feed does NOT lead to sampling is mid-prefill; the
        // profiler attributes its share of the step to the prefill phase.
        if (!slots_[slot]->sampling_after_feed()) ++prefill_lanes;
    }

    // ONE weight walk advances every active session by one token.
    const std::size_t vocab = backend_->config().vocab_size;
    try {
        backend_->decode_batch(feed_tokens_, feed_slots_,
                               std::span<float>(logits_.data(),
                                                feed_slots_.size() * vocab));
    } catch (...) {
        // The step produced nothing: no token was sampled, no on_token fired,
        // so every session's delivered-token state is exactly as it was. That
        // is what makes harvest + replay exactly-once.
        backend_error_ = std::current_exception();
        fail_backend();
        return false;
    }
    const engine::StepCost cost = backend_->last_step_cost();
    if (prof_.enabled()) {
        prof_.attribute_step(static_cast<std::uint64_t>(cost.wall_ns),
                             cost.simulated_ns, cost.weight_walks,
                             prefill_lanes, feed_slots_.size());
    }
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        ++stats_.steps;
        stats_.weight_walks += cost.weight_walks;
        stats_.lane_steps += feed_slots_.size();
        stats_.peak_batch = std::max(stats_.peak_batch, feed_slots_.size());
        stats_.wall_ns += cost.wall_ns;
        stats_.simulated_ns += cost.simulated_ns;
        stats_.sim_mem_bound_ns += cost.sim_mem_bound_ns;
        stats_.sim_compute_ns += cost.sim_compute_ns;
        stats_.sim_overhead_ns += cost.sim_overhead_ns;
    }
    // One timestamp per step boundary: every latency observed this step
    // (TTFT, inter-token gap) shares it, so gaps measure the step cadence
    // without a clock call per lane.
    const std::uint64_t step_ns = clock_->now_ns();

    // A throwing on_token callback must not corrupt the batch: every lane's
    // bookkeeping still completes, and the first exception is rethrown only
    // after the token boundary is consistent. Token counters accumulate in
    // locals and flush under ONE stats lock per step — per-lane lock churn
    // would contend with the router's load() snapshots for nothing.
    std::exception_ptr callback_error;
    std::size_t step_prompt_tokens = 0;
    std::size_t step_replayed_tokens = 0;
    std::size_t step_generated_tokens = 0;
    for (std::size_t b = 0; b < feed_slots_.size(); ++b) {
        SessionState& s = *slots_[feed_slots_[b]];
        const std::span<const float> row(logits_.data() + b * vocab, vocab);
        const bool samplable = s.sampling_after_feed();
        if (s.cow_pending) {
            // The feed that just ran was this session's first append after a
            // mid-page adoption: the arena took its private copy of the
            // shared page inside decode_batch.
            s.cow_pending = false;
            trace(s.id, obs::TraceEvent::kCowCopy, 1);
        }
        if (s.prefix_fed < s.prefix_len()) {
            const bool replay = s.prefix_fed >= s.prompt.size();
            ++s.prefix_fed;
            if (replay) {
                ++step_replayed_tokens;
            } else {
                ++step_prompt_tokens;
            }
            if (s.prefix_fed == s.prefix_len()) {
                trace(s.id, obs::TraceEvent::kPrefillDone, s.prefix_len());
                if (opts_.prefix_sharing && governor_ != nullptr) {
                    // Its prompt pages are all resident now: index them under
                    // the shared budget (pins never exceed half the pool or
                    // eat committed headroom) and charge each pin ONCE —
                    // future sessions adopting them are discounted instead.
                    const std::size_t took = backend_->register_prefix(
                        s.slot, s.prompt, governor_->shared_budget());
                    if (took > 0) {
                        governor_->charge_shared(took);
                        shared_pages_cache_.store(governor_->shared_pages(),
                                                  std::memory_order_release);
                    }
                }
            }
        }
        if (!samplable) {
            // Mid-prefill: the logits row is unused — except that a row
            // predicting a RESUMED token consumed one sampler draw on the
            // dead shard, so draw-and-discard here too. The replayed token
            // itself comes from the resume record (robust even if sampling
            // were to diverge); this keeps a stochastic continuation on the
            // same RNG stream as the fault-free run.
            if (s.prefix_fed >= s.prompt.size() && s.resumed_count > 0) {
                (void)s.sampler.sample(row);
            }
            continue;
        }

        std::int32_t next;
        {
            const obs::ScopedPhase sampling_span(&prof_,
                                                 obs::Phase::kSampling);
            next = s.sampler.sample(row);
        }
        s.generated.push_back(next);
        ++step_generated_tokens;
        // size() == 1 is the request's genuinely-first token: a failed-over
        // session arrives with `generated` seeded by the resume record, so
        // the survivor can never fire this again — exactly-once TTFT.
        if (s.generated.size() == 1) {
            if (s.submitted_ns != 0) {
                const std::uint64_t ttft =
                    step_ns > s.submitted_ns ? step_ns - s.submitted_ns : 0;
                hist_ttft_->record(ttft);
                win_ttft_->record(ttft);
            }
            trace(s.id, obs::TraceEvent::kFirstToken,
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(next)));
        } else if (s.last_token_ns != 0) {
            hist_intertoken_->record(
                step_ns > s.last_token_ns ? step_ns - s.last_token_ns : 0);
        }
        s.last_token_ns = step_ns;
        if (s.on_token) {
            try {
                s.on_token(next, tokenizer_.decode_token(next));
            } catch (...) {
                if (!callback_error) callback_error = std::current_exception();
            }
        }

        if (next == model::ByteTokenizer::kEos) {
            retire(s, Retire::kEos);
        } else if (s.generated.size() >= s.max_new_tokens) {
            retire(s, Retire::kBudget);
        } else if (backend_->position(s.slot) >= backend_->config().max_seq_len) {
            retire(s, Retire::kContext);
        } else {
            s.pending_token = next;
        }
    }
    if (step_generated_tokens > 0) win_tokens_->add(step_generated_tokens);
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        stats_.prompt_tokens += step_prompt_tokens;
        stats_.replayed_tokens += step_replayed_tokens;
        stats_.generated_tokens += step_generated_tokens;
    }
    if (backend_error_) {
        // A release_slot fault during an in-loop retirement: every lane's
        // token boundary completed first, now the engine fails.
        fail_backend();
        if (callback_error) std::rethrow_exception(callback_error);
        return false;
    }
    if (callback_error) std::rethrow_exception(callback_error);
    return n_active_.load(std::memory_order_relaxed) > 0 || !queue_.empty();
}

void ServeEngine::run_until_idle() {
    check(!running(),
          "ServeEngine: run_until_idle() while the background driver owns the loop");
    while (step_locked()) {}
}

void ServeEngine::driver_loop() {
    try {
        while (!stop_requested_.load(std::memory_order_acquire)) {
            // driver_busy_ brackets every step under idle_mu_ so
            // wait_until_idle() never observes the window where a request
            // has been popped from the queue but not yet counted active.
            {
                const std::lock_guard<std::mutex> lock(idle_mu_);
                driver_busy_ = true;
            }
            const bool more = step_locked();
            {
                const std::lock_guard<std::mutex> lock(idle_mu_);
                driver_busy_ = false;
            }
            idle_cv_.notify_all();
            if (failed()) break;  // backend fault: the driver has no job left
            if (!more && !stop_requested_.load(std::memory_order_acquire)) {
                // Idle: sleep until a submit (queue condition variable) or a
                // stop request wakes the loop.
                queue_.wait_for_work([this] {
                    return stop_requested_.load(std::memory_order_acquire);
                });
            }
        }
    } catch (...) {
        // A throwing on_token callback (step rethrows it after the token
        // boundary completes) must not terminate the process from a detached
        // context: park the error for stop()/run() to rethrow.
        driver_error_ = std::current_exception();
    }
    {
        const std::lock_guard<std::mutex> lock(idle_mu_);
        driver_busy_ = false;
    }
    driver_running_.store(false, std::memory_order_release);
    idle_cv_.notify_all();  // waiters observe !running() and return
}

void ServeEngine::run() {
    check(!running(), "ServeEngine: background driver already running");
    check(!failed(),
          "ServeEngine: backend failed; build a replacement engine instead of "
          "restarting this one");
    if (driver_.joinable()) driver_.join();  // reap a previously stopped driver
    if (driver_error_ != nullptr) {
        // The previous driver died on a callback exception and the caller is
        // restarting without stop(): surface the error here, don't drop it.
        std::exception_ptr e = driver_error_;
        driver_error_ = nullptr;
        std::rethrow_exception(e);
    }
    stop_requested_.store(false, std::memory_order_release);
    driver_running_.store(true, std::memory_order_release);
    driver_ = std::thread([this] { driver_loop(); });
}

void ServeEngine::stop() {
    if (driver_.joinable()) {
        stop_requested_.store(true, std::memory_order_release);
        queue_.notify_all();
        driver_.join();
    }
    driver_running_.store(false, std::memory_order_release);
    if (driver_error_ != nullptr) {
        std::exception_ptr e = driver_error_;
        driver_error_ = nullptr;
        std::rethrow_exception(e);
    }
}

ServeStats ServeEngine::stats_snapshot() const {
    const std::lock_guard<std::mutex> g(stats_mu_);
    return stats_;
}

ServeLoad ServeEngine::load() const {
    ServeLoad l;
    {
        const std::lock_guard<std::mutex> g(stats_mu_);
        l.stats = stats_;
    }
    l.active = n_active_.load(std::memory_order_acquire);
    l.slots = slots_.size();
    l.queue_capacity = queue_.capacity();
    l.failed = failed();
    l.paging = governor_ != nullptr;
    if (governor_ != nullptr) {
        l.total_pages = governor_->total_pages();
        l.committed_pages = committed_pages_cache_.load(std::memory_order_acquire);
        l.shared_pages = shared_pages_cache_.load(std::memory_order_acquire);
    }
    if (opts_.prefix_sharing) l.prefix = backend_->prefix_stats();
    // One pass under the queue lock: depth and worst-case page demand of
    // everything still waiting (predict_pages is pure, safe off-thread).
    std::size_t queued = 0;
    std::size_t queued_pages = 0;
    queue_.for_each([&](const PendingRequest& r) {
        ++queued;
        if (governor_ != nullptr) {
            queued_pages +=
                governor_->predict_pages(r.prompt.size(), r.max_new_tokens);
        }
    });
    l.queued = queued;
    l.queued_pages = queued_pages;
    l.queue_wait = obs::LatencySummary::from(hist_queue_wait_->snapshot());
    l.ttft = obs::LatencySummary::from(hist_ttft_->snapshot());
    l.e2e = obs::LatencySummary::from(hist_e2e_->snapshot());
    return l;
}

obs::MetricsSnapshot ServeEngine::metrics_snapshot() const {
    // Histograms come straight from the registry; counters and gauges are
    // DERIVED from the load snapshot (whose counter block is the same
    // stats_ that stats_snapshot()/ClusterStats report), so the exposed
    // numbers can never drift from the engine's authoritative bookkeeping.
    obs::MetricsSnapshot s = metrics_.snapshot();
    const ServeLoad l = load();
    s.set_counter("serve_steps", l.stats.steps);
    s.set_counter("serve_prompt_tokens", l.stats.prompt_tokens);
    s.set_counter("serve_generated_tokens", l.stats.generated_tokens);
    s.set_counter("serve_replayed_tokens", l.stats.replayed_tokens);
    s.set_counter("serve_requests_completed", l.stats.requests_completed);
    s.set_counter("serve_requests_cancelled", l.stats.requests_cancelled);
    s.set_counter("serve_requests_expired", l.stats.requests_expired);
    s.set_counter("serve_requests_shed", l.stats.requests_shed);
    s.set_counter("serve_requests_resumed", l.stats.requests_resumed);
    s.set_counter("serve_requests_lost", l.stats.requests_lost);
    s.set_counter("serve_capacity_deferrals", l.stats.capacity_deferrals);
    s.set_counter("serve_queue_promotions", l.stats.queue_promotions);
    s.set_counter("serve_backend_failures", l.stats.backend_failures);
    s.set_counter("serve_wall_ns", static_cast<std::uint64_t>(l.stats.wall_ns));
    s.set_counter("serve_simulated_ns",
                  static_cast<std::uint64_t>(l.stats.simulated_ns));
    s.set_counter("serve_sim_mem_bound_ns",
                  static_cast<std::uint64_t>(l.stats.sim_mem_bound_ns));
    s.set_counter("serve_sim_compute_ns",
                  static_cast<std::uint64_t>(l.stats.sim_compute_ns));
    s.set_counter("serve_sim_overhead_ns",
                  static_cast<std::uint64_t>(l.stats.sim_overhead_ns));
    s.set_gauge("serve_queued", static_cast<double>(l.queued));
    s.set_gauge("serve_active_sessions", static_cast<double>(l.active));
    s.set_gauge("serve_slots", static_cast<double>(l.slots));
    s.set_gauge("serve_failed", l.failed ? 1.0 : 0.0);
    s.set_gauge("serve_weight_walks", l.stats.weight_walks);
    s.set_gauge("serve_peak_batch", static_cast<double>(l.stats.peak_batch));
    if (l.paging) {
        s.set_gauge("serve_committed_pages",
                    static_cast<double>(l.committed_pages));
        s.set_gauge("serve_queued_pages", static_cast<double>(l.queued_pages));
        s.set_gauge("serve_total_pages", static_cast<double>(l.total_pages));
    }
    if (opts_.prefix_sharing) {
        s.set_counter("serve_prefix_hits_total", l.prefix.hits);
        s.set_counter("serve_prefix_covered_tokens_total",
                      l.prefix.covered_tokens);
        s.set_counter("serve_prefix_cow_copies_total", l.prefix.cow_copies);
        s.set_counter("serve_prefix_cache_drops_total",
                      l.stats.prefix_cache_drops);
        s.set_gauge("serve_prefix_pages_shared",
                    static_cast<double>(l.prefix.pages_shared));
    }
    // The trace ring is shared cluster-wide, so per-shard snapshots would
    // multiply-count it on merge; ClusterRouter::metrics_snapshot overwrites
    // this entry with the same authoritative value after merging.
    if (opts_.trace) {
        s.set_counter("serve_trace_dropped_total", opts_.trace->dropped());
    }
    if (prof_.enabled()) prof_.export_into(s);
    // Rolling-window series: rates as gauges (gauges ADD on cluster merge,
    // so the cluster's windowed rate is the sum of shard rates), windowed
    // TTFT as histograms (buckets merge, quantiles come out the other side).
    static constexpr struct {
        const char* suffix;
        std::uint64_t ns;
    } kWindows[] = {{"1s", 1'000'000'000ull},
                    {"10s", 10'000'000'000ull},
                    {"60s", 60'000'000'000ull}};
    for (const auto& w : kWindows) {
        s.set_gauge(std::string("serve_arrivals_per_s_window_") + w.suffix,
                    win_arrivals_->over(w.ns).rate_per_s());
        s.set_gauge(std::string("serve_deferrals_per_s_window_") + w.suffix,
                    win_deferrals_->over(w.ns).rate_per_s());
        s.set_gauge(std::string("serve_failovers_per_s_window_") + w.suffix,
                    win_failovers_->over(w.ns).rate_per_s());
        s.set_gauge(std::string("serve_tokens_per_s_window_") + w.suffix,
                    win_tokens_->over(w.ns).rate_per_s());
    }
    s.histograms["serve_ttft_ns_window_10s"] =
        win_ttft_->over(10'000'000'000ull).histogram();
    s.histograms["serve_ttft_ns_window_60s"] =
        win_ttft_->over(60'000'000'000ull).histogram();
    return s;
}

void ServeEngine::wait_until_idle() {
    if (!running()) {
        run_until_idle();
        return;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
        // driver_busy_ (guarded by idle_mu_) rules out the mid-admission
        // window where a request is in neither the queue nor n_active_.
        return !running() ||
               (!driver_busy_ && queue_.empty() &&
                n_active_.load(std::memory_order_acquire) == 0);
    });
}

}  // namespace efld::serve
