#include "serve/serve_engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace efld::serve {

namespace {
model::EngineOptions engine_options(const ServeOptions& o) {
    model::EngineOptions e;
    e.use_kv8 = o.use_kv8;
    e.kv_bits = o.kv_bits;
    e.threads = o.threads;
    e.max_batch = std::max<std::size_t>(1, o.max_batch);
    e.packed_weights = o.packed_weights;
    return e;
}
}  // namespace

ServeEngine::ServeEngine(const model::QuantizedModelWeights& weights, ServeOptions opts)
    : opts_(opts),
      engine_(weights, engine_options(opts)),
      queue_(opts.max_queue),
      slots_(std::max<std::size_t>(1, opts.max_batch)) {
    check(static_cast<std::uint64_t>(tokenizer_.vocab_size()) <=
              weights.config.vocab_size,
          "ServeEngine: model vocab too small for the byte tokenizer");
    feed_tokens_.reserve(slots_.size());
    feed_slots_.reserve(slots_.size());
}

std::future<ServeResult> ServeEngine::submit(const std::string& prompt,
                                             std::size_t max_new_tokens) {
    PendingRequest req;
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    req.prompt = tokenizer_.encode(prompt);
    check(!req.prompt.empty(), "ServeEngine: empty prompt after tokenization");
    check(req.prompt.size() <= engine_.config().max_seq_len,
          "ServeEngine: prompt exceeds the context window");
    req.max_new_tokens = max_new_tokens;
    std::future<ServeResult> fut = req.promise.get_future();

    if (max_new_tokens == 0) {
        // Nothing to decode: resolve immediately without occupying a slot.
        ServeResult r;
        r.id = req.id;
        r.prompt_tokens = req.prompt.size();
        req.promise.set_value(std::move(r));
        return fut;
    }
    check(queue_.push(std::move(req)), "ServeEngine: request queue full");
    return fut;
}

void ServeEngine::admit() {
    if (n_active_ == slots_.size()) return;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (slots_[slot].has_value()) continue;
        std::optional<PendingRequest> req = queue_.try_pop();
        if (!req.has_value()) return;
        slots_[slot].emplace(std::move(*req), opts_.sampler, slot);
        ++n_active_;
        if (n_active_ == slots_.size()) return;
    }
}

void ServeEngine::retire(SessionState& s, bool eos, bool ctx_limit) {
    ServeResult r;
    r.id = s.id;
    r.tokens = std::move(s.generated);
    r.text = tokenizer_.decode(r.tokens);
    r.prompt_tokens = s.prompt.size();
    r.hit_eos = eos;
    r.hit_context_limit = ctx_limit;
    s.promise.set_value(std::move(r));
    engine_.reset_session(s.slot);
    slots_[s.slot].reset();
    --n_active_;
    ++stats_.requests_completed;
}

bool ServeEngine::step() {
    // Token boundary: queued requests join whatever slots the last step freed.
    admit();
    if (n_active_ == 0) return false;  // admit() drained the queue or it was empty

    feed_tokens_.clear();
    feed_slots_.clear();
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        feed_tokens_.push_back(slots_[slot]->next_feed());
        feed_slots_.push_back(slot);
    }

    // ONE weight walk advances every active session by one token.
    const std::span<const float> logits = engine_.decode_batch(feed_tokens_, feed_slots_);
    ++stats_.steps;
    stats_.lane_steps += feed_slots_.size();
    stats_.peak_batch = std::max(stats_.peak_batch, feed_slots_.size());

    const std::size_t vocab = engine_.config().vocab_size;
    for (std::size_t b = 0; b < feed_slots_.size(); ++b) {
        SessionState& s = *slots_[feed_slots_[b]];
        const bool samplable = s.sampling_after_feed();
        if (s.prompt_fed < s.prompt.size()) {
            ++s.prompt_fed;
            ++stats_.prompt_tokens;
        }
        if (!samplable) continue;  // mid-prefill: logits row unused

        const std::span<const float> row = logits.subspan(b * vocab, vocab);
        const std::int32_t next = s.sampler.sample(row);
        s.generated.push_back(next);
        ++stats_.generated_tokens;

        if (next == model::ByteTokenizer::kEos) {
            retire(s, /*eos=*/true, /*ctx_limit=*/false);
        } else if (s.generated.size() >= s.max_new_tokens) {
            retire(s, /*eos=*/false, /*ctx_limit=*/false);
        } else if (engine_.position(s.slot) >= engine_.config().max_seq_len) {
            retire(s, /*eos=*/false, /*ctx_limit=*/true);
        } else {
            s.pending_token = next;
        }
    }
    return n_active_ > 0 || !queue_.empty();
}

void ServeEngine::run_until_idle() {
    while (step()) {}
}

}  // namespace efld::serve
