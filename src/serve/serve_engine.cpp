#include "serve/serve_engine.hpp"

#include <algorithm>
#include <exception>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace efld::serve {

namespace {
model::EngineOptions engine_options(const ServeOptions& o) {
    model::EngineOptions e;
    e.use_kv8 = o.use_kv8;
    e.kv_bits = o.kv_bits;
    e.threads = o.threads;
    e.max_batch = o.max_batch;
    e.packed_weights = o.packed_weights;
    return e;
}

void validate(const ServeOptions& o) {
    if (o.max_batch == 0) {
        throw std::invalid_argument("ServeOptions: max_batch must be >= 1");
    }
    if (o.max_queue == 0) {
        throw std::invalid_argument(
            "ServeOptions: max_queue must be >= 1 (a queueless server cannot "
            "accept work; shed load by rejecting submits instead)");
    }
    // The thread-count contract is shared with EngineOptions; validate it here
    // too so the accel backend (which never builds a ReferenceEngine) rejects
    // the same misconfigurations.
    model::validate(engine_options(o));
}
}  // namespace

ServeEngine::ServeEngine(const model::QuantizedModelWeights& weights, ServeOptions opts)
    : opts_(opts), queue_(opts.max_queue) {
    validate(opts_);
    accel::AcceleratorOptions accel_opts;
    accel_opts.collect_timing = opts_.collect_timing;
    bundle_ =
        engine::make_backend(opts_.backend, weights, engine_options(opts_), accel_opts);
    backend_ = bundle_.backend.get();
    init();
}

ServeEngine::ServeEngine(std::unique_ptr<engine::DecodeBackend> backend,
                         ServeOptions opts)
    : opts_(opts), queue_(opts.max_queue) {
    validate(opts_);
    if (backend == nullptr) {
        throw std::invalid_argument("ServeEngine: null backend");
    }
    // The engine assumes every backend slot is its to hand out; a backend
    // with slots already reserved elsewhere would fail mid-serve instead of
    // here. Probe the full capacity up front (reserve-all / release-all is a
    // no-op on fresh slots).
    std::vector<std::size_t> probe;
    probe.reserve(backend->max_batch());
    while (probe.size() < backend->max_batch()) {
        const std::size_t slot = backend->reserve_slot();
        if (slot == engine::DecodeBackend::kNoSlot) break;
        probe.push_back(slot);
    }
    const bool all_free = probe.size() == backend->max_batch();
    for (const std::size_t slot : probe) backend->release_slot(slot);
    if (!all_free) {
        throw std::invalid_argument(
            "ServeEngine: backend already has reserved slots; hand the serve "
            "engine a backend it can own outright");
    }
    bundle_.backend = std::move(backend);
    backend_ = bundle_.backend.get();
    init();
}

void ServeEngine::init() {
    check(static_cast<std::uint64_t>(tokenizer_.vocab_size()) <=
              backend_->config().vocab_size,
          "ServeEngine: model vocab too small for the byte tokenizer");
    scheduler_ = make_scheduler(opts_.scheduler);
    slots_.resize(backend_->max_batch());
    feed_tokens_.reserve(slots_.size());
    feed_slots_.reserve(slots_.size());
    logits_.resize(slots_.size() * backend_->config().vocab_size);
}

PendingRequest ServeEngine::make_pending(
    const std::string& prompt, std::size_t max_new,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    TokenCallback on_token) {
    PendingRequest req;
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    req.prompt = tokenizer_.encode(prompt);
    check(!req.prompt.empty(), "ServeEngine: empty prompt after tokenization");
    check(req.prompt.size() <= backend_->config().max_seq_len,
          "ServeEngine: prompt exceeds the context window");
    req.max_new_tokens = max_new;
    req.deadline = deadline;
    req.on_token = std::move(on_token);
    req.control = std::make_shared<RequestControl>();
    return req;
}

void ServeEngine::resolve_unstarted(PendingRequest&& req, Retire why) {
    ServeResult r;
    r.id = req.id;
    r.prompt_tokens = req.prompt.size();
    r.cancelled = why == Retire::kCancelled;
    r.hit_deadline = why == Retire::kDeadline;
    req.promise.set_value(std::move(r));
}

RequestHandle ServeEngine::submit(Request req) {
    PendingRequest p =
        make_pending(req.prompt, req.max_new_tokens, req.deadline,
                     std::move(req.on_token));
    const std::uint64_t id = p.id;
    std::shared_ptr<RequestControl> control = p.control;
    std::shared_future<ServeResult> fut = p.promise.get_future().share();
    if (p.max_new_tokens == 0) {
        // Nothing to decode: resolve immediately without occupying a slot.
        resolve_unstarted(std::move(p), Retire::kBudget);
    } else {
        check(queue_.push(std::move(p)), "ServeEngine: request queue full");
    }
    return RequestHandle(id, std::move(control), std::move(fut));
}

std::future<ServeResult> ServeEngine::submit(const std::string& prompt,
                                             std::size_t max_new_tokens) {
    PendingRequest p = make_pending(prompt, max_new_tokens, std::nullopt, nullptr);
    std::future<ServeResult> fut = p.promise.get_future();
    if (max_new_tokens == 0) {
        resolve_unstarted(std::move(p), Retire::kBudget);
        return fut;
    }
    check(queue_.push(std::move(p)), "ServeEngine: request queue full");
    return fut;
}

void ServeEngine::admit() {
    // Dead (cancelled/expired) requests were already swept from the queue by
    // step() this boundary; one landing in the microseconds since is admitted
    // normally and retired at the next boundary's control-plane pass.
    while (n_active_ < slots_.size()) {
        std::optional<PendingRequest> req = queue_.pop_with(*scheduler_);
        if (!req.has_value()) return;

        const std::size_t slot = backend_->reserve_slot();
        check(slot != engine::DecodeBackend::kNoSlot && slot < slots_.size() &&
                  !slots_[slot].has_value(),
              "ServeEngine: backend slot bookkeeping diverged");
        slots_[slot].emplace(std::move(*req), opts_.sampler, slot);
        ++n_active_;
    }
}

void ServeEngine::retire(SessionState& s, Retire why) {
    ServeResult r;
    r.id = s.id;
    r.tokens = std::move(s.generated);
    r.text = tokenizer_.decode(r.tokens);
    r.prompt_tokens = s.prompt.size();
    r.hit_eos = why == Retire::kEos;
    r.hit_context_limit = why == Retire::kContext;
    r.cancelled = why == Retire::kCancelled;
    r.hit_deadline = why == Retire::kDeadline;
    s.promise.set_value(std::move(r));
    const std::size_t slot = s.slot;
    backend_->release_slot(slot);  // clears the slot's KV for the next tenant
    slots_[slot].reset();
    --n_active_;
    ++stats_.requests_completed;
    if (why == Retire::kCancelled) ++stats_.requests_cancelled;
    if (why == Retire::kDeadline) ++stats_.requests_expired;
}

bool ServeEngine::step() {
    const auto now = std::chrono::steady_clock::now();

    // Token boundary, part 1: control-plane retirements (cancel, deadline)
    // free their slots before admission looks at the queue. Partial output is
    // delivered; the batch never stalls on a control operation.
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        SessionState& s = *slots_[slot];
        if (s.cancel_requested()) {
            retire(s, Retire::kCancelled);
        } else if (s.deadline_passed(now)) {
            retire(s, Retire::kDeadline);
        }
    }

    // Sweep the whole queue for dead requests, not just the scheduler's next
    // pick — SJF could pass over a cancelled/expired request forever, leaving
    // its future unresolved.
    for (PendingRequest& dead : queue_.remove_if([now](const PendingRequest& r) {
             return (r.control != nullptr &&
                     r.control->cancel.load(std::memory_order_relaxed)) ||
                    (r.deadline.has_value() && now >= *r.deadline);
         })) {
        const bool was_cancelled =
            dead.control != nullptr &&
            dead.control->cancel.load(std::memory_order_relaxed);
        resolve_unstarted(std::move(dead),
                          was_cancelled ? Retire::kCancelled : Retire::kDeadline);
        ++stats_.requests_completed;
        if (was_cancelled) {
            ++stats_.requests_cancelled;
        } else {
            ++stats_.requests_expired;
        }
    }

    // Part 2: queued requests join whatever slots are free.
    admit();
    if (n_active_ == 0) return false;  // admit() drained the queue or it was empty

    feed_tokens_.clear();
    feed_slots_.clear();
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
        if (!slots_[slot].has_value()) continue;
        feed_tokens_.push_back(slots_[slot]->next_feed());
        feed_slots_.push_back(slot);
    }

    // ONE weight walk advances every active session by one token.
    const std::size_t vocab = backend_->config().vocab_size;
    backend_->decode_batch(feed_tokens_, feed_slots_,
                           std::span<float>(logits_.data(),
                                            feed_slots_.size() * vocab));
    const engine::StepCost cost = backend_->last_step_cost();
    ++stats_.steps;
    stats_.weight_walks += cost.weight_walks;
    stats_.lane_steps += feed_slots_.size();
    stats_.peak_batch = std::max(stats_.peak_batch, feed_slots_.size());
    stats_.wall_ns += cost.wall_ns;
    stats_.simulated_ns += cost.simulated_ns;

    // A throwing on_token callback must not corrupt the batch: every lane's
    // bookkeeping still completes, and the first exception is rethrown only
    // after the token boundary is consistent.
    std::exception_ptr callback_error;
    for (std::size_t b = 0; b < feed_slots_.size(); ++b) {
        SessionState& s = *slots_[feed_slots_[b]];
        const bool samplable = s.sampling_after_feed();
        if (s.prompt_fed < s.prompt.size()) {
            ++s.prompt_fed;
            ++stats_.prompt_tokens;
        }
        if (!samplable) continue;  // mid-prefill: logits row unused

        const std::span<const float> row(logits_.data() + b * vocab, vocab);
        const std::int32_t next = s.sampler.sample(row);
        s.generated.push_back(next);
        ++stats_.generated_tokens;
        if (s.on_token) {
            try {
                s.on_token(next, tokenizer_.decode_token(next));
            } catch (...) {
                if (!callback_error) callback_error = std::current_exception();
            }
        }

        if (next == model::ByteTokenizer::kEos) {
            retire(s, Retire::kEos);
        } else if (s.generated.size() >= s.max_new_tokens) {
            retire(s, Retire::kBudget);
        } else if (backend_->position(s.slot) >= backend_->config().max_seq_len) {
            retire(s, Retire::kContext);
        } else {
            s.pending_token = next;
        }
    }
    if (callback_error) std::rethrow_exception(callback_error);
    return n_active_ > 0 || !queue_.empty();
}

void ServeEngine::run_until_idle() {
    while (step()) {}
}

}  // namespace efld::serve
