// Continuous-batching serve engine: N concurrent decode sessions behind a
// bounded request queue, one weight walk per step.
//
// The paper's whole bandwidth argument is that decode is weight-bound — every
// token pays one full streaming pass over the quantized weights. A single
// stream therefore caps out at bandwidth / weight-bytes. The only way past
// that roofline is to amortize one walk across more work, and this engine is
// the serving layer that does it on the host twin: each step advances every
// active session by one token through ONE skinny-GEMM weight walk
// (ReferenceEngine::decode_batch), so the marginal cost of a second..Nth
// session is activations and attention, not weights.
//
// Continuous batching: sessions join and retire at token boundaries only.
// A joining request's prompt tokens ride the same batched walks as other
// sessions' decode tokens (mixed prefill/decode batches), so admission never
// stalls the running sessions. Every session's token stream is bit-for-bit
// identical to a solo run of the same request — batching changes throughput,
// never results.
//
// Threading model: submit() is thread-safe; step()/run_until_idle() drive the
// engine from one caller thread (futures resolve inside step). The engine's
// own parallelism (GEMM rows, attention clusters) is ServeOptions::threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "model/reference_engine.hpp"
#include "model/sampler.hpp"
#include "model/tokenizer.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_types.hpp"
#include "serve/session_state.hpp"

namespace efld::serve {

struct ServeOptions {
    model::SamplerConfig sampler{};   // each request gets a fresh sampler
    std::size_t max_batch = 4;        // concurrent session slots
    std::size_t max_queue = 64;       // pending requests before submit rejects
    bool use_kv8 = true;              // software twin of the deployed KV8 cache
    unsigned kv_bits = 8;
    bool packed_weights = false;      // walk the 4-bit bus streams
    std::size_t threads = 1;          // engine worker pool (see EngineOptions)
};

class ServeEngine {
public:
    // Non-owning: `weights` must outlive the engine.
    ServeEngine(const model::QuantizedModelWeights& weights, ServeOptions opts);

    // Tokenizes and enqueues; the future resolves when the request retires.
    // Throws when the queue is full or the prompt exceeds the context window.
    std::future<ServeResult> submit(const std::string& prompt,
                                    std::size_t max_new_tokens);

    // One batched token step: admit queued requests into free slots, advance
    // every active session by one token through a single weight walk, retire
    // finished sessions. Returns true while work remains (active or queued).
    bool step();

    // Drives step() until queue and batch are both empty.
    void run_until_idle();

    [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t active_sessions() const noexcept { return n_active_; }
    [[nodiscard]] std::size_t queued_requests() const { return queue_.size(); }
    [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
    [[nodiscard]] const model::ByteTokenizer& tokenizer() const noexcept {
        return tokenizer_;
    }

private:
    void admit();
    void retire(SessionState& s, bool eos, bool ctx_limit);

    ServeOptions opts_;
    model::ByteTokenizer tokenizer_;
    model::ReferenceEngine engine_;
    RequestQueue queue_;
    std::vector<std::optional<SessionState>> slots_;  // index = engine slot
    std::size_t n_active_ = 0;
    std::atomic<std::uint64_t> next_id_{1};
    ServeStats stats_;

    // Step scratch (reused, no per-step allocation).
    std::vector<std::int32_t> feed_tokens_;
    std::vector<std::size_t> feed_slots_;
};

}  // namespace efld::serve
