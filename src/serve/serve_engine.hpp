// Continuous-batching serve engine: N concurrent decode sessions behind a
// bounded request queue, one weight walk per step, on ANY DecodeBackend.
//
// The paper's whole bandwidth argument is that decode is weight-bound — every
// token pays one full streaming pass over the quantized weights. A single
// stream therefore caps out at bandwidth / weight-bytes. The only way past
// that roofline is to amortize one walk across more work, and this engine is
// the serving layer that does it: each step advances every active session by
// one token through ONE weight walk of whatever backend it owns.
//
// Backends (ServeOptions::backend, or bring your own DecodeBackend):
//   host  — model::ReferenceEngine skinny-GEMM fast path. Wall-clock serving
//           throughput; every session bit-for-bit identical to a solo run.
//   accel — accel::Accelerator, the functional KV260 twin priced by
//           DecodeCycleModel::batch_timing (weights streamed once per step,
//           KV streams per session). stats().simulated_tokens_per_s() is the
//           predicted KV260 *serving* throughput.
//
// Continuous batching: sessions join and retire at token boundaries only.
// A joining request's prompt tokens ride the same batched walks as other
// sessions' decode tokens (mixed prefill/decode batches), so admission never
// stalls the running sessions. Admission order is a pluggable Scheduler
// (FCFS default, shortest-job-first optional). Requests can stream tokens
// (Request::on_token), be cancelled cooperatively (RequestHandle::cancel),
// or carry deadlines — all observed at token boundaries, so the batch never
// stalls on control operations either.
//
// Capacity-aware admission (ServeOptions::paging): the per-slot max_seq_len
// KV reservations are replaced by a kvpool page pool sized from the DDR
// budget runtime::MemoryPlanner derives (device minus weights minus
// firmware), and a kvpool::CapacityGovernor admits queued requests only when
// their worst-case page demand — ceil((prompt + max_new) / page_tokens) —
// fits next to every admitted session's. A request whose demand does not fit
// YET stays queued in policy order (ServeResult::times_deferred counts the
// refusals); one whose demand could NEVER fit is rejected at submit. Admitted
// sessions therefore cannot run the pool dry, and retirement returns their
// pages, so concurrency follows actual memory headroom instead of a static
// max_batch.
//
// Threading model: submit()/cancel() are thread-safe; step()/run_until_idle()
// drive the engine from one caller thread (futures resolve and on_token
// callbacks fire inside step). Alternatively run() starts a dedicated serving
// thread that drives step() and sleeps on the queue's condition variable when
// idle — callers then just submit and await futures; stop() (or destruction)
// joins it. The engine's own parallelism (GEMM rows, attention clusters) is
// ServeOptions::threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/backend_factory.hpp"
#include "engine/decode_backend.hpp"
#include "kvpool/capacity_governor.hpp"
#include "model/sampler.hpp"
#include "model/tokenizer.hpp"
#include "obs/clock.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/rolling_window.hpp"
#include "obs/trace.hpp"
#include "serve/overload.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve_types.hpp"
#include "serve/session_state.hpp"

namespace efld::serve {

struct ServeOptions {
    model::SamplerConfig sampler{};   // each request gets a fresh sampler
    engine::BackendKind backend = engine::BackendKind::kHost;
    SchedulerPolicy scheduler = SchedulerPolicy::kFcfs;
    std::size_t max_batch = 4;        // concurrent session slots
    std::size_t max_queue = 64;       // pending requests before submit rejects
    bool use_kv8 = true;              // software twin of the deployed KV8 cache
    unsigned kv_bits = 8;
    bool packed_weights = false;      // host: walk the 4-bit bus streams
    std::size_t threads = 1;          // engine worker pool (see EngineOptions)
    bool collect_timing = true;       // accel: price steps via the cycle model
    // Paged KV pool + capacity-aware admission. Pool sizing precedence:
    // kv_pool_pages if set; else kv_pool_bytes / page_bytes; else the KV260
    // plan's post-weight DDR headroom (MemoryPlanner::plan_kv260).
    bool paging = false;
    std::size_t kv_page_tokens = 16;  // page size (16 = pack-word aligned)
    std::size_t kv_pool_pages = 0;    // explicit pool size in pages
    std::uint64_t kv_pool_bytes = 0;  // explicit DDR budget for the pool
    // Prefix sharing over the paged pool (requires paging). The backend keeps
    // an index of computed prompt pages: admission probes it to discount a
    // request's page demand by its covered FULL pages (shared pages are
    // charged once, to the governor's shared ledger), adoption skips prefill
    // for the covered span, and completed prefills register their pages under
    // the governor's shared budget (never more than half the pool, never into
    // committed headroom). Capacity pressure with zero active sessions drops
    // the whole index rather than starve an admissible request. Off by
    // default: sharing changes admission numbers, so callers opt in.
    bool prefix_sharing = false;
    // Anti-starvation bound: a request passed over (capacity-refused as the
    // pick, or SJF admitting younger, shorter jobs ahead of it) this many
    // times is promoted to the mandatory next admission pick regardless of
    // scheduler policy (ServeStats::queue_promotions counts).
    std::size_t max_deferrals = 32;
    // Scripted fault schedule wrapped around the backend (see
    // engine/fault_injection.hpp for the grammar: step:K | alloc:K |
    // stall:K:MS | flaky:P:SEED). Empty = no injection. Tests and chaos
    // benches use this to spawn an engine guaranteed to die at step K.
    std::string fault_spec;
    // Observability seams. `trace` is a lifecycle-event ring shared across a
    // cluster's shards (null = tracing off); `clock` overrides the latency/
    // trace timebase (null = process steady clock — tests inject a
    // ManualClock); `shard_id` tags this engine's trace events and log lines
    // (the cluster router assigns it).
    std::shared_ptr<obs::TraceRecorder> trace;
    std::shared_ptr<const obs::Clock> clock;
    std::uint32_t shard_id = 0;
    // Per-phase cost profiler (obs::Profiler): scoped spans through the serve
    // hot path and the backend's attention blocks, StepCost attribution
    // between prefill and decode lanes, and serve_phase_* metric series.
    // Off by default — the gate is ≤3% overhead, not zero.
    bool profile = false;
    // Span ring capacity when profiling (the Perfetto timeline keeps the
    // most recent this-many scopes; 0 = totals only, no timeline).
    std::size_t profiler_spans = 4096;
    // Alert-driven overload protection (null = off). Shared across a
    // cluster's shards and flipped by the SLO controller on alert
    // transitions: while engaged, the queue sweep sheds deadline-hopeless
    // requests with FinishReason::kShedOverload (requests whose remaining
    // deadline budget cannot cover the TTFT currently observed in the 10s
    // window), so slots go to work that can still meet its SLO.
    std::shared_ptr<OverloadGovernor> overload;
    // Starting point for this engine's request ids (first id = id_base + 1).
    // The cluster router gives every shard engine a disjoint namespace so a
    // request id means ONE request cluster-wide — the shared trace ring and
    // failover resubmission both key on it. 0 keeps the single-engine
    // numbering (1, 2, ...).
    std::uint64_t id_base = 0;
};

class ServeEngine {
public:
    // Invoked (on the driver/stepping thread, at most once) the moment a
    // backend call throws — the engine has already marked itself failed,
    // counted the fault, and returned the governor's committed pages before
    // the callback runs, so the callback may immediately take_unfinished()
    // and resubmit the harvest elsewhere. Exceptions it throws are swallowed:
    // failure reporting must not take the reporter down too.
    using FailureCallback = std::function<void(const std::exception_ptr&)>;
    // Builds the backend ServeOptions::backend selects. Non-owning of
    // `weights` (must outlive the engine); the accel backend's packed DDR
    // image is built from them and owned here. Throws std::invalid_argument
    // on invalid options (max_batch == 0, max_queue == 0, bad thread count).
    ServeEngine(const model::QuantizedModelWeights& weights, ServeOptions opts);

    // Bring-your-own backend: the engine serves whatever DecodeBackend it is
    // handed (slot count comes from backend->max_batch(), which overrides
    // ServeOptions::max_batch). With paging, the governor budgets against the
    // backend's config; hand it a backend whose own KV layout matches
    // (EngineOptions::kv_page_tokens / kv_pool_pages for the host engine).
    ServeEngine(std::unique_ptr<engine::DecodeBackend> backend, ServeOptions opts);

    // Stops the background driver (if running) before tearing down.
    ~ServeEngine();

    // Tokenizes and enqueues; the handle cancels/polls/awaits the request.
    // Throws when the queue is full or the prompt exceeds the context window.
    RequestHandle submit(Request req);

    // Legacy shim (pre-DecodeBackend API): submit(prompt, max_new) with a
    // plain future and no streaming/cancellation. Equivalent to
    // submit(Request{...}).future(), kept so existing call sites compile.
    std::future<ServeResult> submit(const std::string& prompt,
                                    std::size_t max_new_tokens);

    // One batched token step: retire cancelled/expired sessions, admit queued
    // requests into free slots (Scheduler order, gated by the capacity
    // governor when paging), advance every active session by one token
    // through a single weight walk, retire finished sessions. Returns true
    // while work remains (active or queued). Throws when the background
    // driver owns the step loop.
    bool step();

    // Drives step() until queue and batch are both empty. Throws while the
    // background driver runs.
    void run_until_idle();

    // Background serve driver: a dedicated thread drives step() and sleeps on
    // the request queue's condition variable when idle, so callers just
    // submit and await futures/callbacks (both fire on the driver thread).
    // Throws if already running. stop() is idempotent, joins the thread, and
    // leaves unfinished work queued/active for a later run() or step(); an
    // exception a callback threw on the driver thread (which ends the driver)
    // is rethrown from stop().
    void run();
    void stop();
    [[nodiscard]] bool running() const noexcept {
        return driver_running_.load(std::memory_order_acquire);
    }
    // Blocks until the queue is empty and no session is active. With the
    // driver running this waits on its idle signal; otherwise it simply
    // drives run_until_idle() inline.
    void wait_until_idle();

    // Counters are written by whichever thread drives step(); read the
    // reference from another thread only at a quiet point (after
    // wait_until_idle()/stop()). For live reads use stats_snapshot()/load().
    [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
    // A consistent copy of the counters, safe from any thread while the
    // driver serves (every counter mutation happens under the same lock).
    [[nodiscard]] ServeStats stats_snapshot() const;
    // The engine's load — counters, queue depth, active sessions, and (with
    // paging) committed + queued page demand — safe from any thread while
    // the driver serves. The counter block is internally consistent (one
    // lock); the queue/active/pages fields are each torn-read-free but read
    // in sequence, so a request caught mid-admission can transiently appear
    // in neither queued nor active. That is fine for what this feeds — a
    // router's placement heuristics — and closing the window would mean
    // locking the whole admission path against readers.
    [[nodiscard]] ServeLoad load() const;
    // Full metrics snapshot for exposition: the engine's latency histograms
    // (serve_queue_wait_ns / serve_ttft_ns / serve_intertoken_gap_ns /
    // serve_e2e_ns) plus counters DERIVED from the same ServeStats that
    // stats_snapshot() reports and gauges from load() — so wire-exposed
    // counters always match ClusterStats exactly, with zero extra hot-path
    // bookkeeping. Safe from any thread.
    [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
    // The engine's metric instruments (latency histograms live here).
    [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
        return metrics_;
    }
    // The engine's phase profiler (enabled iff ServeOptions::profile). The
    // cluster router reads spans() off it for the Perfetto export.
    [[nodiscard]] const obs::Profiler& profiler() const noexcept {
        return prof_;
    }
    [[nodiscard]] std::size_t active_sessions() const noexcept {
        return n_active_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::size_t queued_requests() const { return queue_.size(); }
    [[nodiscard]] const ServeOptions& options() const noexcept { return opts_; }
    // Capacity governor when paging is on; nullptr otherwise.
    [[nodiscard]] const kvpool::CapacityGovernor* governor() const noexcept {
        return governor_.get();
    }
    [[nodiscard]] const engine::DecodeBackend& backend() const noexcept {
        return *backend_;
    }
    [[nodiscard]] const model::ByteTokenizer& tokenizer() const noexcept {
        return tokenizer_;
    }
    // Tokens of `prompt` (already tokenized) the backend's prefix index would
    // cover if a session adopted right now — the router's affinity signal.
    // Safe from any thread (the backend's probe locks its index); 0 when
    // sharing is off.
    [[nodiscard]] std::size_t probe_prefix(
        std::span<const std::int32_t> prompt) const {
        if (!opts_.prefix_sharing || prompt.empty()) return 0;
        return backend_->probe_prefix(prompt, prompt.size() - 1);
    }

    // --- Failure detection & failover -------------------------------------
    //
    // ANY exception out of a backend call (decode_batch, reserve_slot,
    // release_slot) is a device fault: the engine marks itself failed, stops
    // decoding, returns every committed page to the governor, reports through
    // the failure callback, and resolves whatever the callback's failover
    // left behind with FinishReason::kShardFailure. A failed engine never
    // serves again — the cluster layer builds a replacement (restart_shard).

    // Registers the failure callback (replacing any previous one). Safe from
    // any thread; register before run() to never miss a fault.
    void set_on_failure(FailureCallback cb);
    // True once a backend call has faulted. Queued/in-flight work is then
    // reachable only through take_unfinished().
    [[nodiscard]] bool failed() const noexcept {
        return failed_.load(std::memory_order_acquire);
    }
    // The fault that killed the backend (null while healthy).
    [[nodiscard]] std::exception_ptr failure() const;
    // Harvests every unresolved request from a FAILED engine — in-flight
    // sessions first (each carrying its generated-so-far tokens as `resumed`
    // and its failover count bumped), then requests still queued. Slots are
    // cleared without touching the dead backend. Harvesting is one-shot:
    // a second call returns empty. Throws if the engine has not failed.
    std::vector<PendingRequest> take_unfinished();
    // Failover re-entry: enqueues a request harvested from another engine,
    // skipping tokenization (the prompt is already ids). Returns false —
    // leaving `req` intact for the caller to try elsewhere — when this
    // engine has itself failed, the queue is full, or the request's
    // worst-case page demand exceeds the whole pool. On true the engine owns
    // the request and its promise WILL resolve here (kShardFailure included).
    bool resubmit(PendingRequest& req);

private:
    enum class Retire { kEos, kBudget, kContext, kCancelled, kDeadline, kShed };

    void init();
    void init_governor(const model::ModelConfig& cfg);
    PendingRequest make_pending(const std::string& prompt, std::size_t max_new,
                                std::optional<std::chrono::steady_clock::time_point>
                                    deadline,
                                TokenCallback on_token);
    // Resolves a request that never took a slot here (zero budget, shed from
    // the queue by cancel/deadline) — a resumed request keeps the tokens the
    // dead shard already generated.
    void resolve_unstarted(PendingRequest&& req, Retire why);
    static FinishReason finish_reason_of(Retire why) noexcept;
    void admit();
    void retire(SessionState& s, Retire why);
    bool step_locked();   // step() body; the driver calls it directly
    void driver_loop();
    // Consumes backend_error_: marks the engine failed, releases the
    // governor's pages, fires the failure callback, then resolves anything
    // the callback's failover left behind with kShardFailure.
    void fail_backend();
    // Resolves a harvested/abandoned request with kShardFailure (partial
    // tokens preserved) and counts it lost.
    void resolve_lost(PendingRequest&& req);

    // Trace helper: no-op when ServeOptions::trace is null.
    void trace(std::uint64_t request_id, obs::TraceEvent event,
               std::uint64_t arg = 0) const;

    ServeOptions opts_;
    model::ByteTokenizer tokenizer_;
    // Observability: the clock every latency/trace timestamp reads, the
    // metric instruments, and hot-path handles to the four latency
    // histograms (resolved once at init — record() is lock-free).
    const obs::Clock* clock_ = nullptr;
    obs::MetricsRegistry metrics_;
    obs::LatencyHistogram* hist_queue_wait_ = nullptr;
    obs::LatencyHistogram* hist_ttft_ = nullptr;
    obs::LatencyHistogram* hist_intertoken_ = nullptr;
    obs::LatencyHistogram* hist_e2e_ = nullptr;
    // Phase profiler (inert unless opts_.profile) and the always-on rolling
    // windows behind the *_window_* series (constructed at init once the
    // clock is resolved; 64 one-second buckets each).
    obs::Profiler prof_;
    std::unique_ptr<obs::RollingWindow> win_arrivals_;
    std::unique_ptr<obs::RollingWindow> win_deferrals_;
    std::unique_ptr<obs::RollingWindow> win_failovers_;
    std::unique_ptr<obs::RollingWindow> win_tokens_;
    std::unique_ptr<obs::RollingWindow> win_ttft_;  // value-recording
    engine::BackendBundle bundle_;              // owns the backend (+ packed image)
    engine::DecodeBackend* backend_ = nullptr;  // = bundle_.backend.get()
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<kvpool::CapacityGovernor> governor_;  // paging only
    RequestQueue queue_;
    std::vector<std::optional<SessionState>> slots_;  // index = backend slot
    std::atomic<std::size_t> n_active_{0};
    std::atomic<std::uint64_t> next_id_{1};
    // Every stats_ mutation happens under stats_mu_ so stats_snapshot()/load()
    // never observe a torn update mid-step. The driver's writes are a few
    // uncontended lock acquisitions per multi-millisecond decode step.
    mutable std::mutex stats_mu_;
    ServeStats stats_;
    // Governor ledger mirror for load(): the governor itself is driver-thread
    // only; this publishes its committed count to snapshot readers.
    std::atomic<std::size_t> committed_pages_cache_{0};
    std::atomic<std::size_t> shared_pages_cache_{0};

    // Failure state. backend_error_ is step-thread-only staging: the first
    // backend exception of a step parks here and fail_backend() consumes it
    // at the next safe point (never mid-retire, so bookkeeping stays
    // consistent). failed_/failure_/on_failure_ are cross-thread.
    std::exception_ptr backend_error_;
    std::atomic<bool> failed_{false};
    mutable std::mutex failure_mu_;  // guards failure_ and on_failure_
    std::exception_ptr failure_;
    FailureCallback on_failure_;
    // Requests popped from the queue whose slot reservation faulted: in
    // neither the queue nor a slot, held here for take_unfinished().
    std::vector<PendingRequest> orphans_;

    // Background driver state. run()/stop()/wait_until_idle() are driven from
    // one controlling thread; submit()/cancel() stay safe from any thread.
    std::thread driver_;
    std::atomic<bool> driver_running_{false};
    std::atomic<bool> stop_requested_{false};
    std::exception_ptr driver_error_;  // callback error, rethrown by stop()/run()
    std::mutex idle_mu_;
    std::condition_variable idle_cv_;
    bool driver_busy_ = false;  // guarded by idle_mu_: a step is in flight

    // Step scratch (reused, no per-step allocation).
    std::vector<std::int32_t> feed_tokens_;
    std::vector<std::size_t> feed_slots_;
    std::vector<float> logits_;  // [max_batch][vocab]
};

}  // namespace efld::serve
