// Shared value types of the serve subsystem: what a caller submits
// (`Request`), the live handle they hold while it runs (`RequestHandle`),
// what the request resolves to (`ServeResult`), and the counters that expose
// the GEMV→GEMM amortization (decode is weight-bound, so weight walks per
// generated token is THE serving efficiency metric — 1.0 at batch 1,
// approaching 1/batch as sessions overlap).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/decode_backend.hpp"
#include "obs/latency_histogram.hpp"

namespace efld::serve {

// Per-token streaming callback: the sampled token id and its decoded text
// piece. Invoked from the thread driving ServeEngine::step(), once per
// sampled token (including a terminal EOS), before the request's future
// resolves. A throwing callback does not corrupt the batch: the token
// boundary completes for every session first, then step() rethrows the first
// exception.
using TokenCallback = std::function<void(std::int32_t token, std::string_view piece)>;

// What a caller submits. Everything beyond prompt/max_new_tokens is optional:
// `deadline` retires the request (possibly with partial output) at the first
// token boundary past the given instant — queued requests past their deadline
// are shed without ever taking a slot; `on_token` streams tokens as they are
// sampled.
struct Request {
    std::string prompt;
    std::size_t max_new_tokens = 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    TokenCallback on_token;
};

// Why a request retired. Every retirement path names its reason — nothing
// resolves silently.
enum class FinishReason {
    kNone = 0,         // not yet retired (never seen in a resolved ServeResult)
    kBudget,           // ran its full max_new_tokens budget (normal completion)
    kEos,              // sampled the EOS token
    kContextOverflow,  // hit the per-session context window (max_seq_len)
    kCancelled,        // RequestHandle::cancel()
    kDeadline,         // Request::deadline passed
    kShardFailure,     // the serving engine died (backend fault / teardown)
                       // and the request could not be failed over; tokens
                       // holds whatever was streamed before the failure
    kShedOverload,     // the overload governor shed it from the queue: a
                       // firing SLO alert engaged shedding and the request's
                       // remaining deadline budget could not cover the
                       // observed TTFT — resolved early so its slot goes to
                       // a request that can still meet its deadline
};

[[nodiscard]] constexpr std::string_view to_string(FinishReason r) noexcept {
    switch (r) {
        case FinishReason::kNone: return "none";
        case FinishReason::kBudget: return "budget";
        case FinishReason::kEos: return "eos";
        case FinishReason::kContextOverflow: return "context_overflow";
        case FinishReason::kCancelled: return "cancelled";
        case FinishReason::kDeadline: return "deadline";
        case FinishReason::kShardFailure: return "shard_failure";
        case FinishReason::kShedOverload: return "shed_overload";
    }
    return "none";
}

// Resolution of one submitted request. `finish_reason` is authoritative; the
// bool flags mirror it for existing call sites.
struct ServeResult {
    std::uint64_t id = 0;
    std::string text;                     // decoded generated tokens
    std::vector<std::int32_t> tokens;     // generated ids (incl. EOS if hit)
    std::size_t prompt_tokens = 0;        // prompt length after tokenization
    FinishReason finish_reason = FinishReason::kNone;
    // Times this request was passed over at admission before it was served:
    // the capacity governor refused its page demand while it was the
    // scheduler's pick, or a later-submitted request was admitted ahead of it
    // (SJF picking a shorter job). Past ServeOptions::max_deferrals the queue
    // promotes it to the mandatory next pick — see RequestQueue::pop_if.
    std::size_t times_deferred = 0;
    // Times the request was displaced by a shard failure and replayed on a
    // surviving shard (0 on the fault-free path). A nonzero count with a
    // normal finish_reason (budget/eos) is a failover-replayed completion:
    // the head of `tokens` was generated on the dead shard, the tail on the
    // survivor, and each token was streamed to on_token exactly once.
    std::size_t failovers = 0;
    bool hit_eos = false;                 // stopped on the EOS token
    bool hit_context_limit = false;       // stopped by the KV reservation
    bool cancelled = false;               // retired by RequestHandle::cancel()
    bool hit_deadline = false;            // retired by Request::deadline
};

// State shared between a RequestHandle and the engine's bookkeeping for one
// request. The cancel flag is the cooperative-cancellation channel: any
// thread sets it; the serve loop observes it at token boundaries.
struct RequestControl {
    std::atomic<bool> cancel{false};
};

// The caller's live handle to a submitted request: cancel it, poll for
// completion, or block on the result. Copyable (shared_future semantics); a
// default-constructed handle is inert.
//
// Handles stay safe across every engine lifecycle event — they never dangle
// and never hang:
//   - Shard failure with failover: the request's promise and cancel channel
//     move to the surviving shard with it; this same handle resolves (and
//     cancel() still works) wherever the request finishes.
//   - Shard failure without failover, or engine destruction with the request
//     still outstanding: the promise resolves with
//     FinishReason::kShardFailure and whatever tokens were streamed, so
//     wait()/get() return instead of blocking forever.
//   - cancel() after the engine is gone: writes a flag on shared state the
//     handle co-owns — safe, simply with nobody left to observe it.
class RequestHandle {
public:
    RequestHandle() = default;
    RequestHandle(std::uint64_t id, std::shared_ptr<RequestControl> control,
                  std::shared_future<ServeResult> fut)
        : id_(id), control_(std::move(control)), fut_(std::move(fut)) {}

    // Cooperative: the session retires (partial tokens, `cancelled` set) at
    // the next token boundary; a still-queued request is shed on its next
    // admission consideration. Safe from any thread, idempotent.
    void cancel() noexcept {
        if (control_) control_->cancel.store(true, std::memory_order_relaxed);
    }
    [[nodiscard]] bool done() const {
        return fut_.valid() &&
               fut_.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    }
    // Blocks until the request retires. Throws std::future_error(no_state)
    // on an inert (default-constructed) handle.
    [[nodiscard]] const ServeResult& get() const {
        if (!fut_.valid()) {
            throw std::future_error(std::future_errc::no_state);
        }
        return fut_.get();
    }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] bool valid() const noexcept { return fut_.valid(); }
    [[nodiscard]] std::shared_future<ServeResult> future() const { return fut_; }

private:
    std::uint64_t id_ = 0;
    std::shared_ptr<RequestControl> control_;
    std::shared_future<ServeResult> fut_;
};

// A tokenized request waiting for a free session slot. Failover resubmission
// reuses this shape: a request harvested from a failed shard arrives at the
// surviving shard with `resumed` holding the tokens the dead shard already
// generated AND streamed. They replay as prefill (rebuilding the KV history
// deterministically) and are prepended to the result's tokens, but on_token
// never fires for them again — exactly-once delivery per (request, position).
struct PendingRequest {
    std::uint64_t id = 0;
    std::vector<std::int32_t> prompt;     // tokenized, BOS included
    std::vector<std::int32_t> resumed;    // failover replay: already streamed
    std::size_t max_new_tokens = 0;       // original budget (incl. resumed)
    std::optional<std::chrono::steady_clock::time_point> deadline;
    TokenCallback on_token;
    std::shared_ptr<RequestControl> control;
    std::size_t times_deferred = 0;       // capacity-governor deferrals so far
    std::size_t failovers = 0;            // shard failures that displaced it
    // Clock::now_ns() at original submission, preserved across failover
    // harvest/resubmit so queue-wait/TTFT/e2e latencies span the request's
    // whole life, not just its stay on the current shard.
    std::uint64_t submitted_ns = 0;
    std::promise<ServeResult> promise;
};

// Aggregate engine counters since construction. `steps` counts batched
// decode_batch calls; `weight_walks` accumulates the backend's StepCost
// reports (1.0 per step for today's backends, fractional for a future
// partial-stream engine). The two time totals come from the
// backend's StepCost reports: wall_ns is host time inside decode, and
// simulated_ns is modeled device time (nonzero for the accel backend), so
// the same counters answer "how fast is this process" and "how fast would
// the KV260 serve this load".
struct ServeStats {
    std::size_t steps = 0;               // batched decode_batch calls
    double weight_walks = 0.0;           // backend-reported streaming passes
    std::size_t lane_steps = 0;          // sum of batch sizes over steps
    std::size_t prompt_tokens = 0;       // prefill tokens fed
    std::size_t generated_tokens = 0;    // sampled tokens
    std::size_t requests_completed = 0;  // every retirement, any reason
    std::size_t requests_cancelled = 0;
    std::size_t requests_expired = 0;    // deadline retirements
    std::size_t requests_shed = 0;       // overload-governor queue sheds
    std::size_t capacity_deferrals = 0;  // admissions refused by the governor
    std::size_t queue_promotions = 0;    // anti-starvation picks (max_deferrals)
    std::size_t peak_batch = 0;          // peak concurrent sessions in a step
    // Fault-tolerance counters. replayed_tokens is failover replay work: a
    // resumed request's already-delivered tokens re-fed as prefill to rebuild
    // its KV history (they ride weight walks but are never re-streamed).
    std::size_t backend_failures = 0;    // decode/reserve faults (0 or 1)
    std::size_t requests_resumed = 0;    // failover arrivals accepted here
    std::size_t requests_lost = 0;       // resolved kShardFailure (no failover)
    std::size_t replayed_tokens = 0;     // resumed tokens re-fed as prefill
    // Prefix-sharing counters (zero unless ServeOptions::prefix_sharing).
    // prefix_hits counts admissions that adopted a shared prefix;
    // prefix_hit_tokens is the prefill work those adoptions skipped;
    // prefix_cache_drops counts capacity-pressure index flushes.
    std::size_t prefix_hits = 0;
    std::size_t prefix_hit_tokens = 0;
    std::size_t prefix_cache_drops = 0;
    double wall_ns = 0.0;                // host time inside backend steps
    double simulated_ns = 0.0;           // modeled device time (accel backend)
    // Simulated step-phase breakdown, accumulated from StepCost (accel
    // backend only; the host backend reports no phase model, so these stay
    // zero). mem_bound is DDR-stream time (the paper's roofline), compute is
    // exposed VPU time not hidden under it, overhead is per-step fixed cost.
    double sim_mem_bound_ns = 0.0;
    double sim_compute_ns = 0.0;
    double sim_overhead_ns = 0.0;

    [[nodiscard]] double weight_walks_per_token() const noexcept {
        return generated_tokens > 0
                   ? weight_walks / static_cast<double>(generated_tokens)
                   : 0.0;
    }
    [[nodiscard]] double mean_batch_occupancy() const noexcept {
        return steps > 0
                   ? static_cast<double>(lane_steps) / static_cast<double>(steps)
                   : 0.0;
    }
    [[nodiscard]] double simulated_tokens_per_s() const noexcept {
        return simulated_ns > 0.0
                   ? static_cast<double>(generated_tokens) * 1e9 / simulated_ns
                   : 0.0;
    }
};

// One consistent snapshot of an engine's load, safe to take from any thread
// while the background driver serves (ServeEngine::load()). This is what a
// cluster router's placement policy decides over: queue pressure, active
// sessions, and — with paging — how much of the KV page budget is spoken for
// by admitted sessions (committed) and by demand still waiting in the queue
// (queued worst-case pages).
struct ServeLoad {
    ServeStats stats;                 // counter snapshot (stats_snapshot())
    std::size_t queued = 0;           // requests waiting in the queue
    std::size_t queue_capacity = 0;   // queue bound (submit rejects past it)
    std::size_t active = 0;           // sessions currently holding a slot
    std::size_t slots = 0;            // max concurrent sessions (max_batch)
    bool failed = false;              // backend fault: engine serves no more
    bool paging = false;              // capacity governor present
    std::size_t committed_pages = 0;  // governor ledger (0 without paging)
    std::size_t queued_pages = 0;     // worst-case demand still in the queue
    std::size_t total_pages = 0;      // pool size (0 without paging)
    std::size_t shared_pages = 0;     // prefix-index pins charged to the pool
    // Backend prefix-sharing counters (all zero when sharing is off); the
    // router's prefix-affinity policy reads pages_shared/hits from here.
    engine::PrefixSharingStats prefix;
    // Latency digests from the engine's metrics histograms (queue admission
    // wait, time-to-first-token, end-to-end). Placement policies and the
    // cluster's ClusterStats aggregation read these without touching the
    // full bucket arrays.
    obs::LatencySummary queue_wait;
    obs::LatencySummary ttft;
    obs::LatencySummary e2e;
};

}  // namespace efld::serve
