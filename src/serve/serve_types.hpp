// Shared value types of the serve subsystem: what a caller submits, what a
// request resolves to, and the counters that expose the GEMV→GEMM
// amortization (decode is weight-bound, so weight walks per generated token
// is THE serving efficiency metric — 1.0 at batch 1, approaching 1/batch as
// sessions overlap).
#pragma once

#include <cstdint>
#include <future>
#include <string>
#include <vector>

namespace efld::serve {

// Resolution of one submitted request.
struct ServeResult {
    std::uint64_t id = 0;
    std::string text;                     // decoded generated tokens
    std::vector<std::int32_t> tokens;     // generated ids (incl. EOS if hit)
    std::size_t prompt_tokens = 0;        // prompt length after tokenization
    bool hit_eos = false;                 // stopped on the EOS token
    bool hit_context_limit = false;       // stopped by the KV reservation
};

// A tokenized request waiting for a free session slot.
struct PendingRequest {
    std::uint64_t id = 0;
    std::vector<std::int32_t> prompt;     // tokenized, BOS included
    std::size_t max_new_tokens = 0;
    std::promise<ServeResult> promise;
};

// Aggregate engine counters since construction. `steps` counts batched
// decode_batch calls — each is exactly one walk of the quantized weights,
// regardless of how many sessions rode it.
struct ServeStats {
    std::size_t steps = 0;               // weight walks
    std::size_t lane_steps = 0;          // sum of batch sizes over steps
    std::size_t prompt_tokens = 0;       // prefill tokens fed
    std::size_t generated_tokens = 0;    // sampled tokens
    std::size_t requests_completed = 0;
    std::size_t peak_batch = 0;

    [[nodiscard]] double weight_walks_per_token() const noexcept {
        return generated_tokens > 0
                   ? static_cast<double>(steps) / static_cast<double>(generated_tokens)
                   : 0.0;
    }
    [[nodiscard]] double mean_batch_occupancy() const noexcept {
        return steps > 0
                   ? static_cast<double>(lane_steps) / static_cast<double>(steps)
                   : 0.0;
    }
};

}  // namespace efld::serve
