#include "serve/request_queue.hpp"

#include "common/check.hpp"
#include "serve/scheduler.hpp"

namespace efld::serve {

bool RequestQueue::push(PendingRequest&& req) {
    {
        const std::lock_guard<std::mutex> lock(m_);
        if (q_.size() >= capacity_) return false;
        q_.push_back(std::move(req));
    }
    cv_.notify_all();  // wake an idle serve driver
    return true;
}

std::optional<PendingRequest> RequestQueue::try_pop() {
    const std::lock_guard<std::mutex> lock(m_);
    if (q_.empty()) return std::nullopt;
    PendingRequest req = std::move(q_.front());
    q_.pop_front();
    return req;
}

std::optional<PendingRequest> RequestQueue::pop_with(const Scheduler& scheduler) {
    const std::lock_guard<std::mutex> lock(m_);
    if (q_.empty()) return std::nullopt;
    const std::size_t idx = scheduler.pick(q_);
    check(idx < q_.size(), "RequestQueue: scheduler pick out of range");
    PendingRequest req = std::move(q_[idx]);
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(idx));
    return req;
}

RequestQueue::PopOutcome RequestQueue::pop_if(
    const Scheduler& scheduler,
    const std::function<bool(PendingRequest&)>& admissible,
    std::size_t max_deferrals) {
    const std::lock_guard<std::mutex> lock(m_);
    PopOutcome out;
    if (q_.empty()) return out;
    // Starvation guard: a request at the deferral bound outranks the
    // scheduler (most-deferred first; the scan order breaks ties FIFO).
    std::size_t idx = q_.size();
    for (std::size_t i = 0; i < q_.size(); ++i) {
        if (q_[i].times_deferred < max_deferrals) continue;
        if (idx == q_.size() || q_[i].times_deferred > q_[idx].times_deferred) {
            idx = i;
        }
    }
    const bool promoted = idx != q_.size();
    if (!promoted) {
        idx = scheduler.pick(q_);
        check(idx < q_.size(), "RequestQueue: scheduler pick out of range");
    }
    if (!admissible(q_[idx])) {
        out.deferred = true;  // pick stays queued, in place
        return out;
    }
    out.req = std::move(q_[idx]);
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(idx));
    // Passed-over accounting: every earlier-submitted request still queued
    // just watched a younger one get admitted ahead of it.
    for (PendingRequest& r : q_) {
        if (r.id < out.req->id) ++r.times_deferred;
    }
    out.promoted = promoted;
    return out;
}

void RequestQueue::wait_for_work(const std::function<bool()>& wake) {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return !q_.empty() || wake(); });
}

void RequestQueue::notify_all() { cv_.notify_all(); }

std::vector<PendingRequest> RequestQueue::remove_if(
    const std::function<bool(const PendingRequest&)>& pred) {
    const std::lock_guard<std::mutex> lock(m_);
    std::vector<PendingRequest> removed;
    for (auto it = q_.begin(); it != q_.end();) {
        if (pred(*it)) {
            removed.push_back(std::move(*it));
            it = q_.erase(it);
        } else {
            ++it;
        }
    }
    return removed;
}

void RequestQueue::for_each(
    const std::function<void(const PendingRequest&)>& fn) const {
    const std::lock_guard<std::mutex> lock(m_);
    for (const PendingRequest& r : q_) fn(r);
}

std::size_t RequestQueue::size() const {
    const std::lock_guard<std::mutex> lock(m_);
    return q_.size();
}

}  // namespace efld::serve
