#include "serve/request_queue.hpp"

namespace efld::serve {

bool RequestQueue::push(PendingRequest&& req) {
    const std::lock_guard<std::mutex> lock(m_);
    if (q_.size() >= capacity_) return false;
    q_.push_back(std::move(req));
    return true;
}

std::optional<PendingRequest> RequestQueue::try_pop() {
    const std::lock_guard<std::mutex> lock(m_);
    if (q_.empty()) return std::nullopt;
    PendingRequest req = std::move(q_.front());
    q_.pop_front();
    return req;
}

std::size_t RequestQueue::size() const {
    const std::lock_guard<std::mutex> lock(m_);
    return q_.size();
}

}  // namespace efld::serve
