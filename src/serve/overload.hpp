// Alert-driven overload protection: the actuator half of the SLO loop.
//
// The alert engine DETECTS overload (TTFT burn, queue depth); this governor
// is what the serving layer does about it. It is a tiny shared atomic state
// block: the SLO controller flips it on alert transitions, and the hot paths
// read it with relaxed loads —
//
//   ServeEngine      — while engaged, the queue sweep sheds deadline-HOPELESS
//                      requests (ones whose remaining budget cannot cover the
//                      currently observed TTFT) with FinishReason::
//                      kShedOverload before they ever take a slot, so the
//                      slots go to requests that can still meet their SLO.
//   ClusterRouter    — while engaged, try_submit's retry hints stretch by
//                      retry_hint_scale (callers back off harder), and
//                      placement drops to the degraded mode: skip the
//                      per-shard prefix-affinity probe (a per-submission
//                      cross-shard scan) and fall back to cheap load-only
//                      placement until the alert resolves.
//
// Engagement is a count of currently-firing subscribed alerts, so two
// overlapping alerts disengage only when BOTH resolve.
#pragma once

#include <atomic>
#include <cstdint>

namespace efld::serve {

class OverloadGovernor {
public:
    struct Options {
        // Multiplier on try_submit retry hints while engaged.
        double retry_hint_scale = 4.0;
        // Shed deadline-hopeless queued requests while engaged.
        bool shed_hopeless = true;
        // Skip prefix-affinity probing while engaged.
        bool degrade_placement = true;
        // Hopelessness margin: hopeless when
        // now + observed_ttft * margin > deadline.
        double hopeless_margin = 1.0;
    };

    OverloadGovernor() = default;
    explicit OverloadGovernor(Options opts) : opts_(opts) {}
    OverloadGovernor(const OverloadGovernor&) = delete;
    OverloadGovernor& operator=(const OverloadGovernor&) = delete;

    // Alert-transition wiring (the SLO controller's subscriber calls these).
    void on_alert_firing() noexcept {
        firing_.fetch_add(1, std::memory_order_acq_rel);
        engagements_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_alert_resolved() noexcept {
        // Clamp at zero: a resolve without a matched firing (subscriber
        // attached mid-incident) must not wedge the count negative.
        int cur = firing_.load(std::memory_order_acquire);
        while (cur > 0 && !firing_.compare_exchange_weak(
                              cur, cur - 1, std::memory_order_acq_rel)) {
        }
    }

    [[nodiscard]] bool engaged() const noexcept {
        return firing_.load(std::memory_order_acquire) > 0;
    }
    [[nodiscard]] double retry_hint_scale() const noexcept {
        return engaged() ? opts_.retry_hint_scale : 1.0;
    }
    [[nodiscard]] bool shed_hopeless() const noexcept {
        return opts_.shed_hopeless && engaged();
    }
    [[nodiscard]] bool degraded_placement() const noexcept {
        return opts_.degrade_placement && engaged();
    }

    // Bookkeeping read back by metrics exposition.
    void count_shed() noexcept {
        shed_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t shed_total() const noexcept {
        return shed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t engagements() const noexcept {
        return engagements_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
    std::atomic<int> firing_{0};
    std::atomic<std::uint64_t> engagements_{0};
    std::atomic<std::uint64_t> shed_{0};
};

}  // namespace efld::serve
