#include "analytic/roofline.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace efld::analytic {

DeviceRoofline DeviceRoofline::kv260_accelerator() {
    // 128 MACs per clock at 300 MHz; 19.2 GB/s DDR4.
    return {"KV260 (this work)", 128.0 * 300e6, 19.2e9};
}

DeviceRoofline DeviceRoofline::jetson_agx_orin() {
    // ~85 int8 sparse TOPS marketing -> ~40e12 dense MACs class; 204.8 GB/s.
    return {"Jetson AGX Orin", 40e12, 204.8e9};
}

DeviceRoofline DeviceRoofline::jetson_orin_nano() {
    return {"Jetson Orin Nano", 10e12, 68e9};
}

namespace {

// MACs and moved bytes for one full pass over the projection weights.
struct PassCost {
    double macs = 0;
    double bytes = 0;
};

PassCost weight_pass(const model::ModelConfig& cfg, const model::QuantScheme& scheme) {
    PassCost p;
    const double params =
        static_cast<double>(cfg.layer_params() + cfg.lm_head_params());
    p.macs = params;  // one MAC per weight per token
    p.bytes = params * scheme.bytes_per_weight();
    return p;
}

RooflinePoint evaluate(const DeviceRoofline& dev, double macs, double bytes) {
    check(bytes > 0, "Roofline: zero traffic");
    RooflinePoint pt;
    pt.intensity = macs / bytes;
    const double mem_limited = pt.intensity * dev.peak_bytes_per_s;
    pt.attainable_macs = std::min(dev.peak_macs_per_s, mem_limited);
    pt.memory_bound = mem_limited <= dev.peak_macs_per_s;
    return pt;
}

}  // namespace

RooflinePoint Roofline::decode(const DeviceRoofline& dev, const model::ModelConfig& cfg,
                               const model::QuantScheme& scheme) {
    const PassCost p = weight_pass(cfg, scheme);
    return evaluate(dev, p.macs, p.bytes);
}

RooflinePoint Roofline::prefill(const DeviceRoofline& dev, const model::ModelConfig& cfg,
                                const model::QuantScheme& scheme,
                                std::size_t prompt_len) {
    check(prompt_len > 0, "Roofline: empty prompt");
    const PassCost p = weight_pass(cfg, scheme);
    // Weights cross the bus once; every prompt token multiplies against them.
    return evaluate(dev, p.macs * static_cast<double>(prompt_len), p.bytes);
}

double Roofline::crossover_prompt_len(const DeviceRoofline& dev,
                                      const model::ModelConfig& cfg,
                                      const model::QuantScheme& scheme) {
    const PassCost p = weight_pass(cfg, scheme);
    const double decode_intensity = p.macs / p.bytes;
    return dev.ridge_intensity() / decode_intensity;
}

}  // namespace efld::analytic
