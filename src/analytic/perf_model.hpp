// Bandwidth-limit performance model (the paper's Table II/III arithmetic).
//
// Single-batch LLM decoding is bandwidth-bound, so the theoretical peak
// decode rate of any platform is
//     token/s = bandwidth / (model_params * weight_bits / 8)
// (Table II footnote 1: "the number of model weight transfers possible
// within one second"), and bandwidth utilization is measured/theoretical.
#pragma once

#include "analytic/platformdb.hpp"

namespace efld::analytic {

struct PerfPoint {
    double theoretical_token_s = 0;
    double measured_token_s = 0;

    [[nodiscard]] double utilization_pct() const noexcept {
        return theoretical_token_s > 0
                   ? 100.0 * measured_token_s / theoretical_token_s
                   : 0.0;
    }
};

class PerfModel {
public:
    [[nodiscard]] static double theoretical_token_s(double bandwidth_gb_s,
                                                    double model_params,
                                                    unsigned weight_bits) noexcept {
        const double bytes = model_params * static_cast<double>(weight_bits) / 8.0;
        return bandwidth_gb_s * 1e9 / bytes;
    }

    [[nodiscard]] static PerfPoint evaluate(const ComparisonRow& row,
                                            double measured_token_s);

    // For rows with published results.
    [[nodiscard]] static PerfPoint evaluate(const ComparisonRow& row);
};

}  // namespace efld::analytic
