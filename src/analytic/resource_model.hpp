// FPGA resource model (substitutes for the Vivado utilization report).
//
// Estimates LUT/FF/CARRY/DSP/URAM/BRAM for each unit of the accelerator from
// its architectural parameters (VPU lane count, AXI port count, ROM and FIFO
// depths). Per-primitive cost constants are calibrated against the paper's
// Table I so the *structure* of the breakdown is preserved: the VPU dominates
// LUT/DSP (dense fp16 datapath), the MCU dominates BRAM/URAM (datamover and
// stream buffers), the SPU sits in between with its ROMs and the scale-zero
// FIFO. The model then answers "does a variant fit the device?" for
// ablations (more lanes, more ports, wider buses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace efld::analytic {

struct ResourceVector {
    double lut = 0;
    double ff = 0;
    double carry = 0;
    double dsp = 0;
    double uram = 0;
    double bram = 0;  // BRAM36 equivalents

    ResourceVector& operator+=(const ResourceVector& o) noexcept {
        lut += o.lut; ff += o.ff; carry += o.carry;
        dsp += o.dsp; uram += o.uram; bram += o.bram;
        return *this;
    }
    friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) noexcept {
        a += b;
        return a;
    }
};

// Device capacity (for utilization percentages).
struct FpgaDevice {
    std::string name;
    ResourceVector capacity;

    [[nodiscard]] static FpgaDevice kv260();    // Zynq UltraScale+ XCK26
    [[nodiscard]] static FpgaDevice zcu102();   // XCZU9EG
    [[nodiscard]] static FpgaDevice u280();     // Alveo U280
};

// Architecture parameters that drive the estimate.
struct ArchParams {
    std::size_t vpu_lanes = 128;
    unsigned axi_ports = 4;
    unsigned axi_port_bits = 128;
    std::size_t sincos_rom_points = 4096;
    std::size_t exp_rom_entries = 1024;
    std::size_t scale_zero_fifo_slots = 2 * 32 * 32;  // 2 * layers * kv_heads
    double clock_mhz = 300.0;
};

struct ResourceBreakdown {
    ResourceVector mem_ctrl;
    ResourceVector vpu;
    ResourceVector spu;

    [[nodiscard]] ResourceVector total() const noexcept { return mem_ctrl + vpu + spu; }
};

class ResourceModel {
public:
    [[nodiscard]] static ResourceBreakdown estimate(const ArchParams& params);

    // True when the estimate fits the device with `margin` headroom
    // (routing/closure reserve; 70 % LUT is the paper's practical ceiling).
    [[nodiscard]] static bool fits(const ResourceBreakdown& est, const FpgaDevice& dev,
                                   double margin = 0.05);

    [[nodiscard]] static double utilization_pct(double used, double capacity) noexcept {
        return capacity > 0 ? 100.0 * used / capacity : 0.0;
    }
};

}  // namespace efld::analytic
