// Platform database for the comparison tables (Tables II and III).
//
// Every row of the paper's comparisons is a (platform, framework, model,
// quantization, published-token/s) tuple. Published decode rates for other
// systems are *inputs* (they were measured on hardware we do not have); the
// "Ours" row is produced live by the cycle-accurate simulator. Keeping the
// whole table data-driven lets benches regenerate the paper tables and also
// extend them (different models, hypothetical bandwidths).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace efld::analytic {

enum class PlatformClass { kCloudHbmFpga, kEdgeDdrFpga, kEmbeddedCpu, kEmbeddedGpu };

struct ComparisonRow {
    std::string work;        // DFX, FlightLLM, ..., Ours
    std::string device;      // U280, KV260, Jetson AGX Orin, ...
    PlatformClass cls = PlatformClass::kEdgeDdrFpga;
    std::string framework;   // for Table III (llama.cpp, TinyChat, NanoLLM)
    std::string task;        // model name
    double model_params = 0; // parameters of the deployed model
    unsigned weight_bits = 16;
    double bandwidth_gb_s = 0;

    // Published implementation details (Table II columns; 0 = not reported).
    double lut = 0, ff = 0, bram = 0, dsp = 0;
    double clock_mhz = 0, power_w = 0;

    // Published measured decode rate; the Ours row computes this instead.
    std::optional<double> reported_token_s;
    // Self-reported utilization when it differs from the recomputed one.
    std::optional<double> self_reported_util_pct;
};

// Rows exactly as printed in the paper (minus Ours, which is simulated).
[[nodiscard]] std::vector<ComparisonRow> table2_fpga_rows();
[[nodiscard]] std::vector<ComparisonRow> table3_edge_rows();

// The Ours row template (filled with simulated token/s by the caller).
[[nodiscard]] ComparisonRow ours_row_template();

}  // namespace efld::analytic
