// Comparison-table generators: render Tables II and III with the Ours row
// produced by the live simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analytic/perf_model.hpp"

namespace efld::analytic {

struct RenderedRow {
    ComparisonRow row;
    PerfPoint perf;
};

// Builds the full Table II (FPGA comparison) given the simulated decode rate
// of our KV260 accelerator.
[[nodiscard]] std::vector<RenderedRow> build_table2(double ours_token_s);

// Builds the full Table III (embedded CPU/GPU comparison).
[[nodiscard]] std::vector<RenderedRow> build_table3(double ours_token_s);

// Pretty-printers (paper-style columns).
void print_table2(std::ostream& os, const std::vector<RenderedRow>& rows);
void print_table3(std::ostream& os, const std::vector<RenderedRow>& rows);

}  // namespace efld::analytic
