#include "analytic/comparison.hpp"

#include <iomanip>
#include <ostream>

namespace efld::analytic {

namespace {

const char* class_name(PlatformClass c) {
    switch (c) {
        case PlatformClass::kCloudHbmFpga: return "Cloud HBM";
        case PlatformClass::kEdgeDdrFpga: return "Edge DDR";
        case PlatformClass::kEmbeddedCpu: return "Edge CPU";
        case PlatformClass::kEmbeddedGpu: return "Edge GPU";
    }
    return "?";
}

}  // namespace

std::vector<RenderedRow> build_table2(double ours_token_s) {
    std::vector<RenderedRow> out;
    for (const auto& row : table2_fpga_rows()) {
        out.push_back({row, PerfModel::evaluate(row)});
    }
    ComparisonRow ours = ours_row_template();
    out.push_back({ours, PerfModel::evaluate(ours, ours_token_s)});
    return out;
}

std::vector<RenderedRow> build_table3(double ours_token_s) {
    std::vector<RenderedRow> out;
    for (const auto& row : table3_edge_rows()) {
        out.push_back({row, PerfModel::evaluate(row)});
    }
    ComparisonRow ours = ours_row_template();
    out.push_back({ours, PerfModel::evaluate(ours, ours_token_s)});
    return out;
}

void print_table2(std::ostream& os, const std::vector<RenderedRow>& rows) {
    os << std::left << std::setw(10) << "Class" << std::setw(11) << "Work"
       << std::setw(9) << "Device" << std::setw(11) << "GB/s" << std::setw(13) << "Task"
       << std::setw(5) << "W" << std::setw(11) << "token/s^1" << std::setw(11)
       << "token/s^2" << std::setw(8) << "Util.%" << '\n';
    os << std::string(89, '-') << '\n';
    for (const auto& r : rows) {
        os << std::left << std::setw(10) << class_name(r.row.cls) << std::setw(11)
           << r.row.work << std::setw(9) << r.row.device << std::setw(11) << std::fixed
           << std::setprecision(1) << r.row.bandwidth_gb_s << std::setw(13) << r.row.task
           << "W" << std::setw(4) << r.row.weight_bits << std::setw(11)
           << std::setprecision(1) << r.perf.theoretical_token_s << std::setw(11)
           << std::setprecision(2) << r.perf.measured_token_s << std::setprecision(1)
           << r.perf.utilization_pct();
        if (r.row.self_reported_util_pct) {
            os << " (self-rep " << *r.row.self_reported_util_pct << ")";
        }
        os << '\n';
    }
}

void print_table3(std::ostream& os, const std::vector<RenderedRow>& rows) {
    os << std::left << std::setw(16) << "Device" << std::setw(8) << "GB/s"
       << std::setw(12) << "Framework" << std::setw(11) << "token/s^1" << std::setw(11)
       << "token/s^2" << std::setw(8) << "Util.%" << '\n';
    os << std::string(66, '-') << '\n';
    for (const auto& r : rows) {
        os << std::left << std::setw(16) << r.row.device << std::setw(8) << std::fixed
           << std::setprecision(1) << r.row.bandwidth_gb_s << std::setw(12)
           << r.row.framework << std::setw(11) << std::setprecision(1)
           << r.perf.theoretical_token_s << std::setw(11) << std::setprecision(2)
           << r.perf.measured_token_s << std::setprecision(1)
           << r.perf.utilization_pct() << '\n';
    }
}

}  // namespace efld::analytic
