#include "analytic/resource_model.hpp"

#include <cmath>

namespace efld::analytic {

FpgaDevice FpgaDevice::kv260() {
    // Zynq UltraScale+ XCK26 (Kria K26 SOM). CARRY8 count = LUT/8.
    return {"KV260", {117120, 234240, 14640, 1248, 64, 144}};
}

FpgaDevice FpgaDevice::zcu102() {
    return {"ZCU102", {274080, 548160, 34260, 2520, 0, 912}};
}

FpgaDevice FpgaDevice::u280() {
    return {"U280", {1303680, 2607360, 162960, 9024, 960, 2016}};
}

namespace {

// Per-primitive cost constants, calibrated against the paper's Table I
// (Vivado 2022.2 results for the deployed 128-lane / 4-port configuration).
// FP16 operators on UltraScale+ fabric: one DSP48E2 plus LUT glue each.
constexpr double kFp16MulLut = 80, kFp16MulFf = 120, kFp16MulCarry = 6;
constexpr double kFp16AddLut = 180, kFp16AddFf = 220, kFp16AddCarry = 10;
constexpr double kUramBits = 294912;  // 4K x 72
constexpr double kBramBits = 36864;   // BRAM36

}  // namespace

ResourceBreakdown ResourceModel::estimate(const ArchParams& p) {
    ResourceBreakdown r;

    // ---- Memory Control Unit: per-port datamover + sync/demux/cmdgen ----
    const double ports = p.axi_ports;
    const double stream_words = ports * p.axi_port_bits / 512.0;  // 512b streams formed
    r.mem_ctrl.lut = ports * 2500 + 4000;
    r.mem_ctrl.ff = ports * 3800 + 5800;
    r.mem_ctrl.carry = ports * 120 + 120;
    r.mem_ctrl.dsp = 1;  // address arithmetic
    r.mem_ctrl.uram = 7.0 * stream_words;       // stream reorder buffers
    r.mem_ctrl.bram = ports * 6.5 + 4;          // datamover FIFOs + cmd queues

    // ---- Vector Processing Unit: lanes multipliers + (lanes-1) tree adders
    //      + scaling multiplier/accumulator + dequant stage ----
    const double lanes = static_cast<double>(p.vpu_lanes);
    const double adders = lanes - 1;
    r.vpu.lut = lanes * kFp16MulLut + adders * kFp16AddLut + 900;
    r.vpu.ff = lanes * kFp16MulFf + adders * kFp16AddFf + 700;
    r.vpu.carry = lanes * kFp16MulCarry + adders * kFp16AddCarry + 62;
    r.vpu.dsp = lanes + adders + 11;  // + scaler, accumulator, dequant muls
    r.vpu.uram = 0;
    r.vpu.bram = 0;

    // ---- Scalar Processing Unit: fixed submodules + parameterized ROMs ----
    const double sincos_bram =
        std::ceil(static_cast<double>(p.sincos_rom_points) * 16 / kBramBits * 2) / 2;
    const double exp_bram =
        std::ceil(static_cast<double>(p.exp_rom_entries) * 16 / kBramBits * 2) / 2;
    // The FIFO stores 16 packs per slot at 24 real bits each (the 8-bit bus
    // alignment dummy is not kept on chip).
    const double fifo_uram = std::ceil(
        static_cast<double>(p.scale_zero_fifo_slots) * 16 * 24 / kUramBits);

    r.spu.lut = 3000 /*rope*/ + 4500 /*softmax*/ + 3500 /*rmsnorm*/ + 3000 /*silu*/ +
                3000 /*quant*/ + 4000 /*s2p+FIFOs*/ + 8000 /*FSMs*/;
    r.spu.ff = 4000 + 6000 + 5000 + 4000 + 4500 + 6000 + 10500;
    r.spu.carry = 1000;
    r.spu.dsp = 6 /*rotator*/ + 4 /*softmax*/ + 4 /*rsqrt path*/ + 4 /*silu*/ +
                2 /*quant*/ + 4 /*misc*/;
    r.spu.uram = fifo_uram;
    r.spu.bram = sincos_bram + exp_bram + 0.5 /*rmsnorm*/ + 0.5 /*quant*/ +
                 2.0 /*operand FIFOs*/ + 1.0 /*score buffer*/;
    return r;
}

bool ResourceModel::fits(const ResourceBreakdown& est, const FpgaDevice& dev,
                         double margin) {
    const ResourceVector t = est.total();
    const double k = 1.0 - margin;
    return t.lut <= dev.capacity.lut * k && t.ff <= dev.capacity.ff * k &&
           t.carry <= dev.capacity.carry * k && t.dsp <= dev.capacity.dsp * k &&
           t.uram <= dev.capacity.uram * k && t.bram <= dev.capacity.bram * k;
}

}  // namespace efld::analytic
