#include "analytic/power_model.hpp"

namespace efld::analytic {

PowerEstimate PowerModel::estimate(const ResourceBreakdown& res, double clock_mhz) {
    PowerEstimate p;
    p.ps_static_w = 2.00;  // APU + PS peripherals (bare-metal, one core busy)
    p.pl_static_w = 0.60;
    p.ddr_w = 1.00;        // DDR4 PHY + DRAM activity at full streaming

    const ResourceVector t = res.total();
    const double f = clock_mhz / 300.0;  // coefficients calibrated at 300 MHz
    const double dsp_w = t.dsp * 3.3e-3;
    const double lut_w = t.lut * 0.017e-3;  // includes companion FF toggling
    const double bram_w = t.bram * 12e-3;
    const double uram_w = t.uram * 25e-3;
    p.dynamic_w = f * (dsp_w + lut_w + bram_w + uram_w);
    return p;
}

}  // namespace efld::analytic
