// Roofline analysis for LLM inference phases (§VIII discussion support).
//
// Decode and prefill sit on opposite sides of the roofline ridge: decode has
// an operational intensity of ~2 MACs per quantized weight byte (every weight
// used once), far below any device's ridge point, so it is bandwidth-bound
// everywhere; prefill multiplies intensity by the prompt length and crosses
// into the compute-bound region. This module quantifies that for arbitrary
// (device, model, phase) combinations — the analysis behind the paper's
// "decode speed is entirely bandwidth-bound" premise and its advice to FPGA
// vendors about memory systems.
#pragma once

#include <string>

#include "model/config.hpp"

namespace efld::analytic {

struct DeviceRoofline {
    std::string name;
    double peak_macs_per_s = 0;   // compute ceiling
    double peak_bytes_per_s = 0;  // memory ceiling

    // Operational intensity (MACs/byte) where the two ceilings meet.
    [[nodiscard]] double ridge_intensity() const noexcept {
        return peak_bytes_per_s > 0 ? peak_macs_per_s / peak_bytes_per_s : 0.0;
    }

    // Our accelerator: 128 fp16 MACs/clk at 300 MHz over 19.2 GB/s.
    [[nodiscard]] static DeviceRoofline kv260_accelerator();
    // Jetson-class comparators (dense fp16/int8 tensor-core peaks).
    [[nodiscard]] static DeviceRoofline jetson_agx_orin();
    [[nodiscard]] static DeviceRoofline jetson_orin_nano();
};

struct RooflinePoint {
    double intensity = 0;        // MACs per byte moved
    double attainable_macs = 0;  // min(compute, intensity * bandwidth)
    bool memory_bound = false;

    // Decode rate implied by the attainable throughput.
    [[nodiscard]] double tokens_per_s(double macs_per_token) const noexcept {
        return macs_per_token > 0 ? attainable_macs / macs_per_token : 0.0;
    }
};

class Roofline {
public:
    // Decode phase: one token, every weight byte read once.
    [[nodiscard]] static RooflinePoint decode(const DeviceRoofline& dev,
                                              const model::ModelConfig& cfg,
                                              const model::QuantScheme& scheme);

    // Prefill phase processing `prompt_len` tokens per weight pass.
    [[nodiscard]] static RooflinePoint prefill(const DeviceRoofline& dev,
                                               const model::ModelConfig& cfg,
                                               const model::QuantScheme& scheme,
                                               std::size_t prompt_len);

    // Prompt length at which prefill crosses from memory- to compute-bound.
    [[nodiscard]] static double crossover_prompt_len(const DeviceRoofline& dev,
                                                     const model::ModelConfig& cfg,
                                                     const model::QuantScheme& scheme);
};

}  // namespace efld::analytic
