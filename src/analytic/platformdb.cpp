#include "analytic/platformdb.hpp"

namespace efld::analytic {

std::vector<ComparisonRow> table2_fpga_rows() {
    std::vector<ComparisonRow> rows;

    // --- Cloud HBM FPGAs -------------------------------------------------
    {
        ComparisonRow r;
        r.work = "DFX";
        r.device = "U280";
        r.cls = PlatformClass::kCloudHbmFpga;
        r.task = "GPT2-1.5B";
        r.model_params = 1.5e9;
        r.weight_bits = 16;
        r.bandwidth_gb_s = 460;
        r.lut = 520e3; r.ff = 1107e3; r.bram = 1192; r.dsp = 3533;
        r.clock_mhz = 200; r.power_w = 45;
        r.reported_token_s = 21.0;  // single-FPGA 1.5B rate (linear-scaled)
        rows.push_back(r);
    }
    {
        ComparisonRow r;
        r.work = "FlightLLM";
        r.device = "U280";
        r.cls = PlatformClass::kCloudHbmFpga;
        r.task = "LLaMA2-7B";
        r.model_params = 7e9;
        r.weight_bits = 4;  // SparseGPT 3.5-bit effective ~= W4 for bandwidth
        r.bandwidth_gb_s = 460;
        r.lut = 574e3; r.ff = 943e3; r.bram = 1252; r.dsp = 6345;
        r.clock_mhz = 225; r.power_w = 45;
        r.reported_token_s = 55.0;
        r.self_reported_util_pct = 65.9;
        rows.push_back(r);
    }
    {
        ComparisonRow r;
        r.work = "EdgeLLM";
        r.device = "U280";
        r.cls = PlatformClass::kCloudHbmFpga;
        r.task = "ChatGLM-6B";
        r.model_params = 6.2e9;
        r.weight_bits = 4;
        r.bandwidth_gb_s = 460;
        r.lut = 967e3; r.ff = 607e3; r.bram = 1734; r.dsp = 5587;
        r.clock_mhz = 250; r.power_w = 50.7;
        r.reported_token_s = 75.0;
        r.self_reported_util_pct = 73.8;
        rows.push_back(r);
    }

    // --- Edge DDR FPGAs --------------------------------------------------
    {
        ComparisonRow r;
        r.work = "SECDA";
        r.device = "PYNQ";
        r.cls = PlatformClass::kEdgeDdrFpga;
        r.task = "TinyLLaMA";
        r.model_params = 1.1e9;
        r.weight_bits = 4;
        r.bandwidth_gb_s = 2.1;
        r.reported_token_s = 0.58;
        rows.push_back(r);
    }
    {
        ComparisonRow r;
        r.work = "LlamaF";
        r.device = "ZCU102";
        r.cls = PlatformClass::kEdgeDdrFpga;
        r.task = "TinyLLaMA";
        r.model_params = 1.1e9;
        r.weight_bits = 8;
        r.bandwidth_gb_s = 21.3;
        r.lut = 164e3; r.ff = 171e3; r.bram = 223; r.dsp = 528;
        r.clock_mhz = 205; r.power_w = 5.08;
        r.reported_token_s = 1.5;
        rows.push_back(r);
    }
    return rows;
}

std::vector<ComparisonRow> table3_edge_rows() {
    std::vector<ComparisonRow> rows;
    auto add = [&](const std::string& device, PlatformClass cls, double bw,
                   const std::string& framework, double token_s) {
        ComparisonRow r;
        r.work = framework;
        r.device = device;
        r.cls = cls;
        r.framework = framework;
        r.task = "LLaMA2-7B";
        r.model_params = 6.62e9;  // projection + head params, the util basis
        r.weight_bits = 4;
        r.bandwidth_gb_s = bw;
        r.reported_token_s = token_s;
        rows.push_back(r);
    };
    add("Pi-4B 8GB", PlatformClass::kEmbeddedCpu, 12.8, "llama.cpp", 0.11);
    add("JetsonAGXOrin", PlatformClass::kEmbeddedGpu, 204.8, "llama.cpp", 4.49);
    add("JetsonAGXOrin", PlatformClass::kEmbeddedGpu, 204.8, "TinyChat", 33.0);
    add("JetsonAGXOrin", PlatformClass::kEmbeddedGpu, 204.8, "NanoLLM", 47.1);
    add("JetsonOrinNano", PlatformClass::kEmbeddedGpu, 68.0, "NanoLLM", 16.4);
    return rows;
}

ComparisonRow ours_row_template() {
    ComparisonRow r;
    r.work = "Ours";
    r.device = "KV260";
    r.cls = PlatformClass::kEdgeDdrFpga;
    r.framework = "Ours";
    r.task = "LLaMA2-7B";
    r.model_params = 6.62e9;  // layer + lm_head parameters of LLaMA2-7B
    r.weight_bits = 4;
    r.bandwidth_gb_s = 19.2;
    r.lut = 78e3; r.ff = 105e3; r.bram = 36.5; r.dsp = 291;
    r.clock_mhz = 300; r.power_w = 6.57;
    return r;
}

}  // namespace efld::analytic
