// Power model (substitutes for the Vivado power report).
//
// Linear activity model over the resource vector: PS static + ARM cores,
// PL static, DDR interface, and per-primitive dynamic power scaled by clock
// frequency. Coefficients calibrated so the deployed configuration
// (Table I totals @ 300 MHz) reports the paper's 6.57 W.
#pragma once

#include "analytic/resource_model.hpp"

namespace efld::analytic {

struct PowerEstimate {
    double ps_static_w = 0;
    double pl_static_w = 0;
    double ddr_w = 0;
    double dynamic_w = 0;

    [[nodiscard]] double total_w() const noexcept {
        return ps_static_w + pl_static_w + ddr_w + dynamic_w;
    }
};

class PowerModel {
public:
    [[nodiscard]] static PowerEstimate estimate(const ResourceBreakdown& res,
                                                double clock_mhz);

    // Energy per decoded token (J) at a given decode rate.
    [[nodiscard]] static double joules_per_token(const PowerEstimate& p,
                                                 double tokens_per_s) {
        return tokens_per_s > 0 ? p.total_w() / tokens_per_s : 0.0;
    }
};

}  // namespace efld::analytic
