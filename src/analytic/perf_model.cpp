#include "analytic/perf_model.hpp"

#include "common/check.hpp"

namespace efld::analytic {

PerfPoint PerfModel::evaluate(const ComparisonRow& row, double measured_token_s) {
    PerfPoint p;
    p.theoretical_token_s =
        theoretical_token_s(row.bandwidth_gb_s, row.model_params, row.weight_bits);
    p.measured_token_s = measured_token_s;
    return p;
}

PerfPoint PerfModel::evaluate(const ComparisonRow& row) {
    check(row.reported_token_s.has_value(),
          "PerfModel: row '" + row.work + "' has no reported rate");
    return evaluate(row, *row.reported_token_s);
}

}  // namespace efld::analytic
