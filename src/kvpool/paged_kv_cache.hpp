// Physically paged KV storage for the host engine: the KvBlockPool's block
// tables backed by real page-resident slabs.
//
// Two arenas mirror the two contiguous caches in model/kv_cache.hpp — float
// (golden path) and KV8-quantized (deployed form) — but storage is a shared
// page arena instead of a per-session max_seq_len reservation: a sequence
// owns only the pages its history actually fills, so the arena's footprint is
// the pool budget, not sessions x context window.
//
// Within a page, a (layer, kv_head) keeps its page_tokens token rows
// contiguous ([layer][kv_head][token_in_page][head_dim]), matching the MCU's
// head-major DDR layout at page granularity: reading one head's history is
// one burst per PAGE rather than one burst per sequence. The read path
// gathers those per-page spans into caller scratch; because the gathered
// values are copied (or dequantized) verbatim, attention over a gathered
// history is bit-for-bit identical to attention over a contiguous cache —
// the parity the engine contract tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kvpool/kv_block_pool.hpp"
#include "model/config.hpp"
#include "quant/kvquant.hpp"

namespace efld::kvpool {

// Float paged KV arena (reference path).
class PagedKvArena {
public:
    PagedKvArena(const model::ModelConfig& cfg, KvPoolConfig pool_cfg);

    [[nodiscard]] std::size_t create_sequence() { return pool_.create_sequence(); }
    void free_sequence(std::size_t seq);
    void reset_sequence(std::size_t seq);

    // Appends one token's K and V for `layer` (same cadence as
    // KvCache::append: all layers at a position, then the next token). Takes
    // a page from the pool at page boundaries; throws efld::Error when the
    // pool is exhausted — the admission governor exists to make that
    // unreachable for admitted sequences.
    void append(std::size_t seq, std::size_t layer, std::span<const float> k,
                std::span<const float> v);

    // Gathers `len` history rows of one head into caller scratch (at least
    // len * head_dim floats), one contiguous copy per page. Returns the
    // filled prefix.
    std::span<const float> gather_keys(std::size_t seq, std::size_t layer,
                                       std::size_t kv_head, std::size_t len,
                                       std::span<float> out) const;
    std::span<const float> gather_values(std::size_t seq, std::size_t layer,
                                         std::size_t kv_head, std::size_t len,
                                         std::span<float> out) const;

    // Maps an already-resident prefix chain into the EMPTY sequence `seq` at
    // `tokens` logical tokens without recomputing any KV (the pages carry
    // complete per-layer state, so adoption is cadence-safe at any position).
    // A subsequent append into a still-shared page copies the page slab
    // first — copy-on-write, so sharers never see the divergence.
    void adopt_prefix(std::size_t seq, std::span<const std::size_t> pages,
                      std::size_t tokens);

    [[nodiscard]] std::size_t length(std::size_t seq) const {
        return pool_.seq_tokens(seq);
    }
    [[nodiscard]] const KvBlockPool& pool() const noexcept { return pool_; }
    [[nodiscard]] KvBlockPool& pool() noexcept { return pool_; }

private:
    // Float offset of (layer, kv_head, token_in_page) inside a page slab.
    [[nodiscard]] std::size_t page_off(std::size_t layer, std::size_t kv_head,
                                       std::size_t tok_in_page) const noexcept {
        return ((layer * cfg_.n_kv_heads + kv_head) * pool_.page_tokens() +
                tok_in_page) *
               cfg_.head_dim();
    }
    std::span<const float> gather(const std::vector<float>& store, std::size_t seq,
                                  std::size_t layer, std::size_t kv_head,
                                  std::size_t len, std::span<float> out) const;

    model::ModelConfig cfg_;
    KvBlockPool pool_;
    std::size_t page_floats_ = 0;  // floats per page slab (K or V)
    std::vector<float> k_;         // [page][layer][kv_head][tok_in_page][head_dim]
    std::vector<float> v_;
    std::vector<std::size_t> appended_this_pos_;  // per sequence (layer cadence)
};

// KV8 paged arena (deployed form): per-(token, head) code vectors + params,
// page-resident like the codes/packs regions in DDR.
class PagedQuantizedKvArena {
public:
    PagedQuantizedKvArena(const model::ModelConfig& cfg, KvPoolConfig pool_cfg,
                          unsigned kv_bits = 8);

    [[nodiscard]] std::size_t create_sequence() { return pool_.create_sequence(); }
    void free_sequence(std::size_t seq);
    void reset_sequence(std::size_t seq);

    void append(std::size_t seq, std::size_t layer, std::span<const float> k,
                std::span<const float> v);

    // Dequantizes `len` history rows of one head into caller scratch
    // (matches QuantizedKvCache::dequant_*_into bit-for-bit).
    std::span<const float> dequant_keys_into(std::size_t seq, std::size_t layer,
                                             std::size_t kv_head, std::size_t len,
                                             std::span<float> out) const;
    std::span<const float> dequant_values_into(std::size_t seq, std::size_t layer,
                                               std::size_t kv_head, std::size_t len,
                                               std::span<float> out) const;

    // See PagedKvArena::adopt_prefix — same contract over quantized entries.
    void adopt_prefix(std::size_t seq, std::span<const std::size_t> pages,
                      std::size_t tokens);

    [[nodiscard]] std::size_t length(std::size_t seq) const {
        return pool_.seq_tokens(seq);
    }
    [[nodiscard]] const KvBlockPool& pool() const noexcept { return pool_; }
    [[nodiscard]] KvBlockPool& pool() noexcept { return pool_; }

private:
    struct Entry {
        std::vector<std::uint8_t> codes;
        quant::KvQuantParams params;
    };

    [[nodiscard]] std::size_t entry_idx(std::size_t page, std::size_t layer,
                                        std::size_t kv_head,
                                        std::size_t tok_in_page) const noexcept {
        return ((page * cfg_.n_layers + layer) * cfg_.n_kv_heads + kv_head) *
                   pool_.page_tokens() +
               tok_in_page;
    }
    std::span<const float> dequant(const std::vector<Entry>& store, std::size_t seq,
                                   std::size_t layer, std::size_t kv_head,
                                   std::size_t len, std::span<float> out) const;

    model::ModelConfig cfg_;
    unsigned kv_bits_ = 8;
    KvBlockPool pool_;
    std::vector<Entry> k_;  // [page][layer][kv_head][tok_in_page]
    std::vector<Entry> v_;
    std::vector<std::size_t> appended_this_pos_;
};

}  // namespace efld::kvpool
