#include "kvpool/capacity_governor.hpp"

#include <algorithm>

#include "common/bitpack.hpp"
#include "common/check.hpp"

namespace efld::kvpool {

std::uint64_t kv_budget_from_plan(const runtime::MemoryPlan& plan) {
    const std::uint64_t spoken_for = plan.weight_bytes + plan.reserved_bytes;
    if (spoken_for >= plan.device_bytes) return 0;  // weights alone overflow
    return plan.device_bytes - spoken_for;
}

CapacityGovernor::CapacityGovernor(std::size_t total_pages, std::size_t page_tokens)
    : total_pages_(total_pages), page_tokens_(page_tokens) {
    check(page_tokens_ > 0, "CapacityGovernor: page_tokens must be >= 1");
    check(total_pages_ > 0, "CapacityGovernor: pool must hold at least one page");
}

std::size_t CapacityGovernor::predict_pages(std::size_t prompt_tokens,
                                            std::size_t max_new) const noexcept {
    return static_cast<std::size_t>(div_ceil(prompt_tokens + max_new, page_tokens_));
}

bool CapacityGovernor::try_admit(std::size_t pages) {
    if (committed_ + shared_ + pages > total_pages_) {
        ++stats_.deferral_events;
        return false;
    }
    committed_ += pages;
    ++stats_.admitted;
    stats_.peak_committed_pages = std::max(stats_.peak_committed_pages, committed_);
    return true;
}

void CapacityGovernor::release(std::size_t pages) {
    check(pages <= committed_, "CapacityGovernor: releasing more than committed");
    committed_ -= pages;
}

void CapacityGovernor::charge_shared(std::size_t pages) {
    check(committed_ + shared_ + pages <= total_pages_,
          "CapacityGovernor: shared charge exceeds the pool");
    shared_ += pages;
}

void CapacityGovernor::release_shared(std::size_t pages) {
    check(pages <= shared_, "CapacityGovernor: releasing more shared than charged");
    shared_ -= pages;
}

}  // namespace efld::kvpool
