#include "kvpool/kv_block_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::kvpool {

std::uint64_t page_bytes(const model::ModelConfig& cfg, const model::QuantScheme& scheme,
                         std::size_t page_tokens) {
    check(page_tokens > 0, "page_bytes: page_tokens must be >= 1");
    // Reuse the footprint model the planner and the address map already agree
    // on: KV bytes are linear in max_seq_len, so a page costs the footprint of
    // a page_tokens-long reservation. Pack words flush every 16 tokens, which
    // compute_footprint rounds up — page_tokens that are a multiple of 16
    // therefore price exactly; smaller pages price conservatively (each page
    // still owns whole pack words, as it would in DDR).
    model::ModelConfig probe = cfg;
    probe.max_seq_len = page_tokens;
    const model::ModelFootprint f = model::compute_footprint(probe, scheme);
    return f.kv_total_bytes();
}

std::size_t pages_for_budget(const model::ModelConfig& cfg,
                             const model::QuantScheme& scheme,
                             std::uint64_t budget_bytes, std::size_t page_tokens) {
    const std::uint64_t per_page = page_bytes(cfg, scheme, page_tokens);
    return static_cast<std::size_t>(budget_bytes / per_page);
}

KvBlockPool::KvBlockPool(KvPoolConfig cfg) : cfg_(cfg) {
    check(cfg_.page_tokens > 0, "KvBlockPool: page_tokens must be >= 1");
    check(cfg_.n_pages > 0, "KvBlockPool: pool must hold at least one page");
    free_.reserve(cfg_.n_pages);
    // Stack ordered so the lowest page ids are handed out first.
    for (std::size_t p = cfg_.n_pages; p > 0; --p) free_.push_back(p - 1);
    refcount_.assign(cfg_.n_pages, 0);
}

std::size_t KvBlockPool::create_sequence() {
    for (std::size_t s = 0; s < seqs_.size(); ++s) {
        if (!seqs_[s].live) {
            seqs_[s].live = true;
            return s;
        }
    }
    seqs_.push_back(Sequence{.live = true});
    return seqs_.size() - 1;
}

const KvBlockPool::Sequence& KvBlockPool::seq_checked(std::size_t seq) const {
    check(seq < seqs_.size() && seqs_[seq].live, "KvBlockPool: unknown sequence");
    return seqs_[seq];
}

void KvBlockPool::reset_sequence(std::size_t seq) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    // Reverse order so a lone holder's pages restack lowest-id-first; shared
    // pages just shed this sequence's reference and stay resident.
    for (auto it = s.pages.rbegin(); it != s.pages.rend(); ++it) release_page(*it);
    s.pages.clear();
    s.tokens = 0;
}

void KvBlockPool::free_sequence(std::size_t seq) {
    reset_sequence(seq);
    seqs_[seq].live = false;
}

bool KvBlockPool::append_token(std::size_t seq) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    if (s.tokens == s.pages.size() * cfg_.page_tokens) {
        if (free_.empty()) return false;  // exhausted: sequence unchanged
        s.pages.push_back(free_.back());
        free_.pop_back();
        refcount_[s.pages.back()] = 1;
    } else {
        check(refcount_[write_page(s)] == 1,
              "KvBlockPool: append into a shared page (resolve with cow_page "
              "first)");
    }
    ++s.tokens;
    return true;
}

std::size_t KvBlockPool::seq_tokens(std::size_t seq) const {
    return seq_checked(seq).tokens;
}

const std::vector<std::size_t>& KvBlockPool::block_table(std::size_t seq) const {
    return seq_checked(seq).pages;
}

KvBlockPool::PageSlot KvBlockPool::locate(std::size_t seq, std::size_t token) const {
    const Sequence& s = seq_checked(seq);
    check(token < s.tokens, "KvBlockPool: token beyond sequence length");
    return {s.pages[token / cfg_.page_tokens], token % cfg_.page_tokens};
}

void KvBlockPool::retain_page(std::size_t page) {
    check(page < cfg_.n_pages, "KvBlockPool: retain of an unknown page");
    check(refcount_[page] > 0, "KvBlockPool: retain of a free page");
    ++refcount_[page];
}

void KvBlockPool::release_page(std::size_t page) {
    check(page < cfg_.n_pages, "KvBlockPool: release of an unknown page");
    check(refcount_[page] > 0, "KvBlockPool: release of a free page");
    if (--refcount_[page] == 0) free_.push_back(page);
}

std::uint32_t KvBlockPool::page_refcount(std::size_t page) const {
    check(page < cfg_.n_pages, "KvBlockPool: refcount of an unknown page");
    return refcount_[page];
}

std::uint64_t KvBlockPool::refcount_sum() const {
    std::uint64_t sum = 0;
    for (const std::uint32_t rc : refcount_) sum += rc;
    return sum;
}

void KvBlockPool::adopt_pages(std::size_t seq, std::span<const std::size_t> pages,
                              std::size_t tokens) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    check(s.tokens == 0 && s.pages.empty(),
          "KvBlockPool: adopt_pages into a non-empty sequence");
    check(tokens <= pages.size() * cfg_.page_tokens &&
              (pages.empty() || tokens > (pages.size() - 1) * cfg_.page_tokens),
          "KvBlockPool: adopted token count does not match the page chain");
    for (const std::size_t p : pages) retain_page(p);
    s.pages.assign(pages.begin(), pages.end());
    s.tokens = tokens;
}

std::size_t KvBlockPool::write_page(const Sequence& s) const {
    if (s.tokens == s.pages.size() * cfg_.page_tokens) return kNoPage;
    return s.pages[s.tokens / cfg_.page_tokens];
}

bool KvBlockPool::write_needs_cow(std::size_t seq) const {
    const Sequence& s = seq_checked(seq);
    const std::size_t p = write_page(s);
    return p != kNoPage && refcount_[p] > 1;
}

KvBlockPool::CowResult KvBlockPool::cow_page(std::size_t seq) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    const std::size_t shared = write_page(s);
    check(shared != kNoPage && refcount_[shared] > 1,
          "KvBlockPool: cow_page with no shared write target");
    CowResult r;
    r.old_page = shared;
    if (free_.empty()) return r;  // refuse without corruption
    r.new_page = free_.back();
    free_.pop_back();
    refcount_[r.new_page] = 1;
    s.pages[s.tokens / cfg_.page_tokens] = r.new_page;
    --refcount_[shared];  // > 1 before, so never frees here
    r.ok = true;
    cow_copies_.fetch_add(1, std::memory_order_relaxed);
    return r;
}

}  // namespace efld::kvpool
