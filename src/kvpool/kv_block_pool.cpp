#include "kvpool/kv_block_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::kvpool {

std::uint64_t page_bytes(const model::ModelConfig& cfg, const model::QuantScheme& scheme,
                         std::size_t page_tokens) {
    check(page_tokens > 0, "page_bytes: page_tokens must be >= 1");
    // Reuse the footprint model the planner and the address map already agree
    // on: KV bytes are linear in max_seq_len, so a page costs the footprint of
    // a page_tokens-long reservation. Pack words flush every 16 tokens, which
    // compute_footprint rounds up — page_tokens that are a multiple of 16
    // therefore price exactly; smaller pages price conservatively (each page
    // still owns whole pack words, as it would in DDR).
    model::ModelConfig probe = cfg;
    probe.max_seq_len = page_tokens;
    const model::ModelFootprint f = model::compute_footprint(probe, scheme);
    return f.kv_total_bytes();
}

std::size_t pages_for_budget(const model::ModelConfig& cfg,
                             const model::QuantScheme& scheme,
                             std::uint64_t budget_bytes, std::size_t page_tokens) {
    const std::uint64_t per_page = page_bytes(cfg, scheme, page_tokens);
    return static_cast<std::size_t>(budget_bytes / per_page);
}

KvBlockPool::KvBlockPool(KvPoolConfig cfg) : cfg_(cfg) {
    check(cfg_.page_tokens > 0, "KvBlockPool: page_tokens must be >= 1");
    check(cfg_.n_pages > 0, "KvBlockPool: pool must hold at least one page");
    free_.reserve(cfg_.n_pages);
    // Stack ordered so the lowest page ids are handed out first.
    for (std::size_t p = cfg_.n_pages; p > 0; --p) free_.push_back(p - 1);
}

std::size_t KvBlockPool::create_sequence() {
    for (std::size_t s = 0; s < seqs_.size(); ++s) {
        if (!seqs_[s].live) {
            seqs_[s].live = true;
            return s;
        }
    }
    seqs_.push_back(Sequence{.live = true});
    return seqs_.size() - 1;
}

const KvBlockPool::Sequence& KvBlockPool::seq_checked(std::size_t seq) const {
    check(seq < seqs_.size() && seqs_[seq].live, "KvBlockPool: unknown sequence");
    return seqs_[seq];
}

void KvBlockPool::reset_sequence(std::size_t seq) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    for (auto it = s.pages.rbegin(); it != s.pages.rend(); ++it) free_.push_back(*it);
    s.pages.clear();
    s.tokens = 0;
}

void KvBlockPool::free_sequence(std::size_t seq) {
    reset_sequence(seq);
    seqs_[seq].live = false;
}

bool KvBlockPool::append_token(std::size_t seq) {
    (void)seq_checked(seq);
    Sequence& s = seqs_[seq];
    if (s.tokens == s.pages.size() * cfg_.page_tokens) {
        if (free_.empty()) return false;  // exhausted: sequence unchanged
        s.pages.push_back(free_.back());
        free_.pop_back();
    }
    ++s.tokens;
    return true;
}

std::size_t KvBlockPool::seq_tokens(std::size_t seq) const {
    return seq_checked(seq).tokens;
}

const std::vector<std::size_t>& KvBlockPool::block_table(std::size_t seq) const {
    return seq_checked(seq).pages;
}

KvBlockPool::PageSlot KvBlockPool::locate(std::size_t seq, std::size_t token) const {
    const Sequence& s = seq_checked(seq);
    check(token < s.tokens, "KvBlockPool: token beyond sequence length");
    return {s.pages[token / cfg_.page_tokens], token % cfg_.page_tokens};
}

}  // namespace efld::kvpool
