// Capacity-aware admission control over a paged KV budget.
//
// The governor answers ONE question for the serving layer: can this request
// join the batch without ever running the KV pool dry? It prices a request at
// its worst case — ceil((prompt + max_new) / page_tokens) pages — and admits
// only while the sum of all admitted worst cases fits the pool. Admitted
// sessions therefore can never hit pool exhaustion mid-decode (no preemption
// or swapping machinery needed), yet concurrency still scales far past a
// static max_batch because requests are priced at *their* lengths, not at the
// context window: a 64-token chat request commits 4 pages of a 16-token-page
// pool where a static reservation would pin 64.
//
// This is deliberately a commitment ledger, decoupled from the KvBlockPool's
// physical free list: commitments are made at admission (before any page is
// touched) and released at retirement, and the pool's in-use count trails the
// committed count as sequences actually grow. Both are sized from the same
// MemoryPlanner-derived DDR budget.
#pragma once

#include <cstdint>

#include "model/config.hpp"
#include "runtime/memory_planner.hpp"

namespace efld::kvpool {

// The DDR a device plan leaves for KV paging: the planner's single-session
// KV reservation plus whatever is free after weights and firmware. (When even
// the weights do not fit, there is no budget at all.)
[[nodiscard]] std::uint64_t kv_budget_from_plan(const runtime::MemoryPlan& plan);

struct GovernorStats {
    std::size_t admitted = 0;         // requests admitted
    std::size_t deferral_events = 0;  // admission attempts refused for capacity
    std::size_t peak_committed_pages = 0;
};

class CapacityGovernor {
public:
    CapacityGovernor(std::size_t total_pages, std::size_t page_tokens);

    // Worst-case page demand of a (prompt_tokens, max_new) request.
    [[nodiscard]] std::size_t predict_pages(std::size_t prompt_tokens,
                                            std::size_t max_new) const noexcept;

    // Commits `pages` if they fit next to every prior commitment (and the
    // shared-prefix pins); false (and a recorded deferral) otherwise. A
    // request that is refused stays queued and is re-considered when capacity
    // frees.
    [[nodiscard]] bool try_admit(std::size_t pages);
    // Returns a retired request's commitment to the budget.
    void release(std::size_t pages);

    // Shared-prefix ledger: pages the backend's prefix index pins resident,
    // charged ONCE here no matter how many sessions map them — each sharing
    // session's own commitment is discounted by its covered full pages, which
    // is exactly what prevents double-charging the same physical page.
    void charge_shared(std::size_t pages);
    void release_shared(std::size_t pages);
    [[nodiscard]] std::size_t shared_pages() const noexcept { return shared_; }
    // Headroom the serving layer may hand register_prefix as max_new_pages:
    // pins never take more than half the pool, and never eat into pages
    // already committed to live sessions.
    [[nodiscard]] std::size_t shared_budget() const noexcept {
        const std::size_t cap = total_pages_ / 2;
        const std::size_t used = committed_ + shared_;
        const std::size_t headroom = used < total_pages_ ? total_pages_ - used : 0;
        return std::min(cap > shared_ ? cap - shared_ : 0, headroom);
    }

    // Whether `pages` could EVER be admitted (an empty pool). Requests past
    // this bound must be rejected at submit, or they would defer forever.
    [[nodiscard]] bool ever_admissible(std::size_t pages) const noexcept {
        return pages <= total_pages_;
    }

    [[nodiscard]] std::size_t total_pages() const noexcept { return total_pages_; }
    [[nodiscard]] std::size_t committed_pages() const noexcept { return committed_; }
    [[nodiscard]] std::size_t page_tokens() const noexcept { return page_tokens_; }
    [[nodiscard]] double utilization() const noexcept {
        return total_pages_ > 0
                   ? static_cast<double>(committed_) / static_cast<double>(total_pages_)
                   : 0.0;
    }
    [[nodiscard]] const GovernorStats& stats() const noexcept { return stats_; }

private:
    std::size_t total_pages_ = 0;
    std::size_t page_tokens_ = 0;
    std::size_t committed_ = 0;
    std::size_t shared_ = 0;  // prefix-index pins, charged once
    GovernorStats stats_;
};

}  // namespace efld::kvpool
