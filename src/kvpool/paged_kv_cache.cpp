#include "kvpool/paged_kv_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace efld::kvpool {

namespace {
// Appends share the contiguous caches' cadence: every layer writes the same
// position, the token advances after the last layer. The cadence counter is
// advanced only AFTER the pool grants the token, so a refused append (pool
// exhausted) leaves the sequence in a consistent, retryable state.
bool first_layer_of_position(std::vector<std::size_t>& appended, std::size_t seq) {
    if (seq >= appended.size()) appended.resize(seq + 1, 0);
    return appended[seq] == 0;
}

void advance_layer_cadence(std::vector<std::size_t>& appended, std::size_t seq,
                           std::size_t n_layers) {
    if (++appended[seq] == n_layers) appended[seq] = 0;
}
}  // namespace

PagedKvArena::PagedKvArena(const model::ModelConfig& cfg, KvPoolConfig pool_cfg)
    : cfg_(cfg), pool_(pool_cfg) {
    page_floats_ =
        cfg_.n_layers * cfg_.n_kv_heads * pool_.page_tokens() * cfg_.head_dim();
    k_.resize(pool_.pages_total() * page_floats_);
    v_.resize(pool_.pages_total() * page_floats_);
}

void PagedKvArena::free_sequence(std::size_t seq) {
    pool_.free_sequence(seq);
    if (seq < appended_this_pos_.size()) appended_this_pos_[seq] = 0;
}

void PagedKvArena::reset_sequence(std::size_t seq) {
    pool_.reset_sequence(seq);
    if (seq < appended_this_pos_.size()) appended_this_pos_[seq] = 0;
}

void PagedKvArena::append(std::size_t seq, std::size_t layer, std::span<const float> k,
                          std::span<const float> v) {
    check(layer < cfg_.n_layers, "PagedKvArena: layer out of range");
    check(k.size() == cfg_.kv_dim() && v.size() == cfg_.kv_dim(),
          "PagedKvArena: bad vector size");
    std::size_t token = pool_.seq_tokens(seq);
    if (first_layer_of_position(appended_this_pos_, seq)) {
        if (pool_.write_needs_cow(seq)) {
            // Writing into a page another holder still maps: give this
            // sequence a private copy of the slab first.
            const KvBlockPool::CowResult cow = pool_.cow_page(seq);
            check(cow.ok,
                  "PagedKvArena: no free page for a copy-on-write divergence "
                  "(admission should have reserved it)");
            std::copy_n(k_.data() + cow.old_page * page_floats_, page_floats_,
                        k_.data() + cow.new_page * page_floats_);
            std::copy_n(v_.data() + cow.old_page * page_floats_, page_floats_,
                        v_.data() + cow.new_page * page_floats_);
        }
        check(pool_.append_token(seq),
              "PagedKvArena: KV pool exhausted (admission should have deferred "
              "this sequence)");
    } else {
        --token;  // later layers write the position the first layer opened
    }
    advance_layer_cadence(appended_this_pos_, seq, cfg_.n_layers);
    const KvBlockPool::PageSlot slot = pool_.locate(seq, token);
    const std::size_t hd = cfg_.head_dim();
    float* kp = k_.data() + slot.page * page_floats_;
    float* vp = v_.data() + slot.page * page_floats_;
    for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
        const std::size_t off = page_off(layer, h, slot.offset);
        std::copy_n(k.data() + h * hd, hd, kp + off);
        std::copy_n(v.data() + h * hd, hd, vp + off);
    }
}

std::span<const float> PagedKvArena::gather(const std::vector<float>& store,
                                            std::size_t seq, std::size_t layer,
                                            std::size_t kv_head, std::size_t len,
                                            std::span<float> out) const {
    check(layer < cfg_.n_layers && kv_head < cfg_.n_kv_heads,
          "PagedKvArena: bad head");
    check(len <= pool_.seq_tokens(seq), "PagedKvArena: history longer than sequence");
    const std::size_t hd = cfg_.head_dim();
    check(out.size() >= len * hd, "PagedKvArena: gather scratch too small");
    const std::vector<std::size_t>& table = pool_.block_table(seq);
    const std::size_t pt = pool_.page_tokens();
    // One contiguous copy per page: the host-side mirror of the per-page DDR
    // bursts the cycle model prices.
    for (std::size_t t = 0; t < len; t += pt) {
        const std::size_t rows = std::min(pt, len - t);
        const float* src = store.data() + table[t / pt] * page_floats_ +
                           page_off(layer, kv_head, 0);
        std::copy_n(src, rows * hd, out.data() + t * hd);
    }
    return out.first(len * hd);
}

void PagedKvArena::adopt_prefix(std::size_t seq, std::span<const std::size_t> pages,
                                std::size_t tokens) {
    pool_.adopt_pages(seq, pages, tokens);
    if (seq >= appended_this_pos_.size()) appended_this_pos_.resize(seq + 1, 0);
    appended_this_pos_[seq] = 0;  // adoption lands on a position boundary
}

std::span<const float> PagedKvArena::gather_keys(std::size_t seq, std::size_t layer,
                                                 std::size_t kv_head, std::size_t len,
                                                 std::span<float> out) const {
    return gather(k_, seq, layer, kv_head, len, out);
}

std::span<const float> PagedKvArena::gather_values(std::size_t seq, std::size_t layer,
                                                   std::size_t kv_head, std::size_t len,
                                                   std::span<float> out) const {
    return gather(v_, seq, layer, kv_head, len, out);
}

PagedQuantizedKvArena::PagedQuantizedKvArena(const model::ModelConfig& cfg,
                                             KvPoolConfig pool_cfg, unsigned kv_bits)
    : cfg_(cfg), kv_bits_(kv_bits), pool_(pool_cfg) {
    const std::size_t entries_per_page =
        cfg_.n_layers * cfg_.n_kv_heads * pool_.page_tokens();
    k_.resize(pool_.pages_total() * entries_per_page);
    v_.resize(pool_.pages_total() * entries_per_page);
}

void PagedQuantizedKvArena::free_sequence(std::size_t seq) {
    pool_.free_sequence(seq);
    if (seq < appended_this_pos_.size()) appended_this_pos_[seq] = 0;
}

void PagedQuantizedKvArena::reset_sequence(std::size_t seq) {
    pool_.reset_sequence(seq);
    if (seq < appended_this_pos_.size()) appended_this_pos_[seq] = 0;
}

void PagedQuantizedKvArena::append(std::size_t seq, std::size_t layer,
                                   std::span<const float> k, std::span<const float> v) {
    check(layer < cfg_.n_layers, "PagedQuantizedKvArena: layer out of range");
    check(k.size() == cfg_.kv_dim() && v.size() == cfg_.kv_dim(),
          "PagedQuantizedKvArena: bad vector size");
    std::size_t token = pool_.seq_tokens(seq);
    if (first_layer_of_position(appended_this_pos_, seq)) {
        if (pool_.write_needs_cow(seq)) {
            const KvBlockPool::CowResult cow = pool_.cow_page(seq);
            check(cow.ok,
                  "PagedQuantizedKvArena: no free page for a copy-on-write "
                  "divergence (admission should have reserved it)");
            const std::size_t epp =
                cfg_.n_layers * cfg_.n_kv_heads * pool_.page_tokens();
            // Deep entry copies: the sharers keep their codes untouched.
            for (std::size_t i = 0; i < epp; ++i) {
                k_[cow.new_page * epp + i] = k_[cow.old_page * epp + i];
                v_[cow.new_page * epp + i] = v_[cow.old_page * epp + i];
            }
        }
        check(pool_.append_token(seq),
              "PagedQuantizedKvArena: KV pool exhausted (admission should have "
              "deferred this sequence)");
    } else {
        --token;
    }
    advance_layer_cadence(appended_this_pos_, seq, cfg_.n_layers);
    const KvBlockPool::PageSlot slot = pool_.locate(seq, token);
    const std::size_t hd = cfg_.head_dim();
    for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
        // Per-head quantization, same granularity as QuantizedKvCache (and
        // the SPU quantizer / Fig. 4B FIFO).
        quant::KvQuantized qk = quant::kv_quantize_bits(k.subspan(h * hd, hd), kv_bits_);
        quant::KvQuantized qv = quant::kv_quantize_bits(v.subspan(h * hd, hd), kv_bits_);
        k_[entry_idx(slot.page, layer, h, slot.offset)] = {std::move(qk.codes),
                                                           qk.params};
        v_[entry_idx(slot.page, layer, h, slot.offset)] = {std::move(qv.codes),
                                                           qv.params};
    }
}

void PagedQuantizedKvArena::adopt_prefix(std::size_t seq,
                                         std::span<const std::size_t> pages,
                                         std::size_t tokens) {
    pool_.adopt_pages(seq, pages, tokens);
    if (seq >= appended_this_pos_.size()) appended_this_pos_.resize(seq + 1, 0);
    appended_this_pos_[seq] = 0;
}

std::span<const float> PagedQuantizedKvArena::dequant(
    const std::vector<Entry>& store, std::size_t seq, std::size_t layer,
    std::size_t kv_head, std::size_t len, std::span<float> out) const {
    check(layer < cfg_.n_layers && kv_head < cfg_.n_kv_heads,
          "PagedQuantizedKvArena: bad head");
    check(len <= pool_.seq_tokens(seq),
          "PagedQuantizedKvArena: history longer than sequence");
    const std::size_t hd = cfg_.head_dim();
    check(out.size() >= len * hd, "PagedQuantizedKvArena: dequant scratch too small");
    const std::vector<std::size_t>& table = pool_.block_table(seq);
    const std::size_t pt = pool_.page_tokens();
    for (std::size_t t = 0; t < len; ++t) {
        const Entry& e = store[entry_idx(table[t / pt], layer, kv_head, t % pt)];
        quant::kv_dequantize_into(e.codes, e.params, out.subspan(t * hd, hd));
    }
    return out.first(len * hd);
}

std::span<const float> PagedQuantizedKvArena::dequant_keys_into(
    std::size_t seq, std::size_t layer, std::size_t kv_head, std::size_t len,
    std::span<float> out) const {
    return dequant(k_, seq, layer, kv_head, len, out);
}

std::span<const float> PagedQuantizedKvArena::dequant_values_into(
    std::size_t seq, std::size_t layer, std::size_t kv_head, std::size_t len,
    std::span<float> out) const {
    return dequant(v_, seq, layer, kv_head, len, out);
}

}  // namespace efld::kvpool
