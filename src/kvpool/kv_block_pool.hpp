// Paged KV-cache bookkeeping: fixed-size token pages behind per-sequence
// block tables.
//
// The paper's second axis is *capacity* utilization: on the KV260 the DDR
// left over after the weights is the scarce resource, and reserving a full
// max_seq_len KV region per concurrent session wastes most of it — a serving
// request that decodes 64 tokens strands 15/16ths of a 1024-token
// reservation. This pool carves the KV budget into pages of `page_tokens`
// tokens instead (one page = that many tokens of K+V state across every
// layer and KV head), hands pages to sequences on demand as they grow, and
// returns them the moment a sequence retires — so the number of concurrent
// sessions is bounded by the DDR actually *used*, not by the worst case.
//
// The pool is pure bookkeeping: free-list plus block tables mapping each
// sequence's logical token index to a physical page. Physical storage (the
// host engine's paged arenas, the device's DDR KV regions) indexes through
// it. Page sizing defaults to 16 tokens — the Fig. 4B scale-zero FIFO flush
// granularity — so a page boundary never splits a pack word.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bitpack.hpp"
#include "model/config.hpp"

namespace efld::kvpool {

struct KvPoolConfig {
    std::size_t page_tokens = 16;  // tokens per page (16 = pack-word aligned)
    std::size_t n_pages = 0;       // physical pages in the pool
};

// Modeled DDR bytes one page occupies for a (config, scheme) pair:
// page_tokens tokens of K and V codes across every layer and KV head, plus
// their scale-zero packs. This is the quantum the capacity budget is spent in.
[[nodiscard]] std::uint64_t page_bytes(const model::ModelConfig& cfg,
                                       const model::QuantScheme& scheme,
                                       std::size_t page_tokens);

// How many pages a DDR byte budget affords (floor).
[[nodiscard]] std::size_t pages_for_budget(const model::ModelConfig& cfg,
                                           const model::QuantScheme& scheme,
                                           std::uint64_t budget_bytes,
                                           std::size_t page_tokens);

class KvBlockPool {
public:
    static constexpr std::size_t kNoPage = static_cast<std::size_t>(-1);

    explicit KvBlockPool(KvPoolConfig cfg);

    // Opens a new sequence (empty block table). Ids are reused smallest-first
    // after free_sequence, so a fixed slot population sees stable ids.
    [[nodiscard]] std::size_t create_sequence();
    // Returns every page to the free list and retires the id.
    void free_sequence(std::size_t seq);
    // Returns the pages but keeps the id with an empty table (slot reuse).
    void reset_sequence(std::size_t seq);

    // Grows `seq` by one token, taking a fresh page when the token crosses a
    // page boundary. Returns false — with the sequence unchanged — when the
    // pool has no free page for it (capacity exhausted; the admission layer
    // exists to make this unreachable for admitted sequences). Throws when the
    // write would land in a page shared with another holder: callers must
    // resolve write_needs_cow() via cow_page() first, so a shared page can
    // never be silently corrupted.
    [[nodiscard]] bool append_token(std::size_t seq);

    // ---- prefix sharing: refcounted pages + copy-on-write ----
    //
    // Pages are refcounted (a freshly appended page holds one reference, its
    // owner's). The prefix layer takes extra references with retain_page —
    // from a PrefixIndex pinning a registered prefix resident, or from
    // adopt_pages mapping a matched prefix into a new sequence — and every
    // holder releases symmetrically; a page returns to the free list only at
    // refcount zero. The pool stays pure bookkeeping: *what* the bytes in a
    // shared page mean is the arenas' business.

    // Takes one extra reference on an in-use page.
    void retain_page(std::size_t page);
    // Drops one reference; the page rejoins the free list at zero.
    void release_page(std::size_t page);
    [[nodiscard]] std::uint32_t page_refcount(std::size_t page) const;
    // Sum of refcounts over in-use pages (property-test invariant surface).
    [[nodiscard]] std::uint64_t refcount_sum() const;

    // Maps `pages` (a matched prefix chain, already resident) into the empty
    // sequence `seq` at `tokens` logical tokens, retaining each page. tokens
    // may end mid-last-page — the tail of that page is unreachable history the
    // sequence overwrites via CoW when it grows into it.
    void adopt_pages(std::size_t seq, std::span<const std::size_t> pages,
                     std::size_t tokens);

    // True when the next append_token would write into a page whose refcount
    // is > 1 (shared) — the caller must cow_page() first.
    [[nodiscard]] bool write_needs_cow(std::size_t seq) const;

    struct CowResult {
        bool ok = false;             // false: no free page; seq is unchanged
        std::size_t old_page = kNoPage;  // the shared page (still valid, for copying)
        std::size_t new_page = kNoPage;  // seq's private replacement
    };
    // Replaces the shared page the next append would write with a private
    // copy: takes a free page, swaps it into seq's block table, and drops
    // seq's reference on the shared original. Refuses without corruption
    // (ok = false, nothing changed) when the pool has no free page. The
    // caller copies the physical bytes old_page -> new_page.
    [[nodiscard]] CowResult cow_page(std::size_t seq);

    // CoW copies performed over the pool's lifetime (metrics; readable from
    // any thread).
    [[nodiscard]] std::uint64_t cow_copies() const noexcept {
        return cow_copies_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t seq_tokens(std::size_t seq) const;
    // Physical pages backing `seq`, in logical order (the block table).
    [[nodiscard]] const std::vector<std::size_t>& block_table(std::size_t seq) const;

    struct PageSlot {
        std::size_t page = kNoPage;  // physical page id
        std::size_t offset = 0;      // token offset within the page
    };
    // Physical location of logical token `token` of `seq`.
    [[nodiscard]] PageSlot locate(std::size_t seq, std::size_t token) const;

    [[nodiscard]] std::size_t page_tokens() const noexcept { return cfg_.page_tokens; }
    [[nodiscard]] std::size_t pages_total() const noexcept { return cfg_.n_pages; }
    [[nodiscard]] std::size_t pages_free() const noexcept { return free_.size(); }
    [[nodiscard]] std::size_t pages_used() const noexcept {
        return cfg_.n_pages - free_.size();
    }
    // Pages `n_tokens` tokens occupy (the governor's demand unit).
    [[nodiscard]] std::size_t pages_for_tokens(std::size_t n_tokens) const noexcept {
        return static_cast<std::size_t>(div_ceil(n_tokens, cfg_.page_tokens));
    }

private:
    struct Sequence {
        bool live = false;
        std::size_t tokens = 0;
        std::vector<std::size_t> pages;  // block table, logical page order
    };

    [[nodiscard]] const Sequence& seq_checked(std::size_t seq) const;

    // Page the next append_token of `seq` writes into, or kNoPage when the
    // write opens a fresh page (a fresh page is never shared).
    [[nodiscard]] std::size_t write_page(const Sequence& s) const;

    KvPoolConfig cfg_;
    std::vector<std::size_t> free_;      // free physical page ids (stack)
    std::vector<Sequence> seqs_;         // index = sequence id
    std::vector<std::uint32_t> refcount_;  // per physical page; 0 = free
    std::atomic<std::uint64_t> cow_copies_{0};
};

}  // namespace efld::kvpool
