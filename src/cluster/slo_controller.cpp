#include "cluster/slo_controller.hpp"

#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace efld::cluster {

namespace {

const obs::Clock* resolve_clock(const SloController::Options& opts,
                                const ClusterRouter& router) {
    if (opts.clock != nullptr) return opts.clock;
    if (router.options().shard.clock != nullptr) {
        return router.options().shard.clock.get();
    }
    return &obs::steady_clock();
}

}  // namespace

SloController::SloController(ClusterRouter& router, Options opts)
    : router_(&router),
      opts_(std::move(opts)),
      clock_(resolve_clock(opts_, router)),
      store_(opts_.store),
      engine_(&store_),
      sampler_([this] { return router_->metrics_snapshot(); }, &store_,
               obs::MetricsSampler::Options{opts_.sample_interval_ns, clock_}) {
    for (obs::AlertRule& r : obs::parse_alert_rules(opts_.rules)) {
        engine_.add_rule(std::move(r));
    }
    if (!opts_.flight_dir.empty()) {
        obs::FlightRecorder::Options fr;
        fr.dir = opts_.flight_dir;
        fr.clock = clock_;
        fr.tail_window_ns = opts_.flight_tail_ns;
        recorder_ = std::make_unique<obs::FlightRecorder>(fr);
        if (opts_.capture_on_shard_failure) {
            router_->set_failure_observer([this](std::size_t shard) {
                capture_flight("shard_failure:" + std::to_string(shard));
            });
        }
    }
    engine_.subscribe([this](const obs::AlertRule& rule,
                             const obs::AlertEngine::Transition& t) {
        on_transition(rule, t);
    });
    sampler_.set_on_sample([this](std::uint64_t now_ns) {
        engine_.evaluate(now_ns);
    });
}

SloController::~SloController() { stop(); }

void SloController::start() { sampler_.start(); }
void SloController::stop() { sampler_.stop(); }

void SloController::on_transition(const obs::AlertRule& rule,
                                  const obs::AlertEngine::Transition& t) {
    // Trace the transition on the cluster's shared ring: request id carries
    // the rule index (alerts are cluster-scoped), arg the value x1000 so a
    // fractional burn rate survives the integer field.
    const std::shared_ptr<obs::TraceRecorder>& ring = router_->options().shard.trace;
    if (ring != nullptr) {
        obs::TraceEvent ev;
        bool traced = true;
        if (t.to == obs::AlertState::kPending) {
            ev = obs::TraceEvent::kAlertPending;
        } else if (t.to == obs::AlertState::kFiring) {
            ev = obs::TraceEvent::kAlertFiring;
        } else if (t.from == obs::AlertState::kFiring) {
            ev = obs::TraceEvent::kAlertResolved;
        } else {
            traced = false;  // pending cancelled before firing: not an incident
        }
        if (traced) {
            ring->record(t.rule, 0, ev,
                         static_cast<std::uint64_t>(t.value * 1000.0));
        }
    }
    if (t.to == obs::AlertState::kFiring) {
        log_warn("alert firing: ", rule.name, " (value ", t.value, ")");
        if (opts_.governor != nullptr) opts_.governor->on_alert_firing();
        if (opts_.capture_on_alert) capture_flight("alert:" + rule.name);
    } else if (t.from == obs::AlertState::kFiring &&
               t.to == obs::AlertState::kInactive) {
        log_info("alert resolved: ", rule.name);
        if (opts_.governor != nullptr) opts_.governor->on_alert_resolved();
    }
}

std::string SloController::capture_flight(const std::string& reason) {
    if (recorder_ == nullptr) return "";
    std::vector<obs::TraceRecord> trace;
    if (router_->options().shard.trace != nullptr) {
        trace = router_->options().shard.trace->snapshot();
    }
    const std::string path =
        recorder_->capture(reason, metrics_snapshot(), trace,
                           router_->profiler_spans(), &engine_, &store_);
    if (!path.empty()) log_info("flight bundle written: ", path);
    return path;
}

obs::MetricsSnapshot SloController::metrics_snapshot() const {
    obs::MetricsSnapshot snap = router_->metrics_snapshot();
    engine_.export_into(snap);
    snap.set_counter("slo_tsdb_ingests_total", store_.ingests());
    snap.set_counter("slo_tsdb_dropped_ingests_total", store_.dropped_ingests());
    snap.set_gauge("slo_tsdb_series", static_cast<double>(store_.series_names().size()));
    if (recorder_ != nullptr) {
        snap.set_counter("slo_flight_captures_total", recorder_->captures());
        snap.set_counter("slo_flight_suppressed_total", recorder_->suppressed());
    }
    return snap;
}

std::string SloController::alerts_json() const { return engine_.to_json(); }

std::string SloController::query_json(const std::string& series,
                                      std::uint64_t window_ns) const {
    return store_.query_json(series, window_ns, clock_->now_ns());
}

}  // namespace efld::cluster
