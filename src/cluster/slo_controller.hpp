// The SLO loop's control plane: wires the TimeSeriesStore, AlertEngine,
// MetricsSampler, FlightRecorder, and OverloadGovernor into one closed loop
// around a ClusterRouter.
//
//   sample  — a background MetricsSampler snapshots the router's merged
//             metrics every interval and ingests them into the TSDB.
//   detect  — after every ingest the AlertEngine evaluates its rules
//             (threshold and multi-window burn-rate) against the store.
//   record  — every alert transition lands in the shared trace ring
//             (kAlertPending/kAlertFiring/kAlertResolved, request id = rule
//             index) and, on firing, triggers a flight-recorder bundle.
//   actuate — firing/resolving alerts engage/disengage the OverloadGovernor
//             in ServeOptions::overload, which the engines' shed sweep and
//             the router's admission/placement paths read directly.
//
// A shard failure ALSO triggers a flight capture, through the router's
// failure observer — registered by this controller when a flight directory
// is configured, after the failover sweep has settled so the bundle holds
// the harvest/resubmit trace events.
//
// Determinism: the controller adds no clocks of its own. sample_now() runs
// one full sample→ingest→evaluate cycle at the injected clock's current
// time, so a ManualClock test reproduces the whole alert lifecycle
// bit-identically with no thread; start() runs the identical cycle on the
// sampler's background thread for production.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/cluster_router.hpp"
#include "obs/alert_engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/time_series.hpp"
#include "serve/overload.hpp"

namespace efld::cluster {

class SloController {
public:
    struct Options {
        // Comma-separated alert rule specs (obs::parse_alert_rules grammar);
        // empty = sample into the TSDB but raise no alerts.
        std::string rules;
        std::uint64_t sample_interval_ns = 1'000'000'000;  // 1s
        // Timebase for samples, alert evaluation, and flight bundles. Null =
        // the router's shard clock if one was injected, else steady.
        const obs::Clock* clock = nullptr;
        // TSDB retention levels (default: 1s x 120 / 10s x 360 / 60s x 1440).
        obs::TimeSeriesStore::Options store;
        // Flight-recorder bundle directory; empty = no flight recorder (and
        // the router's failure observer is left untouched).
        std::string flight_dir;
        std::uint64_t flight_tail_ns = 120'000'000'000ull;
        // Capture a bundle when an alert starts firing / a shard fails.
        bool capture_on_alert = true;
        bool capture_on_shard_failure = true;
        // The actuator to engage on firing alerts — normally the SAME
        // governor placed in ServeOptions::overload before the router was
        // built. Null = detect-and-record only, no actuation.
        std::shared_ptr<serve::OverloadGovernor> governor;
    };

    // Non-owning of the router, which must outlive the controller. Parses
    // the rules eagerly (std::invalid_argument on a grammar error) and — when
    // a flight dir is configured — claims the router's failure observer, so
    // construct before start() and don't set another observer.
    SloController(ClusterRouter& router, Options opts);
    ~SloController();  // stops the sampler

    SloController(const SloController&) = delete;
    SloController& operator=(const SloController&) = delete;

    // Background sampling (production). Idempotent.
    void start();
    void stop();
    [[nodiscard]] bool running() const noexcept { return sampler_.running(); }

    // One deterministic sample→ingest→evaluate cycle at the clock's current
    // time — the ManualClock test path, and what the smoke script's scrape
    // loop rides on between background ticks.
    void sample_now() { sampler_.sample_once(); }

    // The router's merged snapshot plus the alert engine's serve_alert_*
    // series and the controller's own slo_* series — what the wire kMetrics
    // frame serves when an SLO controller is attached.
    [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

    // Wire bodies: kAlerts → the engine's rules + timeline JSON; kQuery →
    // one series' TSDB tail over the trailing window.
    [[nodiscard]] std::string alerts_json() const;
    [[nodiscard]] std::string query_json(const std::string& series,
                                         std::uint64_t window_ns) const;

    // Manual flight capture (the smoke script's "dump now"); returns the
    // bundle path or "" (suppressed / no recorder).
    std::string capture_flight(const std::string& reason);

    [[nodiscard]] const obs::TimeSeriesStore& store() const noexcept {
        return store_;
    }
    [[nodiscard]] const obs::AlertEngine& engine() const noexcept {
        return engine_;
    }
    [[nodiscard]] const obs::FlightRecorder* recorder() const noexcept {
        return recorder_.get();
    }
    [[nodiscard]] std::uint64_t samples() const noexcept {
        return sampler_.samples();
    }

private:
    void on_transition(const obs::AlertRule& rule,
                       const obs::AlertEngine::Transition& t);

    ClusterRouter* router_;
    Options opts_;
    const obs::Clock* clock_;
    obs::TimeSeriesStore store_;
    obs::AlertEngine engine_;
    std::unique_ptr<obs::FlightRecorder> recorder_;
    obs::MetricsSampler sampler_;  // last member: its thread uses the rest
};

}  // namespace efld::cluster
