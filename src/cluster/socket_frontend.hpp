// TCP front-end over the cluster router: the piece that turns the sharded
// serving cluster into a network service.
//
// SocketServer listens on a loopback/any-interface TCP port, reads
// length-prefixed wire::WireRequest frames (one connection per client, one
// in-flight request per connection), routes each through
// ClusterRouter::try_submit, and writes back a wire::WireResponse:
//
//   ok       — the request ran to retirement; tokens + decoded text.
//   rejected — every shard was saturated (429): retry_ms tells the client
//              when to come back. Nothing was enqueued.
//   error    — the request itself is unservable (empty prompt, context
//              overflow, demand past every pool). The connection survives —
//              a bad request is the client's problem, not the transport's.
//   metrics  — the reply to a kind-1 (metrics) request: the cluster's
//              merged metrics snapshot as Prometheus text or JSON
//              (ClusterRouter::metrics_snapshot → obs exposition). Served
//              inline on the same connection; scrapes interleave with
//              generate traffic from other connections.
//   trace    — the reply to a kind-2 (trace) request: the cluster timeline
//              as Chrome-trace-event JSON (ClusterRouter::trace_json →
//              obs/perfetto_export), loadable in ui.perfetto.dev.
//
// Threading: one acceptor thread plus one handler thread per connection. A
// handler blocks on its request's future, so concurrency across clients
// comes from concurrent connections — which is exactly the load shape the
// router's placement policies are built for. Start the router before
// serving traffic (requests submitted earlier queue until the shard drivers
// run).
//
// SocketClient is the matching blocking client: connect once, request() per
// round trip — or request_with_retry(), which reconnects on connection loss
// and backs off (capped exponential, seeded jitter, honoring the server's
// 429 retry hint) until the request lands or the attempt budget runs out.
// Both ends enforce I/O timeouts so one stalled peer can never wedge a
// thread forever. POSIX-only (Linux CI / deployment target).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_router.hpp"
#include "cluster/slo_controller.hpp"
#include "cluster/wire.hpp"
#include "common/rng.hpp"

namespace efld::cluster {

class SocketServer {
public:
    struct Options {
        // Bind address. Loopback by default — the wire protocol is
        // unauthenticated, so exposing it beyond the host is an explicit
        // decision ("0.0.0.0" to listen on every interface).
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;  // 0 = ephemeral; read the bound port()
        int backlog = 16;
        std::size_t max_frame_bytes = wire::kMaxFrameBytes;
        // Per-connection I/O timeouts (0 = wait forever). io_timeout_ms
        // bounds every mid-frame read and every write: a peer that stalls
        // half way through a frame loses the connection instead of pinning a
        // handler thread. idle_timeout_ms separately bounds the wait for the
        // NEXT frame's length prefix — idle-between-requests is normal, so
        // it defaults to unbounded (stop() still kicks idle handlers via
        // shutdown()).
        std::uint32_t io_timeout_ms = 5000;
        std::uint32_t idle_timeout_ms = 0;
    };

    // Binds and listens immediately (so port() is valid before start());
    // throws efld::Error when the socket/bind/listen fails. Non-owning of the
    // router, which must outlive the server.
    explicit SocketServer(ClusterRouter& router)
        : SocketServer(router, Options{}) {}
    SocketServer(ClusterRouter& router, Options opts);
    ~SocketServer();

    // Attaches the SLO control plane (non-owning; must outlive the server).
    // With a controller set, kMetrics scrapes include the serve_alert_*/slo_*
    // series and the kAlerts/kQuery frames are answered; without one those
    // frames get a status-2 error. Set before start().
    void set_slo(SloController* slo) noexcept { slo_ = slo; }

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    // Starts the acceptor thread. Throws if already started.
    void start();
    // Shuts the listener and every live connection down and joins all
    // threads. Idempotent. A handler blocked on an in-flight request
    // cancels it and abandons the connection without a response — the
    // request retires on its shard (as cancelled) whenever the router's
    // drivers next reach a token boundary; stop() never waits for decode.
    void stop();

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }
    // Generate-kind responses written (ok/rejected/error). Metrics scrapes
    // are not counted — the counter stays comparable with the cluster's
    // requests_completed.
    [[nodiscard]] std::size_t requests_served() const noexcept {
        return served_.load(std::memory_order_acquire);
    }

private:
    void accept_loop(int lfd);
    void serve_connection(std::size_t conn_index, int fd);

    ClusterRouter& router_;
    Options opts_;
    SloController* slo_ = nullptr;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptor_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> served_{0};
    // Live connections: fd slots flip to -1 when their handler exits, so
    // stop() can shutdown() stragglers without racing fd reuse.
    std::mutex conn_mu_;
    std::vector<std::thread> conn_threads_;
    std::vector<int> conn_fds_;
};

// Blocking client for the wire protocol. One request in flight at a time.
class SocketClient {
public:
    struct Options {
        // Connection-establishment and per-transfer bounds (0 = block
        // forever, the pre-timeout behavior).
        std::uint32_t connect_timeout_ms = 5000;
        std::uint32_t io_timeout_ms = 5000;
        // request_with_retry(): total attempts (first try included), and the
        // capped exponential backoff between them. The actual sleep before
        // attempt k is jittered uniformly in [d/2, d] with
        // d = min(backoff_cap_ms, backoff_base_ms << (k-1)) — seeded, so a
        // fleet of clients retrying the same outage does not stampede in
        // lockstep, and a test run replays the same schedule. A server 429's
        // retry_ms hint raises the sleep floor when it is larger.
        std::size_t max_attempts = 5;
        std::uint32_t backoff_base_ms = 10;
        std::uint32_t backoff_cap_ms = 1000;
        std::uint64_t jitter_seed = 0x5eedULL;
    };

    // Connects immediately (bounded by connect_timeout_ms); throws
    // efld::Error on refusal or timeout. `host` is an IPv4 dotted quad
    // ("127.0.0.1").
    SocketClient(const std::string& host, std::uint16_t port)
        : SocketClient(host, port, Options{}) {}
    SocketClient(const std::string& host, std::uint16_t port, Options opts);
    ~SocketClient();

    SocketClient(const SocketClient&) = delete;
    SocketClient& operator=(const SocketClient&) = delete;

    // One round trip: frame the request, block (bounded by io_timeout_ms)
    // for the response frame. Throws efld::Error on protocol violations, a
    // dropped connection, or a timed-out transfer — after which the stream
    // may be mid-frame, so the connection is closed; the next
    // request_with_retry() reconnects.
    [[nodiscard]] wire::WireResponse request(const wire::WireRequest& req);

    // request() plus the retry loop a real client needs against a cluster
    // that can lose shards: reconnects after connection loss/timeouts, backs
    // off between attempts (capped exponential with seeded jitter, floored
    // by a 429's retry_ms hint), and returns the first terminal response
    // (kOk or kError — a malformed request does not improve with retrying).
    // Throws efld::Error when every attempt failed; returns the last
    // kRejected response when the budget ran out waiting on backpressure.
    [[nodiscard]] wire::WireResponse request_with_retry(const wire::WireRequest& req);

    // Metrics scrape: one kMetrics round trip, returning the exposition body
    // (Prometheus text by default, JSON on request). Throws efld::Error on
    // transport failure or a non-metrics response.
    [[nodiscard]] std::string metrics(
        wire::MetricsFormat format = wire::MetricsFormat::kPrometheus);

    // Trace dump: one kTraceDump round trip, returning the cluster timeline
    // as Chrome-trace-event JSON (load it in ui.perfetto.dev). Throws
    // efld::Error on transport failure or a non-trace response.
    [[nodiscard]] std::string trace_dump();

    // Alert state: one kAlerts round trip, returning the SLO engine's rules
    // + transition timeline as JSON. Throws efld::Error on transport failure
    // or when the server has no SLO controller (status-2 error).
    [[nodiscard]] std::string alerts();

    // Time-series query: one kQuery round trip, returning `series`' TSDB
    // tail over the trailing `window_ms` (0 = server default) as JSON.
    // Throws like alerts(); an UNKNOWN series is not an error — the server
    // answers with an empty point list.
    [[nodiscard]] std::string query(const std::string& series,
                                    std::uint32_t window_ms = 0);

    [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

private:
    void connect_now();  // throws efld::Error on failure/timeout
    void disconnect() noexcept;
    [[nodiscard]] std::chrono::milliseconds backoff_delay(std::size_t attempt,
                                                          std::uint32_t floor_ms);

    std::string host_;
    std::uint16_t port_ = 0;
    Options opts_;
    Xoshiro256 jitter_;
    int fd_ = -1;
};

}  // namespace efld::cluster
