#include "cluster/socket_frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "serve/serve_types.hpp"

namespace efld::cluster {

namespace {

// Loop write/read until the whole buffer moved (short transfers and EINTR are
// normal on stream sockets). false = peer gone.
bool write_exact(int fd, const std::uint8_t* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t n) {
    while (n > 0) {
        const ssize_t r = ::recv(fd, data, n, 0);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (r == 0) return false;  // orderly shutdown
        data += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload) {
    std::uint8_t len[4];
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    len[0] = static_cast<std::uint8_t>(n & 0xff);
    len[1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
    len[2] = static_cast<std::uint8_t>((n >> 16) & 0xff);
    len[3] = static_cast<std::uint8_t>((n >> 24) & 0xff);
    return write_exact(fd, len, 4) && write_exact(fd, payload.data(), payload.size());
}

// nullopt = connection closed/failed. Throws efld::Error when the peer sends
// a length past `max_bytes` (refuse BEFORE allocating).
std::optional<std::vector<std::uint8_t>> read_frame(int fd, std::size_t max_bytes) {
    std::uint8_t len[4];
    if (!read_exact(fd, len, 4)) return std::nullopt;
    const std::uint32_t n = static_cast<std::uint32_t>(len[0]) |
                            static_cast<std::uint32_t>(len[1]) << 8 |
                            static_cast<std::uint32_t>(len[2]) << 16 |
                            static_cast<std::uint32_t>(len[3]) << 24;
    check(n <= max_bytes, "socket: frame length exceeds the configured bound");
    std::vector<std::uint8_t> payload(n);
    if (n > 0 && !read_exact(fd, payload.data(), n)) return std::nullopt;
    return payload;
}

sockaddr_in loopback_addr(std::uint16_t port, const char* host) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    check(::inet_pton(AF_INET, host, &addr.sin_addr) == 1,
          "socket: invalid IPv4 address");
    return addr;
}

}  // namespace

SocketServer::SocketServer(ClusterRouter& router, Options opts)
    : router_(router), opts_(std::move(opts)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(listen_fd_ >= 0, "socket: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopback_addr(opts_.port, opts_.host.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, opts_.backlog) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw Error("socket: bind/listen failed (port in use?)");
    }
    socklen_t len = sizeof(addr);
    check(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "socket: getsockname failed");
    port_ = ntohs(addr.sin_port);
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
    check(!running(), "SocketServer: already started");
    check(listen_fd_ >= 0, "SocketServer: cannot restart after stop()");
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    // The acceptor takes the descriptor BY VALUE at spawn (happens-before via
    // thread creation): stop()'s listen_fd_ = -1 write then has no concurrent
    // reader, and the close() is what unblocks (then fails) accept().
    acceptor_ = std::thread([this, lfd = listen_fd_] { accept_loop(lfd); });
}

void SocketServer::stop() {
    stopping_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
        // Unblocks accept(); the listener cannot be reused after this.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (acceptor_.joinable()) acceptor_.join();
    {
        // Kick every live connection out of its blocking read; handlers see
        // EOF and exit. Slots already at -1 belong to finished handlers.
        const std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : conn_fds_) {
            if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
        }
    }
    std::vector<std::thread> to_join;
    {
        const std::lock_guard<std::mutex> lock(conn_mu_);
        to_join.swap(conn_threads_);
    }
    for (auto& t : to_join) {
        if (t.joinable()) t.join();
    }
    running_.store(false, std::memory_order_release);
}

void SocketServer::accept_loop(int lfd) {
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            // Transient per-connection/resource failures (client RST before
            // accept, fd pressure) must not kill the acceptor — only a dead
            // listener may.
            if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
                errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
                continue;
            }
            break;  // listener shut down
        }
        const std::lock_guard<std::mutex> lock(conn_mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        // Reap finished handlers (slot flipped to -1) so a long-lived server
        // with connection churn does not accumulate dead thread objects.
        // The exiting handler touches conn_mu_ only to flip its slot, so
        // joining here cannot deadlock.
        for (std::size_t i = 0; i < conn_threads_.size(); ++i) {
            if (conn_fds_[i] == -1 && conn_threads_[i].joinable()) {
                conn_threads_[i].join();
                conn_threads_[i] = std::thread();
            }
        }
        const std::size_t idx = conn_fds_.size();
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(
            [this, idx, fd] { serve_connection(idx, fd); });
    }
}

void SocketServer::serve_connection(std::size_t conn_index, int fd) {
    bool alive = true;
    while (alive && !stopping_.load(std::memory_order_acquire)) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            frame = read_frame(fd, opts_.max_frame_bytes);
        } catch (const Error&) {
            break;  // oversized length prefix: protocol abuse, drop the link
        }
        if (!frame.has_value()) break;  // client closed

        wire::WireResponse resp;
        bool respond = true;
        try {
            const wire::WireRequest wreq = wire::decode_request(*frame);
            serve::Request req;
            req.prompt = wreq.prompt;
            req.max_new_tokens = wreq.max_new_tokens;
            if (wreq.deadline_ms > 0) {
                req.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(wreq.deadline_ms);
            }
            ClusterRouter::SubmitOutcome out = router_.try_submit(std::move(req));
            if (!out.accepted) {
                resp.status = wire::Status::kRejected;
                resp.retry_ms = static_cast<std::uint32_t>(out.retry_hint.count());
            } else {
                // Poll rather than block outright: stop() must not wait for a
                // decode (or, with no driver running, forever). On shutdown
                // the request is cancelled and the connection abandoned
                // without a response.
                const std::shared_future<serve::ServeResult> fut =
                    out.handle.future();
                while (fut.wait_for(std::chrono::milliseconds(20)) !=
                       std::future_status::ready) {
                    if (stopping_.load(std::memory_order_acquire)) {
                        out.handle.cancel();
                        respond = false;
                        alive = false;
                        break;
                    }
                }
                if (respond) {
                    const serve::ServeResult& r = fut.get();
                    resp.status = wire::Status::kOk;
                    resp.id = r.id;
                    resp.finish_reason =
                        static_cast<std::uint8_t>(r.finish_reason);
                    resp.times_deferred =
                        static_cast<std::uint32_t>(r.times_deferred);
                    resp.tokens = r.tokens;
                    resp.text = r.text;
                }
            }
        } catch (const std::exception& e) {
            // Unservable request (validation) — report it, keep the link.
            resp.status = wire::Status::kError;
            resp.error = e.what();
        }
        if (respond) {
            // Count before the write: a client that has already received its
            // reply must never observe requests_served() lagging behind.
            served_.fetch_add(1, std::memory_order_release);
            if (!write_frame(fd, wire::encode_response(resp))) break;
        }
    }
    {
        const std::lock_guard<std::mutex> lock(conn_mu_);
        conn_fds_[conn_index] = -1;  // stop() must not touch a reused fd
    }
    ::close(fd);
}

SocketClient::SocketClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd_ >= 0, "socket: socket() failed");
    sockaddr_in addr = loopback_addr(port, host.c_str());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw Error("socket: connect to " + host + ":" + std::to_string(port) +
                    " failed");
    }
}

SocketClient::~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
}

wire::WireResponse SocketClient::request(const wire::WireRequest& req) {
    check(fd_ >= 0, "SocketClient: not connected");
    check(write_frame(fd_, wire::encode_request(req)),
          "SocketClient: connection lost while sending");
    std::optional<std::vector<std::uint8_t>> frame =
        read_frame(fd_, wire::kMaxFrameBytes);
    check(frame.has_value(), "SocketClient: connection lost while waiting");
    return wire::decode_response(*frame);
}

}  // namespace efld::cluster
