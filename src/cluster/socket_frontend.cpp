#include "cluster/socket_frontend.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "obs/exposition.hpp"
#include "serve/serve_types.hpp"

namespace efld::cluster {

namespace {

using Clock = std::chrono::steady_clock;
// Absolute bound on one whole transfer; nullopt = wait forever.
using Deadline = std::optional<Clock::time_point>;

Deadline deadline_in(std::uint32_t timeout_ms) {
    if (timeout_ms == 0) return std::nullopt;
    return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

// Block until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// passes. false = timed out (or the descriptor is unusable). POLLERR/POLLHUP
// count as ready: the following recv/send reports the real story.
bool wait_ready(int fd, short events, const Deadline& deadline) {
    while (true) {
        int timeout_ms = -1;
        if (deadline.has_value()) {
            const auto now = Clock::now();
            if (now >= *deadline) return false;
            timeout_ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(*deadline -
                                                                      now)
                    .count() +
                1);
        }
        pollfd p{fd, events, 0};
        const int r = ::poll(&p, 1, timeout_ms);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (r == 0) return false;  // timed out
        return true;
    }
}

// Loop write/read until the whole buffer moved (short transfers and EINTR are
// normal on stream sockets) or the deadline passes. false = peer gone or
// timed out — either way the stream position is unknown, so the caller must
// drop the connection.
bool write_exact(int fd, const std::uint8_t* data, std::size_t n,
                 const Deadline& deadline = std::nullopt) {
    while (n > 0) {
        if (!wait_ready(fd, POLLOUT, deadline)) return false;
        const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
                continue;  // poll raced a full buffer; re-wait
            }
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t n,
                const Deadline& deadline = std::nullopt) {
    while (n > 0) {
        if (!wait_ready(fd, POLLIN, deadline)) return false;
        const ssize_t r = ::recv(fd, data, n, 0);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
                continue;
            }
            return false;
        }
        if (r == 0) return false;  // orderly shutdown
        data += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload,
                 const Deadline& deadline = std::nullopt) {
    std::uint8_t len[4];
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    len[0] = static_cast<std::uint8_t>(n & 0xff);
    len[1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
    len[2] = static_cast<std::uint8_t>((n >> 16) & 0xff);
    len[3] = static_cast<std::uint8_t>((n >> 24) & 0xff);
    return write_exact(fd, len, 4, deadline) &&
           write_exact(fd, payload.data(), payload.size(), deadline);
}

// nullopt = connection closed/failed/timed out. `header_deadline` bounds the
// wait for the length prefix (idle time between requests); `body_deadline`
// bounds the payload once a frame has started. Throws efld::Error when the
// peer sends a length past `max_bytes` (refuse BEFORE allocating).
std::optional<std::vector<std::uint8_t>> read_frame(
    int fd, std::size_t max_bytes, const Deadline& header_deadline = std::nullopt,
    std::uint32_t body_timeout_ms = 0) {
    std::uint8_t len[4];
    if (!read_exact(fd, len, 4, header_deadline)) return std::nullopt;
    const std::uint32_t n = static_cast<std::uint32_t>(len[0]) |
                            static_cast<std::uint32_t>(len[1]) << 8 |
                            static_cast<std::uint32_t>(len[2]) << 16 |
                            static_cast<std::uint32_t>(len[3]) << 24;
    check(n <= max_bytes, "socket: frame length exceeds the configured bound");
    std::vector<std::uint8_t> payload(n);
    if (n > 0 && !read_exact(fd, payload.data(), n, deadline_in(body_timeout_ms))) {
        return std::nullopt;
    }
    return payload;
}

sockaddr_in loopback_addr(std::uint16_t port, const char* host) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    check(::inet_pton(AF_INET, host, &addr.sin_addr) == 1,
          "socket: invalid IPv4 address");
    return addr;
}

}  // namespace

SocketServer::SocketServer(ClusterRouter& router, Options opts)
    : router_(router), opts_(std::move(opts)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    check(listen_fd_ >= 0, "socket: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopback_addr(opts_.port, opts_.host.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, opts_.backlog) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw Error("socket: bind/listen failed (port in use?)");
    }
    socklen_t len = sizeof(addr);
    check(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
          "socket: getsockname failed");
    port_ = ntohs(addr.sin_port);
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
    check(!running(), "SocketServer: already started");
    check(listen_fd_ >= 0, "SocketServer: cannot restart after stop()");
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    // The acceptor takes the descriptor BY VALUE at spawn (happens-before via
    // thread creation): stop()'s listen_fd_ = -1 write then has no concurrent
    // reader, and the close() is what unblocks (then fails) accept().
    acceptor_ = std::thread([this, lfd = listen_fd_] { accept_loop(lfd); });
}

void SocketServer::stop() {
    stopping_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
        // Unblocks accept(); the listener cannot be reused after this.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (acceptor_.joinable()) acceptor_.join();
    {
        // Kick every live connection out of its blocking read; handlers see
        // EOF and exit. Slots already at -1 belong to finished handlers.
        const std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : conn_fds_) {
            if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
        }
    }
    std::vector<std::thread> to_join;
    {
        const std::lock_guard<std::mutex> lock(conn_mu_);
        to_join.swap(conn_threads_);
    }
    for (auto& t : to_join) {
        if (t.joinable()) t.join();
    }
    running_.store(false, std::memory_order_release);
}

void SocketServer::accept_loop(int lfd) {
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            // Transient per-connection/resource failures (client RST before
            // accept, fd pressure) must not kill the acceptor — only a dead
            // listener may.
            if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE ||
                errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
                continue;
            }
            break;  // listener shut down
        }
        const std::lock_guard<std::mutex> lock(conn_mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        // Reap finished handlers (slot flipped to -1) so a long-lived server
        // with connection churn does not accumulate dead thread objects.
        // The exiting handler touches conn_mu_ only to flip its slot, so
        // joining here cannot deadlock.
        for (std::size_t i = 0; i < conn_threads_.size(); ++i) {
            if (conn_fds_[i] == -1 && conn_threads_[i].joinable()) {
                conn_threads_[i].join();
                conn_threads_[i] = std::thread();
            }
        }
        const std::size_t idx = conn_fds_.size();
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(
            [this, idx, fd] { serve_connection(idx, fd); });
    }
}

void SocketServer::serve_connection(std::size_t conn_index, int fd) {
    bool alive = true;
    while (alive && !stopping_.load(std::memory_order_acquire)) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            // Idle-between-requests is bounded by idle_timeout_ms (0 = wait
            // forever; stop() kicks via shutdown); a frame that has STARTED
            // must finish within io_timeout_ms — a peer stalling mid-frame
            // loses the link instead of pinning this thread.
            frame = read_frame(fd, opts_.max_frame_bytes,
                               deadline_in(opts_.idle_timeout_ms),
                               opts_.io_timeout_ms);
        } catch (const Error&) {
            break;  // oversized length prefix: protocol abuse, drop the link
        }
        if (!frame.has_value()) break;  // client closed / timed out

        wire::WireResponse resp;
        bool respond = true;
        try {
            const wire::WireRequest wreq = wire::decode_request(*frame);
            if (wreq.kind == wire::RequestKind::kMetrics) {
                // Metrics scrape: render the cluster snapshot and reply on
                // this connection. Observability reads are not "requests
                // served" — requests_served() keeps counting generate
                // traffic only, so it stays comparable with the cluster's
                // requests_completed. An attached SLO controller augments
                // the scrape with the serve_alert_*/slo_* series.
                const obs::MetricsSnapshot snap = slo_ != nullptr
                                                      ? slo_->metrics_snapshot()
                                                      : router_.metrics_snapshot();
                resp.status = wire::Status::kMetrics;
                resp.metrics = wreq.metrics_format == wire::MetricsFormat::kJson
                                   ? obs::to_json(snap)
                                   : obs::to_prometheus(snap);
                if (!write_frame(fd, wire::encode_response(resp),
                                 deadline_in(opts_.io_timeout_ms))) {
                    break;
                }
                continue;
            }
            if (wreq.kind == wire::RequestKind::kTraceDump) {
                // Trace dump: render the cluster's Perfetto timeline inline.
                // Like metrics, an observability read — not a served request.
                resp.status = wire::Status::kTraceDump;
                resp.trace = router_.trace_json();
                if (!write_frame(fd, wire::encode_response(resp),
                                 deadline_in(opts_.io_timeout_ms))) {
                    break;
                }
                continue;
            }
            if (wreq.kind == wire::RequestKind::kAlerts ||
                wreq.kind == wire::RequestKind::kQuery) {
                // SLO reads need the controller; without one the frames are
                // a configuration error, not a dropped connection.
                check(slo_ != nullptr,
                      "socket: server has no SLO controller (--slo)");
                if (wreq.kind == wire::RequestKind::kAlerts) {
                    resp.status = wire::Status::kAlerts;
                    resp.alerts = slo_->alerts_json();
                } else {
                    resp.status = wire::Status::kQuery;
                    const std::uint64_t window_ns =
                        wreq.query_window_ms > 0
                            ? wreq.query_window_ms * 1'000'000ull
                            : 120'000'000'000ull;
                    resp.query = slo_->query_json(wreq.query_series, window_ns);
                }
                if (!write_frame(fd, wire::encode_response(resp),
                                 deadline_in(opts_.io_timeout_ms))) {
                    break;
                }
                continue;
            }
            serve::Request req;
            req.prompt = wreq.prompt;
            req.max_new_tokens = wreq.max_new_tokens;
            if (wreq.deadline_ms > 0) {
                req.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(wreq.deadline_ms);
            }
            ClusterRouter::SubmitOutcome out = router_.try_submit(std::move(req));
            if (!out.accepted) {
                resp.status = wire::Status::kRejected;
                resp.retry_ms = static_cast<std::uint32_t>(out.retry_hint.count());
            } else {
                // Poll rather than block outright: stop() must not wait for a
                // decode (or, with no driver running, forever). On shutdown
                // the request is cancelled and the connection abandoned
                // without a response.
                const std::shared_future<serve::ServeResult> fut =
                    out.handle.future();
                while (fut.wait_for(std::chrono::milliseconds(20)) !=
                       std::future_status::ready) {
                    if (stopping_.load(std::memory_order_acquire)) {
                        out.handle.cancel();
                        respond = false;
                        alive = false;
                        break;
                    }
                }
                if (respond) {
                    const serve::ServeResult& r = fut.get();
                    resp.status = wire::Status::kOk;
                    resp.id = r.id;
                    resp.finish_reason =
                        static_cast<std::uint8_t>(r.finish_reason);
                    resp.times_deferred =
                        static_cast<std::uint32_t>(r.times_deferred);
                    resp.failovers = static_cast<std::uint32_t>(r.failovers);
                    resp.tokens = r.tokens;
                    resp.text = r.text;
                }
            }
        } catch (const std::exception& e) {
            // Unservable request (validation) — report it, keep the link.
            resp.status = wire::Status::kError;
            resp.error = e.what();
        }
        if (respond) {
            // Count before the write: a client that has already received its
            // reply must never observe requests_served() lagging behind.
            served_.fetch_add(1, std::memory_order_release);
            if (!write_frame(fd, wire::encode_response(resp),
                             deadline_in(opts_.io_timeout_ms))) {
                break;
            }
        }
    }
    {
        const std::lock_guard<std::mutex> lock(conn_mu_);
        conn_fds_[conn_index] = -1;  // stop() must not touch a reused fd
    }
    ::close(fd);
}

SocketClient::SocketClient(const std::string& host, std::uint16_t port,
                           Options opts)
    : host_(host), port_(port), opts_(opts), jitter_(opts.jitter_seed) {
    connect_now();
}

SocketClient::~SocketClient() { disconnect(); }

void SocketClient::disconnect() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

void SocketClient::connect_now() {
    disconnect();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    check(fd >= 0, "socket: socket() failed");
    sockaddr_in addr = loopback_addr(port_, host_.c_str());
    // Bounded connect: go non-blocking, poll for writability, read SO_ERROR
    // for the verdict, then restore blocking mode (the transfer helpers
    // poll-then-call, so either mode works, but blocking keeps the fast path
    // syscall count down).
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (opts_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
        if (!wait_ready(fd, POLLOUT, deadline_in(opts_.connect_timeout_ms))) {
            ::close(fd);
            throw Error("socket: connect to " + host_ + ":" +
                        std::to_string(port_) + " timed out");
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        rc = so_error == 0 ? 0 : -1;
    }
    if (rc != 0) {
        ::close(fd);
        throw Error("socket: connect to " + host_ + ":" + std::to_string(port_) +
                    " failed");
    }
    if (opts_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags);
    fd_ = fd;
}

wire::WireResponse SocketClient::request(const wire::WireRequest& req) {
    check(fd_ >= 0, "SocketClient: not connected");
    if (!write_frame(fd_, wire::encode_request(req),
                     deadline_in(opts_.io_timeout_ms))) {
        disconnect();  // stream position unknown; the link is unusable
        throw Error("SocketClient: connection lost/timed out while sending");
    }
    std::optional<std::vector<std::uint8_t>> frame =
        read_frame(fd_, wire::kMaxFrameBytes, deadline_in(opts_.io_timeout_ms),
                   opts_.io_timeout_ms);
    if (!frame.has_value()) {
        disconnect();
        throw Error("SocketClient: connection lost/timed out while waiting");
    }
    return wire::decode_response(*frame);
}

std::string SocketClient::metrics(wire::MetricsFormat format) {
    wire::WireRequest req;
    req.kind = wire::RequestKind::kMetrics;
    req.metrics_format = format;
    wire::WireResponse resp = request(req);
    check(resp.status == wire::Status::kMetrics,
          "SocketClient: server replied to a metrics request with a "
          "non-metrics response");
    return std::move(resp.metrics);
}

std::string SocketClient::trace_dump() {
    wire::WireRequest req;
    req.kind = wire::RequestKind::kTraceDump;
    wire::WireResponse resp = request(req);
    check(resp.status == wire::Status::kTraceDump,
          "SocketClient: server replied to a trace request with a "
          "non-trace response");
    return std::move(resp.trace);
}

std::string SocketClient::alerts() {
    wire::WireRequest req;
    req.kind = wire::RequestKind::kAlerts;
    wire::WireResponse resp = request(req);
    check(resp.status != wire::Status::kError,
          "SocketClient: alerts request failed: " + resp.error);
    check(resp.status == wire::Status::kAlerts,
          "SocketClient: server replied to an alerts request with a "
          "non-alerts response");
    return std::move(resp.alerts);
}

std::string SocketClient::query(const std::string& series,
                                std::uint32_t window_ms) {
    wire::WireRequest req;
    req.kind = wire::RequestKind::kQuery;
    req.query_series = series;
    req.query_window_ms = window_ms;
    wire::WireResponse resp = request(req);
    check(resp.status != wire::Status::kError,
          "SocketClient: query request failed: " + resp.error);
    check(resp.status == wire::Status::kQuery,
          "SocketClient: server replied to a query request with a "
          "non-query response");
    return std::move(resp.query);
}

std::chrono::milliseconds SocketClient::backoff_delay(std::size_t attempt,
                                                      std::uint32_t floor_ms) {
    // Capped exponential: d = min(cap, base << (attempt-1)), slept jittered
    // in [d/2, d] so a fleet retrying the same outage decorrelates. A 429's
    // retry_ms hint raises the floor — the server knows its own backlog.
    std::uint64_t d = opts_.backoff_base_ms;
    for (std::size_t k = 1; k < attempt && d < opts_.backoff_cap_ms; ++k) d <<= 1;
    d = std::min<std::uint64_t>(d, opts_.backoff_cap_ms);
    std::uint64_t sleep_ms = d / 2 + jitter_.below(d / 2 + 1);
    sleep_ms = std::max<std::uint64_t>(sleep_ms, floor_ms);
    return std::chrono::milliseconds(sleep_ms);
}

wire::WireResponse SocketClient::request_with_retry(const wire::WireRequest& req) {
    check(opts_.max_attempts > 0, "SocketClient: max_attempts must be >= 1");
    std::string last_error;
    wire::WireResponse last_rejected;
    bool saw_rejected = false;
    for (std::size_t attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
        try {
            if (fd_ < 0) connect_now();
            wire::WireResponse resp = request(req);
            if (resp.status != wire::Status::kRejected) return resp;
            // 429: the cluster's queues are full (or a shard just died and
            // survivors absorbed its load). Honor the hint, then try again.
            saw_rejected = true;
            last_rejected = std::move(resp);
            if (attempt < opts_.max_attempts) {
                std::this_thread::sleep_for(
                    backoff_delay(attempt, last_rejected.retry_ms));
            }
        } catch (const Error& e) {
            // Connection refused/lost/timed out — the shape of a front-end
            // restarting. Back off and reconnect.
            last_error = e.what();
            disconnect();
            if (attempt < opts_.max_attempts) {
                std::this_thread::sleep_for(backoff_delay(attempt, 0));
            }
        }
    }
    if (saw_rejected) return last_rejected;  // consistent 429: caller sheds load
    throw Error("SocketClient: request failed after " +
                std::to_string(opts_.max_attempts) + " attempts (" + last_error +
                ")");
}

}  // namespace efld::cluster
