#include "cluster/placement.hpp"

#include <stdexcept>
#include <string>

namespace efld::cluster {

namespace {

bool eligible(const ShardLoad& s, std::size_t demand) {
    return s.healthy && !s.queue_full() && s.ever_fits(demand);
}

// Fewest in-flight requests among eligible shards; lowest index on ties so
// identical snapshots give identical placements.
std::size_t least_loaded_pick(std::span<const ShardLoad> shards,
                              std::size_t demand) {
    std::size_t best = kNoShard;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        if (!eligible(shards[i], demand)) continue;
        if (best == kNoShard || shards[i].inflight() < shards[best].inflight()) {
            best = i;
        }
    }
    return best;
}

class RoundRobinPlacement final : public Placement {
public:
    std::size_t pick(std::span<const ShardLoad> shards,
                     std::size_t demand) override {
        for (std::size_t n = 0; n < shards.size(); ++n) {
            const std::size_t i = (next_ + n) % shards.size();
            if (!eligible(shards[i], demand)) continue;
            next_ = i + 1;
            return i;
        }
        return kNoShard;
    }
    std::string_view name() const noexcept override { return "round-robin"; }

private:
    std::size_t next_ = 0;
};

class LeastLoadedPlacement final : public Placement {
public:
    std::size_t pick(std::span<const ShardLoad> shards,
                     std::size_t demand) override {
        return least_loaded_pick(shards, demand);
    }
    std::string_view name() const noexcept override { return "least-loaded"; }
};

// Tightest headroom that still fits: minimize free_pages - demand.
// Non-paging shards carry no headroom signal, so a cluster without
// governors falls through to least-loaded below.
std::size_t best_fit_pick(std::span<const ShardLoad> shards, std::size_t demand) {
    std::size_t best = kNoShard;
    std::size_t best_slack = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardLoad& s = shards[i];
        if (!eligible(s, demand) || !s.paging) continue;
        if (s.free_pages() < demand) continue;
        const std::size_t slack = s.free_pages() - demand;
        if (slack < best_slack) {
            best = i;
            best_slack = slack;
        }
    }
    if (best != kNoShard) return best;
    // Nothing fits right now (or nothing pages): the request will queue
    // and defer wherever it lands, so land it where capacity frees
    // soonest — the most free pages, in-flight count breaking ties.
    std::size_t fallback = kNoShard;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardLoad& s = shards[i];
        if (!eligible(s, demand) || !s.paging) continue;
        if (fallback == kNoShard || s.free_pages() > shards[fallback].free_pages() ||
            (s.free_pages() == shards[fallback].free_pages() &&
             s.inflight() < shards[fallback].inflight())) {
            fallback = i;
        }
    }
    if (fallback != kNoShard) return fallback;
    return least_loaded_pick(shards, demand);
}

class BestFitPagesPlacement final : public Placement {
public:
    std::size_t pick(std::span<const ShardLoad> shards,
                     std::size_t demand) override {
        return best_fit_pick(shards, demand);
    }
    std::string_view name() const noexcept override { return "best-fit"; }
};

class PrefixAffinityPlacement final : public Placement {
public:
    std::size_t pick(std::span<const ShardLoad> shards,
                     std::size_t demand) override {
        // Most covered prompt tokens wins — a shard already holding this
        // prefix's KV pages serves the request for its unique pages only.
        // Ties break toward the tighter best-fit slack, then the lower
        // index, so identical snapshots place identically.
        std::size_t best = kNoShard;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const ShardLoad& s = shards[i];
            if (!eligible(s, demand) || s.prefix_covered_tokens == 0) continue;
            if (best == kNoShard ||
                s.prefix_covered_tokens > shards[best].prefix_covered_tokens ||
                (s.prefix_covered_tokens == shards[best].prefix_covered_tokens &&
                 s.free_pages() < shards[best].free_pages())) {
                best = i;
            }
        }
        if (best != kNoShard) return best;
        // No shard has seen this prefix: place by capacity as best-fit does
        // (the landing shard registers the prefix and future sharers stick).
        return best_fit_pick(shards, demand);
    }
    std::string_view name() const noexcept override { return "prefix-affinity"; }
};

}  // namespace

std::string_view to_string(PlacementPolicy p) noexcept {
    switch (p) {
        case PlacementPolicy::kRoundRobin: return "round-robin";
        case PlacementPolicy::kLeastLoaded: return "least-loaded";
        case PlacementPolicy::kBestFitPages: return "best-fit";
        case PlacementPolicy::kPrefixAffinity: return "prefix-affinity";
    }
    return "least-loaded";
}

PlacementPolicy placement_policy_from_string(std::string_view name) {
    if (name == "round-robin" || name == "rr") return PlacementPolicy::kRoundRobin;
    if (name == "least-loaded" || name == "least") {
        return PlacementPolicy::kLeastLoaded;
    }
    if (name == "best-fit" || name == "bestfit") {
        return PlacementPolicy::kBestFitPages;
    }
    if (name == "prefix-affinity" || name == "prefix") {
        return PlacementPolicy::kPrefixAffinity;
    }
    throw std::invalid_argument(
        "unknown placement policy: " + std::string(name) +
        " (round-robin | least-loaded | best-fit | prefix-affinity)");
}

std::unique_ptr<Placement> make_placement(PlacementPolicy p) {
    switch (p) {
        case PlacementPolicy::kRoundRobin:
            return std::make_unique<RoundRobinPlacement>();
        case PlacementPolicy::kLeastLoaded:
            return std::make_unique<LeastLoadedPlacement>();
        case PlacementPolicy::kBestFitPages:
            return std::make_unique<BestFitPagesPlacement>();
        case PlacementPolicy::kPrefixAffinity:
            return std::make_unique<PrefixAffinityPlacement>();
    }
    throw std::invalid_argument("make_placement: unknown policy");
}

}  // namespace efld::cluster
