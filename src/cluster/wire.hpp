// Wire format of the socket front-end: length-prefixed frames with
// little-endian fixed-width fields.
//
//   frame    := u32 payload_length, payload
//   request  := u8 version(=3), u8 kind, body
//     kind 0 (generate) : u32 max_new_tokens, u32 deadline_ms,
//                         u32 prompt_length, prompt bytes
//     kind 1 (metrics)  : u8 format — 0 Prometheus text, 1 JSON
//     kind 2 (trace)    : (empty) — dump the cluster trace timeline
//     kind 3 (alerts)   : (empty) — the SLO engine's rules + transition
//                         timeline
//     kind 4 (query)    : u32 window_ms, u32 series_length, series bytes —
//                         one time-series' tail over the trailing window
//   response := u8 version(=3), u8 status, body
//     status 0 (ok)       : u64 id, u8 finish_reason, u32 times_deferred,
//                           u32 failovers, u32 token_count,
//                           i32 tokens[token_count], u32 text_length,
//                           text bytes
//     status 1 (rejected) : u32 retry_ms      — 429 backpressure; retry after
//                           the hint, the cluster's queues are all full
//     status 2 (error)    : u32 message_length, message bytes — the request
//                           itself was unservable (empty prompt, context
//                           overflow, demand past every pool)
//     status 3 (metrics)  : u32 body_length, body bytes — the cluster metrics
//                           snapshot in the requested format (the reply to a
//                           kind-1 request; see obs/exposition.hpp)
//     status 4 (trace)    : u32 body_length, body bytes — the cluster timeline
//                           as Chrome-trace-event JSON, loadable in
//                           ui.perfetto.dev (the reply to a kind-2 request;
//                           see obs/perfetto_export.hpp)
//     status 5 (alerts)   : u32 body_length, body bytes — AlertEngine::to_json
//                           (the reply to a kind-3 request; a server without
//                           an SLO controller answers status 2 instead)
//     status 6 (query)    : u32 body_length, body bytes — the
//                           TimeSeriesStore::query_json tail of one series
//                           (the reply to a kind-4 request)
//
// deadline_ms is relative to server receipt (0 = none) — clients and servers
// share no clock. finish_reason transports serve::FinishReason's enum value.
//
// Version 2 added the request kind byte and the metrics frames; version 3 the
// alerts and time-series-query frames. Older peers are not decoded (one
// embedded deployment upgrades client and server together — a version byte
// mismatch is a configuration error, not a negotiation).
//
// Encode/decode work on byte vectors, independent of any socket, so the
// format round-trips in unit tests without a network. Decoders throw
// efld::Error on malformed payloads (short reads, trailing bytes, unknown
// version/status) — the socket layer turns that into a status-2 response or
// a dropped connection, never undefined behavior.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace efld::cluster::wire {

inline constexpr std::uint8_t kVersion = 3;
// Upper bound a frame reader enforces BEFORE allocating: a garbage length
// prefix must not become a multi-gigabyte allocation. Sized for trace dumps —
// a Perfetto timeline of a long cluster run runs to several MiB of JSON.
inline constexpr std::size_t kMaxFrameBytes = 8u << 20;

enum class Status : std::uint8_t {
    kOk = 0,
    kRejected = 1,
    kError = 2,
    kMetrics = 3,
    kTraceDump = 4,
    kAlerts = 5,
    kQuery = 6,
};

enum class RequestKind : std::uint8_t {
    kGenerate = 0,
    kMetrics = 1,
    kTraceDump = 2,
    kAlerts = 3,
    kQuery = 4,
};

enum class MetricsFormat : std::uint8_t { kPrometheus = 0, kJson = 1 };

struct WireRequest {
    RequestKind kind = RequestKind::kGenerate;
    // kGenerate fields
    std::string prompt;
    std::uint32_t max_new_tokens = 0;
    std::uint32_t deadline_ms = 0;  // 0 = no deadline
    // kMetrics field
    MetricsFormat metrics_format = MetricsFormat::kPrometheus;
    // kQuery fields
    std::string query_series;
    std::uint32_t query_window_ms = 0;  // 0 = server default (2 min)
};

struct WireResponse {
    Status status = Status::kError;
    // kOk fields
    std::uint64_t id = 0;
    std::uint8_t finish_reason = 0;  // serve::FinishReason value
    std::uint32_t times_deferred = 0;
    std::uint32_t failovers = 0;     // shard failures the request survived
    std::vector<std::int32_t> tokens;
    std::string text;
    // kRejected field
    std::uint32_t retry_ms = 0;
    // kError field
    std::string error;
    // kMetrics field: the exposition body (Prometheus text or JSON)
    std::string metrics;
    // kTraceDump field: the Chrome-trace-event JSON timeline
    std::string trace;
    // kAlerts field: the alert engine's rules + timeline JSON
    std::string alerts;
    // kQuery field: one time-series tail as JSON
    std::string query;
};

[[nodiscard]] std::vector<std::uint8_t> encode_request(const WireRequest& req);
[[nodiscard]] WireRequest decode_request(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_response(const WireResponse& resp);
[[nodiscard]] WireResponse decode_response(std::span<const std::uint8_t> payload);

}  // namespace efld::cluster::wire
