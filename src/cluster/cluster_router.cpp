#include "cluster/cluster_router.hpp"

#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "obs/exposition.hpp"
#include "obs/perfetto_export.hpp"
#include "obs/process_metrics.hpp"

namespace efld::cluster {

namespace {

ShardLoad to_shard_load(const serve::ServeLoad& l) {
    ShardLoad s;
    s.queued = l.queued;
    s.queue_capacity = l.queue_capacity;
    s.active = l.active;
    s.healthy = !l.failed;
    s.paging = l.paging;
    s.committed_pages = l.committed_pages;
    s.queued_pages = l.queued_pages;
    s.total_pages = l.total_pages;
    s.shared_pages = l.shared_pages;
    return s;
}

// Terminal resolution for a harvested request no survivor could take: the
// router owns it now, so the router must resolve it — kShardFailure, partial
// tokens preserved, so the caller's handle returns instead of hanging.
void resolve_lost_request(serve::PendingRequest&& req,
                          const model::ByteTokenizer& tok) {
    serve::ServeResult r;
    r.id = req.id;
    r.tokens = std::move(req.resumed);
    r.text = tok.decode(r.tokens);
    r.prompt_tokens = req.prompt.size();
    r.finish_reason = serve::FinishReason::kShardFailure;
    r.times_deferred = req.times_deferred;
    r.failovers = req.failovers;
    try {
        req.promise.set_value(std::move(r));
    } catch (const std::future_error&) {
        // Already resolved elsewhere; nothing to deliver.
    }
}

}  // namespace

ClusterRouter::ClusterRouter(const model::QuantizedModelWeights& weights,
                             ClusterOptions opts)
    : opts_(std::move(opts)), weights_(&weights) {
    if (opts_.shards == 0) {
        throw std::invalid_argument("ClusterRouter: shards must be >= 1");
    }
    if (opts_.retry_hint_ms == 0) {
        throw std::invalid_argument(
            "ClusterRouter: retry_hint_ms must be >= 1 (a zero hint tells "
            "rejected callers to hammer the router)");
    }
    if (opts_.shard_fault_specs.size() > opts_.shards) {
        throw std::invalid_argument(
            "ClusterRouter: more shard_fault_specs than shards");
    }
    placement_ = make_placement(opts_.placement);
    shards_.reserve(opts_.shards);
    health_.assign(opts_.shards, ShardHealth::kHealthy);
    shard_errors_.resize(opts_.shards);
    for (std::size_t i = 0; i < opts_.shards; ++i) {
        serve::ServeOptions shard_opts = opts_.shard;
        shard_opts.fault_spec = fault_spec_for(i);
        // Shards share the cluster's trace ring and clock (whatever the
        // caller put in opts_.shard — shared_ptr copies); the shard id tags
        // each engine's trace events so cross-shard failover reads cleanly.
        shard_opts.shard_id = static_cast<std::uint32_t>(i);
        // Disjoint id namespaces (shard index in the top 16 bits): a request
        // id identifies ONE request cluster-wide, which the shared trace
        // ring and failover resubmission both depend on.
        shard_opts.id_base = static_cast<std::uint64_t>(i) << 48;
        shards_.push_back(
            std::make_unique<serve::ServeEngine>(weights, shard_opts));
        wire_failure_callback(i);
    }
}

const std::string& ClusterRouter::fault_spec_for(std::size_t i) const {
    return i < opts_.shard_fault_specs.size() ? opts_.shard_fault_specs[i]
                                              : opts_.shard.fault_spec;
}

void ClusterRouter::wire_failure_callback(std::size_t i) {
    shards_[i]->set_on_failure([this, i](const std::exception_ptr& e) {
        handle_shard_failure(i, e);
    });
}

void ClusterRouter::set_failure_observer(FailureObserver cb) {
    const std::lock_guard<std::mutex> lock(place_mu_);
    failure_observer_ = std::move(cb);
}

void ClusterRouter::handle_shard_failure(std::size_t i,
                                         const std::exception_ptr& e) {
    FailureObserver observer;
    {
        const std::lock_guard<std::mutex> lock(place_mu_);
        if (health_[i] == ShardHealth::kFailed) return;  // already handled
        health_[i] = ShardHealth::kFailed;
        shard_errors_[i] = e;
        ++shard_failures_;
        observer = failure_observer_;
    }
    std::string why = "unknown fault";
    if (e != nullptr) {
        try {
            std::rethrow_exception(e);
        } catch (const std::exception& ex) {
            why = ex.what();
        } catch (...) {
        }
    }
    log_warn("shard ", i, " failed: ", why);
    // Harvest outside the lock (the engine marked itself failed before
    // invoking this callback, so nothing new lands on it). restart_shard()
    // cannot swap this slot underneath us: it joins the failed driver — the
    // thread running THIS handler — before touching the pointer.
    std::vector<serve::PendingRequest> displaced = shards_[i]->take_unfinished();
    if (displaced.empty()) {
        // The black-box capture happens after failover settles — here that
        // is immediately, there was nothing to displace.
        if (observer) observer(i);
        return;
    }

    // Fail each request over through the normal placement policy, restricted
    // to surviving shards. A request placement refuses (or every survivor's
    // resubmit declines) is lost — resolved here so its handle still returns.
    std::unique_lock<std::mutex> lock(place_mu_);
    for (serve::PendingRequest& req : displaced) {
        // resubmit() consumes req on success — capture what the log needs
        // before placement runs.
        const std::uint64_t req_id = req.id;
        const std::size_t resumed_tokens = req.resumed.size();
        const std::size_t demand = predict_demand(req.prompt, req.max_new_tokens);
        std::vector<ShardLoad> loads;
        loads.reserve(shards_.size());
        for (std::size_t j = 0; j < shards_.size(); ++j) {
            loads.push_back(to_shard_load(shards_[j]->load()));
            if (health_[j] == ShardHealth::kFailed) loads.back().healthy = false;
            // Probe survivors for this prompt's prefix so affinity placement
            // can rebuild the displaced session from a shared index instead
            // of re-prefilling from scratch.
            if (opts_.shard.prefix_sharing && loads.back().healthy) {
                loads.back().prefix_covered_tokens =
                    shards_[j]->probe_prefix(req.prompt);
            }
        }
        bool placed = false;
        const std::size_t pick = placement_->pick(loads, demand);
        if (pick != kNoShard && shards_[pick]->resubmit(req)) {
            placed = true;
        } else {
            // The policy's pick declined (raced its own failure, queue full):
            // any survivor with room will do before declaring the request lost.
            for (std::size_t j = 0; j < shards_.size() && !placed; ++j) {
                if (j == i || !loads[j].healthy) continue;
                placed = shards_[j]->resubmit(req);
            }
        }
        // LogScope tags these lines with the displaced request's id — the
        // same id the trace ring carries, so a failover reads end-to-end
        // across logs and trace dumps.
        const LogScope scope(req_id);
        if (placed) {
            ++requests_failed_over_;
            log_info("failed over request from shard ", i, " (",
                     resumed_tokens, " tokens resumed)");
        } else {
            ++requests_lost_;
            log_warn("request lost with shard ", i,
                     ": no survivor could take it");
            resolve_lost_request(std::move(req), shards_[i]->tokenizer());
        }
    }
    lock.unlock();
    // Outside place_mu_: the observer snapshots cluster metrics (which takes
    // the same lock) for its flight bundle.
    if (observer) observer(i);
}

ClusterRouter::~ClusterRouter() {
    try {
        stop();
    } catch (...) {
        // A parked shard error has nowhere to go from a destructor.
    }
}

void ClusterRouter::start() {
    check(!running(), "ClusterRouter: already started");
    for (auto& s : shards_) s->run();
    running_.store(true, std::memory_order_release);
}

void ClusterRouter::stop() {
    // Parallel quiesce: every shard joins its driver on its own thread, so a
    // cluster stops in the time of its slowest shard. Shard errors (parked
    // callback exceptions rethrown by ServeEngine::stop) are collected and
    // the first is rethrown once every shard has actually stopped — an
    // exploding callback on shard 0 must not leave shard 3 running.
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::thread> joiners;
    joiners.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        joiners.emplace_back([this, i, &errors] {
            try {
                shards_[i]->stop();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto& t : joiners) t.join();
    running_.store(false, std::memory_order_release);
    for (const std::exception_ptr& e : errors) {
        if (e != nullptr) std::rethrow_exception(e);
    }
}

ShardHealth ClusterRouter::shard_health(std::size_t i) const {
    const std::lock_guard<std::mutex> lock(place_mu_);
    return health_.at(i);
}

std::exception_ptr ClusterRouter::shard_error(std::size_t i) const {
    const std::lock_guard<std::mutex> lock(place_mu_);
    return shard_errors_.at(i);
}

void ClusterRouter::restart_shard(std::size_t i) {
    {
        const std::lock_guard<std::mutex> lock(place_mu_);
        check(health_.at(i) == ShardHealth::kFailed,
              "ClusterRouter: restart_shard on a shard that has not failed "
              "(restarting a live engine would drop its work)");
    }
    // Build the replacement OUTSIDE the lock — backend construction is the
    // expensive part (the accel path packs the whole weight image) and the
    // surviving shards keep serving through it.
    serve::ServeOptions shard_opts = opts_.shard;
    shard_opts.fault_spec.clear();  // the script killed the device, not its heirs
    shard_opts.shard_id = static_cast<std::uint32_t>(i);
    // Fresh id sub-namespace (restart generation in bits 32..47): the
    // replacement must not reuse ids its dead predecessor already issued, or
    // the shared trace ring would merge two requests' stories.
    {
        const std::lock_guard<std::mutex> lock(place_mu_);
        shard_opts.id_base = (static_cast<std::uint64_t>(i) << 48) |
                             (static_cast<std::uint64_t>(shard_restarts_ + 1) << 32);
    }
    auto fresh = std::make_unique<serve::ServeEngine>(*weights_, shard_opts);
    // Quiesce the corpse. Its driver exited when the backend faulted; the
    // join also barriers against the failure handler still running on that
    // thread, so the slot swap below cannot race the harvest. NOT under
    // place_mu_: the handler needs that lock to finish.
    try {
        shards_[i]->stop();
    } catch (...) {
        // A parked callback error from the dead engine; the fault itself is
        // already recorded in shard_errors_.
    }
    {
        const std::lock_guard<std::mutex> lock(place_mu_);
        std::swap(shards_[i], fresh);  // corpse destroyed after the lock drops
        wire_failure_callback(i);
        health_[i] = ShardHealth::kRestarted;
        shard_errors_[i] = nullptr;  // the fault died with the corpse
        ++shard_restarts_;
    }
    // The replacement joins the serving rotation the way start() does.
    if (running()) shards_[i]->run();
}

std::size_t ClusterRouter::predict_demand(std::span<const std::int32_t> prompt_tokens,
                                          std::size_t max_new_tokens) const {
    if (!opts_.shard.paging) return 0;
    // Shards are uniformly configured, so any governor prices the demand.
    const kvpool::CapacityGovernor* g = shards_.front()->governor();
    return g->predict_pages(prompt_tokens.size(), max_new_tokens);
}

ClusterRouter::SubmitOutcome ClusterRouter::try_submit(serve::Request req) {
    // Accepted costs at embedded-cluster scale: placement serializes on one
    // mutex and snapshots every shard (with paging, load() walks each queue
    // to price queued demand — O(shards x queue depth) per submission), and
    // predict_demand's tokenization is repeated by the shard's submit. A
    // higher-fanout router would keep incremental queued-demand counters and
    // thread the encoded prompt through.
    const std::lock_guard<std::mutex> lock(place_mu_);
    // Under the lock: the tokenizer and governor reads go through shard 0,
    // and restart_shard may swap that very engine.
    const std::vector<std::int32_t> prompt_tokens =
        shards_.front()->tokenizer().encode(req.prompt);
    const std::size_t demand = predict_demand(prompt_tokens, req.max_new_tokens);
    std::vector<ShardLoad> loads;
    loads.reserve(shards_.size());
    bool any_healthy = false;
    bool could_ever_fit = false;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        loads.push_back(to_shard_load(shards_[i]->load()));
        // Belt and braces: the engine's own failed flag (which can lead the
        // router's bookkeeping by the width of the failure callback) and the
        // router's health state must both clear for a shard to count.
        if (health_[i] == ShardHealth::kFailed) loads.back().healthy = false;
        any_healthy = any_healthy || loads.back().healthy;
        could_ever_fit = could_ever_fit ||
                         (loads.back().healthy && loads.back().ever_fits(demand));
        // Per-decision affinity signal: how much of THIS prompt the shard's
        // prefix index already holds. Healthy shards only — a dead shard's
        // cached prefix is not capacity. Under an engaged overload governor
        // the probe is skipped (degraded placement): per-shard prefix probes
        // are the expensive part of placement, and an overloaded cluster
        // trades affinity for admission latency.
        const bool degrade = opts_.shard.overload != nullptr &&
                             opts_.shard.overload->degraded_placement();
        if (opts_.shard.prefix_sharing && !degrade && loads.back().healthy) {
            loads.back().prefix_covered_tokens =
                shards_[i]->probe_prefix(prompt_tokens);
        }
    }
    // A cluster with no surviving shard cannot promise retrying will help —
    // that is an outage, not backpressure.
    check(any_healthy, "ClusterRouter: every shard has failed");
    // Permanent impossibility is a malformed request, not backpressure: no
    // amount of retrying shrinks a demand past every surviving shard's pool.
    check(could_ever_fit,
          "ClusterRouter: prompt + max_new demand exceeds every shard's KV pool");

    SubmitOutcome out;
    const std::size_t idx = placement_->pick(loads, demand);
    if (idx == kNoShard) {
        // Every eligible queue is full: 429. Hint scales with the shallowest
        // HEALTHY backlog — a dead shard's empty queue is not capacity.
        std::size_t min_inflight = std::numeric_limits<std::size_t>::max();
        for (const ShardLoad& l : loads) {
            if (!l.healthy) continue;
            min_inflight = l.inflight() < min_inflight ? l.inflight() : min_inflight;
        }
        double hint_ms =
            static_cast<double>(opts_.retry_hint_ms * (1 + min_inflight));
        // An engaged governor stretches the hint: rejected callers back off
        // harder while the cluster is shedding, which drains the overload
        // faster than optimistic retries would.
        if (opts_.shard.overload != nullptr) {
            hint_ms *= opts_.shard.overload->retry_hint_scale();
        }
        out.retry_hint =
            std::chrono::milliseconds(static_cast<std::int64_t>(hint_ms));
        return out;
    }
    check(idx < shards_.size(), "ClusterRouter: placement pick out of range");
    // Under place_mu_ only the router pushes to shard queues and the snapshot
    // above saw headroom, so this submit cannot hit a full queue; request
    // validation errors (empty prompt, context overflow) still propagate.
    out.handle = shards_[idx]->submit(std::move(req));
    out.accepted = true;
    out.shard = idx;
    return out;
}

serve::RequestHandle ClusterRouter::submit(serve::Request req) {
    SubmitOutcome out = try_submit(std::move(req));
    check(out.accepted,
          "ClusterRouter: every shard is saturated; use try_submit() for "
          "backpressure instead of exceptions");
    return std::move(out.handle);
}

void ClusterRouter::drain() {
    // Parallel drain: with drivers running each thread waits on its shard's
    // idle signal; without drivers wait_until_idle() steps the shard inline,
    // so even a manual-stepping cluster drains with one thread per shard.
    // Inline stepping rethrows on_token callback exceptions — catch them per
    // waiter (an exception escaping a std::thread is std::terminate) and
    // surface the first once every shard has been waited on.
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::thread> waiters;
    waiters.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        waiters.emplace_back([this, i, &errors] {
            try {
                shards_[i]->wait_until_idle();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto& t : waiters) t.join();
    for (const std::exception_ptr& e : errors) {
        if (e != nullptr) std::rethrow_exception(e);
    }
}

ClusterStats ClusterRouter::stats() const {
    // Under place_mu_: the loads, health vector, and fault counters form one
    // consistent snapshot, and a restart cannot swap a shard mid-walk.
    const std::lock_guard<std::mutex> lock(place_mu_);
    ClusterStats cs;
    cs.shards.reserve(shards_.size());
    for (const auto& s : shards_) cs.shards.push_back(s->load());
    cs.health = health_;
    cs.shard_failures = shard_failures_;
    cs.shard_restarts = shard_restarts_;
    cs.requests_failed_over = requests_failed_over_;
    cs.requests_lost = requests_lost_;
    // Cluster percentiles: merge the shard HISTOGRAMS, then summarize — the
    // only way p50/p95/p99 compose across shards.
    obs::HistogramSnapshot queue_wait;
    obs::HistogramSnapshot ttft;
    obs::HistogramSnapshot e2e;
    for (const auto& s : shards_) {
        const obs::MetricsSnapshot m = s->metrics().snapshot();
        if (auto it = m.histograms.find("serve_queue_wait_ns");
            it != m.histograms.end()) {
            queue_wait.merge(it->second);
        }
        if (auto it = m.histograms.find("serve_ttft_ns"); it != m.histograms.end()) {
            ttft.merge(it->second);
        }
        if (auto it = m.histograms.find("serve_e2e_ns"); it != m.histograms.end()) {
            e2e.merge(it->second);
        }
    }
    cs.queue_wait = obs::LatencySummary::from(queue_wait);
    cs.ttft = obs::LatencySummary::from(ttft);
    cs.e2e = obs::LatencySummary::from(e2e);
    return cs;
}

obs::MetricsSnapshot ClusterRouter::metrics_snapshot() const {
    const std::lock_guard<std::mutex> lock(place_mu_);
    obs::MetricsSnapshot out;
    for (const auto& s : shards_) out.merge(s->metrics_snapshot());
    std::size_t healthy = 0;
    for (const ShardHealth h : health_) healthy += h != ShardHealth::kFailed;
    out.set_counter("cluster_shard_failures", shard_failures_);
    out.set_counter("cluster_shard_restarts", shard_restarts_);
    out.set_counter("cluster_requests_failed_over", requests_failed_over_);
    out.set_counter("cluster_requests_lost", requests_lost_);
    out.set_gauge("cluster_shards", static_cast<double>(shards_.size()));
    out.set_gauge("cluster_healthy_shards", static_cast<double>(healthy));
    // The shards SHARE one trace ring, so the per-shard merge above summed
    // the same drop counter N times — overwrite with the ring's true value.
    if (opts_.shard.trace) {
        out.set_counter("serve_trace_dropped_total", opts_.shard.trace->dropped());
    }
    // Process-level gauges live here, not in the shards: gauges ADD on merge,
    // and there is one process no matter how many shards it hosts.
    obs::export_process_metrics(out);
    if (opts_.shard.overload != nullptr) {
        const serve::OverloadGovernor& g = *opts_.shard.overload;
        out.set_gauge("cluster_overload_engaged", g.engaged() ? 1.0 : 0.0);
        out.set_counter("cluster_overload_engagements_total", g.engagements());
        out.set_counter("cluster_overload_shed_total", g.shed_total());
    }
    return out;
}

std::vector<obs::SpanRecord> ClusterRouter::profiler_spans() const {
    const std::lock_guard<std::mutex> lock(place_mu_);
    std::vector<obs::SpanRecord> out;
    for (const auto& s : shards_) {
        const std::vector<obs::SpanRecord> spans = s->profiler().spans();
        out.insert(out.end(), spans.begin(), spans.end());
    }
    return out;
}

std::string ClusterRouter::trace_json() const {
    std::vector<obs::TraceRecord> lifecycle;
    if (opts_.shard.trace) lifecycle = opts_.shard.trace->snapshot();
    std::vector<obs::ShardSpans> spans;
    {
        // Under place_mu_: restart_shard may swap an engine mid-walk.
        const std::lock_guard<std::mutex> lock(place_mu_);
        spans.reserve(shards_.size());
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            obs::ShardSpans s;
            s.shard = static_cast<std::uint32_t>(i);
            s.spans = shards_[i]->profiler().spans();
            spans.push_back(std::move(s));
        }
    }
    return obs::to_perfetto_json(lifecycle, spans);
}

}  // namespace efld::cluster
